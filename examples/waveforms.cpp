// Dumps VCD waveforms of the Orc attack on both the vulnerable and the
// secure design — open them side by side in GTKWave and watch the
// RAW-hazard stall freeze one pipeline but not the other.
//
// Build & run:  ./build/examples/waveforms
// Output:       orc_vulnerable.vcd, orc_secure.vcd
#include <cstdio>
#include <fstream>

#include "sim/vcd.hpp"
#include "soc/attack.hpp"
#include "soc/testbench.hpp"

using namespace upec;
using namespace upec::soc;

namespace {

void dumpRun(SocVariant variant, const char* path) {
  SocConfig c;
  c.machine.xlen = 32;
  c.machine.nregs = 16;
  c.machine.imemWords = 64;
  c.machine.dmemWords = 256;
  c.machine.pmpEntries = 2;
  c.cacheLines = 16;
  c.pendingWriteCycles = 8;
  c.refillCycles = 4;
  c.variant = variant;

  AttackLayout layout;
  layout.protectedByteAddr = 200 * 4;
  layout.accessibleByteAddr = 64 * 4;

  SocTestbench tb(c);
  tb.loadProgram(orcAttackProgram(layout, 13));  // the guess that collides
  tb.loadProgram(spinHandler(), 60);
  tb.setDmemWord(200, 0x1B4);
  tb.preloadCacheLine(200, 0x1B4);
  tb.protectFromWord(192, 256);
  tb.setCsrMtvec(60 * 4);
  tb.setMode(false);

  sim::VcdWriter vcd(tb.simulator());
  const SocInstance& inst = tb.instance();
  vcd.addSignal(inst.pc, "pc");
  vcd.addSignal(inst.stall, "stall");
  vcd.addSignal(inst.flushWB, "flush_wb");
  vcd.addSignal(inst.pmpFaultWire, "pmp_fault");
  vcd.addSignal(inst.rawReqValid, "cache_req_valid");
  vcd.addSignal(inst.rawReqWordAddr, "cache_req_addr");
  vcd.addSignal(inst.pendingValid, "pending_store");
  vcd.addSignal(inst.respBuf, "resp_buf");
  vcd.addSignal(inst.mode, "machine_mode");
  vcd.addSignal(inst.mcause, "mcause");

  std::ofstream os(path);
  vcd.writeHeader(os);
  for (int cycle = 0; cycle < 40; ++cycle) {
    vcd.sample(os);
    tb.step();
  }
  std::printf("wrote %s (%d cycles)\n", path, 40);
}

}  // namespace

int main() {
  std::printf("Dumping Orc-attack waveforms (guess == secret line)...\n");
  dumpRun(SocVariant::kOrc, "orc_vulnerable.vcd");
  dumpRun(SocVariant::kSecure, "orc_secure.vcd");
  std::printf("\nCompare the 'stall' strobe around the pmp_fault in the two files:\n");
  std::printf("the vulnerable design freezes for the pending-store countdown —\n");
  std::printf("that difference IS the covert channel.\n");
  return 0;
}
