// Meltdown-style attack by PRIME+PROBE on the cycle-accurate SoC model
// (paper Fig. 1 / Sec. VII-B).
//
// The attacker first PRIMES the cache (fills every line with its own
// array), then triggers the transient sequence — a faulting load of the
// secret and a dependent load whose address *is* the secret. On the
// vulnerable design the dependent load's refill is not cancelled by the
// exception, so it evicts exactly one primed line (the one the secret
// indexes). The attacker then PROBES each line with timed loads: the
// evicted line misses and takes visibly longer.
//
// Build & run:  ./build/examples/meltdown_footprint
#include <cstdio>

#include "riscv/assembler.hpp"
#include "soc/attack.hpp"
#include "soc/testbench.hpp"

using namespace upec;
using namespace upec::soc;

namespace {

constexpr std::uint32_t kSecretWord = 200;
constexpr unsigned kLines = 16;
constexpr std::uint32_t kArrayWord = 64;  // attacker's array, line-aligned

SocConfig attackConfig(SocVariant v) {
  SocConfig c;
  c.machine.xlen = 32;
  c.machine.nregs = 16;
  c.machine.imemWords = 128;
  c.machine.dmemWords = 256;
  c.machine.pmpEntries = 2;
  c.cacheLines = kLines;
  c.pendingWriteCycles = 8;
  c.refillCycles = 6;
  c.variant = v;
  return c;
}

// Primes line `line`, runs the transient access, then probes the same line
// and returns the probe latency in cycles.
unsigned primeTransientProbe(SocVariant variant, std::uint32_t secret, unsigned line) {
  using riscv::Assembler;
  SocTestbench tb(attackConfig(variant));

  Assembler a;
  // PRIME: load our array entry for this line (fills the cache line).
  a.li(1, static_cast<std::int32_t>((kArrayWord + line) * 4));
  a.lw(2, 1, 0);
  // TRANSIENT: faulting load of the secret + dependent load.
  a.li(3, kSecretWord * 4);
  a.lw(4, 3, 0);  // PMP exception; handler returns to `resume`
  a.lw(5, 4, 0);  // transient refill indexed by the secret (if not cancelled)
  const auto park = a.newLabel();
  a.bind(park);
  a.j(park);
  tb.loadProgram(a.finish());

  // Handler at 0x100: skip past the faulting instruction, return to user.
  Assembler h;
  h.csrrs(6, riscv::kCsrMepc, 0);
  h.addi(6, 6, 8);  // skip lw x4 and the dependent lw
  h.csrrw(0, riscv::kCsrMepc, 6);
  h.mret();
  tb.loadProgram(h.finish(), 0x100 / 4);
  tb.setCsrMtvec(0x100);

  tb.setDmemWord(kSecretWord, secret);
  tb.preloadCacheLine(kSecretWord, secret);
  tb.protectFromWord(192, 256);
  tb.setMode(false);
  tb.run(120);  // prime + transient + handler + return

  // PROBE: timed reload of the primed entry (still cached = fast;
  // evicted by the transient refill = refill latency).
  const std::uint64_t before = tb.cycle();
  riscv::Assembler p;
  p.li(7, static_cast<std::int32_t>((kArrayWord + line) * 4));
  p.lw(8, 7, 0);
  const auto park2 = p.newLabel();
  p.bind(park2);
  p.j(park2);
  // Re-point the pc at a fresh probe program placed at 0x80.
  tb.loadProgram(p.finish(), 0x80 / 4);
  tb.setPc(0x80);
  tb.runUntilEvents(tb.commits().size() + 2, 100);
  return static_cast<unsigned>(tb.cycle() - before);
}

}  // namespace

int main() {
  std::printf("=== Meltdown-style attack by prime+probe (paper Sec. VII-B) ===\n\n");
  const std::uint32_t secret = 0x1B4;  // word 109 -> cache line 13
  const unsigned secretLine = (secret >> 2) % kLines;
  std::printf("secret value 0x%X indexes cache line %u\n\n", secret, secretLine);

  for (const SocVariant variant : {SocVariant::kMeltdownStyle, SocVariant::kSecure}) {
    std::printf("--- %s design ---\n", variantName(variant));
    unsigned slowest = 0, slowestCycles = 0;
    for (unsigned line = 0; line < kLines; ++line) {
      if (line == kSecretWord % kLines) continue;  // the secret's own (public) line
      const unsigned cycles = primeTransientProbe(variant, secret, line);
      std::printf("  probe line %2u: %3u cycles%s\n", line, cycles,
                  cycles > slowestCycles ? "  <-" : "");
      if (cycles > slowestCycles) {
        slowestCycles = cycles;
        slowest = line;
      }
    }
    if (variant == SocVariant::kMeltdownStyle) {
      std::printf("slow probe = evicted line %u => secret cache line %s\n\n", slowest,
                  slowest == secretLine ? "RECOVERED" : "(miss)");
    } else {
      std::printf("no line was evicted by the transient access: nothing leaks\n\n");
    }
  }
  return 0;
}
