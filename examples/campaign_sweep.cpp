// Campaign sweep: the paper's evaluation matrix as one parallel batch.
//
// Builds the scenario × constraint-toggle matrix over the secure MiniRV
// design, runs it on the work-stealing pool with incremental window
// deepening — each check decided by a cooperative 2-member portfolio with
// learnt-clause sharing, under a campaign-wide solver-thread cap, with
// budget-aware rescheduling of undecided windows — and prints the per-job
// verdicts plus the machine-readable JSON report that downstream tooling
// (dashboards, CI gates) consumes.
//
// Build & run:  ./build/examples/campaign_sweep [report.json] [flags]
// An optional positional argument names a file the JSON report is also
// written to (CI's smoke leg uploads it as a workflow artifact).
//
// Telemetry flags (all off by default; see src/obs/README.md):
//   --trace <trace.json>      record tracing spans, write Chrome trace JSON
//                             (load in chrome://tracing or ui.perfetto.dev)
//   --events <events.ndjson>  stream one NDJSON line per window verdict /
//                             job completion / reschedule escalation, live
//                             (`tail -f events.ndjson` while the sweep runs)
//   --metrics <metrics.json>  collect the metrics registry and dump it
//                             standalone (also folded into the report JSON)
//
// Reduction flag (off by default; see src/rtl/README.md):
//   --reduce                  shrink every job's miter with the RTL
//                             reduction pass pipeline before encoding; the
//                             verdicts are unchanged (bench/campaign.cpp
//                             section [7] asserts that) and the report JSON
//                             gains per-job and campaign-wide pass stats
//
// Crash safety (off by default; see src/engine/README.md):
//   --checkpoint <ck.ndjson>  journal every decided window / finished job
//                             to an append-only NDJSON file as it closes
//   --resume                  with --checkpoint: load the journal first and
//                             adopt what a previous (killed) run already
//                             decided, re-solving only from the first gap.
//                             An unusable journal degrades to a fresh start
//                             with the reason in the report diagnostics.
//                             CI's smoke leg SIGKILLs a sweep mid-run and
//                             diffs the resumed verdicts against an
//                             uninterrupted run's.
//
// Campaign caches (off by default; see src/engine/README.md):
//   --cache                   share the encoded miter CNF prefix across the
//                             jobs of each encoding equivalence class and
//                             carry window-close exchange survivors between
//                             sibling jobs through a campaign clause store.
//                             Verdict-preserving by construction; the
//                             prefix-cached trajectory is conflict-identical
//                             (bench/campaign.cpp section [10] asserts that)
//   --warm-start <ck.ndjson>  seed this run's clause store and reschedule
//                             budgets from a previous finished run's
//                             checkpoint journal; an unusable donor journal
//                             degrades to a cold start with the reason in
//                             the report diagnostics
//
// Live introspection (off by default; see src/obs/README.md):
//   --status-port <n>         serve /metrics (Prometheus), /status (JSON
//                             progress + ETA) and /events (NDJSON tail) on
//                             127.0.0.1:<n> while the sweep runs; 0 picks
//                             an ephemeral port (printed at startup). Watch
//                             live with ./build/examples/campaign_top <n>.
//   --profile                 per-solve CDCL phase timings (propagate /
//                             analyze / reduceDB / restart) and imported-
//                             clause efficacy counters, folded into the
//                             report JSON. Verdicts and trajectories are
//                             unchanged (bench/campaign.cpp section [9]
//                             asserts that).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "base/log.hpp"
#include "engine/campaign.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"

using namespace upec;
using namespace upec::engine;

int main(int argc, char** argv) {
  std::string reportPath, tracePath, eventsPath, metricsPath, checkpointPath, warmStartPath;
  bool reduce = false;
  bool resume = false;
  bool profile = false;
  bool cache = false;
  int statusPort = -1;  // -1 = no endpoint; 0 = ephemeral
  for (int i = 1; i < argc; ++i) {
    auto flagValue = [&](const char* flag, std::string& out) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a file argument\n", flag);
        std::exit(2);
      }
      out = argv[++i];
      return true;
    };
    if (flagValue("--trace", tracePath) || flagValue("--events", eventsPath) ||
        flagValue("--metrics", metricsPath) || flagValue("--checkpoint", checkpointPath) ||
        flagValue("--warm-start", warmStartPath)) {
      continue;
    }
    if (std::strcmp(argv[i], "--cache") == 0) {
      cache = true;
      continue;
    }
    if (std::strcmp(argv[i], "--reduce") == 0) {
      reduce = true;
      continue;
    }
    if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
      continue;
    }
    if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
      continue;
    }
    if (std::strcmp(argv[i], "--status-port") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--status-port needs a port argument\n");
        return 2;
      }
      statusPort = std::atoi(argv[++i]);
      if (statusPort < 0 || statusPort > 65535) {
        std::fprintf(stderr, "--status-port: %s is not a port\n", argv[i]);
        return 2;
      }
      continue;
    }
    if (argv[i][0] == '-' || !reportPath.empty()) {
      std::fprintf(stderr,
                   "usage: campaign_sweep [report.json] [--trace trace.json] "
                   "[--events events.ndjson] [--metrics metrics.json] [--reduce] "
                   "[--checkpoint ck.ndjson [--resume]] [--status-port n] [--profile] "
                   "[--cache] [--warm-start ck.ndjson]\n");
      return 2;
    }
    reportPath = argv[i];
  }
  if (resume && checkpointPath.empty()) {
    std::fprintf(stderr, "--resume needs --checkpoint <file>\n");
    return 2;
  }

  SweepMatrix matrix;
  matrix.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  matrix.secretWord = 12;
  matrix.scenarios = {SecretScenario::kInCache, SecretScenario::kNotInCache};

  UpecOptions full;                 // all Sec. V-A constraints on
  full.profileSolver = profile;     // phase timings + import efficacy, opt-in
  UpecOptions noC1;                 // ablation: admit in-flight protected accesses
  noC1.constraint1NoOngoing = false;
  noC1.profileSolver = profile;
  matrix.variants = {{"all constraints", full}, {"without constraint 1", noC1}};

  matrix.kind = JobKind::kIntervalLadder;
  matrix.mode = DeepeningMode::kIncremental;  // one solver per job, frames reused
  matrix.kMin = 1;
  matrix.kMax = 2;
  matrix.portfolio = 2;   // race two diversified CDCL configs per check...
  matrix.sharing = true;  // ...and let them exchange learnt clauses
  matrix.reduce = reduce;

  const std::vector<JobSpec> jobs = enumerateJobs(matrix);
  std::printf("campaign: %zu jobs (2 scenarios x 2 constraint variants, k=%u..%u,\n"
              "          sharing portfolio of %u per check%s)\n\n",
              jobs.size(), matrix.kMin, matrix.kMax, matrix.portfolio,
              reduce ? ", reduction pipeline on" : "");

  // Telemetry, strictly opt-in: verdicts and solver trajectories are
  // identical with everything enabled (bench/campaign.cpp section [6]
  // asserts exactly that).
  obs::TraceRecorder recorder;
  if (!tracePath.empty()) recorder.start();
  // A status endpoint implies metrics collection: /metrics would scrape an
  // empty registry otherwise (CI's smoke leg cross-checks a mid-run scrape
  // against the report's metrics fold).
  if (!metricsPath.empty() || statusPort >= 0) {
    obs::metrics().reset();
    obs::setMetricsEnabled(true);
  }
  std::unique_ptr<obs::NdjsonWriter> events;
  if (!eventsPath.empty()) {
    events = std::make_unique<obs::NdjsonWriter>(eventsPath);
    if (!events->ok()) {
      std::fprintf(stderr, "cannot write %s\n", eventsPath.c_str());
      return 2;
    }
    // Route engine log lines onto the same stream, interleaved with the
    // window verdicts on one time base.
    obs::routeLogToObserver(events.get());
  }

  CampaignOptions options;  // threads = all cores
  options.observer = events.get();
  // Cap racing member threads campaign-wide so workers x members cannot
  // oversubscribe the machine; portfolios degrade member count instead.
  options.solverThreadCap = 4;
  // Budget-aware rescheduling: start every window under a small conflict
  // budget and let the scheduler escalate only the windows that come back
  // undecided, onto idle workers. The verdicts are the same as an
  // unlimited-budget campaign's — only the work distribution changes.
  options.reschedule.enabled = true;
  options.reschedule.initialBudget = 2000;
  options.reschedule.budgetGrowth = 8.0;
  options.reschedule.maxReschedules = 10;
  // Crash safety: journal every decided window as it closes; on --resume,
  // adopt what the previous (killed) run decided and solve only the rest.
  options.checkpoint.path = checkpointPath;
  options.checkpoint.resume = resume;
  // Campaign caches: one cold encode per encoding equivalence class, and a
  // clause store carrying exchange survivors across sibling jobs — or, via
  // --warm-start, in from a previous finished run's journal (which also
  // pre-sizes the reschedule budgets from its decided-by-attempt histogram).
  options.cache.prefix = cache;
  options.cache.clauseStore = cache;
  options.cache.warmStartPath = warmStartPath;
  options.cache.primeBudgets = !warmStartPath.empty();
  // Live introspection endpoint. The engine announces the bound port via
  // logInfo ("campaign: status endpoint on http://127.0.0.1:<port>") — turn
  // info logging on so an ephemeral choice (--status-port 0) is printed.
  options.statusPort = statusPort;
  if (statusPort >= 0 && logLevel() < LogLevel::kInfo) setLogLevel(LogLevel::kInfo);
  const CampaignReport report = runCampaign(jobs, options);

  obs::routeLogToObserver(nullptr);
  if (!tracePath.empty()) {
    recorder.stop();
    if (recorder.writeFile(tracePath)) {
      std::printf("trace: %zu events (%llu dropped) -> %s\n",
                  recorder.eventCount(),
                  static_cast<unsigned long long>(recorder.droppedEvents()),
                  tracePath.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", tracePath.c_str());
      return 2;
    }
  }
  if (!metricsPath.empty()) {
    obs::setMetricsEnabled(false);
    const std::string json = obs::metrics().toJson();
    if (std::FILE* f = std::fopen(metricsPath.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("metrics -> %s\n", metricsPath.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", metricsPath.c_str());
      return 2;
    }
  }
  if (events) {
    std::printf("events: %llu NDJSON lines -> %s\n",
                static_cast<unsigned long long>(events->linesWritten()), eventsPath.c_str());
  }

  for (const JobResult& job : report.jobs) {
    std::printf("  job %u  %-34s -> %-8s  (%.1f s, worker %u, peak %llu vars)\n",
                job.id, job.label.c_str(), verdictName(job.verdict), job.wallMs / 1e3,
                job.worker, static_cast<unsigned long long>(job.peakVars));
    for (const std::string& reg : job.pAlertRegisters) {
      std::printf("           P-alert register: %s\n", reg.c_str());
    }
  }
  std::printf("\noverall: %s — %zu proven, %zu P-alerts, %zu L-alerts, %zu unknown, %zu errors\n",
              verdictName(report.overallVerdict), report.numProven, report.numPAlerts,
              report.numLAlerts, report.numUnknown, report.numErrors);
  std::printf("wall clock %.1f s on %u threads (sum of job times %.1f s)\n",
              report.wallMs / 1e3, report.threads, report.sumJobWallMs / 1e3);
  std::printf("solver-thread cap %u (peak in use %u); clause exchange: %llu exported, "
              "%llu imported, %llu dropped\n",
              report.solverThreadCap, report.peakSolverThreads,
              static_cast<unsigned long long>(report.totalClausesExported),
              static_cast<unsigned long long>(report.totalClausesImported),
              static_cast<unsigned long long>(report.totalClausesDropped));
  std::printf("rescheduling: %u windows rescheduled (%u decided by retry, %u attempts, "
              "%u abandoned), %llu retry conflicts\n",
              report.windowsRescheduled, report.windowsDecidedByRetry,
              report.rescheduleAttempts, report.reschedulesAbandoned,
              static_cast<unsigned long long>(report.rescheduleConflicts));
  if (report.profileEnabled) {
    std::printf("profile: propagate %.1f ms, analyze %.1f ms, reduceDB %.1f ms, "
                "restart+exchange %.1f ms; imported clauses used: %llu propagated, "
                "%llu in conflicts\n",
                report.totalPropagateTimeNs / 1e6, report.totalAnalyzeTimeNs / 1e6,
                report.totalReduceTimeNs / 1e6, report.totalRestartTimeNs / 1e6,
                static_cast<unsigned long long>(report.totalImportedUsedInPropagation),
                static_cast<unsigned long long>(report.totalImportedUsedInConflict));
  }
  if (report.checkpointEnabled) {
    std::printf("checkpoint: %s%s — %u windows and %u jobs replayed%s\n",
                checkpointPath.c_str(), report.resumed ? " (resumed)" : "",
                report.replayedWindows, report.replayedJobs,
                report.checkpointWriteFailed ? "; JOURNAL WRITE FAILED mid-run" : "");
    for (const std::string& diag : report.checkpointDiagnostics) {
      std::printf("            %s\n", diag.c_str());
    }
  }
  if (report.reductionEnabled) {
    std::printf("reduction: %zu jobs shrunk before encoding — nodes %llu -> %llu, "
                "registers %llu -> %llu (%llu merged, %llu folded to constants)\n",
                report.reductionJobs,
                static_cast<unsigned long long>(report.reductionNodesBefore),
                static_cast<unsigned long long>(report.reductionNodesAfter),
                static_cast<unsigned long long>(report.reductionRegistersBefore),
                static_cast<unsigned long long>(report.reductionRegistersAfter),
                static_cast<unsigned long long>(report.reductionRegistersMerged),
                static_cast<unsigned long long>(report.reductionConstantsFolded));
  }
  if (report.cachePrefixEnabled) {
    std::printf("prefix cache: %llu hits / %llu misses (%llu encoded), %u jobs cloned a "
                "cached prefix\n",
                static_cast<unsigned long long>(report.prefixHits),
                static_cast<unsigned long long>(report.prefixMisses),
                static_cast<unsigned long long>(report.prefixInsertions),
                report.jobsEncodedFromCache);
  }
  if (report.cacheStoreEnabled) {
    std::printf("clause store: %llu promoted (%llu duplicates, %llu over capacity), "
                "%llu fetched, %llu seeded into sibling windows\n",
                static_cast<unsigned long long>(report.storePromoted),
                static_cast<unsigned long long>(report.storeDuplicates),
                static_cast<unsigned long long>(report.storeOverflow),
                static_cast<unsigned long long>(report.storeFetched),
                static_cast<unsigned long long>(report.storeSeededClauses));
  }
  if (!warmStartPath.empty()) {
    std::printf("warm start: %s — %s, %llu donor clauses promoted%s\n", warmStartPath.c_str(),
                report.warmStarted ? "donor journal loaded" : "DONOR UNUSABLE, started cold",
                static_cast<unsigned long long>(report.warmStartClauses),
                report.budgetsPrimed ? "" : "; budgets not primed");
    if (report.budgetsPrimed) {
      std::printf("            budgets primed from attempt %u -> initial budget %llu\n",
                  report.primedFromAttempt,
                  static_cast<unsigned long long>(report.primedInitialBudget));
    }
    for (const std::string& diag : report.cacheDiagnostics) {
      std::printf("            %s\n", diag.c_str());
    }
  }
  std::printf("\n");

  const std::string json = report.toJson();
  std::printf("JSON report:\n%s\n", json.c_str());
  if (!reportPath.empty()) {
    if (std::FILE* f = std::fopen(reportPath.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("JSON report written to %s\n", reportPath.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", reportPath.c_str());
      return 2;
    }
  }
  // The sweep must decide every window: an unknown here means the
  // escalation ladder gave up, and an error means a job's execution failed
  // (contained, but still a failure) — the smoke leg treats both as such.
  if (report.numUnknown != 0 || report.numErrors != 0) return 1;
  return report.overallVerdict == Verdict::kLAlert ? 1 : 0;
}
