// Campaign sweep: the paper's evaluation matrix as one parallel batch.
//
// Builds the scenario × constraint-toggle matrix over the secure MiniRV
// design, runs it on the work-stealing pool with incremental window
// deepening — each check decided by a cooperative 2-member portfolio with
// learnt-clause sharing, under a campaign-wide solver-thread cap, with
// budget-aware rescheduling of undecided windows — and prints the per-job
// verdicts plus the machine-readable JSON report that downstream tooling
// (dashboards, CI gates) consumes.
//
// Build & run:  ./build/examples/campaign_sweep [report.json]
// An optional argument names a file the JSON report is also written to
// (CI's smoke leg uploads it as a workflow artifact).
#include <cstdio>

#include "engine/campaign.hpp"

using namespace upec;
using namespace upec::engine;

int main(int argc, char** argv) {
  SweepMatrix matrix;
  matrix.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  matrix.secretWord = 12;
  matrix.scenarios = {SecretScenario::kInCache, SecretScenario::kNotInCache};

  UpecOptions full;                 // all Sec. V-A constraints on
  UpecOptions noC1;                 // ablation: admit in-flight protected accesses
  noC1.constraint1NoOngoing = false;
  matrix.variants = {{"all constraints", full}, {"without constraint 1", noC1}};

  matrix.kind = JobKind::kIntervalLadder;
  matrix.mode = DeepeningMode::kIncremental;  // one solver per job, frames reused
  matrix.kMin = 1;
  matrix.kMax = 2;
  matrix.portfolio = 2;   // race two diversified CDCL configs per check...
  matrix.sharing = true;  // ...and let them exchange learnt clauses

  const std::vector<JobSpec> jobs = enumerateJobs(matrix);
  std::printf("campaign: %zu jobs (2 scenarios x 2 constraint variants, k=%u..%u,\n"
              "          sharing portfolio of %u per check)\n\n",
              jobs.size(), matrix.kMin, matrix.kMax, matrix.portfolio);

  CampaignOptions options;  // threads = all cores
  // Cap racing member threads campaign-wide so workers x members cannot
  // oversubscribe the machine; portfolios degrade member count instead.
  options.solverThreadCap = 4;
  // Budget-aware rescheduling: start every window under a small conflict
  // budget and let the scheduler escalate only the windows that come back
  // undecided, onto idle workers. The verdicts are the same as an
  // unlimited-budget campaign's — only the work distribution changes.
  options.reschedule.enabled = true;
  options.reschedule.initialBudget = 2000;
  options.reschedule.budgetGrowth = 8.0;
  options.reschedule.maxReschedules = 10;
  const CampaignReport report = runCampaign(jobs, options);

  for (const JobResult& job : report.jobs) {
    std::printf("  job %u  %-34s -> %-8s  (%.1f s, worker %u, peak %llu vars)\n",
                job.id, job.label.c_str(), verdictName(job.verdict), job.wallMs / 1e3,
                job.worker, static_cast<unsigned long long>(job.peakVars));
    for (const std::string& reg : job.pAlertRegisters) {
      std::printf("           P-alert register: %s\n", reg.c_str());
    }
  }
  std::printf("\noverall: %s — %zu proven, %zu P-alerts, %zu L-alerts, %zu unknown\n",
              verdictName(report.overallVerdict), report.numProven, report.numPAlerts,
              report.numLAlerts, report.numUnknown);
  std::printf("wall clock %.1f s on %u threads (sum of job times %.1f s)\n",
              report.wallMs / 1e3, report.threads, report.sumJobWallMs / 1e3);
  std::printf("solver-thread cap %u (peak in use %u); clause exchange: %llu exported, "
              "%llu imported, %llu dropped\n",
              report.solverThreadCap, report.peakSolverThreads,
              static_cast<unsigned long long>(report.totalClausesExported),
              static_cast<unsigned long long>(report.totalClausesImported),
              static_cast<unsigned long long>(report.totalClausesDropped));
  std::printf("rescheduling: %u windows rescheduled (%u decided by retry, %u attempts, "
              "%u abandoned), %llu retry conflicts\n\n",
              report.windowsRescheduled, report.windowsDecidedByRetry,
              report.rescheduleAttempts, report.reschedulesAbandoned,
              static_cast<unsigned long long>(report.rescheduleConflicts));

  const std::string json = report.toJson();
  std::printf("JSON report:\n%s\n", json.c_str());
  if (argc > 1) {
    if (std::FILE* f = std::fopen(argv[1], "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("JSON report written to %s\n", argv[1]);
    } else {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 2;
    }
  }
  // The sweep must decide every window: an unknown here means the
  // escalation ladder gave up, which the smoke leg treats as a failure.
  if (report.numUnknown != 0) return 1;
  return report.overallVerdict == Verdict::kLAlert ? 1 : 0;
}
