// Campaign sweep: the paper's evaluation matrix as one parallel batch.
//
// Builds the scenario × constraint-toggle matrix over the secure MiniRV
// design, runs it on the work-stealing pool with incremental window
// deepening — each check decided by a cooperative 2-member portfolio with
// learnt-clause sharing, under a campaign-wide solver-thread cap — and
// prints the per-job verdicts plus the machine-readable JSON report that
// downstream tooling (dashboards, CI gates) consumes.
//
// Build & run:  ./build/examples/campaign_sweep
#include <cstdio>

#include "engine/campaign.hpp"

using namespace upec;
using namespace upec::engine;

int main() {
  SweepMatrix matrix;
  matrix.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  matrix.secretWord = 12;
  matrix.scenarios = {SecretScenario::kInCache, SecretScenario::kNotInCache};

  UpecOptions full;                 // all Sec. V-A constraints on
  UpecOptions noC1;                 // ablation: admit in-flight protected accesses
  noC1.constraint1NoOngoing = false;
  matrix.variants = {{"all constraints", full}, {"without constraint 1", noC1}};

  matrix.kind = JobKind::kIntervalLadder;
  matrix.mode = DeepeningMode::kIncremental;  // one solver per job, frames reused
  matrix.kMin = 1;
  matrix.kMax = 2;
  matrix.portfolio = 2;   // race two diversified CDCL configs per check...
  matrix.sharing = true;  // ...and let them exchange learnt clauses

  const std::vector<JobSpec> jobs = enumerateJobs(matrix);
  std::printf("campaign: %zu jobs (2 scenarios x 2 constraint variants, k=%u..%u,\n"
              "          sharing portfolio of %u per check)\n\n",
              jobs.size(), matrix.kMin, matrix.kMax, matrix.portfolio);

  CampaignOptions options;  // threads = all cores
  // Cap racing member threads campaign-wide so workers x members cannot
  // oversubscribe the machine; portfolios degrade member count instead.
  options.solverThreadCap = 4;
  const CampaignReport report = runCampaign(jobs, options);

  for (const JobResult& job : report.jobs) {
    std::printf("  job %u  %-34s -> %-8s  (%.1f s, worker %u, peak %llu vars)\n",
                job.id, job.label.c_str(), verdictName(job.verdict), job.wallMs / 1e3,
                job.worker, static_cast<unsigned long long>(job.peakVars));
    for (const std::string& reg : job.pAlertRegisters) {
      std::printf("           P-alert register: %s\n", reg.c_str());
    }
  }
  std::printf("\noverall: %s — %zu proven, %zu P-alerts, %zu L-alerts, %zu unknown\n",
              verdictName(report.overallVerdict), report.numProven, report.numPAlerts,
              report.numLAlerts, report.numUnknown);
  std::printf("wall clock %.1f s on %u threads (sum of job times %.1f s)\n",
              report.wallMs / 1e3, report.threads, report.sumJobWallMs / 1e3);
  std::printf("solver-thread cap %u (peak in use %u); clause exchange: %llu exported, "
              "%llu imported, %llu dropped\n\n",
              report.solverThreadCap, report.peakSolverThreads,
              static_cast<unsigned long long>(report.totalClausesExported),
              static_cast<unsigned long long>(report.totalClausesImported),
              static_cast<unsigned long long>(report.totalClausesDropped));

  std::printf("JSON report:\n%s\n", report.toJson().c_str());
  return report.overallVerdict == Verdict::kLAlert ? 1 : 0;
}
