// Applying the UPEC idea to YOUR OWN hardware, without the MiniRV SoC:
// build two instances of a design in one netlist, share everything except
// the secret, and ask the BMC engine whether observable state can diverge.
//
// The design under test is a serial password checker that compares one
// byte per cycle. The "early-exit" implementation stops at the first
// mismatch (fewer cycles = closer guess — the classic timing side
// channel); the "constant-time" implementation always scans the full
// length. UPEC-style checking flags the first and proves the second.
//
// Build & run:  ./build/examples/custom_design
#include <cstdio>

#include "formal/bmc.hpp"
#include "rtl/ir.hpp"

using namespace upec;
using rtl::Design;
using rtl::Sig;
using rtl::StateClass;

namespace {

constexpr unsigned kBytes = 4;  // password length (one word register each)

struct Checker {
  std::vector<Sig> secret;    // the stored password (may differ between instances)
  std::vector<Sig> guessReg;  // the guess, latched when the check starts
  Sig idx;                    // scan position
  Sig busy, done, match;      // protocol state (architecturally visible)
};

// One checker instance. `earlyExit`: stop scanning at the first mismatch.
Checker buildChecker(Design& d, const std::string& prefix, Sig start,
                     const std::vector<Sig>& guess, bool earlyExit) {
  Checker c;
  for (unsigned i = 0; i < kBytes; ++i) {
    c.secret.push_back(d.reg(8, prefix + "secret" + std::to_string(i), StateClass::kMemory));
    d.connect(c.secret[i], c.secret[i]);  // constant during the check
  }
  c.idx = d.reg(3, prefix + "idx", StateClass::kMicro);
  c.busy = d.reg(1, prefix + "busy", StateClass::kArch);
  c.done = d.reg(1, prefix + "done", StateClass::kArch);
  c.match = d.reg(1, prefix + "match", StateClass::kArch);
  // Latch the guess when a check is accepted, like a real command register.
  const Sig accept = start & ~c.busy;
  for (unsigned i = 0; i < kBytes; ++i) {
    c.guessReg.push_back(d.reg(8, prefix + "guess" + std::to_string(i), StateClass::kMicro));
    d.connect(c.guessReg[i], d.mux(accept, guess[i], c.guessReg[i]));
  }

  // Current byte comparison (against the latched guess).
  Sig cur = c.secret[0];
  for (unsigned i = 1; i < kBytes; ++i) {
    cur = d.mux(c.idx.eq(d.constant(3, i)), c.secret[i], cur);
  }
  Sig guessCur = c.guessReg[0];
  for (unsigned i = 1; i < kBytes; ++i) {
    guessCur = d.mux(c.idx.eq(d.constant(3, i)), c.guessReg[i], guessCur);
  }
  const Sig byteOk = cur.eq(guessCur);
  const Sig lastByte = c.idx.eq(d.constant(3, kBytes - 1));
  const Sig stop = earlyExit ? (lastByte | ~byteOk) : lastByte;

  d.connect(c.idx, d.mux(c.busy, d.mux(stop, d.zero(3), c.idx + d.one(3)),
                         d.mux(start, d.zero(3), c.idx)));
  d.connect(c.busy, d.mux(c.busy, d.mux(stop, d.zero(1), d.one(1)), start));
  d.connect(c.done, d.mux(c.busy & stop, d.one(1), d.mux(start, d.zero(1), c.done)));
  d.connect(c.match,
            d.mux(c.busy, c.match & byteOk, d.mux(start, d.one(1), c.match)));
  return c;
}

bool uniqueExecution(bool earlyExit, unsigned window) {
  Design d(earlyExit ? "early_exit" : "constant_time");
  const Sig start = d.input(1, "start");
  std::vector<Sig> guess;
  for (unsigned i = 0; i < kBytes; ++i) {
    guess.push_back(d.input(8, "guess" + std::to_string(i)));  // attacker-chosen
  }
  // The miter: two instances, shared start/guess inputs, secrets free.
  const Checker a = buildChecker(d, "a.", start, guess, earlyExit);
  const Checker b = buildChecker(d, "b.", start, guess, earlyExit);

  formal::IntervalProperty p;
  p.name = "unique_execution";
  // Both idle and equal at t; the secrets are unconstrained (that is the
  // difference the attacker wants to observe).
  p.assumeAt(0, ~a.busy & ~b.busy & ~a.done & ~b.done, "both idle");
  p.assumeAt(0, a.idx.eq(d.zero(3)) & b.idx.eq(d.zero(3)), "scanners reset");
  p.assumeAt(0, a.match.eq(b.match), "equal flags");
  p.assumeAt(0, a.guessReg[0].eq(b.guessReg[0]), "latched guesses equal (0)");
  for (unsigned i = 1; i < kBytes; ++i) {
    p.assumeAt(0, a.guessReg[i].eq(b.guessReg[i]),
               "latched guesses equal (" + std::to_string(i) + ")");
  }
  // Exclude the one legitimate difference: whether the guess IS the
  // password may differ — a checker must reveal full equality. So the
  // attacker's vector never equals either secret, at any cycle.
  Sig guessNeqA = d.zero(1).redOr();
  Sig guessNeqB = d.zero(1).redOr();
  for (unsigned i = 0; i < kBytes; ++i) {
    guessNeqA = guessNeqA | a.secret[i].ne(guess[i]);
    guessNeqB = guessNeqB | b.secret[i].ne(guess[i]);
  }
  p.assumeAlways(guessNeqA & guessNeqB, "guess input matches neither secret");
  // ...including the vectors already latched at t.
  Sig latchedNeqA = d.zero(1).redOr();
  Sig latchedNeqB = d.zero(1).redOr();
  for (unsigned i = 0; i < kBytes; ++i) {
    latchedNeqA = latchedNeqA | a.secret[i].ne(a.guessReg[i]);
    latchedNeqB = latchedNeqB | b.secret[i].ne(b.guessReg[i]);
  }
  p.assumeAt(0, latchedNeqA & latchedNeqB, "latched guess matches neither secret");

  // Commitment: the architecturally visible protocol state must evolve
  // identically — in particular `done` must rise at the same cycle. The
  // `match` flag is only architecturally meaningful once `done` is set
  // (before that it is scanner-internal state), so its equality is
  // committed under that condition.
  for (unsigned t = 1; t <= window; ++t) {
    p.proveAt(t, a.busy.eq(b.busy), "busy equal");
    p.proveAt(t, a.done.eq(b.done), "done equal");
    p.proveAt(t, ~(a.done & b.done) | a.match.eq(b.match), "result equal when done");
  }

  formal::BmcEngine engine(d);
  const formal::CheckResult res = engine.check(p);
  return res.holds();
}

}  // namespace

int main() {
  std::printf("UPEC beyond processors: a serial password checker\n\n");
  const unsigned window = kBytes + 2;

  const bool earlyExitUnique = uniqueExecution(/*earlyExit=*/true, window);
  std::printf("early-exit comparator:    %s\n",
              earlyExitUnique ? "unique execution (secure)"
                              : "NOT unique - completion time depends on the secret "
                                "(timing side channel)");

  const bool constTimeUnique = uniqueExecution(/*earlyExit=*/false, window);
  std::printf("constant-time comparator: %s\n",
              constTimeUnique ? "unique execution PROVEN for all secrets and guesses"
                              : "NOT unique?!");

  std::printf("\nSame methodology, ~100 lines: two shared-input instances, secrets\n");
  std::printf("free, observable state compared cycle by cycle.\n");
  return (!earlyExitUnique && constTimeUnique) ? 0 : 1;
}
