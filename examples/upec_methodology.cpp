// The designer's UPEC workflow (paper Fig. 5), narrated step by step.
//
// Usage:  ./build/examples/upec_methodology [secure|orc|meltdown|pmpbug]
//
// For the secure design and the Orc variant the full methodology loop is
// narrated: check the UPEC property at growing windows, remove P-alert
// registers from the proof obligation, stop on an L-alert (insecure) or
// discharge the accumulated P-alerts with an inductive proof (secure).
// For the deeper-window variants (meltdown, pmpbug) the example uses the
// vulnerability-hunt strategy (first P-alert under the full commitment,
// then an architectural-only search), as a designer would once the
// compromise is obvious.
#include <cstdio>
#include <cstring>
#include <string>

#include "upec/cex_report.hpp"
#include "upec/upec.hpp"

using namespace upec;

namespace {

int narratedMethodology(Miter& miter, const UpecOptions& options, unsigned maxWindow) {
  UpecEngine engine(miter, options);
  std::set<std::string> excluded;
  std::size_t pAlertCount = 0;
  for (unsigned k = 1; k <= maxWindow; ++k) {
    std::printf("-- window k = %u --\n", k);
    for (;;) {
      const UpecResult res = engine.check(k, excluded);
      if (res.verdict == Verdict::kProven) {
        std::printf("   holds (no further counterexample at this window)\n");
        break;
      }
      if (res.verdict == Verdict::kPAlert) {
        ++pAlertCount;
        std::printf("   P-alert: secret reached program-invisible state:");
        for (const std::string& r : res.differingMicro) std::printf(" %s", r.c_str());
        std::printf("\n   -> removing these from the commitment, re-checking\n");
        for (const std::string& r : res.differingMicro) excluded.insert(r);
        continue;
      }
      if (res.verdict == Verdict::kLAlert) {
        std::printf("   L-ALERT: architectural state depends on the secret:");
        for (const std::string& r : res.differingArch) std::printf(" %s", r.c_str());
        std::printf("\n\nVERDICT: design is NOT secure (a covert channel exists).\n");
        std::printf("(%zu P-alert(s) were the precursors of this leak.)\n\n", pAlertCount);
        if (res.trace) {
          const CexReport report = explainCounterexample(miter, *res.trace);
          std::printf("%s", report.pretty().c_str());
        }
        return 1;
      }
      std::printf("   inconclusive (budget)\n");
      break;
    }
  }

  if (excluded.empty()) {
    std::printf("\nVERDICT: design is secure — the secret never propagates at all.\n");
    return 0;
  }

  std::printf("\nno L-alert within k <= %u; discharging %zu P-alert register(s) by\n",
              maxWindow, excluded.size());
  std::printf("induction with the designer-supplied blocking conditions...\n");
  InductiveProver prover(miter, options);
  const auto ind = prover.prove(excluded, miniRvBlockingConditions());
  if (ind.holds) {
    std::printf("induction holds: the propagation is confined forever.\n");
    std::printf("\nVERDICT: design is secure w.r.t. covert channels.\n");
    return 0;
  }
  std::printf("induction failed; the difference can escape to:");
  for (const std::string& r : ind.escapedTo) std::printf(" %s", r.c_str());
  std::printf("\nVERDICT: inconclusive — widen the window or refine the conditions.\n");
  return 1;
}

int huntNarrative(Miter& miter, const UpecOptions& options, unsigned maxWindow) {
  std::printf("using the vulnerability-hunt strategy (architectural-only search)...\n");
  MethodologyDriver driver(miter, options);
  const MethodologyReport report = driver.hunt(maxWindow);
  if (report.firstPAlertWindow) {
    std::printf("first P-alert at window %u:", *report.firstPAlertWindow);
    for (const std::string& r : report.pAlertRegisters) std::printf(" %s", r.c_str());
    std::printf("\n");
  }
  if (report.finalVerdict == Verdict::kLAlert) {
    std::printf("L-ALERT at window %u:", *report.firstLAlertWindow);
    for (const std::string& r : report.lAlertRegisters) std::printf(" %s", r.c_str());
    std::printf("\n\nVERDICT: design is NOT secure (a covert channel exists).\n");
    return 1;
  }
  std::printf("no L-alert within k <= %u (%s)\n", maxWindow, verdictName(report.finalVerdict));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  soc::SocVariant variant = soc::SocVariant::kOrc;
  if (argc > 1) {
    if (!std::strcmp(argv[1], "secure")) variant = soc::SocVariant::kSecure;
    else if (!std::strcmp(argv[1], "orc")) variant = soc::SocVariant::kOrc;
    else if (!std::strcmp(argv[1], "meltdown")) variant = soc::SocVariant::kMeltdownStyle;
    else if (!std::strcmp(argv[1], "pmpbug")) variant = soc::SocVariant::kPmpLockBug;
    else {
      std::fprintf(stderr, "usage: %s [secure|orc|meltdown|pmpbug]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== UPEC methodology on the '%s' design ===\n\n", soc::variantName(variant));
  Miter miter(soc::SocConfig::formalSmall(variant), /*secretWord=*/12);
  std::printf("miter built: %zu paired registers, %zu dmem words, %zu cache lines\n\n",
              miter.logicPairs().size(), miter.dmemPairs().size(),
              miter.cacheDataPairs().size());

  UpecOptions options;
  options.scenario =
      variant == soc::SocVariant::kPmpLockBug ? SecretScenario::kAny : SecretScenario::kInCache;

  switch (variant) {
    case soc::SocVariant::kSecure:
      return narratedMethodology(miter, options, 2);
    case soc::SocVariant::kOrc:
      return narratedMethodology(miter, options, 3);
    case soc::SocVariant::kMeltdownStyle:
      return huntNarrative(miter, options, 10);
    case soc::SocVariant::kPmpLockBug:
      return huntNarrative(miter, options, 8);
  }
  return 2;
}
