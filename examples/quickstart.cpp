// Quickstart: the three layers of the library in ~100 lines.
//
//  1. Build hardware in the RTL IR and simulate it.
//  2. Prove a property about it with the BMC/IPC engine.
//  3. Run UPEC on a processor design and read the verdict.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "formal/bmc.hpp"
#include "sim/simulator.hpp"
#include "upec/upec.hpp"

using namespace upec;

int main() {
  // ------------------------------------------------------------------ 1 --
  // A saturating counter in the RTL IR.
  rtl::Design design("saturating_counter");
  const rtl::Sig enable = design.input(1, "enable");
  const rtl::Sig count = design.reg(8, "count", rtl::StateClass::kArch);
  const rtl::Sig limit = design.constant(8, 42);
  design.connect(count, mux(enable & count.ult(limit), count + design.one(8), count));

  sim::Simulator simulator(design);
  simulator.poke(enable, 1);
  simulator.run(100);
  simulator.evalComb();
  std::printf("1) simulated 100 cycles: count = %llu (saturated at 42)\n",
              static_cast<unsigned long long>(simulator.peek(count).uint()));

  // ------------------------------------------------------------------ 2 --
  // Prove with the interval-property engine: from ANY state with
  // count <= 42, the bound still holds three cycles later. The symbolic
  // initial state makes this an unbounded-style argument (IPC).
  formal::IntervalProperty property;
  property.name = "count_bounded";
  property.assumeAt(0, count.ule(limit), "count <= 42");
  for (unsigned t = 1; t <= 3; ++t) property.proveAt(t, count.ule(limit), "count <= 42");

  formal::BmcEngine bmc(design);
  const formal::CheckResult proof = bmc.check(property);
  std::printf("2) property '%s': %s (%llu clauses, %.1f ms)\n", property.name.c_str(),
              proof.holds() ? "PROVEN" : "FAILED",
              static_cast<unsigned long long>(proof.stats.clauses),
              proof.stats.encodeMs + proof.stats.solveMs);

  // ------------------------------------------------------------------ 3 --
  // UPEC on a full SoC: two instances of the in-order MiniRV core with
  // caches and PMP, same program, same memory except one protected secret
  // word. Does any program distinguish the secrets?
  Miter miter(soc::SocConfig::formalSmall(soc::SocVariant::kOrc), /*secretWord=*/12);
  std::printf("\n3) UPEC miter: %zu paired state registers, %zu nodes\n",
              miter.logicPairs().size(), miter.design().numNodes());

  UpecOptions options;
  options.scenario = SecretScenario::kInCache;
  UpecEngine engine(miter, options);
  std::printf("\nThe UPEC property (paper Fig. 4):\n%s\n", engine.renderProperty(2).c_str());

  const UpecResult res = engine.check(1);
  std::printf("check at window k=1: %s\n", verdictName(res.verdict));
  if (res.verdict == Verdict::kPAlert) {
    std::printf("  secret propagated into program-invisible registers:\n");
    for (const std::string& r : res.differingMicro) std::printf("    %s\n", r.c_str());
    std::printf("  (the methodology driver iterates from here — see the\n"
                "   upec_methodology example and bench/table2_vulnerabilities)\n");
  }
  return 0;
}
