// campaign_top: a `top`-style terminal watcher for a running campaign.
//
// Polls the /status endpoint a campaign opened with --status-port and
// redraws a one-screen summary: jobs done, windows decided/total with a
// progress bar, current ladder rung per job, reschedule and retry-budget
// pressure, and the ETA the tracker extrapolates from solve times so far.
//
// Run a sweep with the endpoint open, then watch it from another terminal:
//   ./build/examples/campaign_sweep --status-port 8090 &
//   ./build/examples/campaign_top 8090
//
// Exits when the campaign finishes (the endpoint reports running:false or
// stops answering). Deliberately built on the same zero-dependency client
// helper the tests use (obs::httpGet) and a string-scan of the few fields
// it renders — this is a viewer, not a JSON library.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/status_server.hpp"

namespace {

// Scans `json` for `"key":<number>` and returns the number (0.0 when
// absent). Fine for the flat top-level fields /status guarantees.
double numField(const std::string& json, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0.0;
  return std::atof(json.c_str() + pos + needle.size());
}

bool boolField(const std::string& json, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = json.find(needle);
  return pos != std::string::npos && json.compare(pos + needle.size(), 4, "true") == 0;
}

void drawBar(double fraction, int width) {
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::fputc('[', stdout);
  for (int i = 0; i < width; ++i) std::fputc(i < filled ? '#' : '.', stdout);
  std::fputc(']', stdout);
}

std::string fmtMs(double ms) {
  char buf[32];
  if (ms >= 60'000.0) {
    std::snprintf(buf, sizeof buf, "%.0fm%02.0fs", ms / 60'000.0, (ms - 60'000.0 * static_cast<int>(ms / 60'000.0)) / 1000.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fs", ms / 1000.0);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: campaign_top <port> [interval_ms]\n");
    return 2;
  }
  const int port = std::atoi(argv[1]);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "campaign_top: %s is not a port\n", argv[1]);
    return 2;
  }
  const int intervalMs = argc > 2 ? std::atoi(argv[2]) : 500;

  int misses = 0;
  bool sawCampaign = false;
  for (;;) {
    std::string body;
    if (!upec::obs::httpGet(static_cast<std::uint16_t>(port), "/status", body)) {
      // Not answering: either the campaign has not opened the port yet or
      // it already finished. A few retries disambiguate.
      if (sawCampaign || ++misses > 20) break;
      ::usleep(500 * 1000);
      continue;
    }
    misses = 0;
    sawCampaign = true;

    const bool running = boolField(body, "running");
    // "total"/"done"/"decided" repeat across the nested objects; scan each
    // object's slice. Both are single-level, so '}' ends them.
    const auto objectSlice = [&body](const char* key) {
      const std::string needle = std::string("\"") + key + "\":{";
      const std::size_t pos = body.find(needle);
      if (pos == std::string::npos) return std::string();
      const std::size_t close = body.find('}', pos);
      return body.substr(pos, close == std::string::npos ? close : close - pos + 1);
    };
    const std::string jobsObj = objectSlice("jobs");
    const std::string windowsObj = objectSlice("windows");
    const double decided = numField(windowsObj, "decided");
    const double total = numField(windowsObj, "total");

    std::fputs("\x1b[2J\x1b[H", stdout);  // clear + home
    std::printf("campaign @ 127.0.0.1:%d    %s    wall %s\n\n", port,
                running ? "RUNNING" : "DONE", fmtMs(numField(body, "wall_ms")).c_str());
    std::printf("jobs    %3.0f / %-3.0f done\n", numField(jobsObj, "done"),
                numField(jobsObj, "total"));
    std::printf("windows %3.0f / %-3.0f decided  ", decided, total);
    drawBar(total > 0 ? decided / total : 0.0, 40);
    std::printf("\nreschedules %.0f", numField(body, "reschedules"));
    if (body.find("\"ledger\":") != std::string::npos) {
      std::printf("    retry budget %.0f%% spent", numField(body, "utilization_pct"));
    }
    // Before the first decided window the tracker has no solve times to
    // extrapolate from and reports 0 — show "no estimate" rather than "now".
    std::printf("\neta %s\n\n", running && decided > 0
                                    ? fmtMs(numField(body, "eta_ms")).c_str()
                                    : "-");

    // Per-job lines, scanned object by object out of jobs_detail.
    std::size_t pos = body.find("\"jobs_detail\":[");
    while (pos != std::string::npos) {
      const std::size_t open = body.find('{', pos);
      if (open == std::string::npos) break;
      const std::size_t close = body.find('}', open);
      if (close == std::string::npos) break;
      const std::string obj = body.substr(open, close - open + 1);
      const std::size_t labelPos = obj.find("\"label\":\"");
      std::string label;
      if (labelPos != std::string::npos) {
        const std::size_t end = obj.find('"', labelPos + 9);
        label = obj.substr(labelPos + 9, end - labelPos - 9);
      }
      std::printf("  job %2.0f  %-36s %2.0f/%-2.0f  k=%.0f  %s\n", numField(obj, "id"),
                  label.c_str(), numField(obj, "decided"), numField(obj, "total"),
                  numField(obj, "rung"), boolField(obj, "done") ? "done" : "running");
      pos = close;
      if (body.compare(close + 1, 1, ",") != 0) break;
    }
    std::fflush(stdout);

    if (!running) break;
    ::usleep(intervalMs * 1000);
  }
  if (!sawCampaign) {
    std::fprintf(stderr, "campaign_top: nothing answering on 127.0.0.1:%d\n", port);
    return 1;
  }
  std::printf("\ncampaign finished.\n");
  return 0;
}
