// The Orc attack (paper Fig. 2 / Sec. III), end to end on the
// cycle-accurate SoC model.
//
// A user process that cannot read the protected secret runs the six
// instructions of Fig. 2 for every possible cache line. On the vulnerable
// design, the one iteration whose store collides with the (transient)
// secret-addressed load suffers a read-after-write hazard stall in the
// core-to-cache interface, and the exception handler is reached a few
// cycles later — a timing covert channel that reveals the secret's
// cache-index bits. The architectural results are identical in every run.
//
// Build & run:  ./build/examples/orc_attack
#include <cstdio>
#include <string>

#include "soc/attack.hpp"
#include "soc/testbench.hpp"

using namespace upec;
using namespace upec::soc;

namespace {

constexpr std::uint32_t kSecretWord = 200;   // protected region [192, 256)
constexpr unsigned kLines = 16;
constexpr unsigned kProtectedLine = kSecretWord % kLines;

SocConfig attackConfig(SocVariant v) {
  SocConfig c;
  c.machine.xlen = 32;
  c.machine.nregs = 16;
  c.machine.imemWords = 64;
  c.machine.dmemWords = 256;
  c.machine.pmpEntries = 2;
  c.cacheLines = kLines;
  c.pendingWriteCycles = 8;
  c.refillCycles = 4;
  c.variant = v;
  return c;
}

// One Fig. 2 iteration; returns cycles until the PMP exception commits.
unsigned probeOnce(SocVariant variant, std::uint32_t secret, unsigned testValue) {
  AttackLayout layout;
  layout.protectedByteAddr = kSecretWord * 4;
  layout.accessibleByteAddr = 64 * 4;
  SocTestbench tb(attackConfig(variant));
  tb.loadProgram(orcAttackProgram(layout, testValue));
  tb.loadProgram(spinHandler(), 60);
  tb.setDmemWord(kSecretWord, secret);
  tb.preloadCacheLine(kSecretWord, secret);  // the "D in cache" premise
  tb.protectFromWord(192, 256);
  tb.setCsrMtvec(60 * 4);
  tb.setMode(false);
  for (unsigned cycle = 0; cycle < 300; ++cycle) {
    tb.step();
    if (!tb.commits().empty() && tb.commits().back().trap) return cycle;
  }
  return 0;
}

unsigned attack(SocVariant variant, std::uint32_t secret, bool verbose) {
  unsigned best = 0, bestCycles = 0;
  for (unsigned guess = 0; guess < kLines; ++guess) {
    if (guess == kProtectedLine) continue;  // publicly-known self-collision
    const unsigned cycles = probeOnce(variant, secret, guess);
    if (verbose) {
      std::printf("  #test_value=%2u -> %3u cycles %s\n", guess, cycles,
                  cycles > bestCycles && guess != 0 ? "" : "");
    }
    if (cycles > bestCycles) {
      bestCycles = cycles;
      best = guess;
    }
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== The Orc attack (paper Fig. 2) ===\n\n");
  std::printf("victim secret lives at protected word %u; PMP denies all user access.\n",
              kSecretWord);
  std::printf("each iteration runs:\n");
  std::printf("  li x1, #protected_addr ; li x2, #accessible_addr\n");
  std::printf("  addi x2, x2, #test_value*4 ; sw x3, 0(x2)\n");
  std::printf("  lw x4, 0(x1)   <- faults, but the cache answered first\n");
  std::printf("  lw x5, 0(x4)   <- transient; may RAW-collide with the sw\n\n");

  const std::uint32_t secret = 0x1B4;
  const unsigned secretLine = (secret >> 2) % kLines;

  std::printf("--- vulnerable design (cache response buffer bypassed) ---\n");
  const unsigned recovered = attack(SocVariant::kOrc, secret, /*verbose=*/true);
  std::printf("slowest iteration: #test_value=%u  => secret cache line = %u (actual %u) %s\n\n",
              recovered, recovered, secretLine, recovered == secretLine ? "LEAKED" : "");

  std::printf("--- secure design (original behaviour) ---\n");
  unsigned base = 0;
  bool uniform = true;
  for (unsigned guess = 0; guess < kLines; ++guess) {
    if (guess == kProtectedLine) continue;
    const unsigned cycles = probeOnce(SocVariant::kSecure, secret, guess);
    if (base == 0) base = cycles;
    uniform &= (cycles == base);
  }
  std::printf("all iterations: %u cycles — %s\n\n", base,
              uniform ? "uniform, nothing leaks" : "NOT uniform?!");

  std::printf("--- sweep over several secrets (vulnerable design) ---\n");
  for (const std::uint32_t s : {0x010u, 0x0FCu, 0x1B4u, 0x2A4u, 0x33Cu}) {
    const unsigned got = attack(SocVariant::kOrc, s, /*verbose=*/false);
    const unsigned want = (s >> 2) % kLines;
    std::printf("  secret 0x%03X: recovered line %2u, actual %2u  %s\n", s, got, want,
                got == want ? "ok" : "MISS");
  }
  return 0;
}
