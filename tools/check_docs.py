#!/usr/bin/env python3
"""Documentation integrity gate (stdlib only — CI's docs leg runs this).

Checks, over every Markdown file in the repository:
  1. every relative intra-repo link resolves to an existing file or
     directory (external http(s)/mailto links are not fetched);
  2. a link with a #fragment into a Markdown file names a real heading
     (GitHub-style anchor slugs);
  3. every direct subdirectory of src/ carries a README.md.

Exit status 0 = clean, 1 = violations (each printed as file:line: msg).
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {".git", "build", ".claude"}
# Retrieved external reference material (paper scrapes) — not repo docs;
# their links point at figures that were never vendored.
SKIP_FILES = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}

# [text](target) — target captured up to the closing paren (no nesting in
# our docs); reference-style links are not used in this repo.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files():
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
        for name in files:
            if name.endswith(".md") and not (root == REPO and name in SKIP_FILES):
                yield os.path.join(root, name)


def github_slug(heading):
    """GitHub's anchor algorithm, close enough for our headings."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(path):
    slugs = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_links(path, errors):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                    continue
                if target.startswith("#"):
                    frag, target_path = target[1:], path
                else:
                    raw, _, frag = target.partition("#")
                    target_path = os.path.normpath(
                        os.path.join(os.path.dirname(path), raw))
                    if not os.path.exists(target_path):
                        errors.append(f"{rel(path)}:{lineno}: broken link {target}")
                        continue
                if frag and target_path.endswith(".md"):
                    if frag not in heading_slugs(target_path):
                        errors.append(
                            f"{rel(path)}:{lineno}: missing anchor "
                            f"#{frag} in {rel(target_path)}")


def rel(path):
    return os.path.relpath(path, REPO)


def main():
    errors = []
    for path in markdown_files():
        check_links(path, errors)

    src = os.path.join(REPO, "src")
    for entry in sorted(os.listdir(src)):
        subdir = os.path.join(src, entry)
        if os.path.isdir(subdir) and not os.path.isfile(
                os.path.join(subdir, "README.md")):
            errors.append(f"src/{entry}/: no README.md (every subsystem "
                          "documents itself — see docs/ARCHITECTURE.md)")

    for err in errors:
        print(err)
    n = len(list(markdown_files()))
    if errors:
        print(f"\ncheck_docs: {len(errors)} problem(s) across {n} markdown files")
        return 1
    print(f"check_docs: {n} markdown files clean, all src/ subsystems documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
