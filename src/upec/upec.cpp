#include "upec/upec.hpp"

#include <algorithm>
#include <cassert>

#include "base/log.hpp"
#include "base/stopwatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace upec {

using formal::CheckStatus;
using rtl::Sig;
using rtl::StateClass;

namespace {

void accumulateStats(MethodologyReport& report, const formal::BmcStats& stats) {
  report.peakClauses = std::max(report.peakClauses, stats.clauses);
  report.peakVars = std::max(report.peakVars, stats.vars);
  report.totalConflicts += stats.conflicts;
  report.totalPropagations += stats.propagations;
  report.totalClausesExported += stats.clausesExported;
  report.totalClausesImported += stats.clausesImported;
  report.totalClausesDropped += stats.clausesDropped;
}

// The reduced-design counterpart of applyStructuralEquality: alias the
// frame-0 variables of every miter pair that still maps to two distinct
// registers after reduction (merged pairs share one register and need no
// alias; swept pairs have no frame-0 variables at all).
void applyReducedEquality(Miter& miter, const rtl::ReductionResult& red,
                          formal::BmcEngine& engine) {
  const rtl::Design& od = miter.design();
  rtl::Design* rd = red.design.get();
  auto aliasPair = [&](const RegPair& pair) {
    const rtl::NodeId a = red.map[od.regs()[pair.reg1].q];
    const rtl::NodeId b = red.map[od.regs()[pair.reg2].q];
    if (a == rtl::kNoNode || b == rtl::kNoNode || a == b) return;
    if (rd->node(a).op != rtl::Op::kRegQ || rd->node(b).op != rtl::Op::kRegQ) return;
    engine.addInitialStateAlias(rtl::Sig(rd, a), rtl::Sig(rd, b));
  };
  for (const RegPair& pair : miter.logicPairs()) aliasPair(pair);
  for (std::size_t w = 0; w < miter.dmemPairs().size(); ++w) {
    if (w != miter.secretWord()) aliasPair(miter.dmemPairs()[w]);
  }
  for (std::size_t w = 0; w < miter.cacheDataPairs().size(); ++w) {
    if (w != miter.secretCacheIndex()) aliasPair(miter.cacheDataPairs()[w]);
  }
}

}  // namespace

std::vector<sat::SolverConfig> UpecOptions::resolvedSolverConfigs() const {
  std::vector<sat::SolverConfig> configs = solverConfigs;
  if (configs.empty() && portfolio >= 2) {
    configs = sat::SolverConfig::diversified(portfolio, portfolioSeed);
  }
  if (profileSolver) {
    // A bare default backend still needs a config to carry the knob; a
    // single default-constructed config is exactly the seed solver.
    if (configs.empty()) configs.emplace_back();
    for (sat::SolverConfig& c : configs) c.profile = true;
  }
  return configs;
}

sat::PortfolioOptions UpecOptions::resolvedPortfolioOptions() const {
  sat::PortfolioOptions p;
  p.sharing = portfolioSharing;
  p.governor = governor;
  if (!seedLearnts.empty() && portfolioSharing) {
    p.seedLearnts.reserve(seedLearnts.size());
    for (const std::vector<int>& codes : seedLearnts) {
      std::vector<sat::Lit> clause;
      clause.reserve(codes.size());
      for (int code : codes) clause.push_back(sat::Lit::fromCode(code));
      p.seedLearnts.push_back(std::move(clause));
    }
  }
  return p;
}

const char* verdictName(Verdict v) {
  switch (v) {
    case Verdict::kProven: return "proven";
    case Verdict::kPAlert: return "P-alert";
    case Verdict::kLAlert: return "L-alert";
    case Verdict::kUnknown: return "unknown";
    case Verdict::kError: return "error";
  }
  return "?";
}

void applyStructuralEquality(Miter& miter, formal::BmcEngine& engine,
                             const std::set<std::string>& skipLogic) {
  rtl::Design& d = miter.design();
  auto aliasPair = [&](const RegPair& pair) {
    engine.addInitialStateAlias(rtl::Sig(&d, d.regs()[pair.reg1].q),
                                rtl::Sig(&d, d.regs()[pair.reg2].q));
  };
  for (const RegPair& pair : miter.logicPairs()) {
    if (!skipLogic.count(pair.name)) aliasPair(pair);
  }
  for (std::size_t w = 0; w < miter.dmemPairs().size(); ++w) {
    if (w != miter.secretWord()) aliasPair(miter.dmemPairs()[w]);
  }
  for (std::size_t w = 0; w < miter.cacheDataPairs().size(); ++w) {
    if (w != miter.secretCacheIndex()) aliasPair(miter.cacheDataPairs()[w]);
  }
}

UpecEngine::UpecEngine(Miter& miter, const UpecOptions& options)
    : miter_(miter), options_(options) {}

UpecEngine::~UpecEngine() = default;

void UpecEngine::resetIncremental() {
  incremental_.reset();
  incrementalReduced_ = nullptr;
}

const rtl::ReductionResult& UpecEngine::reducedFor(const std::set<std::string>& excluded) {
  if (auto it = reducedCache_.find(excluded); it != reducedCache_.end()) return it->second;

  obs::Span span("rtl", "rtl.reduce");

  // Roots: every signal any property for this exclusion set can reference.
  // The assumption set depends only on the options and the commitment set
  // only on the exclusion set — not on the window length — so a model
  // rooted here serves every k (and, since the methodology only ever grows
  // the exclusion set, every later commitment subset too).
  const formal::IntervalProperty p = buildProperty(1, excluded);
  std::vector<rtl::Sig> roots;
  roots.reserve(p.assumptions.size() + p.invariantAssumptions.size() + p.commitments.size());
  for (const formal::TimedSig& a : p.assumptions) roots.push_back(a.sig);
  for (const rtl::Sig& a : p.invariantAssumptions) roots.push_back(a);
  for (const formal::TimedSig& c : p.commitments) roots.push_back(c.sig);

  // Merge seeds: exactly the pairs whose frame-0 equality the property
  // establishes — as variable aliases under structuralInitEquality, as the
  // micro/memory equality assumptions otherwise. Identical set either way
  // (all logic pairs, dmem words except the secret, cache-data lines
  // except the secret's index), so the merge is sound in both modes.
  std::vector<rtl::RegEquivSeed> seeds;
  for (const RegPair& pair : miter_.logicPairs()) seeds.push_back({pair.reg1, pair.reg2});
  for (std::size_t w = 0; w < miter_.dmemPairs().size(); ++w) {
    if (w != miter_.secretWord()) {
      seeds.push_back({miter_.dmemPairs()[w].reg1, miter_.dmemPairs()[w].reg2});
    }
  }
  for (std::size_t w = 0; w < miter_.cacheDataPairs().size(); ++w) {
    if (w != miter_.secretCacheIndex()) {
      seeds.push_back({miter_.cacheDataPairs()[w].reg1, miter_.cacheDataPairs()[w].reg2});
    }
  }

  rtl::ReduceOptions ropts = options_.reductionOptions;
  // IPC starts from a symbolic state: frame-0 registers are free variables,
  // so sequential constant folding from reset values would be unsound.
  ropts.initialState = rtl::InitialStateModel::kSymbolic;
  rtl::ReductionResult red = rtl::reduce(miter_.design(), roots, seeds, ropts);

  logInfo("reduction (" + std::to_string(excluded.size()) +
          " excluded): " + red.stats.summary());
  if (obs::metricsEnabled()) {
    obs::metrics().counter("reduce.runs").add(1);
    if (red.stats.nodesBefore > red.stats.nodesAfter) {
      obs::metrics().counter("reduce.nodes_removed").add(red.stats.nodesBefore -
                                                        red.stats.nodesAfter);
    }
    obs::metrics().counter("reduce.registers_merged").add(red.stats.registersMerged);
    obs::metrics().counter("reduce.constants_folded").add(red.stats.constantsFolded);
  }
  if (span.enabled()) {
    span.arg("nodes_before", red.stats.nodesBefore).arg("nodes_after", red.stats.nodesAfter);
    span.arg("registers_merged", red.stats.registersMerged);
  }
  lastReductionStats_ = red.stats;
  return reducedCache_.emplace(excluded, std::move(red)).first->second;
}

formal::IntervalProperty UpecEngine::translateProperty(const formal::IntervalProperty& p,
                                                       const rtl::ReductionResult& red) const {
  formal::IntervalProperty out;
  out.name = p.name;
  rtl::Design* rd = red.design.get();
  auto mapSig = [&](rtl::Sig s) {
    const rtl::Sig m = red.map.map(s, rd);
    assert(m.valid() && "property signal swept by reduction (root set too small)");
    return m;
  };
  out.assumptions.reserve(p.assumptions.size());
  for (const formal::TimedSig& a : p.assumptions) {
    out.assumptions.push_back({mapSig(a.sig), a.cycle, a.label});
  }
  out.invariantAssumptions.reserve(p.invariantAssumptions.size());
  for (std::size_t i = 0; i < p.invariantAssumptions.size(); ++i) {
    out.invariantAssumptions.push_back(mapSig(p.invariantAssumptions[i]));
    out.invariantLabels.push_back(p.invariantLabels[i]);
  }
  // Commitments translate one-to-one (merged pairs' equalities become
  // constant true, which is exactly what their inductive equality proves),
  // keeping failedCommitments indices aligned with the original property.
  out.commitments.reserve(p.commitments.size());
  for (const formal::TimedSig& c : p.commitments) {
    out.commitments.push_back({mapSig(c.sig), c.cycle, c.label});
  }
  return out;
}

formal::Trace UpecEngine::translateTrace(const formal::Trace& t,
                                         const rtl::ReductionResult& red) const {
  const rtl::Design& od = miter_.design();
  const rtl::Design& rd = *red.design;
  formal::Trace out;
  out.cycles = t.cycles;
  out.failedCommitments = t.failedCommitments;
  out.initialRegs.reserve(od.regs().size());
  for (std::uint32_t r = 0; r < od.regs().size(); ++r) {
    const std::uint32_t m = red.regMap[r];
    if (m != rtl::kNoReg) {
      // Covers merged followers too: their map points at the master's
      // reduced register, whose witness value they share by construction.
      out.initialRegs.push_back(t.initialRegs[m]);
      continue;
    }
    const rtl::NodeId mapped = red.map[od.regs()[r].q];
    if (mapped != rtl::kNoNode && rd.node(mapped).op == rtl::Op::kConst) {
      out.initialRegs.push_back(rd.constValue(mapped));
    } else {
      // Swept: outside the live cone, so its value cannot influence any
      // committed signal — the reset value is as good a witness as any.
      out.initialRegs.push_back(od.regs()[r].resetValue);
    }
  }
  out.inputs.reserve(t.inputs.size());
  for (const std::vector<BitVec>& cycle : t.inputs) {
    std::vector<BitVec> row;
    row.reserve(od.inputs().size());
    for (rtl::NodeId in : od.inputs()) row.push_back(BitVec(od.width(in), 0));
    for (std::uint32_t j = 0; j < red.inputMap.size() && j < cycle.size(); ++j) {
      if (red.inputMap[j] != 0xffffffffu) row[red.inputMap[j]] = cycle[j];
    }
    out.inputs.push_back(std::move(row));
  }
  return out;
}

formal::IntervalProperty UpecEngine::buildProperty(
    unsigned k, const std::set<std::string>& excluded) const {
  formal::IntervalProperty p;
  p.name = "upec_k" + std::to_string(k);

  if (options_.assumeSecretProtected) {
    p.assumeAt(0, miter_.secretDataProtected(), "secret_data_protected()");
  }
  if (options_.structuralInitEquality) {
    // Equality of the initial state is encoded by variable sharing in the
    // unroller (see check()); only the conditional equality of the
    // secret's cache line remains an explicit assumption.
    p.assumeAt(0, miter_.secretCacheLineCondition(),
               "cache data equal unless the line holds the secret");
  } else {
    p.assumeAt(0, miter_.microSocStateEqual(), "micro_soc_state1 = micro_soc_state2");
    p.assumeAt(0, miter_.memoryEqualExceptSecret(), "memory equal except secret location");
  }
  if (options_.constraint1NoOngoing) {
    p.assumeAt(0, miter_.noOngoingProtectedAccess(), "no_ongoing_protected_access()");
  }
  if (options_.scenario != SecretScenario::kAny) {
    p.assumeAt(0, miter_.scenarioCondition(options_.scenario),
               std::string("scenario: ") + scenarioName(options_.scenario));
  }
  if (options_.constraint2CacheMonitor) {
    p.assumeAlways(miter_.cacheMonitorsOk(), "cache_monitor_valid_IO()");
  }
  if (options_.constraint3SecureSw) {
    p.assumeAlways(miter_.secureSystemSoftware(), "secure_system_software()");
  }
  // secret_data_protected must hold over the window as well: the locked
  // PMP entry makes this an invariant in the correct design, but the
  // property assumes it only at t (as in Fig. 4) — protection at later
  // cycles is the design's own responsibility, which is exactly how UPEC
  // catches the PMP lock bug through an L-alert.

  for (const RegPair& pair : miter_.logicPairs()) {
    if (excluded.count(pair.name)) continue;
    p.proveAt(k, pair.eq, "soc_state equal: " + pair.name);
  }
  return p;
}

UpecResult UpecEngine::check(unsigned k, const std::set<std::string>& excluded) {
  if (options_.incrementalDeepening.value_or(false)) return checkIncremental(k, excluded);

  obs::Span span("upec", "upec.check");
  if (span.enabled()) span.arg("k", k).arg("incremental", false);
  const formal::IntervalProperty property = buildProperty(k, excluded);
  if (options_.reduction) {
    const rtl::ReductionResult& red = reducedFor(excluded);
    formal::BmcEngine engine(*red.design);
    if (options_.conflictBudget != 0) engine.setConflictBudget(options_.conflictBudget);
    if (options_.solveDeadlineMs != 0) engine.setSolveDeadlineMs(options_.solveDeadlineMs);
    if (options_.faultAbortAtConflict != 0) {
      engine.setFaultAbortAtConflict(options_.faultAbortAtConflict);
    }
    engine.setSolverConfigs(options_.resolvedSolverConfigs());
    engine.setPortfolioOptions(options_.resolvedPortfolioOptions());
    if (options_.structuralInitEquality) applyReducedEquality(miter_, red, engine);
    formal::CheckResult bmc = engine.check(translateProperty(property, red));
    if (bmc.trace) bmc.trace = translateTrace(*bmc.trace, red);
    const UpecResult result = classify(bmc, k, excluded);
    if (span.enabled()) span.arg("verdict", verdictName(result.verdict));
    return result;
  }
  formal::BmcEngine engine(miter_.design());
  if (options_.conflictBudget != 0) engine.setConflictBudget(options_.conflictBudget);
  if (options_.solveDeadlineMs != 0) engine.setSolveDeadlineMs(options_.solveDeadlineMs);
  if (options_.faultAbortAtConflict != 0) {
    engine.setFaultAbortAtConflict(options_.faultAbortAtConflict);
  }
  engine.setSolverConfigs(options_.resolvedSolverConfigs());
  engine.setPortfolioOptions(options_.resolvedPortfolioOptions());
  if (options_.structuralInitEquality) applyStructuralEquality(miter_, engine);
  const UpecResult result = classify(engine.check(property), k, excluded);
  if (span.enabled()) span.arg("verdict", verdictName(result.verdict));
  return result;
}

UpecResult UpecEngine::checkIncremental(unsigned k, const std::set<std::string>& excluded) {
  obs::Span span("upec", "upec.check");
  if (span.enabled()) span.arg("k", k).arg("incremental", true);
  if (!incremental_) {
    if (options_.reduction) {
      // The session pins the model built from this first call's exclusion
      // set: its roots cover every later (monotonically shrinking)
      // commitment subset, matching the session's own monotonicity rules.
      incrementalReduced_ = &reducedFor(excluded);
      incremental_ = std::make_unique<formal::BmcEngine>(*incrementalReduced_->design);
    } else {
      incremental_ = std::make_unique<formal::BmcEngine>(miter_.design());
    }
    incremental_->setSolverConfigs(options_.resolvedSolverConfigs());
    incremental_->setPortfolioOptions(options_.resolvedPortfolioOptions());
    if (options_.prefixCache) {
      // The cache key must separate every session whose encoded frames can
      // differ (see formal/prefix_cache.hpp). On top of the engine's
      // design-identity base: the init-equality mode always, and under
      // reduction everything the reduced netlist was rooted at — the
      // reduction options, the scenario/constraint toggles (they shape the
      // property signals) and this first call's exclusion set.
      std::string key = options_.prefixKey;
      key += options_.structuralInitEquality ? "|eq" : "|noeq";
      if (options_.reduction) {
        const rtl::ReduceOptions& r = options_.reductionOptions;
        key += "|red:";
        key += r.sweep ? '1' : '0';
        key += r.constants ? '1' : '0';
        key += r.hashing ? '1' : '0';
        key += std::to_string(r.maxRounds);
        key += "|scn:" + std::to_string(static_cast<int>(options_.scenario));
        key += options_.constraint1NoOngoing ? '1' : '0';
        key += options_.constraint2CacheMonitor ? '1' : '0';
        key += options_.constraint3SecureSw ? '1' : '0';
        key += options_.assumeSecretProtected ? '1' : '0';
        key += "|exc:";
        for (const std::string& name : excluded) key += name + ',';
      }
      incremental_->setPrefixCache(options_.prefixCache, key);
    }
    if (options_.structuralInitEquality) {
      if (incrementalReduced_) {
        applyReducedEquality(miter_, *incrementalReduced_, *incremental_);
      } else {
        applyStructuralEquality(miter_, *incremental_);
      }
    }
  }
  incremental_->setConflictBudget(options_.conflictBudget);
  incremental_->setSolveDeadlineMs(options_.solveDeadlineMs);
  incremental_->setFaultAbortAtConflict(options_.faultAbortAtConflict);
  const formal::IntervalProperty property = buildProperty(k, excluded);
  formal::CheckResult bmc;
  if (incrementalReduced_) {
    bmc = incremental_->checkIncremental(translateProperty(property, *incrementalReduced_));
    if (bmc.trace) bmc.trace = translateTrace(*bmc.trace, *incrementalReduced_);
  } else {
    bmc = incremental_->checkIncremental(property);
  }
  const UpecResult result = classify(bmc, k, excluded);
  if (span.enabled()) span.arg("verdict", verdictName(result.verdict));
  return result;
}

UpecResult UpecEngine::classify(const formal::CheckResult& bmc, unsigned k,
                                const std::set<std::string>& excluded) {
  UpecResult result;
  result.window = k;
  result.stats = bmc.stats;

  if (bmc.status == CheckStatus::kProven) {
    result.verdict = Verdict::kProven;
    return result;
  }
  if (bmc.status == CheckStatus::kUnknown) {
    result.verdict = Verdict::kUnknown;
    result.budgetExhausted = bmc.budgetExhausted;
    result.deadlineExpired = bmc.deadlineExpired;
    return result;
  }

  // Classify the counterexample: which state pairs differ at t+k?
  const formal::TraceEval eval(miter_.design(), *bmc.trace);
  for (const RegPair& pair : miter_.logicPairs()) {
    if (excluded.count(pair.name)) continue;
    const BitVec v1 = eval.regValue(pair.reg1, k);
    const BitVec v2 = eval.regValue(pair.reg2, k);
    if (v1 != v2) {
      if (pair.cls == StateClass::kArch) {
        result.differingArch.push_back(pair.name);
      } else {
        result.differingMicro.push_back(pair.name);
      }
    }
  }
  result.verdict = result.differingArch.empty() ? Verdict::kPAlert : Verdict::kLAlert;
  result.trace = bmc.trace;
  logDebug("UPEC k=" + std::to_string(k) + ": " + verdictName(result.verdict));
  return result;
}

std::vector<std::vector<int>> UpecEngine::exchangeSnapshot(std::size_t maxClauses) const {
  if (!incremental_) return {};
  std::vector<std::vector<int>> out;
  for (const std::vector<sat::Lit>& clause : incremental_->learntSnapshot(maxClauses)) {
    std::vector<int> codes;
    codes.reserve(clause.size());
    for (sat::Lit lit : clause) codes.push_back(lit.code());
    out.push_back(std::move(codes));
  }
  return out;
}

void UpecEngine::seedExchange(const std::vector<std::vector<int>>& clauses) {
  if (clauses.empty()) return;
  if (!incremental_) {
    // Session not built yet: fold into the options so the first
    // checkIncremental() seeds them through PortfolioOptions::seedLearnts.
    options_.seedLearnts.insert(options_.seedLearnts.end(), clauses.begin(), clauses.end());
    return;
  }
  std::vector<std::vector<sat::Lit>> lits;
  lits.reserve(clauses.size());
  for (const std::vector<int>& codes : clauses) {
    std::vector<sat::Lit> clause;
    clause.reserve(codes.size());
    for (int code : codes) clause.push_back(sat::Lit::fromCode(code));
    lits.push_back(std::move(clause));
  }
  incremental_->seedClauses(std::span<const std::vector<sat::Lit>>(lits.data(), lits.size()));
}

std::set<std::string> UpecEngine::allMicroNames() const {
  std::set<std::string> names;
  for (const RegPair& pair : miter_.logicPairs()) {
    if (pair.cls != StateClass::kArch) names.insert(pair.name);
  }
  return names;
}

std::string UpecEngine::renderProperty(unsigned k) const {
  formal::IntervalProperty p = buildProperty(k, {});
  // Collapse the per-register commitments into the paper's single line.
  p.commitments.clear();
  p.proveAt(k, miter_.archStateEqual(), "soc_state1 = soc_state2");
  return p.pretty();
}

// ---------------------------------------------------------------------------

InductiveProver::InductiveProver(Miter& miter, const UpecOptions& options)
    : miter_(miter), options_(options) {}

InductiveProver::Result InductiveProver::prove(
    const std::set<std::string>& allowedDiff, const std::vector<BlockingCondition>& blocking) {
  Result result;
  rtl::Design& d = miter_.design();

  formal::IntervalProperty p;
  p.name = "upec_induction";

  // Invariant at t: equality of all logic pairs outside the allowed set.
  // With the structural encoding the equalities are variable aliases (set
  // up on the engine below); otherwise they are plain assumptions.
  if (!options_.structuralInitEquality) {
    Sig eqExcept = d.one(1);
    for (const RegPair& pair : miter_.logicPairs()) {
      if (allowedDiff.count(pair.name)) continue;
      eqExcept = eqExcept & pair.eq;
    }
    p.assumeAt(0, eqExcept, "logic state equal outside P-alert registers");
    p.assumeAt(0, miter_.memoryEqualExceptSecret(), "memory equal except secret");
  } else {
    p.assumeAt(0, miter_.secretCacheLineCondition(),
               "cache data equal unless the line holds the secret");
  }
  if (options_.assumeSecretProtected) {
    p.assumeAt(0, miter_.secretDataProtected(), "secret_data_protected()");
  }
  if (options_.constraint1NoOngoing) {
    p.assumeAt(0, miter_.noOngoingProtectedAccess(), "no_ongoing_protected_access()");
  }
  for (std::size_t i = 0; i < blocking.size(); ++i) {
    p.assumeAt(0, blocking[i](miter_), "blocking condition " + std::to_string(i));
  }
  if (options_.constraint2CacheMonitor) {
    p.assumeAlways(miter_.cacheMonitorsOk(), "cache_monitor_valid_IO()");
  }
  if (options_.constraint3SecureSw) {
    p.assumeAlways(miter_.secureSystemSoftware(), "secure_system_software()");
  }

  // ...is preserved at t+1 (registers in the allowed set stay unconstrained
  // in the obligation; everything else, including the full architectural
  // state and the memory confinement, must stay intact).
  for (const RegPair& pair : miter_.logicPairs()) {
    if (allowedDiff.count(pair.name)) continue;
    p.proveAt(1, pair.eq, "still equal: " + pair.name);
  }
  p.proveAt(1, miter_.memoryEqualExceptSecret(), "memory still equal except secret");
  if (options_.assumeSecretProtected) {
    p.proveAt(1, miter_.secretDataProtected(), "secret still protected");
  }
  if (options_.constraint1NoOngoing) {
    p.proveAt(1, miter_.noOngoingProtectedAccess(), "still no ongoing protected access");
  }
  for (std::size_t i = 0; i < blocking.size(); ++i) {
    p.proveAt(1, blocking[i](miter_), "blocking condition " + std::to_string(i) + " preserved");
  }

  formal::BmcEngine engine(d);
  if (options_.conflictBudget != 0) engine.setConflictBudget(options_.conflictBudget);
  engine.setSolverConfigs(options_.resolvedSolverConfigs());
  engine.setPortfolioOptions(options_.resolvedPortfolioOptions());
  if (options_.structuralInitEquality) applyStructuralEquality(miter_, engine, allowedDiff);
  const formal::CheckResult bmc = engine.check(p);
  result.stats = bmc.stats;
  if (bmc.status == CheckStatus::kProven) {
    result.holds = true;
    return result;
  }
  if (bmc.status == CheckStatus::kUnknown) {
    result.unknown = true;
    return result;
  }
  const formal::TraceEval eval(d, *bmc.trace);
  for (const RegPair& pair : miter_.logicPairs()) {
    if (allowedDiff.count(pair.name)) continue;
    if (eval.regValue(pair.reg1, 1) != eval.regValue(pair.reg2, 1)) {
      result.escapedTo.push_back(pair.name);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------

MethodologyDriver::MethodologyDriver(Miter& miter, const UpecOptions& options)
    : miter_(miter), options_(options) {
  // The driver's window walk is monotone by construction, so incremental
  // deepening is sound here and is the default; pass an explicit false to
  // opt out (e.g. to bound memory on very deep walks).
  if (!options_.incrementalDeepening.has_value()) options_.incrementalDeepening = true;
}

MethodologyReport MethodologyDriver::run(unsigned maxWindow,
                                         const std::vector<BlockingCondition>& blocking) {
  MethodologyReport report;
  report.maxWindow = maxWindow;
  Stopwatch total;
  UpecEngine engine(miter_, options_);
  std::set<std::string> excluded;

  for (unsigned k = 1; k <= maxWindow; ++k) {
    for (;;) {
      UpecResult res = engine.check(k, excluded);
      accumulateStats(report, res.stats);
      if (res.verdict == Verdict::kProven) break;  // next window
      if (res.verdict == Verdict::kUnknown) {
        report.finalVerdict = Verdict::kUnknown;
        report.totalRuntimeSec = total.elapsedSeconds();
        return report;
      }
      if (res.verdict == Verdict::kLAlert) {
        report.finalVerdict = Verdict::kLAlert;
        report.firstLAlertWindow = report.firstLAlertWindow.value_or(k);
        report.lAlertRegisters = res.differingArch;
        report.totalRuntimeSec = total.elapsedSeconds();
        return report;
      }
      // P-alert: record it and remove the registers from the obligation
      // (paper Fig. 5: "remove corresponding state bits from commitment").
      report.firstPAlertWindow = report.firstPAlertWindow.value_or(k);
      report.pAlerts.push_back({k, res.differingMicro});
      for (const std::string& r : res.differingMicro) {
        excluded.insert(r);
        report.pAlertRegisters.insert(r);
      }
      logInfo("P-alert at k=" + std::to_string(k) + " (" +
              std::to_string(res.differingMicro.size()) + " registers)");
    }
  }

  // No L-alert within the window bound. If nothing propagated at all, the
  // design is proven outright; otherwise discharge the P-alerts by
  // induction (paper Sec. VI).
  if (report.pAlertRegisters.empty()) {
    report.finalVerdict = Verdict::kProven;
    report.totalRuntimeSec = total.elapsedSeconds();
    return report;
  }
  report.inductionUsed = true;
  Stopwatch inductionTimer;
  InductiveProver prover(miter_, options_);
  const InductiveProver::Result ind = prover.prove(report.pAlertRegisters, blocking);
  report.inductionRuntimeSec = inductionTimer.elapsedSeconds();
  accumulateStats(report, ind.stats);
  report.inductionHolds = ind.holds;
  report.finalVerdict = ind.holds ? Verdict::kProven : Verdict::kPAlert;
  report.totalRuntimeSec = total.elapsedSeconds();
  return report;
}

MethodologyReport MethodologyDriver::hunt(unsigned maxWindow) {
  MethodologyReport report;
  report.maxWindow = maxWindow;
  Stopwatch total;
  UpecEngine engine(miter_, options_);

  // Phase 1: first P-alert with the complete commitment.
  for (unsigned k = 1; k <= maxWindow && !report.firstPAlertWindow; ++k) {
    const UpecResult res = engine.check(k);
    accumulateStats(report, res.stats);
    if (res.verdict == Verdict::kPAlert) {
      report.firstPAlertWindow = k;
      report.pAlerts.push_back({k, res.differingMicro});
      for (const std::string& r : res.differingMicro) report.pAlertRegisters.insert(r);
    } else if (res.verdict == Verdict::kLAlert) {
      report.firstPAlertWindow = k;  // degenerate: leak with no precursor
      report.firstLAlertWindow = k;
      report.lAlertRegisters = res.differingArch;
      report.finalVerdict = Verdict::kLAlert;
      report.totalRuntimeSec = total.elapsedSeconds();
      return report;
    }
  }

  // Phase 2: hunt the L-alert with an architectural-only commitment,
  // walking the window upward. Intermediate windows where no leak is
  // reachable are UNSAT-shaped and can be arbitrarily hard, so each check
  // runs under a conflict budget and an inconclusive answer simply advances
  // the window — sound for alert *finding* (any L-alert returned is real;
  // a budget-skipped window can at worst make the reported window length an
  // upper bound on the minimal one).
  UpecOptions budgeted = options_;
  if (budgeted.conflictBudget == 0) budgeted.conflictBudget = 300'000;
  UpecEngine huntEngine(miter_, budgeted);
  const std::set<std::string> microOnly = huntEngine.allMicroNames();
  for (unsigned k = report.firstPAlertWindow.value_or(1); k <= maxWindow; ++k) {
    const UpecResult res = huntEngine.check(k, microOnly);
    accumulateStats(report, res.stats);
    if (res.verdict == Verdict::kLAlert) {
      report.firstLAlertWindow = k;
      report.lAlertRegisters = res.differingArch;
      report.finalVerdict = Verdict::kLAlert;
      report.totalRuntimeSec = total.elapsedSeconds();
      return report;
    }
  }
  report.finalVerdict =
      report.pAlertRegisters.empty() ? Verdict::kProven : Verdict::kPAlert;
  report.totalRuntimeSec = total.elapsedSeconds();
  return report;
}

// ---------------------------------------------------------------------------

std::vector<BlockingCondition> miniRvBlockingConditions() {
  return {
      // The response buffer may differ only while the write-back stage does
      // not hold a valid, fault-free load (then nothing consumes it): a
      // faulting load wrote it, and the subsequent flush strips consumers.
      [](Miter& m) {
        const soc::SocInstance& s1 = m.soc1();
        const soc::SocInstance& s2 = m.soc2();
        const Sig respEq = s1.respBuf.eq(s2.respBuf);
        const Sig consumerBlocked1 = ~s1.memwbValid | s1.memwbPmpFault | ~s1.memwbIsLoad;
        const Sig consumerBlocked2 = ~s2.memwbValid | s2.memwbPmpFault | ~s2.memwbIsLoad;
        return respEq | (consumerBlocked1 & consumerBlocked2);
      },
  };
}

}  // namespace upec
