#include "upec/upec.hpp"

#include <algorithm>
#include <cassert>

#include "base/log.hpp"
#include "base/stopwatch.hpp"
#include "obs/trace.hpp"

namespace upec {

using formal::CheckStatus;
using rtl::Sig;
using rtl::StateClass;

namespace {

void accumulateStats(MethodologyReport& report, const formal::BmcStats& stats) {
  report.peakClauses = std::max(report.peakClauses, stats.clauses);
  report.peakVars = std::max(report.peakVars, stats.vars);
  report.totalConflicts += stats.conflicts;
  report.totalPropagations += stats.propagations;
  report.totalClausesExported += stats.clausesExported;
  report.totalClausesImported += stats.clausesImported;
  report.totalClausesDropped += stats.clausesDropped;
}

}  // namespace

std::vector<sat::SolverConfig> UpecOptions::resolvedSolverConfigs() const {
  if (!solverConfigs.empty()) return solverConfigs;
  if (portfolio >= 2) return sat::SolverConfig::diversified(portfolio, portfolioSeed);
  return {};
}

sat::PortfolioOptions UpecOptions::resolvedPortfolioOptions() const {
  sat::PortfolioOptions p;
  p.sharing = portfolioSharing;
  p.governor = governor;
  return p;
}

const char* verdictName(Verdict v) {
  switch (v) {
    case Verdict::kProven: return "proven";
    case Verdict::kPAlert: return "P-alert";
    case Verdict::kLAlert: return "L-alert";
    case Verdict::kUnknown: return "unknown";
  }
  return "?";
}

void applyStructuralEquality(Miter& miter, formal::BmcEngine& engine,
                             const std::set<std::string>& skipLogic) {
  rtl::Design& d = miter.design();
  auto aliasPair = [&](const RegPair& pair) {
    engine.addInitialStateAlias(rtl::Sig(&d, d.regs()[pair.reg1].q),
                                rtl::Sig(&d, d.regs()[pair.reg2].q));
  };
  for (const RegPair& pair : miter.logicPairs()) {
    if (!skipLogic.count(pair.name)) aliasPair(pair);
  }
  for (std::size_t w = 0; w < miter.dmemPairs().size(); ++w) {
    if (w != miter.secretWord()) aliasPair(miter.dmemPairs()[w]);
  }
  for (std::size_t w = 0; w < miter.cacheDataPairs().size(); ++w) {
    if (w != miter.secretCacheIndex()) aliasPair(miter.cacheDataPairs()[w]);
  }
}

UpecEngine::UpecEngine(Miter& miter, const UpecOptions& options)
    : miter_(miter), options_(options) {}

UpecEngine::~UpecEngine() = default;

void UpecEngine::resetIncremental() { incremental_.reset(); }

formal::IntervalProperty UpecEngine::buildProperty(
    unsigned k, const std::set<std::string>& excluded) const {
  formal::IntervalProperty p;
  p.name = "upec_k" + std::to_string(k);

  if (options_.assumeSecretProtected) {
    p.assumeAt(0, miter_.secretDataProtected(), "secret_data_protected()");
  }
  if (options_.structuralInitEquality) {
    // Equality of the initial state is encoded by variable sharing in the
    // unroller (see check()); only the conditional equality of the
    // secret's cache line remains an explicit assumption.
    p.assumeAt(0, miter_.secretCacheLineCondition(),
               "cache data equal unless the line holds the secret");
  } else {
    p.assumeAt(0, miter_.microSocStateEqual(), "micro_soc_state1 = micro_soc_state2");
    p.assumeAt(0, miter_.memoryEqualExceptSecret(), "memory equal except secret location");
  }
  if (options_.constraint1NoOngoing) {
    p.assumeAt(0, miter_.noOngoingProtectedAccess(), "no_ongoing_protected_access()");
  }
  if (options_.scenario != SecretScenario::kAny) {
    p.assumeAt(0, miter_.scenarioCondition(options_.scenario),
               std::string("scenario: ") + scenarioName(options_.scenario));
  }
  if (options_.constraint2CacheMonitor) {
    p.assumeAlways(miter_.cacheMonitorsOk(), "cache_monitor_valid_IO()");
  }
  if (options_.constraint3SecureSw) {
    p.assumeAlways(miter_.secureSystemSoftware(), "secure_system_software()");
  }
  // secret_data_protected must hold over the window as well: the locked
  // PMP entry makes this an invariant in the correct design, but the
  // property assumes it only at t (as in Fig. 4) — protection at later
  // cycles is the design's own responsibility, which is exactly how UPEC
  // catches the PMP lock bug through an L-alert.

  for (const RegPair& pair : miter_.logicPairs()) {
    if (excluded.count(pair.name)) continue;
    p.proveAt(k, pair.eq, "soc_state equal: " + pair.name);
  }
  return p;
}

UpecResult UpecEngine::check(unsigned k, const std::set<std::string>& excluded) {
  if (options_.incrementalDeepening.value_or(false)) return checkIncremental(k, excluded);

  obs::Span span("upec", "upec.check");
  if (span.enabled()) span.arg("k", k).arg("incremental", false);
  const formal::IntervalProperty property = buildProperty(k, excluded);
  formal::BmcEngine engine(miter_.design());
  if (options_.conflictBudget != 0) engine.setConflictBudget(options_.conflictBudget);
  engine.setSolverConfigs(options_.resolvedSolverConfigs());
  engine.setPortfolioOptions(options_.resolvedPortfolioOptions());
  if (options_.structuralInitEquality) applyStructuralEquality(miter_, engine);
  const UpecResult result = classify(engine.check(property), k, excluded);
  if (span.enabled()) span.arg("verdict", verdictName(result.verdict));
  return result;
}

UpecResult UpecEngine::checkIncremental(unsigned k, const std::set<std::string>& excluded) {
  obs::Span span("upec", "upec.check");
  if (span.enabled()) span.arg("k", k).arg("incremental", true);
  if (!incremental_) {
    incremental_ = std::make_unique<formal::BmcEngine>(miter_.design());
    incremental_->setSolverConfigs(options_.resolvedSolverConfigs());
    incremental_->setPortfolioOptions(options_.resolvedPortfolioOptions());
    if (options_.structuralInitEquality) applyStructuralEquality(miter_, *incremental_);
  }
  incremental_->setConflictBudget(options_.conflictBudget);
  const formal::IntervalProperty property = buildProperty(k, excluded);
  const UpecResult result = classify(incremental_->checkIncremental(property), k, excluded);
  if (span.enabled()) span.arg("verdict", verdictName(result.verdict));
  return result;
}

UpecResult UpecEngine::classify(const formal::CheckResult& bmc, unsigned k,
                                const std::set<std::string>& excluded) {
  UpecResult result;
  result.window = k;
  result.stats = bmc.stats;

  if (bmc.status == CheckStatus::kProven) {
    result.verdict = Verdict::kProven;
    return result;
  }
  if (bmc.status == CheckStatus::kUnknown) {
    result.verdict = Verdict::kUnknown;
    result.budgetExhausted = bmc.budgetExhausted;
    return result;
  }

  // Classify the counterexample: which state pairs differ at t+k?
  const formal::TraceEval eval(miter_.design(), *bmc.trace);
  for (const RegPair& pair : miter_.logicPairs()) {
    if (excluded.count(pair.name)) continue;
    const BitVec v1 = eval.regValue(pair.reg1, k);
    const BitVec v2 = eval.regValue(pair.reg2, k);
    if (v1 != v2) {
      if (pair.cls == StateClass::kArch) {
        result.differingArch.push_back(pair.name);
      } else {
        result.differingMicro.push_back(pair.name);
      }
    }
  }
  result.verdict = result.differingArch.empty() ? Verdict::kPAlert : Verdict::kLAlert;
  result.trace = bmc.trace;
  logDebug("UPEC k=" + std::to_string(k) + ": " + verdictName(result.verdict));
  return result;
}

std::set<std::string> UpecEngine::allMicroNames() const {
  std::set<std::string> names;
  for (const RegPair& pair : miter_.logicPairs()) {
    if (pair.cls != StateClass::kArch) names.insert(pair.name);
  }
  return names;
}

std::string UpecEngine::renderProperty(unsigned k) const {
  formal::IntervalProperty p = buildProperty(k, {});
  // Collapse the per-register commitments into the paper's single line.
  p.commitments.clear();
  p.proveAt(k, miter_.archStateEqual(), "soc_state1 = soc_state2");
  return p.pretty();
}

// ---------------------------------------------------------------------------

InductiveProver::InductiveProver(Miter& miter, const UpecOptions& options)
    : miter_(miter), options_(options) {}

InductiveProver::Result InductiveProver::prove(
    const std::set<std::string>& allowedDiff, const std::vector<BlockingCondition>& blocking) {
  Result result;
  rtl::Design& d = miter_.design();

  formal::IntervalProperty p;
  p.name = "upec_induction";

  // Invariant at t: equality of all logic pairs outside the allowed set.
  // With the structural encoding the equalities are variable aliases (set
  // up on the engine below); otherwise they are plain assumptions.
  if (!options_.structuralInitEquality) {
    Sig eqExcept = d.one(1);
    for (const RegPair& pair : miter_.logicPairs()) {
      if (allowedDiff.count(pair.name)) continue;
      eqExcept = eqExcept & pair.eq;
    }
    p.assumeAt(0, eqExcept, "logic state equal outside P-alert registers");
    p.assumeAt(0, miter_.memoryEqualExceptSecret(), "memory equal except secret");
  } else {
    p.assumeAt(0, miter_.secretCacheLineCondition(),
               "cache data equal unless the line holds the secret");
  }
  if (options_.assumeSecretProtected) {
    p.assumeAt(0, miter_.secretDataProtected(), "secret_data_protected()");
  }
  if (options_.constraint1NoOngoing) {
    p.assumeAt(0, miter_.noOngoingProtectedAccess(), "no_ongoing_protected_access()");
  }
  for (std::size_t i = 0; i < blocking.size(); ++i) {
    p.assumeAt(0, blocking[i](miter_), "blocking condition " + std::to_string(i));
  }
  if (options_.constraint2CacheMonitor) {
    p.assumeAlways(miter_.cacheMonitorsOk(), "cache_monitor_valid_IO()");
  }
  if (options_.constraint3SecureSw) {
    p.assumeAlways(miter_.secureSystemSoftware(), "secure_system_software()");
  }

  // ...is preserved at t+1 (registers in the allowed set stay unconstrained
  // in the obligation; everything else, including the full architectural
  // state and the memory confinement, must stay intact).
  for (const RegPair& pair : miter_.logicPairs()) {
    if (allowedDiff.count(pair.name)) continue;
    p.proveAt(1, pair.eq, "still equal: " + pair.name);
  }
  p.proveAt(1, miter_.memoryEqualExceptSecret(), "memory still equal except secret");
  if (options_.assumeSecretProtected) {
    p.proveAt(1, miter_.secretDataProtected(), "secret still protected");
  }
  if (options_.constraint1NoOngoing) {
    p.proveAt(1, miter_.noOngoingProtectedAccess(), "still no ongoing protected access");
  }
  for (std::size_t i = 0; i < blocking.size(); ++i) {
    p.proveAt(1, blocking[i](miter_), "blocking condition " + std::to_string(i) + " preserved");
  }

  formal::BmcEngine engine(d);
  if (options_.conflictBudget != 0) engine.setConflictBudget(options_.conflictBudget);
  engine.setSolverConfigs(options_.resolvedSolverConfigs());
  engine.setPortfolioOptions(options_.resolvedPortfolioOptions());
  if (options_.structuralInitEquality) applyStructuralEquality(miter_, engine, allowedDiff);
  const formal::CheckResult bmc = engine.check(p);
  result.stats = bmc.stats;
  if (bmc.status == CheckStatus::kProven) {
    result.holds = true;
    return result;
  }
  if (bmc.status == CheckStatus::kUnknown) {
    result.unknown = true;
    return result;
  }
  const formal::TraceEval eval(d, *bmc.trace);
  for (const RegPair& pair : miter_.logicPairs()) {
    if (allowedDiff.count(pair.name)) continue;
    if (eval.regValue(pair.reg1, 1) != eval.regValue(pair.reg2, 1)) {
      result.escapedTo.push_back(pair.name);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------

MethodologyDriver::MethodologyDriver(Miter& miter, const UpecOptions& options)
    : miter_(miter), options_(options) {
  // The driver's window walk is monotone by construction, so incremental
  // deepening is sound here and is the default; pass an explicit false to
  // opt out (e.g. to bound memory on very deep walks).
  if (!options_.incrementalDeepening.has_value()) options_.incrementalDeepening = true;
}

MethodologyReport MethodologyDriver::run(unsigned maxWindow,
                                         const std::vector<BlockingCondition>& blocking) {
  MethodologyReport report;
  report.maxWindow = maxWindow;
  Stopwatch total;
  UpecEngine engine(miter_, options_);
  std::set<std::string> excluded;

  for (unsigned k = 1; k <= maxWindow; ++k) {
    for (;;) {
      UpecResult res = engine.check(k, excluded);
      accumulateStats(report, res.stats);
      if (res.verdict == Verdict::kProven) break;  // next window
      if (res.verdict == Verdict::kUnknown) {
        report.finalVerdict = Verdict::kUnknown;
        report.totalRuntimeSec = total.elapsedSeconds();
        return report;
      }
      if (res.verdict == Verdict::kLAlert) {
        report.finalVerdict = Verdict::kLAlert;
        report.firstLAlertWindow = report.firstLAlertWindow.value_or(k);
        report.lAlertRegisters = res.differingArch;
        report.totalRuntimeSec = total.elapsedSeconds();
        return report;
      }
      // P-alert: record it and remove the registers from the obligation
      // (paper Fig. 5: "remove corresponding state bits from commitment").
      report.firstPAlertWindow = report.firstPAlertWindow.value_or(k);
      report.pAlerts.push_back({k, res.differingMicro});
      for (const std::string& r : res.differingMicro) {
        excluded.insert(r);
        report.pAlertRegisters.insert(r);
      }
      logInfo("P-alert at k=" + std::to_string(k) + " (" +
              std::to_string(res.differingMicro.size()) + " registers)");
    }
  }

  // No L-alert within the window bound. If nothing propagated at all, the
  // design is proven outright; otherwise discharge the P-alerts by
  // induction (paper Sec. VI).
  if (report.pAlertRegisters.empty()) {
    report.finalVerdict = Verdict::kProven;
    report.totalRuntimeSec = total.elapsedSeconds();
    return report;
  }
  report.inductionUsed = true;
  Stopwatch inductionTimer;
  InductiveProver prover(miter_, options_);
  const InductiveProver::Result ind = prover.prove(report.pAlertRegisters, blocking);
  report.inductionRuntimeSec = inductionTimer.elapsedSeconds();
  accumulateStats(report, ind.stats);
  report.inductionHolds = ind.holds;
  report.finalVerdict = ind.holds ? Verdict::kProven : Verdict::kPAlert;
  report.totalRuntimeSec = total.elapsedSeconds();
  return report;
}

MethodologyReport MethodologyDriver::hunt(unsigned maxWindow) {
  MethodologyReport report;
  report.maxWindow = maxWindow;
  Stopwatch total;
  UpecEngine engine(miter_, options_);

  // Phase 1: first P-alert with the complete commitment.
  for (unsigned k = 1; k <= maxWindow && !report.firstPAlertWindow; ++k) {
    const UpecResult res = engine.check(k);
    accumulateStats(report, res.stats);
    if (res.verdict == Verdict::kPAlert) {
      report.firstPAlertWindow = k;
      report.pAlerts.push_back({k, res.differingMicro});
      for (const std::string& r : res.differingMicro) report.pAlertRegisters.insert(r);
    } else if (res.verdict == Verdict::kLAlert) {
      report.firstPAlertWindow = k;  // degenerate: leak with no precursor
      report.firstLAlertWindow = k;
      report.lAlertRegisters = res.differingArch;
      report.finalVerdict = Verdict::kLAlert;
      report.totalRuntimeSec = total.elapsedSeconds();
      return report;
    }
  }

  // Phase 2: hunt the L-alert with an architectural-only commitment,
  // walking the window upward. Intermediate windows where no leak is
  // reachable are UNSAT-shaped and can be arbitrarily hard, so each check
  // runs under a conflict budget and an inconclusive answer simply advances
  // the window — sound for alert *finding* (any L-alert returned is real;
  // a budget-skipped window can at worst make the reported window length an
  // upper bound on the minimal one).
  UpecOptions budgeted = options_;
  if (budgeted.conflictBudget == 0) budgeted.conflictBudget = 300'000;
  UpecEngine huntEngine(miter_, budgeted);
  const std::set<std::string> microOnly = huntEngine.allMicroNames();
  for (unsigned k = report.firstPAlertWindow.value_or(1); k <= maxWindow; ++k) {
    const UpecResult res = huntEngine.check(k, microOnly);
    accumulateStats(report, res.stats);
    if (res.verdict == Verdict::kLAlert) {
      report.firstLAlertWindow = k;
      report.lAlertRegisters = res.differingArch;
      report.finalVerdict = Verdict::kLAlert;
      report.totalRuntimeSec = total.elapsedSeconds();
      return report;
    }
  }
  report.finalVerdict =
      report.pAlertRegisters.empty() ? Verdict::kProven : Verdict::kPAlert;
  report.totalRuntimeSec = total.elapsedSeconds();
  return report;
}

// ---------------------------------------------------------------------------

std::vector<BlockingCondition> miniRvBlockingConditions() {
  return {
      // The response buffer may differ only while the write-back stage does
      // not hold a valid, fault-free load (then nothing consumes it): a
      // faulting load wrote it, and the subsequent flush strips consumers.
      [](Miter& m) {
        const soc::SocInstance& s1 = m.soc1();
        const soc::SocInstance& s2 = m.soc2();
        const Sig respEq = s1.respBuf.eq(s2.respBuf);
        const Sig consumerBlocked1 = ~s1.memwbValid | s1.memwbPmpFault | ~s1.memwbIsLoad;
        const Sig consumerBlocked2 = ~s2.memwbValid | s2.memwbPmpFault | ~s2.memwbIsLoad;
        return respEq | (consumerBlocked1 & consumerBlocked2);
      },
  };
}

}  // namespace upec
