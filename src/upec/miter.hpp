// The UPEC computational model (paper Fig. 3): two identical instances of
// the SoC's logic in one netlist, executing the same (symbolic) program out
// of a shared instruction memory, with identical memory contents except for
// one protected (secret) location.
//
// After construction the miter exposes:
//  * the paired state registers of the two instances, each tagged with its
//    StateClass (architectural / microarchitectural / memory),
//  * per-pair equality signals, and the conditions used as UPEC assumptions
//    (initial-state equality, memory equality modulo the secret,
//    secret_data_protected, Constraints 1-3, cache scenario selectors).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rtl/ir.hpp"
#include "soc/soc.hpp"

namespace upec {

// Which initial cache state the proof considers (paper Tab. I splits the
// analysis into these two cases for efficiency).
enum class SecretScenario {
  kInCache,     // a valid copy of the secret is in the D-cache
  kNotInCache,  // the cache holds no copy of the secret
  kAny,         // no assumption (union of both cases)
};

const char* scenarioName(SecretScenario s);

struct RegPair {
  std::uint32_t reg1 = 0;  // register index in instance 1
  std::uint32_t reg2 = 0;  // register index in instance 2
  rtl::StateClass cls = rtl::StateClass::kMicro;
  std::string name;        // instance-1 name without the prefix
  rtl::Sig eq;             // 1-bit: values equal
};

class Miter {
 public:
  Miter(const soc::SocConfig& config, std::uint32_t secretWord);
  Miter(const Miter&) = delete;

  rtl::Design& design() { return design_; }
  const rtl::Design& design() const { return design_; }
  const soc::SocConfig& config() const { return config_; }
  std::uint32_t secretWord() const { return secretWord_; }
  const soc::SocInstance& soc1() const { return soc1_; }
  const soc::SocInstance& soc2() const { return soc2_; }

  // State pairs of the logic part (arch + micro); memory words excluded.
  const std::vector<RegPair>& logicPairs() const { return logicPairs_; }
  // Memory-class pairs: dmem words and cache data words.
  const std::vector<RegPair>& dmemPairs() const { return dmemPairs_; }
  const std::vector<RegPair>& cacheDataPairs() const { return cacheDataPairs_; }

  // --- assumption building blocks -----------------------------------------
  // All logic state equal (micro_soc_state1 == micro_soc_state2).
  rtl::Sig microSocStateEqual() const { return microEq_; }
  // Memory equality modulo the secret location (Fig. 3 memory constraint +
  // Constraint 4 for the cache data array).
  rtl::Sig memoryEqualExceptSecret() const { return memEq_; }
  // secret_data_protected(): a locked TOR entry covers the secret word.
  rtl::Sig secretDataProtected() const { return protectedCond_; }
  // Constraint 1: no buffered transaction already targets the secret.
  rtl::Sig noOngoingProtectedAccess() const { return noOngoing_; }
  // Constraint 2: cache monitors of both instances report valid behaviour.
  rtl::Sig cacheMonitorsOk() const { return monitorsOk_; }
  // Constraint 3: system software never loads the secret while in M-mode.
  rtl::Sig secureSystemSoftware() const { return secureSw_; }
  // Scenario selector (evaluated on instance 1; instances start equal).
  rtl::Sig scenarioCondition(SecretScenario scenario) const;

  // Architectural observability: pc and the retire stream (used in alert
  // classification narratives; the pairs already cover it).
  rtl::Sig archStateEqual() const { return archEq_; }

  // The one conditionally-equal memory word: the secret's cache line data
  // may differ only while the line actually holds the secret's address.
  rtl::Sig secretCacheLineCondition() const { return secretLineCond_; }
  std::uint32_t secretCacheIndex() const { return secretIdx_; }

 private:
  rtl::Sig pairListEqual(const std::vector<RegPair>& pairs);

  soc::SocConfig config_;
  std::uint32_t secretWord_;
  rtl::Design design_;
  soc::SocInstance soc1_, soc2_;
  std::vector<RegPair> logicPairs_, dmemPairs_, cacheDataPairs_;
  rtl::Sig microEq_, memEq_, protectedCond_, noOngoing_, monitorsOk_, secureSw_, archEq_;
  rtl::Sig secretInCache_, secretNotInCache_, one_, secretLineCond_;
  std::uint32_t secretIdx_ = 0;
};

}  // namespace upec
