#include "upec/cex_report.hpp"

#include <sstream>

#include "riscv/encoding.hpp"

namespace upec {

CexReport explainCounterexample(const Miter& miter, const formal::Trace& trace) {
  CexReport report;
  const rtl::Design& d = miter.design();
  const formal::TraceEval eval(d, trace);

  // The shared instruction memory is never written, so its cycle-0 word
  // registers ARE the program.
  const auto& imem = d.mems()[miter.soc1().imemMemId];
  for (std::size_t w = 0; w < imem.wordRegs.size(); ++w) {
    const std::uint32_t raw =
        static_cast<std::uint32_t>(trace.initialRegs[imem.wordRegs[w]].uint());
    CexInstruction instr;
    instr.wordIndex = static_cast<std::uint32_t>(w);
    instr.raw = raw;
    instr.disassembly = riscv::disassemble(raw);
    report.program.push_back(instr);
  }

  // The two secret values.
  const RegPair& secretPair = miter.dmemPairs()[miter.secretWord()];
  report.secret1 = static_cast<std::uint32_t>(trace.initialRegs[secretPair.reg1].uint());
  report.secret2 = static_cast<std::uint32_t>(trace.initialRegs[secretPair.reg2].uint());
  report.secretInCache = eval.value(miter.scenarioCondition(SecretScenario::kInCache), 0).toBool();

  // Timeline: pcs, modes, stalls, and which state pairs newly diverge.
  std::vector<bool> wasDiffering(miter.logicPairs().size(), false);
  for (unsigned t = 0; t < trace.cycles; ++t) {
    CexCycle c;
    c.cycle = t;
    c.pc1 = static_cast<std::uint32_t>(eval.value(miter.soc1().pc, t).uint());
    c.pc2 = static_cast<std::uint32_t>(eval.value(miter.soc2().pc, t).uint());
    c.mode1 = eval.value(miter.soc1().mode, t).toBool();
    c.mode2 = eval.value(miter.soc2().mode, t).toBool();
    c.stall1 = eval.value(miter.soc1().stall, t).toBool();
    c.stall2 = eval.value(miter.soc2().stall, t).toBool();
    c.flush1 = eval.value(miter.soc1().flushWB, t).toBool();
    c.flush2 = eval.value(miter.soc2().flushWB, t).toBool();
    for (std::size_t i = 0; i < miter.logicPairs().size(); ++i) {
      const RegPair& pair = miter.logicPairs()[i];
      const bool differs = eval.regValue(pair.reg1, t) != eval.regValue(pair.reg2, t);
      if (differs && !wasDiffering[i]) c.newlyDiffering.push_back(pair.name);
      wasDiffering[i] = differs;
    }
    report.timeline.push_back(c);
  }
  return report;
}

std::string CexReport::pretty() const {
  std::ostringstream os;
  os << "Synthesised attacker program (solver-chosen instruction memory):\n";
  for (const CexInstruction& instr : program) {
    char addr[16];
    std::snprintf(addr, sizeof addr, "  %04x: ", instr.wordIndex * 4);
    os << addr << instr.disassembly << "\n";
  }
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "Secrets: instance1 = 0x%X, instance2 = 0x%X (%s the cache)\n", secret1, secret2,
                secretInCache ? "copy in" : "not in");
  os << buf;
  os << "Timeline:\n";
  for (const CexCycle& c : timeline) {
    std::snprintf(buf, sizeof buf,
                  "  t+%u: pc=%x/%x mode=%c/%c%s%s", c.cycle, c.pc1, c.pc2,
                  c.mode1 ? 'M' : 'U', c.mode2 ? 'M' : 'U',
                  (c.stall1 || c.stall2)
                      ? (c.stall1 && c.stall2 ? " [stall]" : " [STALL DIVERGES]")
                      : "",
                  (c.flush1 || c.flush2) ? " [flush]" : "");
    os << buf;
    if (!c.newlyDiffering.empty()) {
      os << "  diverges:";
      for (const std::string& n : c.newlyDiffering) os << " " << n;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace upec
