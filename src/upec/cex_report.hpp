// Counterexample explanation: UPEC "models software symbolically" (paper
// Sec. II) — the instruction memory is part of the symbolic state, so an
// alert's SAT model contains a concrete attacker program synthesised by
// the solver. This module extracts it (as RISC-V disassembly), together
// with a cycle-by-cycle narrative of how the two SoC instances diverge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "formal/bmc.hpp"
#include "upec/miter.hpp"

namespace upec {

struct CexInstruction {
  std::uint32_t wordIndex = 0;  // imem word
  std::uint32_t raw = 0;
  std::string disassembly;
};

struct CexCycle {
  unsigned cycle = 0;
  std::uint32_t pc1 = 0, pc2 = 0;
  bool mode1 = false, mode2 = false;  // true = machine
  bool stall1 = false, stall2 = false;
  bool flush1 = false, flush2 = false;
  std::vector<std::string> newlyDiffering;  // state pairs that diverge here
};

struct CexReport {
  std::vector<CexInstruction> program;     // the synthesised attacker program
  std::uint32_t secret1 = 0, secret2 = 0;  // the two secret values
  bool secretInCache = false;
  std::vector<CexCycle> timeline;
  std::string pretty() const;
};

// Builds the report from an alert trace (window = trace cycles - 1).
CexReport explainCounterexample(const Miter& miter, const formal::Trace& trace);

}  // namespace upec
