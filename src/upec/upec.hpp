// Unique Program Execution Checking — the paper's core contribution.
//
// UpecEngine wraps a Miter and formulates the UPEC interval property of
// paper Fig. 4 on a bounded model (IPC, Sec. V):
//
//   assume @t:      secret_data_protected()
//   assume @t:      micro_soc_state1 == micro_soc_state2 (+ memory modulo secret)
//   assume @t:      no_ongoing_protected_access()        (Constraint 1)
//   assume t..t+k:  cache_monitor_valid_IO()             (Constraints 2/4)
//   assume t..t+k:  secure_system_software()             (Constraint 3)
//   prove  @t+k:    soc_state1 == soc_state2
//
// Counterexamples are classified per paper Definitions 6/7:
//   L-alert — an architectural state pair differs: real leakage, the design
//             is insecure;
//   P-alert — only program-invisible microarchitectural state differs: a
//             propagation indicator, to be diagnosed or discharged.
//
// MethodologyDriver implements the iterative flow of paper Fig. 5, and
// InductiveProver the induction that turns "no L-alert within the window"
// into an unbounded security proof (paper Sec. VI).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "formal/bmc.hpp"
#include "rtl/reduce.hpp"
#include "upec/miter.hpp"

namespace upec {

struct UpecOptions {
  SecretScenario scenario = SecretScenario::kAny;
  // Constraint toggles (for the ablation studies of Sec. V-A).
  bool constraint1NoOngoing = true;
  bool constraint2CacheMonitor = true;
  bool constraint3SecureSw = true;
  bool assumeSecretProtected = true;
  // Encode the initial-state equality structurally by sharing frame-0
  // variables between the instances (strongly recommended; the ablation
  // bench shows the cost of plain equality assumptions).
  bool structuralInitEquality = true;
  // Reuse one SAT solver (and its learnt clauses) across the window walk
  // instead of re-encoding every check from scratch; see
  // formal::BmcEngine::checkIncremental. Semantically equivalent to
  // single-shot checks for the UPEC property family (assumptions are
  // monotone in the window; only commitments vary).
  //
  // Tri-state: unset means "context default" — a bare UpecEngine::check
  // stays single-shot (safe for non-monotone window sequences), while
  // MethodologyDriver, whose window walk is monotone by construction,
  // defaults to incremental. Set false to opt out explicitly.
  std::optional<bool> incrementalDeepening;
  std::uint64_t conflictBudget = 0;  // 0 = unlimited; applies per check
  // Wall-clock deadline per solve call in milliseconds (0 = none). The
  // solver checks it inside its search loop — no watchdog thread — and
  // returns kUndef with UpecResult::deadlineExpired set. Unlike a
  // budget-exhausted window, a deadline-expired one is *not* rescheduled:
  // the budget measures search effort (retrying with more is meaningful),
  // the deadline caps latency (retrying would re-break it).
  std::uint64_t solveDeadlineMs = 0;
  // Fault injection (engine::FaultPlan plumbs this): the solver throws
  // after this many conflicts in one solve call (0 = off). Exercises the
  // kError containment path deterministically; never set in production.
  std::uint64_t faultAbortAtConflict = 0;

  // Decision-procedure selection. portfolio >= 2 races that many
  // diversified CDCL instances per check (sat::SolverConfig::diversified,
  // first answer wins); 0/1 keeps the single default solver. An explicit
  // solverConfigs list overrides the count.
  unsigned portfolio = 0;
  std::uint64_t portfolioSeed = 1;  // base seed for the diversified family
  std::vector<sat::SolverConfig> solverConfigs;
  // Solver-depth profiling (sat::SolverConfig::profile on every resolved
  // config): per-phase CDCL wall timings and exchange-efficacy counters in
  // the solve stats. Read-only instrumentation — verdicts and the search
  // trajectory are unchanged — but it reads the clock in the solver's
  // inner loop, so it is off by default like every other knob here.
  bool profileSolver = false;

  // Pre-encoding reduction (src/rtl/reduce.hpp): before the unroller and
  // CNF builder see the miter, sweep it to the proof obligations' cone of
  // influence, fold constants, and merge the two instances' mirrored
  // registers (frame-0-equal pairs with congruent next-state functions).
  // Off by default per the repo invariant — the default solver trajectory
  // stays bit-identical; with reduction on, verdicts are preserved by
  // construction and bench/campaign's `reduce` section self-checks that.
  // The reduced model is built lazily per exclusion set; an incremental
  // session pins the model built at its first call (sound because the
  // exclusion set only grows, so later commitments are a subset of the
  // roots the model was built from). InductiveProver does not reduce: its
  // skipLogic/allowedDiff machinery changes the frame-0-equal pair set per
  // call, which would invalidate the merge seeds.
  bool reduction = false;
  rtl::ReduceOptions reductionOptions;  // initialState is forced to kSymbolic

  // Cooperative portfolio solving: members publish short learnt clauses to
  // a sat::ClauseExchange and import each other's at restart boundaries.
  // Off by default; no effect unless 2+ configs race. Verdict-preserving —
  // learnt clauses are logical consequences of the shared formula.
  bool portfolioSharing = false;
  // Campaign-wide member-slot cap (engine::ThreadGovernor); not owned, may
  // be null. Portfolios degrade member count when slots run short.
  sat::MemberGovernor* governor = nullptr;
  // Learnt clauses persisted by a previous run (checkpoint resume), as
  // flat Lit codes per clause. Seeded into the portfolio's ClauseExchange
  // at construction so every member imports them on its first solve.
  // Consumed only by sharing portfolios (the exchange is the seam); a
  // single backend ignores the seeds. Verdict-preserving: the clauses are
  // logical consequences of the same deterministic encoding, verified by
  // the fingerprint check at checkpoint load.
  std::vector<std::vector<int>> seedLearnts;

  // Encoded-prefix cache (formal/prefix_cache.hpp; the campaign passes
  // engine::EncodeCache). Not owned, may be null (= every session encodes
  // cold). prefixKey is the design-identity part of the cache key — the
  // engine derives it from SoC config + secret word — and the UpecEngine
  // appends what it alone knows: the init-equality mode, and under
  // reduction the options/scenario/exclusions the reduced netlist depends
  // on. Only incremental sessions consult the cache. Verdict-preserving:
  // a cloned prefix reproduces the cold encode's solver state exactly.
  formal::PrefixCache* prefixCache = nullptr;
  std::string prefixKey;

  // The configuration list the options resolve to (explicit list, else
  // diversified(portfolio), else empty = single default backend).
  std::vector<sat::SolverConfig> resolvedSolverConfigs() const;
  // The portfolio-wide options the fields above resolve to.
  sat::PortfolioOptions resolvedPortfolioOptions() const;
};

// kError marks a window/job whose execution *failed* (a thrown exception,
// an injected fault) rather than one the solver answered or abandoned —
// the campaign records it with a diagnostic instead of crashing.
enum class Verdict { kProven, kPAlert, kLAlert, kUnknown, kError };
const char* verdictName(Verdict v);

struct UpecResult {
  Verdict verdict = Verdict::kUnknown;
  unsigned window = 0;
  // Names of the state registers that differ at t+k (classification basis).
  std::vector<std::string> differingArch;
  std::vector<std::string> differingMicro;
  formal::BmcStats stats;
  std::optional<formal::Trace> trace;
  // For kUnknown: the window was undecided because the conflict budget ran
  // out (not a cooperative stop). The campaign engine reschedules such
  // windows with an escalated budget — see engine::LadderScheduler.
  bool budgetExhausted = false;
  // For kUnknown: the per-solve wall-clock deadline expired. Terminal —
  // never rescheduled (see UpecOptions::solveDeadlineMs).
  bool deadlineExpired = false;
};

class UpecEngine {
 public:
  UpecEngine(Miter& miter, const UpecOptions& options);
  ~UpecEngine();

  // Checks the UPEC property at window k. Register names in
  // `excludedFromCommitment` are dropped from the proof obligation (but
  // never from the initial-state-equality assumption), per the methodology.
  // Honours options().incrementalDeepening: when set, checks are routed
  // through a persistent incremental BMC session (window lengths must then
  // be non-decreasing across calls; use resetIncremental() to start over).
  UpecResult check(unsigned k, const std::set<std::string>& excludedFromCommitment = {});

  // Always uses the persistent incremental session, regardless of options.
  UpecResult checkIncremental(unsigned k,
                              const std::set<std::string>& excludedFromCommitment = {});

  // Drops the incremental session (solver, learnt clauses, frames).
  void resetIncremental();

  // Adjusts the per-check conflict budget for subsequent check() /
  // checkIncremental() calls (0 = unlimited). A live incremental session
  // picks the new budget up on its next solve: re-entering an undecided
  // window with a larger budget reuses the session's frames and obligation
  // encoding (the session caches the activation literal per commitment
  // set), so a retry pays only solver time.
  void setConflictBudget(std::uint64_t budget) { options_.conflictBudget = budget; }

  // Learnt clauses currently published on the incremental session's
  // portfolio ClauseExchange, as flat Lit codes per clause — the payload
  // engine::CheckpointStore persists for cross-process learnt reuse.
  // Empty for single-backend or non-sharing sessions, or before the first
  // incremental check.
  std::vector<std::vector<int>> exchangeSnapshot(std::size_t maxClauses) const;

  // Seeds externally proven clauses (engine::ClauseStore, flat Lit codes
  // per clause — exchangeSnapshot's inverse) into the incremental
  // session's sharing exchange; every portfolio member imports them on its
  // next solve. Ignored by non-sharing backends. Clauses offered before
  // the first incremental check are delivered at session construction.
  void seedExchange(const std::vector<std::vector<int>>& clauses);

  // The Fig. 4 interval property at window k (campaigns and external
  // drivers can encode it with an engine of their own choosing).
  formal::IntervalProperty buildProperty(unsigned k,
                                         const std::set<std::string>& excluded = {}) const;

  // Names of all microarchitectural pairs — pass as the exclusion set to
  // hunt directly for L-alerts (architectural-only commitment, Def. 6).
  std::set<std::string> allMicroNames() const;

  // Renders the Fig. 4 property (for documentation / quickstart output).
  std::string renderProperty(unsigned k) const;

  Miter& miter() { return miter_; }
  const UpecOptions& options() const { return options_; }

  // Stats of the most recently built reduced model (nullopt while
  // reduction is off or before the first check builds one).
  const std::optional<rtl::ReductionStats>& reductionStats() const {
    return lastReductionStats_;
  }

 private:
  UpecResult classify(const formal::CheckResult& bmc, unsigned k,
                      const std::set<std::string>& excluded);
  // Builds (or returns the cached) reduced miter model whose roots cover
  // every property signal reachable under this exclusion set.
  const rtl::ReductionResult& reducedFor(const std::set<std::string>& excluded);
  formal::IntervalProperty translateProperty(const formal::IntervalProperty& p,
                                             const rtl::ReductionResult& red) const;
  // Lifts a reduced-design trace back to original register/input indexing
  // so TraceEval and counterexample reporting run on the original design.
  formal::Trace translateTrace(const formal::Trace& t, const rtl::ReductionResult& red) const;

  Miter& miter_;
  UpecOptions options_;
  // Lazily created persistent BMC session for incremental deepening.
  std::unique_ptr<formal::BmcEngine> incremental_;
  // Reduced pre-encoding models, keyed by the exclusion set they were
  // rooted at (options_.reduction only). std::map for pointer stability:
  // BmcEngines hold references into the stored designs.
  std::map<std::set<std::string>, rtl::ReductionResult> reducedCache_;
  const rtl::ReductionResult* incrementalReduced_ = nullptr;
  std::optional<rtl::ReductionStats> lastReductionStats_;
};

// Registers the miter's structural initial-state equalities on a BMC
// engine: every logic pair except those in `skipLogic`, plus all memory
// and cache-data words other than the secret's (paper Fig. 3 computational
// model; see Unroller::aliasInitialState for why sharing variables beats
// equality assumptions).
void applyStructuralEquality(Miter& miter, formal::BmcEngine& engine,
                             const std::set<std::string>& skipLogic = {});

// One P-alert found during the methodology run.
struct PAlert {
  unsigned window = 0;
  std::vector<std::string> registers;
};

struct MethodologyReport {
  Verdict finalVerdict = Verdict::kUnknown;
  std::vector<PAlert> pAlerts;
  std::set<std::string> pAlertRegisters;  // union over all P-alerts
  std::optional<unsigned> firstPAlertWindow;
  std::optional<unsigned> firstLAlertWindow;
  std::vector<std::string> lAlertRegisters;
  unsigned maxWindow = 0;           // largest window actually checked
  double totalRuntimeSec = 0;
  std::uint64_t peakClauses = 0;    // proof memory proxy
  std::uint64_t peakVars = 0;
  // Solver effort summed over every check of the run (incl. induction).
  std::uint64_t totalConflicts = 0;
  std::uint64_t totalPropagations = 0;
  // Learnt-clause exchange flow summed over every check (sharing runs).
  std::uint64_t totalClausesExported = 0;
  std::uint64_t totalClausesImported = 0;
  std::uint64_t totalClausesDropped = 0;
  bool inductionUsed = false;
  bool inductionHolds = false;
  double inductionRuntimeSec = 0;
};

// A designer-supplied blocking condition: an invariant over the miter that
// explains why a P-alert cannot propagate (paper Sec. VI: "the designer
// must identify these blocking conditions for each P-alert").
using BlockingCondition = std::function<rtl::Sig(Miter&)>;

class InductiveProver {
 public:
  InductiveProver(Miter& miter, const UpecOptions& options);

  // Proves: from any state where all logic pairs except `allowedDiff` are
  // equal, memory is equal modulo the secret, the secret is protected, and
  // every blocking condition holds, one clock cycle preserves all of the
  // above (and architectural equality). UNSAT = the P-alerts are confined
  // forever and the design is secure.
  struct Result {
    bool holds = false;
    bool unknown = false;
    std::vector<std::string> escapedTo;  // registers newly differing at t+1
    formal::BmcStats stats;
  };
  Result prove(const std::set<std::string>& allowedDiff,
               const std::vector<BlockingCondition>& blocking);

 private:
  Miter& miter_;
  UpecOptions options_;
};

// The iterative UPEC methodology (paper Fig. 5), fully automated: walk the
// window upward, accumulate P-alerts by removing their registers from the
// commitment, stop on an L-alert, and attempt the inductive proof when no
// L-alert exists within the window bound.
class MethodologyDriver {
 public:
  MethodologyDriver(Miter& miter, const UpecOptions& options);

  // The full Fig. 5 flow: enumerate P-alerts per window, refine the
  // commitment, stop on an L-alert, close with induction. Best on designs
  // expected to be secure (small P-alert sets).
  MethodologyReport run(unsigned maxWindow,
                        const std::vector<BlockingCondition>& blocking = {});

  // Vulnerability hunt: find the first P-alert with the full commitment,
  // then search for an L-alert with an architectural-only commitment
  // (Def. 6), skipping the exhaustive P-alert enumeration. This mirrors the
  // paper's observation that the designer "may abort the iterative
  // process" once P-alerts make the compromise obvious.
  MethodologyReport hunt(unsigned maxWindow);

 private:
  Miter& miter_;
  UpecOptions options_;
};

// The blocking conditions that discharge the secure MiniRV design's
// P-alerts (the cache response buffer may hold the secret only while the
// instruction in write-back is an invalid or faulting load).
std::vector<BlockingCondition> miniRvBlockingConditions();

}  // namespace upec
