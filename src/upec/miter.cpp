#include "upec/miter.hpp"

#include <cassert>

#include "riscv/encoding.hpp"

namespace upec {

using rtl::Design;
using rtl::Sig;
using rtl::StateClass;

const char* scenarioName(SecretScenario s) {
  switch (s) {
    case SecretScenario::kInCache: return "D in cache";
    case SecretScenario::kNotInCache: return "D not in cache";
    case SecretScenario::kAny: return "any";
  }
  return "?";
}

Miter::Miter(const soc::SocConfig& config, std::uint32_t secretWord)
    : config_(config), secretWord_(secretWord), design_("upec_miter") {
  assert(secretWord < config.machine.dmemWords);

  // Shared instruction memory: both instances execute the same symbolic
  // program (UPEC "models software symbolically", Sec. II).
  const std::uint32_t imem =
      design_.addMem(config.machine.imemWords, 32, "imem", StateClass::kMemory);
  soc1_ = soc::SocBuilder::build(design_, config, "s1.", imem);
  soc2_ = soc::SocBuilder::build(design_, config, "s2.", imem);
  design_.lowerMemories();

  auto regSig = [&](std::uint32_t regIdx) {
    return Sig(&design_, design_.regs()[regIdx].q);
  };
  auto makePair = [&](std::uint32_t r1, std::uint32_t r2) {
    RegPair p;
    p.reg1 = r1;
    p.reg2 = r2;
    p.cls = design_.regs()[r1].stateClass;
    const std::string& n1 = design_.regs()[r1].name;
    p.name = n1.substr(n1.find('.') + 1);
    p.eq = regSig(r1).eq(regSig(r2));
    return p;
  };

  // Logic state: the builders create registers in identical order.
  assert(soc1_.logicRegs.size() == soc2_.logicRegs.size());
  for (std::size_t i = 0; i < soc1_.logicRegs.size(); ++i) {
    logicPairs_.push_back(makePair(soc1_.logicRegs[i], soc2_.logicRegs[i]));
  }
  // Lowered memory words. The register file is architectural state and its
  // words belong to the logic pairs; dmem and cache data are memory-class.
  auto memWordPairs = [&](std::uint32_t mem1, std::uint32_t mem2, std::vector<RegPair>* out) {
    const auto& w1 = design_.mems()[mem1].wordRegs;
    const auto& w2 = design_.mems()[mem2].wordRegs;
    assert(w1.size() == w2.size());
    for (std::size_t i = 0; i < w1.size(); ++i) out->push_back(makePair(w1[i], w2[i]));
  };
  memWordPairs(soc1_.regfileMemId, soc2_.regfileMemId, &logicPairs_);
  memWordPairs(soc1_.dmemMemId, soc2_.dmemMemId, &dmemPairs_);
  memWordPairs(soc1_.cacheDataMemId, soc2_.cacheDataMemId, &cacheDataPairs_);

  // --- assumption conditions ----------------------------------------------
  microEq_ = pairListEqual(logicPairs_);

  Sig archEq = design_.one(1);
  for (const RegPair& p : logicPairs_) {
    if (p.cls == StateClass::kArch) archEq = archEq & p.eq;
  }
  archEq_ = archEq;

  // Memory equality modulo the secret: every dmem word pair equal except
  // the secret word; every cache data word equal except the line that may
  // legitimately hold a copy of the secret (same index AND tag).
  const unsigned I = config.indexBits();
  const std::uint32_t secretIdx = secretWord & (config.cacheLines - 1);
  const std::uint32_t secretTag = secretWord >> I;
  Sig memEq = design_.one(1);
  for (std::size_t w = 0; w < dmemPairs_.size(); ++w) {
    if (w == secretWord) continue;
    memEq = memEq & dmemPairs_[w].eq;
  }
  const Sig secTagMatch =
      soc1_.cacheTag[secretIdx].eq(design_.constant(config.tagBits(), secretTag));
  secretInCache_ = soc1_.cacheValid[secretIdx] & secTagMatch;
  secretIdx_ = secretIdx;
  for (std::size_t w = 0; w < cacheDataPairs_.size(); ++w) {
    if (w == secretIdx) {
      // The secret line's data may differ only while it actually maps to
      // the secret's address (Constraint 4 otherwise requires equality).
      secretLineCond_ = cacheDataPairs_[w].eq | secretInCache_;
      memEq = memEq & secretLineCond_;
    } else {
      memEq = memEq & cacheDataPairs_[w].eq;
    }
  }
  memEq_ = memEq;

  // secret_data_protected(): PMP entry 1 is a locked TOR entry with no
  // read/write permission whose range [pmpaddr0, pmpaddr1) covers the
  // secret word. Evaluated on instance 1; initial-state equality carries it
  // to instance 2.
  {
    using namespace riscv;
    const Sig cfg1 = soc1_.pmpcfg[1];
    const Sig lockedNoAccess = cfg1.bit(7) & ~cfg1.bit(0) & ~cfg1.bit(1) &
                               cfg1.extract(4, 3).eq(design_.constant(2, 1));
    const unsigned W1 = config.wordAddrBits() + 1;
    const Sig secretW = design_.constant(W1, secretWord);
    protectedCond_ =
        lockedNoAccess & soc1_.pmpaddr[0].ule(secretW) & secretW.ult(soc1_.pmpaddr[1]);
  }

  // Constraint 1: address buffers of in-flight transactions do not point
  // at the secret (both instances; their buffers are equal at t anyway,
  // but the constraint is cheap and self-documenting).
  {
    const unsigned W = config.wordAddrBits();
    const Sig secretW = design_.constant(W, secretWord);
    auto clean = [&](const soc::SocInstance& s) {
      const Sig idle = s.refillState.eq(design_.constant(2, 0));
      return (~s.pendingValid | s.pendingAddr.ne(secretW)) &
             (idle | s.refillAddr.ne(secretW));
    };
    noOngoing_ = clean(soc1_) & clean(soc2_);
  }

  monitorsOk_ = soc1_.cacheMonitorOk & soc2_.cacheMonitorOk;

  // Constraint 3: while in machine mode, the (trusted) system software
  // issues no load of the secret location.
  {
    const unsigned W = config.wordAddrBits();
    const Sig secretW = design_.constant(W, secretWord);
    auto secure = [&](const soc::SocInstance& s) {
      return ~(s.mode & s.rawReqValid & s.rawReqIsLoad & s.rawReqWordAddr.eq(secretW));
    };
    secureSw_ = secure(soc1_) & secure(soc2_);
  }

  secretNotInCache_ = ~secretInCache_;
  one_ = design_.one(1);
}

rtl::Sig Miter::scenarioCondition(SecretScenario scenario) const {
  switch (scenario) {
    case SecretScenario::kInCache:
      return secretInCache_;
    case SecretScenario::kNotInCache:
      return secretNotInCache_;
    case SecretScenario::kAny:
      return one_;
  }
  return secretInCache_;
}

rtl::Sig Miter::pairListEqual(const std::vector<RegPair>& pairs) {
  Sig all = design_.one(1);
  for (const RegPair& p : pairs) all = all & p.eq;
  return all;
}

}  // namespace upec
