#include "rtl/ir.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace upec::rtl {

const char* opName(Op op) {
  switch (op) {
    case Op::kInput: return "input";
    case Op::kConst: return "const";
    case Op::kRegQ: return "reg";
    case Op::kMemRead: return "memread";
    case Op::kBuf: return "buf";
    case Op::kNot: return "not";
    case Op::kNeg: return "neg";
    case Op::kRedOr: return "redor";
    case Op::kRedAnd: return "redand";
    case Op::kRedXor: return "redxor";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kLshr: return "lshr";
    case Op::kAshr: return "ashr";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kUlt: return "ult";
    case Op::kUle: return "ule";
    case Op::kSlt: return "slt";
    case Op::kSle: return "sle";
    case Op::kMux: return "mux";
    case Op::kExtract: return "extract";
    case Op::kConcat: return "concat";
    case Op::kZext: return "zext";
    case Op::kSext: return "sext";
  }
  return "?";
}

bool isCommutative(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kMul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kEq:
    case Op::kNe:
      return true;
    default:
      return false;
  }
}

// ------------------------------------------------------------------ Sig ---

unsigned Sig::width() const { return design_->width(id_); }

Sig Sig::operator+(Sig o) const { return design_->binary(Op::kAdd, *this, o); }
Sig Sig::operator-(Sig o) const { return design_->binary(Op::kSub, *this, o); }
Sig Sig::operator*(Sig o) const { return design_->binary(Op::kMul, *this, o); }
Sig Sig::operator&(Sig o) const { return design_->binary(Op::kAnd, *this, o); }
Sig Sig::operator|(Sig o) const { return design_->binary(Op::kOr, *this, o); }
Sig Sig::operator^(Sig o) const { return design_->binary(Op::kXor, *this, o); }
Sig Sig::operator~() const { return design_->unary(Op::kNot, *this); }
Sig Sig::operator<<(Sig o) const { return design_->binary(Op::kShl, *this, o); }
Sig Sig::operator>>(Sig o) const { return design_->binary(Op::kLshr, *this, o); }
Sig Sig::eq(Sig o) const { return design_->binary(Op::kEq, *this, o); }
Sig Sig::ne(Sig o) const { return design_->binary(Op::kNe, *this, o); }
Sig Sig::ult(Sig o) const { return design_->binary(Op::kUlt, *this, o); }
Sig Sig::ule(Sig o) const { return design_->binary(Op::kUle, *this, o); }
Sig Sig::slt(Sig o) const { return design_->binary(Op::kSlt, *this, o); }
Sig Sig::sle(Sig o) const { return design_->binary(Op::kSle, *this, o); }
Sig Sig::extract(unsigned hi, unsigned lo) const { return design_->extract(*this, hi, lo); }
Sig Sig::zext(unsigned w) const { return design_->zext(*this, w); }
Sig Sig::sext(unsigned w) const { return design_->sext(*this, w); }
Sig Sig::concat(Sig lowPart) const { return design_->concat(*this, lowPart); }
Sig Sig::redOr() const { return design_->unary(Op::kRedOr, *this); }
Sig Sig::redAnd() const { return design_->unary(Op::kRedAnd, *this); }
Sig Sig::isZero() const { return ~redOr(); }

Sig mux(Sig sel, Sig thenV, Sig elseV) { return sel.design()->mux(sel, thenV, elseV); }

// --------------------------------------------------------------- Design ---

NodeId Design::addNode(Node n) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(n);
  return id;
}

NodeId Design::hashCons(const Node& n) {
  // Structural hashing for pure combinational nodes: identical op applied
  // to identical operands yields the same node. Registers, inputs and
  // memory reads are never shared.
  std::uint64_t h = static_cast<std::uint64_t>(n.op) * 0x9e3779b97f4a7c15ull;
  h ^= n.width + (h << 6);
  for (int i = 0; i < n.numOps; ++i) h = h * 1099511628211ull + n.ops[i];
  h = h * 1099511628211ull + n.aux0;
  h = h * 1099511628211ull + n.aux1;

  auto& bucket = structuralHash_[h];
  for (NodeId cand : bucket) {
    const Node& c = nodes_[cand];
    if (c.op == n.op && c.width == n.width && c.numOps == n.numOps && c.aux0 == n.aux0 &&
        c.aux1 == n.aux1 && c.ops[0] == n.ops[0] && c.ops[1] == n.ops[1] && c.ops[2] == n.ops[2]) {
      return cand;
    }
  }
  const NodeId id = addNode(n);
  bucket.push_back(id);
  return id;
}

Sig Design::input(unsigned width, const std::string& name) {
  assert(width >= 1 && width <= 64);
  Node n;
  n.op = Op::kInput;
  n.width = width;
  const NodeId id = addNode(n);
  inputs_.push_back(id);
  names_[id] = name;
  return Sig(this, id);
}

Sig Design::constant(const BitVec& value) {
  Node n;
  n.op = Op::kConst;
  n.width = value.width();
  // Dedup by value: reuse the table slot, then hash-cons the node.
  std::uint32_t slot = static_cast<std::uint32_t>(constTable_.size());
  for (std::uint32_t i = 0; i < constTable_.size(); ++i) {
    if (constTable_[i] == value) {
      slot = i;
      break;
    }
  }
  if (slot == constTable_.size()) constTable_.push_back(value);
  n.aux0 = slot;
  return Sig(this, hashCons(n));
}

Sig Design::reg(unsigned width, const std::string& name, BitVec resetValue,
                StateClass stateClass) {
  assert(width >= 1 && width <= 64 && resetValue.width() == width);
  Node n;
  n.op = Op::kRegQ;
  n.width = width;
  const NodeId id = addNode(n);
  RegInfo info;
  info.q = id;
  info.resetValue = resetValue;
  info.stateClass = stateClass;
  info.name = name;
  regIndex_[id] = static_cast<std::uint32_t>(regs_.size());
  regs_.push_back(info);
  names_[id] = name;
  return Sig(this, id);
}

void Design::connect(Sig regQ, Sig next) {
  assert(regQ.design() == this && next.design() == this);
  assert(nodes_[regQ.id()].op == Op::kRegQ);
  assert(width(regQ.id()) == width(next.id()));
  RegInfo& info = regs_[regIndexOf(regQ.id())];
  assert(info.next == kNoNode && "register connected twice");
  info.next = next.id();
}

std::uint32_t Design::addMem(unsigned depth, unsigned width, const std::string& name,
                             StateClass stateClass) {
  assert(depth >= 2 && width >= 1 && width <= 64);
  MemInfo m;
  m.depth = depth;
  m.width = width;
  m.addrBits = 1;
  while ((1u << m.addrBits) < depth) ++m.addrBits;
  m.stateClass = stateClass;
  m.name = name;
  mems_.push_back(m);
  return static_cast<std::uint32_t>(mems_.size() - 1);
}

Sig Design::memRead(std::uint32_t memId, Sig addr) {
  assert(memId < mems_.size());
  MemInfo& m = mems_[memId];
  assert(!m.lowered);
  assert(addr.width() == m.addrBits);
  Node n;
  n.op = Op::kMemRead;
  n.width = m.width;
  n.numOps = 1;
  n.ops[0] = addr.id();
  n.aux0 = memId;
  const NodeId id = addNode(n);
  m.readPorts.push_back(id);
  return Sig(this, id);
}

void Design::memWrite(std::uint32_t memId, Sig enable, Sig addr, Sig data) {
  assert(memId < mems_.size());
  MemInfo& m = mems_[memId];
  assert(!m.lowered);
  assert(enable.width() == 1 && addr.width() == m.addrBits && data.width() == m.width);
  m.writePorts.push_back({enable.id(), addr.id(), data.id()});
}

Sig Design::unary(Op op, Sig a) {
  assert(a.design() == this);
  Node n;
  n.op = op;
  n.numOps = 1;
  n.ops[0] = a.id();
  switch (op) {
    case Op::kNot:
    case Op::kNeg:
      n.width = a.width();
      break;
    case Op::kRedOr:
    case Op::kRedAnd:
    case Op::kRedXor:
      n.width = 1;
      break;
    default:
      assert(false && "not a unary op");
  }
  return Sig(this, hashCons(n));
}

Sig Design::binary(Op op, Sig a, Sig b) {
  assert(a.design() == this && b.design() == this);
  assert(a.width() == b.width() && "binary operands must have equal width");
  Node n;
  n.op = op;
  n.numOps = 2;
  // Canonical operand order for commutative ops improves sharing.
  if (isCommutative(op) && a.id() > b.id()) std::swap(a, b);
  n.ops[0] = a.id();
  n.ops[1] = b.id();
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kShl:
    case Op::kLshr:
    case Op::kAshr:
      n.width = a.width();
      break;
    case Op::kEq:
    case Op::kNe:
    case Op::kUlt:
    case Op::kUle:
    case Op::kSlt:
    case Op::kSle:
      n.width = 1;
      break;
    default:
      assert(false && "not a binary op");
  }
  return Sig(this, hashCons(n));
}

Sig Design::mux(Sig sel, Sig thenV, Sig elseV) {
  assert(sel.design() == this && thenV.design() == this && elseV.design() == this);
  assert(sel.width() == 1 && thenV.width() == elseV.width());
  Node n;
  n.op = Op::kMux;
  n.numOps = 3;
  n.ops[0] = sel.id();
  n.ops[1] = thenV.id();
  n.ops[2] = elseV.id();
  n.width = thenV.width();
  return Sig(this, hashCons(n));
}

Sig Design::extract(Sig a, unsigned hi, unsigned lo) {
  assert(a.design() == this && hi < a.width() && lo <= hi);
  if (lo == 0 && hi == a.width() - 1) return a;
  Node n;
  n.op = Op::kExtract;
  n.numOps = 1;
  n.ops[0] = a.id();
  n.aux0 = hi;
  n.aux1 = lo;
  n.width = hi - lo + 1;
  return Sig(this, hashCons(n));
}

Sig Design::concat(Sig high, Sig low) {
  assert(high.design() == this && low.design() == this);
  assert(high.width() + low.width() <= 64);
  Node n;
  n.op = Op::kConcat;
  n.numOps = 2;
  n.ops[0] = high.id();
  n.ops[1] = low.id();
  n.width = high.width() + low.width();
  return Sig(this, hashCons(n));
}

Sig Design::zext(Sig a, unsigned width) {
  assert(a.design() == this && width >= a.width() && width <= 64);
  if (width == a.width()) return a;
  Node n;
  n.op = Op::kZext;
  n.numOps = 1;
  n.ops[0] = a.id();
  n.width = width;
  return Sig(this, hashCons(n));
}

Sig Design::sext(Sig a, unsigned width) {
  assert(a.design() == this && width >= a.width() && width <= 64);
  if (width == a.width()) return a;
  Node n;
  n.op = Op::kSext;
  n.numOps = 1;
  n.ops[0] = a.id();
  n.width = width;
  return Sig(this, hashCons(n));
}

void Design::setName(Sig s, const std::string& name) { names_[s.id()] = name; }

std::string Design::nodeName(NodeId id) const {
  auto it = names_.find(id);
  if (it != names_.end()) return it->second;
  return "n" + std::to_string(id);
}

const BitVec& Design::constValue(NodeId id) const {
  assert(nodes_[id].op == Op::kConst);
  return constTable_[nodes_[id].aux0];
}

std::uint32_t Design::regIndexOf(NodeId id) const {
  auto it = regIndex_.find(id);
  assert(it != regIndex_.end());
  return it->second;
}

bool Design::isComplete(std::string* whyNot) const {
  for (const RegInfo& r : regs_) {
    if (r.next == kNoNode) {
      if (whyNot) *whyNot = "register '" + r.name + "' has no next-state function";
      return false;
    }
  }
  return true;
}

std::vector<NodeId> Design::topoOrder() const {
  // Iterative DFS over combinational dependencies. Register outputs,
  // inputs, constants and (unlowered) memory reads-through-state are
  // sources w.r.t. the clock boundary, but memory read *addresses* and
  // register *next* functions are combinational sinks that must be
  // scheduled.
  enum class Mark : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<Mark> mark(nodes_.size(), Mark::kWhite);
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  std::vector<std::pair<NodeId, int>> stack;

  auto visit = [&](NodeId root) {
    if (mark[root] != Mark::kWhite) return;
    stack.emplace_back(root, 0);
    mark[root] = Mark::kGrey;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const Node& n = nodes_[id];
      // kRegQ has no combinational operands (its `next` belongs to the
      // previous cycle); everything else depends on its listed operands.
      const int numDeps = (n.op == Op::kRegQ) ? 0 : n.numOps;
      if (next < numDeps) {
        const NodeId dep = n.ops[next++];
        if (mark[dep] == Mark::kWhite) {
          mark[dep] = Mark::kGrey;
          stack.emplace_back(dep, 0);
        } else if (mark[dep] == Mark::kGrey) {
          assert(false && "combinational cycle in design");
        }
      } else {
        mark[id] = Mark::kBlack;
        order.push_back(id);
        stack.pop_back();
      }
    }
  };

  for (NodeId id = 0; id < nodes_.size(); ++id) visit(id);
  return order;
}

void Design::lowerMemories() {
  for (std::uint32_t memId = 0; memId < mems_.size(); ++memId) {
    MemInfo& m = mems_[memId];
    if (m.lowered) continue;

    // One register per word.
    std::vector<Sig> words;
    words.reserve(m.depth);
    for (unsigned i = 0; i < m.depth; ++i) {
      Sig w = reg(m.width, m.name + "[" + std::to_string(i) + "]", BitVec(m.width, 0),
                  m.stateClass);
      m.wordRegs.push_back(regIndexOf(w.id()));
      words.push_back(w);
    }

    // Next-state: chain of write ports, later ports take priority.
    for (unsigned i = 0; i < m.depth; ++i) {
      Sig next = words[i];
      const Sig idx = constant(m.addrBits, i);
      for (const MemWritePort& p : m.writePorts) {
        const Sig hit = Sig(this, p.enable) & Sig(this, p.addr).eq(idx);
        next = mux(hit, Sig(this, p.data), next);
      }
      connect(words[i], next);
    }

    // Rewrite each read port into a balanced mux tree over the words and
    // alias the original node to it (kBuf keeps NodeIds stable).
    for (NodeId rp : m.readPorts) {
      const Sig addr(this, nodes_[rp].ops[0]);
      std::vector<Sig> layer = words;
      unsigned bit = 0;
      while (layer.size() > 1) {
        std::vector<Sig> nextLayer;
        for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
          nextLayer.push_back(mux(addr.bit(bit), layer[i + 1], layer[i]));
        }
        if (layer.size() % 2 == 1) nextLayer.push_back(layer.back());
        layer = std::move(nextLayer);
        ++bit;
      }
      nodes_[rp].op = Op::kBuf;
      nodes_[rp].numOps = 1;
      nodes_[rp].ops[0] = layer[0].id();
      nodes_[rp].aux0 = 0;
    }
    m.lowered = true;
  }
}

bool Design::memoriesLowered() const {
  for (const MemInfo& m : mems_) {
    if (!m.lowered) return false;
  }
  return true;
}

Design::Stats Design::stats() const {
  Stats s;
  s.nodes = nodes_.size();
  s.registers = regs_.size();
  for (const RegInfo& r : regs_) s.stateBits += nodes_[r.q].width;
  s.inputs = inputs_.size();
  for (NodeId i : inputs_) s.inputBits += nodes_[i].width;
  for (const MemInfo& m : mems_) {
    if (!m.lowered) {
      ++s.memories;
      s.memoryBits += static_cast<std::size_t>(m.depth) * m.width;
    }
  }
  std::vector<unsigned> depth(nodes_.size(), 0);
  for (NodeId n : topoOrder()) {
    const Node& nd = nodes_[n];
    if (nd.op == Op::kInput || nd.op == Op::kConst || nd.op == Op::kRegQ) continue;
    unsigned best = 0;
    for (unsigned i = 0; i < nd.numOps; ++i) best = std::max(best, depth[nd.ops[i]]);
    depth[n] = best + 1;
    s.depth = std::max(s.depth, depth[n]);
  }
  return s;
}

std::string Design::Stats::pretty() const {
  char buf[176];
  std::snprintf(buf, sizeof buf,
                "%zu nodes, %zu registers (%zu bits), %zu inputs (%zu bits), "
                "%zu memories (%zu bits), depth %u",
                nodes, registers, stateBits, inputs, inputBits, memories, memoryBits, depth);
  return buf;
}

std::string Design::dump() const {
  std::ostringstream os;
  os << "design " << name_ << " (" << nodes_.size() << " nodes, " << regs_.size()
     << " regs, " << mems_.size() << " mems)\n";
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    os << "  n" << id << " [" << n.width << "] = " << opName(n.op);
    if (n.op == Op::kConst) {
      os << " " << constTable_[n.aux0].toString();
    } else if (n.op == Op::kExtract) {
      os << " n" << n.ops[0] << " [" << n.aux0 << ":" << n.aux1 << "]";
    } else {
      for (int i = 0; i < n.numOps; ++i) os << " n" << n.ops[i];
    }
    auto it = names_.find(id);
    if (it != names_.end()) os << "  ; " << it->second;
    if (n.op == Op::kRegQ) {
      const RegInfo& r = regs_[regIndex_.at(id)];
      os << "  next=" << (r.next == kNoNode ? std::string("?") : "n" + std::to_string(r.next));
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace upec::rtl
