#include "rtl/reduce.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <map>
#include <optional>
#include <unordered_map>

#include "rtl/passes.hpp"

namespace upec::rtl {

namespace {

// Constant evaluation of one operator, mirroring sim/simulator.cpp exactly
// (the randomized differential test in rtl_reduce_test holds us to that).
BitVec evalNode(const Node& nd, const BitVec& a, const BitVec* b, const BitVec* c) {
  switch (nd.op) {
    case Op::kNot: return a.bnot();
    case Op::kNeg: return a.neg();
    case Op::kRedOr: return a.redOr();
    case Op::kRedAnd: return a.redAnd();
    case Op::kRedXor: return a.redXor();
    case Op::kAdd: return a.add(*b);
    case Op::kSub: return a.sub(*b);
    case Op::kMul: return a.mul(*b);
    case Op::kAnd: return a.band(*b);
    case Op::kOr: return a.bor(*b);
    case Op::kXor: return a.bxor(*b);
    case Op::kShl: return a.shl(*b);
    case Op::kLshr: return a.lshr(*b);
    case Op::kAshr: return a.ashr(*b);
    case Op::kEq: return a.eq(*b);
    case Op::kNe: return a.ne(*b);
    case Op::kUlt: return a.ult(*b);
    case Op::kUle: return a.ule(*b);
    case Op::kSlt: return a.slt(*b);
    case Op::kSle: return a.sle(*b);
    case Op::kMux: return a.toBool() ? *b : *c;
    case Op::kExtract: return a.extract(nd.aux0, nd.aux1);
    case Op::kConcat: return a.concat(*b);
    case Op::kZext: return a.zext(nd.width);
    case Op::kSext: return a.sext(nd.width);
    default: break;
  }
  assert(false && "evalNode: not a combinational operator");
  return BitVec();
}

// ---------------------------------------------------------------------------
// SweepPass: pure analysis — the PassManager's root-driven rebuild performs
// the actual cone-of-influence sweep. This pass consumes the read-only
// analyses to decide (and report) whether anything is about to drop.
class SweepPass final : public Pass {
 public:
  const char* name() const override { return "sweep"; }

  bool run(const PassContext& ctx, RewritePlan*) override {
    const Design& d = *ctx.design;
    std::vector<Sig> roots;
    roots.reserve(ctx.roots.size());
    Design* mut = const_cast<Design*>(&d);  // read-only analyses want Sigs
    for (NodeId r : ctx.roots) roots.push_back(Sig(mut, r));
    const ConeOfInfluence cone = coneOfInfluence(d, roots);
    // Dead logic (referenced by nothing at all) is a subset of what the
    // cone sweep removes, but it is worth distinguishing: a hash-consed
    // builder should produce none, and the rebuild must leave none behind.
    const std::size_t dead = deadNodes(d, roots).size();
    return dead > 0 || cone.numNodes < d.numNodes() ||
           cone.numRegisters < d.regs().size();
  }
};

// ---------------------------------------------------------------------------
// ConstantsPass: forward propagation + algebraic identities. Sequential
// constant detection (greatest fixpoint over "register r always holds its
// reset value") only under InitialStateModel::kReset — with a symbolic
// initial state a register's frame-0 value is unconstrained, so folding it
// would be unsound.
class ConstantsPass final : public Pass {
 public:
  const char* name() const override { return "constants"; }

  bool run(const PassContext& ctx, RewritePlan* plan) override {
    const Design& d = *ctx.design;
    const std::size_t numNodes = d.numNodes();
    const std::size_t numRegs = d.regs().size();
    const std::vector<NodeId> topo = d.topoOrder();

    // -- sequential constants (kReset only) -----------------------------
    std::vector<char> seqConst(numRegs, 0);
    if (ctx.initialState == InitialStateModel::kReset && numRegs > 0) {
      seqConst.assign(numRegs, 1);  // at reset, every register holds resetValue
      std::vector<std::optional<BitVec>> val(numNodes);
      bool dropped = true;
      while (dropped) {
        dropped = false;
        for (NodeId n : topo) {
          const Node& nd = d.node(n);
          val[n].reset();
          switch (nd.op) {
            case Op::kConst: val[n] = d.constValue(n); break;
            case Op::kInput: break;
            case Op::kRegQ: {
              const std::uint32_t r = d.regIndexOf(n);
              if (seqConst[r]) val[n] = d.regs()[r].resetValue;
              break;
            }
            case Op::kBuf: val[n] = val[nd.ops[0]]; break;
            default: {
              bool known = true;
              for (unsigned i = 0; i < nd.numOps; ++i) known = known && val[nd.ops[i]].has_value();
              if (known) {
                val[n] = evalNode(nd, *val[nd.ops[0]],
                                  nd.numOps > 1 ? &*val[nd.ops[1]] : nullptr,
                                  nd.numOps > 2 ? &*val[nd.ops[2]] : nullptr);
              }
              break;
            }
          }
        }
        for (std::uint32_t r = 0; r < numRegs; ++r) {
          if (!seqConst[r]) continue;
          const std::optional<BitVec>& next = val[d.regs()[r].next];
          if (!next || !(*next == d.regs()[r].resetValue)) {
            seqConst[r] = 0;
            dropped = true;
          }
        }
      }
    }

    // -- combinational folding sweep ------------------------------------
    std::vector<std::optional<BitVec>> value(numNodes);
    std::vector<NodeId> alias(numNodes);
    for (NodeId i = 0; i < numNodes; ++i) alias[i] = i;
    auto rep = [&](NodeId n) {
      while (alias[n] != n) n = alias[n];
      return n;
    };
    bool any = false;
    auto foldConst = [&](NodeId n, const BitVec& v) {
      value[n] = v;
      plan->replaceWithConst(n, v);
      any = true;
    };
    // Alias targets are always (representatives of) the node's operands,
    // so they precede it in topological order — applyPlan's contract.
    auto foldAlias = [&](NodeId n, NodeId to) {
      to = rep(to);
      alias[n] = to;
      value[n] = value[to];
      plan->replaceWith(n, to);
      any = true;
    };

    for (NodeId n : topo) {
      const Node& nd = d.node(n);
      switch (nd.op) {
        case Op::kConst: value[n] = d.constValue(n); continue;
        case Op::kInput: continue;
        case Op::kRegQ: {
          const std::uint32_t r = d.regIndexOf(n);
          if (seqConst[r]) foldConst(n, d.regs()[r].resetValue);
          continue;
        }
        case Op::kBuf:  // the rebuild collapses buffers; just track identity
          alias[n] = rep(nd.ops[0]);
          value[n] = value[alias[n]];
          continue;
        default: break;
      }
      const NodeId r0 = rep(nd.ops[0]);
      const NodeId r1 = nd.numOps > 1 ? rep(nd.ops[1]) : kNoNode;
      const NodeId r2 = nd.numOps > 2 ? rep(nd.ops[2]) : kNoNode;
      const std::optional<BitVec>& v0 = value[r0];
      const std::optional<BitVec> none;
      const std::optional<BitVec>& v1 = r1 != kNoNode ? value[r1] : none;
      const std::optional<BitVec>& v2 = r2 != kNoNode ? value[r2] : none;
      if (v0 && (nd.numOps < 2 || v1) && (nd.numOps < 3 || v2)) {
        foldConst(n, evalNode(nd, *v0, v1 ? &*v1 : nullptr, v2 ? &*v2 : nullptr));
        continue;
      }
      const std::uint64_t ones = BitVec::mask(nd.width);
      switch (nd.op) {
        case Op::kEq:
        case Op::kUle:
        case Op::kSle:
          if (r0 == r1) foldConst(n, BitVec(1, 1));
          break;
        case Op::kNe:
        case Op::kUlt:
        case Op::kSlt:
          if (r0 == r1) foldConst(n, BitVec(1, 0));
          break;
        case Op::kSub:
          if (r0 == r1) foldConst(n, BitVec(nd.width, 0));
          else if (v1 && v1->isZero()) foldAlias(n, r0);
          break;
        case Op::kXor:
          if (r0 == r1) foldConst(n, BitVec(nd.width, 0));
          else if (v0 && v0->isZero()) foldAlias(n, r1);
          else if (v1 && v1->isZero()) foldAlias(n, r0);
          break;
        case Op::kAnd:
          if (r0 == r1) foldAlias(n, r0);
          else if ((v0 && v0->isZero()) || (v1 && v1->isZero())) foldConst(n, BitVec(nd.width, 0));
          else if (v0 && v0->uint() == ones) foldAlias(n, r1);
          else if (v1 && v1->uint() == ones) foldAlias(n, r0);
          break;
        case Op::kOr:
          if (r0 == r1) foldAlias(n, r0);
          else if ((v0 && v0->uint() == ones) || (v1 && v1->uint() == ones)) {
            foldConst(n, BitVec(nd.width, ones));
          } else if (v0 && v0->isZero()) {
            foldAlias(n, r1);
          } else if (v1 && v1->isZero()) {
            foldAlias(n, r0);
          }
          break;
        case Op::kAdd:
          if (v0 && v0->isZero()) foldAlias(n, r1);
          else if (v1 && v1->isZero()) foldAlias(n, r0);
          break;
        case Op::kMul:
          if ((v0 && v0->isZero()) || (v1 && v1->isZero())) foldConst(n, BitVec(nd.width, 0));
          else if (v0 && v0->uint() == 1) foldAlias(n, r1);
          else if (v1 && v1->uint() == 1) foldAlias(n, r0);
          break;
        case Op::kShl:
        case Op::kLshr:
        case Op::kAshr:
          if (v1 && v1->isZero()) foldAlias(n, r0);
          break;
        case Op::kMux:
          if (v0) foldAlias(n, v0->toBool() ? r1 : r2);
          else if (r1 == r2) foldAlias(n, r1);
          break;
        default:
          break;
      }
    }
    return any;
  }
};

// ---------------------------------------------------------------------------
// HashingPass: register-correspondence reduction. Starting from pairs the
// caller guarantees equal at frame 0, refine: compute structural
// equivalence classes treating each surviving follower's output as its
// master's, then drop every pair whose next-state functions land in
// different classes. At the fixpoint the surviving relation is inductive
// (equal at 0, congruent step functions => equal forever), so each
// follower register is merged into its master; the rebuild's hash-consing
// then collapses the two instances' mirrored combinational cones.
class HashingPass final : public Pass {
 public:
  const char* name() const override { return "hashing"; }

  bool run(const PassContext& ctx, RewritePlan* plan) override {
    const Design& d = *ctx.design;
    if (ctx.equivSeeds.empty()) return false;
    const std::size_t numRegs = d.regs().size();

    std::vector<std::uint32_t> masterOf(numRegs, kNoReg);
    auto resolveMaster = [&](std::uint32_t r) {
      std::uint32_t cur = r;
      std::size_t hops = 0;
      while (masterOf[cur] != kNoReg) {
        cur = masterOf[cur];
        if (++hops > numRegs) return r;  // defensive: cycle degrades to self
      }
      return cur;
    };
    for (const RegEquivSeed& seed : ctx.equivSeeds) {
      if (seed.master == seed.follower || masterOf[seed.follower] != kNoReg) continue;
      const RegInfo& m = d.regs()[seed.master];
      const RegInfo& f = d.regs()[seed.follower];
      if (d.width(m.q) != d.width(f.q)) continue;
      // Under reset semantics frame-0 equality additionally requires equal
      // reset values; under kSymbolic the seeds carry the equality proof.
      if (ctx.initialState == InitialStateModel::kReset && !(m.resetValue == f.resetValue))
        continue;
      if (resolveMaster(seed.master) == seed.follower) continue;  // would cycle
      masterOf[seed.follower] = seed.master;
    }

    const std::vector<NodeId> topo = d.topoOrder();
    std::vector<std::uint32_t> classOf(d.numNodes(), 0);
    bool refined = true;
    while (refined) {
      refined = false;
      std::uint32_t nextClass = 0;
      std::vector<std::uint32_t> regClass(numRegs, 0xffffffffu);
      std::map<std::pair<unsigned, std::uint64_t>, std::uint32_t> constClass;
      std::map<std::array<std::uint32_t, 7>, std::uint32_t> opClass;
      for (NodeId n : topo) {
        const Node& nd = d.node(n);
        switch (nd.op) {
          case Op::kInput:
            classOf[n] = nextClass++;
            break;
          case Op::kConst: {
            const BitVec& v = d.constValue(n);
            auto [it, fresh] = constClass.try_emplace({v.width(), v.uint()}, nextClass);
            if (fresh) ++nextClass;
            classOf[n] = it->second;
            break;
          }
          case Op::kRegQ: {
            const std::uint32_t root = resolveMaster(d.regIndexOf(n));
            if (regClass[root] == 0xffffffffu) regClass[root] = nextClass++;
            classOf[n] = regClass[root];
            break;
          }
          case Op::kBuf:
            classOf[n] = classOf[nd.ops[0]];
            break;
          default: {
            std::array<std::uint32_t, 7> key{static_cast<std::uint32_t>(nd.op), nd.width,
                                             nd.aux0, nd.aux1, 0, 0, 0};
            for (unsigned i = 0; i < nd.numOps; ++i) key[4 + i] = classOf[nd.ops[i]] + 1;
            if (isCommutative(nd.op) && key[4] > key[5]) std::swap(key[4], key[5]);
            auto [it, fresh] = opClass.try_emplace(key, nextClass);
            if (fresh) ++nextClass;
            classOf[n] = it->second;
            break;
          }
        }
      }
      for (std::uint32_t f = 0; f < numRegs; ++f) {
        if (masterOf[f] == kNoReg) continue;
        const std::uint32_t m = resolveMaster(f);
        if (m == f || classOf[d.regs()[f].next] != classOf[d.regs()[m].next]) {
          masterOf[f] = kNoReg;
          refined = true;
        }
      }
    }

    bool any = false;
    for (std::uint32_t f = 0; f < numRegs; ++f) {
      if (masterOf[f] == kNoReg) continue;
      plan->mergeRegs(d, f, resolveMaster(f));
      any = true;
    }
    return any;
  }
};

}  // namespace

std::unique_ptr<Pass> makeSweepPass() { return std::make_unique<SweepPass>(); }
std::unique_ptr<Pass> makeConstantsPass() { return std::make_unique<ConstantsPass>(); }
std::unique_ptr<Pass> makeHashingPass() { return std::make_unique<HashingPass>(); }

ReductionResult reduce(const Design& design, std::span<const Sig> roots,
                       std::span<const RegEquivSeed> equivSeeds, const ReduceOptions& options) {
  PassManager pm;
  if (options.sweep) pm.add(makeSweepPass());
  if (options.constants) pm.add(makeConstantsPass());
  if (options.hashing) pm.add(makeHashingPass());
  return pm.run(design, roots, equivSeeds, options.initialState, std::max(options.maxRounds, 1u));
}

}  // namespace upec::rtl
