// Analysis passes over the RTL IR:
//  * cone of influence — which registers/inputs/memories can affect a set
//    of root signals (used to sanity-check that UPEC commitments outside
//    the secret's cone are trivially stable, and for design statistics);
//  * fanout/usage statistics and dead-node detection;
//  * combinational depth (longest gate path per node / per design).
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/ir.hpp"

namespace upec::rtl {

struct ConeOfInfluence {
  std::vector<bool> nodes;      // indexed by NodeId
  std::vector<bool> registers;  // indexed by register index
  std::vector<bool> memories;   // indexed by memory id
  std::size_t numNodes = 0;
  std::size_t numRegisters = 0;
  std::size_t numMemories = 0;
};

// Computes the transitive fan-in of `roots` across register and memory
// boundaries (a register's next-state function and every port of a read
// memory are followed).
ConeOfInfluence coneOfInfluence(const Design& design, std::span<const Sig> roots);

// Nodes unreachable from any register next-state function, memory port or
// the given roots (candidates for sweeping; the builder's hash-consing
// usually keeps this small).
std::vector<NodeId> deadNodes(const Design& design, std::span<const Sig> roots);

struct DepthInfo {
  std::vector<unsigned> depth;  // per node: longest combinational path to it
  unsigned maxDepth = 0;
  NodeId deepest = kNoNode;
};

// Longest combinational path (in operator counts) — registers, inputs and
// constants are depth 0.
DepthInfo combinationalDepth(const Design& design);

}  // namespace upec::rtl
