// The reduction pipeline run against the UPEC miter before encoding: the
// solver should pay for the secret's cone of influence, not for two full
// SoC copies.
//
// Three transform passes (see src/rtl/README.md for the per-pass soundness
// arguments):
//
//  * SweepPass — cone-of-influence sweep rooted at the proof obligations.
//    Records no rewrites; the PassManager rebuild *is* the sweep. It runs
//    the deadNodes/coneOfInfluence analyses to report what is about to go.
//  * ConstantsPass — forward constant propagation mirroring the simulator's
//    operator semantics, plus algebraic identities (x==x, x&x, mux with a
//    constant select, ...). Under InitialStateModel::kReset it additionally
//    finds sequential constants (registers that provably hold their reset
//    value forever) by greatest-fixpoint refinement; under kSymbolic the
//    initial state is unconstrained, so registers are never folded.
//  * HashingPass — register-correspondence reduction (van Eijk style)
//    exploiting the miter's two-instance symmetry: starting from the
//    caller-provided frame-0-equal seed pairs, it refines structural
//    equivalence classes until each surviving pair's next-state functions
//    are congruent, then merges each follower register into its master.
//    After the merge the rebuild's hash-consing collapses the mirrored
//    combinational cones, and the pairs' x==x equality obligations fold to
//    constant true on the next constants round.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "rtl/passmgr.hpp"

namespace upec::rtl {

struct ReduceOptions {
  bool sweep = true;
  bool constants = true;
  bool hashing = true;
  InitialStateModel initialState = InitialStateModel::kSymbolic;
  // Passes enable each other (merged registers create foldable x==x nodes,
  // folding kills select logic which strands registers for the sweep...),
  // so the pipeline iterates until a whole round changes nothing.
  unsigned maxRounds = 3;
};

std::unique_ptr<Pass> makeSweepPass();
std::unique_ptr<Pass> makeConstantsPass();
std::unique_ptr<Pass> makeHashingPass();

// Builds the pipeline selected by `options` and runs it to fixpoint (at
// most options.maxRounds rounds). roots must cover every signal the caller
// will resolve through the SigMap; equivSeeds are register pairs the caller
// assumes (or constructs) equal at frame 0.
ReductionResult reduce(const Design& design, std::span<const Sig> roots,
                       std::span<const RegEquivSeed> equivSeeds,
                       const ReduceOptions& options = {});

}  // namespace upec::rtl
