#include "rtl/passes.hpp"

#include <deque>

namespace upec::rtl {

ConeOfInfluence coneOfInfluence(const Design& design, std::span<const Sig> roots) {
  ConeOfInfluence coi;
  coi.nodes.assign(design.numNodes(), false);
  coi.registers.assign(design.regs().size(), false);
  coi.memories.assign(design.mems().size(), false);

  std::deque<NodeId> work;
  auto mark = [&](NodeId id) {
    if (!coi.nodes[id]) {
      coi.nodes[id] = true;
      work.push_back(id);
    }
  };
  for (Sig root : roots) mark(root.id());

  while (!work.empty()) {
    const NodeId id = work.front();
    work.pop_front();
    const Node& n = design.node(id);
    switch (n.op) {
      case Op::kRegQ: {
        const std::uint32_t idx = design.regIndexOf(id);
        if (!coi.registers[idx]) {
          coi.registers[idx] = true;
          const NodeId next = design.regs()[idx].next;
          if (next != kNoNode) mark(next);
        }
        break;
      }
      case Op::kMemRead: {
        mark(n.ops[0]);  // the address
        const std::uint32_t memId = n.aux0;
        if (!coi.memories[memId]) {
          coi.memories[memId] = true;
          for (const MemWritePort& p : design.mems()[memId].writePorts) {
            mark(p.enable);
            mark(p.addr);
            mark(p.data);
          }
        }
        break;
      }
      default:
        for (int i = 0; i < n.numOps; ++i) mark(n.ops[i]);
        break;
    }
  }
  for (bool b : coi.nodes) coi.numNodes += b;
  for (bool b : coi.registers) coi.numRegisters += b;
  for (bool b : coi.memories) coi.numMemories += b;
  return coi;
}

std::vector<NodeId> deadNodes(const Design& design, std::span<const Sig> roots) {
  std::vector<bool> live(design.numNodes(), false);
  std::deque<NodeId> work;
  auto mark = [&](NodeId id) {
    if (id != kNoNode && !live[id]) {
      live[id] = true;
      work.push_back(id);
    }
  };
  for (Sig root : roots) mark(root.id());
  for (const RegInfo& r : design.regs()) mark(r.next);
  for (const MemInfo& m : design.mems()) {
    for (const MemWritePort& p : m.writePorts) {
      mark(p.enable);
      mark(p.addr);
      mark(p.data);
    }
    for (NodeId rp : m.readPorts) mark(rp);
  }
  while (!work.empty()) {
    const NodeId id = work.front();
    work.pop_front();
    const Node& n = design.node(id);
    for (int i = 0; i < n.numOps; ++i) mark(n.ops[i]);
  }
  std::vector<NodeId> dead;
  for (NodeId id = 0; id < design.numNodes(); ++id) {
    if (!live[id]) dead.push_back(id);
  }
  return dead;
}

DepthInfo combinationalDepth(const Design& design) {
  DepthInfo info;
  info.depth.assign(design.numNodes(), 0);
  for (NodeId id : design.topoOrder()) {
    const Node& n = design.node(id);
    if (n.op == Op::kRegQ || n.op == Op::kInput || n.op == Op::kConst) continue;
    unsigned best = 0;
    for (int i = 0; i < n.numOps; ++i) best = std::max(best, info.depth[n.ops[i]]);
    info.depth[id] = best + 1;
    if (info.depth[id] > info.maxDepth) {
      info.maxDepth = info.depth[id];
      info.deepest = id;
    }
  }
  return info;
}

}  // namespace upec::rtl
