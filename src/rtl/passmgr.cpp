#include "rtl/passmgr.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <unordered_map>

#include "rtl/passes.hpp"

namespace upec::rtl {

namespace {

// A resolved replacement endpoint: either an original-design node that will
// be emitted, or a constant value materialized on demand.
struct Target {
  NodeId node = kNoNode;
  bool isConst = false;
  BitVec value;
};

bool isSource(Op op) {
  return op == Op::kInput || op == Op::kConst || op == Op::kRegQ;
}

class PlanResolver {
 public:
  PlanResolver(const RewritePlan& plan) {
    for (const auto& [n, by] : plan.nodeReplacements()) repl_[n] = by;
    for (const auto& [n, v] : plan.constReplacements()) consts_.emplace(n, v);
  }

  Target resolve(NodeId n) {
    std::vector<NodeId> path;
    NodeId cur = n;
    Target t;
    while (true) {
      if (auto m = memo_.find(cur); m != memo_.end()) {
        t = m->second;
        break;
      }
      if (auto c = consts_.find(cur); c != consts_.end()) {
        t = Target{kNoNode, true, c->second};
        break;
      }
      auto r = repl_.find(cur);
      if (r == repl_.end() || path.size() > repl_.size()) {
        assert(path.size() <= repl_.size() && "replacement cycle");
        t = Target{cur, false, BitVec()};
        break;
      }
      path.push_back(cur);
      cur = r->second;
    }
    for (NodeId p : path) memo_.emplace(p, t);
    memo_.emplace(n, t);
    return t;
  }

 private:
  std::unordered_map<NodeId, NodeId> repl_;
  std::unordered_map<NodeId, BitVec> consts_;
  std::unordered_map<NodeId, Target> memo_;
};

// Keeps a node's explicit name (setName / input names) if it has one;
// nodeName() falls back to "n<id>" for anonymous nodes, which we drop
// rather than freeze stale ids into the reduced design.
bool hasExplicitName(const Design& d, NodeId n, std::string* out) {
  std::string name = d.nodeName(n);
  if (name == "n" + std::to_string(n)) return false;
  *out = std::move(name);
  return true;
}

}  // namespace

ApplyResult applyPlan(const Design& d, const RewritePlan& plan,
                      std::span<const NodeId> roots) {
  assert(d.memoriesLowered() && "lower memories before running transform passes");
  const std::size_t numNodes = d.numNodes();
  PlanResolver resolver(plan);

  // --- liveness over the plan-resolved graph ---------------------------
  // A node is live iff it is reachable from a resolved root through
  // resolved operand edges, crossing the sequential boundary through the
  // next-state functions of live registers only (= cone of influence).
  std::vector<bool> live(numNodes, false);
  std::vector<bool> liveReg(d.regs().size(), false);
  std::vector<NodeId> stack;
  auto pushTarget = [&](NodeId n) {
    const Target t = resolver.resolve(n);
    if (!t.isConst && !live[t.node]) stack.push_back(t.node);
  };
  for (NodeId r : roots) pushTarget(r);
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (live[n]) continue;
    live[n] = true;
    const Node& nd = d.node(n);
    if (nd.op == Op::kRegQ) {
      const std::uint32_t r = d.regIndexOf(n);
      liveReg[r] = true;
      assert(d.regs()[r].next != kNoNode && "register without next-state function");
      pushTarget(d.regs()[r].next);
    } else {
      assert(nd.op != Op::kMemRead && "unlowered memory read in reduction input");
      for (unsigned i = 0; i < nd.numOps; ++i) pushTarget(nd.ops[i]);
    }
  }

  // --- re-emit the live cone through the construction API --------------
  ApplyResult out;
  out.design = std::make_unique<Design>(d.name());
  Design* nd = out.design.get();
  out.map = SigMap(numNodes);
  SigMap& map = out.map;

  auto mapped = [&](NodeId n) -> NodeId {
    const Target t = resolver.resolve(n);
    if (t.isConst) return nd->constant(t.value).id();
    assert(map[t.node] != kNoNode && "replacement target not emitted before use");
    return map[t.node];
  };
  auto sigOf = [&](NodeId n) { return Sig(nd, mapped(n)); };

  // Sources first, in original id order (preserves relative input and
  // register order for the survivors), because a replacement may target a
  // source that sits *after* the replaced node's users in the original
  // topological order (e.g. a follower register merged into its master).
  for (NodeId n = 0; n < numNodes; ++n) {
    if (!live[n]) continue;
    const Node& node = d.node(n);
    switch (node.op) {
      case Op::kInput:
        map.set(n, nd->input(node.width, d.nodeName(n)).id());
        break;
      case Op::kConst:
        map.set(n, nd->constant(d.constValue(n)).id());
        break;
      case Op::kRegQ: {
        const RegInfo& ri = d.regs()[d.regIndexOf(n)];
        map.set(n, nd->reg(node.width, ri.name, ri.resetValue, ri.stateClass).id());
        break;
      }
      default:
        break;
    }
  }
  // Combinational logic in topological order; hash-consing in the new
  // design dedups cones the plan made structurally identical. A node->node
  // replacement must target a source or a node preceding the replaced one
  // in topological order (all in-tree passes target sources or transitive
  // operands), so `mapped` always finds its target already emitted.
  for (NodeId n : d.topoOrder()) {
    if (!live[n]) continue;
    const Node& node = d.node(n);
    if (isSource(node.op)) continue;
    Sig s;
    switch (node.op) {
      case Op::kBuf:
        map.set(n, mapped(node.ops[0]));
        continue;
      case Op::kMux:
        s = nd->mux(sigOf(node.ops[0]), sigOf(node.ops[1]), sigOf(node.ops[2]));
        break;
      case Op::kExtract:
        s = nd->extract(sigOf(node.ops[0]), node.aux0, node.aux1);
        break;
      case Op::kConcat:
        s = nd->concat(sigOf(node.ops[0]), sigOf(node.ops[1]));
        break;
      case Op::kZext:
        s = nd->zext(sigOf(node.ops[0]), node.width);
        break;
      case Op::kSext:
        s = nd->sext(sigOf(node.ops[0]), node.width);
        break;
      default:
        s = node.numOps == 1 ? nd->unary(node.op, sigOf(node.ops[0]))
                             : nd->binary(node.op, sigOf(node.ops[0]), sigOf(node.ops[1]));
        break;
    }
    map.set(n, s.id());
    std::string name;
    if (hasExplicitName(d, n, &name)) nd->setName(s, name);
  }
  // Next-state functions of the surviving registers.
  for (std::uint32_t r = 0; r < d.regs().size(); ++r) {
    if (!liveReg[r]) continue;
    nd->connect(Sig(nd, map[d.regs()[r].q]), Sig(nd, mapped(d.regs()[r].next)));
  }

  // Roots must stay resolvable even when a pass proved them constant.
  for (NodeId r : roots) {
    if (map[r] != kNoNode) continue;
    const Target t = resolver.resolve(r);
    map.set(r, t.isConst ? nd->constant(t.value).id() : map[t.node]);
    assert(map[r] != kNoNode && "live root lost in rebuild");
  }
  // Replaced nodes inherit their target's mapping (merged followers point
  // at the master's reduced node). Non-root constant targets are *not*
  // materialized — a swept constant-folded register's value is recovered
  // from its reset value (the only value a sequential constant can hold).
  for (NodeId n = 0; n < numNodes; ++n) {
    if (map[n] != kNoNode) continue;
    const Target t = resolver.resolve(n);
    if (!t.isConst && t.node != n) map.set(n, map[t.node]);
  }
  return out;
}

ReductionResult PassManager::run(const Design& design, std::span<const Sig> roots,
                                 std::span<const RegEquivSeed> equivSeeds,
                                 InitialStateModel initialState, unsigned rounds) const {
  ReductionResult out;
  out.stats.nodesBefore = design.numNodes();
  out.stats.registersBefore = design.regs().size();

  std::vector<NodeId> origRoots;
  origRoots.reserve(roots.size());
  for (const Sig& s : roots) {
    assert(s.design() == &design && "root from a different design");
    origRoots.push_back(s.id());
  }

  const Design* cur = &design;
  std::unique_ptr<Design> owned;
  SigMap cumulative(design.numNodes());
  for (NodeId i = 0; i < design.numNodes(); ++i) cumulative.set(i, i);

  auto currentRoots = [&] {
    std::vector<NodeId> r;
    r.reserve(origRoots.size());
    for (NodeId id : origRoots) {
      const NodeId t = cumulative[id];
      assert(t != kNoNode && "root swept by an earlier pass");
      r.push_back(t);
    }
    return r;
  };
  auto currentSeeds = [&] {
    std::vector<RegEquivSeed> s;
    s.reserve(equivSeeds.size());
    for (const RegEquivSeed& seed : equivSeeds) {
      const NodeId m = cumulative[design.regs()[seed.master].q];
      const NodeId f = cumulative[design.regs()[seed.follower].q];
      if (m == kNoNode || f == kNoNode || m == f) continue;  // swept or already merged
      if (cur->node(m).op != Op::kRegQ || cur->node(f).op != Op::kRegQ) continue;
      s.push_back({cur->regIndexOf(m), cur->regIndexOf(f)});
    }
    return s;
  };

  for (unsigned round = 0; round < std::max(rounds, 1u); ++round) {
    bool changed = false;
    for (const std::unique_ptr<Pass>& pass : passes_) {
      const std::vector<NodeId> curRoots = currentRoots();
      const std::vector<RegEquivSeed> curSeeds = currentSeeds();
      PassContext ctx;
      ctx.design = cur;
      ctx.roots = curRoots;
      ctx.equivSeeds = curSeeds;
      ctx.initialState = initialState;
      RewritePlan plan;
      const bool passChanged = pass->run(ctx, &plan);

      PassStats ps;
      ps.pass = pass->name();
      ps.nodesBefore = cur->numNodes();
      ps.registersBefore = cur->regs().size();
      ps.constantsFolded = plan.numConstReplacements();
      ps.nodesRewritten = plan.numNodeReplacements();
      ps.registersMerged = plan.numRegsMerged();

      ApplyResult applied = applyPlan(*cur, plan, curRoots);
      ps.nodesAfter = applied.design->numNodes();
      ps.registersAfter = applied.design->regs().size();
      changed = changed || passChanged || !plan.empty() || ps.nodesAfter != ps.nodesBefore ||
                ps.registersAfter != ps.registersBefore;

      cumulative = cumulative.composedWith(applied.map);
      owned = std::move(applied.design);
      cur = owned.get();
      out.stats.registersMerged += ps.registersMerged;
      out.stats.constantsFolded += ps.constantsFolded;
      out.stats.passes.push_back(std::move(ps));
    }
    ++out.stats.rounds;
    if (!changed) break;
  }
  if (!owned) {  // no passes registered: a bare sweep still owns the result
    ApplyResult applied = applyPlan(design, RewritePlan(), currentRoots());
    cumulative = cumulative.composedWith(applied.map);
    owned = std::move(applied.design);
    cur = owned.get();
  }

  out.stats.nodesAfter = cur->numNodes();
  out.stats.registersAfter = cur->regs().size();
  out.map = std::move(cumulative);

  out.regMap.assign(design.regs().size(), kNoReg);
  for (std::uint32_t r = 0; r < design.regs().size(); ++r) {
    const NodeId t = out.map[design.regs()[r].q];
    if (t != kNoNode && cur->node(t).op == Op::kRegQ) out.regMap[r] = cur->regIndexOf(t);
  }
  std::unordered_map<NodeId, std::uint32_t> reducedInputIdx;
  for (std::uint32_t i = 0; i < cur->inputs().size(); ++i) reducedInputIdx[cur->inputs()[i]] = i;
  out.inputMap.assign(cur->inputs().size(), 0xffffffffu);
  for (std::uint32_t i = 0; i < design.inputs().size(); ++i) {
    const NodeId t = out.map[design.inputs()[i]];
    if (const auto it = reducedInputIdx.find(t); t != kNoNode && it != reducedInputIdx.end()) {
      out.inputMap[it->second] = i;
    }
  }

#ifndef NDEBUG
  // Rebuild post-condition: root-driven re-emission leaves nothing dead
  // (this is where the deadNodes analysis earns its keep as a checker).
  {
    Design* mut = const_cast<Design*>(cur);
    std::vector<Sig> reducedRoots;
    for (NodeId r : origRoots) reducedRoots.push_back(Sig(mut, out.map[r]));
    assert(deadNodes(*cur, reducedRoots).empty() && "reduced design has dead nodes");
  }
#endif

  out.design = std::move(owned);
  return out;
}

std::string ReductionStats::summary() const {
  auto pct = [](std::size_t before, std::size_t after) {
    return before == 0 ? 0.0 : 100.0 * static_cast<double>(before - after) / before;
  };
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "nodes %zu -> %zu (-%.1f%%), registers %zu -> %zu (-%.1f%%); "
                "%zu merged, %zu folded to constants, %u round%s",
                nodesBefore, nodesAfter, pct(nodesBefore, nodesAfter), registersBefore,
                registersAfter, pct(registersBefore, registersAfter), registersMerged,
                constantsFolded, rounds, rounds == 1 ? "" : "s");
  return buf;
}

}  // namespace upec::rtl
