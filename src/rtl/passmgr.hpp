// Transform-pass infrastructure over the RTL IR.
//
// Unlike rtl/passes.hpp (read-only analyses), this header defines passes
// that *rewrite* a Design. A pass never mutates the input netlist — it
// inspects it and records intent in a RewritePlan ("replace node A by node
// B", "replace node A by constant c", "merge register F into register M").
// The PassManager then applies the plan by rebuilding a fresh Design from
// the plan-resolved root cones, which has two structural consequences:
//
//  * every application is also a cone-of-influence sweep — logic (and
//    registers) unreachable from the roots through operand edges and live
//    next-state functions is simply never re-emitted; and
//  * the rebuilt design is re-hash-consed, so rewrites that make two cones
//    structurally identical (e.g. merging the miter's mirrored registers)
//    collapse them to one node for free.
//
// The rebuild produces a SigMap from original NodeIds to reduced NodeIds so
// callers (property translation, counterexample reporting) keep resolving
// original names: map[n] == kNoNode means n was swept; a kConst target
// means n was proven constant; merged registers map to their surviving
// master's kRegQ node.
//
// Soundness contract: roots must cover every signal the caller will ever
// reference in the reduced design, and equivSeeds lists register pairs the
// caller *assumes or constructs equal at frame 0* (the UPEC miter's aliased
// instance pairs) — the hashing pass may only merge registers drawn from
// that relation (see reduce.hpp for the per-pass arguments).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "base/bitvec.hpp"
#include "rtl/ir.hpp"

namespace upec::rtl {

inline constexpr std::uint32_t kNoReg = 0xffffffffu;

// Original-design NodeId -> reduced-design NodeId (kNoNode = swept).
class SigMap {
 public:
  SigMap() = default;
  explicit SigMap(std::size_t numOrigNodes) : map_(numOrigNodes, kNoNode) {}

  NodeId operator[](NodeId orig) const {
    return orig < map_.size() ? map_[orig] : kNoNode;
  }
  void set(NodeId orig, NodeId reduced) { map_[orig] = reduced; }
  std::size_t size() const { return map_.size(); }

  // Maps an original-design Sig into `reduced` (invalid Sig if swept).
  Sig map(Sig orig, Design* reduced) const {
    const NodeId t = (*this)[orig.id()];
    return t == kNoNode ? Sig() : Sig(reduced, t);
  }

  // this: A->B composed with `next`: B->C, giving A->C.
  SigMap composedWith(const SigMap& next) const {
    SigMap out(map_.size());
    for (std::size_t i = 0; i < map_.size(); ++i) {
      if (map_[i] != kNoNode) out.map_[i] = next[map_[i]];
    }
    return out;
  }

 private:
  std::vector<NodeId> map_;
};

// A register-correspondence seed: (master, follower) register indices the
// caller guarantees equal at frame 0. Passes may merge follower into master
// only after proving their next-state functions equivalent.
struct RegEquivSeed {
  std::uint32_t master = kNoReg;
  std::uint32_t follower = kNoReg;
};

// How registers behave at time 0. Decides which sequential optimisations
// are admissible: under kSymbolic (UPEC interval properties — frame-0 state
// is unconstrained) a register is never a provable constant; under kReset
// (simulator semantics) reset-seeded constant propagation across the
// sequential boundary is sound.
enum class InitialStateModel : std::uint8_t { kSymbolic, kReset };

// Read-only view a pass works against. roots/equivSeeds are expressed in
// the *current* design's node/register numbering (the PassManager remaps
// them between passes).
struct PassContext {
  const Design* design = nullptr;
  std::span<const NodeId> roots;
  std::span<const RegEquivSeed> equivSeeds;
  InitialStateModel initialState = InitialStateModel::kSymbolic;
};

// Rewrite intent recorded by a pass. Replacement chains (a->b, b->c) and
// transitive constant targets are resolved at application time.
class RewritePlan {
 public:
  void replaceWith(NodeId node, NodeId by) {
    if (node != by) nodeRepl_.emplace_back(node, by);
  }
  void replaceWithConst(NodeId node, BitVec value) {
    constRepl_.emplace_back(node, std::move(value));
  }
  // Redirect every use of `follower`'s output to `master`'s output. The
  // follower register itself disappears in the rebuild (nothing keeps its
  // next-state function alive unless it is shared logic).
  void mergeRegs(const Design& d, std::uint32_t follower, std::uint32_t master) {
    replaceWith(d.regs()[follower].q, d.regs()[master].q);
    ++regsMerged_;
  }

  bool empty() const { return nodeRepl_.empty() && constRepl_.empty(); }
  std::size_t numNodeReplacements() const { return nodeRepl_.size(); }
  std::size_t numConstReplacements() const { return constRepl_.size(); }
  std::size_t numRegsMerged() const { return regsMerged_; }

  const std::vector<std::pair<NodeId, NodeId>>& nodeReplacements() const { return nodeRepl_; }
  const std::vector<std::pair<NodeId, BitVec>>& constReplacements() const { return constRepl_; }

 private:
  std::vector<std::pair<NodeId, NodeId>> nodeRepl_;
  std::vector<std::pair<NodeId, BitVec>> constRepl_;
  std::size_t regsMerged_ = 0;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
  // Inspects ctx.design and records rewrites. Returns true if the pass
  // believes it changed something (the plan may still be empty for passes
  // whose whole effect is the implicit rebuild sweep).
  virtual bool run(const PassContext& ctx, RewritePlan* plan) = 0;
};

struct PassStats {
  std::string pass;
  std::size_t nodesBefore = 0, nodesAfter = 0;
  std::size_t registersBefore = 0, registersAfter = 0;
  std::size_t constantsFolded = 0;  // const replacements recorded
  std::size_t nodesRewritten = 0;   // node->node replacements (incl. merges)
  std::size_t registersMerged = 0;
};

struct ReductionStats {
  std::vector<PassStats> passes;
  std::size_t nodesBefore = 0, nodesAfter = 0;
  std::size_t registersBefore = 0, registersAfter = 0;
  std::size_t registersMerged = 0;
  std::size_t constantsFolded = 0;
  unsigned rounds = 0;
  std::string summary() const;  // "nodes 9411 -> 4207 (-55.3%), regs ..."
};

struct ReductionResult {
  std::unique_ptr<Design> design;  // unique_ptr: Sigs hold a stable Design*
  SigMap map;                      // original NodeId -> reduced NodeId
  // Original register index -> reduced register index. Merged followers
  // carry their master's reduced index; swept/constant-folded registers
  // carry kNoReg.
  std::vector<std::uint32_t> regMap;
  // Reduced input index -> original input index (original inputs outside
  // the live cone have no entry).
  std::vector<std::uint32_t> inputMap;
  ReductionStats stats;
};

// Runs the registered passes in order over `design`. The input design must
// have no unlowered memories (lowerMemories() first); the reduced design
// contains none at all. roots/equivSeeds are in the original numbering.
class PassManager {
 public:
  void add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }
  std::size_t numPasses() const { return passes_.size(); }

  // Runs every pass `rounds` times (stopping early once a whole round
  // changes nothing), then fills regMap/inputMap from the final SigMap.
  ReductionResult run(const Design& design, std::span<const Sig> roots,
                      std::span<const RegEquivSeed> equivSeeds,
                      InitialStateModel initialState = InitialStateModel::kSymbolic,
                      unsigned rounds = 1) const;

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

// Applies `plan` to `design` by rebuilding the cone of `roots`: resolves
// replacement chains, re-emits live logic through the Design construction
// API (re-hash-consing it), drops unreferenced registers/inputs and all
// (lowered) memory metadata, and returns the new design plus the SigMap.
// Exposed for tests; most callers go through PassManager::run.
struct ApplyResult {
  std::unique_ptr<Design> design;
  SigMap map;
};
ApplyResult applyPlan(const Design& design, const RewritePlan& plan,
                      std::span<const NodeId> roots);

}  // namespace upec::rtl
