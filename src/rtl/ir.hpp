// Word-level RTL intermediate representation.
//
// A Design is a flat netlist of typed nodes (inputs, constants, operators,
// register outputs, memory read ports). Sequential elements:
//
//  * Registers: created with reg(); their next-state function is attached
//    later with connect(). Each register carries a StateClass tag, which is
//    how the UPEC engine distinguishes architectural state (program-visible,
//    differences are L-alerts) from microarchitectural state (differences
//    are P-alerts) and memory state (excluded from the uniqueness
//    commitment, per Sec. V-B of the paper).
//  * Memories: word arrays with synchronous write ports and combinational
//    read ports. The formal engine requires memories to be lowered to
//    per-word registers + mux trees first (lowerMemories()); the simulator
//    can execute either form.
//
// Construction is ergonomic through the Sig value type which overloads the
// usual operators, so processor models read close to Verilog.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/bitvec.hpp"

namespace upec::rtl {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xffffffffu;

enum class Op : std::uint8_t {
  kInput,
  kConst,
  kRegQ,      // register output; next-state via Design::connect
  kMemRead,   // combinational read port; aux0 = memory id
  kBuf,       // identity (used when lowering rewrites nodes in place)
  // unary
  kNot,
  kNeg,
  kRedOr,
  kRedAnd,
  kRedXor,
  // binary
  kAdd,
  kSub,
  kMul,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLshr,
  kAshr,
  kEq,
  kNe,
  kUlt,
  kUle,
  kSlt,
  kSle,
  // structure
  kMux,       // ops: sel(1 bit), then-value, else-value
  kExtract,   // aux0 = hi, aux1 = lo
  kConcat,    // ops: high part, low part
  kZext,
  kSext,
};

const char* opName(Op op);
bool isCommutative(Op op);

// UPEC state classification (paper Definitions 1 and 2).
enum class StateClass : std::uint8_t {
  kArch,    // architectural: register file, PC, CSRs, privilege mode...
  kMicro,   // microarchitectural but program-invisible: pipeline buffers...
  kMemory,  // main-memory / cache-data contents (excluded from soc_state)
};

struct Node {
  Op op = Op::kBuf;
  std::uint8_t numOps = 0;
  unsigned width = 0;
  NodeId ops[3] = {kNoNode, kNoNode, kNoNode};
  std::uint32_t aux0 = 0;  // extract hi / const table index / memory id
  std::uint32_t aux1 = 0;  // extract lo
};

struct RegInfo {
  NodeId q = kNoNode;         // the kRegQ node
  NodeId next = kNoNode;      // next-state function (set by connect)
  BitVec resetValue;          // used by the simulator only; formal runs
                              // start from a symbolic (any) state
  StateClass stateClass = StateClass::kMicro;
  std::string name;
};

struct MemWritePort {
  NodeId enable = kNoNode;  // 1 bit
  NodeId addr = kNoNode;
  NodeId data = kNoNode;
};

struct MemInfo {
  unsigned depth = 0;      // number of words
  unsigned width = 0;      // word width
  unsigned addrBits = 0;
  StateClass stateClass = StateClass::kMemory;
  std::string name;
  std::vector<MemWritePort> writePorts;  // applied in order, later wins
  std::vector<NodeId> readPorts;         // the kMemRead nodes
  bool lowered = false;
  std::vector<std::uint32_t> wordRegs;   // register indices after lowering
};

class Design;

// Lightweight signal handle with operator sugar. All operands of a binary
// operator must come from the same Design.
class Sig {
 public:
  Sig() : design_(nullptr), id_(kNoNode) {}
  Sig(Design* d, NodeId id) : design_(d), id_(id) {}

  bool valid() const { return design_ != nullptr && id_ != kNoNode; }
  NodeId id() const { return id_; }
  Design* design() const { return design_; }
  unsigned width() const;

  Sig operator+(Sig o) const;
  Sig operator-(Sig o) const;
  Sig operator*(Sig o) const;
  Sig operator&(Sig o) const;
  Sig operator|(Sig o) const;
  Sig operator^(Sig o) const;
  Sig operator~() const;
  Sig operator<<(Sig o) const;  // logical shift left
  Sig operator>>(Sig o) const;  // logical shift right

  Sig eq(Sig o) const;
  Sig ne(Sig o) const;
  Sig ult(Sig o) const;
  Sig ule(Sig o) const;
  Sig slt(Sig o) const;
  Sig sle(Sig o) const;

  // Bits [hi:lo] inclusive.
  Sig extract(unsigned hi, unsigned lo) const;
  Sig bit(unsigned i) const { return extract(i, i); }
  Sig zext(unsigned w) const;
  Sig sext(unsigned w) const;
  Sig concat(Sig lowPart) const;  // this = high bits

  Sig redOr() const;
  Sig redAnd() const;
  Sig isZero() const;

 private:
  Design* design_;
  NodeId id_;
};

class Design {
 public:
  explicit Design(std::string name = "design") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- construction ----------------------------------------------------
  Sig input(unsigned width, const std::string& name);
  Sig constant(const BitVec& value);
  Sig constant(unsigned width, std::uint64_t value) { return constant(BitVec(width, value)); }
  Sig zero(unsigned width) { return constant(width, 0); }
  Sig one(unsigned width) { return constant(width, 1); }

  Sig reg(unsigned width, const std::string& name, BitVec resetValue,
          StateClass stateClass = StateClass::kMicro);
  Sig reg(unsigned width, const std::string& name, StateClass stateClass = StateClass::kMicro) {
    return reg(width, name, BitVec(width, 0), stateClass);
  }
  // Attaches the next-state function of a register created with reg().
  void connect(Sig regQ, Sig next);

  std::uint32_t addMem(unsigned depth, unsigned width, const std::string& name,
                       StateClass stateClass = StateClass::kMemory);
  Sig memRead(std::uint32_t memId, Sig addr);
  void memWrite(std::uint32_t memId, Sig enable, Sig addr, Sig data);

  Sig unary(Op op, Sig a);
  Sig binary(Op op, Sig a, Sig b);
  Sig mux(Sig sel, Sig thenV, Sig elseV);
  Sig extract(Sig a, unsigned hi, unsigned lo);
  Sig concat(Sig high, Sig low);
  Sig zext(Sig a, unsigned width);
  Sig sext(Sig a, unsigned width);

  // Names an existing node (for diagnostics / trace readability).
  void setName(Sig s, const std::string& name);
  std::string nodeName(NodeId id) const;

  // --- introspection ---------------------------------------------------
  const Node& node(NodeId id) const { return nodes_[id]; }
  std::size_t numNodes() const { return nodes_.size(); }
  unsigned width(NodeId id) const { return nodes_[id].width; }
  const BitVec& constValue(NodeId id) const;

  const std::vector<RegInfo>& regs() const { return regs_; }
  const std::vector<MemInfo>& mems() const { return mems_; }
  const std::vector<NodeId>& inputs() const { return inputs_; }
  // Register index for a kRegQ node (asserts if not a register output).
  std::uint32_t regIndexOf(NodeId id) const;

  // All next-state functions attached, no dangling operands.
  bool isComplete(std::string* whyNot = nullptr) const;

  // Combinational topological order over all nodes (register outputs,
  // inputs and constants are sources). Asserts on combinational cycles.
  std::vector<NodeId> topoOrder() const;

  // Replaces every memory with per-word registers and mux-tree read logic.
  // Required before bit-blasting. Idempotent.
  void lowerMemories();
  bool memoriesLowered() const;

  struct Stats {
    std::size_t nodes = 0;
    std::size_t registers = 0;
    std::size_t stateBits = 0;
    std::size_t inputs = 0;
    std::size_t inputBits = 0;
    std::size_t memories = 0;
    std::size_t memoryBits = 0;
    unsigned depth = 0;  // longest combinational path, in operator counts
    std::string pretty() const;  // one-line human-readable summary
  };
  Stats stats() const;

  std::string dump() const;  // human-readable netlist listing

 private:
  NodeId addNode(Node n);
  NodeId hashCons(const Node& n);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<BitVec> constTable_;
  std::vector<RegInfo> regs_;
  std::vector<MemInfo> mems_;
  std::vector<NodeId> inputs_;
  std::unordered_map<NodeId, std::uint32_t> regIndex_;
  std::unordered_map<NodeId, std::string> names_;
  std::unordered_map<std::uint64_t, std::vector<NodeId>> structuralHash_;
};

// Free-function sugar.
Sig mux(Sig sel, Sig thenV, Sig elseV);

}  // namespace upec::rtl
