#include "ift/taint_sim.hpp"

#include <cassert>

namespace upec::ift {

using rtl::Node;
using rtl::NodeId;
using rtl::Op;

TaintSim::TaintSim(const rtl::Design& design) : design_(design), values_(design) {
  topo_ = design.topoOrder();
  nodeTaint_.assign(design.numNodes(), false);
  regTaint_.assign(design.regs().size(), false);
  inputTaint_.assign(design.numNodes(), false);
  memTaint_.resize(design.mems().size());
  for (std::size_t m = 0; m < design.mems().size(); ++m) {
    memTaint_[m].assign(design.mems()[m].depth, false);
  }
}

void TaintSim::reset() {
  values_.reset();
  std::fill(nodeTaint_.begin(), nodeTaint_.end(), false);
  std::fill(regTaint_.begin(), regTaint_.end(), false);
  std::fill(inputTaint_.begin(), inputTaint_.end(), false);
  for (auto& m : memTaint_) std::fill(m.begin(), m.end(), false);
}

void TaintSim::poke(rtl::Sig input, const BitVec& value, bool tainted) {
  values_.poke(input, value);
  inputTaint_[input.id()] = tainted;
}

void TaintSim::taintMemWord(std::uint32_t memId, std::uint64_t addr) {
  assert(memId < memTaint_.size() && addr < memTaint_[memId].size());
  memTaint_[memId][addr] = true;
}

void TaintSim::taintReg(std::uint32_t regIdx) { regTaint_[regIdx] = true; }

bool TaintSim::memWordTainted(std::uint32_t memId, std::uint64_t addr) const {
  return memTaint_[memId][addr];
}

bool TaintSim::anyRegTainted(rtl::StateClass cls) const {
  for (std::size_t i = 0; i < regTaint_.size(); ++i) {
    if (regTaint_[i] && design_.regs()[i].stateClass == cls) return true;
  }
  return false;
}

std::vector<std::string> TaintSim::taintedRegNames(rtl::StateClass cls) const {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < regTaint_.size(); ++i) {
    if (regTaint_[i] && design_.regs()[i].stateClass == cls) {
      names.push_back(design_.regs()[i].name);
    }
  }
  return names;
}

void TaintSim::evalTaint() {
  values_.evalComb();
  for (NodeId id : topo_) {
    const Node& n = design_.node(id);
    bool t = false;
    switch (n.op) {
      case Op::kInput:
        t = inputTaint_[id];
        break;
      case Op::kConst:
        t = false;
        break;
      case Op::kRegQ:
        t = regTaint_[design_.regIndexOf(id)];
        break;
      case Op::kMemRead: {
        const bool addrTaint = nodeTaint_[n.ops[0]];
        if (addrTaint) {
          t = true;  // a tainted address selects data: the choice leaks
        } else {
          const std::uint64_t addr = values_.peek(n.ops[0]).uint();
          const auto& mem = memTaint_[n.aux0];
          t = addr < mem.size() ? mem[addr] : false;
        }
        break;
      }
      case Op::kMux: {
        const bool selTaint = nodeTaint_[n.ops[0]];
        if (selTaint) {
          t = true;  // implicit flow through the select
        } else {
          const bool sel = values_.peek(n.ops[0]).toBool();
          t = nodeTaint_[sel ? n.ops[1] : n.ops[2]];
        }
        break;
      }
      default:
        for (int i = 0; i < n.numOps; ++i) t = t || nodeTaint_[n.ops[i]];
        break;
    }
    nodeTaint_[id] = t;
  }
}

void TaintSim::step() {
  evalTaint();
  // Latch register taint.
  std::vector<bool> nextReg(regTaint_.size());
  for (std::size_t i = 0; i < design_.regs().size(); ++i) {
    nextReg[i] = nodeTaint_[design_.regs()[i].next];
  }
  // Memory write ports: a tainted address conservatively taints the whole
  // array (the footprint position itself encodes information).
  for (std::size_t m = 0; m < design_.mems().size(); ++m) {
    const rtl::MemInfo& info = design_.mems()[m];
    if (info.lowered) continue;
    for (const rtl::MemWritePort& p : info.writePorts) {
      if (!values_.peek(p.enable).toBool() && !nodeTaint_[p.enable]) continue;
      if (nodeTaint_[p.addr] || nodeTaint_[p.enable]) {
        std::fill(memTaint_[m].begin(), memTaint_[m].end(), true);
      } else if (values_.peek(p.enable).toBool()) {
        const std::uint64_t addr = values_.peek(p.addr).uint();
        if (addr < memTaint_[m].size()) memTaint_[m][addr] = nodeTaint_[p.data];
      }
    }
  }
  regTaint_ = std::move(nextReg);
  values_.step();
}

}  // namespace upec::ift
