// Structural taint-path analysis: the "taint property along a selected
// path" style of prior work (paper Sec. II, [24][25][26]). Given source
// state elements (where the secret may reside) and sink state elements
// (what the attacker observes), reports whether a structural propagation
// path exists in the netlist graph.
//
// Purely structural reachability over-approximates real flows (a path may
// be gated off in every reachable execution), and the sinks must be chosen
// by the verification engineer — both limitations UPEC removes.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/ir.hpp"

namespace upec::ift {

class PathTaint {
 public:
  explicit PathTaint(const rtl::Design& design);

  // Seeds: memory arrays / registers that may hold the secret.
  void addSourceMem(std::uint32_t memId);
  void addSourceReg(std::uint32_t regIdx);

  // Runs the fixpoint: propagates structural taint through combinational
  // logic, register boundaries and memory ports until stable.
  void propagate();

  bool regReachable(std::uint32_t regIdx) const { return regTaint_[regIdx]; }
  bool nodeReachable(rtl::Sig s) const { return nodeTaint_[s.id()]; }
  bool anyRegReachable(rtl::StateClass cls) const;
  std::vector<std::string> reachableRegNames(rtl::StateClass cls) const;

 private:
  bool evalOnce();  // one pass; returns true if anything changed

  const rtl::Design& design_;
  std::vector<rtl::NodeId> topo_;
  std::vector<bool> nodeTaint_;
  std::vector<bool> regTaint_;
  std::vector<bool> memTaint_;  // per memory (whole-array granularity)
};

}  // namespace upec::ift
