// Dynamic information-flow tracking (IFT) over the RTL IR — the baseline
// methodology UPEC is compared against (paper Sec. II: gate-level IFT,
// RTLIFT, taint properties).
//
// TaintSim executes the design cycle-accurately (a value simulation and a
// taint-label simulation in lockstep). Taint is word-level: one label per
// node / register / memory word. Propagation is the standard dataflow
// lattice: an operator's output is tainted iff any *selected* input is
// tainted; a mux with an untainted select propagates only the chosen
// branch's label, while a tainted select taints the output (information
// flows through the choice itself — this is what carries timing channels).
//
// Two characteristic weaknesses of the approach, which the benches
// demonstrate against UPEC:
//  * it is trace-based: a covert channel is only found if the stimulus
//    actually exercises it (UPEC searches all programs symbolically);
//  * the verdict depends on choosing the right sink (UPEC's uniqueness
//    property needs no sink specification).
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/ir.hpp"
#include "sim/simulator.hpp"

namespace upec::ift {

class TaintSim {
 public:
  explicit TaintSim(const rtl::Design& design);

  sim::Simulator& values() { return values_; }

  void reset();

  void poke(rtl::Sig input, const BitVec& value, bool tainted = false);
  void poke(rtl::Sig input, std::uint64_t value, bool tainted = false) {
    poke(input, BitVec(input.width(), value), tainted);
  }

  // Marks state as the taint source (e.g. the secret memory word).
  void taintMemWord(std::uint32_t memId, std::uint64_t addr);
  void taintReg(std::uint32_t regIdx);

  void step();
  void run(unsigned cycles) {
    for (unsigned i = 0; i < cycles; ++i) step();
  }

  // Taint queries (valid after the last step's combinational evaluation).
  bool nodeTainted(rtl::Sig s) const { return nodeTaint_[s.id()]; }
  bool regTainted(std::uint32_t regIdx) const { return regTaint_[regIdx]; }
  bool memWordTainted(std::uint32_t memId, std::uint64_t addr) const;
  // Any register of the given state class currently tainted?
  bool anyRegTainted(rtl::StateClass cls) const;
  std::vector<std::string> taintedRegNames(rtl::StateClass cls) const;

 private:
  void evalTaint();

  const rtl::Design& design_;
  sim::Simulator values_;
  std::vector<rtl::NodeId> topo_;
  std::vector<bool> nodeTaint_;
  std::vector<bool> regTaint_;
  std::vector<bool> inputTaint_;  // indexed by node id
  std::vector<std::vector<bool>> memTaint_;
};

}  // namespace upec::ift
