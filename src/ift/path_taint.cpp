#include "ift/path_taint.hpp"

#include <cassert>

namespace upec::ift {

using rtl::Node;
using rtl::NodeId;
using rtl::Op;

PathTaint::PathTaint(const rtl::Design& design) : design_(design) {
  topo_ = design.topoOrder();
  nodeTaint_.assign(design.numNodes(), false);
  regTaint_.assign(design.regs().size(), false);
  memTaint_.assign(design.mems().size(), false);
}

void PathTaint::addSourceMem(std::uint32_t memId) {
  assert(memId < memTaint_.size());
  memTaint_[memId] = true;
}

void PathTaint::addSourceReg(std::uint32_t regIdx) {
  assert(regIdx < regTaint_.size());
  regTaint_[regIdx] = true;
}

bool PathTaint::evalOnce() {
  bool changed = false;
  for (NodeId id : topo_) {
    const Node& n = design_.node(id);
    bool t = nodeTaint_[id];
    switch (n.op) {
      case Op::kInput:
      case Op::kConst:
        break;
      case Op::kRegQ:
        t = t || regTaint_[design_.regIndexOf(id)];
        break;
      case Op::kMemRead:
        t = t || memTaint_[n.aux0] || nodeTaint_[n.ops[0]];
        break;
      default:
        for (int i = 0; i < n.numOps; ++i) t = t || nodeTaint_[n.ops[i]];
        break;
    }
    if (t != nodeTaint_[id]) {
      nodeTaint_[id] = t;
      changed = true;
    }
  }
  for (std::size_t i = 0; i < design_.regs().size(); ++i) {
    if (!regTaint_[i] && nodeTaint_[design_.regs()[i].next]) {
      regTaint_[i] = true;
      changed = true;
    }
  }
  for (std::size_t m = 0; m < design_.mems().size(); ++m) {
    if (memTaint_[m]) continue;
    for (const rtl::MemWritePort& p : design_.mems()[m].writePorts) {
      if (nodeTaint_[p.data] || nodeTaint_[p.addr] || nodeTaint_[p.enable]) {
        memTaint_[m] = true;
        changed = true;
        break;
      }
    }
  }
  return changed;
}

void PathTaint::propagate() {
  while (evalOnce()) {
  }
}

bool PathTaint::anyRegReachable(rtl::StateClass cls) const {
  for (std::size_t i = 0; i < regTaint_.size(); ++i) {
    if (regTaint_[i] && design_.regs()[i].stateClass == cls) return true;
  }
  return false;
}

std::vector<std::string> PathTaint::reachableRegNames(rtl::StateClass cls) const {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < regTaint_.size(); ++i) {
    if (regTaint_[i] && design_.regs()[i].stateClass == cls) {
      names.push_back(design_.regs()[i].name);
    }
  }
  return names;
}

}  // namespace upec::ift
