// Structured tracing for the campaign engine: RAII spans, instant and
// counter events, recorded into lock-free per-thread buffers and exported
// as Chrome trace_event JSON (load trace.json in chrome://tracing or
// https://ui.perfetto.dev to see where a campaign's wall clock goes —
// encode vs solve vs steal-idle vs reschedule retries, per thread).
//
// Overhead contract (the standing bit-identical invariant depends on it):
//  * off by default — with no recorder installed, every instrumentation
//    site is one relaxed atomic load and a branch; no allocation, no
//    timestamp, no stores. Solver trajectories are untouched either way:
//    tracing only *reads* results, it never feeds back into a decision.
//  * enabled — an event costs two steady_clock reads plus a handful of
//    stores into a thread-private ring. The ring is SPSC by construction
//    (the instrumented thread produces; the recorder consumes only at
//    flush points): a full ring is flushed to the central store when the
//    central mutex is free, and *dropped* (counted, never blocking the
//    hot path) when it is not.
//
// Lifecycle: construct a TraceRecorder, start() it (installs it as the
// process-global recorder), run the workload, stop() it, writeFile(). At
// most one recorder is active at a time. stop() performs the final flush
// and therefore requires the instrumented threads to be quiescent — in
// campaign terms: call it after runCampaign() returned (the pool and all
// portfolio race threads are joined by then).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace upec::obs {

class TraceRecorder;

namespace detail {
extern std::atomic<TraceRecorder*> g_recorder;
}

// The fast-path gate every instrumentation site checks first.
inline bool tracingEnabled() {
  return detail::g_recorder.load(std::memory_order_relaxed) != nullptr;
}
inline TraceRecorder* tracer() {
  return detail::g_recorder.load(std::memory_order_acquire);
}

// Appends `s` to `out` with JSON string escaping (no surrounding quotes).
// Shared by the trace writer, the metrics registry and the NDJSON sink.
void appendJsonEscaped(std::string& out, const std::string& s);

struct TraceEvent {
  enum class Phase : std::uint8_t { kComplete, kInstant, kCounter };
  Phase phase = Phase::kComplete;
  const char* cat = "";   // static strings only (stored by pointer)
  const char* name = "";
  unsigned tid = 0;       // recorder-assigned small thread id
  std::uint64_t tsUs = 0;
  std::uint64_t durUs = 0;       // complete events only
  std::string args;              // pre-rendered JSON object body ("k":3,...)
};

class TraceRecorder {
 public:
  // bufferCapacity = events per thread-local ring before a flush (or, with
  // the central store contended, a counted drop) is forced.
  explicit TraceRecorder(std::size_t bufferCapacity = 16384);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Installs this recorder as the process-global one. Fails (returns
  // false) when another recorder is already active.
  bool start();
  // Uninstalls and performs the final flush. Instrumented threads must be
  // quiescent (joined) — see the header comment.
  void stop();
  bool active() const { return detail::g_recorder.load(std::memory_order_relaxed) == this; }

  // Hot path: append one event on the calling thread's ring. The event's
  // tid is stamped here.
  void record(TraceEvent&& e);

  // Events dropped because a ring was full while the central store was
  // contended (never blocks, by contract).
  std::uint64_t droppedEvents() const;
  // Events in the central store (complete only after stop()).
  std::size_t eventCount() const;

  // Chrome trace_event JSON: {"traceEvents":[...],...}. Call after stop().
  void writeJson(std::ostream& os) const;
  bool writeFile(const std::string& path) const;

 private:
  struct ThreadBuffer {
    unsigned tid = 0;
    std::vector<TraceEvent> ring;            // fixed capacity, producer-owned
    std::size_t size = 0;                    // producer-owned fill level
    std::atomic<std::uint64_t> drops{0};
  };

  ThreadBuffer& localBuffer();
  void flushBufferLocked(ThreadBuffer& b);  // requires centralMutex_

  const std::size_t capacity_;
  const std::uint64_t generation_;  // disambiguates recorders in the TLS cache

  mutable std::mutex centralMutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<TraceEvent> central_;
  unsigned nextTid_ = 0;
  bool stopped_ = false;

  friend class Span;
};

// RAII scope emitting one Chrome "complete" event covering its lifetime
// (or until end() is called). Construction with tracing disabled costs the
// one-branch fast path and nothing else; args must therefore be added
// behind enabled():
//
//   obs::Span span("engine", "job");
//   if (span.enabled()) span.arg("label", spec.label);
//   ... work ...
//   if (span.enabled()) span.arg("verdict", verdictName(v));
class Span {
 public:
  Span(const char* cat, const char* name);
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool enabled() const { return active_; }

  Span& arg(const char* key, const std::string& value);
  Span& arg(const char* key, const char* value);
  Span& arg(const char* key, std::uint64_t value);
  Span& arg(const char* key, unsigned value) { return arg(key, std::uint64_t{value}); }
  Span& arg(const char* key, bool value);

  // Finishes the span early (the destructor then does nothing).
  void end();

 private:
  bool active_;
  const char* cat_ = "";
  const char* name_ = "";
  std::uint64_t startUs_ = 0;
  std::string args_;
};

// One-off events; no-ops when tracing is disabled. `args` is a
// pre-rendered JSON object body (use Span for the convenient typed API, or
// appendJsonEscaped for string values).
void instant(const char* cat, const char* name, std::string args = {});
// Chrome counter event: plots `value` as series `series` under `name`.
void counter(const char* cat, const char* name, const char* series, std::uint64_t value);

}  // namespace upec::obs
