#include "obs/observer.hpp"

#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <string_view>

#include "base/log.hpp"
#include "base/stopwatch.hpp"
#include "obs/trace.hpp"  // appendJsonEscaped

namespace upec::obs {

// ------------------------------------------------------------ StreamEvent ---

StreamEvent& StreamEvent::str(const char* key, std::string value) {
  Field f;
  f.kind = Field::Kind::kString;
  f.key = key;
  f.s = std::move(value);
  fields_.push_back(std::move(f));
  return *this;
}

StreamEvent& StreamEvent::num(const char* key, std::uint64_t value) {
  Field f;
  f.kind = Field::Kind::kUInt;
  f.key = key;
  f.u = value;
  fields_.push_back(std::move(f));
  return *this;
}

StreamEvent& StreamEvent::real(const char* key, double value) {
  Field f;
  f.kind = Field::Kind::kReal;
  f.key = key;
  f.d = value;
  fields_.push_back(std::move(f));
  return *this;
}

StreamEvent& StreamEvent::flag(const char* key, bool value) {
  Field f;
  f.kind = Field::Kind::kBool;
  f.key = key;
  f.b = value;
  fields_.push_back(std::move(f));
  return *this;
}

const StreamEvent::Field* StreamEvent::find(const char* key, Field::Kind kind) const {
  for (const Field& f : fields_) {
    if (f.kind == kind && std::string_view(f.key) == key) return &f;
  }
  return nullptr;
}

const std::uint64_t* StreamEvent::findNum(const char* key) const {
  const Field* f = find(key, Field::Kind::kUInt);
  return f != nullptr ? &f->u : nullptr;
}

const double* StreamEvent::findReal(const char* key) const {
  const Field* f = find(key, Field::Kind::kReal);
  return f != nullptr ? &f->d : nullptr;
}

const std::string* StreamEvent::findStr(const char* key) const {
  const Field* f = find(key, Field::Kind::kString);
  return f != nullptr ? &f->s : nullptr;
}

const bool* StreamEvent::findFlag(const char* key) const {
  const Field* f = find(key, Field::Kind::kBool);
  return f != nullptr ? &f->b : nullptr;
}

std::string StreamEvent::toJson(std::uint64_t tsUs) const {
  std::string out = "{\"type\":\"";
  appendJsonEscaped(out, type_);
  out += '"';
  if (tsUs != 0) {
    out += ",\"ts_us\":";
    out += std::to_string(tsUs);
  }
  for (const Field& f : fields_) {
    out += ",\"";
    out += f.key;
    out += "\":";
    switch (f.kind) {
      case Field::Kind::kString:
        out += '"';
        appendJsonEscaped(out, f.s);
        out += '"';
        break;
      case Field::Kind::kUInt:
        out += std::to_string(f.u);
        break;
      case Field::Kind::kReal: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", f.d);
        out += buf;
        break;
      }
      case Field::Kind::kBool:
        out += f.b ? "true" : "false";
        break;
    }
  }
  out += '}';
  return out;
}

// ------------------------------------------------------------ NdjsonWriter ---

NdjsonWriter::NdjsonWriter(const std::string& path, Mode mode, bool syncEveryLine)
    : file_(std::fopen(path.c_str(), mode == Mode::kAppend ? "a" : "w")),
      owns_(true),
      sync_(syncEveryLine) {}

NdjsonWriter::NdjsonWriter(std::FILE* file, bool ownsFile)
    : file_(file), owns_(ownsFile) {}

NdjsonWriter::~NdjsonWriter() {
  if (file_ != nullptr && owns_) std::fclose(file_);
}

std::uint64_t NdjsonWriter::linesWritten() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

void NdjsonWriter::onEvent(const StreamEvent& event) {
  writeLine(event.toJson(Stopwatch::sinceEpochUs()));
}

bool NdjsonWriter::writeLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return false;
  const bool wrote = std::fwrite(line.data(), 1, line.size(), file_) == line.size() &&
                     std::fputc('\n', file_) == '\n';
  std::fflush(file_);  // a tail -f must see the line as soon as it happens
  if (sync_) ::fsync(::fileno(file_));
  if (wrote) ++lines_;
  return wrote;
}

// ---------------------------------------------------- durability helpers ---

bool writeFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  std::fflush(f);
  ::fsync(::fileno(f));
  std::fclose(f);
  if (!wrote || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool readNdjsonLines(const std::string& path, std::vector<std::string>& lines,
                     bool* partialTailSkipped) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  lines.clear();
  std::string current;
  bool terminated = true;
  for (int c = std::fgetc(f); c != EOF; c = std::fgetc(f)) {
    if (c == '\n') {
      if (!current.empty()) lines.push_back(std::move(current));
      current.clear();
      terminated = true;
    } else {
      current.push_back(static_cast<char>(c));
      terminated = false;
    }
  }
  std::fclose(f);
  // An unterminated tail is a half-written line from a process killed
  // mid-write: drop it so the caller parses only completed records.
  if (partialTailSkipped != nullptr) *partialTailSkipped = !terminated;
  return true;
}

// ------------------------------------------------------- log event routing ---

namespace {
const char* levelName(LogLevel level) {
  return level == LogLevel::kDebug ? "debug" : "info";
}
// Syslog severity numbers (RFC 5424), so downstream filters can use the
// standard "<= threshold" convention: info = 6, debug = 7.
std::uint64_t levelSeverity(LogLevel level) {
  return level == LogLevel::kDebug ? 7 : 6;
}
}  // namespace

void routeLogToObserver(CampaignObserver* observer) {
  if (observer == nullptr) {
    setLogSink(nullptr);
    return;
  }
  setLogSink([observer](LogLevel level, const std::string& msg) {
    StreamEvent e("log");
    e.str("level", levelName(level)).num("severity", levelSeverity(level)).str("msg", msg);
    observer->onEvent(e);
  });
}

}  // namespace upec::obs
