// Named metrics for the campaign engine: atomic counters, gauges and
// power-of-two-bucket histograms, registered once by name and updated
// lock-free from any thread. The registry folds into CampaignReport JSON
// under a "metrics" block and dumps standalone (metrics.json) — the
// per-section numbers every perf item (inprocessing, encoding cache,
// reduction passes) needs in order to be measurable at all.
//
// Gating: collection is off by default (metricsEnabled() is one relaxed
// atomic load). Instrumentation sites guard their updates:
//
//   if (obs::metricsEnabled())
//     obs::metrics().counter("governor.wait_us").add(waited);
//
// An update on a registered handle is a relaxed fetch_add; the by-name
// lookup takes the registry mutex, which is fine at the granularity the
// engine meters (per solve / per drain / per acquire — milliseconds of
// work each), and call sites on genuinely hot paths cache the handle.
// Like tracing, metrics only observe: enabling them never changes a
// solver trajectory.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace upec::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Exponential histogram: bucket i counts observations in [2^(i-1), 2^i)
// (bucket 0 counts zeros), so 64 buckets cover the full uint64 range with
// one CLZ per observation. Tracks count/sum/min/max exactly.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void observe(std::uint64_t v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const;  // 0 when empty
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }
  // Upper bound of bucket i (inclusive label for the JSON "le" keys).
  static std::uint64_t bucketBound(int i);
  // Approximate quantile (0 < q < 1): walk the cumulative bucket counts to
  // the target rank, interpolate linearly inside the winning bucket and
  // clamp to the exact [min, max] — so single-valued histograms report the
  // value itself. 0 when empty.
  std::uint64_t quantile(double q) const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  // By-name lookup, registering on first use. References stay valid for
  // the registry's lifetime (instruments are heap-allocated, never moved).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // {"counters":{...},"gauges":{...},"histograms":{...}} — names sorted,
  // histogram buckets keyed by their inclusive upper bound, zero buckets
  // omitted. Histograms carry count/sum/min/max plus approximate p50/p90
  // so report consumers stop re-deriving quantiles from the raw buckets.
  std::string toJson() const;

  // Prometheus text exposition format (text/plain; version=0.0.4):
  // counters and gauges as single samples, histograms as cumulative
  // le-labelled buckets plus _sum and _count. Metric names are the JSON
  // names prefixed "upec_" with every non-[a-zA-Z0-9_] character mapped to
  // '_' ("campaign.solve_us.k1" -> "upec_campaign_solve_us_k1"). This is
  // what obs::StatusServer serves at /metrics.
  std::string toPrometheus() const;

  // Drops every instrument (benches and tests isolate sections with this).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// The process-global registry and its collection gate.
MetricsRegistry& metrics();
bool metricsEnabled();
void setMetricsEnabled(bool enabled);

}  // namespace upec::obs
