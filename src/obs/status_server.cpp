#include "obs/status_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "base/log.hpp"
#include "obs/metrics.hpp"

namespace upec::obs {

namespace {

// Writes the whole buffer, riding out short writes. Best-effort: a client
// that hangs up mid-response just loses the rest. MSG_NOSIGNAL keeps a
// disconnected peer from raising SIGPIPE (whose default action would kill
// the whole campaign — the process installs no handler); we see EPIPE and
// drop the rest instead.
void writeAll(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

// Bounds every read/write on a client socket so a stalled peer cannot wedge
// the (single) serve thread — and with it StatusServer::stop() — forever.
void setSocketTimeouts(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

std::string httpResponse(int code, const char* reason, const char* contentType,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + ' ' + reason + "\r\n";
  out += "Content-Type: ";
  out += contentType;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// First request line -> path ("GET /status HTTP/1.1" -> "/status").
// Anything that is not a well-formed GET yields an empty path (-> 400).
std::string requestPath(const std::string& request) {
  if (request.rfind("GET ", 0) != 0) return {};
  const std::size_t start = 4;
  const std::size_t end = request.find(' ', start);
  if (end == std::string::npos) return {};
  return request.substr(start, end - start);
}

}  // namespace

StatusServer::~StatusServer() { stop(); }

bool StatusServer::start(StatusServerOptions options) {
  if (running_.load(std::memory_order_acquire)) return false;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // introspection is local-only
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;  // port in use (or exotic failure): degrade, don't die
  }
  // Recover the ephemeral choice when port 0 was requested.
  sockaddr_in bound{};
  socklen_t boundLen = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &boundLen) != 0) {
    ::close(fd);
    return false;
  }

  options_ = std::move(options);
  listenFd_ = fd;
  port_ = ntohs(bound.sin_port);
  stopRequested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serveLoop(); });
  return true;
}

void StatusServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopRequested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  port_ = 0;
  running_.store(false, std::memory_order_release);
}

void StatusServer::serveLoop() {
  // accept with a poll() tick instead of a bare blocking accept: waking a
  // thread parked in accept() portably is messier than a 100 ms poll, and
  // a scrape endpoint does not need lower shutdown latency than that.
  while (!stopRequested_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listenFd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;  // timeout tick (or EINTR): re-check stop flag
    const int client = ::accept(listenFd_, nullptr, nullptr);
    if (client < 0) continue;
    setSocketTimeouts(client, 2);  // a silent client is a bad request, not a hang
    handleConnection(client);
    ::close(client);
  }
}

void StatusServer::handleConnection(int fd) {
  // We only care about the GET line, and every client we serve (curl,
  // httpGet, prometheus) sends the full header in the first segments.
  // 8 KiB caps rogue clients by size; SO_RCVTIMEO caps them by time —
  // a timed-out read falls through to the 400 path below.
  std::string request;
  char buf[2048];
  while (request.size() < 8192 && request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  const std::string path = requestPath(request);
  std::string response;
  if (path.empty()) {
    response = httpResponse(400, "Bad Request", "text/plain", "bad request\n");
  } else if (path == "/metrics") {
    response = httpResponse(200, "OK", "text/plain; version=0.0.4",
                            metrics().toPrometheus());
  } else if (path == "/status" && options_.status) {
    response = httpResponse(200, "OK", "application/json", options_.status());
  } else if (path == "/events" && options_.events) {
    response = httpResponse(200, "OK", "application/x-ndjson", options_.events());
  } else {
    response = httpResponse(404, "Not Found", "text/plain",
                            "unknown endpoint; try /metrics /status /events\n");
  }
  writeAll(fd, response.data(), response.size());
}

bool httpGet(std::uint16_t port, const std::string& path, std::string& body,
             int* statusCode) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  setSocketTimeouts(fd, 2);
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  writeAll(fd, request.data(), request.size());

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 200 OK\r\n...headers...\r\n\r\nbody"
  const std::size_t statusStart = response.find(' ');
  const std::size_t headerEnd = response.find("\r\n\r\n");
  if (statusStart == std::string::npos || headerEnd == std::string::npos) return false;
  if (statusCode != nullptr) *statusCode = std::atoi(response.c_str() + statusStart + 1);
  body = response.substr(headerEnd + 4);
  return true;
}

}  // namespace upec::obs
