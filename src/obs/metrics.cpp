#include "obs/metrics.hpp"

#include <bit>
#include <sstream>

#include "obs/trace.hpp"  // appendJsonEscaped

namespace upec::obs {

namespace {
std::atomic<bool> g_metricsEnabled{false};
}

bool metricsEnabled() { return g_metricsEnabled.load(std::memory_order_relaxed); }
void setMetricsEnabled(bool enabled) {
  g_metricsEnabled.store(enabled, std::memory_order_relaxed);
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

// ------------------------------------------------------------- Histogram ---

void Histogram::observe(std::uint64_t v) {
  const int b = v == 0 ? 0 : std::bit_width(v);  // [2^(b-1), 2^b) -> bucket b
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~0ull ? 0 : m;
}

std::uint64_t Histogram::bucketBound(int i) {
  if (i == 0) return 0;
  if (i >= 64) return ~0ull;
  return (1ull << i) - 1;  // bucket i holds [2^(i-1), 2^i): inclusive bound 2^i - 1
}

std::uint64_t Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  // Smallest rank (1-based) whose cumulative count reaches q*n.
  const double target = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t inBucket = bucket(b);
    if (inBucket == 0) continue;
    if (static_cast<double>(cum) + static_cast<double>(inBucket) >= target) {
      // Interpolate inside [2^(b-1), 2^b), clamped to the exact observed
      // range so degenerate histograms answer exactly.
      std::uint64_t lo = b == 0 ? 0 : (b >= 64 ? (1ull << 63) : (1ull << (b - 1)));
      std::uint64_t hi = bucketBound(b);
      lo = std::max(lo, min());
      hi = std::min(hi, max());
      if (hi <= lo) return lo;
      double frac = (target - static_cast<double>(cum)) / static_cast<double>(inBucket);
      if (frac < 0.0) frac = 0.0;
      if (frac > 1.0) frac = 1.0;
      return lo + static_cast<std::uint64_t>(frac * static_cast<double>(hi - lo));
    }
    cum += inBucket;
  }
  return max();
}

// -------------------------------------------------------- MetricsRegistry ---

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  auto key = [&os](const std::string& name) {
    std::string escaped;
    appendJsonEscaped(escaped, name);
    os << '"' << escaped << "\":";
  };
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    key(name);
    os << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    key(name);
    os << g->value();
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    key(name);
    os << "{\"count\":" << h->count() << ",\"sum\":" << h->sum()
       << ",\"min\":" << h->min() << ",\"max\":" << h->max()
       << ",\"p50\":" << h->quantile(0.5) << ",\"p90\":" << h->quantile(0.9)
       << ",\"buckets\":{";
    bool firstBucket = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n == 0) continue;
      if (!firstBucket) os << ',';
      firstBucket = false;
      os << '"' << Histogram::bucketBound(b) << "\":" << n;
    }
    os << "}}";
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::toPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  const auto promName = [](const std::string& name) {
    std::string out = "upec_";
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      out += ok ? c : '_';
    }
    return out;
  };
  for (const auto& [name, c] : counters_) {
    const std::string n = promName(name);
    os << "# TYPE " << n << " counter\n" << n << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = promName(name);
    os << "# TYPE " << n << " gauge\n" << n << ' ' << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = promName(name);
    os << "# TYPE " << n << " histogram\n";
    // Cumulative le-buckets; empty buckets are elided (the series stays
    // valid — each emitted le carries the full cumulative count so far)
    // and the top bucket folds into +Inf.
    std::uint64_t cum = 0;
    for (int b = 0; b < Histogram::kBuckets - 1; ++b) {
      const std::uint64_t inBucket = h->bucket(b);
      if (inBucket == 0) continue;
      cum += inBucket;
      os << n << "_bucket{le=\"" << Histogram::bucketBound(b) << "\"} " << cum << '\n';
    }
    os << n << "_bucket{le=\"+Inf\"} " << h->count() << '\n'
       << n << "_sum " << h->sum() << '\n'
       << n << "_count " << h->count() << '\n';
  }
  return os.str();
}

}  // namespace upec::obs
