// Live campaign introspection over HTTP: a dependency-free blocking-socket
// endpoint a running campaign opens on 127.0.0.1 (opt-in via
// CampaignOptions::statusPort / campaign_sweep --status-port) so the
// interesting state of a long sweep — ladder position per job,
// conflict-budget burn, whether shared clauses help — is scrapeable *while
// it runs* instead of invisible until the report JSON lands.
//
// Endpoints:
//   /metrics  Prometheus text exposition format (text/plain; version=0.0.4)
//             rendered from the global obs::MetricsRegistry — counters and
//             gauges as single samples, histograms as cumulative le-buckets
//             plus _sum/_count (MetricsRegistry::toPrometheus).
//   /status   application/json campaign progress snapshot, produced by the
//             `status` provider (engine::ProgressTracker::statusJson —
//             windows decided/total per job, current ladder rung,
//             reschedule + ConflictLedger utilization, replay counts, ETA).
//   /events   application/x-ndjson bounded tail of the campaign's event
//             stream, produced by the `events` provider.
//
// Design constraints, in order: zero new dependencies (raw POSIX sockets,
// one background thread, blocking I/O with a poll() tick so stop() is
// prompt); never touch solver threads (all bodies come from providers that
// read observer-fed aggregates or the lock-free metrics registry); degrade
// gracefully (a taken port logs and disables the server — the campaign
// itself must never fail because its observability could not bind).
//
// The server binds 127.0.0.1 only: this is an introspection socket, not a
// service interface — remote scraping goes through a forwarder by choice.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace upec::obs {

struct StatusServerOptions {
  // 0 = bind an ephemeral port (the choice is reported by port() — handy
  // for tests and parallel campaigns); otherwise the fixed port to bind.
  std::uint16_t port = 0;
  // Body providers, invoked on the server thread once per request. A null
  // provider turns its endpoint into a 404. /metrics needs no provider —
  // it always renders the global registry.
  std::function<std::string()> status;  // /status body (application/json)
  std::function<std::string()> events;  // /events body (application/x-ndjson)
};

class StatusServer {
 public:
  StatusServer() = default;
  ~StatusServer();  // stop()s
  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  // Binds 127.0.0.1:<port>, starts the accept thread. Returns false —
  // with the server disabled and no thread running — when the port is in
  // use or any socket call fails; the caller logs and proceeds without
  // introspection. Calling start() on a running server is an error (false).
  bool start(StatusServerOptions options);

  // Stops accepting, joins the server thread. Idempotent; the destructor
  // calls it. In-flight requests finish first (they are bounded: one
  // request per connection, Connection: close).
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port while running (the ephemeral choice when options.port
  // was 0); 0 when not running.
  std::uint16_t port() const { return port_; }
  std::uint64_t requestsServed() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serveLoop();
  void handleConnection(int fd);

  StatusServerOptions options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopRequested_{false};
  std::atomic<std::uint64_t> requests_{0};
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
};

// Minimal blocking HTTP/1.1 GET against 127.0.0.1:<port>: one request, one
// response, Connection: close. Returns false on connect/IO failure (e.g.
// the campaign already ended); on success fills `body` and, when non-null,
// `statusCode`. This is the client half the terminal watcher
// (examples/campaign_top.cpp) and the tests poll the server with.
bool httpGet(std::uint16_t port, const std::string& path, std::string& body,
             int* statusCode = nullptr);

}  // namespace upec::obs
