// Live campaign event streaming: the observer seam the engine reports
// into while a campaign runs, plus the NDJSON sink that turns it into a
// tailable file — one JSON line per window verdict, job completion and
// reschedule escalation, written (and flushed) as it happens. A long sweep
// becomes observable mid-run instead of silent until the terminal report,
// and the stream is the incremental-results seam the campaign-as-a-service
// direction builds on (a daemon forwards these lines; a resume can replay
// them).
//
// Layering: events are flat typed key/value records, so obs stays below
// the engine — the engine knows what a "window" is and builds the event;
// this file only transports and serialises it. The guaranteed line
// grammar (every event type, and the field names the CI validator and
// tests key on) is documented once, in src/engine/README.md under
// "On-disk schemas", next to the checkpoint-journal schema it shares
// verdict tuples with.
//
// Observer callbacks fire from whichever pool worker produced the result;
// implementations must be thread-safe (NdjsonWriter serialises under one
// mutex). Callbacks run on the campaign's critical path — keep them quick.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace upec::obs {

// One streamed event: a type tag plus flat typed fields, appended in
// order. Built by the engine, serialised by the sink.
class StreamEvent {
 public:
  explicit StreamEvent(const char* type) : type_(type) {}

  StreamEvent& str(const char* key, std::string value);
  StreamEvent& num(const char* key, std::uint64_t value);
  StreamEvent& real(const char* key, double value);
  StreamEvent& flag(const char* key, bool value);

  const char* type() const { return type_; }
  // Serialises as one JSON object (no trailing newline). `tsUs`, when
  // non-zero, is emitted as "ts_us" right after "type".
  std::string toJson(std::uint64_t tsUs = 0) const;

  // Typed field lookup (null when absent or of another kind) — for
  // observers that aggregate events (engine::ProgressTracker) instead of
  // serialising them. Pointers are valid for the event's lifetime only.
  const std::uint64_t* findNum(const char* key) const;
  const double* findReal(const char* key) const;
  const std::string* findStr(const char* key) const;
  const bool* findFlag(const char* key) const;

 private:
  struct Field {
    enum class Kind : std::uint8_t { kString, kUInt, kReal, kBool };
    Kind kind;
    const char* key;
    std::string s;
    std::uint64_t u = 0;
    double d = 0.0;
    bool b = false;
  };
  const Field* find(const char* key, Field::Kind kind) const;

  const char* type_;
  std::vector<Field> fields_;
};

// The seam: CampaignOptions carries one of these (not owned; null = off).
class CampaignObserver {
 public:
  virtual ~CampaignObserver() = default;
  // Thread-safe. The event is only valid for the duration of the call.
  virtual void onEvent(const StreamEvent& event) = 0;
};

// NDJSON sink: one flushed line per event, timestamped on the process
// epoch (base/stopwatch), so `tail -f events.ndjson` follows a campaign
// live and downstream tooling replays it offline.
//
// The writer doubles as the durability primitive for the engine's
// checkpoint journal: `kAppend` reopens an existing file without
// truncating, `writeLine` appends an arbitrary pre-serialised line under
// the same mutex, and `syncEveryLine` adds an fsync after each flush for
// power-loss durability (SIGKILL-safety needs only the default flush —
// the data has reached the kernel; fsync guards against the machine
// dying, at a per-line syscall cost).
class NdjsonWriter : public CampaignObserver {
 public:
  enum class Mode : std::uint8_t { kTruncate, kAppend };

  explicit NdjsonWriter(const std::string& path, Mode mode = Mode::kTruncate,
                        bool syncEveryLine = false);
  NdjsonWriter(std::FILE* file, bool ownsFile);            // e.g. stderr
  ~NdjsonWriter() override;
  NdjsonWriter(const NdjsonWriter&) = delete;
  NdjsonWriter& operator=(const NdjsonWriter&) = delete;

  bool ok() const { return file_ != nullptr; }
  std::uint64_t linesWritten() const;

  void onEvent(const StreamEvent& event) override;

  // Appends `line` + '\n' and flushes (and fsyncs when the writer was
  // opened with syncEveryLine). Returns false when the write did not
  // reach the stream — the caller decides whether that is fatal.
  bool writeLine(const std::string& line);

 private:
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  bool owns_ = false;
  bool sync_ = false;
  std::uint64_t lines_ = 0;
};

// Writes `content` to `path` atomically: tmp file in the same directory,
// flush + fsync, rename over the target. A reader (or a crash) sees either
// the old file or the complete new one, never a torn write. Returns false
// (target untouched) on any failure.
bool writeFileAtomic(const std::string& path, const std::string& content);

// Loads an NDJSON file as complete lines, replacing `lines`. Blank lines
// are dropped (they are separators, not records). A final line with no
// terminating '\n' is the signature of a write cut short (SIGKILL, full
// disk) and is *skipped*, reported through `partialTailSkipped`; callers
// get only lines whose write finished. Returns false when the file cannot
// be opened (out-params untouched).
bool readNdjsonLines(const std::string& path, std::vector<std::string>& lines,
                     bool* partialTailSkipped = nullptr);

// Routes base/log output onto `observer` as {"type":"log",...} events
// (satisfying "the logger reports through the observer seam when one is
// attached"). Pass nullptr to detach. The observer must outlive the
// routing; the engine's log lines then interleave with window events on
// one stream and one time base.
void routeLogToObserver(CampaignObserver* observer);

}  // namespace upec::obs
