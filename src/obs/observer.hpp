// Live campaign event streaming: the observer seam the engine reports
// into while a campaign runs, plus the NDJSON sink that turns it into a
// tailable file — one JSON line per window verdict, job completion and
// reschedule escalation, written (and flushed) as it happens. A long sweep
// becomes observable mid-run instead of silent until the terminal report,
// and the stream is the incremental-results seam the campaign-as-a-service
// direction builds on (a daemon forwards these lines; a resume can replay
// them).
//
// Layering: events are flat typed key/value records, so obs stays below
// the engine — the engine knows what a "window" is and builds the event;
// this file only transports and serialises it. The guaranteed stream
// schema (field names the CI validator and tests key on):
//
//   {"type":"campaign_start","ts_us":N,"jobs":N,"threads":N}
//   {"type":"window","ts_us":N,"job":id,"label":s,"k":N,"verdict":s,
//    "conflicts":N,"solve_ms":x, ["attempts":N,] ["budget_exhausted":b]}
//   {"type":"reschedule","ts_us":N,"job":id,"k":N,"attempt":N,"budget":N}
//   {"type":"job","ts_us":N,"job":id,"label":s,"verdict":s,"wall_ms":x,
//    "worker":N,"windows":N}
//   {"type":"campaign_end","ts_us":N,"verdict":s,"wall_ms":x,"proven":N,
//    "p_alerts":N,"l_alerts":N,"unknown":N}
//   {"type":"log","ts_us":N,"level":s,"msg":s}        (when routed)
//
// Observer callbacks fire from whichever pool worker produced the result;
// implementations must be thread-safe (NdjsonWriter serialises under one
// mutex). Callbacks run on the campaign's critical path — keep them quick.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace upec::obs {

// One streamed event: a type tag plus flat typed fields, appended in
// order. Built by the engine, serialised by the sink.
class StreamEvent {
 public:
  explicit StreamEvent(const char* type) : type_(type) {}

  StreamEvent& str(const char* key, std::string value);
  StreamEvent& num(const char* key, std::uint64_t value);
  StreamEvent& real(const char* key, double value);
  StreamEvent& flag(const char* key, bool value);

  const char* type() const { return type_; }
  // Serialises as one JSON object (no trailing newline). `tsUs`, when
  // non-zero, is emitted as "ts_us" right after "type".
  std::string toJson(std::uint64_t tsUs = 0) const;

 private:
  struct Field {
    enum class Kind : std::uint8_t { kString, kUInt, kReal, kBool };
    Kind kind;
    const char* key;
    std::string s;
    std::uint64_t u = 0;
    double d = 0.0;
    bool b = false;
  };
  const char* type_;
  std::vector<Field> fields_;
};

// The seam: CampaignOptions carries one of these (not owned; null = off).
class CampaignObserver {
 public:
  virtual ~CampaignObserver() = default;
  // Thread-safe. The event is only valid for the duration of the call.
  virtual void onEvent(const StreamEvent& event) = 0;
};

// NDJSON sink: one flushed line per event, timestamped on the process
// epoch (base/stopwatch), so `tail -f events.ndjson` follows a campaign
// live and downstream tooling replays it offline.
class NdjsonWriter : public CampaignObserver {
 public:
  explicit NdjsonWriter(const std::string& path);          // truncates
  NdjsonWriter(std::FILE* file, bool ownsFile);            // e.g. stderr
  ~NdjsonWriter() override;
  NdjsonWriter(const NdjsonWriter&) = delete;
  NdjsonWriter& operator=(const NdjsonWriter&) = delete;

  bool ok() const { return file_ != nullptr; }
  std::uint64_t linesWritten() const;

  void onEvent(const StreamEvent& event) override;

 private:
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  bool owns_ = false;
  std::uint64_t lines_ = 0;
};

// Routes base/log output onto `observer` as {"type":"log",...} events
// (satisfying "the logger reports through the observer seam when one is
// attached"). Pass nullptr to detach. The observer must outlive the
// routing; the engine's log lines then interleave with window events on
// one stream and one time base.
void routeLogToObserver(CampaignObserver* observer);

}  // namespace upec::obs
