#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "base/stopwatch.hpp"

namespace upec::obs {

namespace detail {
std::atomic<TraceRecorder*> g_recorder{nullptr};
}

namespace {

// Monotone id per recorder instance: the thread-local buffer cache keys on
// it instead of the recorder address, so a recorder allocated where a
// destroyed one used to live can never revive a stale cache entry.
std::atomic<std::uint64_t> g_generation{0};

struct TlsCache {
  std::uint64_t generation = 0;  // 0 = empty
  void* buffer = nullptr;
};
thread_local TlsCache tlCache;

}  // namespace

void appendJsonEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

TraceRecorder::TraceRecorder(std::size_t bufferCapacity)
    : capacity_(bufferCapacity == 0 ? 1 : bufferCapacity),
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed) + 1) {}

TraceRecorder::~TraceRecorder() {
  if (active()) stop();
}

bool TraceRecorder::start() {
  {
    // One-shot lifecycle: a stopped recorder has flushed and handed out its
    // event store; restarting it would silently interleave a second run.
    std::lock_guard<std::mutex> lock(centralMutex_);
    if (stopped_) return false;
  }
  TraceRecorder* expected = nullptr;
  return detail::g_recorder.compare_exchange_strong(expected, this,
                                                    std::memory_order_release);
}

void TraceRecorder::stop() {
  TraceRecorder* expected = this;
  detail::g_recorder.compare_exchange_strong(expected, nullptr,
                                             std::memory_order_acq_rel);
  // Final flush. Producers are quiescent by contract (their joins give the
  // necessary happens-before for the plain `size` reads below).
  std::lock_guard<std::mutex> lock(centralMutex_);
  for (const std::unique_ptr<ThreadBuffer>& b : buffers_) flushBufferLocked(*b);
  stopped_ = true;
}

TraceRecorder::ThreadBuffer& TraceRecorder::localBuffer() {
  if (tlCache.generation != generation_) {
    std::lock_guard<std::mutex> lock(centralMutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    ThreadBuffer& b = *buffers_.back();
    b.tid = nextTid_++;
    b.ring.resize(capacity_);
    tlCache = {generation_, &b};
    return b;
  }
  return *static_cast<ThreadBuffer*>(tlCache.buffer);
}

void TraceRecorder::flushBufferLocked(ThreadBuffer& b) {
  for (std::size_t i = 0; i < b.size; ++i) central_.push_back(std::move(b.ring[i]));
  b.size = 0;
}

void TraceRecorder::record(TraceEvent&& e) {
  ThreadBuffer& b = localBuffer();
  if (b.size == b.ring.size()) {
    // Ring full: hand the batch to the central store if its mutex is free,
    // otherwise drop this event — the hot path never blocks on a flush.
    std::unique_lock<std::mutex> lock(centralMutex_, std::try_to_lock);
    if (!lock.owns_lock()) {
      b.drops.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    flushBufferLocked(b);
  }
  e.tid = b.tid;
  b.ring[b.size] = std::move(e);
  ++b.size;  // SPSC publication: only this thread reads size before a flush
}

std::uint64_t TraceRecorder::droppedEvents() const {
  std::lock_guard<std::mutex> lock(centralMutex_);
  std::uint64_t total = 0;
  for (const std::unique_ptr<ThreadBuffer>& b : buffers_) {
    total += b->drops.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> lock(centralMutex_);
  return central_.size();
}

void TraceRecorder::writeJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(centralMutex_);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : central_) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"ph\":\"";
    switch (e.phase) {
      case TraceEvent::Phase::kComplete: os << 'X'; break;
      case TraceEvent::Phase::kInstant: os << 'i'; break;
      case TraceEvent::Phase::kCounter: os << 'C'; break;
    }
    os << "\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":" << e.tsUs;
    if (e.phase == TraceEvent::Phase::kComplete) os << ",\"dur\":" << e.durUs;
    if (e.phase == TraceEvent::Phase::kInstant) os << ",\"s\":\"t\"";
    std::string name;
    appendJsonEscaped(name, e.name);
    std::string cat;
    appendJsonEscaped(cat, e.cat);
    os << ",\"cat\":\"" << cat << "\",\"name\":\"" << name << '"';
    if (!e.args.empty()) os << ",\"args\":{" << e.args << '}';
    os << '}';
  }
  std::uint64_t drops = 0;
  for (const std::unique_ptr<ThreadBuffer>& b : buffers_) {
    drops += b->drops.load(std::memory_order_relaxed);
  }
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":" << drops
     << "}}";
}

bool TraceRecorder::writeFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  writeJson(os);
  os << '\n';
  return static_cast<bool>(os);
}

// ------------------------------------------------------------------ Span ---

Span::Span(const char* cat, const char* name) : active_(tracingEnabled()) {
  if (active_) {
    cat_ = cat;
    name_ = name;
    startUs_ = Stopwatch::sinceEpochUs();
  }
}

Span& Span::arg(const char* key, const std::string& value) {
  if (!active_) return *this;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":\"";
  appendJsonEscaped(args_, value);
  args_ += '"';
  return *this;
}

Span& Span::arg(const char* key, const char* value) {
  return arg(key, std::string(value));
}

Span& Span::arg(const char* key, std::uint64_t value) {
  if (!active_) return *this;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":";
  args_ += std::to_string(value);
  return *this;
}

Span& Span::arg(const char* key, bool value) {
  if (!active_) return *this;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":";
  args_ += value ? "true" : "false";
  return *this;
}

void Span::end() {
  if (!active_) return;
  active_ = false;
  // Re-fetch: a recorder stopped mid-span (tests, aborted runs) just loses
  // the event instead of touching a dead recorder.
  TraceRecorder* rec = tracer();
  if (rec == nullptr) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kComplete;
  e.cat = cat_;
  e.name = name_;
  e.tsUs = startUs_;
  e.durUs = Stopwatch::sinceEpochUs() - startUs_;
  e.args = std::move(args_);
  rec->record(std::move(e));
}

void instant(const char* cat, const char* name, std::string args) {
  TraceRecorder* rec = tracer();
  if (rec == nullptr) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kInstant;
  e.cat = cat;
  e.name = name;
  e.tsUs = Stopwatch::sinceEpochUs();
  e.args = std::move(args);
  rec->record(std::move(e));
}

void counter(const char* cat, const char* name, const char* series,
             std::uint64_t value) {
  TraceRecorder* rec = tracer();
  if (rec == nullptr) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kCounter;
  e.cat = cat;
  e.name = name;
  e.tsUs = Stopwatch::sinceEpochUs();
  e.args = '"';
  e.args += series;
  e.args += "\":";
  e.args += std::to_string(value);
  rec->record(std::move(e));
}

}  // namespace upec::obs
