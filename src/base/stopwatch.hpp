// Wall-clock stopwatch used to report proof runtimes in the benches.
#pragma once

#include <chrono>

namespace upec {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsedMs() const { return elapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace upec
