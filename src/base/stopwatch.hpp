// Wall-clock stopwatch used to report proof runtimes in the benches, plus
// the process-wide steady-clock epoch that trace events, log timestamps and
// bench timings all share — one time base, so a span in trace.json lines up
// with the matching log line and bench row instead of each measuring from
// its own zero.
#pragma once

#include <chrono>
#include <cstdint>

namespace upec {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsedMs() const { return elapsedSeconds() * 1e3; }
  std::uint64_t elapsedUs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
            .count());
  }

  // Microseconds since the process epoch (fixed at the first call, any
  // thread; monotone thereafter). obs::TraceRecorder stamps events with
  // this, and base/log derives its monotonic-ms line prefix from it.
  static std::uint64_t sinceEpochUs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch())
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;

  // Function-local static: one epoch per process, initialisation is
  // thread-safe, and no TU ordering games.
  static Clock::time_point epoch() {
    static const Clock::time_point e = Clock::now();
    return e;
  }

  Clock::time_point start_;
};

}  // namespace upec
