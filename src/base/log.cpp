#include "base/log.hpp"

namespace upec {
namespace {
LogLevel g_level = LogLevel::kSilent;
}

LogLevel logLevel() { return g_level; }
void setLogLevel(LogLevel level) { g_level = level; }

void logInfo(const std::string& msg) {
  if (g_level >= LogLevel::kInfo) std::fprintf(stderr, "[upec] %s\n", msg.c_str());
}

void logDebug(const std::string& msg) {
  if (g_level >= LogLevel::kDebug) std::fprintf(stderr, "[upec:debug] %s\n", msg.c_str());
}

}  // namespace upec
