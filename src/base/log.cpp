#include "base/log.hpp"

#include <atomic>

namespace upec {
namespace {
// Atomic so campaign workers can narrate concurrently; each message is a
// single fprintf, which the C library already serialises per stream.
std::atomic<LogLevel> g_level{LogLevel::kSilent};
}

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }
void setLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void logInfo(const std::string& msg) {
  if (logLevel() >= LogLevel::kInfo) std::fprintf(stderr, "[upec] %s\n", msg.c_str());
}

void logDebug(const std::string& msg) {
  if (logLevel() >= LogLevel::kDebug) std::fprintf(stderr, "[upec:debug] %s\n", msg.c_str());
}

}  // namespace upec
