#include "base/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

#include "base/stopwatch.hpp"

namespace upec {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kSilent};

// One mutex around the whole write path: a single fprintf per line would
// already keep stderr unmangled per the C library's stream lock, but the
// sink call must observe lines in the same order they hit the console, so
// both happen under the same lock.
std::mutex g_mutex;
LogSink g_sink;  // guarded by g_mutex

std::atomic<unsigned> g_nextThreadId{0};

void write(LogLevel level, const char* tag, const std::string& msg) {
  const double ms = static_cast<double>(Stopwatch::sinceEpochUs()) / 1e3;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s +%.3fms T%u] %s\n", tag, ms, logThreadId(), msg.c_str());
  if (g_sink) g_sink(level, msg);
}

}  // namespace

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }
void setLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void setLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

unsigned logThreadId() {
  thread_local const unsigned id = g_nextThreadId.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void logInfo(const std::string& msg) {
  if (logLevel() >= LogLevel::kInfo) write(LogLevel::kInfo, "upec", msg);
}

void logDebug(const std::string& msg) {
  if (logLevel() >= LogLevel::kDebug) write(LogLevel::kDebug, "upec:debug", msg);
}

}  // namespace upec
