#include "base/bitvec.hpp"

#include <cstdio>

namespace upec {

std::string BitVec::toString() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u'h%llx", width_, static_cast<unsigned long long>(value_));
  return buf;
}

}  // namespace upec
