// Fixed-width two-valued bit-vector value type used across the RTL IR,
// the cycle-accurate simulator and counterexample extraction.
//
// Widths from 1 to 64 bits are supported; every operation masks its result
// to the declared width, giving the usual hardware modular semantics.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

namespace upec {

class BitVec {
 public:
  BitVec() : width_(1), value_(0) {}
  BitVec(unsigned width, std::uint64_t value) : width_(width), value_(value & mask(width)) {
    assert(width >= 1 && width <= 64);
  }

  static BitVec zeros(unsigned width) { return BitVec(width, 0); }
  static BitVec ones(unsigned width) { return BitVec(width, ~0ull); }
  static BitVec bit(bool b) { return BitVec(1, b ? 1 : 0); }

  unsigned width() const { return width_; }
  std::uint64_t uint() const { return value_; }
  // Sign-extended interpretation of the stored value.
  std::int64_t sint() const {
    if (width_ == 64) return static_cast<std::int64_t>(value_);
    const std::uint64_t sign = 1ull << (width_ - 1);
    return static_cast<std::int64_t>((value_ ^ sign)) - static_cast<std::int64_t>(sign);
  }
  bool isZero() const { return value_ == 0; }
  bool toBool() const { return value_ != 0; }
  bool getBit(unsigned i) const {
    assert(i < width_);
    return (value_ >> i) & 1;
  }

  static std::uint64_t mask(unsigned width) {
    return width >= 64 ? ~0ull : ((1ull << width) - 1);
  }

  // --- arithmetic / bitwise, all modular in `width()` -----------------
  BitVec add(const BitVec& o) const { return sameW(o), BitVec(width_, value_ + o.value_); }
  BitVec sub(const BitVec& o) const { return sameW(o), BitVec(width_, value_ - o.value_); }
  BitVec mul(const BitVec& o) const { return sameW(o), BitVec(width_, value_ * o.value_); }
  BitVec band(const BitVec& o) const { return sameW(o), BitVec(width_, value_ & o.value_); }
  BitVec bor(const BitVec& o) const { return sameW(o), BitVec(width_, value_ | o.value_); }
  BitVec bxor(const BitVec& o) const { return sameW(o), BitVec(width_, value_ ^ o.value_); }
  BitVec bnot() const { return BitVec(width_, ~value_); }
  BitVec neg() const { return BitVec(width_, ~value_ + 1); }

  BitVec shl(const BitVec& o) const {
    const std::uint64_t s = o.value_;
    return BitVec(width_, s >= width_ ? 0 : value_ << s);
  }
  BitVec lshr(const BitVec& o) const {
    const std::uint64_t s = o.value_;
    return BitVec(width_, s >= width_ ? 0 : value_ >> s);
  }
  BitVec ashr(const BitVec& o) const {
    const std::uint64_t s = o.value_;
    const std::int64_t v = sint();
    if (s >= width_) return BitVec(width_, v < 0 ? ~0ull : 0);
    return BitVec(width_, static_cast<std::uint64_t>(v >> s));
  }

  // --- comparisons, 1-bit results -------------------------------------
  BitVec eq(const BitVec& o) const { return sameW(o), bit(value_ == o.value_); }
  BitVec ne(const BitVec& o) const { return sameW(o), bit(value_ != o.value_); }
  BitVec ult(const BitVec& o) const { return sameW(o), bit(value_ < o.value_); }
  BitVec ule(const BitVec& o) const { return sameW(o), bit(value_ <= o.value_); }
  BitVec slt(const BitVec& o) const { return sameW(o), bit(sint() < o.sint()); }
  BitVec sle(const BitVec& o) const { return sameW(o), bit(sint() <= o.sint()); }

  // --- reductions ------------------------------------------------------
  BitVec redOr() const { return bit(value_ != 0); }
  BitVec redAnd() const { return bit(value_ == mask(width_)); }
  BitVec redXor() const { return bit(__builtin_parityll(value_)); }

  // --- structure -------------------------------------------------------
  // Bits [hi:lo], inclusive, little-endian bit order.
  BitVec extract(unsigned hi, unsigned lo) const {
    assert(hi < width_ && lo <= hi);
    return BitVec(hi - lo + 1, value_ >> lo);
  }
  // {hi, lo}: `this` occupies the upper bits of the result.
  BitVec concat(const BitVec& lowPart) const {
    assert(width_ + lowPart.width_ <= 64);
    return BitVec(width_ + lowPart.width_, (value_ << lowPart.width_) | lowPart.value_);
  }
  BitVec zext(unsigned newWidth) const {
    assert(newWidth >= width_);
    return BitVec(newWidth, value_);
  }
  BitVec sext(unsigned newWidth) const {
    assert(newWidth >= width_);
    return BitVec(newWidth, static_cast<std::uint64_t>(sint()));
  }

  bool operator==(const BitVec& o) const { return width_ == o.width_ && value_ == o.value_; }
  bool operator!=(const BitVec& o) const { return !(*this == o); }

  std::string toString() const;  // e.g. "8'h3f"

 private:
  void sameW(const BitVec& o) const {
    assert(width_ == o.width_);
    (void)o;
  }
  unsigned width_;
  std::uint64_t value_;
};

}  // namespace upec
