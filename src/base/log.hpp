// Minimal leveled logger. Verbosity is a process-global knob so that the
// methodology driver and benches can narrate progress without threading a
// logger object through every API.
//
// The write path is thread-safe: concurrent campaign workers each get a
// complete line (one mutex-guarded fprintf), stamped with a monotonic-ms
// timestamp (base/stopwatch process epoch) and a small sequential thread
// id. A LogSink, when installed, receives every emitted line as well —
// that is how log output is routed onto the campaign observer stream (see
// obs::routeLogToObserver) so an NDJSON tail interleaves log lines with
// window verdicts on one time base.
#pragma once

#include <functional>
#include <string>

namespace upec {

enum class LogLevel { kSilent = 0, kInfo = 1, kDebug = 2 };

LogLevel logLevel();
void setLogLevel(LogLevel level);

// Secondary destination for every line that passes the level filter.
// Called under the log mutex (lines arrive in emission order, one at a
// time); keep sinks quick and never log from inside one. Pass nullptr to
// detach.
using LogSink = std::function<void(LogLevel, const std::string& msg)>;
void setLogSink(LogSink sink);

// Small sequential id of the calling thread (assigned on first use; the
// same id is stamped on the thread's log lines).
unsigned logThreadId();

void logInfo(const std::string& msg);
void logDebug(const std::string& msg);

}  // namespace upec
