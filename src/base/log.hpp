// Minimal leveled logger. Verbosity is a process-global knob so that the
// methodology driver and benches can narrate progress without threading a
// logger object through every API.
#pragma once

#include <cstdio>
#include <string>

namespace upec {

enum class LogLevel { kSilent = 0, kInfo = 1, kDebug = 2 };

LogLevel logLevel();
void setLogLevel(LogLevel level);

void logInfo(const std::string& msg);
void logDebug(const std::string& msg);

}  // namespace upec
