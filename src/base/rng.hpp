// Deterministic, seedable PRNG (xoshiro256**) so that randomised tests and
// workload generators are reproducible across platforms and libstdc++
// versions (std::mt19937 ties the distribution implementation to the
// standard library build).
#pragma once

#include <cstdint>

namespace upec {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding of the four lanes.
    std::uint64_t z = seed;
    for (auto& lane : s_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      lane = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound), bound > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
  // Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) { return lo + below(hi - lo + 1); }
  bool flip() { return next() & 1; }
  // Bernoulli with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace upec
