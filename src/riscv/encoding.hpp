// RV32I (+ minimal Zicsr / privileged) instruction encodings.
//
// The SoC model executes standard 32-bit RISC-V encodings regardless of its
// configured data-path width (XLEN), exactly like the paper's attack code in
// Fig. 2 runs unchanged on differently parameterised RocketChip instances.
#pragma once

#include <cstdint>
#include <string>

namespace upec::riscv {

// --- opcode map ----------------------------------------------------------
inline constexpr std::uint32_t kOpLui = 0b0110111;
inline constexpr std::uint32_t kOpAuipc = 0b0010111;
inline constexpr std::uint32_t kOpJal = 0b1101111;
inline constexpr std::uint32_t kOpJalr = 0b1100111;
inline constexpr std::uint32_t kOpBranch = 0b1100011;
inline constexpr std::uint32_t kOpLoad = 0b0000011;
inline constexpr std::uint32_t kOpStore = 0b0100011;
inline constexpr std::uint32_t kOpImm = 0b0010011;
inline constexpr std::uint32_t kOpReg = 0b0110011;
inline constexpr std::uint32_t kOpSystem = 0b1110011;
inline constexpr std::uint32_t kOpMiscMem = 0b0001111;

// --- CSR addresses -------------------------------------------------------
inline constexpr std::uint32_t kCsrMstatus = 0x300;
inline constexpr std::uint32_t kCsrMtvec = 0x305;
inline constexpr std::uint32_t kCsrMepc = 0x341;
inline constexpr std::uint32_t kCsrMcause = 0x342;
inline constexpr std::uint32_t kCsrMcycle = 0xB00;
inline constexpr std::uint32_t kCsrCycle = 0xC00;  // user-readable counter
inline constexpr std::uint32_t kCsrPmpcfg0 = 0x3A0;
inline constexpr std::uint32_t kCsrPmpaddr0 = 0x3B0;  // ..0x3B3 for entries 1-3

// --- PMP configuration byte layout --------------------------------------
inline constexpr std::uint8_t kPmpR = 0x01;
inline constexpr std::uint8_t kPmpW = 0x02;
inline constexpr std::uint8_t kPmpX = 0x04;
inline constexpr std::uint8_t kPmpAOff = 0x00;
inline constexpr std::uint8_t kPmpATor = 0x08;  // address-matching mode field
inline constexpr std::uint8_t kPmpAMask = 0x18;
inline constexpr std::uint8_t kPmpL = 0x80;

// --- mcause values -------------------------------------------------------
inline constexpr std::uint32_t kCauseIllegalInstr = 2;
inline constexpr std::uint32_t kCauseLoadAccessFault = 5;
inline constexpr std::uint32_t kCauseStoreAccessFault = 7;
inline constexpr std::uint32_t kCauseEcallU = 8;
inline constexpr std::uint32_t kCauseEcallM = 11;

// --- field encoders ------------------------------------------------------
constexpr std::uint32_t encodeR(std::uint32_t funct7, unsigned rs2, unsigned rs1,
                                std::uint32_t funct3, unsigned rd, std::uint32_t opcode) {
  return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode;
}

constexpr std::uint32_t encodeI(std::int32_t imm12, unsigned rs1, std::uint32_t funct3,
                                unsigned rd, std::uint32_t opcode) {
  return (static_cast<std::uint32_t>(imm12 & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) |
         (rd << 7) | opcode;
}

constexpr std::uint32_t encodeS(std::int32_t imm12, unsigned rs2, unsigned rs1,
                                std::uint32_t funct3, std::uint32_t opcode) {
  const std::uint32_t imm = static_cast<std::uint32_t>(imm12 & 0xfff);
  return ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | ((imm & 0x1f) << 7) |
         opcode;
}

constexpr std::uint32_t encodeB(std::int32_t imm13, unsigned rs2, unsigned rs1,
                                std::uint32_t funct3, std::uint32_t opcode) {
  const std::uint32_t imm = static_cast<std::uint32_t>(imm13);
  return (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3f) << 25) | (rs2 << 20) | (rs1 << 15) |
         (funct3 << 12) | (((imm >> 1) & 0xf) << 8) | (((imm >> 11) & 1) << 7) | opcode;
}

constexpr std::uint32_t encodeU(std::int32_t imm20, unsigned rd, std::uint32_t opcode) {
  return (static_cast<std::uint32_t>(imm20 & 0xfffff) << 12) | (rd << 7) | opcode;
}

constexpr std::uint32_t encodeJ(std::int32_t imm21, unsigned rd, std::uint32_t opcode) {
  const std::uint32_t imm = static_cast<std::uint32_t>(imm21);
  return (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3ff) << 21) | (((imm >> 11) & 1) << 20) |
         (((imm >> 12) & 0xff) << 12) | (rd << 7) | opcode;
}

// --- decoded instruction --------------------------------------------------
struct Decoded {
  std::uint32_t raw = 0;
  std::uint32_t opcode = 0;
  unsigned rd = 0, rs1 = 0, rs2 = 0;
  std::uint32_t funct3 = 0, funct7 = 0;
  std::int32_t immI = 0, immS = 0, immB = 0, immJ = 0;
  std::uint32_t immU = 0;    // already shifted into the upper 20 bits
  std::uint32_t csr = 0;     // = immI unsigned, for SYSTEM ops
};

Decoded decode(std::uint32_t raw);

// Best-effort disassembly for diagnostics.
std::string disassemble(std::uint32_t raw);

}  // namespace upec::riscv
