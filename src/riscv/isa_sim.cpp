#include "riscv/isa_sim.hpp"

#include <cassert>

namespace upec::riscv {

IsaSim::IsaSim(const MachineConfig& config) : config_(config) {
  assert(config.xlen >= 8 && config.xlen <= 32);
  assert(config.nregs >= 8 && (config.nregs & (config.nregs - 1)) == 0);
  regs_.resize(config.nregs, 0);
  imem_.resize(config.imemWords, 0);
  dmem_.resize(config.dmemWords, 0);
  pmpcfg_.resize(config.pmpEntries, 0);
  pmpaddr_.resize(config.pmpEntries, 0);
  reset();
}

void IsaSim::reset() {
  std::fill(regs_.begin(), regs_.end(), 0);
  pc_ = 0;
  mode_ = Mode::kMachine;
  mtvec_ = mepc_ = mcause_ = 0;
  mcycle_ = 0;
  instret_ = 0;
  std::fill(pmpcfg_.begin(), pmpcfg_.end(), 0);
  std::fill(pmpaddr_.begin(), pmpaddr_.end(), 0);
}

void IsaSim::loadProgram(const std::vector<std::uint32_t>& words, std::uint32_t baseWord) {
  assert(baseWord + words.size() <= imem_.size());
  for (std::size_t i = 0; i < words.size(); ++i) imem_[baseWord + i] = words[i];
}

void IsaSim::setDmemWord(std::uint32_t wordAddr, std::uint32_t value) {
  assert(wordAddr < dmem_.size());
  dmem_[wordAddr] = value & config_.xlenMask();
}

std::uint32_t IsaSim::dmemWord(std::uint32_t wordAddr) const {
  assert(wordAddr < dmem_.size());
  return dmem_[wordAddr];
}

void IsaSim::setReg(unsigned i, std::uint32_t v) {
  assert(i < regs_.size());
  if (i != 0) regs_[i] = v & config_.xlenMask();
}

bool IsaSim::pmpAllows(std::uint32_t byteAddr, bool isWrite, Mode mode) const {
  const std::uint32_t wordAddr = (byteAddr & config_.physAddrMask()) >> 2;
  // Lowest-numbered matching TOR entry decides (RISC-V priority order).
  std::uint32_t rangeBase = 0;
  for (unsigned i = 0; i < config_.pmpEntries; ++i) {
    const bool active = (pmpcfg_[i] & kPmpAMask) == kPmpATor;
    const std::uint32_t top = pmpaddr_[i];
    if (active && wordAddr >= rangeBase && wordAddr < top) {
      const bool locked = (pmpcfg_[i] & kPmpL) != 0;
      if (mode == Mode::kMachine && !locked) return true;  // M bypasses unlocked
      return isWrite ? (pmpcfg_[i] & kPmpW) != 0 : (pmpcfg_[i] & kPmpR) != 0;
    }
    // TOR ranges chain: entry i+1's range starts at pmpaddr[i] regardless
    // of whether entry i is active.
    rangeBase = top;
  }
  // No match: machine mode is allowed, user mode is denied.
  return mode == Mode::kMachine;
}

bool IsaSim::pmpAddrWriteLocked(unsigned i) const {
  if ((pmpcfg_[i] & kPmpL) != 0) return true;
  // ISA rule: if entry i+1 is a locked TOR entry, pmpaddr[i] (its range
  // base) is locked as well. The RocketChip bug omitted this check.
  if (config_.pmpLockBug) return false;
  if (i + 1 < config_.pmpEntries) {
    const std::uint8_t up = pmpcfg_[i + 1];
    if ((up & kPmpL) != 0 && (up & kPmpAMask) == kPmpATor) return true;
  }
  return false;
}

std::uint32_t IsaSim::csr(std::uint32_t addr) const {
  switch (addr) {
    case kCsrMtvec: return mtvec_;
    case kCsrMepc: return mepc_;
    case kCsrMcause: return mcause_;
    case kCsrMcycle:
    case kCsrCycle: return static_cast<std::uint32_t>(mcycle_) & config_.xlenMask();
    case kCsrPmpcfg0: {
      std::uint32_t v = 0;
      for (unsigned i = 0; i < config_.pmpEntries && i < 4; ++i) {
        v |= static_cast<std::uint32_t>(pmpcfg_[i]) << (8 * i);
      }
      return v;
    }
    default:
      if (addr >= kCsrPmpaddr0 && addr < kCsrPmpaddr0 + config_.pmpEntries) {
        return pmpaddr_[addr - kCsrPmpaddr0];
      }
      return 0;
  }
}

void IsaSim::setCsr(std::uint32_t addr, std::uint32_t value) {
  switch (addr) {
    case kCsrMtvec: mtvec_ = value & config_.pcMask() & ~3u; return;
    case kCsrMepc: mepc_ = value & config_.pcMask() & ~3u; return;
    case kCsrMcause: mcause_ = value & 0xf; return;  // 4-bit cause space
    case kCsrMcycle: mcycle_ = value; return;
    case kCsrPmpcfg0:
      for (unsigned i = 0; i < config_.pmpEntries && i < 4; ++i) {
        pmpcfg_[i] = static_cast<std::uint8_t>(value >> (8 * i));
      }
      return;
    default:
      if (addr >= kCsrPmpaddr0 && addr < kCsrPmpaddr0 + config_.pmpEntries) {
        // One bit wider than a word address so that a TOR top of 2^W
        // (exclusive end of memory) is representable.
        const std::uint32_t mask = (config_.physAddrMask() >> 1) | 1u;
        pmpaddr_[addr - kCsrPmpaddr0] = value & mask;
      }
      return;
  }
}

std::uint32_t IsaSim::csrReadForInstr(std::uint32_t addr, bool* illegal) const {
  // Only the implemented CSRs exist; anything else is an illegal access.
  const bool known = addr == kCsrMtvec || addr == kCsrMepc || addr == kCsrMcause ||
                     addr == kCsrMcycle || addr == kCsrCycle || addr == kCsrPmpcfg0 ||
                     (addr >= kCsrPmpaddr0 && addr < kCsrPmpaddr0 + config_.pmpEntries);
  if (!known) {
    *illegal = true;
    return 0;
  }
  // The unprivileged cycle counter is readable from user mode; machine
  // CSRs require machine mode.
  if (addr == kCsrCycle) return csr(addr);
  if (mode_ != Mode::kMachine) {
    *illegal = true;
    return 0;
  }
  return csr(addr);
}

void IsaSim::csrWriteForInstr(std::uint32_t addr, std::uint32_t value, bool* illegal) {
  if (mode_ != Mode::kMachine) {
    *illegal = true;
    return;
  }
  // Lock enforcement for PMP CSRs.
  if (addr == kCsrPmpcfg0) {
    std::uint32_t merged = 0;
    for (unsigned i = 0; i < config_.pmpEntries && i < 4; ++i) {
      const std::uint8_t neu = static_cast<std::uint8_t>(value >> (8 * i));
      merged |= static_cast<std::uint32_t>((pmpcfg_[i] & kPmpL) ? pmpcfg_[i] : neu) << (8 * i);
    }
    setCsr(addr, merged);
    return;
  }
  if (addr >= kCsrPmpaddr0 && addr < kCsrPmpaddr0 + config_.pmpEntries) {
    if (pmpAddrWriteLocked(addr - kCsrPmpaddr0)) return;  // silently ignored
    setCsr(addr, value);
    return;
  }
  if (addr == kCsrCycle) {  // read-only shadow
    *illegal = true;
    return;
  }
  setCsr(addr, value);
}

void IsaSim::trap(std::uint32_t cause) {
  mepc_ = pc_;
  mcause_ = cause;
  mode_ = Mode::kMachine;
  pc_ = mtvec_;
}

StepInfo IsaSim::step() {
  StepInfo info;
  info.pc = pc_;
  ++mcycle_;

  const std::uint32_t raw = imem_[(pc_ & config_.pcMask()) >> 2];
  const Decoded d = decode(raw);
  const std::uint32_t xmask = config_.xlenMask();
  const unsigned regMask = config_.nregs - 1;
  const unsigned rd = d.rd & regMask, rs1 = d.rs1 & regMask, rs2 = d.rs2 & regMask;
  const std::uint32_t a = regs_[rs1], b = regs_[rs2];
  std::uint32_t nextPc = (pc_ + 4) & config_.pcMask();
  std::uint32_t wb = 0;
  bool wbValid = false;
  bool illegal = false;

  auto signedOf = [&](std::uint32_t v) {
    const std::uint32_t sign = 1u << (config_.xlen - 1);
    return static_cast<std::int32_t>((v ^ sign)) - static_cast<std::int32_t>(sign);
  };

  switch (d.opcode) {
    case kOpLui:
      wb = d.immU & xmask;
      wbValid = true;
      break;
    case kOpAuipc:
      wb = (pc_ + d.immU) & xmask;
      wbValid = true;
      break;
    case kOpJal:
      wb = nextPc;
      wbValid = true;
      nextPc = (pc_ + static_cast<std::uint32_t>(d.immJ)) & config_.pcMask() & ~3u;
      break;
    case kOpJalr:
      wb = nextPc;
      wbValid = true;
      nextPc = (a + static_cast<std::uint32_t>(d.immI)) & config_.pcMask() & ~3u;
      break;
    case kOpBranch: {
      bool take = false;
      switch (d.funct3) {
        case 0b000: take = a == b; break;
        case 0b001: take = a != b; break;
        case 0b100: take = signedOf(a) < signedOf(b); break;
        case 0b101: take = signedOf(a) >= signedOf(b); break;
        case 0b110: take = a < b; break;
        case 0b111: take = a >= b; break;
        default: illegal = true;
      }
      if (take) nextPc = (pc_ + static_cast<std::uint32_t>(d.immB)) & config_.pcMask() & ~3u;
      break;
    }
    case kOpLoad: {
      if (d.funct3 != 0b010) {  // only LW in the subset
        illegal = true;
        break;
      }
      const std::uint32_t addr = (a + static_cast<std::uint32_t>(d.immI)) & xmask;
      if (!pmpAllows(addr, /*isWrite=*/false, mode_)) {
        trap(kCauseLoadAccessFault);
        info.trapped = true;
        info.trapCause = kCauseLoadAccessFault;
        return info;
      }
      const std::uint32_t wordAddr = ((addr & config_.physAddrMask()) >> 2) % dmem_.size();
      wb = dmem_[wordAddr];
      wbValid = true;
      break;
    }
    case kOpStore: {
      if (d.funct3 != 0b010) {
        illegal = true;
        break;
      }
      const std::uint32_t addr = (a + static_cast<std::uint32_t>(d.immS)) & xmask;
      if (!pmpAllows(addr, /*isWrite=*/true, mode_)) {
        trap(kCauseStoreAccessFault);
        info.trapped = true;
        info.trapCause = kCauseStoreAccessFault;
        return info;
      }
      const std::uint32_t wordAddr = ((addr & config_.physAddrMask()) >> 2) % dmem_.size();
      dmem_[wordAddr] = b & xmask;
      break;
    }
    case kOpImm: {
      const std::uint32_t imm = static_cast<std::uint32_t>(d.immI) & xmask;
      const unsigned shamt = d.rs2;  // shamt field overlaps rs2
      switch (d.funct3) {
        case 0b000: wb = a + imm; break;
        case 0b010: wb = signedOf(a) < signedOf(imm) ? 1 : 0; break;
        case 0b011: wb = (a < imm) ? 1 : 0; break;
        case 0b100: wb = a ^ imm; break;
        case 0b110: wb = a | imm; break;
        case 0b111: wb = a & imm; break;
        case 0b001: wb = shamt >= config_.xlen ? 0 : (a << shamt); break;
        case 0b101:
          if (d.funct7 & 0x20) {
            wb = shamt >= config_.xlen
                     ? (signedOf(a) < 0 ? xmask : 0)
                     : static_cast<std::uint32_t>(signedOf(a) >> shamt);
          } else {
            wb = shamt >= config_.xlen ? 0 : (a >> shamt);
          }
          break;
        default: illegal = true;
      }
      wbValid = !illegal;
      break;
    }
    case kOpReg: {
      const bool alt = (d.funct7 & 0x20) != 0;
      switch (d.funct3) {
        case 0b000: wb = alt ? a - b : a + b; break;
        case 0b001: wb = (b & 31) >= config_.xlen ? 0 : a << (b & 31); break;
        case 0b010: wb = signedOf(a) < signedOf(b) ? 1 : 0; break;
        case 0b011: wb = (a < b) ? 1 : 0; break;
        case 0b100: wb = a ^ b; break;
        case 0b101:
          if (alt) {
            wb = (b & 31) >= config_.xlen
                     ? (signedOf(a) < 0 ? xmask : 0)
                     : static_cast<std::uint32_t>(signedOf(a) >> (b & 31));
          } else {
            wb = (b & 31) >= config_.xlen ? 0 : a >> (b & 31);
          }
          break;
        case 0b110: wb = a | b; break;
        case 0b111: wb = a & b; break;
        default: illegal = true;
      }
      wbValid = !illegal;
      break;
    }
    case kOpSystem: {
      if (d.funct3 == 0b000) {
        if (raw == 0x00000073) {  // ecall
          const std::uint32_t cause = (mode_ == Mode::kMachine) ? kCauseEcallM : kCauseEcallU;
          trap(cause);
          info.trapped = true;
          info.trapCause = cause;
          return info;
        }
        if (raw == 0x30200073) {  // mret
          if (mode_ != Mode::kMachine) {
            illegal = true;
            break;
          }
          nextPc = mepc_;
          mode_ = Mode::kUser;
          break;
        }
        illegal = true;
        break;
      }
      // CSR instructions: csrrw (001), csrrs (010), csrrc (011).
      const std::uint32_t old = csrReadForInstr(d.csr, &illegal);
      if (illegal) break;
      std::uint32_t newVal = old;
      bool doWrite = false;
      switch (d.funct3) {
        case 0b001: newVal = a; doWrite = true; break;
        case 0b010: newVal = old | a; doWrite = (rs1 != 0); break;
        case 0b011: newVal = old & ~a; doWrite = (rs1 != 0); break;
        default: illegal = true;
      }
      if (illegal) break;
      if (doWrite) {
        csrWriteForInstr(d.csr, newVal, &illegal);
        if (illegal) break;
      }
      wb = old & xmask;
      wbValid = true;
      break;
    }
    case kOpMiscMem:  // fence = nop
      break;
    default:
      illegal = true;
  }

  if (illegal) {
    trap(kCauseIllegalInstr);
    info.trapped = true;
    info.trapCause = kCauseIllegalInstr;
    return info;
  }

  if (wbValid && rd != 0) regs_[rd] = wb & xmask;
  pc_ = nextPc;
  ++instret_;
  info.retired = true;
  return info;
}

unsigned IsaSim::run(unsigned maxSteps, bool stopOnTrap) {
  for (unsigned i = 0; i < maxSteps; ++i) {
    const StepInfo s = step();
    if (stopOnTrap && s.trapped) return i + 1;
  }
  return maxSteps;
}

}  // namespace upec::riscv
