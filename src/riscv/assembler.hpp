// Tiny in-process assembler: a builder API over the RV32I encodings with
// forward-reference label support. The attack programs of the paper
// (Fig. 2) and all test programs are written against this interface.
//
//   Assembler a;
//   a.li(2, 0x40);
//   Label loop = a.newLabel();
//   a.bind(loop);
//   a.addi(3, 3, 1);
//   a.bne(3, 2, loop);
//   std::vector<uint32_t> words = a.finish();
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "riscv/encoding.hpp"

namespace upec::riscv {

using Label = std::size_t;

class Assembler {
 public:
  // --- labels ------------------------------------------------------------
  Label newLabel();
  void bind(Label label);  // binds to the next emitted instruction

  std::uint32_t here() const { return static_cast<std::uint32_t>(words_.size()) * 4; }

  // --- RV32I -------------------------------------------------------------
  void lui(unsigned rd, std::int32_t imm20) { emit(encodeU(imm20, rd, kOpLui)); }
  void auipc(unsigned rd, std::int32_t imm20) { emit(encodeU(imm20, rd, kOpAuipc)); }

  void addi(unsigned rd, unsigned rs1, std::int32_t imm) {
    emit(encodeI(imm, rs1, 0b000, rd, kOpImm));
  }
  void slti(unsigned rd, unsigned rs1, std::int32_t imm) {
    emit(encodeI(imm, rs1, 0b010, rd, kOpImm));
  }
  void sltiu(unsigned rd, unsigned rs1, std::int32_t imm) {
    emit(encodeI(imm, rs1, 0b011, rd, kOpImm));
  }
  void xori(unsigned rd, unsigned rs1, std::int32_t imm) {
    emit(encodeI(imm, rs1, 0b100, rd, kOpImm));
  }
  void ori(unsigned rd, unsigned rs1, std::int32_t imm) {
    emit(encodeI(imm, rs1, 0b110, rd, kOpImm));
  }
  void andi(unsigned rd, unsigned rs1, std::int32_t imm) {
    emit(encodeI(imm, rs1, 0b111, rd, kOpImm));
  }
  void slli(unsigned rd, unsigned rs1, unsigned shamt) {
    emit(encodeI(static_cast<std::int32_t>(shamt & 0x1f), rs1, 0b001, rd, kOpImm));
  }
  void srli(unsigned rd, unsigned rs1, unsigned shamt) {
    emit(encodeI(static_cast<std::int32_t>(shamt & 0x1f), rs1, 0b101, rd, kOpImm));
  }
  void srai(unsigned rd, unsigned rs1, unsigned shamt) {
    emit(encodeI(static_cast<std::int32_t>(0x400 | (shamt & 0x1f)), rs1, 0b101, rd, kOpImm));
  }

  void add(unsigned rd, unsigned rs1, unsigned rs2) { rtype(0, rs2, rs1, 0b000, rd); }
  void sub(unsigned rd, unsigned rs1, unsigned rs2) { rtype(0x20, rs2, rs1, 0b000, rd); }
  void sll(unsigned rd, unsigned rs1, unsigned rs2) { rtype(0, rs2, rs1, 0b001, rd); }
  void slt(unsigned rd, unsigned rs1, unsigned rs2) { rtype(0, rs2, rs1, 0b010, rd); }
  void sltu(unsigned rd, unsigned rs1, unsigned rs2) { rtype(0, rs2, rs1, 0b011, rd); }
  void xor_(unsigned rd, unsigned rs1, unsigned rs2) { rtype(0, rs2, rs1, 0b100, rd); }
  void srl(unsigned rd, unsigned rs1, unsigned rs2) { rtype(0, rs2, rs1, 0b101, rd); }
  void sra(unsigned rd, unsigned rs1, unsigned rs2) { rtype(0x20, rs2, rs1, 0b101, rd); }
  void or_(unsigned rd, unsigned rs1, unsigned rs2) { rtype(0, rs2, rs1, 0b110, rd); }
  void and_(unsigned rd, unsigned rs1, unsigned rs2) { rtype(0, rs2, rs1, 0b111, rd); }

  void lw(unsigned rd, unsigned rs1, std::int32_t offset) {
    emit(encodeI(offset, rs1, 0b010, rd, kOpLoad));
  }
  void sw(unsigned rs2, unsigned rs1, std::int32_t offset) {
    emit(encodeS(offset, rs2, rs1, 0b010, kOpStore));
  }

  void beq(unsigned rs1, unsigned rs2, Label target) { branch(0b000, rs1, rs2, target); }
  void bne(unsigned rs1, unsigned rs2, Label target) { branch(0b001, rs1, rs2, target); }
  void blt(unsigned rs1, unsigned rs2, Label target) { branch(0b100, rs1, rs2, target); }
  void bge(unsigned rs1, unsigned rs2, Label target) { branch(0b101, rs1, rs2, target); }
  void bltu(unsigned rs1, unsigned rs2, Label target) { branch(0b110, rs1, rs2, target); }
  void bgeu(unsigned rs1, unsigned rs2, Label target) { branch(0b111, rs1, rs2, target); }

  void jal(unsigned rd, Label target);
  void j(Label target) { jal(0, target); }
  void jalr(unsigned rd, unsigned rs1, std::int32_t offset) {
    emit(encodeI(offset, rs1, 0b000, rd, kOpJalr));
  }

  void ecall() { emit(0x00000073); }
  void mret() { emit(0x30200073); }
  void nop() { addi(0, 0, 0); }

  void csrrw(unsigned rd, std::uint32_t csr, unsigned rs1) {
    emit(encodeI(static_cast<std::int32_t>(csr), rs1, 0b001, rd, kOpSystem));
  }
  void csrrs(unsigned rd, std::uint32_t csr, unsigned rs1) {
    emit(encodeI(static_cast<std::int32_t>(csr), rs1, 0b010, rd, kOpSystem));
  }
  void rdcycle(unsigned rd) { csrrs(rd, kCsrCycle, 0); }

  // --- pseudo-instructions -------------------------------------------------
  // Loads a full 32-bit constant (lui+addi when needed, addi otherwise).
  void li(unsigned rd, std::int32_t value);
  void mv(unsigned rd, unsigned rs) { addi(rd, rs, 0); }

  void word(std::uint32_t raw) { emit(raw); }

  // Resolves all labels and returns the instruction words.
  std::vector<std::uint32_t> finish();

  std::size_t size() const { return words_.size(); }

 private:
  void emit(std::uint32_t w) { words_.push_back(w); }
  void rtype(std::uint32_t funct7, unsigned rs2, unsigned rs1, std::uint32_t funct3, unsigned rd) {
    emit(encodeR(funct7, rs2, rs1, funct3, rd, kOpReg));
  }
  void branch(std::uint32_t funct3, unsigned rs1, unsigned rs2, Label target);

  struct Fixup {
    std::size_t wordIndex;
    Label label;
    bool isJal;
    std::uint32_t funct3;
    unsigned rs1, rs2, rd;
  };

  std::vector<std::uint32_t> words_;
  std::vector<std::int64_t> labelOffsets_;  // -1 = unbound
  std::vector<Fixup> fixups_;
  bool finished_ = false;
};

}  // namespace upec::riscv
