#include "riscv/assembler.hpp"

#include <cassert>
#include <stdexcept>

namespace upec::riscv {

Label Assembler::newLabel() {
  labelOffsets_.push_back(-1);
  return labelOffsets_.size() - 1;
}

void Assembler::bind(Label label) {
  assert(label < labelOffsets_.size());
  assert(labelOffsets_[label] == -1 && "label bound twice");
  labelOffsets_[label] = static_cast<std::int64_t>(words_.size()) * 4;
}

void Assembler::branch(std::uint32_t funct3, unsigned rs1, unsigned rs2, Label target) {
  fixups_.push_back({words_.size(), target, /*isJal=*/false, funct3, rs1, rs2, 0});
  emit(0);  // patched in finish()
}

void Assembler::jal(unsigned rd, Label target) {
  fixups_.push_back({words_.size(), target, /*isJal=*/true, 0, 0, 0, rd});
  emit(0);
}

void Assembler::li(unsigned rd, std::int32_t value) {
  if (value >= -2048 && value <= 2047) {
    addi(rd, 0, value);
    return;
  }
  // lui loads bits [31:12]; addi sign-extends, so round up when bit 11 set.
  std::int32_t hi = (value + 0x800) >> 12;
  std::int32_t lo = value - (hi << 12);
  lui(rd, hi);
  if (lo != 0) addi(rd, rd, lo);
}

std::vector<std::uint32_t> Assembler::finish() {
  assert(!finished_);
  for (const Fixup& f : fixups_) {
    const std::int64_t target = labelOffsets_.at(f.label);
    if (target < 0) throw std::logic_error("unbound label in assembler");
    const std::int64_t pc = static_cast<std::int64_t>(f.wordIndex) * 4;
    const std::int32_t delta = static_cast<std::int32_t>(target - pc);
    if (f.isJal) {
      assert(delta >= -(1 << 20) && delta < (1 << 20));
      words_[f.wordIndex] = encodeJ(delta, f.rd, kOpJal);
    } else {
      assert(delta >= -(1 << 12) && delta < (1 << 12));
      words_[f.wordIndex] = encodeB(delta, f.rs2, f.rs1, f.funct3, kOpBranch);
    }
  }
  finished_ = true;
  return words_;
}

}  // namespace upec::riscv
