#include "riscv/encoding.hpp"

#include <cstdio>

namespace upec::riscv {

Decoded decode(std::uint32_t raw) {
  Decoded d;
  d.raw = raw;
  d.opcode = raw & 0x7f;
  d.rd = (raw >> 7) & 0x1f;
  d.funct3 = (raw >> 12) & 0x7;
  d.rs1 = (raw >> 15) & 0x1f;
  d.rs2 = (raw >> 20) & 0x1f;
  d.funct7 = (raw >> 25) & 0x7f;

  d.immI = static_cast<std::int32_t>(raw) >> 20;
  d.immS = ((static_cast<std::int32_t>(raw) >> 25) << 5) | static_cast<std::int32_t>(d.rd);
  d.immB = ((static_cast<std::int32_t>(raw) >> 31) << 12) | (((raw >> 7) & 1) << 11) |
           (((raw >> 25) & 0x3f) << 5) | (((raw >> 8) & 0xf) << 1);
  d.immU = raw & 0xfffff000u;
  d.immJ = ((static_cast<std::int32_t>(raw) >> 31) << 20) | (((raw >> 12) & 0xff) << 12) |
           (((raw >> 20) & 1) << 11) | (((raw >> 21) & 0x3ff) << 1);
  d.csr = raw >> 20;
  return d;
}

std::string disassemble(std::uint32_t raw) {
  const Decoded d = decode(raw);
  char buf[96];
  auto fmt = [&](const char* f, auto... args) {
    std::snprintf(buf, sizeof buf, f, args...);
    return std::string(buf);
  };
  switch (d.opcode) {
    case kOpLui:
      return fmt("lui x%u, 0x%x", d.rd, d.immU >> 12);
    case kOpAuipc:
      return fmt("auipc x%u, 0x%x", d.rd, d.immU >> 12);
    case kOpJal:
      return fmt("jal x%u, %d", d.rd, d.immJ);
    case kOpJalr:
      return fmt("jalr x%u, %d(x%u)", d.rd, d.immI, d.rs1);
    case kOpBranch: {
      static const char* names[8] = {"beq", "bne", "?", "?", "blt", "bge", "bltu", "bgeu"};
      return fmt("%s x%u, x%u, %d", names[d.funct3], d.rs1, d.rs2, d.immB);
    }
    case kOpLoad:
      return fmt("lw x%u, %d(x%u)", d.rd, d.immI, d.rs1);
    case kOpStore:
      return fmt("sw x%u, %d(x%u)", d.rs2, d.immS, d.rs1);
    case kOpImm: {
      static const char* names[8] = {"addi", "slli", "slti", "sltiu", "xori", "sr_i", "ori", "andi"};
      if (d.funct3 == 0b101) {
        return fmt("%s x%u, x%u, %d", d.funct7 ? "srai" : "srli", d.rd, d.rs1, d.immI & 0x1f);
      }
      return fmt("%s x%u, x%u, %d", names[d.funct3], d.rd, d.rs1, d.immI);
    }
    case kOpReg: {
      static const char* names[8] = {"add", "sll", "slt", "sltu", "xor", "srl", "or", "and"};
      const char* name = names[d.funct3];
      if (d.funct7 == 0x20) name = (d.funct3 == 0) ? "sub" : "sra";
      return fmt("%s x%u, x%u, x%u", name, d.rd, d.rs1, d.rs2);
    }
    case kOpSystem:
      if (d.funct3 == 0) {
        if (d.raw == 0x00000073) return "ecall";
        if (d.raw == 0x30200073) return "mret";
        return fmt("system 0x%08x", d.raw);
      }
      return fmt("csr[%u] op f3=%u rd=x%u rs1=x%u", d.csr, d.funct3, d.rd, d.rs1);
    case kOpMiscMem:
      return "fence";
    default:
      return fmt(".word 0x%08x", raw);
  }
}

}  // namespace upec::riscv
