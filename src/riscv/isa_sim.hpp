// Instruction-set-architecture level reference simulator.
//
// This is the golden model for the RTL core in src/soc: it executes the
// same RV32I subset with M/U privilege modes and TOR-mode physical memory
// protection (PMP), but with no microarchitecture at all (no pipeline, no
// cache, no timing). The RTL core is differential-tested against it, and
// examples use it to show that vulnerable and secure designs are
// *architecturally* indistinguishable — the whole point of the paper is
// that covert channels live below this abstraction level.
//
// The data-path width (XLEN) and the number of implemented registers are
// configurable so the same machine definition serves the small formal
// models and the larger simulation demos.
#pragma once

#include <cstdint>
#include <vector>

#include "riscv/encoding.hpp"

namespace upec::riscv {

struct MachineConfig {
  unsigned xlen = 32;        // 8..32
  unsigned nregs = 32;       // power of two, >= 8
  unsigned imemWords = 256;  // instruction memory size (32-bit words)
  unsigned dmemWords = 256;  // data memory size (XLEN-wide words)
  unsigned pmpEntries = 2;   // TOR-mode entries implemented
  bool pmpLockBug = false;   // reproduce the RocketChip lock-bypass bug

  std::uint32_t xlenMask() const {
    return xlen >= 32 ? 0xffffffffu : ((1u << xlen) - 1);
  }
  unsigned physAddrBits() const {  // byte-address width of data space
    unsigned b = 2;
    while ((1u << (b - 2)) < dmemWords) ++b;
    return b;
  }
  std::uint32_t physAddrMask() const { return (1u << physAddrBits()) - 1; }
  unsigned pcBits() const {
    unsigned b = 2;
    while ((1u << (b - 2)) < imemWords) ++b;
    return b;
  }
  std::uint32_t pcMask() const { return (1u << pcBits()) - 1; }
};

enum class Mode : std::uint8_t { kUser = 0, kMachine = 3 };

// Result of one instruction step.
struct StepInfo {
  bool trapped = false;
  std::uint32_t trapCause = 0;
  bool retired = false;  // instruction completed architecturally
  std::uint32_t pc = 0;  // pc of the executed instruction
};

class IsaSim {
 public:
  explicit IsaSim(const MachineConfig& config);

  void reset();

  // Program / data loading.
  void loadProgram(const std::vector<std::uint32_t>& words, std::uint32_t baseWord = 0);
  void setDmemWord(std::uint32_t wordAddr, std::uint32_t value);
  std::uint32_t dmemWord(std::uint32_t wordAddr) const;

  StepInfo step();
  // Runs up to maxSteps instructions; stops early (returning the count
  // executed) if a trap occurs and stopOnTrap is set.
  unsigned run(unsigned maxSteps, bool stopOnTrap = false);

  // --- architectural state --------------------------------------------
  std::uint32_t reg(unsigned i) const { return regs_[i]; }
  void setReg(unsigned i, std::uint32_t v);
  std::uint32_t pc() const { return pc_; }
  void setPc(std::uint32_t pc) { pc_ = pc & config_.pcMask() & ~3u; }
  Mode mode() const { return mode_; }
  void setMode(Mode m) { mode_ = m; }
  std::uint64_t instret() const { return instret_; }

  std::uint32_t csr(std::uint32_t addr) const;
  void setCsr(std::uint32_t addr, std::uint32_t value);  // backdoor, no locks

  // PMP access check exposed for tests: true = access permitted.
  bool pmpAllows(std::uint32_t byteAddr, bool isWrite, Mode mode) const;
  // True iff a CSR write to pmpaddr[i] is currently blocked by a lock
  // (directly or via a locked TOR entry above — unless the bug is enabled).
  bool pmpAddrWriteLocked(unsigned i) const;

  const MachineConfig& config() const { return config_; }

 private:
  void trap(std::uint32_t cause);
  std::uint32_t csrReadForInstr(std::uint32_t addr, bool* illegal) const;
  void csrWriteForInstr(std::uint32_t addr, std::uint32_t value, bool* illegal);

  MachineConfig config_;
  std::vector<std::uint32_t> regs_;
  std::uint32_t pc_ = 0;
  Mode mode_ = Mode::kMachine;
  std::vector<std::uint32_t> imem_;
  std::vector<std::uint32_t> dmem_;

  // CSRs.
  std::uint32_t mtvec_ = 0, mepc_ = 0, mcause_ = 0;
  std::uint64_t mcycle_ = 0;
  std::uint64_t instret_ = 0;
  std::vector<std::uint8_t> pmpcfg_;
  std::vector<std::uint32_t> pmpaddr_;  // word-granule addresses (addr >> 2)
};

}  // namespace upec::riscv
