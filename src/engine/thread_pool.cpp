#include "engine/thread_pool.hpp"

#include <cassert>

#include "obs/trace.hpp"

namespace upec::engine {

namespace {
// Identifies the pool and worker index of the current thread. A raw pointer
// comparison suffices: worker threads outlive every task they run.
thread_local const WorkStealingPool* tlPool = nullptr;
thread_local unsigned tlWorker = WorkStealingPool::kNotAWorker;
}  // namespace

WorkStealingPool::WorkStealingPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) workers_.push_back(std::make_unique<Worker>());
  for (unsigned i = 0; i < threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { workerLoop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  wait();
  {
    std::lock_guard<std::mutex> lock(sleepMutex_);
    stopping_ = true;
  }
  sleepCv_.notify_all();
  for (auto& w : workers_) w->thread.join();
}

unsigned WorkStealingPool::currentWorker() { return tlWorker; }

void WorkStealingPool::submit(std::function<void()> task) { enqueue(std::move(task), false); }

void WorkStealingPool::submitPriority(std::function<void()> task) {
  enqueue(std::move(task), true);
}

void WorkStealingPool::enqueue(std::function<void()> task, bool stealFirst) {
  unsigned target;
  {
    // Account the task before it becomes visible in any deque: a worker
    // may pop it the instant it lands, and its decrements must not
    // underflow the counters or let wait() return early.
    std::lock_guard<std::mutex> lock(sleepMutex_);
    ++queued_;
    ++unfinished_;
    if (tlPool == this) {
      target = tlWorker;  // subtask: keep it local, let idle workers steal it
    } else {
      target = nextVictim_;
      nextVictim_ = (nextVictim_ + 1) % numThreads();
    }
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    // The top of the deque is where thieves take from; the bottom is the
    // owner's LIFO end. A steal-first task goes on top so it is the first
    // thing an idle worker grabs.
    if (stealFirst) {
      workers_[target]->deque.push_front(std::move(task));
    } else {
      workers_[target]->deque.push_back(std::move(task));
    }
  }
  sleepCv_.notify_one();
}

bool WorkStealingPool::tryRun(unsigned self) {
  std::function<void()> task;
  unsigned victim = self;

  // Own deque, bottom (most recently pushed).
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.deque.empty()) {
      task = std::move(w.deque.back());
      w.deque.pop_back();
    }
  }
  // Steal from the top of the others, starting after ourselves so load
  // spreads instead of everyone mobbing worker 0.
  if (!task) {
    const unsigned n = numThreads();
    for (unsigned d = 1; d < n && !task; ++d) {
      const unsigned v = (self + d) % n;
      Worker& w = *workers_[v];
      std::lock_guard<std::mutex> lock(w.mutex);
      if (!w.deque.empty()) {
        task = std::move(w.deque.front());
        w.deque.pop_front();
        victim = v;
      }
    }
  }
  if (!task) return false;

  if (victim != self && obs::tracingEnabled()) {
    obs::instant("engine", "pool.steal",
                 "\"worker\":" + std::to_string(self) + ",\"victim\":" + std::to_string(victim));
  }
  {
    std::lock_guard<std::mutex> lock(sleepMutex_);
    --queued_;
  }
  {
    obs::Span span("engine", "pool.task");
    if (span.enabled()) span.arg("worker", self).arg("stolen", victim != self);
    // A task that throws must not take the worker thread down (std::terminate)
    // or leak its `unfinished_` count and wedge wait() forever. Containment
    // belongs in the task bodies (runCampaign turns failures into kError
    // results); this is the last-resort backstop that keeps the pool alive.
    try {
      task();
    } catch (...) {
      uncaught_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  {
    std::lock_guard<std::mutex> lock(sleepMutex_);
    --unfinished_;
    if (unfinished_ == 0) doneCv_.notify_all();
  }
  return true;
}

void WorkStealingPool::workerLoop(unsigned self) {
  tlPool = this;
  tlWorker = self;
  for (;;) {
    if (tryRun(self)) continue;
    obs::Span idle("engine", "pool.idle");
    if (idle.enabled()) idle.arg("worker", self);
    std::unique_lock<std::mutex> lock(sleepMutex_);
    sleepCv_.wait(lock, [this] { return queued_ > 0 || stopping_; });
    if (stopping_ && queued_ == 0) return;
  }
}

void WorkStealingPool::wait() {
  // The task calling wait() would itself count as unfinished, so a worker
  // can never satisfy the predicate for its own pool.
  assert(tlPool != this && "wait() must not be called from inside a pool task");
  std::unique_lock<std::mutex> lock(sleepMutex_);
  doneCv_.wait(lock, [this] { return unfinished_ == 0; });
}

}  // namespace upec::engine
