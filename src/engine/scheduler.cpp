#include "engine/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <exception>
#include <limits>

#include "base/log.hpp"
#include "base/stopwatch.hpp"
#include "engine/checkpoint.hpp"
#include "engine/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "sat/clause_store.hpp"
#include "upec/miter.hpp"

namespace upec::engine {

namespace {

// Per-attempt accumulation: conflicts/propagations/exchange flow are
// per-solve deltas and sum across attempts; vars/clauses are session
// cumulative counts, so only the peaks are tracked here — sumVars is added
// once per *window* (closeWindow), or retries would re-count the whole
// session encoding and inflate the encode-saving metric.
void accumulate(JobResult& res, const formal::BmcStats& stats) {
  res.peakVars = std::max(res.peakVars, stats.vars);
  res.peakClauses = std::max(res.peakClauses, stats.clauses);
  res.totalConflicts += stats.conflicts;
  res.totalPropagations += stats.propagations;
  res.totalClausesExported += stats.clausesExported;
  res.totalClausesImported += stats.clausesImported;
  res.totalClausesDropped += stats.clausesDropped;
  res.totalPropagateTimeNs += stats.propagateTimeNs;
  res.totalAnalyzeTimeNs += stats.analyzeTimeNs;
  res.totalReduceTimeNs += stats.reduceTimeNs;
  res.totalRestartTimeNs += stats.restartTimeNs;
  res.totalImportedUsedInPropagation += stats.importedUsedInPropagation;
  res.totalImportedUsedInConflict += stats.importedUsedInConflict;
  if (stats.encodedFromCache) res.encodedFromCache = true;
}

void insertUnique(std::vector<std::string>& into, const std::vector<std::string>& names) {
  for (const std::string& n : names) {
    if (std::find(into.begin(), into.end(), n) == into.end()) into.push_back(n);
  }
}

void recordWin(JobResult& res, const std::string& solvedBy) {
  if (solvedBy.empty()) return;
  for (auto& [name, wins] : res.solverWins) {
    if (name == solvedBy) {
      ++wins;
      return;
    }
  }
  res.solverWins.emplace_back(solvedBy, 1u);
}

}  // namespace

LadderScheduler::LadderScheduler(const JobSpec& spec, sat::MemberGovernor* governor,
                                 ConflictLedger* ledger, obs::CampaignObserver* observer,
                                 CheckpointStore* checkpoint, sat::ClauseStore* clauseStore)
    : spec_(spec),
      policy_(spec.reschedule),
      ledger_(ledger),
      observer_(observer),
      checkpoint_(checkpoint) {
  assert(spec.kind == JobKind::kIntervalLadder &&
         "the reschedule scheduler drives ladder jobs only");
  // The store speaks through the sharing exchange, and only an incremental
  // session's learnts stay obligation-free (a monolithic solve resolves
  // against the window's hard violation big-or — see sat/clause_store.hpp).
  if (clauseStore != nullptr && spec_.sharing && spec_.mode == DeepeningMode::kIncremental) {
    store_ = clauseStore;
    storeFamily_ = clauseFamilyKey(spec_);
    storeConsumer_ = "job" + std::to_string(spec_.id);
  }
  res_.id = spec_.id;
  res_.label = spec_.label;
  res_.rescheduleEnabled = policy_.enabled;
  res_.verdict = Verdict::kProven;

  Stopwatch buildTimer;
  miter_ = std::make_unique<Miter>(spec_.config, spec_.secretWord);
  if (spec_.reduction) {
    // Pre-reduction baseline, so the reduction summary logged by the first
    // check has a reference point in the same log.
    logInfo("job " + spec_.label + ": miter " + miter_->design().stats().pretty());
  }
  engine_ = std::make_unique<UpecEngine>(*miter_, resolveJobOptions(spec_, governor));
  excluded_ = spec_.excludedFromCommitment;
  if (spec_.architecturalOnly) {
    const std::set<std::string> micro = engine_->allMicroNames();
    excluded_.insert(micro.begin(), micro.end());
  }
  res_.wallMs += buildTimer.elapsedMs();

  baseBudget_ = policy_.enabled && policy_.initialBudget != 0
                    ? policy_.initialBudget
                    : spec_.options.conflictBudget;
  // maxBudget clamps every attempt, the first one included — otherwise an
  // initialBudget above the clamp would make retries *descend*.
  if (policy_.enabled && policy_.maxBudget != 0) {
    baseBudget_ = std::min(baseBudget_, policy_.maxBudget);
  }
  budget_ = baseBudget_;
  // A job-level conflictCeiling holds even inside a campaign: the private
  // ledger gates this job's retries alongside the shared campaign one.
  // Skip it when the shared ledger already carries the same ceiling (the
  // campaign-injected-policy case) — one gate is enough there.
  if (policy_.enabled && policy_.conflictCeiling != 0 &&
      (ledger_ == nullptr || ledger_->ceiling() != policy_.conflictCeiling)) {
    ownLedger_ = std::make_unique<ConflictLedger>(policy_.conflictCeiling);
  }
  k_ = spec_.kMin;
  // Checkpoint resume: adopt the contiguous prefix of cached verdicts
  // before any solving. Replayed records are not re-journaled — the resume
  // appends to the journal that already holds them.
  for (const ReplayedWindow& rw : spec_.replayWindows) {
    if (done_ || rw.window.window != k_) break;  // only a gapless prefix replays
    replayWindow(rw);
  }
  if (!done_) done_ = k_ > spec_.kMax;
}

void LadderScheduler::replayWindow(const ReplayedWindow& rw) {
  res_.windows.push_back(rw.window);
  const WindowResult& w = res_.windows.back();
  accumulate(res_, w.stats);
  res_.sumVars += w.stats.vars;
  if (w.verdict != Verdict::kUnknown) recordWin(res_, w.stats.solvedBy);
  res_.verdict = mergeVerdicts(res_.verdict, w.verdict);
  insertUnique(res_.pAlertRegisters, rw.pAlertRegisters);
  if (w.verdict == Verdict::kUnknown) res_.undecidedWindows.push_back(k_);
  ++res_.replayedWindows;
  emitWindowEvent(observer_, spec_.id, spec_.label, w, /*replayed=*/true);
  if (w.verdict == Verdict::kLAlert) {
    res_.lAlertRegisters = rw.lAlertRegisters;
    done_ = true;  // the cached leak is the ladder's answer, as it was live
    return;
  }
  ++k_;
}

LadderScheduler::~LadderScheduler() = default;

std::uint64_t LadderScheduler::escalate(std::uint64_t budget) const {
  constexpr std::uint64_t kCap = std::numeric_limits<std::uint64_t>::max();
  const double grown = static_cast<double>(budget) * policy_.budgetGrowth;
  // Saturate before converting: a double >= 2^64 (or negative/NaN, from a
  // nonsensical budgetGrowth) makes the cast undefined, and a wrapped
  // budget of 0 would mean "unlimited". 2^63 is exactly representable and
  // already beyond any reachable conflict count.
  std::uint64_t next = 0;
  if (grown >= 9223372036854775808.0) {
    next = kCap;
  } else if (grown > 0.0) {
    next = static_cast<std::uint64_t>(grown);
  }
  if (next <= budget) next = budget == kCap ? kCap : budget + 1;  // keep making progress
  if (policy_.maxBudget != 0) next = std::min(next, policy_.maxBudget);
  return next;
}

void LadderScheduler::runSegment() {
  obs::Span span("engine", "ladder.segment");
  if (span.enabled()) span.arg("job", spec_.label).arg("k", k_);
  retryPending_ = false;
  while (!done_ && !retryPending_) attemptWindow();
  if (span.enabled()) span.arg("deferred", retryPending_);
}

bool LadderScheduler::admitRetry() const {
  return (ledger_ == nullptr || ledger_->admit()) &&
         (ownLedger_ == nullptr || ownLedger_->admit());
}

void LadderScheduler::chargeRetry(std::uint64_t conflicts) {
  if (ledger_ != nullptr) ledger_->charge(conflicts);
  if (ownLedger_ != nullptr) ownLedger_->charge(conflicts);
}

void LadderScheduler::seedFromStore() {
  if (store_ == nullptr) return;
  // The per-consumer cursor makes repeated calls cheap: only clauses
  // promoted (by any job of the family) since the last fetch — plus
  // previously-skipped ones that became depth-eligible — come back.
  const std::vector<std::vector<sat::Lit>> fetched =
      store_->fetch(storeFamily_, storeConsumer_, k_);
  if (fetched.empty()) return;
  std::vector<std::vector<int>> codes;
  codes.reserve(fetched.size());
  for (const std::vector<sat::Lit>& clause : fetched) {
    std::vector<int> c;
    c.reserve(clause.size());
    for (const sat::Lit lit : clause) c.push_back(lit.code());
    codes.push_back(std::move(c));
  }
  engine_->seedExchange(codes);
  res_.storeSeededClauses += codes.size();
  if (obs::metricsEnabled()) {
    obs::metrics().counter("engine.clause_store.seeded").add(codes.size());
  }
}

void LadderScheduler::attemptWindow() {
  if (attempt_ > 0 && !admitRetry()) {
    // The ceiling was spent while this retry sat in the queue (another
    // job's admitted retry charged it first): abandon the window with the
    // verdict its last attempt produced instead of overshooting further.
    ++res_.reschedulesAbandoned;
    closeWindow(lastResult_);
    return;
  }

  obs::Span span("engine", "ladder.attempt");
  if (span.enabled()) {
    span.arg("job", spec_.label).arg("k", k_).arg("attempt", attempt_).arg("budget", budget_);
  }
  seedFromStore();
  Stopwatch attemptTimer;
  engine_->setConflictBudget(budget_);
  UpecResult r;
  // Failure containment: a check that throws (a solver bug, or an injected
  // fault) closes the window as kError with the diagnostic instead of
  // unwinding into the pool — the job ends, the campaign continues.
  try {
    r = engine_->check(k_, excluded_);
  } catch (const std::exception& ex) {
    const double failedMs = attemptTimer.elapsedMs();
    windowWallMs_ += failedMs;
    res_.wallMs += failedMs;
    r.verdict = Verdict::kError;
    res_.error = ex.what();
    if (span.enabled()) span.arg("verdict", "error");
    closeWindow(r);
    return;
  }
  const double elapsed = attemptTimer.elapsedMs();
  windowWallMs_ += elapsed;
  res_.wallMs += elapsed;
  if (span.enabled()) {
    span.arg("verdict", verdictName(r.verdict)).arg("conflicts", r.stats.conflicts);
  }
  if (obs::metricsEnabled()) {
    obs::metrics()
        .histogram("campaign.solve_us.k" + std::to_string(k_))
        .observe(static_cast<std::uint64_t>(r.stats.solveMs * 1e3));
    if (budget_ != 0) {
      // How much of the attempt's conflict budget the solve actually used —
      // a budget sized well above the ladder's needs shows up as a
      // low-percentile pile-up here, a starved one as a spike at 100.
      obs::metrics()
          .histogram("campaign.budget_utilization_pct")
          .observe(std::min<std::uint64_t>(100, r.stats.conflicts * 100 / budget_));
    }
    // Solver-depth profiling fold (profileSolver jobs only — the fields are
    // all zero otherwise, and zero-valued names are not registered so the
    // default metrics block is unchanged).
    if (r.stats.propagateTimeNs + r.stats.analyzeTimeNs + r.stats.reduceTimeNs +
            r.stats.restartTimeNs !=
        0) {
      obs::metrics().counter("solver.profile.propagate_us").add(r.stats.propagateTimeNs / 1000);
      obs::metrics().counter("solver.profile.analyze_us").add(r.stats.analyzeTimeNs / 1000);
      obs::metrics().counter("solver.profile.reduce_db_us").add(r.stats.reduceTimeNs / 1000);
      obs::metrics().counter("solver.profile.restart_us").add(r.stats.restartTimeNs / 1000);
    }
    if (r.stats.importedUsedInPropagation != 0) {
      obs::metrics()
          .counter("exchange.imported_used_propagation")
          .add(r.stats.importedUsedInPropagation);
    }
    if (r.stats.importedUsedInConflict != 0) {
      obs::metrics().counter("exchange.imported_used_conflict").add(r.stats.importedUsedInConflict);
    }
  }

  accumulate(res_, r.stats);
  if (attempt_ > 0) {
    ++res_.rescheduleAttempts;  // retry attempts that actually solved
    res_.rescheduleConflicts += r.stats.conflicts;
    chargeRetry(r.stats.conflicts);
  }
  if (policy_.enabled) {
    attempts_.push_back({budget_, r.verdict, r.stats.conflicts, r.stats.solveMs});
  }

  // A deadline-expired window is never rescheduled: the budget measures
  // search effort (a retry with more is meaningful), the deadline caps
  // latency (a retry would re-break it).
  if (policy_.enabled && r.verdict == Verdict::kUnknown && r.budgetExhausted &&
      !r.deadlineExpired) {
    // A same-budget re-entry (maxBudget clamp) only makes progress in an
    // incremental session, where learnt clauses persist between attempts
    // and resume a further-along search. A monolithic attempt re-encodes
    // from scratch, so repeating the deterministic search at the same
    // budget provably changes nothing — abandon instead.
    const std::uint64_t next = escalate(budget_);
    const bool progress = next > budget_ || spec_.mode == DeepeningMode::kIncremental;
    if (attempt_ < policy_.maxReschedules && progress && admitRetry()) {
      // Defer the window: escalate the budget and hand the retry back to
      // the caller as a schedulable work item. Admission is re-checked
      // when the retry runs — concurrent jobs may drain the ledger in
      // between.
      lastResult_ = r;
      ++attempt_;
      budget_ = next;
      retryPending_ = true;
      if (observer_ != nullptr) {
        obs::StreamEvent e("reschedule");
        e.num("job", spec_.id).num("k", k_).num("attempt", attempt_).num("budget", budget_);
        observer_->onEvent(e);
      }
      return;
    }
    ++res_.reschedulesAbandoned;  // retries exhausted, no progress possible,
                                  // or ceiling spent
  }
  closeWindow(r);
}

void LadderScheduler::closeWindow(const UpecResult& r) {
  WindowResult w;
  w.window = k_;
  w.verdict = r.verdict;
  w.stats = r.stats;
  w.wallMs = windowWallMs_;
  w.attempts = std::move(attempts_);
  w.budgetExhausted = r.verdict == Verdict::kUnknown && r.budgetExhausted;
  w.deadlineExpired = r.verdict == Verdict::kUnknown && r.deadlineExpired;
  res_.windows.push_back(std::move(w));
  res_.sumVars += r.stats.vars;  // once per window, not per attempt
  const WindowResult& closed = res_.windows.back();
  // Exactly one "window" line per ladder rung, mirroring the window entry
  // the terminal report will carry (tests and the CI validator cross-check
  // the two).
  emitWindowEvent(observer_, spec_.id, spec_.label, closed, /*replayed=*/false);
  if (checkpoint_ != nullptr) {
    // The window is a closed fact now: journal it so a killed run resumes
    // here instead of re-solving. kError windows are skipped inside the
    // store: a fault is re-tried, not replayed.
    checkpoint_->recordWindow(spec_.id, closed, r.differingMicro, r.differingArch);
  }
  if (spec_.sharing && closed.verdict != Verdict::kError &&
      (checkpoint_ != nullptr || store_ != nullptr)) {
    // One exchange snapshot feeds both persistence seams: the journal
    // (each snapshot SUPERSEDES the job's previous line — the load keeps
    // only the last, so resume and warm start re-seed identically) and
    // the campaign clause store (depth-tagged k_: the survivors resolved
    // against this window's hard units, so they are only fetched back at
    // depths >= k_).
    constexpr std::size_t kLearntSnapshotCap = 256;
    const auto learnts = engine_->exchangeSnapshot(kLearntSnapshotCap);
    if (!learnts.empty()) {
      if (checkpoint_ != nullptr) checkpoint_->recordLearnts(spec_.id, k_, learnts);
      if (store_ != nullptr) {
        std::vector<std::vector<sat::Lit>> lits;
        lits.reserve(learnts.size());
        for (const std::vector<int>& codes : learnts) {
          std::vector<sat::Lit> clause;
          clause.reserve(codes.size());
          for (const int code : codes) clause.push_back(sat::Lit::fromCode(code));
          lits.push_back(std::move(clause));
        }
        store_->promote(storeFamily_, k_,
                        std::span<const std::vector<sat::Lit>>(lits.data(), lits.size()));
        res_.storePromotedClauses += lits.size();
        if (obs::metricsEnabled()) {
          obs::metrics().counter("engine.clause_store.promoted_offers").add(lits.size());
        }
      }
    }
  }

  // Budget-exhausted checks were not answered by anyone — no win to record.
  if (r.verdict != Verdict::kUnknown && r.verdict != Verdict::kError) {
    recordWin(res_, r.stats.solvedBy);
  }
  res_.verdict = mergeVerdicts(res_.verdict, r.verdict);
  insertUnique(res_.pAlertRegisters, r.differingMicro);
  if (attempt_ > 0) {
    ++res_.windowsRescheduled;
    if (r.verdict != Verdict::kUnknown && r.verdict != Verdict::kError) {
      ++res_.windowsDecidedByRetry;
    }
  }
  if (r.verdict == Verdict::kUnknown) res_.undecidedWindows.push_back(k_);

  if (r.verdict == Verdict::kError) {
    done_ = true;  // containment: the job ends at the failed window
    return;
  }
  if (r.verdict == Verdict::kLAlert) {
    res_.lAlertRegisters = r.differingArch;
    done_ = true;  // a real leak is the ladder's answer; deeper windows add nothing
    return;
  }
  attempts_.clear();
  windowWallMs_ = 0.0;
  attempt_ = 0;
  budget_ = baseBudget_;
  ++k_;
  if (k_ > spec_.kMax) done_ = true;
}

JobResult LadderScheduler::takeResult() {
  assert(done_ && "takeResult() requires a finished ladder");
  const unsigned worker = WorkStealingPool::currentWorker();
  res_.worker = worker == WorkStealingPool::kNotAWorker ? 0 : worker;
  if (spec_.reduction) res_.reduction = engine_->reductionStats();
  return std::move(res_);
}

}  // namespace upec::engine
