// Campaign progress aggregation for live introspection: a wrapping
// CampaignObserver that folds the event stream into a snapshot the
// obs::StatusServer can serve as /status JSON — windows decided vs. total
// per job, the current ladder rung, reschedule pressure, checkpoint replay
// counts, and an ETA extrapolated from the solve times seen so far.
//
// Layering: obs transports events and knows nothing about jobs; this
// tracker lives in engine because it understands the campaign's shape
// (ladders have kMax-kMin+1 windows, methodology/hunt jobs do not announce
// a window count up front). It sits *between* the engine and the user's
// observer: runCampaign wraps CampaignOptions::observer in a tracker when
// statusPort is set, and every event is forwarded unchanged — attaching
// the tracker never alters the stream the user's sink receives, and it
// never touches solver threads (all state comes from the events the
// workers already emit, folded under one mutex on the emitting thread).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "engine/job.hpp"
#include "obs/observer.hpp"

namespace upec::engine {

class ConflictLedger;

class ProgressTracker : public obs::CampaignObserver {
 public:
  // `next` (not owned, may be null) receives every event after it is
  // folded in; `eventTailCap` bounds the NDJSON tail kept for /events.
  explicit ProgressTracker(obs::CampaignObserver* next = nullptr,
                           std::size_t eventTailCap = 256);

  // Seeds the per-job table before the campaign starts. Ladder jobs get an
  // expected window total of kMax-kMin+1; methodology/hunt jobs solve an
  // unpredictable number of windows (early exit on alert), so they count
  // toward jobs only — their windows fold into the totals as they arrive.
  void prime(const std::vector<JobSpec>& jobs);

  // Optional: lets /status report campaign-wide retry-budget burn. The
  // ledger must outlive the tracker; its accessors are atomic reads.
  void attachLedger(const ConflictLedger* ledger) { ledger_ = ledger; }

  void onEvent(const obs::StreamEvent& event) override;

  // The /status body: one JSON object, schema documented in
  // src/obs/README.md. Safe to call from any thread at any time.
  std::string statusJson() const;

  // The /events body: the most recent events as NDJSON lines (bounded by
  // eventTailCap), oldest first.
  std::string eventsTail() const;

  // Cheap struct view of the headline numbers, for tests that assert on
  // progress without parsing JSON.
  struct Snapshot {
    std::uint64_t jobsTotal = 0;
    std::uint64_t jobsDone = 0;
    std::uint64_t windowsDecided = 0;
    std::uint64_t windowsTotal = 0;
    std::uint64_t windowsReplayed = 0;
    std::uint64_t reschedules = 0;
    double etaMs = 0.0;
    bool done = false;
  };
  Snapshot snapshot() const;

 private:
  struct JobProgress {
    std::uint32_t id = 0;
    std::string label;
    std::uint64_t kMin = 0;   // first ladder rung (prices remaining windows)
    std::uint64_t decided = 0;
    std::uint64_t total = 0;  // 0 = unknown up front (methodology/hunt)
    std::uint64_t rung = 0;   // k of the last window event seen
    bool done = false;
    std::string verdict;  // final verdict once done
  };

  double etaMsLocked() const;  // requires mutex_

  obs::CampaignObserver* next_;
  const ConflictLedger* ledger_ = nullptr;
  const std::size_t tailCap_;

  mutable std::mutex mutex_;
  std::vector<JobProgress> jobs_;
  std::uint64_t threads_ = 0;
  std::uint64_t reschedules_ = 0;
  std::uint64_t replayedWindows_ = 0;
  std::uint64_t checkpointReplayedWindows_ = 0;
  std::uint64_t checkpointReplayedJobs_ = 0;
  bool checkpointSeen_ = false;
  bool started_ = false;
  bool done_ = false;
  double startEpochMs_ = 0.0;  // Stopwatch::sinceEpochUs()/1000 at campaign_start
  double wallMs_ = 0.0;        // final wall time once campaign_end arrives
  // Per-k solve-time sample means feed the ETA: remaining windows at known
  // rungs are priced at their rung's mean, unknown ones at the overall
  // mean. Indexed by k, grown on demand.
  struct KStats {
    std::uint64_t count = 0;
    double sumMs = 0.0;
  };
  std::vector<KStats> perK_;
  std::uint64_t solveCount_ = 0;
  double solveSumMs_ = 0.0;
  std::deque<std::string> tail_;
};

}  // namespace upec::engine
