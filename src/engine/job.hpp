// Verification campaign jobs: one cell of the paper's sweep matrix
// (secret scenario × constraint toggles × window ladder), plus its result.
//
// The paper's methodology (Fig. 5) and its evaluation tables are really a
// *batch* of UPEC interval checks. A JobSpec is the self-contained
// description of one such check sequence: it names the SoC configuration,
// the UPEC options, how deep to walk the window and whether the ladder is
// solved monolithically (fresh solver per window, the seed behaviour) or
// incrementally (one solver reused across depths; see
// formal::BmcEngine::checkIncremental). Jobs are independent by
// construction — each owns a private Miter and sat::Solver when it runs —
// which is what makes the campaign embarrassingly parallel.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "soc/config.hpp"
#include "upec/upec.hpp"

namespace upec::engine {

// How a ladder job advances through window depths.
enum class DeepeningMode {
  kMonolithic,   // fresh solver per window (re-encode from scratch)
  kIncremental,  // one solver; frames extended, learnt clauses kept
};
const char* deepeningModeName(DeepeningMode m);

// What a job runs.
enum class JobKind {
  kIntervalLadder,  // UPEC checks at k = kMin..kMax, fixed exclusion set
  kMethodology,     // full Fig. 5 methodology driver up to kMax
  kHunt,            // abort-early vulnerability hunt (Def. 6) up to kMax
};
const char* jobKindName(JobKind k);

struct JobSpec {
  std::uint32_t id = 0;
  std::string label;

  soc::SocConfig config;
  std::uint32_t secretWord = 0;

  UpecOptions options;  // scenario, constraint toggles, conflict budget
  JobKind kind = JobKind::kIntervalLadder;
  DeepeningMode mode = DeepeningMode::kIncremental;
  unsigned kMin = 1;
  unsigned kMax = 4;

  // Portfolio solving: race this many diversified solver configurations per
  // check, first answer wins (see sat::PortfolioSolver). 0/1 = the single
  // default backend. Overrides options.portfolio when non-zero.
  unsigned portfolio = 0;
  // Cooperative portfolio: members share learnt clauses through a
  // sat::ClauseExchange (verdict-preserving; see src/sat/README.md). Only
  // meaningful when a portfolio races.
  bool sharing = false;

  // Ladder jobs only: register names dropped from the proof obligation
  // (e.g. UpecEngine::allMicroNames() for an L-alert hunt).
  std::set<std::string> excludedFromCommitment;
  // Ladder jobs: additionally drop every microarchitectural pair from the
  // commitment (the architectural-only obligation of Def. 6); the name set
  // is resolved against the job's own miter at run time.
  bool architecturalOnly = false;
};

// One rung of a ladder job.
struct WindowResult {
  unsigned window = 0;
  Verdict verdict = Verdict::kUnknown;
  formal::BmcStats stats;  // per-solve effort; vars/clauses see BmcStats doc
  double wallMs = 0.0;
};

struct JobResult {
  std::uint32_t id = 0;
  std::string label;
  Verdict verdict = Verdict::kUnknown;  // most severe over the job's life

  std::vector<WindowResult> windows;             // ladder jobs
  std::optional<MethodologyReport> methodology;  // methodology / hunt jobs
  std::vector<std::string> lAlertRegisters;
  std::vector<std::string> pAlertRegisters;

  double wallMs = 0.0;
  unsigned worker = 0;  // pool worker index that ran the job

  // Aggregated solver effort across the job's checks.
  std::uint64_t peakVars = 0;
  std::uint64_t peakClauses = 0;
  std::uint64_t totalConflicts = 0;
  std::uint64_t totalPropagations = 0;
  // Learnt-clause exchange flow across the job's checks (sharing jobs).
  std::uint64_t totalClausesExported = 0;
  std::uint64_t totalClausesImported = 0;
  std::uint64_t totalClausesDropped = 0;
  // Portfolio attribution (ladder jobs): how many checks each solver
  // configuration answered first, keyed by the config's description. A
  // single-backend job reports all its checks under the default config.
  std::vector<std::pair<std::string, unsigned>> solverWins;

  // Sum of the per-check variable counts. For a monolithic ladder this is
  // the total number of CNF variables ever created (each check pays for its
  // whole window again); for an incremental ladder the total ever created
  // is peakVars (one session, frames shared). Comparing incremental
  // peakVars against monolithic sumVars is the encode-side saving of
  // deepening — see bench/campaign.cpp.
  std::uint64_t sumVars = 0;
};

// Severity order for merging verdicts: L-alert > unknown > P-alert > proven.
// (An unknown outranks a P-alert: it may hide an L-alert.)
Verdict mergeVerdicts(Verdict a, Verdict b);

// Runs one job to completion on the calling thread. Exposed for tests and
// for running campaigns without a pool. A non-null governor caps the job's
// portfolio member threads campaign-wide (see engine::ThreadGovernor);
// runCampaign passes its own when CampaignOptions::solverThreadCap is set.
JobResult runJob(const JobSpec& spec, sat::MemberGovernor* governor = nullptr);

}  // namespace upec::engine
