// Verification campaign jobs: one cell of the paper's sweep matrix
// (secret scenario × constraint toggles × window ladder), plus its result.
//
// The paper's methodology (Fig. 5) and its evaluation tables are really a
// *batch* of UPEC interval checks. A JobSpec is the self-contained
// description of one such check sequence: it names the SoC configuration,
// the UPEC options, how deep to walk the window and whether the ladder is
// solved monolithically (fresh solver per window, the seed behaviour) or
// incrementally (one solver reused across depths; see
// formal::BmcEngine::checkIncremental). Jobs are independent by
// construction — each owns a private Miter and sat::Solver when it runs —
// which is what makes the campaign embarrassingly parallel.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "soc/config.hpp"
#include "upec/upec.hpp"

namespace upec::obs {
class CampaignObserver;
}

namespace upec::sat {
class ClauseStore;
}

namespace upec::engine {

// How a ladder job advances through window depths.
enum class DeepeningMode {
  kMonolithic,   // fresh solver per window (re-encode from scratch)
  kIncremental,  // one solver; frames extended, learnt clauses kept
};
const char* deepeningModeName(DeepeningMode m);

// What a job runs.
enum class JobKind {
  kIntervalLadder,  // UPEC checks at k = kMin..kMax, fixed exclusion set
  kMethodology,     // full Fig. 5 methodology driver up to kMax
  kHunt,            // abort-early vulnerability hunt (Def. 6) up to kMax
};
const char* jobKindName(JobKind k);

// Escalation ladder for budget-exhausted windows (ladder jobs only). When
// enabled, a window whose check returns kUnknown on conflict-budget
// exhaustion is not a terminal verdict: the window is re-entered with a
// `budgetGrowth`-times larger budget, up to `maxReschedules` retries per
// window. Inside a campaign the retries are requeued as their own work
// items so idle workers pick them up while cheap first-pass windows keep
// flowing (see runCampaign); a standalone runJob retries inline. Off by
// default — the default path stays bit-identical to the unscheduled walk.
struct ReschedulePolicy {
  bool enabled = false;
  // First-attempt conflict budget; 0 = the job's UpecOptions::conflictBudget.
  std::uint64_t initialBudget = 0;
  double budgetGrowth = 4.0;   // budget multiplier per retry (> 1)
  unsigned maxReschedules = 3; // retries per window beyond the first attempt
  std::uint64_t maxBudget = 0; // per-attempt budget clamp (0 = unclamped)
  // Total conflicts spendable on retry attempts before pending retries are
  // abandoned (0 = unlimited; see ConflictLedger). On
  // CampaignOptions::reschedule this is accounted campaign-wide across all
  // rescheduled jobs; on a job's own policy it bounds that job's retries —
  // inside a campaign both gates apply.
  std::uint64_t conflictCeiling = 0;
};

// One solve attempt at one window of a rescheduled ladder.
struct WindowAttempt {
  std::uint64_t conflictBudget = 0;  // budget of this attempt (0 = unlimited)
  Verdict verdict = Verdict::kUnknown;
  std::uint64_t conflicts = 0;
  double solveMs = 0.0;
};

// One rung of a ladder job.
struct WindowResult {
  unsigned window = 0;
  Verdict verdict = Verdict::kUnknown;
  formal::BmcStats stats;  // per-solve effort of the FINAL attempt
  double wallMs = 0.0;     // summed over all attempts at this window
  // Escalation trail, first attempt included, in budget order. Only
  // populated for reschedule-enabled jobs (empty otherwise, keeping the
  // default report unchanged).
  std::vector<WindowAttempt> attempts;
  // Final attempt returned kUnknown on budget exhaustion (the window was
  // abandoned undecided after the policy's retries ran out).
  bool budgetExhausted = false;
  // Final attempt returned kUnknown because the per-solve wall-clock
  // deadline expired. Terminal: never rescheduled (a latency cap is not
  // restored by retrying; see UpecOptions::solveDeadlineMs).
  bool deadlineExpired = false;
};

// One window re-adopted from a checkpoint journal on resume: the cached
// result plus the per-window register names the journal preserved so the
// job-level alert sets reconstruct exactly.
struct ReplayedWindow {
  WindowResult window;
  std::vector<std::string> pAlertRegisters;  // differing micro registers
  std::vector<std::string> lAlertRegisters;  // differing arch (kLAlert only)
};

struct JobSpec {
  std::uint32_t id = 0;
  std::string label;

  soc::SocConfig config;
  std::uint32_t secretWord = 0;

  UpecOptions options;  // scenario, constraint toggles, conflict budget
  JobKind kind = JobKind::kIntervalLadder;
  DeepeningMode mode = DeepeningMode::kIncremental;
  unsigned kMin = 1;
  unsigned kMax = 4;

  // Portfolio solving: race this many diversified solver configurations per
  // check, first answer wins (see sat::PortfolioSolver). 0/1 = the single
  // default backend. Overrides options.portfolio when non-zero.
  unsigned portfolio = 0;
  // Cooperative portfolio: members share learnt clauses through a
  // sat::ClauseExchange (verdict-preserving; see src/sat/README.md). Only
  // meaningful when a portfolio races.
  bool sharing = false;

  // Budget-escalation retries for undecided windows (ladder jobs only;
  // methodology/hunt jobs treat kUnknown per their own driver logic).
  // runCampaign injects CampaignOptions::reschedule here for ladder jobs
  // that do not carry their own enabled policy.
  ReschedulePolicy reschedule;

  // Run the RTL reduction pass pipeline on the miter before encoding (see
  // UpecOptions::reduction and src/rtl/README.md). Off by default — the
  // solver then sees the exact seed netlist, bit-identical trajectory. The
  // pipeline's knobs stay at options.reductionOptions defaults unless the
  // spec's options carry overrides.
  bool reduction = false;

  // Ladder jobs only: register names dropped from the proof obligation
  // (e.g. UpecEngine::allMicroNames() for an L-alert hunt).
  std::set<std::string> excludedFromCommitment;
  // Ladder jobs: additionally drop every microarchitectural pair from the
  // commitment (the architectural-only obligation of Def. 6); the name set
  // is resolved against the job's own miter at run time.
  bool architecturalOnly = false;

  // Checkpoint resume (filled by runCampaign from a loaded journal):
  // windows a previous run of the same job list already decided, in ladder
  // order starting at kMin. The scheduler adopts them verbatim — no miter
  // check, no solver time — and resumes solving at the first window
  // without one. Replayed kUnknown windows stay closed: the previous run
  // already spent their budget (or deadline) and recorded the abandonment.
  std::vector<ReplayedWindow> replayWindows;
};

struct JobResult {
  std::uint32_t id = 0;
  std::string label;
  Verdict verdict = Verdict::kUnknown;  // most severe over the job's life

  std::vector<WindowResult> windows;             // ladder jobs
  std::optional<MethodologyReport> methodology;  // methodology / hunt jobs
  std::vector<std::string> lAlertRegisters;
  std::vector<std::string> pAlertRegisters;

  double wallMs = 0.0;
  unsigned worker = 0;  // pool worker index that ran the job

  // For kError verdicts: what went wrong (the contained exception's
  // message, e.g. an injected fault's). Empty otherwise.
  std::string error;
  // Windows adopted from a checkpoint journal instead of solved (resume).
  unsigned replayedWindows = 0;

  // Aggregated solver effort across the job's checks.
  std::uint64_t peakVars = 0;
  std::uint64_t peakClauses = 0;
  std::uint64_t totalConflicts = 0;
  std::uint64_t totalPropagations = 0;
  // Learnt-clause exchange flow across the job's checks (sharing jobs).
  std::uint64_t totalClausesExported = 0;
  std::uint64_t totalClausesImported = 0;
  std::uint64_t totalClausesDropped = 0;
  // Solver-phase profiling totals across the job's checks (ladder jobs run
  // with UpecOptions::profileSolver; all zero otherwise). Times are wall
  // nanoseconds per CDCL phase summed over portfolio members; the efficacy
  // counters say how many imported exchange clauses were ever useful.
  std::uint64_t totalPropagateTimeNs = 0;
  std::uint64_t totalAnalyzeTimeNs = 0;
  std::uint64_t totalReduceTimeNs = 0;
  std::uint64_t totalRestartTimeNs = 0;
  std::uint64_t totalImportedUsedInPropagation = 0;
  std::uint64_t totalImportedUsedInConflict = 0;
  // Portfolio attribution (ladder jobs): how many checks each solver
  // configuration answered first, keyed by the config's description. A
  // single-backend job reports all its checks under the default config.
  std::vector<std::pair<std::string, unsigned>> solverWins;

  // Sum of the per-check variable counts. For a monolithic ladder this is
  // the total number of CNF variables ever created (each check pays for its
  // whole window again); for an incremental ladder the total ever created
  // is peakVars (one session, frames shared). Comparing incremental
  // peakVars against monolithic sumVars is the encode-side saving of
  // deepening — see bench/campaign.cpp.
  std::uint64_t sumVars = 0;

  // Reschedule accounting (ladder jobs running under a ReschedulePolicy;
  // all zero otherwise). Windows still kUnknown after the policy gave up
  // are listed in undecidedWindows — for an unscheduled ladder job this
  // lists its budget-exhausted windows, which is how a campaign driver can
  // tell what a rescheduling rerun would have to decide.
  bool rescheduleEnabled = false;
  unsigned windowsRescheduled = 0;    // windows that needed >= 1 retry
  unsigned rescheduleAttempts = 0;    // total retry attempts across windows
  unsigned windowsDecidedByRetry = 0; // retried windows that reached a verdict
  unsigned reschedulesAbandoned = 0;  // windows given up (cap / ceiling hit)
  std::uint64_t rescheduleConflicts = 0;  // conflicts spent in retry attempts
  std::vector<unsigned> undecidedWindows; // window depths still kUnknown

  // Campaign cache accounting (CampaignOptions::cache; all zero/false for
  // uncached campaigns — the default path does not touch them).
  // encodedFromCache: the job's incremental session was cloned from the
  // encoding prefix cache instead of unrolling and Tseitin-encoding cold.
  bool encodedFromCache = false;
  // Clauses fetched from the campaign clause store into this job's
  // exchange before solve attempts, and window-close exchange survivors
  // this job offered to the store (pre-dedup — the store's own stats say
  // how many were new).
  std::uint64_t storeSeededClauses = 0;
  std::uint64_t storePromotedClauses = 0;

  // RTL reduction summary (ladder jobs running with JobSpec::reduction;
  // absent otherwise). Stats of the job's last pipeline run — for a ladder
  // with a fixed exclusion set that is the one reduced model every window
  // was checked against.
  std::optional<rtl::ReductionStats> reduction;
};

// Severity order for merging verdicts:
// L-alert > error > unknown > P-alert > proven.
// (An unknown outranks a P-alert: it may hide an L-alert. An error
// outranks an unknown — the check did not even run to its budget — but a
// found leak still dominates: it is a definitive answer.)
Verdict mergeVerdicts(Verdict a, Verdict b);

class ConflictLedger;  // engine/scheduler.hpp — campaign-wide retry budget
class CheckpointStore;  // engine/checkpoint.hpp — crash-safe journal

// The UpecOptions a job actually runs with: the spec's options with the
// deepening mode, portfolio, sharing and governor folded in. Shared between
// runJob and the reschedule scheduler so both paths stay byte-identical.
UpecOptions resolveJobOptions(const JobSpec& spec, sat::MemberGovernor* governor);

// The sat::ClauseStore family key of a job: jobs with equal keys produce
// bit-identical CNF encodings (same variable numbering, same hard unit
// set), so learnt clauses promoted by one are sound consequences inside
// any other — they may only differ in solver knobs (portfolio shape,
// budgets, rescheduling, profiling). The key folds everything the encoded
// formula depends on: the SoC config + secret word, the scenario and
// constraint toggles, the init-equality mode, and — because they change
// the obligation encoding's variable allocation — the exclusion set and
// reduction options. Deliberately conservative: a collision would be
// unsound, a split merely misses reuse.
std::string clauseFamilyKey(const JobSpec& spec);

// Runs one job to completion on the calling thread (a reschedule-enabled
// ladder job performs its escalation retries inline). Exposed for tests and
// for running campaigns without a pool. A non-null governor caps the job's
// portfolio member threads campaign-wide (see engine::ThreadGovernor); a
// non-null ledger charges retry attempts against a shared conflict ceiling
// (runCampaign passes its campaign-wide one). A non-null observer receives
// the job's window/reschedule events plus a completion event — see
// obs/observer.hpp. A non-null checkpoint store receives the ladder's
// closed windows and learnt snapshots (runCampaign passes its journal). A
// job whose execution throws is contained as a kError result with the
// message in JobResult::error — runJob does not leak exceptions. A
// non-null clauseStore lets a sharing incremental ladder seed its
// exchange from (and promote its window-close survivors into) the
// campaign clause store (see sat/clause_store.hpp).
JobResult runJob(const JobSpec& spec, sat::MemberGovernor* governor = nullptr,
                 ConflictLedger* ledger = nullptr,
                 obs::CampaignObserver* observer = nullptr,
                 CheckpointStore* checkpoint = nullptr,
                 sat::ClauseStore* clauseStore = nullptr);

// Emits the {"type":"job",...} completion event for `res` (no-op on a null
// observer). Shared by runJob and runCampaign's requeued-ladder path so the
// two emit identical events.
void emitJobEvent(obs::CampaignObserver* observer, const JobResult& res);

// Emits the {"type":"window",...} stream event for a closed (or, on
// resume, replayed) window. Shared by the ladder scheduler and the
// campaign's resume replay so live and replayed lines carry identical
// fields — the CI validator cross-checks them against the report.
void emitWindowEvent(obs::CampaignObserver* observer, std::uint32_t jobId,
                     const std::string& label, const WindowResult& w, bool replayed);

}  // namespace upec::engine
