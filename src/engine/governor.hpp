// Campaign-wide solver-thread governor.
//
// Portfolio mode multiplies threads: a campaign of W pool workers, each
// racing an M-member portfolio, would run W×M solver threads and thrash a
// machine with fewer cores. The governor closes that hole with a single
// process-wide budget of *member slots*: every portfolio race acquires one
// slot per member before spawning (the racing member on the calling thread
// included) and releases them when the race joins. While some slots are
// free the race degrades gracefully — it runs with however many members it
// was granted, down to just the baseline configuration — rather than
// oversubscribing cores.
//
// acquire() blocks only while *zero* slots are free: the cap is a hard
// ceiling, so when one race holds every slot the next race waits for a
// release (i.e. for some running race's current solve call to join)
// before racing even its baseline member. The wait is bounded and
// deadlock-free: a caller never holds slots while waiting (acquire is the
// only blocking call and it happens before any are held), and every
// holder releases after a finite solve. Choose cap >= workers so such
// full-stall waits stay rare, cap >= workers + members - 1 to rule them
// out entirely. The invariant the tests pin down: the sum of outstanding
// grants — peakInUse() — never exceeds the cap.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "sat/solver_backend.hpp"

namespace upec::engine {

class ThreadGovernor : public sat::MemberGovernor {
 public:
  // cap = maximum racing member threads across the process; 0 = ungoverned
  // (acquire grants every request untracked).
  explicit ThreadGovernor(unsigned cap = 0) : cap_(cap) {}

  unsigned acquire(unsigned want) override;
  void release(unsigned n) override;

  unsigned cap() const { return cap_; }

  // Observability / test hooks.
  unsigned inUse() const;
  unsigned peakInUse() const;
  std::uint64_t acquisitions() const;   // acquire() calls granted
  std::uint64_t degradations() const;   // grants smaller than the request

 private:
  const unsigned cap_;
  mutable std::mutex mutex_;
  std::condition_variable freed_;
  unsigned inUse_ = 0;
  unsigned peak_ = 0;
  std::uint64_t acquisitions_ = 0;
  std::uint64_t degradations_ = 0;
};

}  // namespace upec::engine
