// Crash-safe campaign checkpointing: an append-only NDJSON journal of
// everything a campaign has decided, so a killed sweep resumes instead of
// restarting.
//
// Design: the journal records only *closed* facts — a window whose verdict
// is final, a job that finished, the latest learnt-clause snapshot — one
// JSON line each, appended and flushed as they happen. Append-only means a
// crash can only lose the line being written, never corrupt earlier ones;
// obs::readNdjsonLines drops an unterminated tail, so a torn final write
// is skipped, not mis-parsed. Resume therefore re-solves at most the one
// window that was in flight. The header is written via writeFileAtomic so
// a crash during *creation* leaves either no journal or a valid one.
//
// The authoritative schema reference (all record types, both versions,
// the supersede rule, migration notes) lives in src/engine/README.md
// ("On-disk schemas"). Summary — one object per line; fields beyond
// these are ignored on load, so the format can grow:
//
//   {"type":"header","version":2,"fingerprint":s,"jobs":N}
//   {"type":"window","job":id,"k":N,"verdict":s,"vars":N,"clauses":N,
//    "conflicts":N,"propagations":N,"decisions":N,"encode_ms":x,
//    "solve_ms":x,"wall_ms":x,["solved_by":s,]["budget_exhausted":true,]
//    ["deadline_expired":true,]["p_regs":[s...],]["l_regs":[s...]]}
//   {"type":"learnts","job":id,"k":N,"lits":[i...]}
//                                               (flat sat::Lit codes,
//                                                0-terminated per clause;
//                                                last line per job wins —
//                                                each snapshot SUPERSEDES
//                                                the previous one, it is
//                                                not a delta)
//   {"type":"job","job":id,"verdict":s,"wall_ms":x}
//   {"type":"prefix","hits":N,"misses":N,"insertions":N,"rejected":N}
//   {"type":"budget_hist","undecided":N,"hist":[N...]}
//
// Version history: v1 lacked the "k" depth tag on learnts records and the
// prefix/budget_hist types. v2 readers still load v1 journals — learnts
// records without "k" are conservatively tagged with the owning job's
// kMax (the deepest window the snapshot could have resolved against).
// v1 readers skip the new types as unknown-but-well-formed lines.
//
// The fingerprint hashes the job list's identity (count, ids, labels,
// ladder bounds, kind, mode): a journal only replays against the job list
// that wrote it. kError windows/jobs are never journaled — a fault is a
// property of the run, not of the problem, so resume retries them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/fault.hpp"
#include "engine/job.hpp"

namespace upec::obs {
class NdjsonWriter;
}

namespace upec::engine {

inline constexpr int kCheckpointVersion = 2;
// Oldest journal version this reader still loads (see migration notes in
// src/engine/README.md).
inline constexpr int kMinCheckpointVersion = 1;

// Everything a journal load recovered. Windows are deduplicated per
// (job, k) and jobs per id — first record wins, matching "only closed
// facts are journaled" (a duplicate can only come from a hand-edited
// file). Learnt snapshots keep the *last* line per job: each snapshot
// supersedes the previous one.
struct CheckpointLoad {
  struct JobRecord {
    std::uint32_t job = 0;
    Verdict verdict = Verdict::kUnknown;
    double wallMs = 0.0;
  };
  struct WindowRecord {
    std::uint32_t job = 0;
    ReplayedWindow window;
  };
  struct LearntRecord {
    std::uint32_t job = 0;
    // Deepest window the snapshot's clauses resolved against: they are
    // only sound to re-seed at depths >= this. v1 records carry no tag
    // and are loaded with the owning job's kMax (conservative).
    unsigned depth = 0;
    std::vector<std::vector<int>> clauses;  // sat::Lit codes, split per clause
  };
  std::vector<WindowRecord> windows;
  std::vector<JobRecord> jobs;
  std::vector<LearntRecord> learnts;
  // Non-fatal oddities met while reading (torn tail skipped, malformed
  // line stopped the scan, injected corruption). Forwarded into the
  // campaign report so a resume documents what it recovered from.
  std::vector<std::string> diagnostics;
};

// What a *finished* campaign's journal contributes to the next run: the
// final learnt snapshots (to seed the clause store) and the budget
// histogram (to prime the reschedule policy). Read-only — loading a warm
// start never reopens or appends to the donor journal.
struct WarmStart {
  std::vector<CheckpointLoad::LearntRecord> learnts;
  // hist[i] = windows decided on reschedule attempt i; written once at
  // campaign end. hasBudgetHist distinguishes "absent" from "all zero".
  bool hasBudgetHist = false;
  std::vector<std::uint64_t> decidedByAttempt;
  std::uint64_t undecidedWindows = 0;
  std::vector<std::string> diagnostics;
};

// The journal handle. Thread-safe once open: record* calls come from pool
// workers and serialise through the writer's mutex. A write failure
// (injected or real — disk full) is *sticky*: journaling stops, the
// campaign itself continues, and writeFailed() reports it so the run's
// report carries the warning. Crash-safety degrades to "restart from the
// last good line"; correctness of the live campaign is unaffected.
class CheckpointStore {
 public:
  // `faults` (optional, not owned) routes writes through the injector;
  // `syncEveryLine` adds an fsync per journal line (power-loss paranoia —
  // plain flush already survives SIGKILL).
  explicit CheckpointStore(std::string path, FaultInjector* faults = nullptr,
                          bool syncEveryLine = false);
  ~CheckpointStore();
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  // Identity hash (FNV-1a over count + per-job id/label/kMin/kMax/
  // kind/mode) binding a journal to its job list.
  static std::string fingerprint(std::span<const JobSpec> jobs);

  // Starts a fresh journal: header written atomically, then the file is
  // held open for appends. Returns false (store unusable) when the path
  // cannot be written.
  bool openFresh(std::span<const JobSpec> jobs);

  // Loads an existing journal and reopens it for appending (no second
  // header). On success `out` carries the replayable records plus any
  // diagnostics. Fails — returning false with the reason in
  // out.diagnostics, store not opened — when the file is missing, the
  // header is absent/incompatible, or the fingerprint does not match
  // `jobs`; the caller falls back to openFresh. A malformed line mid-file
  // is non-fatal: the scan stops there and everything before it replays.
  bool openResume(std::span<const JobSpec> jobs, CheckpointLoad& out);

  // Read-only load of a (typically finished) journal from a *previous*
  // run: final learnt snapshots plus the budget histogram, for cross-run
  // exchange seeding and budget priming. The fingerprint must match
  // `jobs` — learnt codes are meaningless against a different job list.
  // Never opens the file for appending; the donor journal is untouched.
  static bool loadWarmStart(const std::string& path, std::span<const JobSpec> jobs,
                            WarmStart& out);

  bool isOpen() const { return writer_ != nullptr; }
  const std::string& path() const { return path_; }
  bool writeFailed() const { return writeFailed_.load(std::memory_order_relaxed); }

  // Journal one closed ladder window with its per-window register names.
  // No-op for kError verdicts (see header comment) or after a write
  // failure.
  void recordWindow(std::uint32_t job, const WindowResult& w,
                    const std::vector<std::string>& pRegs,
                    const std::vector<std::string>& lRegs);
  // Journal the job's current learnt-clause snapshot (flat sat::Lit
  // codes), tagged with the deepest window `k` it resolved against.
  //
  // Supersede rule: the journal keeps appending, but on load only the
  // LAST learnts line per job survives — each snapshot is the complete
  // replacement for the previous one, never a delta. This is what makes
  // a resumed run and a fresh warm-started run re-seed the exchange with
  // the identical clause set: both see exactly the final snapshot.
  void recordLearnts(std::uint32_t job, unsigned k,
                     const std::vector<std::vector<int>>& clauses);
  // Journal a finished job (no-op for kError).
  void recordJob(const JobResult& res);
  // Journal the campaign's final prefix-cache counters (informational;
  // loaders skip it).
  void recordPrefixStats(std::uint64_t hits, std::uint64_t misses, std::uint64_t insertions,
                         std::uint64_t rejected);
  // Journal the decided-by-attempt histogram + undecided-window count at
  // campaign end; the next run's warm start primes its reschedule
  // budgets from it. Last line wins on load. The campaign only writes it
  // when there is budget experience to donate (rescheduling ran, or
  // windows stayed undecided) — so the record's absence means "nothing
  // learnt", never "crashed before the end".
  void recordBudgetHist(std::uint64_t undecided, std::span<const std::uint64_t> decidedByAttempt);

 private:
  bool writeLine(const std::string& line);

  std::string path_;
  FaultInjector* faults_;
  bool sync_;
  std::unique_ptr<obs::NdjsonWriter> writer_;
  std::atomic<bool> writeFailed_{false};
};

}  // namespace upec::engine
