#include "engine/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "base/log.hpp"
#include "obs/observer.hpp"

namespace upec::engine {

namespace {

// --- serialisation -------------------------------------------------------
// Same defensive escaping as the report writer: journal strings are
// register/config names, but a hostile job label must not corrupt a line.

void appendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendMs(std::string& out, double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  out += buf;
}

void appendStringArray(std::string& out, const char* key,
                       const std::vector<std::string>& names) {
  if (names.empty()) return;
  out += ",\"";
  out += key;
  out += "\":[";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) out += ',';
    appendJsonString(out, names[i]);
  }
  out += ']';
}

// --- parsing -------------------------------------------------------------

// Minimal reader for the journal's records: one flat object of string /
// number / bool / homogeneous-array values, no nesting. Unknown keys are
// kept (and ignored by callers), so the schema can grow without breaking
// old readers. Deliberately not a general JSON parser — exactly the
// grammar this file writes.
class FlatRecord {
 public:
  explicit FlatRecord(const std::string& line) { ok_ = parse(line); }
  bool ok() const { return ok_; }

  std::string str(const std::string& key, std::string fallback = {}) const {
    auto it = strings_.find(key);
    return it == strings_.end() ? std::move(fallback) : it->second;
  }
  double num(const std::string& key, double fallback = 0.0) const {
    auto it = numbers_.find(key);
    return it == numbers_.end() ? fallback : it->second;
  }
  std::uint64_t uint(const std::string& key, std::uint64_t fallback = 0) const {
    auto it = numbers_.find(key);
    if (it == numbers_.end() || it->second < 0.0) return fallback;
    return static_cast<std::uint64_t>(it->second);
  }
  bool flag(const std::string& key) const {
    auto it = bools_.find(key);
    return it != bools_.end() && it->second;
  }
  std::vector<long long> intArray(const std::string& key) const {
    auto it = intArrays_.find(key);
    return it == intArrays_.end() ? std::vector<long long>{} : it->second;
  }
  std::vector<std::string> strArray(const std::string& key) const {
    auto it = strArrays_.find(key);
    return it == strArrays_.end() ? std::vector<std::string>{} : it->second;
  }

 private:
  void skipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\r' || *p_ == '\n')) ++p_;
  }

  bool parseString(std::string& out) {
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    out.clear();
    while (p_ < end_ && *p_ != '"') {
      const char c = *p_++;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p_ >= end_) return false;
      const char e = *p_++;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (end_ - p_ < 4) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // The writer only \u-escapes control characters; anything beyond
          // ASCII in an escape is not ours.
          if (code >= 0x80) return false;
          out += static_cast<char>(code);
          break;
        }
        default: return false;
      }
    }
    if (p_ >= end_) return false;
    ++p_;  // closing quote
    return true;
  }

  bool parseNumber(double& out) {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    while (p_ < end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
                         *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    if (p_ == start) return false;
    out = std::strtod(std::string(start, p_).c_str(), nullptr);
    return true;
  }

  bool parse(const std::string& line) {
    p_ = line.data();
    end_ = line.data() + line.size();
    skipWs();
    if (p_ >= end_ || *p_ != '{') return false;
    ++p_;
    skipWs();
    if (p_ < end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      skipWs();
      std::string key;
      if (!parseString(key)) return false;
      skipWs();
      if (p_ >= end_ || *p_ != ':') return false;
      ++p_;
      skipWs();
      if (p_ >= end_) return false;
      if (*p_ == '"') {
        std::string v;
        if (!parseString(v)) return false;
        strings_[key] = std::move(v);
      } else if (*p_ == 't' || *p_ == 'f') {
        if (end_ - p_ >= 4 && std::equal(p_, p_ + 4, "true")) {
          bools_[key] = true;
          p_ += 4;
        } else if (end_ - p_ >= 5 && std::equal(p_, p_ + 5, "false")) {
          bools_[key] = false;
          p_ += 5;
        } else {
          return false;
        }
      } else if (*p_ == '[') {
        ++p_;
        skipWs();
        std::vector<long long> ints;
        std::vector<std::string> strs;
        const bool ofStrings = p_ < end_ && *p_ == '"';
        if (p_ < end_ && *p_ == ']') {
          ++p_;
        } else {
          while (true) {
            skipWs();
            if (ofStrings) {
              std::string v;
              if (!parseString(v)) return false;
              strs.push_back(std::move(v));
            } else {
              double v = 0.0;
              if (!parseNumber(v)) return false;
              ints.push_back(static_cast<long long>(v));
            }
            skipWs();
            if (p_ >= end_) return false;
            if (*p_ == ',') {
              ++p_;
              continue;
            }
            if (*p_ == ']') {
              ++p_;
              break;
            }
            return false;
          }
        }
        if (ofStrings) {
          strArrays_[key] = std::move(strs);
        } else {
          intArrays_[key] = std::move(ints);
        }
      } else {
        double v = 0.0;
        if (!parseNumber(v)) return false;
        numbers_[key] = v;
      }
      skipWs();
      if (p_ >= end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        break;
      }
      return false;
    }
    return true;
  }

  const char* p_ = nullptr;
  const char* end_ = nullptr;
  bool ok_ = false;
  std::map<std::string, std::string> strings_;
  std::map<std::string, double> numbers_;
  std::map<std::string, bool> bools_;
  std::map<std::string, std::vector<long long>> intArrays_;
  std::map<std::string, std::vector<std::string>> strArrays_;
};

CheckpointLoad::LearntRecord parseLearnts(const FlatRecord& rec, unsigned fallbackDepth) {
  CheckpointLoad::LearntRecord lr;
  lr.job = static_cast<std::uint32_t>(rec.uint("job"));
  // v1 lines have no "k": tag them with the deepest window the owning
  // job could have reached — sound (never reused too shallow), at worst
  // over-conservative.
  lr.depth = static_cast<unsigned>(rec.uint("k", fallbackDepth));
  std::vector<int> clause;
  for (const long long code : rec.intArray("lits")) {
    if (code == 0) {
      if (!clause.empty()) lr.clauses.push_back(std::move(clause));
      clause.clear();
    } else {
      clause.push_back(static_cast<int>(code));
    }
  }
  return lr;
}

std::map<std::uint32_t, unsigned> jobDepthMap(std::span<const JobSpec> jobs) {
  std::map<std::uint32_t, unsigned> depths;
  for (const JobSpec& j : jobs) depths[j.id] = j.kMax;
  return depths;
}

bool parseVerdict(const std::string& name, Verdict& out) {
  if (name == "proven") out = Verdict::kProven;
  else if (name == "P-alert") out = Verdict::kPAlert;
  else if (name == "L-alert") out = Verdict::kLAlert;
  else if (name == "unknown") out = Verdict::kUnknown;
  else if (name == "error") out = Verdict::kError;
  else return false;
  return true;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string path, FaultInjector* faults, bool syncEveryLine)
    : path_(std::move(path)), faults_(faults), sync_(syncEveryLine) {}

CheckpointStore::~CheckpointStore() = default;

std::string CheckpointStore::fingerprint(std::span<const JobSpec> jobs) {
  // FNV-1a over the job list's identity. Only fields that change what a
  // cached (job, k) verdict *means* participate: option tweaks that keep
  // the same ladder produce the same answer, so they may differ between
  // the writing and the resuming run (e.g. a different budget).
  std::uint64_t h = 1469598103934665603ull;
  auto mixByte = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  auto mixNum = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mixByte(static_cast<unsigned char>(v >> (8 * i)));
  };
  auto mixStr = [&](const std::string& s) {
    for (const char c : s) mixByte(static_cast<unsigned char>(c));
    mixByte(0x1f);  // separator: {"ab","c"} != {"a","bc"}
  };
  mixNum(jobs.size());
  for (const JobSpec& j : jobs) {
    mixNum(j.id);
    mixStr(j.label);
    mixNum(j.kMin);
    mixNum(j.kMax);
    mixNum(static_cast<std::uint64_t>(j.kind));
    mixNum(static_cast<std::uint64_t>(j.mode));
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

bool CheckpointStore::openFresh(std::span<const JobSpec> jobs) {
  std::string header = "{\"type\":\"header\",\"version\":" + std::to_string(kCheckpointVersion) +
                       ",\"fingerprint\":";
  appendJsonString(header, fingerprint(jobs));
  header += ",\"jobs\":" + std::to_string(jobs.size()) + "}\n";
  // Atomic creation: a crash here leaves either no journal or a complete
  // header — never a file that half-parses on the next resume.
  if (!obs::writeFileAtomic(path_, header)) return false;
  writer_ = std::make_unique<obs::NdjsonWriter>(path_, obs::NdjsonWriter::Mode::kAppend, sync_);
  if (!writer_->ok()) {
    writer_.reset();
    return false;
  }
  return true;
}

bool CheckpointStore::openResume(std::span<const JobSpec> jobs, CheckpointLoad& out) {
  std::vector<std::string> lines;
  bool torn = false;
  if (!obs::readNdjsonLines(path_, lines, &torn)) {
    out.diagnostics.push_back("checkpoint: cannot open " + path_);
    return false;
  }
  if (torn) {
    out.diagnostics.push_back(
        "checkpoint: final line had no terminator (write cut short); skipped");
  }
  if (faults_ != nullptr && faults_->corruptLoad() && !lines.empty()) {
    lines.pop_back();
    out.diagnostics.push_back("checkpoint: fault injection dropped the journal tail");
  }
  if (lines.empty()) {
    out.diagnostics.push_back("checkpoint: journal is empty");
    return false;
  }

  const FlatRecord header(lines.front());
  if (!header.ok() || header.str("type") != "header") {
    out.diagnostics.push_back("checkpoint: missing or malformed header");
    return false;
  }
  const std::uint64_t version = header.uint("version");
  if (version < static_cast<std::uint64_t>(kMinCheckpointVersion) ||
      version > static_cast<std::uint64_t>(kCheckpointVersion)) {
    out.diagnostics.push_back("checkpoint: journal version " + std::to_string(version) +
                              " outside supported range [" +
                              std::to_string(kMinCheckpointVersion) + ", " +
                              std::to_string(kCheckpointVersion) + "]");
    return false;
  }
  if (header.str("fingerprint") != fingerprint(jobs)) {
    out.diagnostics.push_back(
        "checkpoint: job-list fingerprint mismatch — journal written by a different campaign");
    return false;
  }
  const std::map<std::uint32_t, unsigned> depths = jobDepthMap(jobs);

  std::set<std::pair<std::uint32_t, unsigned>> seenWindows;
  std::set<std::uint32_t> seenJobs;
  std::map<std::uint32_t, std::size_t> learntIndex;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const FlatRecord rec(lines[i]);
    bool good = rec.ok();
    const std::string type = good ? rec.str("type") : std::string();
    if (good && type == "window") {
      Verdict v = Verdict::kUnknown;
      good = parseVerdict(rec.str("verdict"), v);
      if (good) {
        CheckpointLoad::WindowRecord wr;
        wr.job = static_cast<std::uint32_t>(rec.uint("job"));
        WindowResult& w = wr.window.window;
        w.window = static_cast<unsigned>(rec.uint("k"));
        w.verdict = v;
        w.stats.vars = rec.uint("vars");
        w.stats.clauses = rec.uint("clauses");
        w.stats.conflicts = rec.uint("conflicts");
        w.stats.propagations = rec.uint("propagations");
        w.stats.decisions = rec.uint("decisions");
        w.stats.encodeMs = rec.num("encode_ms");
        w.stats.solveMs = rec.num("solve_ms");
        w.stats.solvedBy = rec.str("solved_by");
        w.wallMs = rec.num("wall_ms");
        w.budgetExhausted = rec.flag("budget_exhausted");
        w.deadlineExpired = rec.flag("deadline_expired");
        wr.window.pAlertRegisters = rec.strArray("p_regs");
        wr.window.lAlertRegisters = rec.strArray("l_regs");
        if (seenWindows.insert({wr.job, w.window}).second) {
          out.windows.push_back(std::move(wr));
        }
      }
    } else if (good && type == "learnts") {
      const std::uint32_t job = static_cast<std::uint32_t>(rec.uint("job"));
      const auto dit = depths.find(job);
      CheckpointLoad::LearntRecord lr =
          parseLearnts(rec, dit == depths.end() ? 0u : dit->second);
      const auto it = learntIndex.find(lr.job);
      if (it == learntIndex.end()) {
        learntIndex.emplace(lr.job, out.learnts.size());
        out.learnts.push_back(std::move(lr));
      } else {
        out.learnts[it->second] = std::move(lr);  // newest snapshot wins
      }
    } else if (good && type == "job") {
      CheckpointLoad::JobRecord jr;
      jr.job = static_cast<std::uint32_t>(rec.uint("job"));
      good = parseVerdict(rec.str("verdict"), jr.verdict);
      jr.wallMs = rec.num("wall_ms");
      if (good && seenJobs.insert(jr.job).second) out.jobs.push_back(jr);
    }
    // Unknown-but-well-formed types are skipped (forward compatibility).
    if (!good) {
      // A line that fails to parse means everything after it is suspect
      // (the journal is append-only, so damage cannot be local): keep the
      // records before it, resume re-solves the rest.
      out.diagnostics.push_back("checkpoint: malformed journal line " + std::to_string(i + 1) +
                                "; replaying only the records before it");
      break;
    }
  }

  writer_ = std::make_unique<obs::NdjsonWriter>(path_, obs::NdjsonWriter::Mode::kAppend, sync_);
  if (!writer_->ok()) {
    writer_.reset();
    out.diagnostics.push_back("checkpoint: cannot reopen " + path_ + " for appending");
    return false;
  }
  return true;
}

bool CheckpointStore::writeLine(const std::string& line) {
  if (writer_ == nullptr || writeFailed_.load(std::memory_order_relaxed)) return false;
  const bool injected = faults_ != nullptr && faults_->nextWriteFails();
  if (injected || !writer_->writeLine(line)) {
    // Sticky: a single lost line would leave a *gap* in an append-only
    // journal — a later resume would silently re-adopt around it. Stop
    // journaling instead; the campaign runs on, the report carries the
    // warning, and crash-safety degrades to the last good line.
    if (!writeFailed_.exchange(true, std::memory_order_relaxed)) {
      logInfo("checkpoint: journal write failed; checkpointing disabled for this run");
    }
    return false;
  }
  return true;
}

void CheckpointStore::recordWindow(std::uint32_t job, const WindowResult& w,
                                   const std::vector<std::string>& pRegs,
                                   const std::vector<std::string>& lRegs) {
  if (w.verdict == Verdict::kError) return;
  std::string line = "{\"type\":\"window\",\"job\":" + std::to_string(job) +
                     ",\"k\":" + std::to_string(w.window) + ",\"verdict\":";
  appendJsonString(line, verdictName(w.verdict));
  line += ",\"vars\":" + std::to_string(w.stats.vars) +
          ",\"clauses\":" + std::to_string(w.stats.clauses) +
          ",\"conflicts\":" + std::to_string(w.stats.conflicts) +
          ",\"propagations\":" + std::to_string(w.stats.propagations) +
          ",\"decisions\":" + std::to_string(w.stats.decisions) + ",\"encode_ms\":";
  appendMs(line, w.stats.encodeMs);
  line += ",\"solve_ms\":";
  appendMs(line, w.stats.solveMs);
  line += ",\"wall_ms\":";
  appendMs(line, w.wallMs);
  if (!w.stats.solvedBy.empty()) {
    line += ",\"solved_by\":";
    appendJsonString(line, w.stats.solvedBy);
  }
  if (w.budgetExhausted) line += ",\"budget_exhausted\":true";
  if (w.deadlineExpired) line += ",\"deadline_expired\":true";
  appendStringArray(line, "p_regs", pRegs);
  appendStringArray(line, "l_regs", lRegs);
  line += '}';
  writeLine(line);
}

void CheckpointStore::recordLearnts(std::uint32_t job, unsigned k,
                                    const std::vector<std::vector<int>>& clauses) {
  if (clauses.empty()) return;
  std::string line = "{\"type\":\"learnts\",\"job\":" + std::to_string(job) +
                     ",\"k\":" + std::to_string(k) + ",\"lits\":[";
  bool first = true;
  for (const std::vector<int>& clause : clauses) {
    for (const int code : clause) {
      if (!first) line += ',';
      first = false;
      line += std::to_string(code);
    }
    if (!first) line += ',';
    first = false;
    line += '0';
  }
  line += "]}";
  writeLine(line);
}

void CheckpointStore::recordJob(const JobResult& res) {
  if (res.verdict == Verdict::kError) return;
  std::string line = "{\"type\":\"job\",\"job\":" + std::to_string(res.id) + ",\"verdict\":";
  appendJsonString(line, verdictName(res.verdict));
  line += ",\"wall_ms\":";
  appendMs(line, res.wallMs);
  line += '}';
  writeLine(line);
}

void CheckpointStore::recordPrefixStats(std::uint64_t hits, std::uint64_t misses,
                                        std::uint64_t insertions, std::uint64_t rejected) {
  std::string line = "{\"type\":\"prefix\",\"hits\":" + std::to_string(hits) +
                     ",\"misses\":" + std::to_string(misses) +
                     ",\"insertions\":" + std::to_string(insertions) +
                     ",\"rejected\":" + std::to_string(rejected) + '}';
  writeLine(line);
}

void CheckpointStore::recordBudgetHist(std::uint64_t undecided,
                                       std::span<const std::uint64_t> decidedByAttempt) {
  std::string line = "{\"type\":\"budget_hist\",\"undecided\":" + std::to_string(undecided) +
                     ",\"hist\":[";
  for (std::size_t i = 0; i < decidedByAttempt.size(); ++i) {
    if (i) line += ',';
    line += std::to_string(decidedByAttempt[i]);
  }
  line += "]}";
  writeLine(line);
}

bool CheckpointStore::loadWarmStart(const std::string& path, std::span<const JobSpec> jobs,
                                    WarmStart& out) {
  std::vector<std::string> lines;
  bool torn = false;
  if (!obs::readNdjsonLines(path, lines, &torn)) {
    out.diagnostics.push_back("warm-start: cannot open " + path);
    return false;
  }
  if (torn) {
    out.diagnostics.push_back("warm-start: donor journal's final line was torn; skipped");
  }
  if (lines.empty()) {
    out.diagnostics.push_back("warm-start: donor journal is empty");
    return false;
  }
  const FlatRecord header(lines.front());
  if (!header.ok() || header.str("type") != "header") {
    out.diagnostics.push_back("warm-start: missing or malformed header");
    return false;
  }
  const std::uint64_t version = header.uint("version");
  if (version < static_cast<std::uint64_t>(kMinCheckpointVersion) ||
      version > static_cast<std::uint64_t>(kCheckpointVersion)) {
    out.diagnostics.push_back("warm-start: journal version " + std::to_string(version) +
                              " outside supported range [" +
                              std::to_string(kMinCheckpointVersion) + ", " +
                              std::to_string(kCheckpointVersion) + "]");
    return false;
  }
  if (header.str("fingerprint") != fingerprint(jobs)) {
    out.diagnostics.push_back(
        "warm-start: job-list fingerprint mismatch — learnt codes from a different campaign "
        "cannot be reused");
    return false;
  }

  const std::map<std::uint32_t, unsigned> depths = jobDepthMap(jobs);
  std::map<std::uint32_t, std::size_t> learntIndex;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const FlatRecord rec(lines[i]);
    if (!rec.ok()) {
      out.diagnostics.push_back("warm-start: malformed journal line " + std::to_string(i + 1) +
                                "; using only the records before it");
      break;
    }
    const std::string type = rec.str("type");
    if (type == "learnts") {
      const std::uint32_t job = static_cast<std::uint32_t>(rec.uint("job"));
      const auto dit = depths.find(job);
      CheckpointLoad::LearntRecord lr =
          parseLearnts(rec, dit == depths.end() ? 0u : dit->second);
      const auto it = learntIndex.find(lr.job);
      if (it == learntIndex.end()) {
        learntIndex.emplace(lr.job, out.learnts.size());
        out.learnts.push_back(std::move(lr));
      } else {
        out.learnts[it->second] = std::move(lr);  // newest snapshot wins
      }
    } else if (type == "budget_hist") {
      out.hasBudgetHist = true;
      out.undecidedWindows = rec.uint("undecided");
      out.decidedByAttempt.clear();
      for (const long long v : rec.intArray("hist")) {
        out.decidedByAttempt.push_back(v < 0 ? 0u : static_cast<std::uint64_t>(v));
      }
    }
    // Everything else (windows, jobs, prefix stats) is irrelevant to a
    // warm start and skipped.
  }
  return true;
}

}  // namespace upec::engine
