// The campaign runner: a batch of UPEC jobs over the work-stealing pool.
//
// A campaign is specified either as an explicit job list or as a
// SweepMatrix — the cross product of secret scenarios and option variants,
// each walked over a window ladder — mirroring how the paper's Tables I/II
// and the Sec. V-A ablations are actually produced. Every job owns a
// private Miter, UpecEngine and sat::Solver, so jobs run lock-free and the
// campaign scales with the hardware.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/fault.hpp"
#include "engine/job.hpp"
#include "engine/report.hpp"

namespace upec::obs {
class CampaignObserver;
}

namespace upec::engine {

struct CampaignOptions {
  unsigned threads = 0;  // 0 = hardware_concurrency

  // Live event stream (not owned; null = off, the default). Receives one
  // event per window verdict, job completion and reschedule escalation,
  // plus campaign start/end markers — see obs/observer.hpp for the schema.
  // Callbacks fire from pool workers; the observer must be thread-safe and
  // outlive runCampaign(). Pure observation: attaching one never changes
  // the campaign's solve trajectory.
  obs::CampaignObserver* observer = nullptr;

  // Campaign-wide cap on racing portfolio member threads (0 = ungoverned).
  // With W pool workers racing M-member portfolios the campaign would run
  // W×M solver threads; a cap makes portfolios degrade member count under
  // pressure instead (see engine::ThreadGovernor). The cap is a hard
  // ceiling: with every slot taken, a worker's next race briefly waits for
  // another race's solve to finish. Choose cap >= threads to keep such
  // waits rare, cap >= threads + portfolio - 1 to rule them out.
  unsigned solverThreadCap = 0;

  // Budget-escalation retries for undecided windows, applied to every
  // ladder job that does not carry its own enabled policy. A retry is
  // requeued as its own work item at the pool's steal end, so idle workers
  // pick up the expensive escalations while cheap first-pass windows keep
  // flowing. The policy's conflictCeiling is enforced campaign-wide (one
  // shared ConflictLedger across all rescheduled jobs). Off by default —
  // the solver trajectory is then bit-identical to an unscheduled campaign.
  ReschedulePolicy reschedule;

  // Crash-safe checkpointing (off while `path` is empty; see
  // engine/checkpoint.hpp for the journal format and replay rules). With
  // `resume` set, an existing journal written by the *same job list* is
  // loaded first: decided windows and finished ladder jobs are adopted
  // without re-solving (streamed with "replayed":true), sharing jobs seed
  // their clause exchange from the persisted learnts, and solving picks up
  // at the first undecided window. An unusable journal (missing, torn
  // header, fingerprint mismatch) degrades to a fresh start with the
  // reason in the report's checkpoint diagnostics — resume never fails a
  // campaign that could run from scratch.
  struct CheckpointOptions {
    std::string path;
    bool resume = false;
    // fsync the journal after every record (power-loss durability; plain
    // flushing already survives SIGKILL).
    bool syncEveryLine = false;
  };
  CheckpointOptions checkpoint;

  // Campaign-persistent caches (all off by default — the solver trajectory
  // is then bit-identical to an uncached campaign; see ROADMAP.md's
  // standing invariant). Everything here is verdict-preserving by
  // construction: the prefix cache replays a deterministic encoding, the
  // clause store only moves logical consequences of the same formula.
  struct CacheOptions {
    // Share the unrolled/Tseitin-encoded miter CNF prefix across jobs.
    // The first incremental session of each (SoC config, secret word,
    // equality mode, reduction shape, first-window depth) equivalence
    // class encodes cold and records; every later one clones the recorded
    // prefix instead of re-encoding (engine/encode_cache.hpp).
    bool prefix = false;
    // Promote each sharing incremental ladder's window-close exchange
    // survivors into a campaign-wide sat::ClauseStore, seeding the later
    // windows of every job in the same encoding family
    // (engine::clauseFamilyKey; depth-scoped — see sat/clause_store.hpp).
    bool clauseStore = false;
    // Checkpoint journal of a *previous finished* run of the same job
    // list: its final learnt snapshots are promoted into the clause store
    // (implicitly enabling it) so this run's exchanges start warm, and
    // its budget histogram can prime the reschedule policy below. An
    // unusable donor journal degrades to a cold start with the reason in
    // the report — never a failed campaign.
    std::string warmStartPath;
    // Pre-size ReschedulePolicy budgets from the warm-start journal's
    // decided-by-attempt histogram: the initial budget is escalated to
    // the rung that decided >= 90% of the previous run's windows (skipping
    // the retries that run would have told us are futile), and
    // maxReschedules grows by one when windows stayed undecided. No-op
    // without warmStartPath, a histogram in the donor journal, and an
    // enabled reschedule policy.
    bool primeBudgets = false;
  };
  CacheOptions cache;

  // Live introspection HTTP endpoint (obs/status_server.hpp): -1 = off
  // (the default), 0 = bind an ephemeral port, >0 = bind that port — on
  // 127.0.0.1 only. When set, runCampaign wraps `observer` in an
  // engine::ProgressTracker and serves /metrics, /status and /events for
  // the campaign's duration. Pure observation: the endpoint reads
  // observer-fed aggregates and the metrics registry, never solver state,
  // so enabling it cannot change any verdict or trajectory. A port that
  // cannot be bound is logged and the campaign proceeds without it.
  int statusPort = -1;

  // Per-solve wall-clock deadline applied to every job that does not set
  // its own UpecOptions::solveDeadlineMs (0 = none). Expiry closes the
  // window as a *terminal* kUnknown — unlike budget exhaustion it is never
  // rescheduled (the budget measures effort, the deadline caps latency).
  std::uint64_t attemptDeadlineMs = 0;

  // Deterministic fault injection for robustness tests (engine/fault.hpp;
  // all off by default). Every fault class must be *contained*: the
  // campaign completes with kError verdicts / report diagnostics, never a
  // crash.
  FaultPlan faults;
};

// The scenario × constraint-toggle × window-depth matrix.
struct SweepMatrix {
  soc::SocConfig config;
  std::uint32_t secretWord = 0;

  std::vector<SecretScenario> scenarios;

  // Constraint-toggle variants. The scenario field of `options` is
  // overwritten per matrix cell; everything else (constraint toggles,
  // budget, structural equality) is taken as-is.
  struct OptionVariant {
    std::string label;
    UpecOptions options;
  };
  std::vector<OptionVariant> variants;

  JobKind kind = JobKind::kIntervalLadder;
  DeepeningMode mode = DeepeningMode::kIncremental;
  unsigned kMin = 1;
  unsigned kMax = 4;
  // Diversified solver configurations raced per check (0/1 = single
  // backend); applied to every job of the matrix. See JobSpec::portfolio.
  unsigned portfolio = 0;
  // Learnt-clause sharing between the racing members (JobSpec::sharing).
  bool sharing = false;
  // Shrink each job's miter with the RTL reduction pass pipeline before
  // encoding (JobSpec::reduction). Verdict-preserving; off by default.
  bool reduce = false;
};

// Expands the matrix into |scenarios| × |variants| labelled jobs.
std::vector<JobSpec> enumerateJobs(const SweepMatrix& matrix);

// Schedules the jobs across the pool and blocks until all have finished.
CampaignReport runCampaign(const std::vector<JobSpec>& jobs,
                           const CampaignOptions& options = {});

inline CampaignReport runCampaign(const SweepMatrix& matrix,
                                  const CampaignOptions& options = {}) {
  return runCampaign(enumerateJobs(matrix), options);
}

}  // namespace upec::engine
