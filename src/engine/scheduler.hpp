// Adaptive rescheduling of budget-exhausted windows.
//
// A campaign decides UPEC obligations window by window under a conflict
// budget, and a budget-exhausted check used to be a terminal per-window
// kUnknown. The scheduler turns it into a *deferred* verdict instead: the
// window becomes a new work item with an escalated budget (a configurable
// ladder, ReschedulePolicy), so a campaign can start every window cheap and
// spend real solver time only where the first pass came back undecided —
// with the retries interleaved across the pool instead of serialising the
// campaign behind its hardest window.
//
// LadderScheduler is the resumable execution of one ladder job: it runs
// solve attempts until either the job is finished or a budget-escalated
// retry is pending, at which point a campaign requeues the continuation
// (WorkStealingPool::submitPriority) and the worker moves on. Re-entry of
// an undecided window goes through the job's persistent incremental BMC
// session: the frames are already unrolled and the obligation's activation
// literal comes out of the Tseitin gate cache, so a retry pays only solver
// time — no re-encoding. Everything here is opt-in: with the policy
// disabled the scheduler replays the classic ladder walk bit-for-bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "engine/job.hpp"

namespace upec::engine {

// Thread-safe accounting of the conflicts spent on retry attempts against a
// ceiling (0 = unlimited). runCampaign shares one ledger across all of its
// rescheduled jobs — the issue-level knob "stop pouring conflicts into
// retries campaign-wide". The ceiling is an admission gate, not a hard
// abort: a retry admitted below the ceiling may overshoot it by at most its
// own attempt budget.
class ConflictLedger {
 public:
  explicit ConflictLedger(std::uint64_t ceiling = 0) : ceiling_(ceiling) {}

  // False once the ceiling is spent: pending retries must be abandoned.
  bool admit() const {
    return ceiling_ == 0 || spent_.load(std::memory_order_relaxed) < ceiling_;
  }
  void charge(std::uint64_t conflicts) {
    spent_.fetch_add(conflicts, std::memory_order_relaxed);
  }
  std::uint64_t spent() const { return spent_.load(std::memory_order_relaxed); }
  std::uint64_t ceiling() const { return ceiling_; }

 private:
  const std::uint64_t ceiling_;
  std::atomic<std::uint64_t> spent_{0};
};

// Resumable execution of one interval-ladder job, one solve attempt at a
// time. The walk pauses at a budget-exhausted window: runSegment() returns
// before the job is done() and the caller decides where the escalated
// attempt runs — runJob simply loops (inline retries), runCampaign requeues
// the continuation onto the pool so idle workers pick it up. Because the
// walk never advances past an open window, the incremental session's
// window lengths stay non-decreasing and re-entry is sound by the same
// argument as ordinary deepening.
//
// Thread-safety: not internally synchronised. One segment at a time; the
// pool's queue mutexes give the necessary happens-before when consecutive
// segments run on different workers.
class LadderScheduler {
 public:
  // Builds the job's private Miter and UpecEngine (the expensive part —
  // construct on the thread that runs the first segment). `governor`,
  // `ledger`, `observer` and `checkpoint` may be null. A
  // ReschedulePolicy::conflictCeiling is enforced by a private job-local
  // ledger that composes with the shared one — a retry must pass both
  // gates. A non-null observer receives one "window" event per closed
  // window and one "reschedule" event per deferred retry (obs/observer.hpp).
  // A non-null checkpoint receives each closed window plus the job's
  // learnt-clause snapshot (sharing jobs); JobSpec::replayWindows are
  // adopted here, before any solving. A non-null clauseStore connects a
  // sharing incremental ladder to the campaign clause store under the
  // job's clauseFamilyKey(): before each window's attempts the scheduler
  // fetches depth-eligible clauses into the exchange, and at window close
  // it promotes the exchange survivors (see sat/clause_store.hpp for the
  // depth-scoping soundness argument).
  explicit LadderScheduler(const JobSpec& spec, sat::MemberGovernor* governor = nullptr,
                           ConflictLedger* ledger = nullptr,
                           obs::CampaignObserver* observer = nullptr,
                           CheckpointStore* checkpoint = nullptr,
                           sat::ClauseStore* clauseStore = nullptr);
  ~LadderScheduler();
  LadderScheduler(const LadderScheduler&) = delete;
  LadderScheduler& operator=(const LadderScheduler&) = delete;

  // Runs solve attempts (a pending retry first, then further windows) until
  // the job completes or the next attempt is a budget-escalated retry —
  // !done() after a segment means exactly that a retry is pending and the
  // caller decides where the next segment runs.
  void runSegment();

  bool done() const { return done_; }

  // Valid once done(): the job result with reschedule stats folded in.
  // Stamps the calling worker as JobResult::worker.
  JobResult takeResult();

 private:
  void attemptWindow();  // one solve attempt at (k_, budget_)
  void closeWindow(const UpecResult& r);
  std::uint64_t escalate(std::uint64_t budget) const;
  bool admitRetry() const;  // both the shared and the job-local gate
  void chargeRetry(std::uint64_t conflicts);

  void replayWindow(const ReplayedWindow& rw);  // adopt a checkpointed verdict
  void seedFromStore();  // fetch depth-eligible store clauses into the exchange

  JobSpec spec_;
  ReschedulePolicy policy_;
  ConflictLedger* ledger_;                     // shared (campaign) ledger, may be null
  obs::CampaignObserver* observer_;            // event stream, may be null
  CheckpointStore* checkpoint_;                // crash-safe journal, may be null
  sat::ClauseStore* store_ = nullptr;          // campaign clause store, may be null
  std::string storeFamily_;                    // clauseFamilyKey(spec), store jobs only
  std::string storeConsumer_;                  // per-job fetch cursor id
  std::unique_ptr<ConflictLedger> ownLedger_;  // job-local policy ceiling, may be null
  std::unique_ptr<Miter> miter_;
  std::unique_ptr<UpecEngine> engine_;
  std::set<std::string> excluded_;

  JobResult res_;
  UpecResult lastResult_;          // most recent attempt at the open window
  unsigned k_ = 0;                 // window being walked
  unsigned attempt_ = 0;           // 0 = first pass, 1.. = retries
  std::uint64_t baseBudget_ = 0;   // first-attempt budget per window
  std::uint64_t budget_ = 0;       // budget of the next attempt
  std::vector<WindowAttempt> attempts_;  // trail of the open window
  double windowWallMs_ = 0.0;            // wall time of the open window
  bool done_ = false;
  bool retryPending_ = false;
};

}  // namespace upec::engine
