#include "engine/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace upec::engine {

void CampaignReport::finalize() {
  overallVerdict = Verdict::kProven;
  numProven = numPAlerts = numLAlerts = numUnknown = numErrors = 0;
  replayedWindows = 0;
  sumJobWallMs = 0.0;
  totalConflicts = totalPropagations = 0;
  peakVars = peakClauses = 0;
  totalClausesExported = totalClausesImported = totalClausesDropped = 0;
  profileEnabled = false;
  totalPropagateTimeNs = totalAnalyzeTimeNs = totalReduceTimeNs = totalRestartTimeNs = 0;
  totalImportedUsedInPropagation = totalImportedUsedInConflict = 0;
  rescheduleEnabled = false;
  windowsRescheduled = rescheduleAttempts = 0;
  windowsDecidedByRetry = reschedulesAbandoned = 0;
  rescheduleConflicts = 0;
  decidedByAttempt.clear();
  reductionEnabled = false;
  reductionJobs = 0;
  reductionNodesBefore = reductionNodesAfter = 0;
  reductionRegistersBefore = reductionRegistersAfter = 0;
  reductionRegistersMerged = reductionConstantsFolded = 0;
  jobsEncodedFromCache = 0;
  storeSeededClauses = storePromotedClauses = 0;
  for (const JobResult& job : jobs) {
    overallVerdict = mergeVerdicts(overallVerdict, job.verdict);
    switch (job.verdict) {
      case Verdict::kProven: ++numProven; break;
      case Verdict::kPAlert: ++numPAlerts; break;
      case Verdict::kLAlert: ++numLAlerts; break;
      case Verdict::kUnknown: ++numUnknown; break;
      case Verdict::kError: ++numErrors; break;
    }
    replayedWindows += job.replayedWindows;
    sumJobWallMs += job.wallMs;
    totalConflicts += job.totalConflicts;
    totalPropagations += job.totalPropagations;
    totalClausesExported += job.totalClausesExported;
    totalClausesImported += job.totalClausesImported;
    totalClausesDropped += job.totalClausesDropped;
    totalPropagateTimeNs += job.totalPropagateTimeNs;
    totalAnalyzeTimeNs += job.totalAnalyzeTimeNs;
    totalReduceTimeNs += job.totalReduceTimeNs;
    totalRestartTimeNs += job.totalRestartTimeNs;
    totalImportedUsedInPropagation += job.totalImportedUsedInPropagation;
    totalImportedUsedInConflict += job.totalImportedUsedInConflict;
    if (job.totalPropagateTimeNs | job.totalAnalyzeTimeNs | job.totalReduceTimeNs |
        job.totalRestartTimeNs) {
      profileEnabled = true;
    }
    peakVars = std::max(peakVars, job.peakVars);
    peakClauses = std::max(peakClauses, job.peakClauses);
    if (job.rescheduleEnabled) {
      rescheduleEnabled = true;
      windowsRescheduled += job.windowsRescheduled;
      rescheduleAttempts += job.rescheduleAttempts;
      windowsDecidedByRetry += job.windowsDecidedByRetry;
      reschedulesAbandoned += job.reschedulesAbandoned;
      rescheduleConflicts += job.rescheduleConflicts;
      for (const WindowResult& w : job.windows) {
        if (w.attempts.empty() || w.verdict == Verdict::kUnknown) continue;
        const std::size_t attempt = w.attempts.size() - 1;
        if (decidedByAttempt.size() <= attempt) decidedByAttempt.resize(attempt + 1, 0u);
        ++decidedByAttempt[attempt];
      }
    }
    if (job.encodedFromCache) ++jobsEncodedFromCache;
    storeSeededClauses += job.storeSeededClauses;
    storePromotedClauses += job.storePromotedClauses;
    if (job.reduction) {
      reductionEnabled = true;
      ++reductionJobs;
      reductionNodesBefore += job.reduction->nodesBefore;
      reductionNodesAfter += job.reduction->nodesAfter;
      reductionRegistersBefore += job.reduction->registersBefore;
      reductionRegistersAfter += job.reduction->registersAfter;
      reductionRegistersMerged += job.reduction->registersMerged;
      reductionConstantsFolded += job.reduction->constantsFolded;
    }
  }
}

namespace {

// Minimal JSON writer: the report's strings are register/scenario names,
// but escape defensively so arbitrary job labels cannot corrupt the output.
void jsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void jsonStringArray(std::ostream& os, const std::vector<std::string>& names) {
  os << '[';
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) os << ',';
    jsonString(os, names[i]);
  }
  os << ']';
}

std::string fmtMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

// Shared shape of the solver-phase timing block at window, job and
// campaign level (times are stored in ns, reported in µs — the resolution
// consumers plot at; sub-µs residue per field is dropped).
void jsonProfile(std::ostream& os, std::uint64_t propagateNs, std::uint64_t analyzeNs,
                 std::uint64_t reduceNs, std::uint64_t restartNs) {
  os << "{\"propagate_us\":" << propagateNs / 1000 << ",\"analyze_us\":" << analyzeNs / 1000
     << ",\"reduce_db_us\":" << reduceNs / 1000 << ",\"restart_us\":" << restartNs / 1000
     << '}';
}

void jsonWindow(std::ostream& os, const WindowResult& w) {
  os << "{\"k\":" << w.window << ",\"verdict\":\"" << verdictName(w.verdict) << '"'
     << ",\"vars\":" << w.stats.vars << ",\"clauses\":" << w.stats.clauses
     << ",\"conflicts\":" << w.stats.conflicts
     << ",\"propagations\":" << w.stats.propagations
     << ",\"decisions\":" << w.stats.decisions
     << ",\"encode_ms\":" << fmtMs(w.stats.encodeMs)
     << ",\"solve_ms\":" << fmtMs(w.stats.solveMs)
     << ",\"wall_ms\":" << fmtMs(w.wallMs);
  if (w.stats.clausesExported | w.stats.clausesImported | w.stats.clausesDropped) {
    os << ",\"clauses_exported\":" << w.stats.clausesExported
       << ",\"clauses_imported\":" << w.stats.clausesImported
       << ",\"clauses_dropped\":" << w.stats.clausesDropped;
  }
  if (w.stats.propagateTimeNs | w.stats.analyzeTimeNs | w.stats.reduceTimeNs |
      w.stats.restartTimeNs) {
    os << ",\"profile\":";
    jsonProfile(os, w.stats.propagateTimeNs, w.stats.analyzeTimeNs, w.stats.reduceTimeNs,
                w.stats.restartTimeNs);
  }
  if (w.stats.importedUsedInPropagation | w.stats.importedUsedInConflict) {
    os << ",\"imported_used_propagation\":" << w.stats.importedUsedInPropagation
       << ",\"imported_used_conflict\":" << w.stats.importedUsedInConflict;
  }
  if (!w.stats.solvedBy.empty()) {
    os << ",\"solved_by\":";
    jsonString(os, w.stats.solvedBy);
  }
  if (w.budgetExhausted) os << ",\"budget_exhausted\":true";
  if (w.deadlineExpired) os << ",\"deadline_expired\":true";
  if (!w.attempts.empty()) {
    os << ",\"attempts\":[";
    for (std::size_t i = 0; i < w.attempts.size(); ++i) {
      const WindowAttempt& a = w.attempts[i];
      if (i) os << ',';
      os << "{\"budget\":" << a.conflictBudget << ",\"verdict\":\""
         << verdictName(a.verdict) << "\",\"conflicts\":" << a.conflicts
         << ",\"solve_ms\":" << fmtMs(a.solveMs) << '}';
    }
    os << ']';
  }
  os << '}';
}

void jsonMethodology(std::ostream& os, const MethodologyReport& m) {
  os << "{\"final_verdict\":\"" << verdictName(m.finalVerdict) << '"'
     << ",\"max_window\":" << m.maxWindow;
  if (m.firstPAlertWindow) os << ",\"first_p_alert_window\":" << *m.firstPAlertWindow;
  if (m.firstLAlertWindow) os << ",\"first_l_alert_window\":" << *m.firstLAlertWindow;
  os << ",\"p_alert_count\":" << m.pAlerts.size()
     << ",\"induction_used\":" << (m.inductionUsed ? "true" : "false")
     << ",\"induction_holds\":" << (m.inductionHolds ? "true" : "false")
     << ",\"runtime_sec\":" << fmtMs(m.totalRuntimeSec) << '}';
}

void jsonReduction(std::ostream& os, const rtl::ReductionStats& red) {
  os << "{\"nodes_before\":" << red.nodesBefore << ",\"nodes_after\":" << red.nodesAfter
     << ",\"registers_before\":" << red.registersBefore
     << ",\"registers_after\":" << red.registersAfter
     << ",\"registers_merged\":" << red.registersMerged
     << ",\"constants_folded\":" << red.constantsFolded << ",\"rounds\":" << red.rounds
     << ",\"passes\":[";
  for (std::size_t i = 0; i < red.passes.size(); ++i) {
    const rtl::PassStats& p = red.passes[i];
    if (i) os << ',';
    os << "{\"pass\":";
    jsonString(os, p.pass);
    os << ",\"nodes_before\":" << p.nodesBefore << ",\"nodes_after\":" << p.nodesAfter
       << ",\"registers_before\":" << p.registersBefore
       << ",\"registers_after\":" << p.registersAfter
       << ",\"nodes_rewritten\":" << p.nodesRewritten
       << ",\"registers_merged\":" << p.registersMerged
       << ",\"constants_folded\":" << p.constantsFolded << '}';
  }
  os << "]}";
}

void jsonJob(std::ostream& os, const JobResult& job) {
  os << "{\"id\":" << job.id << ",\"label\":";
  jsonString(os, job.label);
  os << ",\"verdict\":\"" << verdictName(job.verdict) << '"'
     << ",\"worker\":" << job.worker << ",\"wall_ms\":" << fmtMs(job.wallMs)
     << ",\"peak_vars\":" << job.peakVars << ",\"peak_clauses\":" << job.peakClauses
     << ",\"sum_vars\":" << job.sumVars << ",\"conflicts\":" << job.totalConflicts
     << ",\"propagations\":" << job.totalPropagations
     << ",\"clauses_exported\":" << job.totalClausesExported
     << ",\"clauses_imported\":" << job.totalClausesImported
     << ",\"clauses_dropped\":" << job.totalClausesDropped;
  if (job.totalPropagateTimeNs | job.totalAnalyzeTimeNs | job.totalReduceTimeNs |
      job.totalRestartTimeNs) {
    os << ",\"profile\":";
    jsonProfile(os, job.totalPropagateTimeNs, job.totalAnalyzeTimeNs, job.totalReduceTimeNs,
                job.totalRestartTimeNs);
  }
  if (job.totalImportedUsedInPropagation | job.totalImportedUsedInConflict) {
    os << ",\"imported_used_propagation\":" << job.totalImportedUsedInPropagation
       << ",\"imported_used_conflict\":" << job.totalImportedUsedInConflict;
  }
  if (!job.error.empty()) {
    os << ",\"error\":";
    jsonString(os, job.error);
  }
  if (job.replayedWindows != 0) os << ",\"replayed_windows\":" << job.replayedWindows;
  if (job.encodedFromCache) os << ",\"encoded_from_cache\":true";
  if (job.storeSeededClauses | job.storePromotedClauses) {
    os << ",\"store_seeded_clauses\":" << job.storeSeededClauses
       << ",\"store_promoted_clauses\":" << job.storePromotedClauses;
  }
  if (job.rescheduleEnabled) {
    os << ",\"windows_rescheduled\":" << job.windowsRescheduled
       << ",\"reschedule_attempts\":" << job.rescheduleAttempts
       << ",\"windows_decided_by_retry\":" << job.windowsDecidedByRetry
       << ",\"reschedules_abandoned\":" << job.reschedulesAbandoned
       << ",\"reschedule_conflicts\":" << job.rescheduleConflicts;
  }
  if (!job.undecidedWindows.empty()) {
    os << ",\"undecided_windows\":[";
    for (std::size_t i = 0; i < job.undecidedWindows.size(); ++i) {
      if (i) os << ',';
      os << job.undecidedWindows[i];
    }
    os << ']';
  }
  os << ",\"l_alert_registers\":";
  jsonStringArray(os, job.lAlertRegisters);
  os << ",\"p_alert_registers\":";
  jsonStringArray(os, job.pAlertRegisters);
  if (!job.solverWins.empty()) {
    os << ",\"solver_wins\":{";
    for (std::size_t i = 0; i < job.solverWins.size(); ++i) {
      if (i) os << ',';
      jsonString(os, job.solverWins[i].first);
      os << ':' << job.solverWins[i].second;
    }
    os << '}';
  }
  if (!job.windows.empty()) {
    os << ",\"windows\":[";
    for (std::size_t i = 0; i < job.windows.size(); ++i) {
      if (i) os << ',';
      jsonWindow(os, job.windows[i]);
    }
    os << ']';
  }
  if (job.methodology) {
    os << ",\"methodology\":";
    jsonMethodology(os, *job.methodology);
  }
  if (job.reduction) {
    os << ",\"reduction\":";
    jsonReduction(os, *job.reduction);
  }
  os << '}';
}

}  // namespace

std::string CampaignReport::toJson() const {
  std::ostringstream os;
  os << "{\"overall_verdict\":\"" << verdictName(overallVerdict) << '"'
     << ",\"threads\":" << threads << ",\"wall_ms\":" << fmtMs(wallMs)
     << ",\"sum_job_wall_ms\":" << fmtMs(sumJobWallMs)
     << ",\"solver_thread_cap\":" << solverThreadCap
     << ",\"peak_solver_threads\":" << peakSolverThreads
     << ",\"num_proven\":" << numProven << ",\"num_p_alerts\":" << numPAlerts
     << ",\"num_l_alerts\":" << numLAlerts << ",\"num_unknown\":" << numUnknown
     << ",\"num_errors\":" << numErrors
     << ",\"total_conflicts\":" << totalConflicts
     << ",\"total_propagations\":" << totalPropagations
     << ",\"clauses_exported\":" << totalClausesExported
     << ",\"clauses_imported\":" << totalClausesImported
     << ",\"clauses_dropped\":" << totalClausesDropped
     << ",\"peak_vars\":" << peakVars << ",\"peak_clauses\":" << peakClauses;
  if (rescheduleEnabled) {
    os << ",\"reschedule\":{\"conflict_ceiling\":" << rescheduleConflictCeiling
       << ",\"windows_rescheduled\":" << windowsRescheduled
       << ",\"reschedule_attempts\":" << rescheduleAttempts
       << ",\"windows_decided_by_retry\":" << windowsDecidedByRetry
       << ",\"reschedules_abandoned\":" << reschedulesAbandoned
       << ",\"reschedule_conflicts\":" << rescheduleConflicts
       << ",\"decided_by_attempt\":[";
    for (std::size_t i = 0; i < decidedByAttempt.size(); ++i) {
      if (i) os << ',';
      os << decidedByAttempt[i];
    }
    os << "]}";
  }
  if (reductionEnabled) {
    os << ",\"reduction\":{\"jobs\":" << reductionJobs
       << ",\"nodes_before\":" << reductionNodesBefore
       << ",\"nodes_after\":" << reductionNodesAfter
       << ",\"registers_before\":" << reductionRegistersBefore
       << ",\"registers_after\":" << reductionRegistersAfter
       << ",\"registers_merged\":" << reductionRegistersMerged
       << ",\"constants_folded\":" << reductionConstantsFolded << '}';
  }
  if (profileEnabled) {
    os << ",\"profile\":";
    jsonProfile(os, totalPropagateTimeNs, totalAnalyzeTimeNs, totalReduceTimeNs,
                totalRestartTimeNs);
    os << ",\"imported_used_propagation\":" << totalImportedUsedInPropagation
       << ",\"imported_used_conflict\":" << totalImportedUsedInConflict;
  }
  if (checkpointEnabled) {
    os << ",\"checkpoint\":{\"resumed\":" << (resumed ? "true" : "false")
       << ",\"replayed_windows\":" << replayedWindows << ",\"replayed_jobs\":" << replayedJobs
       << ",\"write_failed\":" << (checkpointWriteFailed ? "true" : "false");
    if (!checkpointDiagnostics.empty()) {
      os << ",\"diagnostics\":";
      jsonStringArray(os, checkpointDiagnostics);
    }
    os << '}';
  }
  if (cachePrefixEnabled || cacheStoreEnabled || warmStarted || !cacheDiagnostics.empty()) {
    os << ",\"cache\":{";
    bool first = true;
    auto sep = [&first, &os] {
      if (!first) os << ',';
      first = false;
    };
    if (cachePrefixEnabled) {
      sep();
      os << "\"prefix\":{\"hits\":" << prefixHits << ",\"misses\":" << prefixMisses
         << ",\"insertions\":" << prefixInsertions
         << ",\"jobs_encoded_from_cache\":" << jobsEncodedFromCache << '}';
    }
    if (cacheStoreEnabled) {
      sep();
      os << "\"store\":{\"promoted\":" << storePromoted << ",\"duplicates\":" << storeDuplicates
         << ",\"fetched\":" << storeFetched << ",\"overflow\":" << storeOverflow
         << ",\"seeded_clauses\":" << storeSeededClauses
         << ",\"promoted_offers\":" << storePromotedClauses << '}';
    }
    if (warmStarted) {
      sep();
      os << "\"warm_start\":{\"clauses\":" << warmStartClauses
         << ",\"budgets_primed\":" << (budgetsPrimed ? "true" : "false");
      if (budgetsPrimed) {
        os << ",\"primed_from_attempt\":" << primedFromAttempt
           << ",\"primed_initial_budget\":" << primedInitialBudget;
      }
      os << '}';
    }
    if (!cacheDiagnostics.empty()) {
      sep();
      os << "\"diagnostics\":";
      jsonStringArray(os, cacheDiagnostics);
    }
    os << '}';
  }
  if (observerAttached) {
    os << ",\"observer\":{\"lines_written\":" << observerLinesWritten << '}';
  }
  if (!metricsJson.empty()) os << ",\"metrics\":" << metricsJson;
  os << ",\"jobs\":[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i) os << ',';
    jsonJob(os, jobs[i]);
  }
  os << "]}";
  return os.str();
}

}  // namespace upec::engine
