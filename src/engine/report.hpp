// Structured results of a verification campaign, with JSON export.
//
// The report keeps one JobResult per job (in submission order, regardless
// of which worker finished first) plus campaign-level aggregates: verdict
// counts, the merged overall verdict, solver-effort totals and the
// wall-clock vs summed-job-time ratio that quantifies the parallel speedup.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/job.hpp"

namespace upec::engine {

struct CampaignReport {
  std::vector<JobResult> jobs;  // submission order
  unsigned threads = 0;
  double wallMs = 0.0;
  // Thread governance (CampaignOptions::solverThreadCap): the configured
  // cap and the highest number of member slots ever held at once. Zero cap
  // means ungoverned (peak untracked).
  unsigned solverThreadCap = 0;
  unsigned peakSolverThreads = 0;

  // Aggregates, filled by finalize().
  Verdict overallVerdict = Verdict::kProven;
  std::size_t numProven = 0;
  std::size_t numPAlerts = 0;
  std::size_t numLAlerts = 0;
  std::size_t numUnknown = 0;
  std::size_t numErrors = 0;  // jobs whose execution failed (contained)
  double sumJobWallMs = 0.0;  // total work; sumJobWallMs / wallMs ≈ speedup
  std::uint64_t totalConflicts = 0;
  std::uint64_t totalPropagations = 0;
  std::uint64_t peakVars = 0;
  std::uint64_t peakClauses = 0;
  // Learnt-clause exchange flow summed over all jobs (sharing campaigns).
  std::uint64_t totalClausesExported = 0;
  std::uint64_t totalClausesImported = 0;
  std::uint64_t totalClausesDropped = 0;

  // Solver-phase profiling totals over all jobs (UpecOptions::profileSolver
  // jobs; all zero and absent from the JSON otherwise), filled by
  // finalize(). Times are wall nanoseconds per CDCL phase; the efficacy
  // counters say how many imported exchange clauses were ever useful.
  bool profileEnabled = false;  // any job carried nonzero phase timings
  std::uint64_t totalPropagateTimeNs = 0;
  std::uint64_t totalAnalyzeTimeNs = 0;
  std::uint64_t totalReduceTimeNs = 0;
  std::uint64_t totalRestartTimeNs = 0;
  std::uint64_t totalImportedUsedInPropagation = 0;
  std::uint64_t totalImportedUsedInConflict = 0;

  // Reschedule accounting (see ReschedulePolicy; all zero and absent from
  // the JSON for campaigns without rescheduling). The ceiling is the
  // configured campaign-wide retry-conflict budget; the rest are sums over
  // the jobs, filled by finalize().
  std::uint64_t rescheduleConflictCeiling = 0;
  bool rescheduleEnabled = false;  // any job ran under a policy
  unsigned windowsRescheduled = 0;
  unsigned rescheduleAttempts = 0;
  unsigned windowsDecidedByRetry = 0;
  unsigned reschedulesAbandoned = 0;
  std::uint64_t rescheduleConflicts = 0;
  // Escalation-ladder histogram: decidedByAttempt[i] = windows decided at
  // attempt i (0 = first pass) across reschedule-enabled jobs.
  std::vector<unsigned> decidedByAttempt;

  // RTL reduction accounting (jobs run with JobSpec::reduction; all zero
  // and absent from the JSON otherwise). Sums over the reduced jobs' pass
  // pipelines, filled by finalize().
  bool reductionEnabled = false;  // any job carried reduction stats
  std::size_t reductionJobs = 0;
  std::uint64_t reductionNodesBefore = 0;
  std::uint64_t reductionNodesAfter = 0;
  std::uint64_t reductionRegistersBefore = 0;
  std::uint64_t reductionRegistersAfter = 0;
  std::uint64_t reductionRegistersMerged = 0;
  std::uint64_t reductionConstantsFolded = 0;

  // Checkpoint/resume accounting (CampaignOptions::checkpoint; all absent
  // from the JSON for uncheckpointed campaigns). `resumed` means an
  // existing journal loaded and replayed; replayedWindows is summed over
  // the jobs by finalize(), the rest is set by runCampaign.
  bool checkpointEnabled = false;
  bool resumed = false;
  unsigned replayedWindows = 0;
  unsigned replayedJobs = 0;
  // The journal hit a write failure mid-run (checkpointing stopped; the
  // campaign itself completed — see CheckpointStore::writeFailed).
  bool checkpointWriteFailed = false;
  // What resume recovered from / why a load was refused (human-readable).
  std::vector<std::string> checkpointDiagnostics;

  // Campaign cache accounting (CampaignOptions::cache; all absent from the
  // JSON for uncached campaigns). The prefix/store counters are snapshots
  // of the cache objects at campaign end, set by runCampaign; the per-job
  // sums (jobsEncodedFromCache, storeSeededClauses, storePromotedClauses)
  // are filled by finalize().
  bool cachePrefixEnabled = false;
  std::uint64_t prefixHits = 0;
  std::uint64_t prefixMisses = 0;
  std::uint64_t prefixInsertions = 0;
  unsigned jobsEncodedFromCache = 0;  // jobs whose session cloned a cached prefix
  bool cacheStoreEnabled = false;
  std::uint64_t storePromoted = 0;    // distinct clauses the store accepted
  std::uint64_t storeDuplicates = 0;  // offers the family filter already held
  std::uint64_t storeFetched = 0;     // clauses handed to consumers
  std::uint64_t storeOverflow = 0;    // offers dropped at family capacity
  std::uint64_t storeSeededClauses = 0;    // per-job seed sum (finalize)
  std::uint64_t storePromotedClauses = 0;  // per-job offer sum (finalize)
  // Warm start from a previous run's journal (CacheOptions::warmStartPath).
  bool warmStarted = false;               // donor journal loaded successfully
  std::uint64_t warmStartClauses = 0;     // learnt clauses promoted from it
  bool budgetsPrimed = false;             // reschedule budgets were pre-sized
  unsigned primedFromAttempt = 0;         // histogram rung the priming chose
  std::uint64_t primedInitialBudget = 0;  // the pre-escalated initial budget
  std::vector<std::string> cacheDiagnostics;  // warm-start load problems

  // Observer accounting (CampaignOptions::observer; absent from the JSON
  // when no NDJSON stream was attached): how many event lines the
  // NdjsonWriter actually wrote, set by runCampaign at campaign end so the
  // report can be cross-checked against the stream file line count.
  bool observerAttached = false;
  std::uint64_t observerLinesWritten = 0;

  // Snapshot of the obs::MetricsRegistry at campaign end, as a pre-rendered
  // JSON object ({"counters":...}). Filled by runCampaign when metrics
  // collection is enabled; empty (and absent from toJson) otherwise.
  std::string metricsJson;

  // Recomputes the aggregate fields from `jobs`.
  void finalize();

  // Serialises the whole report (jobs, windows, aggregates) as JSON.
  std::string toJson() const;
};

}  // namespace upec::engine
