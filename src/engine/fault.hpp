// Deterministic fault injection for the campaign robustness tests.
//
// A crash-safety claim is only as good as the crashes it was tested
// against. The FaultPlan names the failure classes the engine promises to
// contain — a solver that throws mid-search, a pool task that dies on
// entry, a checkpoint journal whose write fails, a journal corrupted on
// disk — and the FaultInjector turns the plan into concrete "this one
// faults" decisions with atomic counters, so a test can place a fault at
// an exact, reproducible point. Everything defaults to off; a
// default-constructed plan never perturbs a campaign.
#pragma once

#include <atomic>
#include <cstdint>

namespace upec::engine {

// Which fault to inject, and where. Carried on CampaignOptions::faults.
struct FaultPlan {
  // The SAT solver throws std::runtime_error once a solve call reaches
  // this many conflicts (0 = off). Exercises containment of a failure in
  // the deepest layer: the throw crosses portfolio race threads, the
  // ladder scheduler and the pool on its way up.
  std::uint64_t solverAbortAtConflict = 0;
  // The Nth campaign pool task (1-based, in execution order) throws on
  // entry (0 = off). Deterministic with threads=1; with more workers the
  // Nth *started* task faults. Exercises job-level containment (kError
  // result, campaign completes).
  std::uint64_t taskThrowAt = 0;
  // The Nth checkpoint journal line (1-based) fails to write (0 = off).
  // The store's failure handling is sticky: journaling stops, the
  // campaign itself continues — see CheckpointStore::writeFailed.
  std::uint64_t checkpointWriteFailAt = 0;
  // Drop the final line of the checkpoint journal while loading it,
  // simulating a write torn by a crash (0 = off). Resume must re-solve
  // the lost window, never mis-replay it.
  bool corruptCheckpointLoad = false;

  bool any() const {
    return solverAbortAtConflict != 0 || taskThrowAt != 0 || checkpointWriteFailAt != 0 ||
           corruptCheckpointLoad;
  }
};

// Counts fault-site visits and answers "does this one fault?". Thread-safe
// (sites are visited from pool workers); one injector per campaign run.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}
  const FaultPlan& plan() const { return plan_; }

  // True exactly once, for the plan's designated task.
  bool nextTaskThrows() {
    if (plan_.taskThrowAt == 0) return false;
    return tasks_.fetch_add(1, std::memory_order_relaxed) + 1 == plan_.taskThrowAt;
  }
  // True exactly once, for the plan's designated journal line.
  bool nextWriteFails() {
    if (plan_.checkpointWriteFailAt == 0) return false;
    return writes_.fetch_add(1, std::memory_order_relaxed) + 1 == plan_.checkpointWriteFailAt;
  }
  bool corruptLoad() const { return plan_.corruptCheckpointLoad; }

 private:
  FaultPlan plan_;
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> writes_{0};
};

}  // namespace upec::engine
