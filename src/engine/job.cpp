#include "engine/job.hpp"

#include <algorithm>

#include "base/stopwatch.hpp"
#include "engine/thread_pool.hpp"
#include "upec/miter.hpp"

namespace upec::engine {

const char* deepeningModeName(DeepeningMode m) {
  switch (m) {
    case DeepeningMode::kMonolithic: return "monolithic";
    case DeepeningMode::kIncremental: return "incremental";
  }
  return "?";
}

const char* jobKindName(JobKind k) {
  switch (k) {
    case JobKind::kIntervalLadder: return "interval_ladder";
    case JobKind::kMethodology: return "methodology";
    case JobKind::kHunt: return "hunt";
  }
  return "?";
}

Verdict mergeVerdicts(Verdict a, Verdict b) {
  auto severity = [](Verdict v) {
    switch (v) {
      case Verdict::kProven: return 0;
      case Verdict::kPAlert: return 1;
      case Verdict::kUnknown: return 2;  // may hide an L-alert
      case Verdict::kLAlert: return 3;
    }
    return 0;
  };
  return severity(a) >= severity(b) ? a : b;
}

namespace {

void accumulate(JobResult& res, const formal::BmcStats& stats) {
  res.peakVars = std::max(res.peakVars, stats.vars);
  res.peakClauses = std::max(res.peakClauses, stats.clauses);
  res.totalConflicts += stats.conflicts;
  res.totalPropagations += stats.propagations;
  res.totalClausesExported += stats.clausesExported;
  res.totalClausesImported += stats.clausesImported;
  res.totalClausesDropped += stats.clausesDropped;
  res.sumVars += stats.vars;
}

void insertUnique(std::vector<std::string>& into, const std::vector<std::string>& names) {
  for (const std::string& n : names) {
    if (std::find(into.begin(), into.end(), n) == into.end()) into.push_back(n);
  }
}

void recordWin(JobResult& res, const std::string& solvedBy) {
  if (solvedBy.empty()) return;
  for (auto& [name, wins] : res.solverWins) {
    if (name == solvedBy) {
      ++wins;
      return;
    }
  }
  res.solverWins.emplace_back(solvedBy, 1u);
}

void runLadder(const JobSpec& spec, const UpecOptions& options, Miter& miter,
               JobResult& res) {
  UpecEngine engine(miter, options);
  std::set<std::string> excluded = spec.excludedFromCommitment;
  if (spec.architecturalOnly) {
    const std::set<std::string> micro = engine.allMicroNames();
    excluded.insert(micro.begin(), micro.end());
  }

  res.verdict = Verdict::kProven;
  for (unsigned k = spec.kMin; k <= spec.kMax; ++k) {
    Stopwatch windowTimer;
    const UpecResult r = engine.check(k, excluded);
    res.windows.push_back({k, r.verdict, r.stats, windowTimer.elapsedMs()});
    // Budget-exhausted checks were not answered by anyone — no win to record.
    if (r.verdict != Verdict::kUnknown) recordWin(res, r.stats.solvedBy);
    res.verdict = mergeVerdicts(res.verdict, r.verdict);
    accumulate(res, r.stats);
    insertUnique(res.pAlertRegisters, r.differingMicro);
    if (r.verdict == Verdict::kLAlert) {
      res.lAlertRegisters = r.differingArch;
      break;  // a real leak is the ladder's answer; deeper windows add nothing
    }
  }
}

void runDriver(const JobSpec& spec, const UpecOptions& options, Miter& miter,
               JobResult& res) {
  MethodologyDriver driver(miter, options);
  const MethodologyReport report = spec.kind == JobKind::kMethodology
                                       ? driver.run(spec.kMax)
                                       : driver.hunt(spec.kMax);
  res.verdict = report.finalVerdict;
  res.lAlertRegisters = report.lAlertRegisters;
  res.pAlertRegisters.assign(report.pAlertRegisters.begin(), report.pAlertRegisters.end());
  res.peakVars = report.peakVars;
  res.peakClauses = report.peakClauses;
  res.totalConflicts = report.totalConflicts;
  res.totalPropagations = report.totalPropagations;
  res.totalClausesExported = report.totalClausesExported;
  res.totalClausesImported = report.totalClausesImported;
  res.totalClausesDropped = report.totalClausesDropped;
  res.methodology = report;
}

}  // namespace

JobResult runJob(const JobSpec& spec, sat::MemberGovernor* governor) {
  JobResult res;
  res.id = spec.id;
  res.label = spec.label;
  const unsigned worker = WorkStealingPool::currentWorker();
  res.worker = worker == WorkStealingPool::kNotAWorker ? 0 : worker;

  Stopwatch jobTimer;
  Miter miter(spec.config, spec.secretWord);
  UpecOptions options = spec.options;
  options.incrementalDeepening = spec.mode == DeepeningMode::kIncremental;
  if (spec.portfolio != 0) options.portfolio = spec.portfolio;
  if (spec.sharing) options.portfolioSharing = true;
  if (governor != nullptr) options.governor = governor;

  if (spec.kind == JobKind::kIntervalLadder) {
    runLadder(spec, options, miter, res);
  } else {
    runDriver(spec, options, miter, res);
  }
  res.wallMs = jobTimer.elapsedMs();
  return res;
}

}  // namespace upec::engine
