#include "engine/job.hpp"

#include <exception>

#include "base/stopwatch.hpp"
#include "engine/encode_cache.hpp"
#include "engine/scheduler.hpp"
#include "engine/thread_pool.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "upec/miter.hpp"

namespace upec::engine {

const char* deepeningModeName(DeepeningMode m) {
  switch (m) {
    case DeepeningMode::kMonolithic: return "monolithic";
    case DeepeningMode::kIncremental: return "incremental";
  }
  return "?";
}

const char* jobKindName(JobKind k) {
  switch (k) {
    case JobKind::kIntervalLadder: return "interval_ladder";
    case JobKind::kMethodology: return "methodology";
    case JobKind::kHunt: return "hunt";
  }
  return "?";
}

Verdict mergeVerdicts(Verdict a, Verdict b) {
  auto severity = [](Verdict v) {
    switch (v) {
      case Verdict::kProven: return 0;
      case Verdict::kPAlert: return 1;
      case Verdict::kUnknown: return 2;  // may hide an L-alert
      case Verdict::kError: return 3;    // did not even reach its budget
      case Verdict::kLAlert: return 4;   // a found leak is still definitive
    }
    return 0;
  };
  return severity(a) >= severity(b) ? a : b;
}

UpecOptions resolveJobOptions(const JobSpec& spec, sat::MemberGovernor* governor) {
  UpecOptions options = spec.options;
  options.incrementalDeepening = spec.mode == DeepeningMode::kIncremental;
  if (spec.portfolio != 0) options.portfolio = spec.portfolio;
  if (spec.sharing) options.portfolioSharing = true;
  if (spec.reduction) options.reduction = true;
  if (governor != nullptr) options.governor = governor;
  return options;
}

std::string clauseFamilyKey(const JobSpec& spec) {
  const UpecOptions& o = spec.options;
  std::string key = EncodeCache::keyFor(spec.config, spec.secretWord);
  key += "|scn:" + std::to_string(static_cast<int>(o.scenario));
  key += o.constraint1NoOngoing ? '1' : '0';
  key += o.constraint2CacheMonitor ? '1' : '0';
  key += o.constraint3SecureSw ? '1' : '0';
  key += o.assumeSecretProtected ? '1' : '0';
  key += o.structuralInitEquality ? "|eq" : "|noeq";
  // The exclusion set changes which commitment obligations get encoded
  // (and under reduction even the netlist itself), so it keys the family.
  key += spec.architecturalOnly ? "|arch" : "";
  key += "|exc:";
  bool first = true;
  for (const std::string& name : spec.excludedFromCommitment) {
    if (!first) key += ',';
    first = false;
    key += name;
  }
  if (spec.reduction || o.reduction) {
    const rtl::ReduceOptions& r = o.reductionOptions;
    key += "|red:";
    key += r.sweep ? '1' : '0';
    key += r.constants ? '1' : '0';
    key += r.hashing ? '1' : '0';
    key += std::to_string(r.maxRounds);
  }
  return key;
}

namespace {

void runDriver(const JobSpec& spec, const UpecOptions& options, Miter& miter,
               JobResult& res) {
  MethodologyDriver driver(miter, options);
  const MethodologyReport report = spec.kind == JobKind::kMethodology
                                       ? driver.run(spec.kMax)
                                       : driver.hunt(spec.kMax);
  res.verdict = report.finalVerdict;
  res.lAlertRegisters = report.lAlertRegisters;
  res.pAlertRegisters.assign(report.pAlertRegisters.begin(), report.pAlertRegisters.end());
  res.peakVars = report.peakVars;
  res.peakClauses = report.peakClauses;
  res.totalConflicts = report.totalConflicts;
  res.totalPropagations = report.totalPropagations;
  res.totalClausesExported = report.totalClausesExported;
  res.totalClausesImported = report.totalClausesImported;
  res.totalClausesDropped = report.totalClausesDropped;
  res.methodology = report;
}

}  // namespace

void emitJobEvent(obs::CampaignObserver* observer, const JobResult& res) {
  if (observer == nullptr) return;
  obs::StreamEvent e("job");
  e.num("job", res.id)
      .str("label", res.label)
      .str("verdict", verdictName(res.verdict))
      .real("wall_ms", res.wallMs)
      .num("worker", res.worker)
      .num("windows", res.windows.size());
  if (!res.error.empty()) e.str("error", res.error);
  if (res.replayedWindows != 0) e.num("replayed_windows", res.replayedWindows);
  observer->onEvent(e);
}

void emitWindowEvent(obs::CampaignObserver* observer, std::uint32_t jobId,
                     const std::string& label, const WindowResult& w, bool replayed) {
  if (observer == nullptr) return;
  obs::StreamEvent e("window");
  e.num("job", jobId)
      .str("label", label)
      .num("k", w.window)
      .str("verdict", verdictName(w.verdict))
      .num("conflicts", w.stats.conflicts)
      .real("solve_ms", w.stats.solveMs);
  if (!w.attempts.empty()) e.num("attempts", w.attempts.size());
  if (w.budgetExhausted) e.flag("budget_exhausted", true);
  if (w.deadlineExpired) e.flag("deadline_expired", true);
  if (replayed) e.flag("replayed", true);
  observer->onEvent(e);
}

JobResult runJob(const JobSpec& spec, sat::MemberGovernor* governor, ConflictLedger* ledger,
                 obs::CampaignObserver* observer, CheckpointStore* checkpoint,
                 sat::ClauseStore* clauseStore) {
  obs::Span span("engine", "job");
  if (span.enabled()) span.arg("label", spec.label).arg("kind", jobKindName(spec.kind));

  JobResult res;
  if (spec.kind == JobKind::kIntervalLadder) {
    // The scheduler replays the classic walk when no ReschedulePolicy is
    // enabled; with one, retries run inline on this thread (a campaign
    // requeues them onto the pool instead — see runCampaign). A failing
    // check is contained inside attemptWindow; this catch covers what can
    // still throw outside it — miter/engine construction.
    try {
      LadderScheduler ladder(spec, governor, ledger, observer, checkpoint, clauseStore);
      while (!ladder.done()) ladder.runSegment();
      res = ladder.takeResult();
    } catch (const std::exception& ex) {
      res = JobResult{};
      res.id = spec.id;
      res.label = spec.label;
      res.verdict = Verdict::kError;
      res.error = ex.what();
    }
  } else {
    res.id = spec.id;
    res.label = spec.label;
    const unsigned worker = WorkStealingPool::currentWorker();
    res.worker = worker == WorkStealingPool::kNotAWorker ? 0 : worker;

    Stopwatch jobTimer;
    // Containment: a methodology/hunt driver that throws (solver fault,
    // injected or real) yields a kError job with a diagnostic instead of
    // unwinding into the pool.
    try {
      Miter miter(spec.config, spec.secretWord);
      runDriver(spec, resolveJobOptions(spec, governor), miter, res);
    } catch (const std::exception& ex) {
      res.verdict = Verdict::kError;
      res.error = ex.what();
    }
    res.wallMs = jobTimer.elapsedMs();
  }
  if (span.enabled()) span.arg("verdict", verdictName(res.verdict));
  emitJobEvent(observer, res);
  return res;
}

}  // namespace upec::engine
