#include "engine/progress.hpp"

#include <algorithm>
#include <sstream>

#include "base/stopwatch.hpp"
#include "engine/scheduler.hpp"
#include "obs/trace.hpp"  // appendJsonEscaped

namespace upec::engine {

namespace {
std::string escaped(const std::string& s) {
  std::string out;
  obs::appendJsonEscaped(out, s);
  return out;
}
}  // namespace

ProgressTracker::ProgressTracker(obs::CampaignObserver* next, std::size_t eventTailCap)
    : next_(next), tailCap_(eventTailCap) {}

void ProgressTracker::prime(const std::vector<JobSpec>& jobs) {
  std::lock_guard<std::mutex> lock(mutex_);
  jobs_.clear();
  jobs_.reserve(jobs.size());
  for (const JobSpec& spec : jobs) {
    JobProgress jp;
    jp.id = spec.id;
    jp.label = spec.label;
    jp.kMin = spec.kMin;
    // Only ladders announce their window count up front; methodology and
    // hunt drivers exit early on alerts, so their totals stay open until
    // the job event closes them.
    if (spec.kind == JobKind::kIntervalLadder && spec.kMax >= spec.kMin) {
      jp.total = spec.kMax - spec.kMin + 1;
    }
    jobs_.push_back(std::move(jp));
  }
}

void ProgressTracker::onEvent(const obs::StreamEvent& event) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string type = event.type();
    const auto jobById = [this](const std::uint64_t* id) -> JobProgress* {
      if (id == nullptr) return nullptr;
      for (JobProgress& jp : jobs_) {
        if (jp.id == *id) return &jp;
      }
      return nullptr;
    };
    if (type == "campaign_start") {
      started_ = true;
      startEpochMs_ = static_cast<double>(Stopwatch::sinceEpochUs()) / 1000.0;
      if (const std::uint64_t* t = event.findNum("threads")) threads_ = *t;
    } else if (type == "window") {
      if (JobProgress* jp = jobById(event.findNum("job"))) {
        ++jp->decided;
        if (const std::uint64_t* k = event.findNum("k")) {
          jp->rung = *k;
          const std::size_t idx = static_cast<std::size_t>(*k);
          if (perK_.size() <= idx) perK_.resize(idx + 1);
          if (const double* ms = event.findReal("solve_ms")) {
            ++perK_[idx].count;
            perK_[idx].sumMs += *ms;
            ++solveCount_;
            solveSumMs_ += *ms;
          }
        }
        const bool* replayed = event.findFlag("replayed");
        if (replayed != nullptr && *replayed) ++replayedWindows_;
      }
    } else if (type == "reschedule") {
      ++reschedules_;
    } else if (type == "job") {
      if (JobProgress* jp = jobById(event.findNum("job"))) {
        jp->done = true;
        // Close the job's window total at what it actually solved: an
        // early-exit (alert) ladder or an open-total methodology job
        // must not keep phantom "remaining" windows in the ETA.
        jp->total = jp->decided;
        if (const std::string* v = event.findStr("verdict")) jp->verdict = *v;
      }
    } else if (type == "campaign_end") {
      done_ = true;
      if (const double* ms = event.findReal("wall_ms")) wallMs_ = *ms;
    } else if (type == "checkpoint_open") {
      checkpointSeen_ = true;
      if (const std::uint64_t* w = event.findNum("replayed_windows")) {
        checkpointReplayedWindows_ = *w;
      }
      if (const std::uint64_t* j = event.findNum("replayed_jobs")) {
        checkpointReplayedJobs_ = *j;
      }
    }
    tail_.push_back(event.toJson(Stopwatch::sinceEpochUs()));
    while (tail_.size() > tailCap_) tail_.pop_front();
  }
  // Forward outside the lock: the next sink (e.g. NdjsonWriter) has its
  // own synchronisation and may block on I/O.
  if (next_ != nullptr) next_->onEvent(event);
}

double ProgressTracker::etaMsLocked() const {
  const double overallMean =
      solveCount_ == 0 ? 0.0 : solveSumMs_ / static_cast<double>(solveCount_);
  double remainingMs = 0.0;
  for (const JobProgress& jp : jobs_) {
    if (jp.done || jp.total <= jp.decided) continue;
    for (std::uint64_t j = jp.decided; j < jp.total; ++j) {
      const std::size_t k = static_cast<std::size_t>(jp.kMin + j);
      const bool haveK = k < perK_.size() && perK_[k].count > 0;
      remainingMs +=
          haveK ? perK_[k].sumMs / static_cast<double>(perK_[k].count) : overallMean;
    }
  }
  return remainingMs / static_cast<double>(std::max<std::uint64_t>(1, threads_));
}

std::string ProgressTracker::statusJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t jobsDone = 0;
  std::uint64_t decided = 0;
  std::uint64_t total = 0;
  for (const JobProgress& jp : jobs_) {
    if (jp.done) ++jobsDone;
    decided += jp.decided;
    // Unknown-total jobs count what they have decided so far, keeping
    // decided <= total an invariant of the snapshot.
    total += std::max(jp.total, jp.decided);
  }
  const double wallMs =
      done_ ? wallMs_
            : (started_ ? static_cast<double>(Stopwatch::sinceEpochUs()) / 1000.0 -
                              startEpochMs_
                        : 0.0);
  std::ostringstream os;
  os << "{\"running\":" << (started_ && !done_ ? "true" : "false");
  os << ",\"wall_ms\":" << wallMs;
  os << ",\"threads\":" << threads_;
  os << ",\"jobs\":{\"total\":" << jobs_.size() << ",\"done\":" << jobsDone << '}';
  os << ",\"windows\":{\"decided\":" << decided << ",\"total\":" << total
     << ",\"replayed\":" << replayedWindows_ << ",\"remaining\":" << total - decided
     << '}';
  os << ",\"reschedules\":" << reschedules_;
  if (ledger_ != nullptr && ledger_->ceiling() != 0) {
    const std::uint64_t spent = ledger_->spent();
    const std::uint64_t ceiling = ledger_->ceiling();
    os << ",\"ledger\":{\"spent\":" << spent << ",\"ceiling\":" << ceiling
       << ",\"utilization_pct\":"
       << 100.0 * static_cast<double>(spent) / static_cast<double>(ceiling) << '}';
  }
  if (checkpointSeen_) {
    os << ",\"checkpoint\":{\"replayed_windows\":" << checkpointReplayedWindows_
       << ",\"replayed_jobs\":" << checkpointReplayedJobs_ << '}';
  }
  os << ",\"eta_ms\":" << etaMsLocked();
  os << ",\"jobs_detail\":[";
  bool first = true;
  for (const JobProgress& jp : jobs_) {
    if (!first) os << ',';
    first = false;
    os << "{\"id\":" << jp.id << ",\"label\":\"" << escaped(jp.label)
       << "\",\"decided\":" << jp.decided << ",\"total\":" << std::max(jp.total, jp.decided)
       << ",\"rung\":" << jp.rung << ",\"done\":" << (jp.done ? "true" : "false");
    if (!jp.verdict.empty()) os << ",\"verdict\":\"" << escaped(jp.verdict) << '"';
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string ProgressTracker::eventsTail() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const std::string& line : tail_) {
    out += line;
    out += '\n';
  }
  return out;
}

ProgressTracker::Snapshot ProgressTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.jobsTotal = jobs_.size();
  for (const JobProgress& jp : jobs_) {
    if (jp.done) ++s.jobsDone;
    s.windowsDecided += jp.decided;
    s.windowsTotal += std::max(jp.total, jp.decided);
  }
  s.windowsReplayed = replayedWindows_;
  s.reschedules = reschedules_;
  s.etaMs = etaMsLocked();
  s.done = done_;
  return s;
}

}  // namespace upec::engine
