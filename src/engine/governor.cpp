#include "engine/governor.hpp"

#include <algorithm>

#include "base/stopwatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace upec::engine {

unsigned ThreadGovernor::acquire(unsigned want) {
  if (want == 0) return 0;
  if (cap_ == 0) return want;  // ungoverned: grant everything, track nothing
  obs::Span span("engine", "governor.acquire");
  if (span.enabled()) span.arg("want", want);
  // Time spent blocked on a full cap — the contention signal that says the
  // cap is throttling the campaign rather than merely bounding it.
  const bool meter = obs::metricsEnabled();
  Stopwatch waitTimer;
  std::unique_lock<std::mutex> lock(mutex_);
  freed_.wait(lock, [this] { return inUse_ < cap_; });
  if (meter) obs::metrics().histogram("governor.wait_us").observe(waitTimer.elapsedUs());
  const unsigned granted = std::min(want, cap_ - inUse_);
  inUse_ += granted;
  peak_ = std::max(peak_, inUse_);
  ++acquisitions_;
  if (granted < want) ++degradations_;
  if (span.enabled()) span.arg("granted", granted);
  return granted;
}

void ThreadGovernor::release(unsigned n) {
  if (cap_ == 0 || n == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inUse_ = n > inUse_ ? 0 : inUse_ - n;
  }
  // More than one waiter can proceed when several slots free at once.
  freed_.notify_all();
}

unsigned ThreadGovernor::inUse() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inUse_;
}

unsigned ThreadGovernor::peakInUse() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

std::uint64_t ThreadGovernor::acquisitions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return acquisitions_;
}

std::uint64_t ThreadGovernor::degradations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return degradations_;
}

}  // namespace upec::engine
