#include "engine/campaign.hpp"

#include <memory>

#include "base/log.hpp"
#include "base/stopwatch.hpp"
#include "engine/governor.hpp"
#include "engine/scheduler.hpp"
#include "engine/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"

namespace upec::engine {

std::vector<JobSpec> enumerateJobs(const SweepMatrix& matrix) {
  std::vector<JobSpec> jobs;
  jobs.reserve(matrix.scenarios.size() * matrix.variants.size());
  std::uint32_t id = 0;
  for (const SecretScenario scenario : matrix.scenarios) {
    for (const SweepMatrix::OptionVariant& variant : matrix.variants) {
      JobSpec spec;
      spec.id = id++;
      spec.label = std::string(scenarioName(scenario)) + "/" + variant.label;
      spec.config = matrix.config;
      spec.secretWord = matrix.secretWord;
      spec.options = variant.options;
      spec.options.scenario = scenario;
      spec.kind = matrix.kind;
      spec.mode = matrix.mode;
      spec.kMin = matrix.kMin;
      spec.kMax = matrix.kMax;
      spec.portfolio = matrix.portfolio;
      spec.sharing = matrix.sharing;
      spec.reduction = matrix.reduce;
      jobs.push_back(std::move(spec));
    }
  }
  return jobs;
}

namespace {

// Runs one segment of a rescheduled ladder and either finishes the job or
// requeues the escalated retry. submitPriority puts the retry at the steal
// end of the worker's deque: the next idle worker takes the expensive
// escalation while this worker keeps draining the first-pass jobs it
// already holds — cheap windows and hard retries overlap instead of
// serialising. Consecutive segments are chained (the next is submitted only
// after the previous returns), so the scheduler is never entered from two
// threads at once.
void runLadderChain(WorkStealingPool& pool, std::shared_ptr<LadderScheduler> ladder,
                    JobResult& slot, obs::CampaignObserver* observer) {
  ladder->runSegment();
  if (ladder->done()) {
    slot = ladder->takeResult();
    emitJobEvent(observer, slot);
    return;
  }
  pool.submitPriority([&pool, ladder = std::move(ladder), &slot, observer]() mutable {
    runLadderChain(pool, std::move(ladder), slot, observer);
  });
}

}  // namespace

CampaignReport runCampaign(const std::vector<JobSpec>& jobs, const CampaignOptions& options) {
  CampaignReport report;
  report.jobs.resize(jobs.size());

  // Fold the campaign-level reschedule policy into ladder jobs that do not
  // bring their own. Copied only when there is something to inject (the
  // copies must then outlive the pool tasks below).
  std::vector<JobSpec> injected;
  if (options.reschedule.enabled) {
    injected = jobs;
    for (JobSpec& spec : injected) {
      if (spec.kind == JobKind::kIntervalLadder && !spec.reschedule.enabled) {
        spec.reschedule = options.reschedule;
      }
    }
  }
  const std::vector<JobSpec>& specs = options.reschedule.enabled ? injected : jobs;
  // One ledger for the whole campaign: the conflictCeiling bounds retry
  // conflicts across all rescheduled jobs, not per job.
  ConflictLedger ledger(options.reschedule.conflictCeiling);

  Stopwatch campaignTimer;
  obs::Span span("engine", "campaign");
  if (span.enabled()) span.arg("jobs", std::uint64_t{specs.size()});
  obs::CampaignObserver* observer = options.observer;
  ThreadGovernor governor(options.solverThreadCap);
  sat::MemberGovernor* memberSlots = options.solverThreadCap != 0 ? &governor : nullptr;
  {
    WorkStealingPool pool(options.threads);
    report.threads = pool.numThreads();
    logInfo("campaign: " + std::to_string(specs.size()) + " jobs on " +
            std::to_string(pool.numThreads()) + " threads");
    if (observer != nullptr) {
      obs::StreamEvent e("campaign_start");
      e.num("jobs", specs.size()).num("threads", pool.numThreads());
      observer->onEvent(e);
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      // Each task writes only its own slot; no synchronisation needed
      // beyond the pool's completion barrier.
      const JobSpec& spec = specs[i];
      JobResult& slot = report.jobs[i];
      if (spec.kind == JobKind::kIntervalLadder && spec.reschedule.enabled) {
        pool.submit([&pool, &spec, &slot, memberSlots, &ledger, observer] {
          // Built inside the task so miter construction parallelises.
          auto ladder = std::make_shared<LadderScheduler>(spec, memberSlots, &ledger, observer);
          runLadderChain(pool, std::move(ladder), slot, observer);
        });
      } else {
        pool.submit([&spec, &slot, memberSlots, observer] {
          slot = runJob(spec, memberSlots, nullptr, observer);
        });
      }
    }
    pool.wait();
  }
  report.wallMs = campaignTimer.elapsedMs();
  report.solverThreadCap = options.solverThreadCap;
  report.peakSolverThreads = governor.peakInUse();
  report.rescheduleConflictCeiling = ledger.ceiling();
  report.finalize();
  // Fold a snapshot of the metrics registry into the report so the JSON a
  // campaign writes carries its own measurements.
  if (obs::metricsEnabled()) report.metricsJson = obs::metrics().toJson();
  if (span.enabled()) span.arg("verdict", verdictName(report.overallVerdict));
  if (observer != nullptr) {
    obs::StreamEvent e("campaign_end");
    e.str("verdict", verdictName(report.overallVerdict))
        .real("wall_ms", report.wallMs)
        .num("proven", report.numProven)
        .num("p_alerts", report.numPAlerts)
        .num("l_alerts", report.numLAlerts)
        .num("unknown", report.numUnknown);
    observer->onEvent(e);
  }
  return report;
}

}  // namespace upec::engine
