#include "engine/campaign.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "base/log.hpp"
#include "base/stopwatch.hpp"
#include "engine/checkpoint.hpp"
#include "engine/encode_cache.hpp"
#include "engine/governor.hpp"
#include "engine/progress.hpp"
#include "engine/scheduler.hpp"
#include "engine/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/status_server.hpp"
#include "obs/trace.hpp"
#include "sat/clause_store.hpp"

namespace upec::engine {

std::vector<JobSpec> enumerateJobs(const SweepMatrix& matrix) {
  std::vector<JobSpec> jobs;
  jobs.reserve(matrix.scenarios.size() * matrix.variants.size());
  std::uint32_t id = 0;
  for (const SecretScenario scenario : matrix.scenarios) {
    for (const SweepMatrix::OptionVariant& variant : matrix.variants) {
      JobSpec spec;
      spec.id = id++;
      spec.label = std::string(scenarioName(scenario)) + "/" + variant.label;
      spec.config = matrix.config;
      spec.secretWord = matrix.secretWord;
      spec.options = variant.options;
      spec.options.scenario = scenario;
      spec.kind = matrix.kind;
      spec.mode = matrix.mode;
      spec.kMin = matrix.kMin;
      spec.kMax = matrix.kMax;
      spec.portfolio = matrix.portfolio;
      spec.sharing = matrix.sharing;
      spec.reduction = matrix.reduce;
      jobs.push_back(std::move(spec));
    }
  }
  return jobs;
}

namespace {

// The kError job a contained failure leaves behind: label + diagnostic,
// nothing else — the work never produced partial results worth keeping.
JobResult errorResult(const JobSpec& spec, const char* what) {
  JobResult res;
  res.id = spec.id;
  res.label = spec.label;
  res.verdict = Verdict::kError;
  res.error = what;
  const unsigned worker = WorkStealingPool::currentWorker();
  res.worker = worker == WorkStealingPool::kNotAWorker ? 0 : worker;
  return res;
}

// Runs one segment of a rescheduled ladder and either finishes the job or
// requeues the escalated retry. submitPriority puts the retry at the steal
// end of the worker's deque: the next idle worker takes the expensive
// escalation while this worker keeps draining the first-pass jobs it
// already holds — cheap windows and hard retries overlap instead of
// serialising. Consecutive segments are chained (the next is submitted only
// after the previous returns), so the scheduler is never entered from two
// threads at once.
void runLadderChain(WorkStealingPool& pool, std::shared_ptr<LadderScheduler> ladder,
                    const JobSpec& spec, JobResult& slot, obs::CampaignObserver* observer,
                    CheckpointStore* checkpoint) {
  // The scheduler contains check failures itself (kError window); this
  // catch is the backstop for anything a later segment can still throw.
  try {
    ladder->runSegment();
  } catch (const std::exception& ex) {
    slot = errorResult(spec, ex.what());
    emitJobEvent(observer, slot);
    return;
  }
  if (ladder->done()) {
    slot = ladder->takeResult();
    if (checkpoint != nullptr) checkpoint->recordJob(slot);  // store skips kError
    emitJobEvent(observer, slot);
    return;
  }
  pool.submitPriority(
      [&pool, ladder = std::move(ladder), &spec, &slot, observer, checkpoint]() mutable {
        runLadderChain(pool, std::move(ladder), spec, slot, observer, checkpoint);
      });
}

// The gapless run of a job's cached windows starting at kMin — the only
// part of a journal that may replay. Resume re-solves from the first hole;
// a ladder that cached an L-alert ends there, exactly as it did live.
std::vector<ReplayedWindow> replayPrefix(const JobSpec& spec, const CheckpointLoad& loaded) {
  std::vector<const CheckpointLoad::WindowRecord*> mine;
  for (const CheckpointLoad::WindowRecord& wr : loaded.windows) {
    if (wr.job == spec.id) mine.push_back(&wr);
  }
  std::sort(mine.begin(), mine.end(),
            [](const CheckpointLoad::WindowRecord* a, const CheckpointLoad::WindowRecord* b) {
              return a->window.window.window < b->window.window.window;
            });
  std::vector<ReplayedWindow> prefix;
  unsigned k = spec.kMin;
  for (const CheckpointLoad::WindowRecord* wr : mine) {
    if (k > spec.kMax || wr->window.window.window != k) break;
    prefix.push_back(wr->window);
    if (wr->window.window.verdict == Verdict::kLAlert) break;
    ++k;
  }
  return prefix;
}

// Reconstructs a finished ladder job from its journal records — same
// aggregation closeWindow performs live, no miter, no solver.
JobResult replayedJobResult(const JobSpec& spec, Verdict verdict, double wallMs,
                            const std::vector<ReplayedWindow>& windows) {
  JobResult res;
  res.id = spec.id;
  res.label = spec.label;
  res.verdict = verdict;
  res.wallMs = wallMs;
  res.rescheduleEnabled = spec.reschedule.enabled;
  for (const ReplayedWindow& rw : windows) {
    const WindowResult& w = rw.window;
    res.windows.push_back(w);
    res.peakVars = std::max(res.peakVars, w.stats.vars);
    res.peakClauses = std::max(res.peakClauses, w.stats.clauses);
    res.totalConflicts += w.stats.conflicts;
    res.totalPropagations += w.stats.propagations;
    res.sumVars += w.stats.vars;
    for (const std::string& n : rw.pAlertRegisters) {
      if (std::find(res.pAlertRegisters.begin(), res.pAlertRegisters.end(), n) ==
          res.pAlertRegisters.end()) {
        res.pAlertRegisters.push_back(n);
      }
    }
    if (w.verdict == Verdict::kUnknown) res.undecidedWindows.push_back(w.window);
    if (w.verdict == Verdict::kLAlert) res.lAlertRegisters = rw.lAlertRegisters;
    if (w.verdict != Verdict::kUnknown && !w.stats.solvedBy.empty()) {
      bool counted = false;
      for (auto& [name, wins] : res.solverWins) {
        if (name == w.stats.solvedBy) {
          ++wins;
          counted = true;
          break;
        }
      }
      if (!counted) res.solverWins.emplace_back(w.stats.solvedBy, 1u);
    }
    ++res.replayedWindows;
  }
  return res;
}

}  // namespace

CampaignReport runCampaign(const std::vector<JobSpec>& jobs, const CampaignOptions& options) {
  CampaignReport report;
  report.jobs.resize(jobs.size());

  FaultInjector faults(options.faults);
  const bool checkpointing = !options.checkpoint.path.empty();

  // Campaign-persistent caches (opt-in; CampaignOptions::CacheOptions).
  // Created before the pool so they outlive every task. A warm-start path
  // implies the clause store: the donor journal's learnts are promoted
  // into it and reach the jobs through the ordinary depth-gated fetch —
  // never via blind construction-time seeding, which would ignore the
  // depth tags.
  std::unique_ptr<EncodeCache> encodeCache;
  std::unique_ptr<sat::ClauseStore> clauseStore;
  if (options.cache.prefix) encodeCache = std::make_unique<EncodeCache>();
  if (options.cache.clauseStore || !options.cache.warmStartPath.empty()) {
    clauseStore = std::make_unique<sat::ClauseStore>();
  }

  // Warm start: read-only load of a previous run's journal. Learnts flow
  // into the clause store under each donor job's family key; the budget
  // histogram can pre-size the reschedule ladder (below). Any failure
  // degrades to a cold start with the reason in the report.
  ReschedulePolicy reschedule = options.reschedule;
  WarmStart warm;
  bool warmLoaded = false;
  std::uint64_t warmClauses = 0;
  bool budgetsPrimed = false;
  unsigned primedRung = 0;
  if (!options.cache.warmStartPath.empty()) {
    warmLoaded = CheckpointStore::loadWarmStart(options.cache.warmStartPath, jobs, warm);
    if (warmLoaded) {
      for (const CheckpointLoad::LearntRecord& lr : warm.learnts) {
        const JobSpec* donor = nullptr;
        for (const JobSpec& spec : jobs) {
          if (spec.id == lr.job) {
            donor = &spec;
            break;
          }
        }
        if (donor == nullptr || !donor->sharing ||
            donor->mode != DeepeningMode::kIncremental) {
          continue;
        }
        std::vector<std::vector<sat::Lit>> lits;
        lits.reserve(lr.clauses.size());
        for (const std::vector<int>& codes : lr.clauses) {
          std::vector<sat::Lit> clause;
          clause.reserve(codes.size());
          for (const int code : codes) clause.push_back(sat::Lit::fromCode(code));
          lits.push_back(std::move(clause));
        }
        clauseStore->promote(clauseFamilyKey(*donor), lr.depth,
                             std::span<const std::vector<sat::Lit>>(lits.data(), lits.size()));
        warmClauses += lits.size();
      }
      // Budget priming: escalate the initial budget to the ladder rung
      // that decided >= 90% of the previous run's retried windows, so
      // this run skips the attempts the donor already proved futile.
      // Needs an explicit initialBudget to scale from.
      if (options.cache.primeBudgets && warm.hasBudgetHist && reschedule.enabled &&
          reschedule.initialBudget != 0) {
        std::uint64_t total = 0;
        for (const std::uint64_t n : warm.decidedByAttempt) total += n;
        if (total != 0) {
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < warm.decidedByAttempt.size(); ++i) {
            cumulative += warm.decidedByAttempt[i];
            if (cumulative * 10 >= total * 9) {
              primedRung = static_cast<unsigned>(i);
              break;
            }
          }
          for (unsigned i = 0; i < primedRung; ++i) {
            const double grown =
                static_cast<double>(reschedule.initialBudget) * reschedule.budgetGrowth;
            if (grown >= 9223372036854775808.0) break;  // saturate, matching escalate()
            reschedule.initialBudget = static_cast<std::uint64_t>(grown);
          }
          if (reschedule.maxBudget != 0) {
            reschedule.initialBudget = std::min(reschedule.initialBudget, reschedule.maxBudget);
          }
          // Windows the donor abandoned need rungs it never had.
          if (warm.undecidedWindows != 0) ++reschedule.maxReschedules;
          budgetsPrimed = primedRung != 0 || warm.undecidedWindows != 0;
        }
      }
    }
  }

  // Fold the campaign-level knobs (reschedule policy, deadline, injected
  // solver fault, checkpoint replay state, caches) into per-job copies.
  // Copied only when there is something to inject (the copies must then
  // outlive the pool tasks below); the plain path hands the caller's specs
  // through untouched, keeping the default trajectory bit-identical.
  const bool inject = options.reschedule.enabled || options.attemptDeadlineMs != 0 ||
                      options.faults.solverAbortAtConflict != 0 || checkpointing ||
                      encodeCache != nullptr;
  std::vector<JobSpec> injected;
  if (inject) {
    injected = jobs;
    for (JobSpec& spec : injected) {
      if (reschedule.enabled && spec.kind == JobKind::kIntervalLadder &&
          !spec.reschedule.enabled) {
        spec.reschedule = reschedule;
      }
      if (options.attemptDeadlineMs != 0 && spec.options.solveDeadlineMs == 0) {
        spec.options.solveDeadlineMs = options.attemptDeadlineMs;
      }
      if (options.faults.solverAbortAtConflict != 0) {
        spec.options.faultAbortAtConflict = options.faults.solverAbortAtConflict;
      }
      if (encodeCache != nullptr) {
        // The engine contributes the design-identity key base; the upec
        // layer appends the property-shaped parts and BmcEngine the depth
        // (see formal/prefix_cache.hpp). Non-incremental paths ignore it.
        spec.options.prefixCache = encodeCache.get();
        spec.options.prefixKey = EncodeCache::keyFor(spec.config, spec.secretWord);
      }
    }
  }

  // Checkpoint journal. Resume loads the existing journal first and folds
  // what it recovered into the job copies: finished ladder jobs are
  // reconstructed outright (never submitted), partially-done ones carry
  // their decided prefix in replayWindows, sharing jobs seed their clause
  // exchange from the persisted learnts. Any load failure degrades to a
  // fresh journal — resume never fails a campaign that could run fresh.
  std::unique_ptr<CheckpointStore> checkpoint;
  std::vector<bool> replayedJob(jobs.size(), false);
  std::vector<std::string> ckDiagnostics;
  bool resumed = false;
  if (checkpointing) {
    checkpoint = std::make_unique<CheckpointStore>(options.checkpoint.path, &faults,
                                                   options.checkpoint.syncEveryLine);
    if (options.checkpoint.resume) {
      CheckpointLoad loaded;
      resumed = checkpoint->openResume(injected, loaded);
      ckDiagnostics = std::move(loaded.diagnostics);
      if (resumed) {
        for (std::size_t i = 0; i < injected.size(); ++i) {
          JobSpec& spec = injected[i];
          // Methodology/hunt drivers keep no per-window journal — they
          // re-solve on resume (documented in src/engine/README.md).
          if (spec.kind != JobKind::kIntervalLadder) continue;
          std::vector<ReplayedWindow> prefix = replayPrefix(spec, loaded);
          const CheckpointLoad::JobRecord* jobRec = nullptr;
          for (const CheckpointLoad::JobRecord& jr : loaded.jobs) {
            if (jr.job == spec.id) {
              jobRec = &jr;
              break;
            }
          }
          if (jobRec != nullptr) {
            report.jobs[i] = replayedJobResult(spec, jobRec->verdict, jobRec->wallMs, prefix);
            replayedJob[i] = true;
            ++report.replayedJobs;
            continue;
          }
          spec.replayWindows = std::move(prefix);
          if (spec.sharing) {
            for (const CheckpointLoad::LearntRecord& lr : loaded.learnts) {
              if (lr.job == spec.id) {
                spec.options.seedLearnts = lr.clauses;
                break;
              }
            }
          }
        }
      }
    }
    if (!checkpoint->isOpen() && !checkpoint->openFresh(injected)) {
      ckDiagnostics.push_back("checkpoint: cannot create journal at " + options.checkpoint.path);
      checkpoint.reset();
    }
  }
  const std::vector<JobSpec>& specs = inject ? injected : jobs;
  // One ledger for the whole campaign: the conflictCeiling bounds retry
  // conflicts across all rescheduled jobs, not per job.
  ConflictLedger ledger(options.reschedule.conflictCeiling);

  Stopwatch campaignTimer;
  obs::Span span("engine", "campaign");
  if (span.enabled()) span.arg("jobs", std::uint64_t{specs.size()});
  obs::CampaignObserver* observer = options.observer;
  // Live introspection (opt-in): wrap the caller's observer in a progress
  // tracker and open the HTTP endpoint. The server only ever reads tracker
  // aggregates and the metrics registry — never solver threads. Declared
  // after the ledger so teardown stops the server before anything it reads.
  std::unique_ptr<ProgressTracker> tracker;
  std::unique_ptr<obs::StatusServer> statusServer;
  if (options.statusPort > 65535) {
    // Don't let the uint16 cast below wrap onto an unintended port.
    logInfo("campaign: invalid status port " + std::to_string(options.statusPort) +
            " (max 65535); continuing without introspection");
  } else if (options.statusPort >= 0) {
    tracker = std::make_unique<ProgressTracker>(options.observer);
    tracker->prime(specs);
    tracker->attachLedger(&ledger);
    observer = tracker.get();
    obs::StatusServerOptions serverOptions;
    serverOptions.port = static_cast<std::uint16_t>(options.statusPort);
    ProgressTracker* t = tracker.get();
    serverOptions.status = [t] { return t->statusJson(); };
    serverOptions.events = [t] { return t->eventsTail(); };
    statusServer = std::make_unique<obs::StatusServer>();
    if (statusServer->start(std::move(serverOptions))) {
      logInfo("campaign: status endpoint on http://127.0.0.1:" +
              std::to_string(statusServer->port()) + " (/metrics /status /events)");
    } else {
      logInfo("campaign: cannot bind status port " + std::to_string(options.statusPort) +
              "; continuing without introspection");
      statusServer.reset();
    }
  }
  ThreadGovernor governor(options.solverThreadCap);
  sat::MemberGovernor* memberSlots = options.solverThreadCap != 0 ? &governor : nullptr;
  {
    WorkStealingPool pool(options.threads);
    report.threads = pool.numThreads();
    logInfo("campaign: " + std::to_string(specs.size()) + " jobs on " +
            std::to_string(pool.numThreads()) + " threads");
    if (observer != nullptr) {
      obs::StreamEvent e("campaign_start");
      e.num("jobs", specs.size()).num("threads", pool.numThreads());
      observer->onEvent(e);
    }
    if (observer != nullptr && checkpointing) {
      if (checkpoint != nullptr) {
        unsigned replayedWindowsTotal = 0;
        for (std::size_t i = 0; i < specs.size(); ++i) {
          if (replayedJob[i]) replayedWindowsTotal += report.jobs[i].replayedWindows;
          replayedWindowsTotal += static_cast<unsigned>(specs[i].replayWindows.size());
        }
        obs::StreamEvent e("checkpoint_open");
        e.str("path", checkpoint->path())
            .flag("resumed", resumed)
            .num("replayed_windows", replayedWindowsTotal)
            .num("replayed_jobs", report.replayedJobs);
        observer->onEvent(e);
      } else {
        obs::StreamEvent e("checkpoint_error");
        e.str("path", options.checkpoint.path)
            .str("error", ckDiagnostics.empty() ? std::string("journal unusable")
                                                : ckDiagnostics.back());
        observer->onEvent(e);
      }
    }
    // Re-stream the fully-replayed jobs' cached verdicts (flagged
    // "replayed") so a consumer tailing the events still sees the complete
    // campaign; partially-replayed jobs stream theirs from the scheduler.
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (!replayedJob[i]) continue;
      const JobResult& res = report.jobs[i];
      for (const WindowResult& w : res.windows) {
        emitWindowEvent(observer, res.id, res.label, w, /*replayed=*/true);
      }
      emitJobEvent(observer, res);
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (replayedJob[i]) continue;  // adopted from the journal above
      // Each task writes only its own slot; no synchronisation needed
      // beyond the pool's completion barrier.
      const JobSpec& spec = specs[i];
      JobResult& slot = report.jobs[i];
      CheckpointStore* ck = checkpoint.get();
      sat::ClauseStore* cs = clauseStore.get();
      // Containment: a task that dies — miter construction, an injected
      // task fault — becomes a kError job with its diagnostic in the
      // report; the campaign always completes.
      if (spec.kind == JobKind::kIntervalLadder && spec.reschedule.enabled) {
        pool.submit([&pool, &spec, &slot, memberSlots, &ledger, observer, ck, cs, &faults] {
          try {
            if (faults.nextTaskThrows()) throw std::runtime_error("injected task fault");
            // Built inside the task so miter construction parallelises.
            auto ladder =
                std::make_shared<LadderScheduler>(spec, memberSlots, &ledger, observer, ck, cs);
            runLadderChain(pool, std::move(ladder), spec, slot, observer, ck);
          } catch (const std::exception& ex) {
            slot = errorResult(spec, ex.what());
            emitJobEvent(observer, slot);
          }
        });
      } else {
        pool.submit([&spec, &slot, memberSlots, observer, ck, cs, &faults] {
          try {
            if (faults.nextTaskThrows()) throw std::runtime_error("injected task fault");
            slot = runJob(spec, memberSlots, nullptr, observer, ck, cs);
            if (ck != nullptr) ck->recordJob(slot);  // store skips kError
          } catch (const std::exception& ex) {
            slot = errorResult(spec, ex.what());
            emitJobEvent(observer, slot);
          }
        });
      }
    }
    pool.wait();
  }
  report.wallMs = campaignTimer.elapsedMs();
  report.solverThreadCap = options.solverThreadCap;
  report.peakSolverThreads = governor.peakInUse();
  report.rescheduleConflictCeiling = ledger.ceiling();
  report.checkpointEnabled = checkpointing;
  report.resumed = resumed;
  report.checkpointWriteFailed = checkpoint != nullptr && checkpoint->writeFailed();
  report.checkpointDiagnostics = std::move(ckDiagnostics);
  report.finalize();
  if (encodeCache != nullptr) {
    const EncodeCache::Stats cstats = encodeCache->stats();
    report.cachePrefixEnabled = true;
    report.prefixHits = cstats.hits;
    report.prefixMisses = cstats.misses;
    report.prefixInsertions = cstats.insertions;
    if (checkpoint != nullptr) {
      checkpoint->recordPrefixStats(cstats.hits, cstats.misses, cstats.insertions,
                                    cstats.rejected);
    }
  }
  if (clauseStore != nullptr) {
    const sat::ClauseStore::Stats sstats = clauseStore->stats();
    report.cacheStoreEnabled = true;
    report.storePromoted = sstats.promoted;
    report.storeDuplicates = sstats.duplicates;
    report.storeFetched = sstats.fetched;
    report.storeOverflow = sstats.overflow;
  }
  report.warmStarted = warmLoaded;
  report.warmStartClauses = warmClauses;
  report.budgetsPrimed = budgetsPrimed;
  report.primedFromAttempt = primedRung;
  report.primedInitialBudget = budgetsPrimed ? reschedule.initialBudget : 0;
  report.cacheDiagnostics = std::move(warm.diagnostics);
  if (checkpoint != nullptr) {
    // The histogram only exists on a journal whose campaign *finished* —
    // exactly the property a warm start wants: a crashed run resumes
    // (same-run learnts, no histogram), a finished one donates.
    std::vector<std::uint64_t> hist(report.decidedByAttempt.begin(),
                                    report.decidedByAttempt.end());
    std::uint64_t undecided = 0;
    for (const JobResult& job : report.jobs) undecided += job.undecidedWindows.size();
    // Written only when it says something — rescheduling ran (the histogram
    // is nonempty) or windows stayed undecided. An unrescheduled fully
    // decided campaign has no budget experience to donate, and skipping the
    // line keeps such journals byte-compatible with v1 consumers.
    if (!hist.empty() || undecided != 0) {
      checkpoint->recordBudgetHist(undecided,
                                   std::span<const std::uint64_t>(hist.data(), hist.size()));
    }
  }
  // Fold a snapshot of the metrics registry into the report so the JSON a
  // campaign writes carries its own measurements.
  if (obs::metricsEnabled()) report.metricsJson = obs::metrics().toJson();
  if (span.enabled()) span.arg("verdict", verdictName(report.overallVerdict));
  if (observer != nullptr) {
    obs::StreamEvent e("campaign_end");
    e.str("verdict", verdictName(report.overallVerdict))
        .real("wall_ms", report.wallMs)
        .num("proven", report.numProven)
        .num("p_alerts", report.numPAlerts)
        .num("l_alerts", report.numLAlerts)
        .num("unknown", report.numUnknown)
        .num("errors", report.numErrors);
    observer->onEvent(e);
  }
  // Surface the stream sink's write count in the report (diagnosing a
  // truncated events file: lines_written says what the writer produced,
  // the file says what survived). The tracker is transparent — count the
  // caller's sink, not the wrapper.
  if (auto* writer = dynamic_cast<obs::NdjsonWriter*>(options.observer)) {
    report.observerAttached = true;
    report.observerLinesWritten = writer->linesWritten();
  }
  // Stop serving before the locals the endpoint reads go away; the final
  // /status (running:false, eta 0) stays scrapeable until here.
  if (statusServer != nullptr) statusServer->stop();
  return report;
}

}  // namespace upec::engine
