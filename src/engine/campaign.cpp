#include "engine/campaign.hpp"

#include "base/log.hpp"
#include "base/stopwatch.hpp"
#include "engine/governor.hpp"
#include "engine/thread_pool.hpp"

namespace upec::engine {

std::vector<JobSpec> enumerateJobs(const SweepMatrix& matrix) {
  std::vector<JobSpec> jobs;
  jobs.reserve(matrix.scenarios.size() * matrix.variants.size());
  std::uint32_t id = 0;
  for (const SecretScenario scenario : matrix.scenarios) {
    for (const SweepMatrix::OptionVariant& variant : matrix.variants) {
      JobSpec spec;
      spec.id = id++;
      spec.label = std::string(scenarioName(scenario)) + "/" + variant.label;
      spec.config = matrix.config;
      spec.secretWord = matrix.secretWord;
      spec.options = variant.options;
      spec.options.scenario = scenario;
      spec.kind = matrix.kind;
      spec.mode = matrix.mode;
      spec.kMin = matrix.kMin;
      spec.kMax = matrix.kMax;
      spec.portfolio = matrix.portfolio;
      spec.sharing = matrix.sharing;
      jobs.push_back(std::move(spec));
    }
  }
  return jobs;
}

CampaignReport runCampaign(const std::vector<JobSpec>& jobs, const CampaignOptions& options) {
  CampaignReport report;
  report.jobs.resize(jobs.size());

  Stopwatch campaignTimer;
  ThreadGovernor governor(options.solverThreadCap);
  sat::MemberGovernor* memberSlots = options.solverThreadCap != 0 ? &governor : nullptr;
  {
    WorkStealingPool pool(options.threads);
    report.threads = pool.numThreads();
    logInfo("campaign: " + std::to_string(jobs.size()) + " jobs on " +
            std::to_string(pool.numThreads()) + " threads");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      // Each task writes only its own slot; no synchronisation needed
      // beyond the pool's completion barrier.
      pool.submit([&report, &jobs, memberSlots, i] {
        report.jobs[i] = runJob(jobs[i], memberSlots);
      });
    }
    pool.wait();
  }
  report.wallMs = campaignTimer.elapsedMs();
  report.solverThreadCap = options.solverThreadCap;
  report.peakSolverThreads = governor.peakInUse();
  report.finalize();
  return report;
}

}  // namespace upec::engine
