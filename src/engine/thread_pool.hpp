// Work-stealing thread pool for the campaign engine.
//
// Each worker owns a deque: it pushes and pops work at the *bottom* (LIFO,
// cache-friendly for tasks that spawn subtasks) and victims are robbed at
// the *top* (FIFO, so thieves take the oldest — typically largest — work).
// Submissions from outside the pool are distributed round-robin. Verification
// jobs are coarse (seconds of SAT solving per task), so a mutex per deque is
// entirely adequate; the solver-internal state needs no locking at all
// because every job owns a private sat::Solver.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace upec::engine {

class WorkStealingPool {
 public:
  static constexpr unsigned kNotAWorker = ~0u;

  // threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit WorkStealingPool(unsigned threads = 0);
  ~WorkStealingPool();  // waits for all submitted tasks, then joins
  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  // Enqueues a task. Thread-safe; may be called from inside a task (the
  // subtask lands on the calling worker's own deque and is preferentially
  // executed by it, stolen only when another worker runs dry).
  void submit(std::function<void()> task);

  // Enqueues a task at the *steal end* (top) of the target deque: it is the
  // next task any dry worker steals, while the deque's owner keeps draining
  // its bottom. The campaign uses this for budget-escalated retry windows —
  // an idle worker picks the expensive retry up while the worker that
  // discovered it continues with the cheap first-pass jobs it already has.
  void submitPriority(std::function<void()> task);

  // Blocks until every task submitted so far has finished executing. Must
  // be called from outside the pool (a task waiting on its own pool could
  // never finish itself).
  void wait();

  unsigned numThreads() const { return static_cast<unsigned>(workers_.size()); }

  // Index of the pool worker executing the caller, or kNotAWorker when
  // called from outside the pool (results use it to record placement).
  static unsigned currentWorker();

  // Tasks whose exception escaped to the pool itself (the containment
  // layers above the pool should have caught it; nonzero means a bug in a
  // caller, but the pool stays alive and wait() still returns).
  std::uint64_t uncaughtExceptions() const {
    return uncaught_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;
    std::thread thread;
  };

  void workerLoop(unsigned self);
  bool tryRun(unsigned self);  // own work first, then steal; false = dry
  void enqueue(std::function<void()> task, bool stealFirst);

  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex sleepMutex_;
  std::condition_variable sleepCv_;  // workers idle here
  std::condition_variable doneCv_;   // wait() blocks here
  std::uint64_t queued_ = 0;         // tasks enqueued, not yet started
  std::uint64_t unfinished_ = 0;     // tasks enqueued, not yet finished
  std::atomic<std::uint64_t> uncaught_{0};
  bool stopping_ = false;
  unsigned nextVictim_ = 0;  // round-robin for external submits
};

}  // namespace upec::engine
