// Campaign-level encoding prefix cache: formal::PrefixCache with policy.
//
// One sweep runs many ladder jobs over the *same* SoC miter; only solver
// knobs, budgets and portfolio shapes differ. Each job's incremental
// session used to re-unroll and re-Tseitin-encode the identical CNF
// prefix. EncodeCache makes the first job of each equivalence class pay
// that cost and every later one clone it (see formal/prefix_cache.hpp for
// the cloning mechanics and why the clone is bit-exact).
//
// The engine owns the key's design-identity base: keyFor() folds every
// SocConfig field the generated netlist depends on, plus the secret word
// (it selects the aliased/non-aliased memory locations). The upec layer
// appends the property-shaped parts (init-equality mode; reduction
// options/scenario/exclusions when reduction is on), and BmcEngine
// appends the depth — so the full key separates exactly the sessions
// whose encoded frames can differ.
//
// Thread-safe; first writer wins when two jobs race the same cold encode
// (both prefixes are identical by determinism, so either copy is
// correct). Metrics: upec_engine_prefix_cache_{hits,misses} counters when
// obs metrics are enabled.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "formal/prefix_cache.hpp"
#include "soc/config.hpp"

namespace upec::engine {

class EncodeCache final : public formal::PrefixCache {
 public:
  // A campaign's distinct prefixes number in the handful (configs ×
  // equality modes × first-window depths), far below this cap; it exists
  // to bound memory if a pathological sweep keys thousands of variants.
  explicit EncodeCache(std::size_t maxEntries = 64) : maxEntries_(maxEntries) {}

  std::shared_ptr<const formal::EncodedPrefix> lookup(const std::string& key) override;
  void store(const std::string& key, std::shared_ptr<const formal::EncodedPrefix> prefix) override;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;  // distinct prefixes stored
    std::uint64_t rejected = 0;    // stores dropped (duplicate key or cap)
  };
  Stats stats() const;
  std::size_t size() const;

  // Design-identity base key: every SocConfig/MachineConfig field the
  // miter netlist is generated from, plus the secret word.
  static std::string keyFor(const soc::SocConfig& config, unsigned secretWord);

 private:
  mutable std::mutex mutex_;
  std::size_t maxEntries_;
  std::unordered_map<std::string, std::shared_ptr<const formal::EncodedPrefix>> entries_;
  Stats stats_;
};

}  // namespace upec::engine
