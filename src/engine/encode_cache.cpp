#include "engine/encode_cache.hpp"

#include "obs/metrics.hpp"

namespace upec::engine {

std::shared_ptr<const formal::EncodedPrefix> EncodeCache::lookup(const std::string& key) {
  std::shared_ptr<const formal::EncodedPrefix> found;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      found = it->second;
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
  }
  if (obs::metricsEnabled()) {
    obs::metrics().counter(found ? "engine.prefix_cache.hits" : "engine.prefix_cache.misses")
        .add(1);
  }
  return found;
}

void EncodeCache::store(const std::string& key,
                        std::shared_ptr<const formal::EncodedPrefix> prefix) {
  if (!prefix) return;
  std::lock_guard<std::mutex> lock(mutex_);
  // First writer wins: a racing double-encode produced identical prefixes,
  // so the copy already stored is as good as this one. The cap bounds
  // memory, not correctness — an uncached session just encodes cold.
  if (entries_.count(key) != 0 || entries_.size() >= maxEntries_) {
    ++stats_.rejected;
    return;
  }
  entries_.emplace(key, std::move(prefix));
  ++stats_.insertions;
}

EncodeCache::Stats EncodeCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t EncodeCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::string EncodeCache::keyFor(const soc::SocConfig& config, unsigned secretWord) {
  const riscv::MachineConfig& m = config.machine;
  std::string key = "soc:";
  key += std::to_string(m.xlen) + '.' + std::to_string(m.nregs) + '.';
  key += std::to_string(m.imemWords) + '.' + std::to_string(m.dmemWords) + '.';
  key += std::to_string(m.pmpEntries) + '.' + (m.pmpLockBug ? '1' : '0');
  key += "|c:" + std::to_string(config.cacheLines);
  key += '.' + std::to_string(config.pendingWriteCycles);
  key += '.' + std::to_string(config.refillCycles);
  key += "|v:" + std::to_string(static_cast<int>(config.variant));
  key += "|s:" + std::to_string(secretWord);
  return key;
}

}  // namespace upec::engine
