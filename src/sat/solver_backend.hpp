// The solver seam of the verification stack.
//
// Every engine above the SAT layer (CnfBuilder, BmcEngine, KInduction,
// UpecEngine, the campaign jobs) talks to an abstract SolverBackend instead
// of the concrete CDCL implementation, mirroring how the paper's UPEC flow
// treats the property checker as an interchangeable decision procedure. Two
// implementations exist: the CDCL sat::Solver, and sat::PortfolioSolver,
// which races several diversified CDCL instances and returns the first
// definitive answer.
//
// SolverConfig exposes the per-instance diversification knobs that make a
// portfolio worth racing: random seed, phase-saving policy, restart
// strategy, VSIDS decay and random-decision frequency. Identical formulas
// under different knobs explore very different parts of the search space,
// which is the cheapest remaining speedup for hard UPEC windows.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace upec::sat {

// What happens to the saved phase (the polarity a variable is first tried
// with) across the solver's lifetime.
enum class PhasePolicy : std::uint8_t {
  kSave,      // classic phase saving: keep the last assigned polarity
  kReset,     // forget saved phases at every restart
  kInverted,  // phase saving, but variables start at the opposite default
};
const char* phasePolicyName(PhasePolicy p);

enum class RestartPolicy : std::uint8_t {
  kLuby,       // restartBase * luby(i) conflicts between restarts
  kGeometric,  // restartBase * restartGrowth^i conflicts between restarts
};
const char* restartPolicyName(RestartPolicy p);

// Per-instance heuristic knobs. The default configuration reproduces the
// seed solver's behaviour bit-for-bit (no randomness, Luby restarts, phase
// saving, 0.95 decay), so a single-config backend is exactly the old engine.
struct SolverConfig {
  std::string name;  // label for attribution in reports ("" = describe())

  std::uint64_t seed = 0;  // PRNG seed for random decisions / tie-breaks
  PhasePolicy phasePolicy = PhasePolicy::kSave;
  RestartPolicy restartPolicy = RestartPolicy::kLuby;
  std::uint64_t restartBase = 100;  // conflicts before the first restart
  double restartGrowth = 1.5;      // geometric restarts only
  double varDecay = 0.95;          // VSIDS activity decay factor (0,1)
  double randomDecisionFreq = 0.0; // probability a decision picks a random var

  // Learnt-clause export thresholds, consulted only when the solver is
  // attached to a ClauseExchange: a learnt is published when it has at most
  // shareMaxLits literals AND its LBD (number of distinct decision levels
  // among them — "glue") is at most shareMaxLbd. Short, low-glue clauses
  // are the ones most likely to prune another member's search.
  unsigned shareMaxLits = 8;
  unsigned shareMaxLbd = 4;

  // Solver-depth profiling: per-phase wall timings (propagate / analyze /
  // reduce-DB / restart) and exchange-efficacy counters, folded into
  // SolverStats. Read-only instrumentation — it never changes the search
  // trajectory — but it reads the clock inside the CDCL loop, so it is off
  // by default and the default path performs zero timing syscalls.
  bool profile = false;

  // Human-readable one-liner: the name if set, otherwise the knobs.
  std::string describe() const;

  // A deterministic family of n mutually-diverse configurations; member 0
  // is always the default (seed-solver) configuration so a portfolio never
  // does worse than the engine it replaces on instances the default wins.
  static std::vector<SolverConfig> diversified(unsigned n, std::uint64_t baseSeed = 1);
};

class ClauseExchange;  // sat/exchange.hpp — learnt-clause sharing pool

// Caps the number of solver threads racing concurrently across a whole
// process (the campaign engine's pool × portfolio-members oversubscription
// hole). A portfolio asks for one slot per member before spawning its race
// and releases them when the race joins. acquire() blocks until at least
// one slot is free, then claims between 1 and `want` slots — so a caller
// always makes progress (degraded to fewer members, at worst one), and the
// sum of outstanding grants never exceeds the implementation's cap.
// Implementations live above the sat layer (see engine::ThreadGovernor);
// this interface keeps the dependency pointing upward.
class MemberGovernor {
 public:
  virtual ~MemberGovernor() = default;
  // Blocks until a slot frees, then claims min(want, free) >= 1 slots and
  // returns the claimed count. want == 0 returns 0 immediately.
  virtual unsigned acquire(unsigned want) = 0;
  virtual void release(unsigned n) = 0;
};

// Portfolio-wide behaviour knobs, distinct from the per-member SolverConfig.
struct PortfolioOptions {
  // Learnt-clause sharing: members publish short/low-LBD learnts to a
  // ClauseExchange owned by the portfolio and import each other's at
  // restart boundaries (thresholds per member on SolverConfig).
  bool sharing = false;
  std::size_t exchangeCapacity = 2048;  // ring slots when sharing

  // Global member-slot cap; not owned, may be null (ungoverned). When set,
  // every solveLimited() race acquires one slot per member first and
  // degrades gracefully: with g granted slots only members 0..g-1 race
  // (member 0 — the baseline config — is never shed).
  MemberGovernor* governor = nullptr;

  // Learnt clauses from a previous process (checkpoint resume), published
  // into the portfolio's ClauseExchange at construction so every member
  // imports them on its first solve. Only consumed when sharing is on and
  // 2+ members race (otherwise there is no exchange to seed). The clauses
  // must be consequences of the formula the members will be fed — the
  // engine's checkpoint fingerprint guarantees it.
  std::vector<std::vector<Lit>> seedLearnts;
};

// Abstract incremental SAT interface. The contract follows MiniSat:
//  * variables are dense ints handed out by newVar();
//  * addClause() may simplify against the top-level assignment and returns
//    false once the formula is known unsatisfiable;
//  * solveLimited() solves under assumptions and may return kUndef when a
//    resource budget is exhausted or a cooperative stop was requested;
//  * after kTrue, modelValue() is valid; after kFalse under assumptions,
//    unsatCore() holds a subset of the assumptions sufficient for UNSAT.
//
// Thread-safety: distinct backends are fully independent; one backend may
// only be driven from one thread at a time, except requestStop(), which is
// safe to call from any thread while solveLimited() runs (that is the
// portfolio's cancellation hook, sharing the conflict-budget early-exit
// path inside the search loop).
class SolverBackend {
 public:
  virtual ~SolverBackend() = default;

  virtual Var newVar() = 0;
  virtual int numVars() const = 0;
  virtual std::uint64_t numClauses() const = 0;

  virtual bool addClause(std::span<const Lit> lits) = 0;
  bool addClause(std::initializer_list<Lit> lits) {
    return addClause(std::span<const Lit>(lits.begin(), lits.size()));
  }
  bool addUnit(Lit l) { return addClause({l}); }

  // Solves under the given assumptions, honouring the conflict budget and
  // pending stop requests (both yield kUndef).
  virtual LBool solveLimited(std::span<const Lit> assumptions) = 0;
  LBool solve(std::span<const Lit> assumptions = {}) { return solveLimited(assumptions); }

  // Valid after solveLimited() returned kTrue.
  virtual bool modelValue(Var v) const = 0;
  bool modelValue(Lit l) const { return modelValue(l.var()) != l.sign(); }

  // Valid after solveLimited() returned kFalse: the subset of the
  // assumptions used to derive unsatisfiability.
  virtual const std::vector<Lit>& unsatCore() const = 0;
  const std::vector<Lit>& conflictingAssumptions() const { return unsatCore(); }

  // False once the formula is unsatisfiable independent of assumptions.
  virtual bool okay() const = 0;

  // Cumulative effort (for a portfolio: summed over all members), and the
  // effort of the most recent solveLimited() call alone.
  virtual SolverStats stats() const = 0;
  virtual SolverStats lastSolveStats() const = 0;

  // Abort solveLimited() after this many conflicts per call (0 = unlimited;
  // for a portfolio the budget applies to each member separately).
  virtual void setConflictBudget(std::uint64_t budget) = 0;

  // True when the most recent solveLimited() returned kUndef because the
  // conflict budget ran out (for a portfolio: no member answered and at
  // least one ran out), as opposed to a cooperative stop. The campaign's
  // reschedule scheduler keys on this: a budget-starved window is worth
  // re-running with a larger budget, a cancelled one is not.
  virtual bool lastSolveBudgetExhausted() const { return false; }

  // Wall-clock deadline per solveLimited() call in milliseconds (0 = none).
  // Checked inside the search loop — no watchdog thread — so expiry is
  // detected within a bounded number of conflicts/propagations. Expiry
  // yields kUndef with lastSolveDeadlineExpired() set; unlike the conflict
  // budget it never marks the solve retry-worthy.
  virtual void setSolveDeadlineMs(std::uint64_t /*deadlineMs*/) {}
  virtual bool lastSolveDeadlineExpired() const { return false; }

  // Fault injection (test harness): throw from inside solveLimited() once
  // this many conflicts occur in one call (0 = off). Exercises the
  // engine's kError containment deterministically. Backends without a
  // search loop ignore it.
  virtual void setFaultAbortAtConflict(std::uint64_t /*conflicts*/) {}

  // Learnt clauses currently published on the backend's ClauseExchange
  // (most recent first, at most maxClauses) — the persistence payload for
  // cross-process learnt reuse. Empty for backends without an exchange.
  virtual std::vector<std::vector<Lit>> learntSnapshot(std::size_t /*maxClauses*/) const {
    return {};
  }

  // Mid-session learnt seeding (engine::ClauseStore → next window): offer
  // clauses proven as consequences of this backend's formula. A sharing
  // portfolio publishes them on its exchange so every member imports them
  // at its next restart boundary; every other backend ignores the call —
  // injecting foreign clauses into a single CDCL instance would perturb
  // its trajectory, and the store's payoff is portfolio-wide pruning.
  // Must be called between solveLimited() calls from the driving thread.
  virtual void seedClauses(std::span<const std::vector<Lit>> /*clauses*/) {}

  // Cooperative cancellation: ask a running (or upcoming) solveLimited() to
  // return kUndef as soon as possible. Sticky until clearStop().
  virtual void requestStop() = 0;
  virtual void clearStop() = 0;

  // Learnt-clause sharing: attach this backend to an exchange as consumer
  // `member`. Must happen before the first solveLimited() and from the
  // setup thread (a portfolio attaches its members at construction).
  // Backends that cannot share simply ignore the call.
  virtual void attachExchange(ClauseExchange* /*exchange*/, unsigned /*member*/) {}

  // Configuration summary, e.g. for report rows.
  virtual std::string describe() const = 0;
  // Which configuration answered the most recent solveLimited() — for a
  // single backend that is itself; a portfolio names the race winner.
  virtual std::string lastSolveAttribution() const { return describe(); }
};

// Builds a backend from a configuration list: zero or one config yields the
// plain CDCL solver, two or more a PortfolioSolver racing one CDCL instance
// per config. The PortfolioOptions (sharing, governor) only apply to the
// portfolio case — a single backend has nobody to share with or race.
std::unique_ptr<SolverBackend> makeSolverBackend(std::span<const SolverConfig> configs,
                                                 const PortfolioOptions& portfolio = {});
inline std::unique_ptr<SolverBackend> makeSolverBackend(
    const std::vector<SolverConfig>& configs, const PortfolioOptions& portfolio = {}) {
  return makeSolverBackend(std::span<const SolverConfig>(configs.data(), configs.size()),
                           portfolio);
}

}  // namespace upec::sat
