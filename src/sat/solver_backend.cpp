#include "sat/solver_backend.hpp"

#include <cstdio>

#include "sat/portfolio.hpp"
#include "sat/solver.hpp"

namespace upec::sat {

const char* phasePolicyName(PhasePolicy p) {
  switch (p) {
    case PhasePolicy::kSave: return "save";
    case PhasePolicy::kReset: return "reset";
    case PhasePolicy::kInverted: return "inverted";
  }
  return "?";
}

const char* restartPolicyName(RestartPolicy p) {
  switch (p) {
    case RestartPolicy::kLuby: return "luby";
    case RestartPolicy::kGeometric: return "geometric";
  }
  return "?";
}

std::string SolverConfig::describe() const {
  if (!name.empty()) return name;
  char buf[128];
  std::snprintf(buf, sizeof buf, "seed=%llu,phase=%s,restart=%s,decay=%.2f,rand=%.2f",
                static_cast<unsigned long long>(seed), phasePolicyName(phasePolicy),
                restartPolicyName(restartPolicy), varDecay, randomDecisionFreq);
  return buf;
}

std::vector<SolverConfig> SolverConfig::diversified(unsigned n, std::uint64_t baseSeed) {
  std::vector<SolverConfig> configs;
  configs.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    SolverConfig c;
    c.name = "cfg" + std::to_string(i);
    if (i == 0) {
      // Member 0 is the seed solver verbatim: the portfolio's floor.
      c.name = "baseline";
      configs.push_back(std::move(c));
      continue;
    }
    c.seed = baseSeed + i;
    // Cycle through qualitatively different heuristic mixes so members
    // disagree on search order, not just on PRNG stream.
    switch (i % 4) {
      case 1:
        c.phasePolicy = PhasePolicy::kInverted;
        c.randomDecisionFreq = 0.02;
        break;
      case 2:
        c.restartPolicy = RestartPolicy::kGeometric;
        c.restartGrowth = 1.5;
        c.varDecay = 0.85;  // fast decay: aggressive focus on recent conflicts
        break;
      case 3:
        c.phasePolicy = PhasePolicy::kReset;
        c.restartBase = 50;  // rapid restarts
        c.randomDecisionFreq = 0.05;
        break;
      case 0:  // i >= 4 wrap-around: slow-decay Luby with mild randomness
        c.varDecay = 0.99;
        c.randomDecisionFreq = 0.01;
        break;
    }
    configs.push_back(std::move(c));
  }
  return configs;
}

std::unique_ptr<SolverBackend> makeSolverBackend(std::span<const SolverConfig> configs,
                                                 const PortfolioOptions& portfolio) {
  if (configs.empty()) {
    SolverConfig def;
    def.name = "default";
    return std::make_unique<Solver>(def);
  }
  if (configs.size() == 1) return std::make_unique<Solver>(configs[0]);
  return std::make_unique<PortfolioSolver>(configs, portfolio);
}

}  // namespace upec::sat
