#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

namespace upec::sat {

// Learnt and problem clauses share one representation; learnt clauses carry
// an activity for the database-reduction heuristic.
struct Solver::Clause {
  float activity = 0.0f;
  bool learnt = false;
  bool deleted = false;
  // Exchange-efficacy bookkeeping (SolverConfig::profile): a clause adopted
  // from the ClauseExchange, and whether its first useful propagation /
  // first appearance in conflict analysis has been counted yet. Data-only —
  // never consulted on the default (profile-off) path.
  bool imported = false;
  bool usedInPropagation = false;
  bool usedInConflict = false;
  std::vector<Lit> lits;

  int size() const { return static_cast<int>(lits.size()); }
  Lit& operator[](int i) { return lits[i]; }
  const Lit& operator[](int i) const { return lits[i]; }
};

Solver::Solver(const SolverConfig& config) : config_(config), rng_(config.seed) {}

Solver::~Solver() {
  for (Clause* c : clauses_) delete c;
  for (Clause* c : learnts_) delete c;
}

Var Solver::newVar() {
  const Var v = numVars();
  assigns_.push_back(LBool::kUndef);
  polarity_.push_back(defaultPolarity());
  reason_.push_back(nullptr);
  level_.push_back(0);
  activity_.push_back(0.0);
  seen_.push_back(false);
  heapIndex_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heapInsert(v);
  return v;
}

bool Solver::addClause(std::span<const Lit> lits) {
  assert(decisionLevel() == 0);
  if (!ok_) return false;

  // Simplify against the top-level assignment; drop duplicates; detect
  // tautologies.
  std::vector<Lit> ps(lits.begin(), lits.end());
  std::sort(ps.begin(), ps.end(), [](Lit a, Lit b) { return a.code() < b.code(); });
  std::vector<Lit> out;
  Lit prev = kLitUndef;
  for (Lit l : ps) {
    assert(l.var() >= 0 && l.var() < numVars());
    if (value(l) == LBool::kTrue || l == ~prev) return true;  // satisfied / tautology
    if (value(l) != LBool::kFalse && l != prev) {
      out.push_back(l);
      prev = l;
    }
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], nullptr);
    ok_ = (propagate() == nullptr);
    return ok_;
  }

  auto* c = new Clause();
  c->lits = std::move(out);
  clauses_.push_back(c);
  ++numProblemClauses_;
  attachClause(c);
  return true;
}

void Solver::attachClause(Clause* c) {
  assert(c->size() >= 2);
  watches_[(~(*c)[0]).code()].push_back({c, (*c)[1]});
  watches_[(~(*c)[1]).code()].push_back({c, (*c)[0]});
}

void Solver::detachClause(Clause* c) {
  for (int i = 0; i < 2; ++i) {
    auto& ws = watches_[(~(*c)[i]).code()];
    for (std::size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].clause == c) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::removeClause(Clause* c) {
  detachClause(c);
  c->deleted = true;
  // Reason pointers may still reference the clause; defer the delete by
  // keeping it in a tombstone state until backtracking clears reasons.
  // Simpler: never free until destructor for reason-referenced learnts is
  // unsafe; instead we only call removeClause on learnts that are not
  // currently a reason (checked by caller).
  delete c;
}

void Solver::enqueue(Lit l, Clause* reason) {
  assert(value(l) == LBool::kUndef);
  assigns_[l.var()] = l.sign() ? LBool::kFalse : LBool::kTrue;
  reason_[l.var()] = reason;
  level_[l.var()] = decisionLevel();
  trail_.push_back(l);
}

Solver::Clause* Solver::propagate() {
  while (qhead_ < static_cast<int>(trail_.size())) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.code()];
    std::size_t i = 0, j = 0;
    const std::size_t n = ws.size();
    while (i < n) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::kTrue) {  // clause already satisfied
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = *w.clause;
      // Normalise so the false literal (~p) is at position 1.
      const Lit notP = ~p;
      if (c[0] == notP) std::swap(c[0], c[1]);
      assert(c[1] == notP);

      const Lit first = c[0];
      if (first != w.blocker && value(first) == LBool::kTrue) {
        ws[j++] = {w.clause, first};
        ++i;
        continue;
      }

      // Look for a new literal to watch.
      bool foundWatch = false;
      for (int k = 2; k < c.size(); ++k) {
        if (value(c[k]) != LBool::kFalse) {
          std::swap(c[1], c[k]);
          watches_[(~c[1]).code()].push_back({w.clause, first});
          foundWatch = true;
          break;
        }
      }
      if (foundWatch) {
        ++i;  // watcher moved to another list
        continue;
      }

      // Clause is unit or conflicting.
      ws[j++] = {w.clause, first};
      ++i;
      // An imported clause's first useful act — forcing a literal or being
      // the conflicting clause — both land here (see types.hpp semantics).
      if (config_.profile && c.imported && !c.usedInPropagation) {
        c.usedInPropagation = true;
        ++stats_.importedUsedInPropagation;
      }
      if (value(first) == LBool::kFalse) {
        // Conflict: copy back remaining watchers and report.
        while (i < n) ws[j++] = ws[i++];
        ws.resize(j);
        qhead_ = static_cast<int>(trail_.size());
        return w.clause;
      }
      enqueue(first, w.clause);
    }
    ws.resize(j);
  }
  return nullptr;
}

void Solver::bumpVarActivity(Var v) {
  activity_[v] += varInc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    varInc_ *= 1e-100;
  }
  if (heapIndex_[v] >= 0) heapDecreaseKey(v);
}

void Solver::decayVarActivity() { varInc_ *= (1.0 / config_.varDecay); }

void Solver::bumpClauseActivity(Clause* c) {
  c->activity += static_cast<float>(clauseInc_);
  if (c->activity > 1e20f) {
    for (Clause* l : learnts_) l->activity *= 1e-20f;
    clauseInc_ *= 1e-20;
  }
}

void Solver::decayClauseActivity() { clauseInc_ *= (1.0 / 0.999); }

// First-UIP conflict analysis with (non-recursive approximation of)
// clause minimisation via the reason graph.
void Solver::analyze(Clause* conflict, std::vector<Lit>& outLearnt, int& outBtLevel) {
  int pathCount = 0;
  Lit p = kLitUndef;
  outLearnt.clear();
  outLearnt.push_back(kLitUndef);  // slot for the asserting literal
  int index = static_cast<int>(trail_.size()) - 1;

  Clause* reason = conflict;
  do {
    assert(reason != nullptr);
    if (reason->learnt) bumpClauseActivity(reason);
    if (config_.profile && reason->imported && !reason->usedInConflict) {
      reason->usedInConflict = true;
      ++stats_.importedUsedInConflict;
    }
    for (int k = (p == kLitUndef) ? 0 : 1; k < reason->size(); ++k) {
      const Lit q = (*reason)[k];
      if (!seen_[q.var()] && level_[q.var()] > 0) {
        seen_[q.var()] = true;
        bumpVarActivity(q.var());
        if (level_[q.var()] >= decisionLevel()) {
          ++pathCount;
        } else {
          outLearnt.push_back(q);
        }
      }
    }
    // Select next literal on the trail to resolve on.
    while (!seen_[trail_[index].var()]) --index;
    p = trail_[index];
    --index;
    reason = reason_[p.var()];
    seen_[p.var()] = false;
    --pathCount;
  } while (pathCount > 0);
  outLearnt[0] = ~p;

  // Minimisation: drop literals whose reasons are subsumed by the clause.
  analyzeToClear_ = outLearnt;
  std::uint32_t abstractLevels = 0;
  for (std::size_t i = 1; i < outLearnt.size(); ++i)
    abstractLevels |= 1u << (level_[outLearnt[i].var()] & 31);

  std::size_t keep = 1;
  for (std::size_t i = 1; i < outLearnt.size(); ++i) {
    if (reason_[outLearnt[i].var()] == nullptr || !litRedundant(outLearnt[i], abstractLevels)) {
      outLearnt[keep++] = outLearnt[i];
    }
  }
  outLearnt.resize(keep);
  stats_.learntLiterals += outLearnt.size();

  // Find the backtrack level = max level among the non-asserting literals.
  if (outLearnt.size() == 1) {
    outBtLevel = 0;
  } else {
    std::size_t maxI = 1;
    for (std::size_t i = 2; i < outLearnt.size(); ++i) {
      if (level_[outLearnt[i].var()] > level_[outLearnt[maxI].var()]) maxI = i;
    }
    std::swap(outLearnt[1], outLearnt[maxI]);
    outBtLevel = level_[outLearnt[1].var()];
  }

  for (Lit l : analyzeToClear_) seen_[l.var()] = false;
  for (Lit l : outLearnt) seen_[l.var()] = true;  // restore for litRedundant callers
  for (Lit l : outLearnt) seen_[l.var()] = false;
}

bool Solver::litRedundant(Lit l, std::uint32_t abstractLevels) {
  analyzeStack_.clear();
  analyzeStack_.push_back(l);
  const std::size_t topClear = analyzeToClear_.size();
  while (!analyzeStack_.empty()) {
    const Lit cur = analyzeStack_.back();
    analyzeStack_.pop_back();
    Clause* r = reason_[cur.var()];
    assert(r != nullptr);
    for (int k = 1; k < r->size(); ++k) {
      const Lit q = (*r)[k];
      if (!seen_[q.var()] && level_[q.var()] > 0) {
        const bool hasReason = reason_[q.var()] != nullptr;
        const bool levelOk = (abstractLevels >> (level_[q.var()] & 31)) & 1;
        if (hasReason && levelOk) {
          seen_[q.var()] = true;
          analyzeStack_.push_back(q);
          analyzeToClear_.push_back(q);
        } else {
          // Not redundant: undo the marks added by this call.
          for (std::size_t i = topClear; i < analyzeToClear_.size(); ++i)
            seen_[analyzeToClear_[i].var()] = false;
          analyzeToClear_.resize(topClear);
          return false;
        }
      }
    }
  }
  return true;
}

// Builds conflict_ = subset of assumptions responsible for falsifying p.
void Solver::analyzeFinal(Lit p) {
  conflict_.clear();
  conflict_.push_back(p);
  if (decisionLevel() == 0) return;
  seen_[p.var()] = true;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trailLim_[0]; --i) {
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    if (reason_[v] == nullptr) {
      assert(level_[v] > 0);
      conflict_.push_back(~trail_[i]);
    } else {
      Clause& c = *reason_[v];
      for (int k = 1; k < c.size(); ++k) {
        if (level_[c[k].var()] > 0) seen_[c[k].var()] = true;
      }
    }
    seen_[v] = false;
  }
  seen_[p.var()] = false;
}

void Solver::backtrack(int level) {
  if (decisionLevel() <= level) return;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trailLim_[level]; --i) {
    const Var v = trail_[i].var();
    polarity_[v] = (assigns_[v] == LBool::kFalse);
    assigns_[v] = LBool::kUndef;
    reason_[v] = nullptr;
    if (heapIndex_[v] < 0) heapInsert(v);
  }
  trail_.resize(trailLim_[level]);
  trailLim_.resize(level);
  qhead_ = static_cast<int>(trail_.size());
}

Lit Solver::pickBranchLit() {
  // Diversification: occasionally decide on a random heap variable instead
  // of the activity maximum (MiniSat's random_var_freq). The variable stays
  // in the heap; assigned entries are skipped lazily by the main loop.
  if (config_.randomDecisionFreq > 0.0 && !heapEmpty() &&
      static_cast<double>(rng_.next() >> 11) * 0x1.0p-53 < config_.randomDecisionFreq) {
    const Var v = heap_[rng_.below(heap_.size())];
    if (value(v) == LBool::kUndef) {
      ++stats_.decisions;
      return Lit(v, polarity_[v]);
    }
  }
  while (!heapEmpty()) {
    const Var v = heapRemoveMax();
    if (value(v) == LBool::kUndef) {
      ++stats_.decisions;
      return Lit(v, polarity_[v]);
    }
  }
  return kLitUndef;
}

void Solver::reduceDB() {
  // Keep the more active half; never remove clauses currently used as a
  // reason or binary clauses (cheap and valuable).
  std::sort(learnts_.begin(), learnts_.end(),
            [](const Clause* a, const Clause* b) { return a->activity > b->activity; });
  std::vector<bool> isReason(learnts_.size(), false);
  std::vector<Clause*> keep;
  keep.reserve(learnts_.size());
  const std::size_t limit = learnts_.size() / 2;
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    Clause* c = learnts_[i];
    const bool locked = !trail_.empty() && [&] {
      for (Lit l : c->lits)
        if (reason_[l.var()] == c) return true;
      return false;
    }();
    if (i < limit || c->size() <= 2 || locked) {
      keep.push_back(c);
    } else {
      detachClause(c);
      delete c;
      ++stats_.removedClauses;
    }
  }
  learnts_ = std::move(keep);
}

std::uint64_t Solver::lubySequence(std::uint64_t i) {
  // Knuth's formulation: find the finite subsequence containing i.
  std::uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return 1ull << seq;
}

std::uint64_t Solver::restartInterval(std::uint64_t restartNum) const {
  if (config_.restartPolicy == RestartPolicy::kGeometric) {
    double interval = static_cast<double>(config_.restartBase);
    for (std::uint64_t i = 0; i < restartNum && interval < 1e18; ++i) {
      interval *= config_.restartGrowth;
    }
    return static_cast<std::uint64_t>(interval);
  }
  return config_.restartBase * lubySequence(restartNum);
}

LBool Solver::solveLimited(std::span<const Lit> assumptions) {
  conflict_.clear();
  statsAtSolveStart_ = stats_;
  lastSolveBudgetExhausted_ = false;
  lastSolveDeadlineExpired_ = false;
  // Armed only when a deadline is set: the default path never reads the
  // clock, keeping the trajectory (and cost) bit-identical.
  const auto deadline = solveDeadlineMs_ != 0
                            ? std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(solveDeadlineMs_)
                            : std::chrono::steady_clock::time_point{};
  std::uint64_t loopIter = 0;
  ++stats_.solves;
  if (!ok_) return LBool::kFalse;
  assumptions_.assign(assumptions.begin(), assumptions.end());
  model_.clear();

  // Phase profiling (SolverConfig::profile): wall time per CDCL phase. The
  // clock is only read when the knob is on — profNow() is a no-op stamp on
  // the default path, mirroring the deadline pattern above — and all the
  // instrumentation is read-only, so the search trajectory is unchanged.
  const bool prof = config_.profile;
  const auto profNow = [prof] {
    return prof ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
  };
  const auto profNs = [](std::chrono::steady_clock::time_point t0) {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - t0)
                                          .count());
  };

  // Pick up clauses other members derived since our last race/restart.
  // Solve-entry import is accounted as restart time: both are the same
  // level-0 adoption boundary.
  if (exchange_ != nullptr) {
    const auto t0 = profNow();
    const bool importOk = importForeignClauses();
    if (prof) stats_.restartTimeNs += profNs(t0);
    if (!importOk) return LBool::kFalse;
  }

  std::uint64_t restartNum = 0;
  std::uint64_t conflictsUntilRestart = restartInterval(restartNum);
  std::uint64_t conflictsThisRestart = 0;
  std::uint64_t totalConflicts = 0;
  maxLearnts_ = std::max<std::uint64_t>(8192, numProblemClauses_ / 2);

  std::vector<Lit> learntClause;
  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) {
      backtrack(0);
      return LBool::kUndef;
    }
    // Deadline poll: one clock read per 512 iterations bounds the cost to
    // noise while keeping expiry detection within a propagation burst.
    if (solveDeadlineMs_ != 0 && (++loopIter & 511u) == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      backtrack(0);
      lastSolveDeadlineExpired_ = true;
      return LBool::kUndef;
    }
    Clause* conflict;
    if (prof) {
      const auto t0 = profNow();
      conflict = propagate();
      stats_.propagateTimeNs += profNs(t0);
    } else {
      conflict = propagate();
    }
    if (conflict != nullptr) {
      ++stats_.conflicts;
      ++conflictsThisRestart;
      ++totalConflicts;
      if (decisionLevel() == 0) {
        ok_ = false;
        backtrack(0);
        return LBool::kFalse;
      }
      int btLevel = 0;
      if (prof) {
        const auto t0 = profNow();
        analyze(conflict, learntClause, btLevel);
        stats_.analyzeTimeNs += profNs(t0);
      } else {
        analyze(conflict, learntClause, btLevel);
      }
      if (exchange_ != nullptr) exportLearnt(learntClause);  // pre-backtrack: LBD needs levels
      backtrack(btLevel);
      if (learntClause.size() == 1) {
        enqueue(learntClause[0], nullptr);
      } else {
        auto* c = new Clause();
        c->learnt = true;
        c->lits = learntClause;
        learnts_.push_back(c);
        attachClause(c);
        bumpClauseActivity(c);
        enqueue(learntClause[0], c);
      }
      decayVarActivity();
      decayClauseActivity();
      // Injected fault (test harness): simulate a solver crash at a
      // deterministic point. Backtracked to a sane level first, so the
      // containment layers above can even reuse the instance.
      if (faultAbortAtConflict_ != 0 && totalConflicts >= faultAbortAtConflict_) {
        backtrack(0);
        throw std::runtime_error("injected solver fault at conflict " +
                                 std::to_string(totalConflicts));
      }
      if (conflictBudget_ != 0 && totalConflicts >= conflictBudget_) {
        backtrack(0);
        lastSolveBudgetExhausted_ = true;
        return LBool::kUndef;
      }
      continue;
    }

    if (conflictsThisRestart >= conflictsUntilRestart) {
      const auto t0 = profNow();
      ++stats_.restarts;
      ++restartNum;
      conflictsThisRestart = 0;
      conflictsUntilRestart = restartInterval(restartNum);
      backtrack(0);
      if (config_.phasePolicy == PhasePolicy::kReset) {
        polarity_.assign(polarity_.size(), defaultPolarity());
      }
      // Restart boundary = the cheap moment to adopt foreign clauses: the
      // trail is back at level 0, so imports attach without repair work.
      const bool importOk = exchange_ == nullptr || importForeignClauses();
      if (prof) stats_.restartTimeNs += profNs(t0);
      if (!importOk) return LBool::kFalse;
      continue;
    }
    if (learnts_.size() >= maxLearnts_) {
      const auto t0 = profNow();
      reduceDB();
      if (prof) stats_.reduceTimeNs += profNs(t0);
      maxLearnts_ += maxLearnts_ / 10;
    }

    // Assume pending assumptions in order, then decide.
    Lit next = kLitUndef;
    while (decisionLevel() < static_cast<int>(assumptions_.size())) {
      const Lit a = assumptions_[decisionLevel()];
      if (value(a) == LBool::kTrue) {
        newDecisionLevel();  // dummy level to keep indices aligned
      } else if (value(a) == LBool::kFalse) {
        analyzeFinal(~a);
        backtrack(0);
        return LBool::kFalse;
      } else {
        next = a;
        break;
      }
    }
    if (next == kLitUndef) {
      next = pickBranchLit();
      if (next == kLitUndef) {
        // All variables assigned: SAT. Snapshot the model.
        model_.assign(assigns_.begin(), assigns_.end());
        backtrack(0);
        return LBool::kTrue;
      }
    }
    newDecisionLevel();
    enqueue(next, nullptr);
  }
}

bool Solver::modelValue(Var v) const {
  assert(!model_.empty() && v < static_cast<int>(model_.size()));
  return model_[v] == LBool::kTrue;
}

// ------------------------------------------------------ clause exchange ---

void Solver::attachExchange(ClauseExchange* exchange, unsigned member) {
  exchange_ = exchange;
  exchangeMember_ = member;
  shareFilter_ = exchange ? std::make_unique<ClauseFilter>() : nullptr;
}

unsigned Solver::computeLbd(const std::vector<Lit>& lits) {
  if (++lbdStamp_ == 0) {  // stamp wrapped: invalidate the whole table
    lbdSeen_.assign(lbdSeen_.size(), 0);
    lbdStamp_ = 1;
  }
  unsigned lbd = 0;
  for (const Lit l : lits) {
    const auto lev = static_cast<unsigned>(level_[l.var()]);
    if (lev >= lbdSeen_.size()) lbdSeen_.resize(lev + 1, 0);
    if (lbdSeen_[lev] != lbdStamp_) {
      lbdSeen_[lev] = lbdStamp_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::exportLearnt(const std::vector<Lit>& learnt) {
  if (learnt.size() > config_.shareMaxLits) return;
  if (learnt.size() > 1 && computeLbd(learnt) > config_.shareMaxLbd) return;
  const std::span<const Lit> lits(learnt.data(), learnt.size());
  // Remembering our own exports also stops a later re-import of the same
  // clause when another member derives it independently.
  if (!shareFilter_->insert(lits)) return;
  if (exchange_->publish(exchangeMember_, lits)) {
    ++stats_.clausesExported;  // keeps published() == sum of exports exact
  } else {
    // Evicted before it was ever stored (full-lap producer stall). Forget
    // it so a later re-derivation gets another chance to share it.
    shareFilter_->remove(lits);
    ++stats_.clausesDropped;
  }
}

bool Solver::importForeignClauses() {
  assert(decisionLevel() == 0);
  const auto sink = [this](std::span<const Lit> lits) {
    if (!ok_) return;  // already unsat at top level; drain just advances the cursor
    if (!shareFilter_->insert(lits)) {
      ++stats_.clausesDropped;  // duplicate of something we saw or exported
      return;
    }
    // Simplify against the top-level assignment. A foreign learnt is a
    // consequence of the shared problem clauses (resolution never touches
    // assumptions), so anything left after simplification may be attached
    // as if we had derived it ourselves.
    importScratch_.clear();
    for (const Lit l : lits) {
      const LBool v = value(l);
      if (v == LBool::kTrue) return;  // already satisfied at level 0
      if (v == LBool::kUndef) importScratch_.push_back(l);
    }
    ++stats_.clausesImported;
    if (importScratch_.empty()) {
      ok_ = false;  // every literal false at level 0: formula is unsat
      return;
    }
    if (importScratch_.size() == 1) {
      enqueue(importScratch_[0], nullptr);
      ok_ = (propagate() == nullptr);
      return;
    }
    auto* c = new Clause();
    c->learnt = true;
    c->imported = true;
    c->lits = importScratch_;
    learnts_.push_back(c);
    attachClause(c);
    bumpClauseActivity(c);  // give imports a fighting chance against reduceDB
  };
  const ClauseExchange::DrainStats drained = exchange_->drain(exchangeMember_, sink);
  stats_.clausesDropped += drained.overrun;
  return ok_;
}

// ---------------------------------------------------------------- heap ---

void Solver::heapInsert(Var v) {
  heapIndex_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heapPercolateUp(heapIndex_[v]);
}

void Solver::heapDecreaseKey(Var v) { heapPercolateUp(heapIndex_[v]); }

void Solver::heapPercolateUp(int i) {
  const Var v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heapIndex_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heapIndex_[v] = i;
}

void Solver::heapPercolateDown(int i) {
  const Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && activity_[heap_[child + 1]] > activity_[heap_[child]]) ++child;
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heapIndex_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heapIndex_[v] = i;
}

Var Solver::heapRemoveMax() {
  const Var v = heap_[0];
  heapIndex_[v] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heapIndex_[heap_[0]] = 0;
    heapPercolateDown(0);
  }
  return v;
}

void Solver::rebuildOrderHeap() {
  heap_.clear();
  for (Var v = 0; v < numVars(); ++v) {
    heapIndex_[v] = -1;
    if (value(v) == LBool::kUndef) heapInsert(v);
  }
}

}  // namespace upec::sat
