// Persistent campaign clause store: learnt clauses that outlive one solve.
//
// A ClauseExchange shares learnts *within* one portfolio race; everything
// it derived dies with the job's solver. The ClauseStore is the next tier
// up: at window close the campaign promotes the exchange's survivors
// (short, low-LBD learnts still resident in the ring) into the store, and
// before the next window — of this job, a sibling job of the same family,
// or (via the checkpoint journal) the next *run* — it fetches them back
// and seeds them into that solver's exchange. One job's deductions prune
// every same-family job's search, across windows and across processes.
//
// Soundness is depth-scoped. A clause learnt by an incremental UPEC
// session at window k was derived by resolution over the session's clause
// database *including* the hard assumption units asserted for cycles
// 0..k — it is a consequence of the window-k formula, not of the bare
// transition relation. Two rules keep reuse sound:
//   * Family scoping: a store family key must encode everything that
//     defines the session's hard-unit set and variable allocation — SoC
//     config, secret word, scenario, constraint toggles, init-equality
//     mode, reduction options, commitment exclusions. Jobs differing only
//     in solver knobs/budgets share a family; jobs whose assumptions or
//     encodings differ never do (a collision would be unsound, a split
//     merely misses reuse — see engine::clauseFamilyKey).
//   * Depth tagging: every promoted clause carries the window depth it was
//     learnt at, and fetch(depth) only returns clauses with tag <= depth —
//     the UPEC assumption set only grows with the window, so a window-k
//     consequence holds for every window >= k, but not before.
// Monolithic sessions assert the proof obligation as a hard unit, so their
// learnts are NOT family-reusable; only incremental sharing jobs promote.
//
// Delivery is per-consumer: each (family, consumer) pair keeps a cursor so
// repeated fetches hand each clause to each consumer once. The exchange's
// import filters make the rare duplicate (cursor reset, overlapping seed
// sources) harmless.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sat/exchange.hpp"
#include "sat/types.hpp"

namespace upec::sat {

class ClauseStore {
 public:
  static constexpr std::size_t kDefaultFamilyCapacity = 4096;

  // At most `familyCapacity` clauses retained per family; once full, new
  // promotions are dropped (the earliest clauses are the shallow-window
  // ones every deeper fetch can use — keeping them beats churn).
  explicit ClauseStore(std::size_t familyCapacity = kDefaultFamilyCapacity)
      : familyCapacity_(familyCapacity) {}
  ClauseStore(const ClauseStore&) = delete;
  ClauseStore& operator=(const ClauseStore&) = delete;

  // Adds `clauses`, learnt at window `depth`, to `family`. Duplicates
  // (per family, order-independent signature) are dropped. Thread-safe.
  void promote(const std::string& family, unsigned depth,
               std::span<const std::vector<Lit>> clauses);

  // All stored clauses of `family` with tag <= depth that `consumer` has
  // not fetched before. Thread-safe; distinct consumers each see every
  // clause once.
  std::vector<std::vector<Lit>> fetch(const std::string& family, const std::string& consumer,
                                      unsigned depth);

  struct Stats {
    std::uint64_t promoted = 0;   // clauses accepted into the store
    std::uint64_t duplicates = 0; // promotions shed by the family filter
    std::uint64_t overflow = 0;   // promotions dropped by familyCapacity
    std::uint64_t fetched = 0;    // clauses handed out across all fetches
  };
  Stats stats() const;

  // Clauses currently stored across all families (for reports/tests).
  std::size_t size() const;

 private:
  struct Entry {
    unsigned depth;
    std::vector<Lit> lits;
  };
  struct Family {
    ClauseFilter filter;
    std::vector<Entry> entries;  // append-only
  };
  struct Cursor {
    std::size_t next = 0;             // first entry index not yet examined
    std::vector<std::size_t> skipped; // examined but too deep at the time
  };

  mutable std::mutex mutex_;
  std::size_t familyCapacity_;
  std::unordered_map<std::string, Family> families_;
  std::unordered_map<std::string, Cursor> cursors_;  // key: family + '\n' + consumer
  Stats stats_;
};

}  // namespace upec::sat
