// CDCL SAT solver in the MiniSat lineage: two-watched-literal propagation,
// first-UIP conflict analysis with clause minimisation, VSIDS decision
// heuristic with phase saving, Luby restarts, learnt-clause database
// reduction, and incremental solving under assumptions with unsat-core
// extraction over the assumption set.
//
// This is the decision procedure underneath the bounded model checker
// (src/formal). It is deliberately self-contained: the paper's flow uses a
// commercial property checker, which we substitute with this engine.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace upec::sat {

// A propositional variable is a non-negative integer. A literal packs a
// variable and a sign: lit = var * 2 + (negated ? 1 : 0).
using Var = int;

class Lit {
 public:
  Lit() : code_(-2) {}
  Lit(Var v, bool negated) : code_(v * 2 + (negated ? 1 : 0)) {}

  static Lit fromCode(int code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  Var var() const { return code_ >> 1; }
  bool sign() const { return code_ & 1; }  // true = negated
  Lit operator~() const { return fromCode(code_ ^ 1); }
  int code() const { return code_; }
  bool operator==(const Lit& o) const { return code_ == o.code_; }
  bool operator!=(const Lit& o) const { return code_ != o.code_; }

 private:
  int code_;
};

inline const Lit kLitUndef = Lit::fromCode(-2);

// Three-valued assignment.
enum class LBool : std::uint8_t { kTrue, kFalse, kUndef };
inline LBool negate(LBool b) {
  if (b == LBool::kUndef) return b;
  return b == LBool::kTrue ? LBool::kFalse : LBool::kTrue;
}

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learntLiterals = 0;
  std::uint64_t removedClauses = 0;
  std::uint64_t solves = 0;

  // Field-wise difference, for per-solve deltas in incremental use.
  SolverStats operator-(const SolverStats& o) const {
    return {decisions - o.decisions,   propagations - o.propagations,
            conflicts - o.conflicts,   restarts - o.restarts,
            learntLiterals - o.learntLiterals,
            removedClauses - o.removedClauses, solves - o.solves};
  }
};

class Solver {
 public:
  Solver();
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // Creates a fresh variable and returns it.
  Var newVar();
  int numVars() const { return static_cast<int>(assigns_.size()); }
  std::uint64_t numClauses() const { return numProblemClauses_; }
  std::uint64_t numLearnts() const { return learnts_.size(); }

  // Adds a clause (disjunction of literals). Returns false if the clause
  // makes the formula trivially unsatisfiable (e.g. empty after
  // simplification against the top-level assignment).
  bool addClause(std::span<const Lit> lits);
  bool addClause(std::initializer_list<Lit> lits) {
    return addClause(std::span<const Lit>(lits.begin(), lits.size()));
  }
  bool addUnit(Lit l) { return addClause({l}); }

  // Solves under the given assumptions. Returns kTrue (sat: model available
  // via modelValue), kFalse (unsat: conflictingAssumptions() holds a subset
  // of the assumptions sufficient for unsatisfiability).
  LBool solve(std::span<const Lit> assumptions = {});

  // Valid after solve() returned kTrue.
  bool modelValue(Var v) const;
  bool modelValue(Lit l) const { return modelValue(l.var()) != l.sign(); }

  // Valid after solve() returned kFalse: the subset of assumptions used.
  const std::vector<Lit>& conflictingAssumptions() const { return conflict_; }

  bool okay() const { return ok_; }
  const SolverStats& stats() const { return stats_; }

  // Stats of the most recent solve() call alone — the deltas since that
  // call began. stats() keeps the cumulative totals across the solver's
  // lifetime; incremental users (BMC deepening, campaign jobs) report
  // per-solve effort from here.
  SolverStats lastSolveStats() const { return stats_ - statsAtSolveStart_; }

  // Optional resource limit: abort solve() after this many conflicts
  // (0 = unlimited). When hit, solve() returns kUndef. The budget applies
  // to each solve() call separately: an incremental session gets a fresh
  // allowance per call, regardless of conflicts spent in earlier calls.
  void setConflictBudget(std::uint64_t budget) { conflictBudget_ = budget; }

 private:
  struct Clause;
  struct Watcher {
    Clause* clause;
    Lit blocker;
  };

  LBool value(Var v) const { return assigns_[v]; }
  LBool value(Lit l) const { return l.sign() ? negate(assigns_[l.var()]) : assigns_[l.var()]; }

  int decisionLevel() const { return static_cast<int>(trailLim_.size()); }
  void newDecisionLevel() { trailLim_.push_back(static_cast<int>(trail_.size())); }

  void enqueue(Lit l, Clause* reason);
  Clause* propagate();
  void analyze(Clause* conflict, std::vector<Lit>& outLearnt, int& outBtLevel);
  void analyzeFinal(Lit p);
  bool litRedundant(Lit l, std::uint32_t abstractLevels);
  void backtrack(int level);
  Lit pickBranchLit();
  void reduceDB();
  void removeClause(Clause* c);
  void attachClause(Clause* c);
  void detachClause(Clause* c);
  void bumpVarActivity(Var v);
  void decayVarActivity();
  void bumpClauseActivity(Clause* c);
  void decayClauseActivity();
  void rebuildOrderHeap();

  // order heap (max-heap on activity)
  void heapInsert(Var v);
  void heapDecreaseKey(Var v);  // activity increased -> sift up
  void heapPercolateUp(int i);
  void heapPercolateDown(int i);
  Var heapRemoveMax();
  bool heapEmpty() const { return heap_.empty(); }

  static std::uint64_t lubySequence(std::uint64_t i);

  // clause database
  std::vector<Clause*> clauses_;
  std::vector<Clause*> learnts_;
  std::uint64_t numProblemClauses_ = 0;

  // assignment state
  std::vector<LBool> assigns_;
  std::vector<bool> polarity_;  // saved phase, true = last assigned false
  std::vector<Clause*> reason_;
  std::vector<int> level_;
  std::vector<Lit> trail_;
  std::vector<int> trailLim_;
  int qhead_ = 0;

  // watches indexed by literal code
  std::vector<std::vector<Watcher>> watches_;

  // VSIDS
  std::vector<double> activity_;
  double varInc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<int> heapIndex_;  // -1 if not in heap

  double clauseInc_ = 1.0;

  // analyze scratch
  std::vector<bool> seen_;
  std::vector<Lit> analyzeToClear_;
  std::vector<Lit> analyzeStack_;

  std::vector<Lit> assumptions_;
  std::vector<Lit> conflict_;
  std::vector<LBool> model_;

  bool ok_ = true;
  SolverStats stats_;
  SolverStats statsAtSolveStart_;
  std::uint64_t conflictBudget_ = 0;
  std::uint64_t maxLearnts_ = 8192;
};

}  // namespace upec::sat
