// CDCL SAT solver in the MiniSat lineage: two-watched-literal propagation,
// first-UIP conflict analysis with clause minimisation, VSIDS decision
// heuristic with phase saving, Luby or geometric restarts, learnt-clause
// database reduction, and incremental solving under assumptions with
// unsat-core extraction over the assumption set.
//
// This is the decision procedure underneath the bounded model checker
// (src/formal). It is deliberately self-contained: the paper's flow uses a
// commercial property checker, which we substitute with this engine. It is
// one implementation of the sat::SolverBackend seam; its heuristics are
// parameterised by SolverConfig so a PortfolioSolver can race diversified
// instances of it.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <memory>

#include "base/rng.hpp"
#include "sat/exchange.hpp"
#include "sat/solver_backend.hpp"
#include "sat/types.hpp"

namespace upec::sat {

class Solver : public SolverBackend {
 public:
  Solver() : Solver(SolverConfig{}) {}
  explicit Solver(const SolverConfig& config);
  ~Solver() override;
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  const SolverConfig& config() const { return config_; }

  // Creates a fresh variable and returns it.
  Var newVar() override;
  int numVars() const override { return static_cast<int>(assigns_.size()); }
  std::uint64_t numClauses() const override { return numProblemClauses_; }
  std::uint64_t numLearnts() const { return learnts_.size(); }

  // Adds a clause (disjunction of literals). Returns false if the clause
  // makes the formula trivially unsatisfiable (e.g. empty after
  // simplification against the top-level assignment).
  bool addClause(std::span<const Lit> lits) override;
  using SolverBackend::addClause;  // initializer_list convenience

  // Solves under the given assumptions. Returns kTrue (sat: model available
  // via modelValue), kFalse (unsat: unsatCore() holds a subset of the
  // assumptions sufficient for unsatisfiability), or kUndef (conflict
  // budget exhausted, or requestStop() arrived mid-search).
  LBool solveLimited(std::span<const Lit> assumptions) override;
  using SolverBackend::solve;

  // Valid after solve() returned kTrue.
  bool modelValue(Var v) const override;
  using SolverBackend::modelValue;

  // Valid after solve() returned kFalse: the subset of assumptions used.
  const std::vector<Lit>& unsatCore() const override { return conflict_; }

  bool okay() const override { return ok_; }
  SolverStats stats() const override { return stats_; }

  // Stats of the most recent solve() call alone — the deltas since that
  // call began. stats() keeps the cumulative totals across the solver's
  // lifetime; incremental users (BMC deepening, campaign jobs) report
  // per-solve effort from here.
  SolverStats lastSolveStats() const override { return stats_ - statsAtSolveStart_; }

  // Optional resource limit: abort solve() after this many conflicts
  // (0 = unlimited). When hit, solve() returns kUndef. The budget applies
  // to each solve() call separately: an incremental session gets a fresh
  // allowance per call, regardless of conflicts spent in earlier calls.
  void setConflictBudget(std::uint64_t budget) override { conflictBudget_ = budget; }
  bool lastSolveBudgetExhausted() const override { return lastSolveBudgetExhausted_; }

  // Wall-clock deadline per solve() call (0 = none), checked every few
  // hundred search-loop iterations so expiry costs no watchdog thread and
  // detection lag stays bounded. Expiry returns kUndef from level 0 with
  // lastSolveDeadlineExpired() set and the budget flag clear.
  void setSolveDeadlineMs(std::uint64_t deadlineMs) override { solveDeadlineMs_ = deadlineMs; }
  bool lastSolveDeadlineExpired() const override { return lastSolveDeadlineExpired_; }

  // Fault injection (test harness only): throw from inside solve() once
  // this many conflicts occur in one call (0 = off). The throw happens
  // after a backtrack to level 0, so a containing caller could even keep
  // using the solver — the engine's containment layers turn it into a
  // kError window instead.
  void setFaultAbortAtConflict(std::uint64_t conflicts) override {
    faultAbortAtConflict_ = conflicts;
  }

  // Cooperative cancellation (the portfolio's loser-stopping hook): sets a
  // sticky flag checked once per search-loop iteration; an affected solve()
  // backtracks to level 0 and returns kUndef. Safe to call from another
  // thread while solve() runs. The flag stays set until clearStop() so a
  // stop aimed at a solver between solve() calls is not lost.
  void requestStop() override { stop_.store(true, std::memory_order_relaxed); }
  void clearStop() override { stop_.store(false, std::memory_order_relaxed); }
  bool stopRequested() const { return stop_.load(std::memory_order_relaxed); }

  std::string describe() const override { return config_.describe(); }

  // Learnt-clause sharing: once attached, conflict analysis publishes
  // learnts within the config's share thresholds and every restart (plus
  // every solve entry) drains the other members' clauses into the learnt
  // database. With no exchange attached the search is bit-for-bit the seed
  // solver — none of the sharing machinery is consulted.
  void attachExchange(ClauseExchange* exchange, unsigned member) override;

 private:
  struct Clause;
  struct Watcher {
    Clause* clause;
    Lit blocker;
  };

  LBool value(Var v) const { return assigns_[v]; }
  LBool value(Lit l) const { return l.sign() ? negate(assigns_[l.var()]) : assigns_[l.var()]; }

  int decisionLevel() const { return static_cast<int>(trailLim_.size()); }
  void newDecisionLevel() { trailLim_.push_back(static_cast<int>(trail_.size())); }

  void enqueue(Lit l, Clause* reason);
  Clause* propagate();
  void analyze(Clause* conflict, std::vector<Lit>& outLearnt, int& outBtLevel);
  void analyzeFinal(Lit p);
  bool litRedundant(Lit l, std::uint32_t abstractLevels);
  void backtrack(int level);
  Lit pickBranchLit();
  void reduceDB();
  void removeClause(Clause* c);
  void attachClause(Clause* c);
  void detachClause(Clause* c);
  void bumpVarActivity(Var v);
  void decayVarActivity();
  void bumpClauseActivity(Clause* c);
  void decayClauseActivity();
  void rebuildOrderHeap();
  std::uint64_t restartInterval(std::uint64_t restartNum) const;
  bool defaultPolarity() const { return config_.phasePolicy != PhasePolicy::kInverted; }

  // Exchange plumbing. exportLearnt() must run before the post-conflict
  // backtrack (LBD needs the literals' levels); importForeignClauses() must
  // run at decision level 0 and returns ok_ — false means an imported unit
  // made the formula unsatisfiable at top level.
  void exportLearnt(const std::vector<Lit>& learnt);
  bool importForeignClauses();
  unsigned computeLbd(const std::vector<Lit>& lits);

  // order heap (max-heap on activity)
  void heapInsert(Var v);
  void heapDecreaseKey(Var v);  // activity increased -> sift up
  void heapPercolateUp(int i);
  void heapPercolateDown(int i);
  Var heapRemoveMax();
  bool heapEmpty() const { return heap_.empty(); }

  static std::uint64_t lubySequence(std::uint64_t i);

  SolverConfig config_;
  Rng rng_;

  // clause database
  std::vector<Clause*> clauses_;
  std::vector<Clause*> learnts_;
  std::uint64_t numProblemClauses_ = 0;

  // assignment state
  std::vector<LBool> assigns_;
  std::vector<bool> polarity_;  // saved phase, true = last assigned false
  std::vector<Clause*> reason_;
  std::vector<int> level_;
  std::vector<Lit> trail_;
  std::vector<int> trailLim_;
  int qhead_ = 0;

  // watches indexed by literal code
  std::vector<std::vector<Watcher>> watches_;

  // VSIDS
  std::vector<double> activity_;
  double varInc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<int> heapIndex_;  // -1 if not in heap

  double clauseInc_ = 1.0;

  // analyze scratch
  std::vector<bool> seen_;
  std::vector<Lit> analyzeToClear_;
  std::vector<Lit> analyzeStack_;

  std::vector<Lit> assumptions_;
  std::vector<Lit> conflict_;
  std::vector<LBool> model_;

  // learnt-clause sharing (null/empty unless attachExchange() was called)
  ClauseExchange* exchange_ = nullptr;
  unsigned exchangeMember_ = 0;
  std::unique_ptr<ClauseFilter> shareFilter_;
  std::vector<Lit> importScratch_;
  std::vector<std::uint32_t> lbdSeen_;  // level -> stamp, for computeLbd
  std::uint32_t lbdStamp_ = 0;

  bool ok_ = true;
  SolverStats stats_;
  SolverStats statsAtSolveStart_;
  std::uint64_t conflictBudget_ = 0;
  bool lastSolveBudgetExhausted_ = false;
  std::uint64_t solveDeadlineMs_ = 0;
  bool lastSolveDeadlineExpired_ = false;
  std::uint64_t faultAbortAtConflict_ = 0;
  std::uint64_t maxLearnts_ = 8192;
  std::atomic<bool> stop_{false};
};

}  // namespace upec::sat
