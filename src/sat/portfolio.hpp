// Portfolio solving: N diversified SolverBackend instances racing the same
// formula on threads, first definitive answer wins.
//
// Competitive SAT portfolios win because differently-configured CDCL
// heuristics have wildly different runtimes on the same instance; racing a
// few diversified configurations approximates the virtual best solver. The
// portfolio replicates every newVar()/addClause() into each member, so any
// member's answer is an answer for the shared formula, and incremental
// sessions (BMC deepening) work unchanged — each member keeps its own
// learnt clauses across calls.
//
// Cancellation is cooperative: the first member to return kTrue/kFalse
// publishes itself as the winner and calls requestStop() on the others,
// which exit through the same early-return path as the conflict budget.
// solveLimited() joins all race threads before returning, so after it
// returns no thread touches the members and reads need no locks.
//
// Two portfolio-wide options (PortfolioOptions) make the race cooperative
// rather than merely competitive:
//  * sharing — the portfolio owns a ClauseExchange and attaches every
//    member to it, so learnt clauses flow between the racers;
//  * governor — a global member-slot cap (engine::ThreadGovernor): each
//    race first acquires one slot per member and degrades gracefully to
//    however many it was granted, always keeping member 0 (the baseline
//    configuration), so campaigns cannot oversubscribe the machine.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sat/exchange.hpp"
#include "sat/solver_backend.hpp"

namespace upec::sat {

class PortfolioSolver : public SolverBackend {
 public:
  // One CDCL member per configuration (at least one required).
  explicit PortfolioSolver(std::span<const SolverConfig> configs,
                           const PortfolioOptions& options = {});
  explicit PortfolioSolver(const std::vector<SolverConfig>& configs,
                           const PortfolioOptions& options = {})
      : PortfolioSolver(std::span<const SolverConfig>(configs.data(), configs.size()),
                        options) {}
  // Arbitrary pre-built members — used by tests to inject hostile backends
  // (e.g. one that blocks until cancelled).
  explicit PortfolioSolver(std::vector<std::unique_ptr<SolverBackend>> members,
                           const PortfolioOptions& options = {});
  ~PortfolioSolver() override;

  // --- SolverBackend -------------------------------------------------------
  Var newVar() override;
  int numVars() const override { return members_.front()->numVars(); }
  std::uint64_t numClauses() const override { return members_.front()->numClauses(); }
  bool addClause(std::span<const Lit> lits) override;
  using SolverBackend::addClause;
  LBool solveLimited(std::span<const Lit> assumptions) override;
  using SolverBackend::solve;
  bool modelValue(Var v) const override;
  using SolverBackend::modelValue;
  const std::vector<Lit>& unsatCore() const override;
  bool okay() const override;
  SolverStats stats() const override;          // summed over all members
  SolverStats lastSolveStats() const override; // summed over last race's racers only
  void setConflictBudget(std::uint64_t budget) override;  // per member
  // True when the last race produced no winner and a racer ran out of budget.
  bool lastSolveBudgetExhausted() const override { return lastBudgetExhausted_; }
  void setSolveDeadlineMs(std::uint64_t deadlineMs) override;  // per member
  // True when the last race produced no winner and a racer's deadline
  // expired. Mirrors the budget flag's contract: an externally stopped
  // race never reports expiry (a cancelled solve must not look like a
  // latency miss).
  bool lastSolveDeadlineExpired() const override { return lastDeadlineExpired_; }
  void setFaultAbortAtConflict(std::uint64_t conflicts) override;  // per member
  // Clauses resident on the sharing exchange (empty when sharing is off).
  std::vector<std::vector<Lit>> learntSnapshot(std::size_t maxClauses) const override;
  // Publishes proven clauses on the sharing exchange (engine::ClauseStore
  // seeding between windows); ignored when sharing is off. Call between
  // races only — seeding is the driving thread's move, never a racer's.
  void seedClauses(std::span<const std::vector<Lit>> clauses) override;
  void requestStop() override;
  void clearStop() override;
  std::string describe() const override;
  std::string lastSolveAttribution() const override;

  // --- portfolio introspection --------------------------------------------
  std::size_t numMembers() const { return members_.size(); }
  SolverBackend& member(std::size_t i) { return *members_[i]; }
  const SolverBackend& member(std::size_t i) const { return *members_[i]; }

  // Index of the member whose answer the last solveLimited() returned, or
  // -1 when no member answered (all budget-limited or stopped).
  int lastWinner() const { return lastWinner_; }
  // What each member returned in the last race (kUndef for stopped losers
  // and for members shed by the governor).
  LBool lastVerdict(std::size_t i) const { return lastVerdicts_[i]; }

  const PortfolioOptions& options() const { return options_; }
  // The learnt-clause pool, or null when sharing is off.
  const ClauseExchange* exchange() const { return exchange_.get(); }
  // How many members actually raced in the last solveLimited() (fewer than
  // numMembers() when the governor degraded the race).
  std::size_t lastRaceSize() const { return lastRaceSize_; }

 private:
  void initMembers();  // verdict slots + exchange creation/attachment

  PortfolioOptions options_;
  // Declared before the members so it outlives them on destruction.
  std::unique_ptr<ClauseExchange> exchange_;
  std::vector<std::unique_ptr<SolverBackend>> members_;
  std::vector<LBool> lastVerdicts_;
  std::size_t lastRaceSize_ = 0;
  int lastWinner_ = -1;
  bool lastBudgetExhausted_ = false;
  bool lastDeadlineExpired_ = false;
  // requestStop() arrived from outside a race; may be set from another
  // thread while solveLimited() runs (same contract as Solver::stop_).
  std::atomic<bool> externalStop_{false};
};

}  // namespace upec::sat
