// Shared propositional vocabulary of the SAT layer: variables, literals,
// the three-valued assignment and solver-effort statistics. Split out of
// solver.hpp so that the abstract SolverBackend interface, the concrete
// CDCL solver and the portfolio racer can all speak the same types without
// depending on each other's implementation.
#pragma once

#include <cstdint>

namespace upec::sat {

// A propositional variable is a non-negative integer. A literal packs a
// variable and a sign: lit = var * 2 + (negated ? 1 : 0).
using Var = int;

class Lit {
 public:
  Lit() : code_(-2) {}
  Lit(Var v, bool negated) : code_(v * 2 + (negated ? 1 : 0)) {}

  static Lit fromCode(int code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  Var var() const { return code_ >> 1; }
  bool sign() const { return code_ & 1; }  // true = negated
  Lit operator~() const { return fromCode(code_ ^ 1); }
  int code() const { return code_; }
  bool operator==(const Lit& o) const { return code_ == o.code_; }
  bool operator!=(const Lit& o) const { return code_ != o.code_; }

 private:
  int code_;
};

inline const Lit kLitUndef = Lit::fromCode(-2);

// Three-valued assignment.
enum class LBool : std::uint8_t { kTrue, kFalse, kUndef };
inline LBool negate(LBool b) {
  if (b == LBool::kUndef) return b;
  return b == LBool::kTrue ? LBool::kFalse : LBool::kTrue;
}

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learntLiterals = 0;
  std::uint64_t removedClauses = 0;
  std::uint64_t solves = 0;
  // Learnt-clause exchange flow (zero unless the solver is attached to a
  // sat::ClauseExchange): clauses published, foreign clauses attached, and
  // clauses lost — to ring overrun or the duplicate filter. Dropped is an
  // upper bound: a lap-behind ring gap is counted wholesale and may
  // include the solver's own publishes (ClauseExchange::DrainStats).
  std::uint64_t clausesExported = 0;
  std::uint64_t clausesImported = 0;
  std::uint64_t clausesDropped = 0;

  // Solver-phase profiling (zero unless SolverConfig::profile): wall time
  // spent inside each phase of the CDCL loop, in nanoseconds. The clock is
  // never read when profiling is off, so the default path stays free of
  // timing syscalls and the stats delta stays bit-identical.
  std::uint64_t propagateTimeNs = 0;
  std::uint64_t analyzeTimeNs = 0;
  std::uint64_t reduceTimeNs = 0;
  std::uint64_t restartTimeNs = 0;
  // Exchange *efficacy* (SolverConfig::profile + an attached exchange):
  // how many imported foreign clauses were ever useful, not just attached.
  // Each imported clause is counted at most once per category — the first
  // time it propagates a literal (or is the conflicting clause), and the
  // first time it appears as a reason in conflict analysis.
  std::uint64_t importedUsedInPropagation = 0;
  std::uint64_t importedUsedInConflict = 0;

  // Field-wise difference, for per-solve deltas in incremental use.
  SolverStats operator-(const SolverStats& o) const {
    return {decisions - o.decisions,   propagations - o.propagations,
            conflicts - o.conflicts,   restarts - o.restarts,
            learntLiterals - o.learntLiterals,
            removedClauses - o.removedClauses, solves - o.solves,
            clausesExported - o.clausesExported,
            clausesImported - o.clausesImported,
            clausesDropped - o.clausesDropped,
            propagateTimeNs - o.propagateTimeNs,
            analyzeTimeNs - o.analyzeTimeNs,
            reduceTimeNs - o.reduceTimeNs,
            restartTimeNs - o.restartTimeNs,
            importedUsedInPropagation - o.importedUsedInPropagation,
            importedUsedInConflict - o.importedUsedInConflict};
  }

  // Field-wise sum, for merging the effort of portfolio members.
  SolverStats operator+(const SolverStats& o) const {
    return {decisions + o.decisions,   propagations + o.propagations,
            conflicts + o.conflicts,   restarts + o.restarts,
            learntLiterals + o.learntLiterals,
            removedClauses + o.removedClauses, solves + o.solves,
            clausesExported + o.clausesExported,
            clausesImported + o.clausesImported,
            clausesDropped + o.clausesDropped,
            propagateTimeNs + o.propagateTimeNs,
            analyzeTimeNs + o.analyzeTimeNs,
            reduceTimeNs + o.reduceTimeNs,
            restartTimeNs + o.restartTimeNs,
            importedUsedInPropagation + o.importedUsedInPropagation,
            importedUsedInConflict + o.importedUsedInConflict};
  }
  SolverStats& operator+=(const SolverStats& o) { return *this = *this + o; }
};

}  // namespace upec::sat
