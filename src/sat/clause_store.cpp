#include "sat/clause_store.hpp"

namespace upec::sat {

void ClauseStore::promote(const std::string& family, unsigned depth,
                          std::span<const std::vector<Lit>> clauses) {
  if (clauses.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Family& f = families_[family];
  for (const std::vector<Lit>& clause : clauses) {
    if (clause.empty()) continue;
    if (f.entries.size() >= familyCapacity_) {
      ++stats_.overflow;
      continue;
    }
    if (!f.filter.insert(std::span<const Lit>(clause.data(), clause.size()))) {
      ++stats_.duplicates;
      continue;
    }
    f.entries.push_back({depth, clause});
    ++stats_.promoted;
  }
}

std::vector<std::vector<Lit>> ClauseStore::fetch(const std::string& family,
                                                 const std::string& consumer, unsigned depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto fit = families_.find(family);
  if (fit == families_.end()) return {};
  const Family& f = fit->second;
  Cursor& cursor = cursors_[family + '\n' + consumer];

  std::vector<std::vector<Lit>> out;
  // Entries skipped on an earlier fetch (too deep then) may be eligible now.
  std::vector<std::size_t> stillSkipped;
  for (const std::size_t idx : cursor.skipped) {
    if (f.entries[idx].depth <= depth) {
      out.push_back(f.entries[idx].lits);
    } else {
      stillSkipped.push_back(idx);
    }
  }
  cursor.skipped = std::move(stillSkipped);
  for (; cursor.next < f.entries.size(); ++cursor.next) {
    const Entry& e = f.entries[cursor.next];
    if (e.depth <= depth) {
      out.push_back(e.lits);
    } else {
      cursor.skipped.push_back(cursor.next);
    }
  }
  stats_.fetched += out.size();
  return out;
}

ClauseStore::Stats ClauseStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ClauseStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, f] : families_) n += f.entries.size();
  return n;
}

}  // namespace upec::sat
