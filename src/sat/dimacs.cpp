#include "sat/dimacs.hpp"

#include <ostream>
#include <sstream>

namespace upec::sat {

Var DimacsRecorder::newVar() {
  ++numVars_;
  return solver_->newVar();
}

bool DimacsRecorder::addClause(std::span<const Lit> lits) {
  clauses_.emplace_back(lits.begin(), lits.end());
  return solver_->addClause(lits);
}

void DimacsRecorder::write(std::ostream& os) const {
  os << "p cnf " << numVars_ << " " << clauses_.size() << "\n";
  for (const auto& clause : clauses_) {
    for (Lit l : clause) {
      os << (l.sign() ? -(l.var() + 1) : (l.var() + 1)) << " ";
    }
    os << "0\n";
  }
}

std::string DimacsRecorder::toString() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

DimacsParseResult parseDimacs(std::istream& is, SolverBackend& solver) {
  DimacsParseResult result;
  const int baseVars = solver.numVars();
  int declaredVars = -1;
  long declaredClauses = -1;
  std::string token;
  std::vector<Lit> clause;

  auto varFor = [&](int dimacsVar) {
    while (solver.numVars() - baseVars < dimacsVar) solver.newVar();
    return static_cast<Var>(baseVars + dimacsVar - 1);
  };

  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    if (line[0] == 'p') {
      std::string p, cnf;
      ls >> p >> cnf >> declaredVars >> declaredClauses;
      if (cnf != "cnf" || declaredVars < 0 || declaredClauses < 0) {
        result.error = "malformed problem line: " + line;
        return result;
      }
      continue;
    }
    long v;
    while (ls >> v) {
      if (v == 0) {
        solver.addClause(std::span<const Lit>(clause));
        ++result.numClauses;
        clause.clear();
      } else {
        const int mag = static_cast<int>(v < 0 ? -v : v);
        if (declaredVars >= 0 && mag > declaredVars) {
          result.error = "literal exceeds declared variable count";
          return result;
        }
        clause.push_back(Lit(varFor(mag), v < 0));
      }
    }
  }
  if (!clause.empty()) {
    result.error = "trailing clause without terminating 0";
    return result;
  }
  result.numVars = solver.numVars() - baseVars;
  result.ok = true;
  return result;
}

DimacsParseResult parseDimacsString(const std::string& text, SolverBackend& solver) {
  std::istringstream is(text);
  return parseDimacs(is, solver);
}

}  // namespace upec::sat
