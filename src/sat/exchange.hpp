// Learnt-clause exchange for cooperative portfolio solving.
//
// Diversified CDCL members racing the same miter encoding re-derive the
// same conflict clauses over and over; a ClauseExchange lets each member
// publish its short, low-LBD learnts and import everyone else's, so one
// member's deduction prunes every member's search. Soundness is free:
// a learnt clause is produced by resolution over the clause database
// alone (assumptions enter the search as decisions, not clauses), so it
// is a logical consequence of the shared formula and may be attached by
// any member that owns the same problem clauses.
//
// Shape: a bounded multi-producer/multi-consumer *broadcast* ring.
// Producers claim a slot with one fetch_add on the global head and write
// the clause under that slot's own mutex; consumers do not pop — each
// member keeps a private cursor and reads every slot published since its
// last drain, skipping its own clauses. A consumer that falls a full lap
// behind loses the overwritten clauses (counted as drops, never blocking
// a producer), which is the eviction policy: the exchange favours fresh
// clauses over complete delivery. Per-slot mutexes are held only for the
// length of one clause copy, so contention is negligible next to CDCL
// propagation, and every payload access is lock-protected — the design
// is exactly as fast as a seqlock here (clauses are a handful of words)
// while staying data-race-free under ThreadSanitizer.
//
// Measuring whether the sharing *helps*: raw SolverStats::clausesImported
// only counts attachments. With SolverConfig::profile on, the importing
// solver additionally tracks each adopted clause's first useful act —
// SolverStats::importedUsedInPropagation (it propagated a literal or was
// the conflicting clause) and importedUsedInConflict (it served as a
// reason in conflict analysis). The bookkeeping lives on the importer's
// side in solver.cpp, not here: the exchange never learns what became of
// a delivered clause, so the ring stays write-and-forget.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "sat/types.hpp"

namespace upec::sat {

// Fixed-size set of 64-bit clause signatures: the importer's (and
// exporter's) cheap duplicate filter. insert() returns false when the
// signature is already present. The signature is order-independent, so a
// clause re-derived by another member with a different literal order is
// still recognised. False positives (distinct clauses colliding on one
// signature) merely suppress an import and can never affect soundness;
// when a probe window fills up, old signatures are overwritten, so false
// negatives (a duplicate slipping through) are possible too — a duplicate
// learnt is redundant but equally harmless.
class ClauseFilter {
 public:
  explicit ClauseFilter(std::size_t slots = 1 << 13);

  // True if the clause was new (and is now remembered).
  bool insert(std::span<const Lit> lits);

  // Forgets the clause if present (an exporter un-remembers a clause whose
  // publish failed, so re-deriving it can share it after all). Zeroing a
  // probe-chain slot may turn other entries into false "new"s — harmless,
  // like any other false negative of this filter.
  void remove(std::span<const Lit> lits);

  static std::uint64_t signature(std::span<const Lit> lits);

 private:
  std::vector<std::uint64_t> table_;  // 0 = empty slot
  std::size_t mask_ = 0;
};

class ClauseExchange {
 public:
  static constexpr std::size_t kDefaultCapacity = 2048;

  // `members` consumers (ids 0..members-1) share `capacity` ring slots.
  // All members must be known up front: attach happens at portfolio
  // construction, before any thread races.
  explicit ClauseExchange(unsigned members, std::size_t capacity = kDefaultCapacity);
  ClauseExchange(const ClauseExchange&) = delete;
  ClauseExchange& operator=(const ClauseExchange&) = delete;

  unsigned members() const { return static_cast<unsigned>(cursors_.size()); }
  std::size_t capacity() const { return slots_.size(); }

  // Publishes a clause on behalf of `member`. The clause must be free of
  // duplicate and complementary literals (conflict-analysis output always
  // is). Never blocks on consumers: a slot not yet drained by a slow
  // member is simply overwritten. Returns false in one rare corner — the
  // producer was descheduled for a whole ring lap and a newer clause
  // already owns its slot — meaning the clause was dropped, not stored
  // (and does not count toward published()).
  bool publish(unsigned member, std::span<const Lit> lits);

  struct DrainStats {
    std::size_t delivered = 0;  // foreign clauses handed to the sink
    // Publish indices this member never got to read (ring wrap-around).
    // An *upper bound* on lost foreign clauses: a lap-behind gap is
    // counted wholesale, so it may include the member's own publishes and
    // the rare abandoned index (see publish()).
    std::size_t overrun = 0;
  };

  // Invokes `sink` for every clause published since `member`'s previous
  // drain, except the member's own. Must only be called by the thread
  // currently driving that member (the cursor is unsynchronised by
  // design). The span passed to the sink is valid only for the call.
  DrainStats drain(unsigned member, const std::function<void(std::span<const Lit>)>& sink);

  // Clauses ever accepted into the ring (all producers).
  std::uint64_t published() const { return published_.load(std::memory_order_relaxed); }

  // Pre-loads externally proven clauses (checkpoint resume, or the
  // campaign clause store between windows). Published under the sentinel
  // source id members() — not a real member, so *every* member's drain
  // imports them (drain only skips a member's own id). Call at setup or
  // from the driving thread between races — publish() is safe against
  // concurrent drains, and between solveLimited() calls no member thread
  // exists at all. Soundness is the caller's contract (the clauses must be
  // consequences of the formula the members are being fed).
  void seed(std::span<const std::vector<Lit>> clauses);

  // The most recently published clauses still resident in the ring (up to
  // maxClauses, newest first) — the payload a checkpoint persists for the
  // next process's seed(). Thread-safe via the slot mutexes; the copy is
  // consistent per clause, not across the ring (fine for persistence:
  // every clause is individually sound).
  std::vector<std::vector<Lit>> snapshot(std::size_t maxClauses);

 private:
  struct Slot {
    std::mutex mutex;
    // Publish index of the clause held, -1 before first use. Today every
    // access (version and payload alike) happens under the slot mutex;
    // the atomic keeps a future unlocked is-it-worth-locking peek
    // well-defined without a protocol change.
    std::atomic<std::int64_t> version{-1};
    unsigned source = 0;
    std::vector<Lit> lits;
  };
  struct alignas(64) Cursor {  // one cache line per member: no false sharing
    std::uint64_t next = 0;
  };

  std::vector<Slot> slots_;
  std::vector<Cursor> cursors_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> published_{0};
};

}  // namespace upec::sat
