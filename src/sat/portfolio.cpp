#include "sat/portfolio.hpp"

#include <atomic>
#include <cassert>
#include <exception>
#include <thread>

#include "obs/trace.hpp"
#include "sat/solver.hpp"

namespace upec::sat {

PortfolioSolver::PortfolioSolver(std::span<const SolverConfig> configs,
                                 const PortfolioOptions& options)
    : options_(options) {
  assert(!configs.empty());
  members_.reserve(configs.size());
  for (const SolverConfig& c : configs) members_.push_back(std::make_unique<Solver>(c));
  initMembers();
}

PortfolioSolver::PortfolioSolver(std::vector<std::unique_ptr<SolverBackend>> members,
                                 const PortfolioOptions& options)
    : options_(options), members_(std::move(members)) {
  assert(!members_.empty());
  initMembers();
}

void PortfolioSolver::initMembers() {
  lastVerdicts_.assign(members_.size(), LBool::kUndef);
  if (options_.sharing && members_.size() > 1) {
    exchange_ = std::make_unique<ClauseExchange>(static_cast<unsigned>(members_.size()),
                                                 options_.exchangeCapacity);
    for (std::size_t i = 0; i < members_.size(); ++i) {
      members_[i]->attachExchange(exchange_.get(), static_cast<unsigned>(i));
    }
    // Learnts persisted by a previous process (checkpoint resume): seeded
    // under the sentinel source id, so every member imports them on its
    // first solve's entry drain.
    if (!options_.seedLearnts.empty()) {
      exchange_->seed(std::span<const std::vector<Lit>>(options_.seedLearnts.data(),
                                                        options_.seedLearnts.size()));
    }
  }
}

PortfolioSolver::~PortfolioSolver() = default;

Var PortfolioSolver::newVar() {
  const Var v = members_.front()->newVar();
  for (std::size_t i = 1; i < members_.size(); ++i) {
    [[maybe_unused]] const Var w = members_[i]->newVar();
    assert(w == v && "portfolio members must agree on variable numbering");
  }
  return v;
}

bool PortfolioSolver::addClause(std::span<const Lit> lits) {
  // A member may simplify the clause against top-level units it learnt in
  // an earlier race, so return values can differ; the formula is known
  // unsatisfiable as soon as ANY member proves it.
  bool ok = true;
  for (auto& m : members_) ok = m->addClause(lits) && ok;
  return ok;
}

bool PortfolioSolver::okay() const {
  for (const auto& m : members_) {
    if (!m->okay()) return false;
  }
  return true;
}

LBool PortfolioSolver::solveLimited(std::span<const Lit> assumptions) {
  lastWinner_ = -1;
  lastBudgetExhausted_ = false;
  lastDeadlineExpired_ = false;
  lastVerdicts_.assign(members_.size(), LBool::kUndef);
  lastRaceSize_ = 0;  // nobody raced yet: an early exit reports empty deltas
  if (externalStop_.load(std::memory_order_relaxed)) {
    return LBool::kUndef;  // sticky, like Solver
  }

  // Under a governor each racing member (including the one on the calling
  // thread) holds a slot for the duration of the race. A short grant sheds
  // members from the tail, so member 0 — the baseline configuration — is
  // always among the racers and a fully-degraded race equals the single
  // default backend.
  unsigned held = 0;
  lastRaceSize_ = members_.size();
  if (options_.governor != nullptr && members_.size() > 1) {
    held = options_.governor->acquire(static_cast<unsigned>(members_.size()));
    lastRaceSize_ = std::max<std::size_t>(1, held);
  }
  const std::size_t racing = lastRaceSize_;

  // Erase loser-stops from the previous race before anyone starts. Done
  // single-threaded here so a slow-starting member cannot miss a stop
  // request issued by this race's winner.
  for (auto& m : members_) m->clearStop();
  // An external requestStop() that landed between the entry check and the
  // clearStop loop had its member flags wiped above — re-check so the
  // cancellation is honoured instead of silently dropped for this call.
  if (externalStop_.load(std::memory_order_relaxed)) {
    if (held != 0) options_.governor->release(held);
    lastRaceSize_ = 0;
    return LBool::kUndef;
  }

  obs::Span raceSpan("sat", "portfolio.race");
  if (raceSpan.enabled()) {
    raceSpan.arg("members", std::uint64_t{members_.size()}).arg("racing", std::uint64_t{racing});
  }
  std::atomic<int> winner{-1};
  // A member whose solve throws (a bug — or an injected fault) must not
  // std::terminate the process from its race thread. Each racer records
  // into its own slot; the calling thread rethrows after the join when the
  // race produced no answer (with a winner, the formula was decided and a
  // loser's corpse cannot change the verdict).
  std::vector<std::exception_ptr> raceErrors(racing);
  auto race = [&](std::size_t i) {
    obs::Span memberSpan("sat", "portfolio.member");
    if (memberSpan.enabled()) memberSpan.arg("member", std::uint64_t{i});
    LBool verdict = LBool::kUndef;
    try {
      verdict = members_[i]->solveLimited(assumptions);
    } catch (...) {
      raceErrors[i] = std::current_exception();
    }
    lastVerdicts_[i] = verdict;  // distinct element per thread: no race
    bool won = false;
    if (verdict != LBool::kUndef) {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, static_cast<int>(i))) {
        won = true;
        for (std::size_t j = 0; j < racing; ++j) {
          if (j != i) members_[j]->requestStop();
        }
      }
    }
    if (memberSpan.enabled()) {
      memberSpan
          .arg("status", verdict == LBool::kFalse  ? "unsat"
                         : verdict == LBool::kTrue ? "sat"
                                                   : "undef")
          .arg("winner", won);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(racing - 1);
  for (std::size_t i = 1; i < racing; ++i) threads.emplace_back(race, i);
  race(0);
  for (std::thread& t : threads) t.join();
  if (held != 0) options_.governor->release(held);

  lastWinner_ = winner.load();
  if (lastWinner_ < 0) {
    for (std::size_t i = 0; i < racing; ++i) {
      if (raceErrors[i]) std::rethrow_exception(raceErrors[i]);
    }
  }
  if (raceSpan.enabled()) {
    raceSpan.arg("winner", lastWinner_ >= 0
                               ? members_[static_cast<std::size_t>(lastWinner_)]->describe()
                               : std::string("no-answer"));
  }
  if (lastWinner_ < 0 && !externalStop_.load(std::memory_order_relaxed)) {
    // No member answered and nobody cancelled us from outside. The race
    // counts as budget-starved when any racer ran out of conflicts — the
    // others were loser-stopped or equally starved, so a larger budget is
    // what it would take to decide the query. (An externally stopped race
    // stays "not budget-exhausted" even if a member hit its budget before
    // observing the stop: a cancelled solve must never look retry-worthy.)
    for (std::size_t i = 0; i < racing && !lastBudgetExhausted_; ++i) {
      lastBudgetExhausted_ = members_[i]->lastSolveBudgetExhausted();
    }
    // Same reasoning for the wall-clock deadline: expiry is only reported
    // when this race genuinely timed out, never when it was cancelled.
    for (std::size_t i = 0; i < racing && !lastDeadlineExpired_; ++i) {
      lastDeadlineExpired_ = members_[i]->lastSolveDeadlineExpired();
    }
  }
  return lastWinner_ >= 0 ? lastVerdicts_[static_cast<std::size_t>(lastWinner_)]
                          : LBool::kUndef;
}

bool PortfolioSolver::modelValue(Var v) const {
  assert(lastWinner_ >= 0 && "modelValue requires a winning member");
  return members_[static_cast<std::size_t>(lastWinner_)]->modelValue(v);
}

const std::vector<Lit>& PortfolioSolver::unsatCore() const {
  assert(lastWinner_ >= 0 && "unsatCore requires a winning member");
  return members_[static_cast<std::size_t>(lastWinner_)]->unsatCore();
}

SolverStats PortfolioSolver::stats() const {
  SolverStats sum;
  for (const auto& m : members_) sum += m->stats();
  return sum;
}

SolverStats PortfolioSolver::lastSolveStats() const {
  // Sum only the members that actually raced last time: a governor-shed
  // member never entered solveLimited(), so its "last solve" delta is the
  // stale one from an earlier race and must not be re-counted.
  SolverStats sum;
  for (std::size_t i = 0; i < lastRaceSize_; ++i) sum += members_[i]->lastSolveStats();
  return sum;
}

void PortfolioSolver::setConflictBudget(std::uint64_t budget) {
  for (auto& m : members_) m->setConflictBudget(budget);
}

void PortfolioSolver::setSolveDeadlineMs(std::uint64_t deadlineMs) {
  for (auto& m : members_) m->setSolveDeadlineMs(deadlineMs);
}

void PortfolioSolver::setFaultAbortAtConflict(std::uint64_t conflicts) {
  for (auto& m : members_) m->setFaultAbortAtConflict(conflicts);
}

std::vector<std::vector<Lit>> PortfolioSolver::learntSnapshot(std::size_t maxClauses) const {
  if (exchange_ == nullptr) return {};
  return exchange_->snapshot(maxClauses);
}

void PortfolioSolver::seedClauses(std::span<const std::vector<Lit>> clauses) {
  if (exchange_ == nullptr || clauses.empty()) return;
  // Between races no member thread exists (solveLimited joins them all), so
  // the seed's publishes race with nothing; every member imports the new
  // clauses on its next entry drain. Duplicates of clauses a member already
  // holds are shed by its import filter — re-seeding is harmless.
  exchange_->seed(clauses);
}

void PortfolioSolver::requestStop() {
  externalStop_.store(true, std::memory_order_relaxed);
  // Forwarding covers a stop that lands after solveLimited()'s entry check:
  // the racing members see their own flags mid-search.
  for (auto& m : members_) m->requestStop();
}

void PortfolioSolver::clearStop() {
  externalStop_.store(false, std::memory_order_relaxed);
  for (auto& m : members_) m->clearStop();
}

std::string PortfolioSolver::describe() const {
  std::string out = "portfolio[";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i) out += "; ";
    out += members_[i]->describe();
  }
  out += "]";
  if (exchange_ != nullptr) out += "+sharing";
  return out;
}

std::string PortfolioSolver::lastSolveAttribution() const {
  if (lastWinner_ < 0) return "no-answer";
  return members_[static_cast<std::size_t>(lastWinner_)]->describe();
}

}  // namespace upec::sat
