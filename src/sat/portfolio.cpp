#include "sat/portfolio.hpp"

#include <atomic>
#include <cassert>
#include <thread>

#include "sat/solver.hpp"

namespace upec::sat {

PortfolioSolver::PortfolioSolver(std::span<const SolverConfig> configs) {
  assert(!configs.empty());
  members_.reserve(configs.size());
  for (const SolverConfig& c : configs) members_.push_back(std::make_unique<Solver>(c));
  lastVerdicts_.assign(members_.size(), LBool::kUndef);
}

PortfolioSolver::PortfolioSolver(std::vector<std::unique_ptr<SolverBackend>> members)
    : members_(std::move(members)) {
  assert(!members_.empty());
  lastVerdicts_.assign(members_.size(), LBool::kUndef);
}

PortfolioSolver::~PortfolioSolver() = default;

Var PortfolioSolver::newVar() {
  const Var v = members_.front()->newVar();
  for (std::size_t i = 1; i < members_.size(); ++i) {
    [[maybe_unused]] const Var w = members_[i]->newVar();
    assert(w == v && "portfolio members must agree on variable numbering");
  }
  return v;
}

bool PortfolioSolver::addClause(std::span<const Lit> lits) {
  // A member may simplify the clause against top-level units it learnt in
  // an earlier race, so return values can differ; the formula is known
  // unsatisfiable as soon as ANY member proves it.
  bool ok = true;
  for (auto& m : members_) ok = m->addClause(lits) && ok;
  return ok;
}

bool PortfolioSolver::okay() const {
  for (const auto& m : members_) {
    if (!m->okay()) return false;
  }
  return true;
}

LBool PortfolioSolver::solveLimited(std::span<const Lit> assumptions) {
  lastWinner_ = -1;
  lastVerdicts_.assign(members_.size(), LBool::kUndef);
  if (externalStop_.load(std::memory_order_relaxed)) {
    return LBool::kUndef;  // sticky, like Solver
  }

  // Erase loser-stops from the previous race before anyone starts. Done
  // single-threaded here so a slow-starting member cannot miss a stop
  // request issued by this race's winner.
  for (auto& m : members_) m->clearStop();
  // An external requestStop() that landed between the entry check and the
  // clearStop loop had its member flags wiped above — re-check so the
  // cancellation is honoured instead of silently dropped for this call.
  if (externalStop_.load(std::memory_order_relaxed)) return LBool::kUndef;

  std::atomic<int> winner{-1};
  auto race = [&](std::size_t i) {
    const LBool verdict = members_[i]->solveLimited(assumptions);
    lastVerdicts_[i] = verdict;  // distinct element per thread: no race
    if (verdict != LBool::kUndef) {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, static_cast<int>(i))) {
        for (std::size_t j = 0; j < members_.size(); ++j) {
          if (j != i) members_[j]->requestStop();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(members_.size() - 1);
  for (std::size_t i = 1; i < members_.size(); ++i) threads.emplace_back(race, i);
  race(0);
  for (std::thread& t : threads) t.join();

  lastWinner_ = winner.load();
  return lastWinner_ >= 0 ? lastVerdicts_[static_cast<std::size_t>(lastWinner_)]
                          : LBool::kUndef;
}

bool PortfolioSolver::modelValue(Var v) const {
  assert(lastWinner_ >= 0 && "modelValue requires a winning member");
  return members_[static_cast<std::size_t>(lastWinner_)]->modelValue(v);
}

const std::vector<Lit>& PortfolioSolver::unsatCore() const {
  assert(lastWinner_ >= 0 && "unsatCore requires a winning member");
  return members_[static_cast<std::size_t>(lastWinner_)]->unsatCore();
}

SolverStats PortfolioSolver::stats() const {
  SolverStats sum;
  for (const auto& m : members_) sum += m->stats();
  return sum;
}

SolverStats PortfolioSolver::lastSolveStats() const {
  SolverStats sum;
  for (const auto& m : members_) sum += m->lastSolveStats();
  return sum;
}

void PortfolioSolver::setConflictBudget(std::uint64_t budget) {
  for (auto& m : members_) m->setConflictBudget(budget);
}

void PortfolioSolver::requestStop() {
  externalStop_.store(true, std::memory_order_relaxed);
  // Forwarding covers a stop that lands after solveLimited()'s entry check:
  // the racing members see their own flags mid-search.
  for (auto& m : members_) m->requestStop();
}

void PortfolioSolver::clearStop() {
  externalStop_.store(false, std::memory_order_relaxed);
  for (auto& m : members_) m->clearStop();
}

std::string PortfolioSolver::describe() const {
  std::string out = "portfolio[";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i) out += "; ";
    out += members_[i]->describe();
  }
  out += "]";
  return out;
}

std::string PortfolioSolver::lastSolveAttribution() const {
  if (lastWinner_ < 0) return "no-answer";
  return members_[static_cast<std::size_t>(lastWinner_)]->describe();
}

}  // namespace upec::sat
