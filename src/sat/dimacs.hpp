// DIMACS CNF interchange: export problems built through a recording proxy,
// and parse standard .cnf files into a Solver. Lets the engines in this
// repository be cross-checked against external SAT solvers, and external
// benchmarks be run against ours.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver_backend.hpp"

namespace upec::sat {

// Records clauses while forwarding them to a Solver, for later export.
class DimacsRecorder {
 public:
  explicit DimacsRecorder(SolverBackend& solver) : solver_(&solver) {}

  Var newVar();
  bool addClause(std::span<const Lit> lits);
  bool addClause(std::initializer_list<Lit> lits) {
    return addClause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  // Writes "p cnf <vars> <clauses>" plus all recorded clauses.
  void write(std::ostream& os) const;
  std::string toString() const;

  std::size_t numClauses() const { return clauses_.size(); }

 private:
  SolverBackend* solver_;
  int numVars_ = 0;
  std::vector<std::vector<Lit>> clauses_;
};

struct DimacsParseResult {
  bool ok = false;
  std::string error;
  int numVars = 0;
  std::size_t numClauses = 0;
};

// Parses DIMACS text, creating variables and clauses in `solver`.
// Variable i of the file maps to solver variable i-1 (+ baseVar offset for
// variables that already exist).
DimacsParseResult parseDimacs(std::istream& is, SolverBackend& solver);
DimacsParseResult parseDimacsString(const std::string& text, SolverBackend& solver);

}  // namespace upec::sat
