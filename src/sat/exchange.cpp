#include "sat/exchange.hpp"

#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace upec::sat {

// ----------------------------------------------------------- ClauseFilter ---

ClauseFilter::ClauseFilter(std::size_t slots) {
  std::size_t n = 16;
  while (n < slots) n <<= 1;
  table_.assign(n, 0);
  mask_ = n - 1;
}

std::uint64_t ClauseFilter::signature(std::span<const Lit> lits) {
  // Commutative combination (sum and xor of per-literal mixes) so literal
  // order does not matter; the size in the top byte separates clauses whose
  // literal multisets would otherwise collide trivially.
  std::uint64_t sum = 0, mix = 0;
  for (const Lit l : lits) {
    std::uint64_t h =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(l.code())) + 0x9e3779b97f4a7c15ull;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    sum += h;
    mix ^= h;
  }
  std::uint64_t sig =
      sum ^ (mix * 0x2545f4914f6cdd1dull) ^ (static_cast<std::uint64_t>(lits.size()) << 56);
  return sig == 0 ? 1 : sig;  // 0 is the empty-slot marker
}

bool ClauseFilter::insert(std::span<const Lit> lits) {
  const std::uint64_t sig = signature(lits);
  const std::size_t base = static_cast<std::size_t>(sig) & mask_;
  constexpr std::size_t kProbes = 8;
  for (std::size_t p = 0; p < kProbes; ++p) {
    std::uint64_t& slot = table_[(base + p) & mask_];
    if (slot == sig) return false;
    if (slot == 0) {
      slot = sig;
      return true;
    }
  }
  table_[base] = sig;  // probe window full: evict the oldest-looking entry
  return true;
}

void ClauseFilter::remove(std::span<const Lit> lits) {
  const std::uint64_t sig = signature(lits);
  const std::size_t base = static_cast<std::size_t>(sig) & mask_;
  constexpr std::size_t kProbes = 8;
  for (std::size_t p = 0; p < kProbes; ++p) {
    std::uint64_t& slot = table_[(base + p) & mask_];
    if (slot == sig) {
      slot = 0;
      return;
    }
    if (slot == 0) return;
  }
}

// --------------------------------------------------------- ClauseExchange ---

ClauseExchange::ClauseExchange(unsigned members, std::size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity), cursors_(members) {
  assert(members > 0);
}

bool ClauseExchange::publish(unsigned member, std::span<const Lit> lits) {
  // An attempt fails only when this producer was descheduled for a whole
  // ring lap between claiming the index and taking the slot lock (a newer
  // clause owns the slot, and overwriting it backwards would stall
  // readers). A fresh index on retry is then almost certain to succeed;
  // giving up leaves a never-published hole that readers skip once the
  // slot is reused.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[idx % slots_.size()];
    {
      std::lock_guard<std::mutex> lock(slot.mutex);
      if (static_cast<std::int64_t>(idx) <= slot.version.load(std::memory_order_relaxed)) {
        continue;
      }
      slot.lits.assign(lits.begin(), lits.end());
      slot.source = member;
      slot.version.store(static_cast<std::int64_t>(idx), std::memory_order_release);
    }
    published_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ClauseExchange::seed(std::span<const std::vector<Lit>> clauses) {
  for (const std::vector<Lit>& c : clauses) {
    if (c.empty()) continue;
    publish(members(), std::span<const Lit>(c.data(), c.size()));
  }
}

std::vector<std::vector<Lit>> ClauseExchange::snapshot(std::size_t maxClauses) {
  std::vector<std::vector<Lit>> out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::size_t cap = slots_.size();
  const std::uint64_t resident = head < cap ? head : cap;
  for (std::uint64_t i = 0; i < resident && out.size() < maxClauses; ++i) {
    const std::uint64_t idx = head - 1 - i;  // newest first
    Slot& slot = slots_[idx % cap];
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.version.load(std::memory_order_relaxed) == static_cast<std::int64_t>(idx) &&
        !slot.lits.empty()) {
      out.push_back(slot.lits);
    }
  }
  return out;
}

ClauseExchange::DrainStats ClauseExchange::drain(
    unsigned member, const std::function<void(std::span<const Lit>)>& sink) {
  assert(member < cursors_.size());
  DrainStats out;
  std::uint64_t next = cursors_[member].next;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::size_t cap = slots_.size();

  if (head > next + cap) {  // fell at least a lap behind: the gap is gone
    out.overrun += static_cast<std::size_t>(head - cap - next);
    next = head - cap;
  }

  std::vector<Lit> scratch;
  for (; next < head; ++next) {
    Slot& slot = slots_[next % cap];
    bool ready = false;
    unsigned source = 0;
    {
      std::lock_guard<std::mutex> lock(slot.mutex);
      const std::int64_t v = slot.version.load(std::memory_order_relaxed);
      if (v == static_cast<std::int64_t>(next)) {
        source = slot.source;
        scratch.assign(slot.lits.begin(), slot.lits.end());
        ready = true;
      } else if (v < static_cast<std::int64_t>(next)) {
        break;  // claimed but not yet published; pick it up on the next drain
      } else {
        ++out.overrun;  // overwritten before this member got here
        continue;
      }
    }
    if (ready && source != member) {
      sink(std::span<const Lit>(scratch.data(), scratch.size()));
      ++out.delivered;
    }
  }
  cursors_[member].next = next;
  // Telemetry at drain granularity (per solve-loop visit, not per clause):
  // the exchange's flow rates without touching the publish hot path.
  if (obs::metricsEnabled() && (out.delivered != 0 || out.overrun != 0)) {
    if (out.delivered != 0) obs::metrics().counter("exchange.delivered").add(out.delivered);
    if (out.overrun != 0) obs::metrics().counter("exchange.overrun").add(out.overrun);
  }
  if (obs::tracingEnabled() && (out.delivered != 0 || out.overrun != 0)) {
    // Export side: cumulative ring intake. Import side: this drain's yield.
    obs::counter("sat", "exchange.published", "published",
                 published_.load(std::memory_order_relaxed));
    obs::counter("sat", "exchange.drained", "delivered", out.delivered);
  }
  return out;
}

}  // namespace upec::sat
