#include "formal/bmc.hpp"

#include <cassert>
#include <map>
#include <set>
#include <utility>

#include "base/stopwatch.hpp"
#include "formal/cnf_builder.hpp"
#include "formal/unroller.hpp"
#include "obs/trace.hpp"
#include "sat/solver_backend.hpp"
#include "sim/simulator.hpp"

namespace upec::formal {

using sat::LBool;
using sat::Lit;

namespace {

// Reads the witness out of a satisfied solver: frame-0 register state,
// per-cycle inputs, and which commitments the model violates.
Trace extractTrace(const rtl::Design& design, const sat::SolverBackend& solver,
                   Unroller& unroller,
                   const IntervalProperty& property, unsigned k, const LitVec& violations) {
  Trace trace;
  trace.cycles = k + 1;
  trace.initialRegs.resize(design.regs().size());
  for (std::uint32_t r = 0; r < design.regs().size(); ++r) {
    const LitVec& lits = unroller.regLits(r, 0);
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < lits.size(); ++b) {
      if (solver.modelValue(lits[b])) v |= 1ull << b;
    }
    trace.initialRegs[r] = BitVec(static_cast<unsigned>(lits.size()), v);
  }
  trace.inputs.resize(k + 1);
  for (unsigned t = 0; t <= k; ++t) {
    trace.inputs[t].resize(design.inputs().size());
    for (std::size_t i = 0; i < design.inputs().size(); ++i) {
      const LitVec& lits = unroller.lits(design.inputs()[i], t);
      std::uint64_t v = 0;
      for (std::size_t b = 0; b < lits.size(); ++b) {
        if (solver.modelValue(lits[b])) v |= 1ull << b;
      }
      trace.inputs[t][i] = BitVec(static_cast<unsigned>(lits.size()), v);
    }
  }
  for (std::size_t ci = 0; ci < property.commitments.size(); ++ci) {
    if (solver.modelValue(violations[ci])) trace.failedCommitments.push_back(ci);
  }
  return trace;
}

void fillSolveStats(BmcStats& stats, const sat::SolverBackend& solver) {
  const sat::SolverStats delta = solver.lastSolveStats();
  stats.conflicts = delta.conflicts;
  stats.propagations = delta.propagations;
  stats.decisions = delta.decisions;
  stats.clausesExported = delta.clausesExported;
  stats.clausesImported = delta.clausesImported;
  stats.clausesDropped = delta.clausesDropped;
  stats.propagateTimeNs = delta.propagateTimeNs;
  stats.analyzeTimeNs = delta.analyzeTimeNs;
  stats.reduceTimeNs = delta.reduceTimeNs;
  stats.restartTimeNs = delta.restartTimeNs;
  stats.importedUsedInPropagation = delta.importedUsedInPropagation;
  stats.importedUsedInConflict = delta.importedUsedInConflict;
  stats.solvedBy = solver.lastSolveAttribution();
}

}  // namespace

// Persistent state of an incremental deepening session: one solver, one
// unroller over it, plus bookkeeping of which assumptions have already been
// asserted as hard units so repeated statements of the same property prefix
// are not re-encoded.
struct BmcEngine::Session {
  std::unique_ptr<sat::SolverBackend> solver;
  CnfBuilder cnf;
  Unroller unroller;
  // Cycle-anchored assumptions already asserted, keyed by (node, cycle).
  std::set<std::pair<rtl::NodeId, unsigned>> assertedAt;
  // Invariant assumptions: per signal, asserted over cycles 0..upTo.
  std::map<rtl::NodeId, unsigned> invariantUpTo;
  // Obligation big-or already encoded, keyed by the violation literal set.
  // Re-entering a window with unchanged commitments (a budget-escalated
  // retry) reuses the activation literal instead of paying a fresh
  // variable and clause set per attempt.
  std::map<std::vector<int>, sat::Lit> obligationCache;

  Session(const rtl::Design& design, const std::vector<sat::SolverConfig>& configs,
          const sat::PortfolioOptions& portfolio)
      : solver(sat::makeSolverBackend(configs, portfolio)),
        cnf(*solver),
        unroller(design, cnf) {}
};

BmcEngine::BmcEngine(const rtl::Design& design) : design_(design) {}
BmcEngine::~BmcEngine() = default;

void BmcEngine::resetIncremental() { session_.reset(); }

unsigned BmcEngine::incrementalFrames() const {
  return session_ ? session_->unroller.numFrames() : 0;
}

CheckResult BmcEngine::check(const IntervalProperty& property) {
  CheckResult result;
  obs::Span encodeSpan("formal", "bmc.encode");
  if (encodeSpan.enabled()) {
    encodeSpan.arg("k", property.maxCycle()).arg("incremental", false);
  }
  Stopwatch encodeTimer;

  const std::unique_ptr<sat::SolverBackend> solverPtr =
      sat::makeSolverBackend(solverConfigs_, portfolioOptions_);
  sat::SolverBackend& solver = *solverPtr;
  if (conflictBudget_ != 0) solver.setConflictBudget(conflictBudget_);
  if (solveDeadlineMs_ != 0) solver.setSolveDeadlineMs(solveDeadlineMs_);
  if (faultAbortAtConflict_ != 0) solver.setFaultAbortAtConflict(faultAbortAtConflict_);
  CnfBuilder cnf(solver);
  Unroller unroller(design_, cnf);
  for (const auto& [master, follower] : aliases_) {
    unroller.aliasInitialState(master, follower);
  }

  const unsigned k = property.maxCycle();
  unroller.unrollTo(k);

  // Assumptions become hard constraints of this (single-shot) query.
  for (const TimedSig& a : property.assumptions) {
    assert(a.sig.width() == 1);
    cnf.assertLit(unroller.lit(a.sig, a.cycle));
  }
  for (rtl::Sig inv : property.invariantAssumptions) {
    assert(inv.width() == 1);
    for (unsigned t = 0; t <= k; ++t) cnf.assertLit(unroller.lit(inv, t));
  }

  // Violation literal: OR over negated commitments.
  LitVec violations;
  violations.reserve(property.commitments.size());
  for (const TimedSig& c : property.commitments) {
    assert(c.sig.width() == 1);
    violations.push_back(~unroller.lit(c.sig, c.cycle));
  }
  if (violations.empty()) {
    result.status = CheckStatus::kProven;
    return result;
  }
  cnf.assertLit(cnf.bigOr(violations));

  result.stats.encodeMs = encodeTimer.elapsedMs();
  result.stats.vars = static_cast<std::uint64_t>(solver.numVars());
  result.stats.clauses = solver.numClauses();
  if (encodeSpan.enabled()) encodeSpan.arg("vars", result.stats.vars);
  encodeSpan.end();

  obs::Span solveSpan("formal", "bmc.solve");
  if (solveSpan.enabled()) solveSpan.arg("k", k).arg("incremental", false);
  Stopwatch solveTimer;
  const LBool sat = solver.solve();
  result.stats.solveMs = solveTimer.elapsedMs();
  fillSolveStats(result.stats, solver);
  if (solveSpan.enabled()) {
    solveSpan.arg("conflicts", result.stats.conflicts)
        .arg("status", sat == LBool::kFalse ? "unsat" : sat == LBool::kTrue ? "sat" : "undef");
  }
  solveSpan.end();

  if (sat == LBool::kFalse) {
    result.status = CheckStatus::kProven;
    return result;
  }
  if (sat == LBool::kUndef) {
    result.status = CheckStatus::kUnknown;
    result.budgetExhausted = solver.lastSolveBudgetExhausted();
    result.deadlineExpired = solver.lastSolveDeadlineExpired();
    return result;
  }

  result.status = CheckStatus::kCounterexample;
  result.trace = extractTrace(design_, solver, unroller, property, k, violations);
  return result;
}

CheckResult BmcEngine::checkIncremental(const IntervalProperty& property) {
  CheckResult result;
  obs::Span encodeSpan("formal", "bmc.encode");
  if (encodeSpan.enabled()) {
    encodeSpan.arg("k", property.maxCycle()).arg("incremental", true);
  }
  Stopwatch encodeTimer;

  if (!session_) {
    session_ = std::make_unique<Session>(design_, solverConfigs_, portfolioOptions_);
    for (const auto& [master, follower] : aliases_) {
      session_->unroller.aliasInitialState(master, follower);
    }
  }
  Session& s = *session_;
  sat::SolverBackend& solver = *s.solver;
  solver.setConflictBudget(conflictBudget_);
  solver.setSolveDeadlineMs(solveDeadlineMs_);
  solver.setFaultAbortAtConflict(faultAbortAtConflict_);

  const unsigned k = property.maxCycle();
  assert(s.unroller.numFrames() == 0 || k + 1 >= s.unroller.numFrames());
  s.unroller.unrollTo(k);

  // Assumptions are monotone across the session, so each becomes a hard
  // unit the first time it is seen; re-stated prefixes are skipped.
  for (const TimedSig& a : property.assumptions) {
    assert(a.sig.width() == 1);
    if (s.assertedAt.emplace(a.sig.id(), a.cycle).second) {
      s.cnf.assertLit(s.unroller.lit(a.sig, a.cycle));
    }
  }
  for (rtl::Sig inv : property.invariantAssumptions) {
    assert(inv.width() == 1);
    const auto it = s.invariantUpTo.find(inv.id());
    unsigned from = 0;
    if (it != s.invariantUpTo.end()) {
      if (it->second >= k) continue;
      from = it->second + 1;
    }
    for (unsigned t = from; t <= k; ++t) s.cnf.assertLit(s.unroller.lit(inv, t));
    s.invariantUpTo[inv.id()] = k;
  }

  // The proof obligation of THIS window is only activated through an
  // assumption literal: commitments of a shallower call must not constrain
  // a deeper one, and the learnt clauses derived under the assumption
  // remain valid once it is dropped.
  LitVec violations;
  violations.reserve(property.commitments.size());
  for (const TimedSig& c : property.commitments) {
    assert(c.sig.width() == 1);
    violations.push_back(~s.unroller.lit(c.sig, c.cycle));
  }
  if (violations.empty()) {
    result.status = CheckStatus::kProven;
    return result;
  }
  std::vector<int> obligationKey;
  obligationKey.reserve(violations.size());
  for (const Lit l : violations) obligationKey.push_back(l.code());
  const auto [cached, inserted] = s.obligationCache.emplace(std::move(obligationKey), Lit());
  if (inserted) cached->second = s.cnf.bigOr(violations);
  const Lit activation = cached->second;

  result.stats.encodeMs = encodeTimer.elapsedMs();
  result.stats.vars = static_cast<std::uint64_t>(solver.numVars());
  result.stats.clauses = solver.numClauses();
  if (encodeSpan.enabled()) encodeSpan.arg("vars", result.stats.vars);
  encodeSpan.end();

  obs::Span solveSpan("formal", "bmc.solve");
  if (solveSpan.enabled()) solveSpan.arg("k", k).arg("incremental", true);
  Stopwatch solveTimer;
  const Lit assumption[] = {activation};
  const LBool sat = solver.solve(assumption);
  result.stats.solveMs = solveTimer.elapsedMs();
  fillSolveStats(result.stats, solver);
  if (solveSpan.enabled()) {
    solveSpan.arg("conflicts", result.stats.conflicts)
        .arg("status", sat == LBool::kFalse ? "unsat" : sat == LBool::kTrue ? "sat" : "undef");
  }
  solveSpan.end();

  if (sat == LBool::kFalse) {
    // UNSAT under {activation} makes ~activation a logical consequence;
    // asserting it retires this window's obligation clauses permanently
    // (they become top-level satisfied) instead of leaving a dead big-or
    // to be dragged through every later solve. Only sound for the proven
    // case — after a counterexample the obligation must stay open, e.g.
    // for a re-check at the same window with a refined commitment set.
    solver.addUnit(~activation);
    result.status = CheckStatus::kProven;
    return result;
  }
  if (sat == LBool::kUndef) {
    result.status = CheckStatus::kUnknown;
    result.budgetExhausted = solver.lastSolveBudgetExhausted();
    result.deadlineExpired = solver.lastSolveDeadlineExpired();
    return result;
  }

  result.status = CheckStatus::kCounterexample;
  result.trace = extractTrace(design_, solver, s.unroller, property, k, violations);
  return result;
}

std::vector<std::vector<sat::Lit>> BmcEngine::learntSnapshot(std::size_t maxClauses) const {
  if (!session_) return {};
  return session_->solver->learntSnapshot(maxClauses);
}

TraceEval::TraceEval(const rtl::Design& design, const Trace& trace) : design_(design) {
  sim::Simulator sim(design);
  for (std::uint32_t r = 0; r < trace.initialRegs.size(); ++r) {
    sim.setReg(r, trace.initialRegs[r]);
  }
  values_.resize(trace.cycles);
  regStates_.resize(trace.cycles);
  for (unsigned t = 0; t < trace.cycles; ++t) {
    for (std::size_t i = 0; i < design.inputs().size(); ++i) {
      sim.poke(rtl::Sig(const_cast<rtl::Design*>(&design), design.inputs()[i]),
               trace.inputs[t][i]);
    }
    sim.evalComb();
    regStates_[t].resize(design.regs().size());
    for (std::uint32_t r = 0; r < design.regs().size(); ++r) {
      regStates_[t][r] = sim.regValue(r);
    }
    values_[t].resize(design.numNodes());
    for (rtl::NodeId n = 0; n < design.numNodes(); ++n) values_[t][n] = sim.peek(n);
    sim.step();
  }
}

BitVec TraceEval::value(rtl::NodeId node, unsigned cycle) const {
  assert(cycle < values_.size());
  return values_[cycle][node];
}

BitVec TraceEval::regValue(std::uint32_t regIdx, unsigned cycle) const {
  assert(cycle < regStates_.size());
  return regStates_[cycle][regIdx];
}

}  // namespace upec::formal
