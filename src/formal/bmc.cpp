#include "formal/bmc.hpp"

#include <cassert>
#include <map>
#include <set>
#include <utility>

#include "base/stopwatch.hpp"
#include "formal/cnf_builder.hpp"
#include "formal/prefix_cache.hpp"
#include "formal/unroller.hpp"
#include "obs/trace.hpp"
#include "sat/solver_backend.hpp"
#include "sim/simulator.hpp"

namespace upec::formal {

using sat::LBool;
using sat::Lit;

namespace {

// Reads the witness out of a satisfied solver: frame-0 register state,
// per-cycle inputs, and which commitments the model violates.
Trace extractTrace(const rtl::Design& design, const sat::SolverBackend& solver,
                   Unroller& unroller,
                   const IntervalProperty& property, unsigned k, const LitVec& violations) {
  Trace trace;
  trace.cycles = k + 1;
  trace.initialRegs.resize(design.regs().size());
  for (std::uint32_t r = 0; r < design.regs().size(); ++r) {
    const LitVec& lits = unroller.regLits(r, 0);
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < lits.size(); ++b) {
      if (solver.modelValue(lits[b])) v |= 1ull << b;
    }
    trace.initialRegs[r] = BitVec(static_cast<unsigned>(lits.size()), v);
  }
  trace.inputs.resize(k + 1);
  for (unsigned t = 0; t <= k; ++t) {
    trace.inputs[t].resize(design.inputs().size());
    for (std::size_t i = 0; i < design.inputs().size(); ++i) {
      const LitVec& lits = unroller.lits(design.inputs()[i], t);
      std::uint64_t v = 0;
      for (std::size_t b = 0; b < lits.size(); ++b) {
        if (solver.modelValue(lits[b])) v |= 1ull << b;
      }
      trace.inputs[t][i] = BitVec(static_cast<unsigned>(lits.size()), v);
    }
  }
  for (std::size_t ci = 0; ci < property.commitments.size(); ++ci) {
    if (solver.modelValue(violations[ci])) trace.failedCommitments.push_back(ci);
  }
  return trace;
}

void fillSolveStats(BmcStats& stats, const sat::SolverBackend& solver) {
  const sat::SolverStats delta = solver.lastSolveStats();
  stats.conflicts = delta.conflicts;
  stats.propagations = delta.propagations;
  stats.decisions = delta.decisions;
  stats.clausesExported = delta.clausesExported;
  stats.clausesImported = delta.clausesImported;
  stats.clausesDropped = delta.clausesDropped;
  stats.propagateTimeNs = delta.propagateTimeNs;
  stats.analyzeTimeNs = delta.analyzeTimeNs;
  stats.reduceTimeNs = delta.reduceTimeNs;
  stats.restartTimeNs = delta.restartTimeNs;
  stats.importedUsedInPropagation = delta.importedUsedInPropagation;
  stats.importedUsedInConflict = delta.importedUsedInConflict;
  stats.solvedBy = solver.lastSolveAttribution();
}

// Forwarding backend that tees newVar/addClause traffic into a clause log
// while recording is on. Installed (only) on a prefix-cache *miss* so the
// session's cold encode doubles as the cache fill; after the prefix is
// captured the proxy stays in the chain as a pure pass-through, so the
// session's behaviour is identical with or without it.
class RecordingProxy final : public sat::SolverBackend {
 public:
  explicit RecordingProxy(std::unique_ptr<sat::SolverBackend> inner)
      : inner_(std::move(inner)) {}

  bool recording() const { return recording_; }
  std::vector<Lit> takeLits() { return std::move(lits_); }
  std::vector<std::uint32_t> takeEnds() { return std::move(ends_); }
  void stopRecording() {
    recording_ = false;
    lits_.clear();
    lits_.shrink_to_fit();
    ends_.clear();
    ends_.shrink_to_fit();
  }

  sat::Var newVar() override { return inner_->newVar(); }
  int numVars() const override { return inner_->numVars(); }
  std::uint64_t numClauses() const override { return inner_->numClauses(); }
  bool addClause(std::span<const Lit> lits) override {
    if (recording_) {
      // Flat storage (see EncodedPrefix::lits): the replay loop walks one
      // contiguous buffer instead of chasing a heap vector per clause.
      lits_.insert(lits_.end(), lits.begin(), lits.end());
      ends_.push_back(static_cast<std::uint32_t>(lits_.size()));
    }
    return inner_->addClause(lits);
  }
  LBool solveLimited(std::span<const Lit> assumptions) override {
    return inner_->solveLimited(assumptions);
  }
  bool modelValue(sat::Var v) const override { return inner_->modelValue(v); }
  const std::vector<Lit>& unsatCore() const override { return inner_->unsatCore(); }
  bool okay() const override { return inner_->okay(); }
  sat::SolverStats stats() const override { return inner_->stats(); }
  sat::SolverStats lastSolveStats() const override { return inner_->lastSolveStats(); }
  void setConflictBudget(std::uint64_t budget) override { inner_->setConflictBudget(budget); }
  bool lastSolveBudgetExhausted() const override { return inner_->lastSolveBudgetExhausted(); }
  void setSolveDeadlineMs(std::uint64_t deadlineMs) override {
    inner_->setSolveDeadlineMs(deadlineMs);
  }
  bool lastSolveDeadlineExpired() const override { return inner_->lastSolveDeadlineExpired(); }
  void setFaultAbortAtConflict(std::uint64_t conflicts) override {
    inner_->setFaultAbortAtConflict(conflicts);
  }
  std::vector<std::vector<Lit>> learntSnapshot(std::size_t maxClauses) const override {
    return inner_->learntSnapshot(maxClauses);
  }
  void seedClauses(std::span<const std::vector<Lit>> clauses) override {
    inner_->seedClauses(clauses);
  }
  void requestStop() override { inner_->requestStop(); }
  void clearStop() override { inner_->clearStop(); }
  void attachExchange(sat::ClauseExchange* exchange, unsigned member) override {
    inner_->attachExchange(exchange, member);
  }
  std::string describe() const override { return inner_->describe(); }
  std::string lastSolveAttribution() const override { return inner_->lastSolveAttribution(); }

 private:
  std::unique_ptr<sat::SolverBackend> inner_;
  bool recording_ = true;
  std::vector<Lit> lits_;
  std::vector<std::uint32_t> ends_;
};

}  // namespace

// Persistent state of an incremental deepening session: one solver, one
// unroller over it, plus bookkeeping of which assumptions have already been
// asserted as hard units so repeated statements of the same property prefix
// are not re-encoded.
struct BmcEngine::Session {
  std::unique_ptr<sat::SolverBackend> solver;
  CnfBuilder cnf;
  Unroller unroller;
  // Non-null while this session should capture its first unroll as a
  // cache-fill (points into *solver; no ownership).
  RecordingProxy* recorder = nullptr;
  // This session's frames were adopted from a cached prefix.
  bool fromCache = false;
  // Full cache key (base + depth) this session fills or was cloned from.
  std::string prefixKey;
  // Cycle-anchored assumptions already asserted, keyed by (node, cycle).
  std::set<std::pair<rtl::NodeId, unsigned>> assertedAt;
  // Invariant assumptions: per signal, asserted over cycles 0..upTo.
  std::map<rtl::NodeId, unsigned> invariantUpTo;
  // Obligation big-or already encoded, keyed by the violation literal set.
  // Re-entering a window with unchanged commitments (a budget-escalated
  // retry) reuses the activation literal instead of paying a fresh
  // variable and clause set per attempt.
  std::map<std::vector<int>, sat::Lit> obligationCache;

  Session(const rtl::Design& design, std::unique_ptr<sat::SolverBackend> backend)
      : solver(std::move(backend)), cnf(*solver), unroller(design, cnf) {}
};

BmcEngine::BmcEngine(const rtl::Design& design) : design_(design) {}
BmcEngine::~BmcEngine() = default;

void BmcEngine::resetIncremental() { session_.reset(); }

unsigned BmcEngine::incrementalFrames() const {
  return session_ ? session_->unroller.numFrames() : 0;
}

CheckResult BmcEngine::check(const IntervalProperty& property) {
  CheckResult result;
  obs::Span encodeSpan("formal", "bmc.encode");
  if (encodeSpan.enabled()) {
    encodeSpan.arg("k", property.maxCycle()).arg("incremental", false);
  }
  Stopwatch encodeTimer;

  const std::unique_ptr<sat::SolverBackend> solverPtr =
      sat::makeSolverBackend(solverConfigs_, portfolioOptions_);
  sat::SolverBackend& solver = *solverPtr;
  if (conflictBudget_ != 0) solver.setConflictBudget(conflictBudget_);
  if (solveDeadlineMs_ != 0) solver.setSolveDeadlineMs(solveDeadlineMs_);
  if (faultAbortAtConflict_ != 0) solver.setFaultAbortAtConflict(faultAbortAtConflict_);
  CnfBuilder cnf(solver);
  Unroller unroller(design_, cnf);
  for (const auto& [master, follower] : aliases_) {
    unroller.aliasInitialState(master, follower);
  }

  const unsigned k = property.maxCycle();
  unroller.unrollTo(k);

  // Assumptions become hard constraints of this (single-shot) query.
  for (const TimedSig& a : property.assumptions) {
    assert(a.sig.width() == 1);
    cnf.assertLit(unroller.lit(a.sig, a.cycle));
  }
  for (rtl::Sig inv : property.invariantAssumptions) {
    assert(inv.width() == 1);
    for (unsigned t = 0; t <= k; ++t) cnf.assertLit(unroller.lit(inv, t));
  }

  // Violation literal: OR over negated commitments.
  LitVec violations;
  violations.reserve(property.commitments.size());
  for (const TimedSig& c : property.commitments) {
    assert(c.sig.width() == 1);
    violations.push_back(~unroller.lit(c.sig, c.cycle));
  }
  if (violations.empty()) {
    result.status = CheckStatus::kProven;
    return result;
  }
  cnf.assertLit(cnf.bigOr(violations));

  result.stats.encodeMs = encodeTimer.elapsedMs();
  result.stats.vars = static_cast<std::uint64_t>(solver.numVars());
  result.stats.clauses = solver.numClauses();
  if (encodeSpan.enabled()) encodeSpan.arg("vars", result.stats.vars);
  encodeSpan.end();

  obs::Span solveSpan("formal", "bmc.solve");
  if (solveSpan.enabled()) solveSpan.arg("k", k).arg("incremental", false);
  Stopwatch solveTimer;
  const LBool sat = solver.solve();
  result.stats.solveMs = solveTimer.elapsedMs();
  fillSolveStats(result.stats, solver);
  if (solveSpan.enabled()) {
    solveSpan.arg("conflicts", result.stats.conflicts)
        .arg("status", sat == LBool::kFalse ? "unsat" : sat == LBool::kTrue ? "sat" : "undef");
  }
  solveSpan.end();

  if (sat == LBool::kFalse) {
    result.status = CheckStatus::kProven;
    return result;
  }
  if (sat == LBool::kUndef) {
    result.status = CheckStatus::kUnknown;
    result.budgetExhausted = solver.lastSolveBudgetExhausted();
    result.deadlineExpired = solver.lastSolveDeadlineExpired();
    return result;
  }

  result.status = CheckStatus::kCounterexample;
  result.trace = extractTrace(design_, solver, unroller, property, k, violations);
  return result;
}

CheckResult BmcEngine::checkIncremental(const IntervalProperty& property) {
  CheckResult result;
  obs::Span encodeSpan("formal", "bmc.encode");
  if (encodeSpan.enabled()) {
    encodeSpan.arg("k", property.maxCycle()).arg("incremental", true);
  }
  Stopwatch encodeTimer;

  if (!session_) {
    // Prefix reuse: probe the cache under (key base, first window depth).
    // On a hit the session is cloned from the cached prefix below; on a
    // miss a RecordingProxy wraps the fresh backend so this session's cold
    // encode fills the cache for the jobs that follow.
    std::shared_ptr<const EncodedPrefix> prefix;
    std::string prefixKey;
    if (prefixCache_) {
      prefixKey = prefixKeyBase_ + "|d" + std::to_string(property.maxCycle());
      prefix = prefixCache_->lookup(prefixKey);
    }
    auto backend = sat::makeSolverBackend(solverConfigs_, portfolioOptions_);
    RecordingProxy* recorder = nullptr;
    if (prefixCache_ && !prefix) {
      auto recording = std::make_unique<RecordingProxy>(std::move(backend));
      recorder = recording.get();
      backend = std::move(recording);
    }
    session_ = std::make_unique<Session>(design_, std::move(backend));
    session_->recorder = recorder;
    for (const auto& [master, follower] : aliases_) {
      session_->unroller.aliasInitialState(master, follower);
    }
    if (prefix) {
      // Clone: replay the recorded clause stream into the fresh backend
      // (allocating the same variables in the same order), then restore
      // the encoder's structural-hash state and the unroller frames. The
      // resulting solver state is identical to a cold encode's — see
      // prefix_cache.hpp for why the replay is exact.
      Session& c = *session_;
      for (int v = 0; v < prefix->numVars; ++v) c.solver->newVar();
      const Lit* flat = prefix->lits.data();
      std::uint32_t begin = 0;
      for (const std::uint32_t end : prefix->ends) {
        c.solver->addClause(std::span<const Lit>(flat + begin, end - begin));
        begin = end;
      }
      // O(1): the snapshot and frames become shared immutable base layers.
      c.cnf.restore(prefix->builder);
      c.unroller.restoreFrames(prefix->frames);
      c.fromCache = true;
      session_->prefixKey = std::move(prefixKey);
    } else if (recorder) {
      session_->prefixKey = std::move(prefixKey);
    }
  }
  Session& s = *session_;
  sat::SolverBackend& solver = *s.solver;
  solver.setConflictBudget(conflictBudget_);
  solver.setSolveDeadlineMs(solveDeadlineMs_);
  solver.setFaultAbortAtConflict(faultAbortAtConflict_);

  const unsigned k = property.maxCycle();
  assert(s.unroller.numFrames() == 0 || k + 1 >= s.unroller.numFrames());
  s.unroller.unrollTo(k);

  // First cold unroll with a cache attached: publish the encoded prefix
  // (transition-relation frames only — assumptions and obligations are
  // asserted below, after recording stops, so they never enter the cache).
  if (s.recorder && s.recorder->recording()) {
    auto captured = std::make_shared<EncodedPrefix>();
    captured->depth = k;
    captured->numVars = solver.numVars();
    captured->lits = s.recorder->takeLits();
    captured->ends = s.recorder->takeEnds();
    captured->builder = std::make_shared<const CnfBuilder::Snapshot>(s.cnf.snapshot());
    captured->frames =
        std::make_shared<const std::vector<std::vector<LitVec>>>(s.unroller.frames());
    prefixCache_->store(s.prefixKey, std::move(captured));
    s.recorder->stopRecording();
  }

  // Assumptions are monotone across the session, so each becomes a hard
  // unit the first time it is seen; re-stated prefixes are skipped.
  for (const TimedSig& a : property.assumptions) {
    assert(a.sig.width() == 1);
    if (s.assertedAt.emplace(a.sig.id(), a.cycle).second) {
      s.cnf.assertLit(s.unroller.lit(a.sig, a.cycle));
    }
  }
  for (rtl::Sig inv : property.invariantAssumptions) {
    assert(inv.width() == 1);
    const auto it = s.invariantUpTo.find(inv.id());
    unsigned from = 0;
    if (it != s.invariantUpTo.end()) {
      if (it->second >= k) continue;
      from = it->second + 1;
    }
    for (unsigned t = from; t <= k; ++t) s.cnf.assertLit(s.unroller.lit(inv, t));
    s.invariantUpTo[inv.id()] = k;
  }

  // The proof obligation of THIS window is only activated through an
  // assumption literal: commitments of a shallower call must not constrain
  // a deeper one, and the learnt clauses derived under the assumption
  // remain valid once it is dropped.
  LitVec violations;
  violations.reserve(property.commitments.size());
  for (const TimedSig& c : property.commitments) {
    assert(c.sig.width() == 1);
    violations.push_back(~s.unroller.lit(c.sig, c.cycle));
  }
  if (violations.empty()) {
    result.status = CheckStatus::kProven;
    return result;
  }
  std::vector<int> obligationKey;
  obligationKey.reserve(violations.size());
  for (const Lit l : violations) obligationKey.push_back(l.code());
  const auto [cached, inserted] = s.obligationCache.emplace(std::move(obligationKey), Lit());
  if (inserted) cached->second = s.cnf.bigOr(violations);
  const Lit activation = cached->second;

  result.stats.encodeMs = encodeTimer.elapsedMs();
  result.stats.vars = static_cast<std::uint64_t>(solver.numVars());
  result.stats.clauses = solver.numClauses();
  result.stats.encodedFromCache = s.fromCache;
  if (encodeSpan.enabled()) encodeSpan.arg("vars", result.stats.vars);
  encodeSpan.end();

  obs::Span solveSpan("formal", "bmc.solve");
  if (solveSpan.enabled()) solveSpan.arg("k", k).arg("incremental", true);
  Stopwatch solveTimer;
  const Lit assumption[] = {activation};
  const LBool sat = solver.solve(assumption);
  result.stats.solveMs = solveTimer.elapsedMs();
  fillSolveStats(result.stats, solver);
  if (solveSpan.enabled()) {
    solveSpan.arg("conflicts", result.stats.conflicts)
        .arg("status", sat == LBool::kFalse ? "unsat" : sat == LBool::kTrue ? "sat" : "undef");
  }
  solveSpan.end();

  if (sat == LBool::kFalse) {
    // UNSAT under {activation} makes ~activation a logical consequence;
    // asserting it retires this window's obligation clauses permanently
    // (they become top-level satisfied) instead of leaving a dead big-or
    // to be dragged through every later solve. Only sound for the proven
    // case — after a counterexample the obligation must stay open, e.g.
    // for a re-check at the same window with a refined commitment set.
    solver.addUnit(~activation);
    result.status = CheckStatus::kProven;
    return result;
  }
  if (sat == LBool::kUndef) {
    result.status = CheckStatus::kUnknown;
    result.budgetExhausted = solver.lastSolveBudgetExhausted();
    result.deadlineExpired = solver.lastSolveDeadlineExpired();
    return result;
  }

  result.status = CheckStatus::kCounterexample;
  result.trace = extractTrace(design_, solver, s.unroller, property, k, violations);
  return result;
}

std::vector<std::vector<sat::Lit>> BmcEngine::learntSnapshot(std::size_t maxClauses) const {
  if (!session_) return {};
  return session_->solver->learntSnapshot(maxClauses);
}

void BmcEngine::seedClauses(std::span<const std::vector<sat::Lit>> clauses) {
  if (clauses.empty()) return;
  if (session_) {
    session_->solver->seedClauses(clauses);
    return;
  }
  // No session yet: fold into the construction-time seed so the first
  // checkIncremental() delivers them through PortfolioOptions::seedLearnts.
  portfolioOptions_.seedLearnts.insert(portfolioOptions_.seedLearnts.end(), clauses.begin(),
                                       clauses.end());
}

TraceEval::TraceEval(const rtl::Design& design, const Trace& trace) : design_(design) {
  sim::Simulator sim(design);
  for (std::uint32_t r = 0; r < trace.initialRegs.size(); ++r) {
    sim.setReg(r, trace.initialRegs[r]);
  }
  values_.resize(trace.cycles);
  regStates_.resize(trace.cycles);
  for (unsigned t = 0; t < trace.cycles; ++t) {
    for (std::size_t i = 0; i < design.inputs().size(); ++i) {
      sim.poke(rtl::Sig(const_cast<rtl::Design*>(&design), design.inputs()[i]),
               trace.inputs[t][i]);
    }
    sim.evalComb();
    regStates_[t].resize(design.regs().size());
    for (std::uint32_t r = 0; r < design.regs().size(); ++r) {
      regStates_[t][r] = sim.regValue(r);
    }
    values_[t].resize(design.numNodes());
    for (rtl::NodeId n = 0; n < design.numNodes(); ++n) values_[t][n] = sim.peek(n);
    sim.step();
  }
}

BitVec TraceEval::value(rtl::NodeId node, unsigned cycle) const {
  assert(cycle < values_.size());
  return values_[cycle][node];
}

BitVec TraceEval::regValue(std::uint32_t regIdx, unsigned cycle) const {
  assert(cycle < regStates_.size());
  return regStates_[cycle][regIdx];
}

}  // namespace upec::formal
