#include "formal/bmc.hpp"

#include <cassert>

#include "base/stopwatch.hpp"
#include "formal/cnf_builder.hpp"
#include "formal/unroller.hpp"
#include "sat/solver.hpp"
#include "sim/simulator.hpp"

namespace upec::formal {

using sat::LBool;
using sat::Lit;

CheckResult BmcEngine::check(const IntervalProperty& property) {
  CheckResult result;
  Stopwatch encodeTimer;

  sat::Solver solver;
  if (conflictBudget_ != 0) solver.setConflictBudget(conflictBudget_);
  CnfBuilder cnf(solver);
  Unroller unroller(design_, cnf);
  for (const auto& [master, follower] : aliases_) {
    unroller.aliasInitialState(master, follower);
  }

  const unsigned k = property.maxCycle();
  unroller.unrollTo(k);

  // Assumptions become hard constraints of this (single-shot) query.
  for (const TimedSig& a : property.assumptions) {
    assert(a.sig.width() == 1);
    cnf.assertLit(unroller.lit(a.sig, a.cycle));
  }
  for (rtl::Sig inv : property.invariantAssumptions) {
    assert(inv.width() == 1);
    for (unsigned t = 0; t <= k; ++t) cnf.assertLit(unroller.lit(inv, t));
  }

  // Violation literal: OR over negated commitments.
  LitVec violations;
  violations.reserve(property.commitments.size());
  for (const TimedSig& c : property.commitments) {
    assert(c.sig.width() == 1);
    violations.push_back(~unroller.lit(c.sig, c.cycle));
  }
  if (violations.empty()) {
    result.status = CheckStatus::kProven;
    return result;
  }
  cnf.assertLit(cnf.bigOr(violations));

  result.stats.encodeMs = encodeTimer.elapsedMs();
  result.stats.vars = static_cast<std::uint64_t>(solver.numVars());
  result.stats.clauses = solver.numClauses();

  Stopwatch solveTimer;
  const LBool sat = solver.solve();
  result.stats.solveMs = solveTimer.elapsedMs();
  result.stats.conflicts = solver.stats().conflicts;

  if (sat == LBool::kFalse) {
    result.status = CheckStatus::kProven;
    return result;
  }
  if (sat == LBool::kUndef) {
    result.status = CheckStatus::kUnknown;
    return result;
  }

  // SAT: extract the witness.
  result.status = CheckStatus::kCounterexample;
  Trace trace;
  trace.cycles = k + 1;
  trace.initialRegs.resize(design_.regs().size());
  for (std::uint32_t r = 0; r < design_.regs().size(); ++r) {
    const LitVec& lits = unroller.regLits(r, 0);
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < lits.size(); ++b) {
      if (solver.modelValue(lits[b])) v |= 1ull << b;
    }
    trace.initialRegs[r] = BitVec(static_cast<unsigned>(lits.size()), v);
  }
  trace.inputs.resize(k + 1);
  for (unsigned t = 0; t <= k; ++t) {
    trace.inputs[t].resize(design_.inputs().size());
    for (std::size_t i = 0; i < design_.inputs().size(); ++i) {
      const LitVec& lits = unroller.lits(design_.inputs()[i], t);
      std::uint64_t v = 0;
      for (std::size_t b = 0; b < lits.size(); ++b) {
        if (solver.modelValue(lits[b])) v |= 1ull << b;
      }
      trace.inputs[t][i] = BitVec(static_cast<unsigned>(lits.size()), v);
    }
  }
  for (std::size_t ci = 0; ci < property.commitments.size(); ++ci) {
    if (solver.modelValue(violations[ci])) trace.failedCommitments.push_back(ci);
  }
  result.trace = std::move(trace);
  return result;
}

TraceEval::TraceEval(const rtl::Design& design, const Trace& trace) : design_(design) {
  sim::Simulator sim(design);
  for (std::uint32_t r = 0; r < trace.initialRegs.size(); ++r) {
    sim.setReg(r, trace.initialRegs[r]);
  }
  values_.resize(trace.cycles);
  regStates_.resize(trace.cycles);
  for (unsigned t = 0; t < trace.cycles; ++t) {
    for (std::size_t i = 0; i < design.inputs().size(); ++i) {
      sim.poke(rtl::Sig(const_cast<rtl::Design*>(&design), design.inputs()[i]),
               trace.inputs[t][i]);
    }
    sim.evalComb();
    regStates_[t].resize(design.regs().size());
    for (std::uint32_t r = 0; r < design.regs().size(); ++r) {
      regStates_[t][r] = sim.regValue(r);
    }
    values_[t].resize(design.numNodes());
    for (rtl::NodeId n = 0; n < design.numNodes(); ++n) values_[t][n] = sim.peek(n);
    sim.step();
  }
}

BitVec TraceEval::value(rtl::NodeId node, unsigned cycle) const {
  assert(cycle < values_.size());
  return values_[cycle][node];
}

BitVec TraceEval::regValue(std::uint32_t regIdx, unsigned cycle) const {
  assert(cycle < regStates_.size());
  return regStates_[cycle][regIdx];
}

}  // namespace upec::formal
