#include "formal/cnf_builder.hpp"

#include <cassert>

namespace upec::formal {

using sat::Lit;

Lit CnfBuilder::freshLit() { return Lit(solver_.newVar(), false); }

LitVec CnfBuilder::freshVec(unsigned width) {
  LitVec v(width);
  for (auto& l : v) l = freshLit();
  return v;
}

Lit CnfBuilder::trueLit() {
  if (!hasConst_) {
    trueLit_ = freshLit();
    solver_.addUnit(trueLit_);
    hasConst_ = true;
  }
  return trueLit_;
}

LitVec CnfBuilder::constVec(unsigned width, std::uint64_t value) {
  LitVec v(width);
  for (unsigned i = 0; i < width; ++i) v[i] = constLit((value >> i) & 1);
  return v;
}

bool CnfBuilder::lookupGate(const GateKey& key, Lit* out) const {
  const auto it = gateCache_.find(key);
  if (it != gateCache_.end()) {
    *out = it->second;
    return true;
  }
  if (base_ != nullptr) {
    const auto bit = base_->gates.find(key);
    if (bit != base_->gates.end()) {
      *out = bit->second;
      return true;
    }
  }
  return false;
}

void CnfBuilder::storeGate(const GateKey& key, Lit out) { gateCache_.emplace(key, out); }

Lit CnfBuilder::andLit(Lit a, Lit b) {
  if (isFalse(a) || isFalse(b)) return falseLit();
  if (isTrue(a)) return b;
  if (isTrue(b)) return a;
  if (a == b) return a;
  if (a == ~b) return falseLit();
  if (a.code() > b.code()) std::swap(a, b);
  const GateKey key{GateKind::kAnd, a.code(), b.code(), -1};
  Lit y;
  if (lookupGate(key, &y)) return y;
  y = freshLit();
  solver_.addClause({~y, a});
  solver_.addClause({~y, b});
  solver_.addClause({y, ~a, ~b});
  storeGate(key, y);
  return y;
}

Lit CnfBuilder::orLit(Lit a, Lit b) { return ~andLit(~a, ~b); }

Lit CnfBuilder::xorLit(Lit a, Lit b) {
  if (isFalse(a)) return b;
  if (isFalse(b)) return a;
  if (isTrue(a)) return ~b;
  if (isTrue(b)) return ~a;
  if (a == b) return falseLit();
  if (a == ~b) return trueLit();
  // Canonicalise: smaller code first, both positive (xor absorbs signs).
  const bool negate = a.sign() ^ b.sign();
  a = a.sign() ? ~a : a;
  b = b.sign() ? ~b : b;
  if (a.code() > b.code()) std::swap(a, b);
  const GateKey key{GateKind::kXor, a.code(), b.code(), -1};
  Lit y;
  if (lookupGate(key, &y)) return negate ? ~y : y;
  y = freshLit();
  solver_.addClause({~y, a, b});
  solver_.addClause({~y, ~a, ~b});
  solver_.addClause({y, ~a, b});
  solver_.addClause({y, a, ~b});
  storeGate(key, y);
  return negate ? ~y : y;
}

Lit CnfBuilder::muxLit(Lit sel, Lit thenL, Lit elseL) {
  if (isTrue(sel)) return thenL;
  if (isFalse(sel)) return elseL;
  if (thenL == elseL) return thenL;
  if (isTrue(thenL) && isFalse(elseL)) return sel;
  if (isFalse(thenL) && isTrue(elseL)) return ~sel;
  if (thenL == ~elseL) return xorLit(sel, elseL);  // sel ? ~e : e  ==  sel ^ e
  if (sel.sign()) {  // canonicalise on a positive select
    std::swap(thenL, elseL);
    sel = ~sel;
  }
  const GateKey key{GateKind::kMux, sel.code(), thenL.code(), elseL.code()};
  Lit y;
  if (lookupGate(key, &y)) return y;
  y = freshLit();
  solver_.addClause({~sel, ~thenL, y});
  solver_.addClause({~sel, thenL, ~y});
  solver_.addClause({sel, ~elseL, y});
  solver_.addClause({sel, elseL, ~y});
  // Redundant but propagation-strengthening clauses:
  solver_.addClause({~thenL, ~elseL, y});
  solver_.addClause({thenL, elseL, ~y});
  storeGate(key, y);
  return y;
}

Lit CnfBuilder::majLit(Lit a, Lit b, Lit c) {
  if (isFalse(a)) return andLit(b, c);
  if (isTrue(a)) return orLit(b, c);
  if (isFalse(b)) return andLit(a, c);
  if (isTrue(b)) return orLit(a, c);
  if (isFalse(c)) return andLit(a, b);
  if (isTrue(c)) return orLit(a, b);
  if (a == b || a == c) return a;
  if (b == c) return b;
  if (a == ~b) return c;
  if (a == ~c) return b;
  if (b == ~c) return a;
  // Canonicalise operand order (maj is fully symmetric).
  if (a.code() > b.code()) std::swap(a, b);
  if (b.code() > c.code()) std::swap(b, c);
  if (a.code() > b.code()) std::swap(a, b);
  const GateKey key{GateKind::kMaj, a.code(), b.code(), c.code()};
  Lit y;
  if (lookupGate(key, &y)) return y;
  y = freshLit();
  solver_.addClause({~a, ~b, y});
  solver_.addClause({~a, ~c, y});
  solver_.addClause({~b, ~c, y});
  solver_.addClause({a, b, ~y});
  solver_.addClause({a, c, ~y});
  solver_.addClause({b, c, ~y});
  storeGate(key, y);
  return y;
}

Lit CnfBuilder::xor3Lit(Lit a, Lit b, Lit c) { return xorLit(xorLit(a, b), c); }

Lit CnfBuilder::bigAnd(std::span<const Lit> lits) {
  LitVec essential;
  for (Lit l : lits) {
    if (isFalse(l)) return falseLit();
    if (!isTrue(l)) essential.push_back(l);
  }
  if (essential.empty()) return trueLit();
  if (essential.size() == 1) return essential[0];
  const Lit y = freshLit();
  LitVec longClause;
  longClause.push_back(y);
  for (Lit l : essential) {
    solver_.addClause({~y, l});
    longClause.push_back(~l);
  }
  solver_.addClause(std::span<const Lit>(longClause));
  return y;
}

Lit CnfBuilder::bigOr(std::span<const Lit> lits) {
  LitVec inverted(lits.begin(), lits.end());
  for (auto& l : inverted) l = ~l;
  return ~bigAnd(inverted);
}

LitVec CnfBuilder::notVec(const LitVec& a) {
  LitVec y(a);
  for (auto& l : y) l = ~l;
  return y;
}

LitVec CnfBuilder::andVec(const LitVec& a, const LitVec& b) {
  assert(a.size() == b.size());
  LitVec y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = andLit(a[i], b[i]);
  return y;
}

LitVec CnfBuilder::orVec(const LitVec& a, const LitVec& b) {
  assert(a.size() == b.size());
  LitVec y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = orLit(a[i], b[i]);
  return y;
}

LitVec CnfBuilder::xorVec(const LitVec& a, const LitVec& b) {
  assert(a.size() == b.size());
  LitVec y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = xorLit(a[i], b[i]);
  return y;
}

LitVec CnfBuilder::muxVec(Lit sel, const LitVec& thenV, const LitVec& elseV) {
  assert(thenV.size() == elseV.size());
  LitVec y(thenV.size());
  for (std::size_t i = 0; i < thenV.size(); ++i) y[i] = muxLit(sel, thenV[i], elseV[i]);
  return y;
}

LitVec CnfBuilder::addVec(const LitVec& a, const LitVec& b, Lit carryIn, Lit* carryOut) {
  assert(a.size() == b.size());
  LitVec sum(a.size());
  Lit carry = carryIn;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum[i] = xor3Lit(a[i], b[i], carry);
    carry = majLit(a[i], b[i], carry);
  }
  if (carryOut) *carryOut = carry;
  return sum;
}

LitVec CnfBuilder::subVec(const LitVec& a, const LitVec& b, Lit* borrowClearOut) {
  // a - b = a + ~b + 1; the final carry is 1 iff no borrow, i.e. a >= b.
  return addVec(a, notVec(b), trueLit(), borrowClearOut);
}

LitVec CnfBuilder::negVec(const LitVec& a) {
  return addVec(notVec(a), constVec(static_cast<unsigned>(a.size()), 0), trueLit());
}

LitVec CnfBuilder::mulVec(const LitVec& a, const LitVec& b) {
  assert(a.size() == b.size());
  const unsigned w = static_cast<unsigned>(a.size());
  LitVec acc = constVec(w, 0);
  for (unsigned i = 0; i < w; ++i) {
    // Partial product: (a << i) masked by b[i].
    LitVec partial(w, falseLit());
    for (unsigned j = i; j < w; ++j) partial[j] = andLit(a[j - i], b[i]);
    acc = addVec(acc, partial, falseLit());
  }
  return acc;
}

LitVec CnfBuilder::shiftVec(const LitVec& a, const LitVec& amount, ShiftKind kind) {
  const unsigned w = static_cast<unsigned>(a.size());
  const Lit fill = (kind == ShiftKind::kAshr) ? a[w - 1] : falseLit();

  // Barrel shifter over the low log2(w) amount bits...
  unsigned stages = 0;
  while ((1u << stages) < w) ++stages;
  LitVec cur = a;
  for (unsigned s = 0; s < stages && s < amount.size(); ++s) {
    const unsigned dist = 1u << s;
    LitVec shifted(w);
    for (unsigned i = 0; i < w; ++i) {
      if (kind == ShiftKind::kShl) {
        shifted[i] = (i >= dist) ? cur[i - dist] : falseLit();
      } else {
        shifted[i] = (i + dist < w) ? cur[i + dist] : fill;
      }
    }
    cur = muxVec(amount[s], shifted, cur);
  }
  // ...then saturate if any higher amount bit is set (shift >= width).
  LitVec highBits;
  for (std::size_t s = stages; s < amount.size(); ++s) highBits.push_back(amount[s]);
  // Amounts in [w, 2^stages) with no high bit set also overshoot when w is
  // not a power of two; the barrel stages above already produce the fill
  // value for them, so only the high bits need the explicit saturate.
  if (!highBits.empty()) {
    const Lit overflow = bigOr(highBits);
    LitVec fillVec(w, fill);
    cur = muxVec(overflow, fillVec, cur);
  }
  return cur;
}

Lit CnfBuilder::eqVec(const LitVec& a, const LitVec& b) {
  assert(a.size() == b.size());
  LitVec bits(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) bits[i] = xnorLit(a[i], b[i]);
  return bigAnd(bits);
}

Lit CnfBuilder::ultVec(const LitVec& a, const LitVec& b) {
  Lit noBorrow;
  subVec(a, b, &noBorrow);
  return ~noBorrow;  // borrow happened <=> a < b
}

Lit CnfBuilder::uleVec(const LitVec& a, const LitVec& b) { return ~ultVec(b, a); }

Lit CnfBuilder::sltVec(const LitVec& a, const LitVec& b) {
  const unsigned w = static_cast<unsigned>(a.size());
  const Lit signDiff = xorLit(a[w - 1], b[w - 1]);
  return muxLit(signDiff, a[w - 1], ultVec(a, b));
}

Lit CnfBuilder::sleVec(const LitVec& a, const LitVec& b) { return ~sltVec(b, a); }

Lit CnfBuilder::redXor(const LitVec& a) {
  Lit acc = falseLit();
  for (Lit l : a) acc = xorLit(acc, l);
  return acc;
}

}  // namespace upec::formal
