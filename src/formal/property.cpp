#include "formal/property.hpp"

#include <algorithm>
#include <sstream>

namespace upec::formal {

unsigned IntervalProperty::maxCycle() const {
  unsigned m = 0;
  for (const TimedSig& a : assumptions) m = std::max(m, a.cycle);
  for (const TimedSig& c : commitments) m = std::max(m, c.cycle);
  return m;
}

std::string IntervalProperty::pretty() const {
  std::ostringstream os;
  const unsigned k = maxCycle();
  os << "property " << name << ":\n";
  os << "assume:\n";
  for (const TimedSig& a : assumptions) {
    os << "  at t+" << a.cycle << ": " << (a.label.empty() ? "<expr>" : a.label) << ";\n";
  }
  for (std::size_t i = 0; i < invariantAssumptions.size(); ++i) {
    os << "  during t..t+" << k << ": "
       << (invariantLabels[i].empty() ? "<expr>" : invariantLabels[i]) << ";\n";
  }
  os << "prove:\n";
  for (const TimedSig& c : commitments) {
    os << "  at t+" << c.cycle << ": " << (c.label.empty() ? "<expr>" : c.label) << ";\n";
  }
  return os.str();
}

}  // namespace upec::formal
