// Time-frame expansion of an RTL design into CNF.
//
// Frame t holds the literals of every node evaluated at clock cycle t.
// Register outputs at frame 0 are fresh variables — this is the *symbolic
// initial state* that turns plain BMC into Interval Property Checking
// (IPC, [Nguyen et al. 2008]): the proof holds from ANY starting state, so
// an unsatisfiable query is a real proof even without reachability
// information. Spurious counterexamples from unreachable starting states
// are excluded by assumptions (the UPEC constraints of Sec. V-A).
//
// Register outputs at frame t+1 alias the literals of their next-state
// function at frame t; inputs get fresh variables in every frame.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "formal/cnf_builder.hpp"
#include "rtl/ir.hpp"

namespace upec::formal {

class Unroller {
 public:
  // The design must have all memories lowered (lowerMemories()).
  Unroller(const rtl::Design& design, CnfBuilder& cnf);

  // Declares that register `follower` starts (frame 0) with the same
  // symbolic value as register `master` — i.e. the equality assumption
  // "follower@t == master@t" is encoded structurally by sharing variables.
  // Must be called before the first unrollTo(). This is the key reduction
  // for miter-shaped proofs: the two design instances share their initial
  // state except for deliberately-unconstrained (secret) locations, so the
  // solver reasons only about the difference cone.
  void aliasInitialState(rtl::NodeId masterRegQ, rtl::NodeId followerRegQ);

  // Ensures frames 0..cycle exist.
  void unrollTo(unsigned cycle);

  // Literals of `node` as evaluated in clock cycle `cycle`.
  const LitVec& lits(rtl::NodeId node, unsigned cycle);
  sat::Lit lit(rtl::NodeId node, unsigned cycle) {
    const LitVec& v = lits(node, cycle);
    return v.at(0);
  }
  sat::Lit lit(rtl::Sig s, unsigned cycle) { return lit(s.id(), cycle); }

  // Literals of register state at the *start* of `cycle` (frame-0 state
  // variables are the symbolic initial state).
  const LitVec& regLits(std::uint32_t regIdx, unsigned cycle);

  unsigned numFrames() const { return baseCount() + static_cast<unsigned>(frames_.size()); }
  const rtl::Design& design() const { return design_; }
  CnfBuilder& cnf() { return cnf_; }

  // Prefix-cache support (formal/prefix_cache.hpp): the built frames as
  // data, and their wholesale restoration into a fresh unroller of the
  // *same* design. restoreFrames() must be called before the first
  // unrollTo(); the restored frames become an immutable shared base layer
  // (O(1) — no copy; any number of sessions restore from the same frames
  // concurrently) and deeper frames build on them exactly as they would
  // have on cold-built ones (frame t+1 only reads frame t and the
  // builder's gate cache). Restored frames never re-consult the frame-0
  // alias map — the aliasing is already baked into the literals.
  // frames() flattens base + local growth into one copy; it is called once
  // per campaign when a cold encode is captured, never on the clone path.
  std::vector<std::vector<LitVec>> frames() const {
    std::vector<std::vector<LitVec>> all;
    all.reserve(numFrames());
    if (base_ != nullptr) all.assign(base_->begin(), base_->end());
    all.insert(all.end(), frames_.begin(), frames_.end());
    return all;
  }
  void restoreFrames(std::shared_ptr<const std::vector<std::vector<LitVec>>> frames) {
    assert(numFrames() == 0 && "restore must precede the first unrollTo()");
    base_ = std::move(frames);
  }

 private:
  void buildFrame(unsigned t);
  LitVec encodeNode(const rtl::Node& n, unsigned t);
  const LitVec& frame0RegLits(rtl::NodeId regQ);

  unsigned baseCount() const { return base_ ? static_cast<unsigned>(base_->size()) : 0u; }
  // Frame t, wherever it lives (immutable base or local growth).
  const std::vector<LitVec>& frameAt(unsigned t) const {
    return t < baseCount() ? (*base_)[t] : frames_[t - baseCount()];
  }

  const rtl::Design& design_;
  CnfBuilder& cnf_;
  std::vector<rtl::NodeId> topo_;
  // Immutable shared prefix frames (null unless cloned from a cache).
  std::shared_ptr<const std::vector<std::vector<LitVec>>> base_;
  // frames_[t - baseCount()][nodeId] = literal vector of node at cycle t.
  std::vector<std::vector<LitVec>> frames_;
  // follower kRegQ node -> master kRegQ node for shared frame-0 variables.
  std::unordered_map<rtl::NodeId, rtl::NodeId> frame0Alias_;
};

}  // namespace upec::formal
