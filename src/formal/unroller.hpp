// Time-frame expansion of an RTL design into CNF.
//
// Frame t holds the literals of every node evaluated at clock cycle t.
// Register outputs at frame 0 are fresh variables — this is the *symbolic
// initial state* that turns plain BMC into Interval Property Checking
// (IPC, [Nguyen et al. 2008]): the proof holds from ANY starting state, so
// an unsatisfiable query is a real proof even without reachability
// information. Spurious counterexamples from unreachable starting states
// are excluded by assumptions (the UPEC constraints of Sec. V-A).
//
// Register outputs at frame t+1 alias the literals of their next-state
// function at frame t; inputs get fresh variables in every frame.
#pragma once

#include <vector>

#include "formal/cnf_builder.hpp"
#include "rtl/ir.hpp"

namespace upec::formal {

class Unroller {
 public:
  // The design must have all memories lowered (lowerMemories()).
  Unroller(const rtl::Design& design, CnfBuilder& cnf);

  // Declares that register `follower` starts (frame 0) with the same
  // symbolic value as register `master` — i.e. the equality assumption
  // "follower@t == master@t" is encoded structurally by sharing variables.
  // Must be called before the first unrollTo(). This is the key reduction
  // for miter-shaped proofs: the two design instances share their initial
  // state except for deliberately-unconstrained (secret) locations, so the
  // solver reasons only about the difference cone.
  void aliasInitialState(rtl::NodeId masterRegQ, rtl::NodeId followerRegQ);

  // Ensures frames 0..cycle exist.
  void unrollTo(unsigned cycle);

  // Literals of `node` as evaluated in clock cycle `cycle`.
  const LitVec& lits(rtl::NodeId node, unsigned cycle);
  sat::Lit lit(rtl::NodeId node, unsigned cycle) {
    const LitVec& v = lits(node, cycle);
    return v.at(0);
  }
  sat::Lit lit(rtl::Sig s, unsigned cycle) { return lit(s.id(), cycle); }

  // Literals of register state at the *start* of `cycle` (frame-0 state
  // variables are the symbolic initial state).
  const LitVec& regLits(std::uint32_t regIdx, unsigned cycle);

  unsigned numFrames() const { return static_cast<unsigned>(frames_.size()); }
  const rtl::Design& design() const { return design_; }
  CnfBuilder& cnf() { return cnf_; }

 private:
  void buildFrame(unsigned t);
  LitVec encodeNode(const rtl::Node& n, unsigned t);
  const LitVec& frame0RegLits(rtl::NodeId regQ);

  const rtl::Design& design_;
  CnfBuilder& cnf_;
  std::vector<rtl::NodeId> topo_;
  // frames_[t][nodeId] = literal vector of that node at cycle t.
  std::vector<std::vector<LitVec>> frames_;
  // follower kRegQ node -> master kRegQ node for shared frame-0 variables.
  std::unordered_map<rtl::NodeId, rtl::NodeId> frame0Alias_;
};

}  // namespace upec::formal
