#include "formal/kinduction.hpp"

namespace upec::formal {

KInductionResult KInduction::prove(rtl::Sig invariant, rtl::Sig init, unsigned maxK) {
  KInductionResult result;

  for (unsigned k = 1; k <= maxK; ++k) {
    // Base: from the init region, the invariant holds for cycles 0..k-1.
    {
      IntervalProperty base;
      base.name = "kind_base_" + std::to_string(k);
      base.assumeAt(0, init, "init");
      for (unsigned t = 0; t < k; ++t) base.proveAt(t, invariant, "invariant");
      BmcEngine engine(design_);
      if (conflictBudget_ != 0) engine.setConflictBudget(conflictBudget_);
      engine.setSolverConfigs(solverConfigs_);
      engine.setPortfolioOptions(portfolioOptions_);
      const CheckResult res = engine.check(base);
      result.lastStats = res.stats;
      if (res.status == CheckStatus::kCounterexample) {
        result.baseFailed = true;
        result.cex = *res.trace;
        return result;
      }
      if (res.status == CheckStatus::kUnknown) {
        result.exhausted = true;
        return result;
      }
    }
    // Step: k consecutive cycles of the invariant (from ANY state) imply
    // cycle k.
    {
      IntervalProperty step;
      step.name = "kind_step_" + std::to_string(k);
      for (unsigned t = 0; t < k; ++t) step.assumeAt(t, invariant, "invariant hypothesis");
      step.proveAt(k, invariant, "invariant");
      BmcEngine engine(design_);
      if (conflictBudget_ != 0) engine.setConflictBudget(conflictBudget_);
      engine.setSolverConfigs(solverConfigs_);
      engine.setPortfolioOptions(portfolioOptions_);
      const CheckResult res = engine.check(step);
      result.lastStats = res.stats;
      if (res.status == CheckStatus::kProven) {
        result.proven = true;
        result.provenAtK = k;
        return result;
      }
      if (res.status == CheckStatus::kUnknown) {
        result.exhausted = true;
        return result;
      }
      // Step failed: deepen the hypothesis window.
    }
  }
  result.exhausted = true;
  return result;
}

}  // namespace upec::formal
