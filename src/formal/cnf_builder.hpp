// Tseitin encoding helpers: builds CNF for word-level operations on
// literal vectors. Constant folding is performed against the dedicated
// true/false literals so that e.g. masks and mux selects known at encode
// time do not blow up the clause database.
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "sat/solver_backend.hpp"

namespace upec::formal {

using LitVec = std::vector<sat::Lit>;

// Tseitin encoder with gate-level structural hashing: re-encoding the same
// operation over the same literals returns the existing output literal
// instead of fresh clauses. Combined with shared frame-0 variables in
// miter-shaped problems, the logic of the two design instances collapses
// wherever it cannot diverge, and equality obligations outside the
// difference cone fold to constant true.
class CnfBuilder {
 public:
  explicit CnfBuilder(sat::SolverBackend& solver) : solver_(solver) {}

  sat::SolverBackend& solver() { return solver_; }

  // Structural-hashing state, exposed so an encoded prefix can be cloned
  // into a fresh solver (formal/prefix_cache.hpp). The gate cache maps
  // (gate kind, operand literal codes) to the output literal; replaying the
  // recorded clauses into a fresh backend and restoring this snapshot
  // reproduces the builder exactly — subsequent encoding resumes with the
  // same hash hits, the same fresh-variable order and therefore the same
  // clause stream as a cold encode.
  enum class GateKind : std::uint8_t { kAnd, kXor, kMux, kMaj };
  struct GateKey {
    GateKind kind;
    int a, b, c;  // literal codes; -1 when unused
    bool operator==(const GateKey& o) const {
      return kind == o.kind && a == o.a && b == o.b && c == o.c;
    }
  };
  struct GateKeyHash {
    std::size_t operator()(const GateKey& k) const {
      std::uint64_t h = static_cast<std::uint64_t>(k.kind);
      h = h * 1099511628211ull + static_cast<std::uint64_t>(k.a + 2);
      h = h * 1099511628211ull + static_cast<std::uint64_t>(k.b + 2);
      h = h * 1099511628211ull + static_cast<std::uint64_t>(k.c + 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct Snapshot {
    bool hasConst = false;
    sat::Lit trueLit;
    std::unordered_map<GateKey, sat::Lit, GateKeyHash> gates;
  };
  // Flattens the full gate-hash state (restored base + local overlay) into
  // one map. Pays a copy — called once per campaign when a cold encode is
  // captured, never on the clone path.
  Snapshot snapshot() const {
    Snapshot s{hasConst_, trueLit_, {}};
    if (base_ != nullptr) {
      s.gates = base_->gates;
      s.gates.insert(gateCache_.begin(), gateCache_.end());
    } else {
      s.gates = gateCache_;
    }
    return s;
  }
  // O(1): adopts the snapshot as an immutable shared base layer. Gate
  // lookups read through it; new gates land in the local overlay — the
  // base is never touched, so any number of sessions restore from the same
  // snapshot concurrently.
  void restore(std::shared_ptr<const Snapshot> s) {
    hasConst_ = s->hasConst;
    trueLit_ = s->trueLit;
    base_ = std::move(s);
    gateCache_.clear();
  }

  sat::Lit freshLit();
  LitVec freshVec(unsigned width);

  // Constant literals (a single variable forced true, shared).
  sat::Lit trueLit();
  sat::Lit falseLit() { return ~trueLit(); }
  sat::Lit constLit(bool b) { return b ? trueLit() : falseLit(); }
  LitVec constVec(unsigned width, std::uint64_t value);

  bool isTrue(sat::Lit l) { return hasConst_ && l == trueLit_; }
  bool isFalse(sat::Lit l) { return hasConst_ && l == ~trueLit_; }

  // --- single-bit gates -------------------------------------------------
  sat::Lit andLit(sat::Lit a, sat::Lit b);
  sat::Lit orLit(sat::Lit a, sat::Lit b);
  sat::Lit xorLit(sat::Lit a, sat::Lit b);
  sat::Lit xnorLit(sat::Lit a, sat::Lit b) { return ~xorLit(a, b); }
  sat::Lit muxLit(sat::Lit sel, sat::Lit thenL, sat::Lit elseL);
  sat::Lit majLit(sat::Lit a, sat::Lit b, sat::Lit c);   // carry of full adder
  sat::Lit xor3Lit(sat::Lit a, sat::Lit b, sat::Lit c);  // sum of full adder
  sat::Lit bigAnd(std::span<const sat::Lit> lits);
  sat::Lit bigOr(std::span<const sat::Lit> lits);

  // --- word-level operations --------------------------------------------
  LitVec notVec(const LitVec& a);
  LitVec andVec(const LitVec& a, const LitVec& b);
  LitVec orVec(const LitVec& a, const LitVec& b);
  LitVec xorVec(const LitVec& a, const LitVec& b);
  LitVec muxVec(sat::Lit sel, const LitVec& thenV, const LitVec& elseV);
  // Adder; if carryOut is non-null, receives the final carry.
  LitVec addVec(const LitVec& a, const LitVec& b, sat::Lit carryIn, sat::Lit* carryOut = nullptr);
  LitVec subVec(const LitVec& a, const LitVec& b, sat::Lit* borrowClearOut = nullptr);
  LitVec negVec(const LitVec& a);
  LitVec mulVec(const LitVec& a, const LitVec& b);
  enum class ShiftKind { kShl, kLshr, kAshr };
  LitVec shiftVec(const LitVec& a, const LitVec& amount, ShiftKind kind);
  sat::Lit eqVec(const LitVec& a, const LitVec& b);
  sat::Lit ultVec(const LitVec& a, const LitVec& b);
  sat::Lit uleVec(const LitVec& a, const LitVec& b);
  sat::Lit sltVec(const LitVec& a, const LitVec& b);
  sat::Lit sleVec(const LitVec& a, const LitVec& b);
  sat::Lit redOr(const LitVec& a) { return bigOr(a); }
  sat::Lit redAnd(const LitVec& a) { return bigAnd(a); }
  sat::Lit redXor(const LitVec& a);

  void assertLit(sat::Lit l) { solver_.addUnit(l); }

 private:
  bool lookupGate(const GateKey& key, sat::Lit* out) const;
  void storeGate(const GateKey& key, sat::Lit out);

  sat::SolverBackend& solver_;
  sat::Lit trueLit_;
  bool hasConst_ = false;
  // Gate-hash state: the immutable restored layer (null unless this
  // builder was cloned from a cached prefix) plus the local overlay.
  // Entries are only ever inserted, never changed, so the overlay shadows
  // nothing — lookup probes the overlay first, then the base.
  std::shared_ptr<const Snapshot> base_;
  std::unordered_map<GateKey, sat::Lit, GateKeyHash> gateCache_;
};

}  // namespace upec::formal
