#include "formal/unroller.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace upec::formal {

using rtl::Node;
using rtl::NodeId;
using rtl::Op;
using sat::Lit;

Unroller::Unroller(const rtl::Design& design, CnfBuilder& cnf) : design_(design), cnf_(cnf) {
  assert(design.memoriesLowered() && "lower memories before unrolling");
  std::string why;
  assert(design.isComplete(&why) && "design has unconnected registers");
  topo_ = design.topoOrder();
}

void Unroller::aliasInitialState(NodeId masterRegQ, NodeId followerRegQ) {
  assert(numFrames() == 0 && "aliases must be declared before unrolling");
  assert(design_.node(masterRegQ).op == Op::kRegQ);
  assert(design_.node(followerRegQ).op == Op::kRegQ);
  assert(design_.node(masterRegQ).width == design_.node(followerRegQ).width);
  frame0Alias_[followerRegQ] = masterRegQ;
}

const LitVec& Unroller::frame0RegLits(NodeId regQ) {
  // Only reachable while frame 0 is being built locally — a restored base
  // always already contains frame 0.
  assert(baseCount() == 0);
  auto& slot = frames_[0][regQ];
  if (!slot.empty()) return slot;
  const auto it = frame0Alias_.find(regQ);
  if (it != frame0Alias_.end()) {
    slot = frame0RegLits(it->second);  // share the master's variables
  } else {
    slot = cnf_.freshVec(design_.node(regQ).width);
  }
  return slot;
}

void Unroller::unrollTo(unsigned cycle) {
  while (numFrames() <= cycle) buildFrame(numFrames());
}

const LitVec& Unroller::lits(NodeId node, unsigned cycle) {
  unrollTo(cycle);
  const std::vector<LitVec>& frame = frameAt(cycle);
  // A node beyond the frame was created after this unroller snapshotted the
  // design (e.g. a property expression built mid-session): it has no
  // encoding, and silently reading past the frame could return garbage
  // literals and prove the wrong property. Always-on check: an unsound
  // "proven" is strictly worse than an abort, also in Release builds.
  if (node >= frame.size()) {
    std::fprintf(stderr,
                 "Unroller: node %u created after unrolling started (frame has %zu nodes); "
                 "incremental callers must build property expressions up front\n",
                 node, frame.size());
    std::abort();
  }
  return frame[node];
}

const LitVec& Unroller::regLits(std::uint32_t regIdx, unsigned cycle) {
  return lits(design_.regs()[regIdx].q, cycle);
}

void Unroller::buildFrame(unsigned t) {
  assert(t == numFrames() && "frames build strictly in order");
  frames_.emplace_back(design_.numNodes());
  auto& frame = frames_.back();
  for (NodeId id : topo_) {
    const Node& n = design_.node(id);
    if (n.op == Op::kRegQ) {
      if (t == 0) {
        frame0RegLits(id);  // symbolic initial state (possibly aliased)
      } else {
        const rtl::RegInfo& r = design_.regs()[design_.regIndexOf(id)];
        frame[id] = frameAt(t - 1)[r.next];
      }
    } else if (n.op == Op::kInput) {
      frame[id] = cnf_.freshVec(n.width);
    } else {
      frame[id] = encodeNode(n, t);
    }
  }
}

LitVec Unroller::encodeNode(const Node& n, unsigned t) {
  (void)t;
  auto& frame = frames_.back();
  auto op0 = [&]() -> const LitVec& { return frame[n.ops[0]]; };
  auto op1 = [&]() -> const LitVec& { return frame[n.ops[1]]; };
  auto op2 = [&]() -> const LitVec& { return frame[n.ops[2]]; };

  switch (n.op) {
    case Op::kConst: {
      const BitVec& v = design_.constValue(&n - &design_.node(0));
      return cnf_.constVec(n.width, v.uint());
    }
    case Op::kBuf:
      return op0();
    case Op::kNot:
      return cnf_.notVec(op0());
    case Op::kNeg:
      return cnf_.negVec(op0());
    case Op::kRedOr:
      return {cnf_.redOr(op0())};
    case Op::kRedAnd:
      return {cnf_.redAnd(op0())};
    case Op::kRedXor:
      return {cnf_.redXor(op0())};
    case Op::kAdd:
      return cnf_.addVec(op0(), op1(), cnf_.falseLit());
    case Op::kSub:
      return cnf_.subVec(op0(), op1());
    case Op::kMul:
      return cnf_.mulVec(op0(), op1());
    case Op::kAnd:
      return cnf_.andVec(op0(), op1());
    case Op::kOr:
      return cnf_.orVec(op0(), op1());
    case Op::kXor:
      return cnf_.xorVec(op0(), op1());
    case Op::kShl:
      return cnf_.shiftVec(op0(), op1(), CnfBuilder::ShiftKind::kShl);
    case Op::kLshr:
      return cnf_.shiftVec(op0(), op1(), CnfBuilder::ShiftKind::kLshr);
    case Op::kAshr:
      return cnf_.shiftVec(op0(), op1(), CnfBuilder::ShiftKind::kAshr);
    case Op::kEq:
      return {cnf_.eqVec(op0(), op1())};
    case Op::kNe:
      return {~cnf_.eqVec(op0(), op1())};
    case Op::kUlt:
      return {cnf_.ultVec(op0(), op1())};
    case Op::kUle:
      return {cnf_.uleVec(op0(), op1())};
    case Op::kSlt:
      return {cnf_.sltVec(op0(), op1())};
    case Op::kSle:
      return {cnf_.sleVec(op0(), op1())};
    case Op::kMux:
      return cnf_.muxVec(frame[n.ops[0]][0], op1(), op2());
    case Op::kExtract: {
      LitVec out(op0().begin() + n.aux1, op0().begin() + n.aux0 + 1);
      return out;
    }
    case Op::kConcat: {
      LitVec out = op1();  // low part occupies the low bits
      out.insert(out.end(), op0().begin(), op0().end());
      return out;
    }
    case Op::kZext: {
      LitVec out = op0();
      out.resize(n.width, cnf_.falseLit());
      return out;
    }
    case Op::kSext: {
      LitVec out = op0();
      const sat::Lit sign = out.back();
      out.resize(n.width, sign);
      return out;
    }
    case Op::kInput:
    case Op::kRegQ:
    case Op::kMemRead:
      break;  // handled in buildFrame / forbidden
  }
  assert(false && "unexpected op in encodeNode");
  return {};
}

}  // namespace upec::formal
