// Interval properties (paper Fig. 4): a conjunction of 1-bit assumptions,
// each anchored at a time offset (or over the whole window), and a set of
// timed 1-bit commitments to prove. This mirrors the assume/prove structure
// of the commercial IPC tools the paper builds on.
#pragma once

#include <string>
#include <vector>

#include "rtl/ir.hpp"

namespace upec::formal {

struct TimedSig {
  rtl::Sig sig;    // must be 1 bit wide
  unsigned cycle;  // absolute offset from the symbolic start state t
  std::string label;
};

struct IntervalProperty {
  std::string name;

  // Assumptions anchored at single cycles.
  std::vector<TimedSig> assumptions;
  // Assumptions replicated over every cycle 0..k ("during t..t+k").
  std::vector<rtl::Sig> invariantAssumptions;
  std::vector<std::string> invariantLabels;

  // Commitments: every listed signal must be provably true at its cycle.
  std::vector<TimedSig> commitments;

  void assumeAt(unsigned cycle, rtl::Sig s, std::string label = {}) {
    assumptions.push_back({s, cycle, std::move(label)});
  }
  void assumeAlways(rtl::Sig s, std::string label = {}) {
    invariantAssumptions.push_back(s);
    invariantLabels.push_back(std::move(label));
  }
  void proveAt(unsigned cycle, rtl::Sig s, std::string label = {}) {
    commitments.push_back({s, cycle, std::move(label)});
  }

  unsigned maxCycle() const;
  std::string pretty() const;  // renders the Fig. 4 assume/prove block
};

}  // namespace upec::formal
