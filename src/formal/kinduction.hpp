// k-induction over the RTL IR: proves single-cycle safety properties
// P(state) that plain 1-induction cannot close, by strengthening the
// induction hypothesis over k consecutive cycles:
//
//   step_k:  P@t ∧ P@t+1 ∧ ... ∧ P@t+k-1  ⊢  P@t+k   (from ANY state)
//
// Because the initial state is symbolic (IPC-style), an UNSAT step proof
// at depth k plus a bounded check of the first k cycles from the
// constrained initial region yields an unbounded proof. This generalises
// the 1-step induction used by the UPEC methodology (Sec. VI) and is
// exposed as a reusable engine for arbitrary designs.
#pragma once

#include <cstdint>

#include "formal/bmc.hpp"

namespace upec::formal {

struct KInductionResult {
  bool proven = false;
  unsigned provenAtK = 0;      // depth at which the step succeeded
  bool baseFailed = false;     // a real counterexample within the base window
  bool exhausted = false;      // maxK reached without closing the induction
  Trace cex;                   // valid when baseFailed
  BmcStats lastStats;
};

class KInduction {
 public:
  explicit KInduction(const rtl::Design& design) : design_(design) {}

  void setConflictBudget(std::uint64_t budget) { conflictBudget_ = budget; }

  // Decision procedure selection (see BmcEngine::setSolverConfigs): 2+
  // configs race a diversified portfolio per base/step query.
  void setSolverConfigs(std::vector<sat::SolverConfig> configs) {
    solverConfigs_ = std::move(configs);
  }

  // Portfolio-wide behaviour (learnt-clause sharing, member-slot governor)
  // for the raced base/step queries.
  void setPortfolioOptions(const sat::PortfolioOptions& options) {
    portfolioOptions_ = options;
  }

  // `invariant`: 1-bit signal that must hold in every cycle.
  // `init`: 1-bit signal characterising the initial-state region (may be
  // an always-true constant for any-state proofs).
  KInductionResult prove(rtl::Sig invariant, rtl::Sig init, unsigned maxK);

 private:
  const rtl::Design& design_;
  std::uint64_t conflictBudget_ = 0;
  std::vector<sat::SolverConfig> solverConfigs_;
  sat::PortfolioOptions portfolioOptions_;
};

}  // namespace upec::formal
