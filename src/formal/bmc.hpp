// Bounded model checking / Interval Property Checking over the RTL IR.
//
// check() encodes the design over the property's time window starting from
// a symbolic (any) initial state, asserts all assumptions, and asks the SAT
// solver for a violation of any commitment. UNSAT is a proof (for this
// window, from any state satisfying the assumptions); SAT yields a Trace
// with the offending start state and input stimulus, which can be
// re-simulated for diagnosis.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/bitvec.hpp"
#include "formal/property.hpp"
#include "rtl/ir.hpp"
#include "sat/solver_backend.hpp"

namespace upec::formal {

class PrefixCache;  // formal/prefix_cache.hpp

// A concrete counterexample: initial register state + per-cycle input
// values. Every node value is recoverable by re-simulation (TraceEval).
struct Trace {
  std::vector<BitVec> initialRegs;              // per register index
  std::vector<std::vector<BitVec>> inputs;      // inputs[cycle][inputIdx]
  unsigned cycles = 0;                          // number of frames captured
  std::vector<std::size_t> failedCommitments;   // indices into commitments
};

struct BmcStats {
  // Encode-side size. For an incremental session these are the session
  // totals so far (the solver keeps all frames); the point of incremental
  // deepening is that this grows by one frame per call instead of being
  // re-paid from scratch.
  std::uint64_t vars = 0;
  std::uint64_t clauses = 0;
  // Solver effort of THIS check alone (per-solve deltas, not the solver's
  // cumulative lifetime counters).
  std::uint64_t conflicts = 0;
  std::uint64_t propagations = 0;
  std::uint64_t decisions = 0;
  // Learnt-clause exchange flow of this check (zero without a sharing
  // portfolio): clauses published / attached / lost across all members.
  std::uint64_t clausesExported = 0;
  std::uint64_t clausesImported = 0;
  std::uint64_t clausesDropped = 0;
  // Solver-phase profiling of this check (zero unless a resolved config set
  // sat::SolverConfig::profile): wall nanoseconds per CDCL phase, summed
  // over portfolio members, and how many imported exchange clauses were
  // ever *useful* — first propagation / first appearance in conflict
  // analysis — as opposed to merely attached (clausesImported).
  std::uint64_t propagateTimeNs = 0;
  std::uint64_t analyzeTimeNs = 0;
  std::uint64_t reduceTimeNs = 0;
  std::uint64_t restartTimeNs = 0;
  std::uint64_t importedUsedInPropagation = 0;
  std::uint64_t importedUsedInConflict = 0;
  double solveMs = 0.0;
  double encodeMs = 0.0;
  // Which solver configuration answered (portfolio attribution; a single
  // backend names its own configuration).
  std::string solvedBy;
  // True when this check ran on an incremental session whose initial
  // frames were adopted from a PrefixCache instead of encoded cold.
  bool encodedFromCache = false;
};

enum class CheckStatus { kProven, kCounterexample, kUnknown };

struct CheckResult {
  CheckStatus status = CheckStatus::kUnknown;
  std::optional<Trace> trace;  // present iff kCounterexample
  BmcStats stats;
  // For kUnknown: the solver ran out of conflict budget (as opposed to a
  // cooperative stop). Such a window is a candidate for re-entry with a
  // larger budget — see engine::LadderScheduler.
  bool budgetExhausted = false;
  // For kUnknown: the per-solve wall-clock deadline expired. Terminal —
  // unlike a starved budget, a latency cap is not restored by retrying.
  bool deadlineExpired = false;
  bool holds() const { return status == CheckStatus::kProven; }
};

class BmcEngine {
 public:
  // The design must have memories lowered and all registers connected.
  explicit BmcEngine(const rtl::Design& design);
  ~BmcEngine();
  BmcEngine(const BmcEngine&) = delete;
  BmcEngine& operator=(const BmcEngine&) = delete;

  // Aborts with kUnknown after this many SAT conflicts (0 = unlimited).
  // Applies per check: an incremental session gets a fresh budget each call.
  void setConflictBudget(std::uint64_t budget) { conflictBudget_ = budget; }

  // Wall-clock deadline per solve call in ms (0 = none); expiry yields
  // kUnknown with CheckResult::deadlineExpired set.
  void setSolveDeadlineMs(std::uint64_t deadlineMs) { solveDeadlineMs_ = deadlineMs; }

  // Fault injection (test harness): the solver throws once a solve call
  // reaches this many conflicts (0 = off).
  void setFaultAbortAtConflict(std::uint64_t conflicts) { faultAbortAtConflict_ = conflicts; }

  // Learnt clauses on the incremental session's sharing exchange, as the
  // sat layer's Lit clauses (empty without a session or a sharing
  // portfolio) — the persistence payload for checkpoint/resume.
  std::vector<std::vector<sat::Lit>> learntSnapshot(std::size_t maxClauses) const;

  // Selects the decision procedure: an empty list (default) or a single
  // config runs one CDCL solver; two or more configs race a diversified
  // portfolio (sat::PortfolioSolver), first answer wins. Must be set before
  // the first checkIncremental() of a session (the session owns its
  // backend); check() picks the backend up per call.
  void setSolverConfigs(std::vector<sat::SolverConfig> configs) {
    solverConfigs_ = std::move(configs);
  }
  const std::vector<sat::SolverConfig>& solverConfigs() const { return solverConfigs_; }

  // Portfolio-wide behaviour (learnt-clause sharing, member-slot governor);
  // only meaningful with 2+ solver configs. Same session caveat as
  // setSolverConfigs: set before the first checkIncremental().
  void setPortfolioOptions(const sat::PortfolioOptions& options) {
    portfolioOptions_ = options;
  }
  const sat::PortfolioOptions& portfolioOptions() const { return portfolioOptions_; }

  // Registers whose frame-0 variables are shared (structural equality of
  // the symbolic initial state); see Unroller::aliasInitialState. For
  // incremental sessions, all aliases must be added before the first
  // checkIncremental() call.
  void addInitialStateAlias(rtl::Sig masterRegQ, rtl::Sig followerRegQ) {
    aliases_.emplace_back(masterRegQ.id(), followerRegQ.id());
  }

  // Encoded-prefix reuse (formal/prefix_cache.hpp): with a cache attached,
  // the first checkIncremental() call probes it under
  // `keyBase + "|d" + <first window depth>` — on a hit the session adopts
  // the cached frames (clause replay + builder/unroller restore, producing
  // a solver state identical to a cold encode); on a miss it records its
  // own prefix and publishes it for the next job. keyBase must encode
  // everything the prefix depends on except the depth (see the keying
  // rules in prefix_cache.hpp). Set before the first checkIncremental();
  // single-shot check() never consults the cache (nothing to reuse — the
  // solver is discarded per call).
  void setPrefixCache(PrefixCache* cache, std::string keyBase) {
    prefixCache_ = cache;
    prefixKeyBase_ = std::move(keyBase);
  }

  // Offers proven clauses (engine::ClauseStore seeds) to the incremental
  // session's solver backend — a sharing portfolio publishes them on its
  // exchange, any other backend ignores them (SolverBackend::seedClauses).
  // Clauses offered before the session exists are buffered and delivered
  // at session construction via PortfolioOptions::seedLearnts.
  void seedClauses(std::span<const std::vector<sat::Lit>> clauses);

  // Single-shot check: fresh solver, encode, solve, discard.
  CheckResult check(const IntervalProperty& property);

  // Incremental deepening: reuses one solver (and its learnt clauses)
  // across a sequence of calls with non-decreasing window length. Frames
  // already encoded are never re-encoded; only the new tail of the window
  // is. Single-cycle and invariant assumptions are asserted as hard units
  // the first time their cycle appears (sound because the caller's
  // assumption set may only *grow* monotonically with the window), while
  // the per-window proof obligation is activated through an assumption
  // literal, so a deeper call is not contaminated by the shallower
  // obligations. Requirements on the call sequence:
  //   * property.maxCycle() is non-decreasing across calls,
  //   * cycle-anchored and invariant assumptions of earlier calls remain
  //     valid for later ones (same property family, possibly restated),
  //   * commitments may change freely between calls,
  //   * every rtl node the properties reference must already exist at the
  //     first call (the session snapshots the design's topological order;
  //     build property expressions up front, not per call).
  // Violating the first two yields over-constrained (unsound "proven")
  // results — call resetIncremental() to start a fresh session instead.
  CheckResult checkIncremental(const IntervalProperty& property);

  // Drops the incremental session (solver, learnt clauses, frames).
  void resetIncremental();

  // Frames currently encoded in the incremental session (0 = no session).
  unsigned incrementalFrames() const;

 private:
  struct Session;

  const rtl::Design& design_;
  std::uint64_t conflictBudget_ = 0;
  std::uint64_t solveDeadlineMs_ = 0;
  std::uint64_t faultAbortAtConflict_ = 0;
  std::vector<sat::SolverConfig> solverConfigs_;
  sat::PortfolioOptions portfolioOptions_;
  std::vector<std::pair<rtl::NodeId, rtl::NodeId>> aliases_;
  PrefixCache* prefixCache_ = nullptr;
  std::string prefixKeyBase_;
  std::unique_ptr<Session> session_;
};

// Replays a Trace on the simulator, exposing every node value per cycle.
class TraceEval {
 public:
  TraceEval(const rtl::Design& design, const Trace& trace);
  BitVec value(rtl::Sig s, unsigned cycle) const { return value(s.id(), cycle); }
  BitVec value(rtl::NodeId node, unsigned cycle) const;
  BitVec regValue(std::uint32_t regIdx, unsigned cycle) const;

 private:
  const rtl::Design& design_;
  // values_[cycle][node]
  std::vector<std::vector<BitVec>> values_;
  std::vector<std::vector<BitVec>> regStates_;  // regStates_[cycle][regIdx]
};

}  // namespace upec::formal
