// Bounded model checking / Interval Property Checking over the RTL IR.
//
// check() encodes the design over the property's time window starting from
// a symbolic (any) initial state, asserts all assumptions, and asks the SAT
// solver for a violation of any commitment. UNSAT is a proof (for this
// window, from any state satisfying the assumptions); SAT yields a Trace
// with the offending start state and input stimulus, which can be
// re-simulated for diagnosis.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/bitvec.hpp"
#include "formal/property.hpp"
#include "rtl/ir.hpp"

namespace upec::formal {

// A concrete counterexample: initial register state + per-cycle input
// values. Every node value is recoverable by re-simulation (TraceEval).
struct Trace {
  std::vector<BitVec> initialRegs;              // per register index
  std::vector<std::vector<BitVec>> inputs;      // inputs[cycle][inputIdx]
  unsigned cycles = 0;                          // number of frames captured
  std::vector<std::size_t> failedCommitments;   // indices into commitments
};

struct BmcStats {
  std::uint64_t vars = 0;
  std::uint64_t clauses = 0;
  std::uint64_t conflicts = 0;
  double solveMs = 0.0;
  double encodeMs = 0.0;
};

enum class CheckStatus { kProven, kCounterexample, kUnknown };

struct CheckResult {
  CheckStatus status = CheckStatus::kUnknown;
  std::optional<Trace> trace;  // present iff kCounterexample
  BmcStats stats;
  bool holds() const { return status == CheckStatus::kProven; }
};

class BmcEngine {
 public:
  // The design must have memories lowered and all registers connected.
  explicit BmcEngine(const rtl::Design& design) : design_(design) {}

  // Aborts with kUnknown after this many SAT conflicts (0 = unlimited).
  void setConflictBudget(std::uint64_t budget) { conflictBudget_ = budget; }

  // Registers whose frame-0 variables are shared (structural equality of
  // the symbolic initial state); see Unroller::aliasInitialState.
  void addInitialStateAlias(rtl::Sig masterRegQ, rtl::Sig followerRegQ) {
    aliases_.emplace_back(masterRegQ.id(), followerRegQ.id());
  }

  CheckResult check(const IntervalProperty& property);

 private:
  const rtl::Design& design_;
  std::uint64_t conflictBudget_ = 0;
  std::vector<std::pair<rtl::NodeId, rtl::NodeId>> aliases_;
};

// Replays a Trace on the simulator, exposing every node value per cycle.
class TraceEval {
 public:
  TraceEval(const rtl::Design& design, const Trace& trace);
  BitVec value(rtl::Sig s, unsigned cycle) const { return value(s.id(), cycle); }
  BitVec value(rtl::NodeId node, unsigned cycle) const;
  BitVec regValue(std::uint32_t regIdx, unsigned cycle) const;

 private:
  const rtl::Design& design_;
  // values_[cycle][node]
  std::vector<std::vector<BitVec>> values_;
  std::vector<std::vector<BitVec>> regStates_;  // regStates_[cycle][regIdx]
};

}  // namespace upec::formal
