// Campaign-level reuse of the encoded miter prefix.
//
// Every ladder job of a sweep unrolls and Tseitin-encodes the *same*
// transition-relation frames before it ever asserts a property: jobs that
// differ only in solver knobs (seed, restarts, portfolio shape, budgets)
// produce byte-for-byte the same CNF prefix. An EncodedPrefix captures
// that work once — the ordered clause stream, the variable count, the
// builder's structural-hash state and the unroller's frames — and a
// PrefixCache shares it across jobs: a session constructed from a cached
// prefix replays the clauses into its fresh solver and restores the
// encoder state, then continues encoding (assumptions, obligations,
// deeper frames) exactly as a cold session would.
//
// Why the clone is exact, not approximate: encoding is deterministic given
// the design and the alias set. Replaying the recorded clause list in
// order into a fresh backend allocates the same variables in the same
// order, and restoring CnfBuilder::Snapshot + the unroller frames makes
// every later lookup (gate hash, frame literal) return the same literal it
// would have returned after a cold encode. The solver therefore starts
// from an identical clause database, and the job's solve trajectory — and
// verdict — is the same whether its prefix came from the cache or not
// (tests/engine_cache_test.cpp and bench/campaign.cpp section [10] assert
// exactly this).
//
// Keying rules (who must NOT share): two sessions may share a prefix only
// if they encode the same frames over the same netlist with the same
// frame-0 aliasing. The key is therefore composed of
//   - the design identity (SoC config + secret word — engine::EncodeCache
//     derives this part),
//   - the frame-0 aliasing mode (UpecOptions::structuralInitEquality),
//   - when RTL reduction is on: the reduction options AND everything the
//     reduction's cone roots depend on (scenario, commitment exclusions) —
//     reduced netlists are property-dependent, so reduced jobs share far
//     less than plain ones,
//   - the unrolled depth (appended by BmcEngine at first use).
// Solver knobs, budgets, portfolio shape and telemetry are deliberately
// excluded: they do not affect the clause stream.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "formal/cnf_builder.hpp"

namespace upec::formal {

// One immutable encoded prefix. Shared via shared_ptr<const ...>: produced
// once, read concurrently by any number of cloning sessions. The builder
// snapshot and the frames are themselves shared immutably — a cloning
// session layers its own growth on top of them (CnfBuilder overlay,
// Unroller base frames) instead of deep-copying, so the clone's cost is
// the clause replay alone.
struct EncodedPrefix {
  unsigned depth = 0;   // frames 0..depth exist
  int numVars = 0;      // variables allocated by the prefix encode
  // Clause stream in emission order, stored flat: clause i is
  // lits[ends[i-1]..ends[i]). One contiguous buffer instead of one heap
  // vector per clause — the replay loop is a sequential scan, which is what
  // makes cloning cheaper than re-walking the netlist (a per-clause heap
  // hop costs more than the Tseitin encode it replaces).
  std::vector<sat::Lit> lits;
  std::vector<std::uint32_t> ends;
  std::size_t numClauses() const { return ends.size(); }
  std::shared_ptr<const CnfBuilder::Snapshot> builder;
  std::shared_ptr<const std::vector<std::vector<LitVec>>> frames;  // Unroller frames
};

// Abstract cache seam, implemented by engine::EncodeCache (the formal
// layer stays free of engine policy — same pattern as sat::MemberGovernor
// vs engine::ThreadGovernor). Implementations must be thread-safe: pool
// workers look up and store concurrently.
class PrefixCache {
 public:
  virtual ~PrefixCache() = default;

  // The prefix stored under `key`, or nullptr on miss.
  virtual std::shared_ptr<const EncodedPrefix> lookup(const std::string& key) = 0;

  // Publishes a freshly encoded prefix. First writer wins on a racing
  // double-encode (both copies are identical by determinism, so either is
  // correct); implementations may also evict.
  virtual void store(const std::string& key, std::shared_ptr<const EncodedPrefix> prefix) = 0;
};

}  // namespace upec::formal
