#include "sim/vcd.hpp"

#include <cassert>
#include <ostream>

namespace upec::sim {

std::string VcdWriter::makeId(std::size_t index) {
  // Printable identifier alphabet per the VCD spec (chars '!'..'~').
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

void VcdWriter::addSignal(rtl::Sig sig, const std::string& name) {
  assert(!headerDone_ && "signals must be added before writeHeader");
  Tracked t;
  t.node = sig.id();
  t.name = name;
  t.id = makeId(tracked_.size());
  tracked_.push_back(std::move(t));
}

void VcdWriter::addAllRegisters() {
  const rtl::Design& d = sim_.design();
  for (const rtl::RegInfo& reg : d.regs()) {
    addSignal(rtl::Sig(const_cast<rtl::Design*>(&d), reg.q),
              reg.name.empty() ? ("reg" + std::to_string(reg.q)) : reg.name);
  }
}

void VcdWriter::writeHeader(std::ostream& os) {
  os << "$timescale 1ns $end\n$scope module " << sim_.design().name() << " $end\n";
  for (const Tracked& t : tracked_) {
    const unsigned width = sim_.design().width(t.node);
    std::string safe = t.name;
    for (char& c : safe) {
      if (c == ' ') c = '_';
    }
    os << "$var wire " << width << " " << t.id << " " << safe << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";
  headerDone_ = true;
}

void VcdWriter::sample(std::ostream& os) {
  assert(headerDone_);
  sim_.evalComb();
  bool stamped = false;
  for (Tracked& t : tracked_) {
    const BitVec v = sim_.peek(t.node);
    if (t.everSampled && v.uint() == t.lastValue) continue;
    if (!stamped) {
      os << "#" << time_ << "\n";
      stamped = true;
    }
    const unsigned width = v.width();
    if (width == 1) {
      os << (v.uint() & 1) << t.id << "\n";
    } else {
      os << "b";
      for (unsigned i = width; i-- > 0;) os << ((v.uint() >> i) & 1);
      os << " " << t.id << "\n";
    }
    t.lastValue = v.uint();
    t.everSampled = true;
  }
  ++time_;
}

}  // namespace upec::sim
