// Value-change-dump (VCD) waveform writer for the cycle-accurate
// simulator. Records selected signals each cycle; the output opens in
// GTKWave and friends, which is the workflow a hardware engineer expects
// when diagnosing a UPEC counterexample trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "rtl/ir.hpp"
#include "sim/simulator.hpp"

namespace upec::sim {

class VcdWriter {
 public:
  explicit VcdWriter(Simulator& simulator) : sim_(simulator) {}

  // Adds a signal to the dump (call before writeHeader).
  void addSignal(rtl::Sig sig, const std::string& name);
  // Adds every named register of the design.
  void addAllRegisters();

  void writeHeader(std::ostream& os);
  // Samples all tracked signals at the current simulator state; emits only
  // changes, per the VCD format.
  void sample(std::ostream& os);

 private:
  struct Tracked {
    rtl::NodeId node;
    std::string name;
    std::string id;  // VCD short identifier
    std::uint64_t lastValue = ~0ull;
    bool everSampled = false;
  };
  static std::string makeId(std::size_t index);

  Simulator& sim_;
  std::vector<Tracked> tracked_;
  std::uint64_t time_ = 0;
  bool headerDone_ = false;
};

}  // namespace upec::sim
