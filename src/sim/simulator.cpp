#include "sim/simulator.hpp"

#include <cassert>

namespace upec::sim {

using rtl::Node;
using rtl::NodeId;
using rtl::Op;

Simulator::Simulator(const rtl::Design& design) : design_(design) {
  std::string why;
  assert(design.isComplete(&why) && "design has unconnected registers");
  topo_ = design.topoOrder();
  values_.assign(design.numNodes(), BitVec());
  inputState_.assign(design.numNodes(), BitVec());
  for (NodeId in : design.inputs()) inputState_[in] = BitVec(design.width(in), 0);
  regState_.resize(design.regs().size());
  memState_.resize(design.mems().size());
  for (std::size_t m = 0; m < design.mems().size(); ++m) {
    memState_[m].assign(design.mems()[m].depth, 0);
  }
  reset();
}

void Simulator::reset() {
  for (std::size_t i = 0; i < design_.regs().size(); ++i) {
    regState_[i] = design_.regs()[i].resetValue;
  }
  for (auto& m : memState_) {
    std::fill(m.begin(), m.end(), 0);
  }
  cycle_ = 0;
  combClean_ = false;
}

void Simulator::poke(rtl::Sig input, const BitVec& value) {
  assert(design_.node(input.id()).op == Op::kInput);
  assert(value.width() == input.width());
  inputState_[input.id()] = value;
  combClean_ = false;
}

void Simulator::setReg(std::uint32_t regIdx, const BitVec& v) {
  assert(regIdx < regState_.size());
  assert(v.width() == regState_[regIdx].width());
  regState_[regIdx] = v;
  combClean_ = false;
}

std::uint64_t Simulator::readMemWord(std::uint32_t memId, std::uint64_t addr) const {
  assert(memId < memState_.size() && addr < memState_[memId].size());
  return memState_[memId][addr];
}

void Simulator::writeMemWord(std::uint32_t memId, std::uint64_t addr, std::uint64_t value) {
  assert(memId < memState_.size() && addr < memState_[memId].size());
  memState_[memId][addr] = value & BitVec::mask(design_.mems()[memId].width);
  combClean_ = false;
}

void Simulator::evalComb() {
  if (combClean_) return;
  for (NodeId id : topo_) {
    const Node& n = design_.node(id);
    BitVec& out = values_[id];
    switch (n.op) {
      case Op::kInput:
        out = inputState_[id];
        break;
      case Op::kConst:
        out = design_.constValue(id);
        break;
      case Op::kRegQ:
        out = regState_[design_.regIndexOf(id)];
        break;
      case Op::kMemRead: {
        const std::uint64_t addr = values_[n.ops[0]].uint();
        const auto& mem = memState_[n.aux0];
        // Out-of-range addresses (possible when depth is not a power of
        // two) read as zero, matching the lowered mux tree's default.
        out = BitVec(n.width, addr < mem.size() ? mem[addr] : 0);
        break;
      }
      case Op::kBuf:
        out = values_[n.ops[0]];
        break;
      case Op::kNot:
        out = values_[n.ops[0]].bnot();
        break;
      case Op::kNeg:
        out = values_[n.ops[0]].neg();
        break;
      case Op::kRedOr:
        out = values_[n.ops[0]].redOr();
        break;
      case Op::kRedAnd:
        out = values_[n.ops[0]].redAnd();
        break;
      case Op::kRedXor:
        out = values_[n.ops[0]].redXor();
        break;
      case Op::kAdd:
        out = values_[n.ops[0]].add(values_[n.ops[1]]);
        break;
      case Op::kSub:
        out = values_[n.ops[0]].sub(values_[n.ops[1]]);
        break;
      case Op::kMul:
        out = values_[n.ops[0]].mul(values_[n.ops[1]]);
        break;
      case Op::kAnd:
        out = values_[n.ops[0]].band(values_[n.ops[1]]);
        break;
      case Op::kOr:
        out = values_[n.ops[0]].bor(values_[n.ops[1]]);
        break;
      case Op::kXor:
        out = values_[n.ops[0]].bxor(values_[n.ops[1]]);
        break;
      case Op::kShl:
        out = values_[n.ops[0]].shl(values_[n.ops[1]]);
        break;
      case Op::kLshr:
        out = values_[n.ops[0]].lshr(values_[n.ops[1]]);
        break;
      case Op::kAshr:
        out = values_[n.ops[0]].ashr(values_[n.ops[1]]);
        break;
      case Op::kEq:
        out = values_[n.ops[0]].eq(values_[n.ops[1]]);
        break;
      case Op::kNe:
        out = values_[n.ops[0]].ne(values_[n.ops[1]]);
        break;
      case Op::kUlt:
        out = values_[n.ops[0]].ult(values_[n.ops[1]]);
        break;
      case Op::kUle:
        out = values_[n.ops[0]].ule(values_[n.ops[1]]);
        break;
      case Op::kSlt:
        out = values_[n.ops[0]].slt(values_[n.ops[1]]);
        break;
      case Op::kSle:
        out = values_[n.ops[0]].sle(values_[n.ops[1]]);
        break;
      case Op::kMux:
        out = values_[n.ops[0]].toBool() ? values_[n.ops[1]] : values_[n.ops[2]];
        break;
      case Op::kExtract:
        out = values_[n.ops[0]].extract(n.aux0, n.aux1);
        break;
      case Op::kConcat:
        out = values_[n.ops[0]].concat(values_[n.ops[1]]);
        break;
      case Op::kZext:
        out = values_[n.ops[0]].zext(n.width);
        break;
      case Op::kSext:
        out = values_[n.ops[0]].sext(n.width);
        break;
    }
  }
  combClean_ = true;
}

void Simulator::step() {
  evalComb();
  // Latch register next-states.
  std::vector<BitVec> nextState(regState_.size());
  for (std::size_t i = 0; i < design_.regs().size(); ++i) {
    nextState[i] = values_[design_.regs()[i].next];
  }
  regState_ = std::move(nextState);
  // Apply memory write ports in declaration order (later wins, matching the
  // lowered mux-chain priority).
  for (std::size_t m = 0; m < design_.mems().size(); ++m) {
    const rtl::MemInfo& info = design_.mems()[m];
    if (info.lowered) continue;
    for (const rtl::MemWritePort& p : info.writePorts) {
      if (values_[p.enable].toBool()) {
        const std::uint64_t addr = values_[p.addr].uint();
        if (addr < memState_[m].size()) {
          memState_[m][addr] = values_[p.data].uint();
        }
      }
    }
  }
  ++cycle_;
  combClean_ = false;
}

}  // namespace upec::sim
