// Cycle-accurate two-valued simulator over the RTL IR.
//
// Executes both unlowered designs (native memory arrays; used by the attack
// demos where memories are large) and lowered designs (used to
// differential-test the formal engine's unrolling against simulation).
//
// Usage:
//   Simulator sim(design);
//   sim.reset();                 // registers take their reset values
//   sim.poke(someInput, value);  // inputs hold their value until re-poked
//   sim.step();                  // evaluate combinational logic, clock edge
//   sim.peek(someSignal);        // value after the last evaluation
#pragma once

#include <cstdint>
#include <vector>

#include "base/bitvec.hpp"
#include "rtl/ir.hpp"

namespace upec::sim {

class Simulator {
 public:
  explicit Simulator(const rtl::Design& design);

  // Loads reset values into all registers and zero-fills memories. Memory
  // contents preloaded with writeMemWord survive only if written after
  // reset().
  void reset();

  void poke(rtl::Sig input, const BitVec& value);
  void poke(rtl::Sig input, std::uint64_t value) {
    poke(input, BitVec(input.width(), value));
  }

  // Value of any node after the most recent evalComb()/step().
  const BitVec& peek(rtl::Sig s) const { return values_[s.id()]; }
  const BitVec& peek(rtl::NodeId id) const { return values_[id]; }

  // Evaluates all combinational logic with the current register/memory/input
  // state (idempotent; step() calls it internally).
  void evalComb();

  // One clock cycle: evaluate, then commit register next-states and memory
  // write ports.
  void step();
  void run(unsigned cycles) {
    for (unsigned i = 0; i < cycles; ++i) step();
  }

  std::uint64_t cycle() const { return cycle_; }

  // Direct state access (testbench backdoor).
  const BitVec& regValue(std::uint32_t regIdx) const { return regState_[regIdx]; }
  void setReg(std::uint32_t regIdx, const BitVec& v);
  std::uint64_t readMemWord(std::uint32_t memId, std::uint64_t addr) const;
  void writeMemWord(std::uint32_t memId, std::uint64_t addr, std::uint64_t value);

  const rtl::Design& design() const { return design_; }

 private:
  const rtl::Design& design_;
  std::vector<rtl::NodeId> topo_;
  std::vector<BitVec> values_;       // per node, after evalComb
  std::vector<BitVec> regState_;     // per register
  std::vector<BitVec> inputState_;   // per node id (inputs only)
  std::vector<std::vector<std::uint64_t>> memState_;  // per (unlowered) memory
  std::uint64_t cycle_ = 0;
  bool combClean_ = false;
};

}  // namespace upec::sim
