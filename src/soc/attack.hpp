// Attack programs from the paper, expressed over the MiniRV SoC.
//
// orcAttackProgram() emits exactly the instruction sequence of paper Fig. 2
// (one probe iteration of the Orc attack). Our cache indexes by word
// address rather than by byte, so one iteration distinguishes the secret's
// cache-index bits; the attacker sweeps testValue over all cache lines and
// detects the RAW-hazard stall through the iteration's cycle count.
//
// meltdownAttackProgram() emits the transient-access part of a
// Meltdown-style attack: the faulting load of the secret followed by a
// dependent load whose (cancelled) refill leaves a secret-dependent cache
// footprint, observable afterwards by prime-and-probe timing.
#pragma once

#include <cstdint>
#include <vector>

#include "riscv/assembler.hpp"
#include "soc/config.hpp"

namespace upec::soc {

struct AttackLayout {
  std::uint32_t protectedByteAddr = 0;   // where the secret lives
  std::uint32_t accessibleByteAddr = 0;  // user array, cache-index-aligned
};

// Paper Fig. 2, one iteration. The program ends parked in a tight loop at
// the trap handler location `handlerByteAddr` (the OS would run there).
std::vector<std::uint32_t> orcAttackProgram(const AttackLayout& layout, unsigned testValue);

// Transient sequence for the Meltdown-style attack: faulting load of the
// secret + dependent load using the secret as an address.
std::vector<std::uint32_t> meltdownTransientProgram(const AttackLayout& layout);

// A probe program: loads `wordAddr` and parks; the caller measures cycles.
std::vector<std::uint32_t> probeProgram(std::uint32_t byteAddr);

// A tiny parked trap handler (spin-in-place), to be loaded at mtvec.
std::vector<std::uint32_t> spinHandler();

}  // namespace upec::soc
