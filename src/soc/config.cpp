#include "soc/config.hpp"

namespace upec::soc {

const char* variantName(SocVariant v) {
  switch (v) {
    case SocVariant::kSecure: return "secure";
    case SocVariant::kOrc: return "orc";
    case SocVariant::kMeltdownStyle: return "meltdown-style";
    case SocVariant::kPmpLockBug: return "pmp-lock-bug";
  }
  return "?";
}

VariantFlags VariantFlags::forVariant(SocVariant v) {
  VariantFlags f;
  switch (v) {
    case SocVariant::kSecure:
      break;
    case SocVariant::kOrc:
      f.fastLoadForward = true;
      f.hazardUsesRawValid = true;
      break;
    case SocVariant::kMeltdownStyle:
      f.fastLoadForward = true;
      f.refillOnKilled = true;
      break;
    case SocVariant::kPmpLockBug:
      f.pmpLockBug = true;
      break;
  }
  return f;
}

SocConfig SocConfig::formalSmall(SocVariant v) {
  SocConfig c;
  c.machine.xlen = 8;
  c.machine.nregs = 8;
  c.machine.imemWords = 16;
  c.machine.dmemWords = 16;
  c.machine.pmpEntries = 2;
  c.machine.pmpLockBug = (v == SocVariant::kPmpLockBug);
  c.cacheLines = 4;
  c.pendingWriteCycles = 3;
  c.refillCycles = 2;
  c.variant = v;
  return c;
}

SocConfig SocConfig::simLarge(SocVariant v) {
  SocConfig c;
  c.machine.xlen = 32;
  c.machine.nregs = 32;
  c.machine.imemWords = 256;
  c.machine.dmemWords = 1024;
  c.machine.pmpEntries = 4;
  c.machine.pmpLockBug = (v == SocVariant::kPmpLockBug);
  c.cacheLines = 16;
  c.pendingWriteCycles = 6;
  c.refillCycles = 8;
  c.variant = v;
  return c;
}

}  // namespace upec::soc
