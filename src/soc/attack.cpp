#include "soc/attack.hpp"

namespace upec::soc {

using riscv::Assembler;

std::vector<std::uint32_t> orcAttackProgram(const AttackLayout& layout, unsigned testValue) {
  Assembler a;
  // Paper Fig. 2 (word-indexed cache: the offset steps by 4 bytes per line):
  //   1: li x1, #protected_addr
  //   2: li x2, #accessible_addr
  //   3: addi x2, x2, #test_value
  //   4: sw x3, 0(x2)
  //   5: lw x4, 0(x1)      <- faults (PMP), but the cache answers first
  //   6: lw x5, 0(x4)      <- transient: address is the secret value
  a.li(1, static_cast<std::int32_t>(layout.protectedByteAddr));
  a.li(2, static_cast<std::int32_t>(layout.accessibleByteAddr));
  a.addi(2, 2, static_cast<std::int32_t>(testValue * 4));
  a.sw(3, 2, 0);
  a.lw(4, 1, 0);
  a.lw(5, 4, 0);
  // Never reached architecturally: the PMP exception transfers control.
  const riscv::Label park = a.newLabel();
  a.bind(park);
  a.j(park);
  return a.finish();
}

std::vector<std::uint32_t> meltdownTransientProgram(const AttackLayout& layout) {
  Assembler a;
  a.li(1, static_cast<std::int32_t>(layout.protectedByteAddr));
  a.lw(4, 1, 0);  // faults; cache hit forwards the secret transiently
  a.lw(5, 4, 0);  // transient miss: refill indexed by the secret value
  const riscv::Label park = a.newLabel();
  a.bind(park);
  a.j(park);
  return a.finish();
}

std::vector<std::uint32_t> probeProgram(std::uint32_t byteAddr) {
  Assembler a;
  a.li(1, static_cast<std::int32_t>(byteAddr));
  a.lw(2, 1, 0);
  const riscv::Label park = a.newLabel();
  a.bind(park);
  a.j(park);
  return a.finish();
}

std::vector<std::uint32_t> spinHandler() {
  Assembler a;
  const riscv::Label park = a.newLabel();
  a.bind(park);
  a.j(park);
  return a.finish();
}

}  // namespace upec::soc
