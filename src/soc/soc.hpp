// The MiniRV SoC generator: an in-order 5-stage pipelined RV32I-subset
// processor with machine/user privilege modes, TOR-mode physical memory
// protection, and a direct-mapped write-back/write-allocate L1 data cache
// with a pipelined core-to-cache interface (pending stores + RAW-hazard
// detection), built in the RTL IR of src/rtl.
//
// Pipeline: IF -> ID -> EX -> MEM -> WB.
//  * branches/jumps resolve in EX (static not-taken, 2-cycle penalty)
//  * full ALU forwarding EX/MEM -> EX and MEM/WB -> EX, plus regfile
//    write-before-read bypass in ID
//  * loads: cache hit responds combinationally in MEM; the response is
//    registered (respBuf) and forwarded from MEM/WB, giving a one-cycle
//    load-use stall — unless the variant enables fastLoadForward, which
//    forwards the raw response wire into EX (the paper Fig. 1 feature)
//  * exceptions (PMP faults, illegal instructions, ecall) and serialising
//    instructions (CSR accesses, mret) take effect in WB and flush all
//    younger stages
//  * CSRs: mtvec, mepc, mcause, mcycle (free-running; user-readable as
//    cycle), pmpcfg0, pmpaddrN
//
// The builder emits the SoC into a caller-provided rtl::Design so that the
// UPEC engine can instantiate two copies in one netlist (the miter of paper
// Fig. 3) with a shared instruction memory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/ir.hpp"
#include "soc/config.hpp"

namespace upec::soc {

// Handles to everything the UPEC engine, the constraints, and the
// testbenches need to observe or constrain. All Sigs live in the Design the
// SoC was built into.
struct SocInstance {
  SocConfig config;
  std::string prefix;

  // --- architectural state ------------------------------------------------
  rtl::Sig pc;
  rtl::Sig mode;  // 1 bit: 1 = machine, 0 = user
  rtl::Sig mtvec, mepc, mcause, mcycle;
  std::vector<rtl::Sig> pmpcfg;   // 8 bits each
  std::vector<rtl::Sig> pmpaddr;  // word-granule, wordAddrBits wide
  std::uint32_t regfileMemId = 0;

  // --- pipeline registers (microarchitectural) -----------------------------
  rtl::Sig ifidValid, ifidPc, ifidInstr;
  rtl::Sig idexValid, idexPc, idexRd, idexRs1, idexRs2, idexRs1Val, idexRs2Val, idexImm;
  rtl::Sig idexAluOp, idexAluSrcImm, idexIsLoad, idexIsStore, idexIsBranch, idexBrFunct3,
      idexIsJal, idexIsJalr, idexIsLui, idexIsAuipc, idexWbEn, idexIsCsr, idexCsrAddr,
      idexCsrOp, idexIsEcall, idexIsMret, idexIllegal;
  rtl::Sig exmemValid, exmemPc, exmemRd, exmemWbEn, exmemIsLoad, exmemIsStore, exmemAluResult,
      exmemStoreData, exmemIsCsr, exmemCsrAddr, exmemCsrOp, exmemCsrWval, exmemIsEcall,
      exmemIsMret, exmemIllegal;
  rtl::Sig memwbValid, memwbPc, memwbRd, memwbWbEn, memwbIsLoad, memwbAluResult, memwbPmpFault,
      memwbIsStoreFault, memwbIsCsr, memwbCsrAddr, memwbCsrOp, memwbCsrWval, memwbIsEcall,
      memwbIsMret, memwbIllegal;
  rtl::Sig respBuf;  // registered cache load response (the paper's "internal buffer")

  // --- cache state ----------------------------------------------------------
  std::vector<rtl::Sig> cacheValid, cacheDirty;  // per line, 1 bit
  std::vector<rtl::Sig> cacheTag;                // per line, tagBits
  std::uint32_t cacheDataMemId = 0;
  rtl::Sig pendingValid, pendingAddr, pendingData, pendingCtr;
  rtl::Sig refillState;  // 2 bits: 0 idle, 1 writeback, 2 fill
  rtl::Sig refillAddr, refillCtr;
  rtl::Sig refillIsKilled;  // set if the refill belongs to a killed request

  // --- memories --------------------------------------------------------------
  std::uint32_t dmemMemId = 0;
  std::uint32_t imemMemId = 0;  // possibly shared with another instance

  // --- observation wires ------------------------------------------------------
  rtl::Sig rawReqValid;   // MEM stage has a load/store this cycle (pre-kill)
  rtl::Sig rawReqIsLoad;
  rtl::Sig rawReqWordAddr;
  rtl::Sig gatedReqValid;  // post-kill request (flush/kill gated)
  rtl::Sig pmpFaultWire;   // PMP rejects the MEM-stage access
  rtl::Sig stall;          // global pipeline stall from the cache
  rtl::Sig flushWB;        // WB-stage redirect (exception / mret / csr)
  rtl::Sig respData;       // combinational cache response wire
  rtl::Sig cacheMonitorOk; // Constraint 2: cache state/protocol sane
  rtl::Sig retireValid;    // an instruction architecturally retires this cycle
  rtl::Sig retirePc;
  rtl::Sig trapTaken;      // a trap (PMP fault / illegal / ecall) commits this cycle

  // Register indices (into design.regs()) created for this instance,
  // excluding memory word registers (attributed via the mem ids above).
  std::vector<std::uint32_t> logicRegs;
};

class SocBuilder {
 public:
  // Builds one SoC instance into `design`, prefixing all names. If
  // sharedImem is non-negative, that memory is used as instruction memory
  // (so a miter's two instances execute the same symbolic program);
  // otherwise a fresh imem is created.
  static SocInstance build(rtl::Design& design, const SocConfig& config,
                           const std::string& prefix, std::int64_t sharedImem = -1);
};

}  // namespace upec::soc
