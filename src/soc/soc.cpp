#include "soc/soc.hpp"

#include <cassert>

#include "riscv/encoding.hpp"

namespace upec::soc {

using rtl::Design;
using rtl::Op;
using rtl::Sig;
using rtl::StateClass;

namespace {

// Selects vec[idx] via a balanced mux tree (little-endian index bits).
Sig selectByIndex(Design& d, const std::vector<Sig>& vec, Sig idx) {
  assert(!vec.empty());
  std::vector<Sig> layer = vec;
  unsigned bit = 0;
  while (layer.size() > 1) {
    std::vector<Sig> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(d.mux(idx.bit(bit), layer[i + 1], layer[i]));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
    ++bit;
  }
  return layer[0];
}

unsigned ctrBits(unsigned maxValue) {
  unsigned b = 1;
  while ((1u << b) <= maxValue) ++b;
  return b;
}

}  // namespace

SocInstance SocBuilder::build(Design& d, const SocConfig& cfg, const std::string& prefix,
                              std::int64_t sharedImem) {
  const VariantFlags flags = VariantFlags::forVariant(cfg.variant);
  const unsigned X = cfg.xlen();
  const unsigned P = cfg.pcBits();
  const unsigned W = cfg.wordAddrBits();
  const unsigned I = cfg.indexBits();
  const unsigned T = cfg.tagBits();
  const unsigned R = cfg.regIdxBits();
  const unsigned nPmp = cfg.machine.pmpEntries;
  assert(cfg.cacheLines >= 2 && T >= 1);
  assert(nPmp >= 2 && nPmp * 8 <= 32);

  SocInstance s;
  s.config = cfg;
  s.prefix = prefix;
  const std::size_t regsBefore = d.regs().size();

  auto nm = [&](const char* n) { return prefix + n; };
  auto C = [&](unsigned w, std::uint64_t v) { return d.constant(w, v); };
  const Sig one1 = C(1, 1), zero1 = C(1, 0);

  // ======================= state elements =================================
  // Architectural. Note on the program counter: the *fetch* pc is
  // microarchitectural — it runs ahead speculatively and is rolled back on
  // flushes; the ISA-level pc is carried by the committing instruction
  // (memwbPc) and manifests architecturally through the register file,
  // CSRs and privilege mode. Classifying the fetch pc as kMicro mirrors
  // how a pipelined design separates speculation from architectural state.
  s.pc = d.reg(P, nm("pc"), StateClass::kMicro);
  s.mode = d.reg(1, nm("mode"), BitVec(1, 1), StateClass::kArch);  // reset: machine
  s.mtvec = d.reg(P, nm("mtvec"), StateClass::kArch);
  s.mepc = d.reg(P, nm("mepc"), StateClass::kArch);
  s.mcause = d.reg(4, nm("mcause"), StateClass::kArch);
  s.mcycle = d.reg(X, nm("mcycle"), StateClass::kArch);
  for (unsigned i = 0; i < nPmp; ++i) {
    s.pmpcfg.push_back(d.reg(8, nm(("pmpcfg" + std::to_string(i)).c_str()), StateClass::kArch));
    // One bit wider than a word address so a TOR top of 2^W (exclusive end
    // of memory) is representable; mirrors riscv::IsaSim::setCsr.
    s.pmpaddr.push_back(
        d.reg(W + 1, nm(("pmpaddr" + std::to_string(i)).c_str()), StateClass::kArch));
  }
  s.regfileMemId = d.addMem(cfg.machine.nregs, X, nm("regfile"), StateClass::kArch);

  // Pipeline registers (microarchitectural).
  s.ifidValid = d.reg(1, nm("ifid_valid"), StateClass::kMicro);
  s.ifidPc = d.reg(P, nm("ifid_pc"), StateClass::kMicro);
  s.ifidInstr = d.reg(32, nm("ifid_instr"), StateClass::kMicro);

  s.idexValid = d.reg(1, nm("idex_valid"), StateClass::kMicro);
  s.idexPc = d.reg(P, nm("idex_pc"), StateClass::kMicro);
  s.idexRd = d.reg(R, nm("idex_rd"), StateClass::kMicro);
  s.idexRs1 = d.reg(R, nm("idex_rs1"), StateClass::kMicro);
  s.idexRs2 = d.reg(R, nm("idex_rs2"), StateClass::kMicro);
  s.idexRs1Val = d.reg(X, nm("idex_rs1val"), StateClass::kMicro);
  s.idexRs2Val = d.reg(X, nm("idex_rs2val"), StateClass::kMicro);
  s.idexImm = d.reg(X, nm("idex_imm"), StateClass::kMicro);
  s.idexAluOp = d.reg(4, nm("idex_aluop"), StateClass::kMicro);
  s.idexAluSrcImm = d.reg(1, nm("idex_alusrcimm"), StateClass::kMicro);
  s.idexIsLoad = d.reg(1, nm("idex_isload"), StateClass::kMicro);
  s.idexIsStore = d.reg(1, nm("idex_isstore"), StateClass::kMicro);
  s.idexIsBranch = d.reg(1, nm("idex_isbranch"), StateClass::kMicro);
  s.idexBrFunct3 = d.reg(3, nm("idex_brfunct3"), StateClass::kMicro);
  s.idexIsJal = d.reg(1, nm("idex_isjal"), StateClass::kMicro);
  s.idexIsJalr = d.reg(1, nm("idex_isjalr"), StateClass::kMicro);
  s.idexIsLui = d.reg(1, nm("idex_islui"), StateClass::kMicro);
  s.idexIsAuipc = d.reg(1, nm("idex_isauipc"), StateClass::kMicro);
  s.idexWbEn = d.reg(1, nm("idex_wben"), StateClass::kMicro);
  s.idexIsCsr = d.reg(1, nm("idex_iscsr"), StateClass::kMicro);
  s.idexCsrAddr = d.reg(12, nm("idex_csraddr"), StateClass::kMicro);
  s.idexCsrOp = d.reg(3, nm("idex_csrop"), StateClass::kMicro);  // funct3 + rs1!=0 encoded below
  s.idexIsEcall = d.reg(1, nm("idex_isecall"), StateClass::kMicro);
  s.idexIsMret = d.reg(1, nm("idex_ismret"), StateClass::kMicro);
  s.idexIllegal = d.reg(1, nm("idex_illegal"), StateClass::kMicro);

  s.exmemValid = d.reg(1, nm("exmem_valid"), StateClass::kMicro);
  s.exmemPc = d.reg(P, nm("exmem_pc"), StateClass::kMicro);
  s.exmemRd = d.reg(R, nm("exmem_rd"), StateClass::kMicro);
  s.exmemWbEn = d.reg(1, nm("exmem_wben"), StateClass::kMicro);
  s.exmemIsLoad = d.reg(1, nm("exmem_isload"), StateClass::kMicro);
  s.exmemIsStore = d.reg(1, nm("exmem_isstore"), StateClass::kMicro);
  s.exmemAluResult = d.reg(X, nm("exmem_aluresult"), StateClass::kMicro);
  s.exmemStoreData = d.reg(X, nm("exmem_storedata"), StateClass::kMicro);
  s.exmemIsCsr = d.reg(1, nm("exmem_iscsr"), StateClass::kMicro);
  s.exmemCsrAddr = d.reg(12, nm("exmem_csraddr"), StateClass::kMicro);
  s.exmemCsrOp = d.reg(3, nm("exmem_csrop"), StateClass::kMicro);
  s.exmemCsrWval = d.reg(X, nm("exmem_csrwval"), StateClass::kMicro);
  s.exmemIsEcall = d.reg(1, nm("exmem_isecall"), StateClass::kMicro);
  s.exmemIsMret = d.reg(1, nm("exmem_ismret"), StateClass::kMicro);
  s.exmemIllegal = d.reg(1, nm("exmem_illegal"), StateClass::kMicro);

  s.memwbValid = d.reg(1, nm("memwb_valid"), StateClass::kMicro);
  s.memwbPc = d.reg(P, nm("memwb_pc"), StateClass::kMicro);
  s.memwbRd = d.reg(R, nm("memwb_rd"), StateClass::kMicro);
  s.memwbWbEn = d.reg(1, nm("memwb_wben"), StateClass::kMicro);
  s.memwbIsLoad = d.reg(1, nm("memwb_isload"), StateClass::kMicro);
  s.memwbAluResult = d.reg(X, nm("memwb_aluresult"), StateClass::kMicro);
  s.memwbPmpFault = d.reg(1, nm("memwb_pmpfault"), StateClass::kMicro);
  s.memwbIsStoreFault = d.reg(1, nm("memwb_isstorefault"), StateClass::kMicro);
  s.memwbIsCsr = d.reg(1, nm("memwb_iscsr"), StateClass::kMicro);
  s.memwbCsrAddr = d.reg(12, nm("memwb_csraddr"), StateClass::kMicro);
  s.memwbCsrOp = d.reg(3, nm("memwb_csrop"), StateClass::kMicro);
  s.memwbCsrWval = d.reg(X, nm("memwb_csrwval"), StateClass::kMicro);
  s.memwbIsEcall = d.reg(1, nm("memwb_isecall"), StateClass::kMicro);
  s.memwbIsMret = d.reg(1, nm("memwb_ismret"), StateClass::kMicro);
  s.memwbIllegal = d.reg(1, nm("memwb_illegal"), StateClass::kMicro);

  s.respBuf = d.reg(X, nm("resp_buf"), StateClass::kMicro);

  // Cache metadata (microarchitectural) and data (memory class).
  for (unsigned i = 0; i < cfg.cacheLines; ++i) {
    const std::string si = std::to_string(i);
    s.cacheValid.push_back(d.reg(1, nm(("cache_valid" + si).c_str()), StateClass::kMicro));
    s.cacheDirty.push_back(d.reg(1, nm(("cache_dirty" + si).c_str()), StateClass::kMicro));
    s.cacheTag.push_back(d.reg(T, nm(("cache_tag" + si).c_str()), StateClass::kMicro));
  }
  s.cacheDataMemId = d.addMem(cfg.cacheLines, X, nm("cache_data"), StateClass::kMemory);
  const unsigned pendCtrW = ctrBits(cfg.pendingWriteCycles);
  const unsigned refCtrW = ctrBits(cfg.refillCycles);
  s.pendingValid = d.reg(1, nm("pending_valid"), StateClass::kMicro);
  s.pendingAddr = d.reg(W, nm("pending_addr"), StateClass::kMicro);
  s.pendingData = d.reg(X, nm("pending_data"), StateClass::kMicro);
  s.pendingCtr = d.reg(pendCtrW, nm("pending_ctr"), StateClass::kMicro);
  s.refillState = d.reg(2, nm("refill_state"), StateClass::kMicro);
  s.refillAddr = d.reg(W, nm("refill_addr"), StateClass::kMicro);
  s.refillCtr = d.reg(refCtrW, nm("refill_ctr"), StateClass::kMicro);
  s.refillIsKilled = d.reg(1, nm("refill_killed"), StateClass::kMicro);

  // Memories.
  s.dmemMemId = d.addMem(cfg.machine.dmemWords, X, nm("dmem"), StateClass::kMemory);
  if (sharedImem >= 0) {
    s.imemMemId = static_cast<std::uint32_t>(sharedImem);
  } else {
    s.imemMemId = d.addMem(cfg.machine.imemWords, 32, prefix + "imem", StateClass::kMemory);
  }

  // ======================= WB stage (oldest first) =========================
  // CSR read value.
  auto csrIs = [&](std::uint32_t a) { return s.memwbCsrAddr.eq(C(12, a)); };
  Sig pmpcfgPacked = s.pmpcfg[0].zext(X);
  for (unsigned i = 1; i < nPmp && 8 * i < X; ++i) {
    pmpcfgPacked = pmpcfgPacked | (s.pmpcfg[i].zext(X) << C(X, 8 * i));
  }
  Sig csrReadVal = C(X, 0);
  csrReadVal = d.mux(csrIs(riscv::kCsrMtvec), s.mtvec.zext(X), csrReadVal);
  csrReadVal = d.mux(csrIs(riscv::kCsrMepc), s.mepc.zext(X), csrReadVal);
  csrReadVal = d.mux(csrIs(riscv::kCsrMcause), s.mcause.zext(X), csrReadVal);
  csrReadVal = d.mux(csrIs(riscv::kCsrMcycle), s.mcycle, csrReadVal);
  csrReadVal = d.mux(csrIs(riscv::kCsrCycle), s.mcycle, csrReadVal);
  csrReadVal = d.mux(csrIs(riscv::kCsrPmpcfg0), pmpcfgPacked, csrReadVal);
  for (unsigned i = 0; i < nPmp; ++i) {
    csrReadVal = d.mux(csrIs(riscv::kCsrPmpaddr0 + i), s.pmpaddr[i].zext(X), csrReadVal);
  }

  // CSR privilege / legality at WB. csrOp encoding: bit1:0 = funct3 low
  // bits (01=rw, 10=rs, 11=rc), bit2 = "write intent" (rw, or rs/rc with
  // rs1 != x0), computed at decode.
  const Sig csrWriteIntent = s.memwbCsrOp.bit(2);
  const Sig csrKnown = csrIs(riscv::kCsrMtvec) | csrIs(riscv::kCsrMepc) |
                       csrIs(riscv::kCsrMcause) | csrIs(riscv::kCsrMcycle) |
                       csrIs(riscv::kCsrCycle) | csrIs(riscv::kCsrPmpcfg0);
  Sig csrKnownAll = csrKnown;
  for (unsigned i = 0; i < nPmp; ++i) csrKnownAll = csrKnownAll | csrIs(riscv::kCsrPmpaddr0 + i);
  const Sig csrPrivOk = d.mux(csrIs(riscv::kCsrCycle), ~csrWriteIntent, s.mode);
  const Sig csrIllegal = s.memwbIsCsr & (~csrKnownAll | ~csrPrivOk);
  const Sig mretIllegal = s.memwbIsMret & ~s.mode;

  // Exception / redirect classification at WB (combinational from memwb).
  const Sig wbFault = s.memwbValid & s.memwbPmpFault;
  const Sig wbIllegal = s.memwbValid & (s.memwbIllegal | csrIllegal | mretIllegal) & ~wbFault;
  const Sig wbEcall = s.memwbValid & s.memwbIsEcall & ~wbFault & ~wbIllegal;
  const Sig wbTrap = wbFault | wbIllegal | wbEcall;
  const Sig wbMret = s.memwbValid & s.memwbIsMret & ~mretIllegal & ~wbFault;
  const Sig wbCsr = s.memwbValid & s.memwbIsCsr & ~csrIllegal & ~wbFault;
  s.flushWB = wbTrap | wbMret | wbCsr;

  Sig trapCause = d.mux(s.memwbIsStoreFault, C(4, riscv::kCauseStoreAccessFault),
                        C(4, riscv::kCauseLoadAccessFault));
  trapCause = d.mux(wbIllegal, C(4, riscv::kCauseIllegalInstr), trapCause);
  trapCause = d.mux(wbEcall, d.mux(s.mode, C(4, riscv::kCauseEcallM), C(4, riscv::kCauseEcallU)),
                    trapCause);

  const Sig pcPlus4WB = (s.memwbPc + C(P, 4)) & C(P, BitVec::mask(P) & ~3ull);
  Sig wbRedirectTarget = pcPlus4WB;                         // csr serialisation
  wbRedirectTarget = d.mux(wbMret, s.mepc, wbRedirectTarget);
  wbRedirectTarget = d.mux(wbTrap, s.mtvec, wbRedirectTarget);

  // ======================= MEM stage / PMP check ===========================
  const Sig memWordAddr = s.exmemAluResult.extract(W + 1, 2);  // phys word address
  s.rawReqValid = s.exmemValid & (s.exmemIsLoad | s.exmemIsStore);
  s.rawReqIsLoad = s.exmemIsLoad;
  s.rawReqWordAddr = memWordAddr;

  // PMP: lowest-numbered matching TOR entry decides; no match => machine
  // only. Mirrors riscv::IsaSim::pmpAllows.
  Sig pmpAllowed = s.mode;  // no-match default
  {
    // Build from the highest entry down so entry 0 ends up outermost.
    const Sig memWordAddrExt = memWordAddr.zext(W + 1);
    std::vector<Sig> match(nPmp), allow(nPmp);
    Sig base = C(W + 1, 0);
    for (unsigned i = 0; i < nPmp; ++i) {
      const Sig active = s.pmpcfg[i].extract(4, 3).eq(C(2, 1));  // A == TOR
      const Sig inRange = base.ule(memWordAddrExt) & memWordAddrExt.ult(s.pmpaddr[i]);
      match[i] = active & inRange;
      const Sig locked = s.pmpcfg[i].bit(7);
      const Sig perm = d.mux(s.exmemIsStore, s.pmpcfg[i].bit(1), s.pmpcfg[i].bit(0));
      allow[i] = (s.mode & ~locked) | perm;
      base = s.pmpaddr[i];
    }
    for (int i = static_cast<int>(nPmp) - 1; i >= 0; --i) {
      pmpAllowed = d.mux(match[i], allow[i], pmpAllowed);
    }
  }
  s.pmpFaultWire = s.rawReqValid & ~pmpAllowed;
  s.gatedReqValid = s.rawReqValid & ~s.flushWB & ~s.pmpFaultWire;

  // ======================= D-cache ==========================================
  const Sig reqIdx = memWordAddr.extract(I - 1, 0);
  const Sig reqTag = memWordAddr.extract(W - 1, I);
  const Sig lineValid = selectByIndex(d, s.cacheValid, reqIdx);
  const Sig lineTag = selectByIndex(d, s.cacheTag, reqIdx);
  const Sig hit = lineValid & lineTag.eq(reqTag);

  const Sig pendingIdx = s.pendingAddr.extract(I - 1, 0);
  const Sig pendingTag = s.pendingAddr.extract(W - 1, I);

  // RAW hazard in the pipelined core-to-cache interface. The Orc variant's
  // comparator observes the raw (pre-kill, pre-PMP) request — the paper's
  // "17 LoC" change.
  const Sig hazardReqLoad = flags.hazardUsesRawValid
                                ? (s.rawReqValid & s.rawReqIsLoad)
                                : (s.gatedReqValid & s.exmemIsLoad);
  const Sig rawHazard = hazardReqLoad & s.pendingValid & reqIdx.eq(pendingIdx);

  // Refill FSM.
  const Sig stIdle = s.refillState.eq(C(2, 0));
  const Sig stWriteback = s.refillState.eq(C(2, 1));
  const Sig stFill = s.refillState.eq(C(2, 2));
  const Sig refillActive = ~stIdle;
  const Sig refIdx = s.refillAddr.extract(I - 1, 0);
  const Sig refTag = s.refillAddr.extract(W - 1, I);
  const Sig refVictimTag = selectByIndex(d, s.cacheTag, refIdx);
  const Sig fillDone = stFill & s.refillCtr.eq(C(refCtrW, 0));
  const Sig refillRespondsNow = fillDone & ~s.refillIsKilled & s.refillAddr.eq(memWordAddr) &
                                s.rawReqValid & s.rawReqIsLoad;

  // Cache response wire: refill completion data has priority over the
  // (stale, missing) array content.
  const Sig dataAtIdx = d.memRead(s.cacheDataMemId, reqIdx);
  const Sig dmemAtRefill = d.memRead(s.dmemMemId, s.refillAddr);
  s.respData = d.mux(refillRespondsNow & ~hit, dmemAtRefill, dataAtIdx);

  const Sig loadReq = s.gatedReqValid & s.exmemIsLoad;
  const Sig storeReq = s.gatedReqValid & s.exmemIsStore;

  // Load servicing.
  const Sig loadServiced = loadReq & (hit | refillRespondsNow) & ~rawHazard;
  // Store acceptance into the pending-write slot.
  const Sig storeAccept = storeReq & ~s.pendingValid & stIdle;

  // Refill start condition. Secure designs only refill live, legal
  // requests; the Meltdown-style variant also refills killed/faulting ones.
  const Sig gatedRefillStart = loadReq & ~hit & ~rawHazard & stIdle;
  const Sig rawRefillStart =
      s.rawReqValid & s.rawReqIsLoad & ~hit & ~rawHazard & stIdle;
  const Sig refillStart = flags.refillOnKilled ? rawRefillStart : gatedRefillStart;
  const Sig refillStartKilled = refillStart & ~(s.gatedReqValid & s.exmemIsLoad);
  // An exception flush cancels a refill in flight unless the variant keeps
  // it running (paper Sec. VII: "cache line refill is not canceled").
  const Sig refillCancel =
      flags.refillOnKilled ? zero1 : (s.flushWB & refillActive & s.refillIsKilled);

  const Sig victimAtRef = selectByIndex(d, s.cacheValid, refIdx);
  const Sig victimDirtyAtRef = selectByIndex(d, s.cacheDirty, refIdx);
  const Sig startVictimIdx = reqIdx;  // refill target line at start time
  const Sig startVictimNeedsWb = selectByIndex(d, s.cacheValid, startVictimIdx) &
                                 selectByIndex(d, s.cacheDirty, startVictimIdx);

  // Refill state transitions.
  Sig refillStateNext = s.refillState;
  refillStateNext = d.mux(stWriteback, C(2, 2), refillStateNext);
  refillStateNext = d.mux(fillDone, C(2, 0), refillStateNext);
  refillStateNext =
      d.mux(refillStart, d.mux(startVictimNeedsWb, C(2, 1), C(2, 2)), refillStateNext);
  refillStateNext = d.mux(refillCancel, C(2, 0), refillStateNext);

  Sig refillCtrNext = d.mux(stFill & ~s.refillCtr.eq(C(refCtrW, 0)),
                            s.refillCtr - C(refCtrW, 1), s.refillCtr);
  refillCtrNext = d.mux(refillStart, C(refCtrW, cfg.refillCycles - 1), refillCtrNext);

  d.connect(s.refillState, refillStateNext);
  d.connect(s.refillAddr, d.mux(refillStart, memWordAddr, s.refillAddr));
  d.connect(s.refillCtr, refillCtrNext);
  d.connect(s.refillIsKilled,
            d.mux(refillStart, refillStartKilled, d.mux(fillDone, zero1, s.refillIsKilled)));

  // Pending store slot: the counter free-runs so the write completes on
  // schedule even while the core is stalled (this is what makes the Orc
  // stall length depend on *when* the probing load arrives).
  const Sig pendingDone = s.pendingValid & s.pendingCtr.eq(C(pendCtrW, 0));
  Sig pendingValidNext = d.mux(pendingDone, zero1, s.pendingValid);
  pendingValidNext = d.mux(storeAccept, one1, pendingValidNext);
  Sig pendingCtrNext = d.mux(s.pendingValid & ~s.pendingCtr.eq(C(pendCtrW, 0)),
                             s.pendingCtr - C(pendCtrW, 1), s.pendingCtr);
  pendingCtrNext = d.mux(storeAccept, C(pendCtrW, cfg.pendingWriteCycles - 1), pendingCtrNext);
  d.connect(s.pendingValid, pendingValidNext);
  d.connect(s.pendingCtr, pendingCtrNext);
  d.connect(s.pendingAddr, d.mux(storeAccept, memWordAddr, s.pendingAddr));
  d.connect(s.pendingData, d.mux(storeAccept, s.exmemStoreData, s.pendingData));

  // Pending-write completion: write-allocate when the line is free or
  // matches; write around a dirty conflicting victim.
  const Sig pVictimValid = selectByIndex(d, s.cacheValid, pendingIdx);
  const Sig pVictimDirty = selectByIndex(d, s.cacheDirty, pendingIdx);
  const Sig pVictimTag = selectByIndex(d, s.cacheTag, pendingIdx);
  const Sig pConflict = pVictimValid & pVictimDirty & pVictimTag.ne(pendingTag);
  const Sig storeAllocate = pendingDone & ~pConflict;
  const Sig storeWriteAround = pendingDone & pConflict;

  // Cache metadata updates.
  const Sig refillCommit = fillDone & ~refillCancel;
  for (unsigned i = 0; i < cfg.cacheLines; ++i) {
    const Sig isRef = refIdx.eq(C(I, i)) & refillCommit;
    const Sig isAlloc = pendingIdx.eq(C(I, i)) & storeAllocate;
    Sig vNext = s.cacheValid[i];
    vNext = d.mux(isRef | isAlloc, one1, vNext);
    Sig dirtyNext = s.cacheDirty[i];
    dirtyNext = d.mux(isRef, zero1, dirtyNext);
    dirtyNext = d.mux(isAlloc, one1, dirtyNext);
    Sig tagNext = s.cacheTag[i];
    tagNext = d.mux(isRef, refTag, tagNext);
    tagNext = d.mux(isAlloc, pendingTag, tagNext);
    d.connect(s.cacheValid[i], vNext);
    d.connect(s.cacheDirty[i], dirtyNext);
    d.connect(s.cacheTag[i], tagNext);
  }
  // Cache data array writes: refill fill and store allocate.
  d.memWrite(s.cacheDataMemId, refillCommit, refIdx, dmemAtRefill);
  d.memWrite(s.cacheDataMemId, storeAllocate, pendingIdx, s.pendingData);

  // Main memory writes: dirty-victim writeback during the WB state, and
  // write-around stores.
  const Sig victimWbAddr = refVictimTag.concat(refIdx);
  const Sig victimData = d.memRead(s.cacheDataMemId, refIdx);
  d.memWrite(s.dmemMemId, stWriteback & victimAtRef & victimDirtyAtRef, victimWbAddr, victimData);
  d.memWrite(s.dmemMemId, storeWriteAround, s.pendingAddr, s.pendingData);

  // Global stall: unserviced live request, plus the variant-dependent
  // raw-request hazard stall (the Orc covert channel).
  const Sig stallLive = (loadReq & ~loadServiced) | (storeReq & ~storeAccept);
  const Sig stallOrc = flags.hazardUsesRawValid ? rawHazard : zero1;
  s.stall = stallLive | stallOrc;

  // Response buffer: latches the cache answer for any load request in the
  // MEM stage — including PMP-faulting hits. This is the "internal buffer
  // (inaccessible to software)" of paper Sec. III and the secure design's
  // P-alert register.
  const Sig respondRaw = s.rawReqValid & s.rawReqIsLoad & (hit | refillRespondsNow) & ~rawHazard;
  d.connect(s.respBuf, d.mux(respondRaw, s.respData, s.respBuf));

  // Cache monitor (Constraint 2): counters in range, FSM state legal,
  // and a live fill targets the line its address selects.
  s.cacheMonitorOk = ~s.refillState.eq(C(2, 3)) &
                     (~s.pendingValid | s.pendingCtr.ule(C(pendCtrW, cfg.pendingWriteCycles))) &
                     (stIdle | s.refillCtr.ule(C(refCtrW, cfg.refillCycles)));

  // ======================= ID stage =========================================
  const Sig instr = s.ifidInstr;
  const Sig opcode = instr.extract(6, 0);
  auto opIs = [&](std::uint32_t o) { return opcode.eq(C(7, o)); };
  const Sig isLui = opIs(riscv::kOpLui);
  const Sig isAuipc = opIs(riscv::kOpAuipc);
  const Sig isJal = opIs(riscv::kOpJal);
  const Sig isJalr = opIs(riscv::kOpJalr);
  const Sig isBranch = opIs(riscv::kOpBranch);
  const Sig isLoad = opIs(riscv::kOpLoad);
  const Sig isStore = opIs(riscv::kOpStore);
  const Sig isOpImm = opIs(riscv::kOpImm);
  const Sig isOpReg = opIs(riscv::kOpReg);
  const Sig isSystem = opIs(riscv::kOpSystem);
  const Sig isFence = opIs(riscv::kOpMiscMem);

  const Sig funct3 = instr.extract(14, 12);
  const Sig funct7 = instr.extract(31, 25);
  const Sig rdField = instr.extract(11, 7);
  const Sig rs1Field = instr.extract(19, 15);
  const Sig rs2Field = instr.extract(24, 20);
  const Sig rd = rdField.extract(R - 1, 0);
  const Sig rs1 = rs1Field.extract(R - 1, 0);
  const Sig rs2 = rs2Field.extract(R - 1, 0);

  const Sig isEcall = isSystem & instr.eq(d.constant(32, 0x00000073u));
  const Sig isMret = isSystem & instr.eq(d.constant(32, 0x30200073u));
  const Sig isCsr = isSystem & (funct3.eq(C(3, 1)) | funct3.eq(C(3, 2)) | funct3.eq(C(3, 3)));

  // Immediates, built at 32 bits and truncated to XLEN.
  const Sig immI32 = instr.extract(31, 20).sext(32);
  const Sig immS32 = instr.extract(31, 25).concat(instr.extract(11, 7)).sext(32);
  const Sig immB32 = instr.bit(31)
                         .concat(instr.bit(7))
                         .concat(instr.extract(30, 25))
                         .concat(instr.extract(11, 8))
                         .concat(C(1, 0))
                         .sext(32);
  const Sig immU32 = instr.extract(31, 12).concat(C(12, 0));
  const Sig immJ32 = instr.bit(31)
                         .concat(instr.extract(19, 12))
                         .concat(instr.bit(20))
                         .concat(instr.extract(30, 21))
                         .concat(C(1, 0))
                         .sext(32);
  Sig imm32 = immI32;
  imm32 = d.mux(isStore, immS32, imm32);
  imm32 = d.mux(isBranch, immB32, imm32);
  imm32 = d.mux(isLui | isAuipc, immU32, imm32);
  imm32 = d.mux(isJal, immJ32, imm32);
  const Sig imm = imm32.extract(X - 1, 0);

  // ALU op encoding: 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 sll, 6 srl,
  // 7 sra, 8 slt, 9 sltu.
  Sig aluOp = C(4, 0);
  {
    const Sig alt = funct7.bit(5);
    Sig opArith = C(4, 0);
    opArith = d.mux(funct3.eq(C(3, 0)), d.mux(alt & isOpReg, C(4, 1), C(4, 0)), opArith);
    opArith = d.mux(funct3.eq(C(3, 1)), C(4, 5), opArith);
    opArith = d.mux(funct3.eq(C(3, 2)), C(4, 8), opArith);
    opArith = d.mux(funct3.eq(C(3, 3)), C(4, 9), opArith);
    opArith = d.mux(funct3.eq(C(3, 4)), C(4, 4), opArith);
    opArith = d.mux(funct3.eq(C(3, 5)), d.mux(alt, C(4, 7), C(4, 6)), opArith);
    opArith = d.mux(funct3.eq(C(3, 6)), C(4, 3), opArith);
    opArith = d.mux(funct3.eq(C(3, 7)), C(4, 2), opArith);
    aluOp = d.mux(isOpImm | isOpReg, opArith, aluOp);  // others default to add
  }
  const Sig aluSrcImm = isOpImm | isLoad | isStore | isLui | isAuipc | isJalr;

  const Sig wbEn = isLui | isAuipc | isJal | isJalr | isOpImm | isOpReg | isLoad | isCsr;

  // Illegal-instruction detection for the implemented subset.
  const Sig knownOpcode = isLui | isAuipc | isJal | isJalr | isBranch | isLoad | isStore |
                          isOpImm | isOpReg | isSystem | isFence;
  const Sig branchF3Bad = isBranch & (funct3.eq(C(3, 2)) | funct3.eq(C(3, 3)));
  const Sig loadF3Bad = isLoad & funct3.ne(C(3, 2));
  const Sig storeF3Bad = isStore & funct3.ne(C(3, 2));
  const Sig systemBad = isSystem & ~isEcall & ~isMret & ~isCsr;
  const Sig illegal = ~knownOpcode | branchF3Bad | loadF3Bad | storeF3Bad | systemBad;

  const Sig usesRs1 = isJalr | isBranch | isLoad | isStore | isOpImm | isOpReg | isCsr;
  const Sig usesRs2 = isBranch | isStore | isOpReg;

  // Regfile read with x0 hardwired to zero and write-before-read bypass.
  const Sig rfRead1 = d.memRead(s.regfileMemId, rs1);
  const Sig rfRead2 = d.memRead(s.regfileMemId, rs2);

  // (WB write port wiring appears below once the WB data is known.)

  // ======================= EX stage =========================================
  // Forwarding network. Priority: EX/MEM ALU result (youngest), then the
  // raw cache response wire (fastLoadForward variants only), then MEM/WB.
  const Sig memwbWbData = d.mux(s.memwbIsLoad, s.respBuf, s.memwbAluResult);
  const Sig memwbFwdOk = s.memwbValid & s.memwbWbEn & ~s.memwbPmpFault & ~s.memwbIllegal &
                         ~s.memwbIsCsr & s.memwbRd.ne(C(R, 0));
  const Sig exmemFwdOk = s.exmemValid & s.exmemWbEn & ~s.exmemIsLoad & ~s.exmemIsCsr &
                         s.exmemRd.ne(C(R, 0));
  const Sig fastFwdOk = (flags.fastLoadForward ? one1 : zero1) & s.exmemValid & s.exmemIsLoad &
                        s.exmemRd.ne(C(R, 0));

  auto forward = [&](Sig idxReg, Sig baseVal) {
    Sig v = baseVal;
    v = d.mux(memwbFwdOk & s.memwbRd.eq(idxReg), memwbWbData, v);
    v = d.mux(fastFwdOk & s.exmemRd.eq(idxReg), s.respData, v);
    v = d.mux(exmemFwdOk & s.exmemRd.eq(idxReg), s.exmemAluResult, v);
    return d.mux(idxReg.eq(C(R, 0)), C(X, 0), v);
  };
  const Sig exRs1 = forward(s.idexRs1, s.idexRs1Val);
  const Sig exRs2 = forward(s.idexRs2, s.idexRs2Val);

  const Sig aluB = d.mux(s.idexAluSrcImm, s.idexImm, exRs2);
  const Sig shamt = aluB.extract(4 < X ? 4 : X - 1, 0).zext(X);
  Sig alu = exRs1 + aluB;
  auto aluIs = [&](unsigned op) { return s.idexAluOp.eq(C(4, op)); };
  alu = d.mux(aluIs(1), exRs1 - aluB, alu);
  alu = d.mux(aluIs(2), exRs1 & aluB, alu);
  alu = d.mux(aluIs(3), exRs1 | aluB, alu);
  alu = d.mux(aluIs(4), exRs1 ^ aluB, alu);
  alu = d.mux(aluIs(5), exRs1 << shamt, alu);
  alu = d.mux(aluIs(6), exRs1 >> shamt, alu);
  alu = d.mux(aluIs(7), d.binary(Op::kAshr, exRs1, shamt), alu);
  alu = d.mux(aluIs(8), exRs1.slt(aluB).zext(X), alu);
  alu = d.mux(aluIs(9), exRs1.ult(aluB).zext(X), alu);

  const Sig pcX = s.idexPc.zext(X);
  const Sig pcPlus4X = ((s.idexPc + C(P, 4)) & C(P, BitVec::mask(P) & ~3ull)).zext(X);
  Sig exResult = alu;
  exResult = d.mux(s.idexIsLui, s.idexImm, exResult);
  exResult = d.mux(s.idexIsAuipc, pcX + s.idexImm, exResult);
  exResult = d.mux(s.idexIsJal | s.idexIsJalr, pcPlus4X, exResult);

  // Branch resolution.
  Sig brCond = exRs1.eq(exRs2);
  auto f3Is = [&](unsigned v) { return s.idexBrFunct3.eq(C(3, v)); };
  brCond = d.mux(f3Is(1), exRs1.ne(exRs2), brCond);
  brCond = d.mux(f3Is(4), exRs1.slt(exRs2), brCond);
  brCond = d.mux(f3Is(5), ~exRs1.slt(exRs2), brCond);
  brCond = d.mux(f3Is(6), exRs1.ult(exRs2), brCond);
  brCond = d.mux(f3Is(7), ~exRs1.ult(exRs2), brCond);

  const Sig exRedirect =
      s.idexValid & ((s.idexIsBranch & brCond) | s.idexIsJal | s.idexIsJalr);
  const Sig pcMaskAligned = C(P, BitVec::mask(P) & ~3ull);
  const Sig brTarget = (s.idexPc + s.idexImm.extract(P - 1, 0)) & pcMaskAligned;
  const Sig jalrTarget = (exRs1 + s.idexImm).extract(P - 1, 0) & pcMaskAligned;
  const Sig exRedirectTarget = d.mux(s.idexIsJalr, jalrTarget, brTarget);

  // Load-use interlock (absent in fastLoadForward variants).
  const Sig loadUseRaw = s.idexValid & s.idexIsLoad & s.idexRd.ne(C(R, 0)) &
                         ((usesRs1 & s.idexRd.eq(rs1)) | (usesRs2 & s.idexRd.eq(rs2))) &
                         s.ifidValid;
  const Sig loadUse = flags.fastLoadForward ? zero1 : loadUseRaw;

  // ======================= WB commit effects ================================
  const Sig commit = ~s.stall;  // WB actions happen only in un-stalled cycles

  // CSR write data (modify-by-op), then per-CSR application with locks.
  const Sig csrOldVal = csrReadVal;
  Sig csrNewVal = s.memwbCsrWval;
  csrNewVal = d.mux(s.memwbCsrOp.extract(1, 0).eq(C(2, 2)), csrOldVal | s.memwbCsrWval, csrNewVal);
  csrNewVal = d.mux(s.memwbCsrOp.extract(1, 0).eq(C(2, 3)), csrOldVal & ~s.memwbCsrWval, csrNewVal);
  const Sig csrDoWrite = commit & wbCsr & csrWriteIntent;

  auto csrWriteTo = [&](std::uint32_t addr) { return csrDoWrite & csrIs(addr); };

  d.connect(s.mtvec, d.mux(csrWriteTo(riscv::kCsrMtvec),
                           csrNewVal.extract(P - 1, 0) & pcMaskAligned, s.mtvec));
  Sig mepcNext = d.mux(csrWriteTo(riscv::kCsrMepc), csrNewVal.extract(P - 1, 0) & pcMaskAligned,
                       s.mepc);
  mepcNext = d.mux(commit & wbTrap, s.memwbPc, mepcNext);
  d.connect(s.mepc, mepcNext);
  Sig mcauseNext = d.mux(csrWriteTo(riscv::kCsrMcause), csrNewVal.extract(3, 0), s.mcause);
  mcauseNext = d.mux(commit & wbTrap, trapCause, mcauseNext);
  d.connect(s.mcause, mcauseNext);
  d.connect(s.mcycle,
            d.mux(csrWriteTo(riscv::kCsrMcycle), csrNewVal, s.mcycle + C(X, 1)));

  // PMP CSR writes with lock semantics (and the deliberate bug variant).
  for (unsigned i = 0; i < nPmp; ++i) {
    const Sig cfgLocked = s.pmpcfg[i].bit(7);
    const Sig newByte = (csrNewVal >> C(X, 8 * i)).extract(7, 0);
    d.connect(s.pmpcfg[i],
              d.mux(csrWriteTo(riscv::kCsrPmpcfg0) & ~cfgLocked, newByte, s.pmpcfg[i]));

    Sig addrLocked = cfgLocked;
    if (!flags.pmpLockBug && i + 1 < nPmp) {
      // ISA rule: a locked TOR entry locks the pmpaddr of the entry below.
      const Sig upLocked = s.pmpcfg[i + 1].bit(7);
      const Sig upTor = s.pmpcfg[i + 1].extract(4, 3).eq(C(2, 1));
      addrLocked = addrLocked | (upLocked & upTor);
    }
    d.connect(s.pmpaddr[i], d.mux(csrWriteTo(riscv::kCsrPmpaddr0 + i) & ~addrLocked,
                                  csrNewVal.extract(W, 0), s.pmpaddr[i]));
  }

  // Mode transitions.
  Sig modeNext = s.mode;
  modeNext = d.mux(commit & wbMret, zero1, modeNext);
  modeNext = d.mux(commit & wbTrap, one1, modeNext);
  d.connect(s.mode, modeNext);

  // Regfile write port.
  const Sig wbWriteEn = commit & s.memwbValid & s.memwbWbEn & ~wbFault & ~wbIllegal & ~wbEcall &
                        s.memwbRd.ne(C(R, 0));
  const Sig wbData = d.mux(wbCsr, csrOldVal, memwbWbData);
  d.memWrite(s.regfileMemId, wbWriteEn, s.memwbRd, wbData);

  s.retireValid = commit & s.memwbValid & ~wbFault & ~wbIllegal & ~wbEcall;
  s.retirePc = s.memwbPc;
  s.trapTaken = commit & wbTrap;

  // Regfile read bypass in ID (write and read in the same cycle).
  const Sig id1 = d.mux(wbWriteEn & s.memwbRd.eq(rs1), wbData,
                        d.mux(rs1.eq(C(R, 0)), C(X, 0), rfRead1));
  const Sig id2 = d.mux(wbWriteEn & s.memwbRd.eq(rs2), wbData,
                        d.mux(rs2.eq(C(R, 0)), C(X, 0), rfRead2));

  // ======================= IF stage / next PC ===============================
  const Sig imemInstr = d.memRead(s.imemMemId, s.pc.extract(P - 1, 2));

  Sig pcNext = (s.pc + C(P, 4)) & pcMaskAligned;
  pcNext = d.mux(loadUse, s.pc, pcNext);
  pcNext = d.mux(exRedirect, exRedirectTarget, pcNext);
  pcNext = d.mux(s.flushWB, wbRedirectTarget, pcNext);
  pcNext = d.mux(s.stall, s.pc, pcNext);
  d.connect(s.pc, pcNext);

  // IF/ID.
  const Sig killIfid = s.flushWB | exRedirect;
  Sig ifidValidNext = one1;
  ifidValidNext = d.mux(loadUse, s.ifidValid, ifidValidNext);
  ifidValidNext = d.mux(killIfid, zero1, ifidValidNext);
  ifidValidNext = d.mux(s.stall, s.ifidValid, ifidValidNext);
  d.connect(s.ifidValid, ifidValidNext);
  const Sig holdIfid = s.stall | (loadUse & ~killIfid);
  d.connect(s.ifidPc, d.mux(holdIfid, s.ifidPc, s.pc));
  d.connect(s.ifidInstr, d.mux(holdIfid, s.ifidInstr, imemInstr));

  // ID/EX.
  Sig idexValidNext = s.ifidValid;
  idexValidNext = d.mux(loadUse, zero1, idexValidNext);  // bubble
  idexValidNext = d.mux(s.flushWB | exRedirect, zero1, idexValidNext);
  idexValidNext = d.mux(s.stall, s.idexValid, idexValidNext);
  d.connect(s.idexValid, idexValidNext);
  auto latchIdex = [&](Sig reg, Sig value) { d.connect(reg, d.mux(s.stall, reg, value)); };
  latchIdex(s.idexPc, s.ifidPc);
  latchIdex(s.idexRd, rd);
  latchIdex(s.idexRs1, rs1);
  latchIdex(s.idexRs2, rs2);
  latchIdex(s.idexRs1Val, id1);
  latchIdex(s.idexRs2Val, id2);
  latchIdex(s.idexImm, imm);
  latchIdex(s.idexAluOp, aluOp);
  latchIdex(s.idexAluSrcImm, aluSrcImm);
  latchIdex(s.idexIsLoad, isLoad);
  latchIdex(s.idexIsStore, isStore);
  latchIdex(s.idexIsBranch, isBranch);
  latchIdex(s.idexBrFunct3, funct3);
  latchIdex(s.idexIsJal, isJal);
  latchIdex(s.idexIsJalr, isJalr);
  latchIdex(s.idexIsLui, isLui);
  latchIdex(s.idexIsAuipc, isAuipc);
  latchIdex(s.idexWbEn, wbEn);
  latchIdex(s.idexIsCsr, isCsr);
  latchIdex(s.idexCsrAddr, instr.extract(31, 20));
  // csrOp: funct3 low bits + write intent (csrrw always; csrrs/rc if rs1!=0).
  const Sig csrWriteIntentId =
      funct3.extract(1, 0).eq(C(2, 1)) | rs1Field.ne(C(5, 0));
  latchIdex(s.idexCsrOp, csrWriteIntentId.concat(funct3.extract(1, 0)));
  latchIdex(s.idexIsEcall, isEcall);
  latchIdex(s.idexIsMret, isMret);
  latchIdex(s.idexIllegal, illegal);

  // EX/MEM.
  Sig exmemValidNext = s.idexValid;
  exmemValidNext = d.mux(s.flushWB, zero1, exmemValidNext);
  exmemValidNext = d.mux(s.stall, s.exmemValid, exmemValidNext);
  d.connect(s.exmemValid, exmemValidNext);
  auto latchExmem = [&](Sig reg, Sig value) { d.connect(reg, d.mux(s.stall, reg, value)); };
  latchExmem(s.exmemPc, s.idexPc);
  latchExmem(s.exmemRd, s.idexRd);
  latchExmem(s.exmemWbEn, s.idexWbEn);
  latchExmem(s.exmemIsLoad, s.idexIsLoad);
  latchExmem(s.exmemIsStore, s.idexIsStore);
  latchExmem(s.exmemAluResult, exResult);
  latchExmem(s.exmemStoreData, exRs2);
  latchExmem(s.exmemIsCsr, s.idexIsCsr);
  latchExmem(s.exmemCsrAddr, s.idexCsrAddr);
  latchExmem(s.exmemCsrOp, s.idexCsrOp);
  latchExmem(s.exmemCsrWval, exRs1);
  latchExmem(s.exmemIsEcall, s.idexIsEcall);
  latchExmem(s.exmemIsMret, s.idexIsMret);
  latchExmem(s.exmemIllegal, s.idexIllegal);

  // MEM/WB.
  Sig memwbValidNext = s.exmemValid;
  memwbValidNext = d.mux(s.flushWB, zero1, memwbValidNext);
  memwbValidNext = d.mux(s.stall, s.memwbValid, memwbValidNext);
  d.connect(s.memwbValid, memwbValidNext);
  auto latchMemwb = [&](Sig reg, Sig value) { d.connect(reg, d.mux(s.stall, reg, value)); };
  latchMemwb(s.memwbPc, s.exmemPc);
  latchMemwb(s.memwbRd, s.exmemRd);
  latchMemwb(s.memwbWbEn, s.exmemWbEn);
  latchMemwb(s.memwbIsLoad, s.exmemIsLoad);
  latchMemwb(s.memwbAluResult, s.exmemAluResult);
  latchMemwb(s.memwbPmpFault, s.pmpFaultWire);
  latchMemwb(s.memwbIsStoreFault, s.pmpFaultWire & s.exmemIsStore);
  latchMemwb(s.memwbIsCsr, s.exmemIsCsr);
  latchMemwb(s.memwbCsrAddr, s.exmemCsrAddr);
  latchMemwb(s.memwbCsrOp, s.exmemCsrOp);
  latchMemwb(s.memwbCsrWval, s.exmemCsrWval);
  latchMemwb(s.memwbIsEcall, s.exmemIsEcall);
  latchMemwb(s.memwbIsMret, s.exmemIsMret);
  latchMemwb(s.memwbIllegal, s.exmemIllegal);

  // Record the logic registers created for this instance.
  for (std::size_t i = regsBefore; i < d.regs().size(); ++i) {
    s.logicRegs.push_back(static_cast<std::uint32_t>(i));
  }
  return s;
}

}  // namespace upec::soc
