#include "soc/testbench.hpp"

#include <cassert>

#include "riscv/encoding.hpp"

namespace upec::soc {

SocTestbench::SocTestbench(const SocConfig& config)
    : config_(config), design_("soc_tb") {
  inst_ = SocBuilder::build(design_, config, "");
  sim_ = std::make_unique<sim::Simulator>(design_);
}

void SocTestbench::loadProgram(const std::vector<std::uint32_t>& words, std::uint32_t baseWord) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    sim_->writeMemWord(inst_.imemMemId, baseWord + i, words[i]);
  }
}

void SocTestbench::setDmemWord(std::uint32_t wordAddr, std::uint32_t value) {
  sim_->writeMemWord(inst_.dmemMemId, wordAddr, value);
}

std::uint32_t SocTestbench::dmemWord(std::uint32_t wordAddr) const {
  return static_cast<std::uint32_t>(sim_->readMemWord(inst_.dmemMemId, wordAddr));
}

void SocTestbench::preloadCacheLine(std::uint32_t wordAddr, std::uint32_t data, bool dirty) {
  const unsigned idx = wordAddr & (config_.cacheLines - 1);
  const unsigned tag = wordAddr >> config_.indexBits();
  setRegOf(inst_.cacheValid[idx], 1);
  setRegOf(inst_.cacheDirty[idx], dirty ? 1 : 0);
  setRegOf(inst_.cacheTag[idx], tag);
  sim_->writeMemWord(inst_.cacheDataMemId, idx, data);
}

void SocTestbench::step() {
  sim_->evalComb();
  if (sim_->peek(inst_.retireValid).toBool()) {
    commits_.push_back({static_cast<std::uint32_t>(sim_->peek(inst_.retirePc).uint()), false});
  } else if (sim_->peek(inst_.trapTaken).toBool()) {
    commits_.push_back({static_cast<std::uint32_t>(sim_->peek(inst_.memwbPc).uint()), true});
  }
  sim_->step();
}

void SocTestbench::run(unsigned cycles) {
  for (unsigned i = 0; i < cycles; ++i) step();
}

unsigned SocTestbench::runUntilEvents(std::size_t events, unsigned maxCycles) {
  unsigned used = 0;
  while (commits_.size() < events && used < maxCycles) {
    step();
    ++used;
  }
  return used;
}

BitVec SocTestbench::regOf(rtl::Sig s) const {
  return sim_->regValue(design_.regIndexOf(s.id()));
}

void SocTestbench::setRegOf(rtl::Sig s, std::uint64_t v) {
  sim_->setReg(design_.regIndexOf(s.id()), BitVec(s.width(), v));
}

std::uint32_t SocTestbench::reg(unsigned i) const {
  if (i == 0) return 0;
  return static_cast<std::uint32_t>(sim_->readMemWord(inst_.regfileMemId, i));
}

std::uint32_t SocTestbench::pc() { return static_cast<std::uint32_t>(regOf(inst_.pc).uint()); }
bool SocTestbench::machineMode() { return regOf(inst_.mode).toBool(); }
std::uint32_t SocTestbench::csrMcause() {
  return static_cast<std::uint32_t>(regOf(inst_.mcause).uint());
}
std::uint32_t SocTestbench::csrMepc() {
  return static_cast<std::uint32_t>(regOf(inst_.mepc).uint());
}
std::uint32_t SocTestbench::csrMtvec() {
  return static_cast<std::uint32_t>(regOf(inst_.mtvec).uint());
}
void SocTestbench::setCsrMtvec(std::uint32_t v) { setRegOf(inst_.mtvec, v); }

void SocTestbench::protectFromWord(std::uint32_t boundaryWord, std::uint32_t topWord) {
  using namespace riscv;
  setRegOf(inst_.pmpcfg[0], kPmpATor | kPmpR | kPmpW);
  setRegOf(inst_.pmpaddr[0], boundaryWord);
  setRegOf(inst_.pmpcfg[1], kPmpATor | kPmpL);  // locked, no R/W: no access at all
  setRegOf(inst_.pmpaddr[1], topWord);
}

void SocTestbench::setMode(bool machine) { setRegOf(inst_.mode, machine ? 1 : 0); }
void SocTestbench::setPc(std::uint32_t pc) { setRegOf(inst_.pc, pc); }

void SocTestbench::setReg(unsigned i, std::uint32_t value) {
  assert(i != 0 && i < config_.machine.nregs);
  sim_->writeMemWord(inst_.regfileMemId, i, value);
}

bool SocTestbench::cacheLineValid(unsigned line) { return regOf(inst_.cacheValid[line]).toBool(); }
std::uint32_t SocTestbench::cacheLineTag(unsigned line) {
  return static_cast<std::uint32_t>(regOf(inst_.cacheTag[line]).uint());
}
std::uint32_t SocTestbench::cacheLineData(unsigned line) const {
  return static_cast<std::uint32_t>(sim_->readMemWord(inst_.cacheDataMemId, line));
}

}  // namespace upec::soc
