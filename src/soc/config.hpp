// Configuration of the MiniRV SoC generator.
//
// The same generator serves two deployments:
//  * small formal configurations (narrow XLEN, few cache lines, small
//    memories) that keep the UPEC miter tractable for the SAT engine, and
//  * larger simulation configurations for the attack demonstrations.
//
// The security-relevant microarchitectural design decisions from the paper
// are captured as variant flags (see SocVariant): the original RocketChip
// design corresponds to kSecure; the paper's two deliberately-weakened
// designs correspond to kOrc and kMeltdownStyle; kPmpLockBug reproduces the
// real PMP lock-bypass bug UPEC found in RocketChip (Sec. VII-C).
#pragma once

#include <string>

#include "riscv/isa_sim.hpp"

namespace upec::soc {

enum class SocVariant {
  kSecure,         // baseline: all transactions of killed instructions cancelled
  kOrc,            // cache response buffer bypassed: RAW-hazard stall leaks timing
  kMeltdownStyle,  // cache line refill of killed/faulting accesses not cancelled
  kPmpLockBug,     // pmpaddr of a locked TOR range writable (ISA incompliance)
};

const char* variantName(SocVariant v);

// Elementary microarchitectural switches derived from a SocVariant.
struct VariantFlags {
  // Load data is forwarded combinationally from the cache response wire to
  // the execute stage (removes the load-use stall). This is the "common and
  // correct forwarding feature" of paper Fig. 1 and the enabler for both
  // transient-transaction variants.
  bool fastLoadForward = false;
  // The cache RAW-hazard comparator observes the raw (pre-kill) request
  // wires instead of the kill-gated ones: a request squashed by an
  // exception flush in the same cycle still triggers the hazard stall.
  // This is the Orc covert channel (paper Sec. III).
  bool hazardUsesRawValid = false;
  // A miss of a killed or faulting request still starts a cache line
  // refill, and an exception flush does not cancel a refill in flight.
  // This is the Meltdown-style covert channel (paper Sec. VII).
  bool refillOnKilled = false;
  // pmpaddr[i] remains writable although entry i+1 is a locked TOR entry,
  // violating the RISC-V privileged ISA (paper Sec. VII-C).
  bool pmpLockBug = false;

  static VariantFlags forVariant(SocVariant v);
};

struct SocConfig {
  riscv::MachineConfig machine;
  unsigned cacheLines = 4;          // direct-mapped, one XLEN word per line
  unsigned pendingWriteCycles = 3;  // cycles a store stays pending in the cache
  unsigned refillCycles = 2;        // memory latency of a cache line refill
  SocVariant variant = SocVariant::kSecure;

  // Derived geometry.
  unsigned xlen() const { return machine.xlen; }
  unsigned pcBits() const { return machine.pcBits(); }
  unsigned wordAddrBits() const { return machine.physAddrBits() - 2; }
  unsigned indexBits() const {
    unsigned b = 0;
    while ((1u << b) < cacheLines) ++b;
    return b;
  }
  unsigned tagBits() const { return wordAddrBits() - indexBits(); }
  unsigned regIdxBits() const {
    unsigned b = 0;
    while ((1u << b) < machine.nregs) ++b;
    return b;
  }

  // A small formal configuration (used by the UPEC benches and tests).
  static SocConfig formalSmall(SocVariant v);
  // A larger configuration for cycle-accurate attack demonstrations.
  static SocConfig simLarge(SocVariant v);
};

}  // namespace upec::soc
