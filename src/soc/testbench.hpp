// Cycle-accurate testbench around a single MiniRV SoC instance: loads
// programs, preloads memory/cache, runs the clock and exposes architectural
// and microarchitectural state. Used by the differential tests against the
// ISA simulator and by the attack-demonstration examples, where the
// quantity of interest is the exact cycle count (the covert channel).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rtl/ir.hpp"
#include "sim/simulator.hpp"
#include "soc/soc.hpp"

namespace upec::soc {

// One architectural event observed at the write-back stage.
struct CommitEvent {
  std::uint32_t pc = 0;
  bool trap = false;  // true: trap commit; false: normal retirement
};

class SocTestbench {
 public:
  explicit SocTestbench(const SocConfig& config);

  const SocConfig& config() const { return config_; }
  const SocInstance& instance() const { return inst_; }
  sim::Simulator& simulator() { return *sim_; }

  void loadProgram(const std::vector<std::uint32_t>& words, std::uint32_t baseWord = 0);
  void setDmemWord(std::uint32_t wordAddr, std::uint32_t value);
  std::uint32_t dmemWord(std::uint32_t wordAddr) const;

  // Preloads a cache line as valid copy of dmem word `wordAddr` (used to
  // set up the "secret data is in the cache" scenario).
  void preloadCacheLine(std::uint32_t wordAddr, std::uint32_t data, bool dirty = false);

  // Runs one clock cycle; records any commit event.
  void step();
  void run(unsigned cycles);
  // Runs until `events` commit events were observed (or maxCycles elapsed);
  // returns the number of cycles consumed.
  unsigned runUntilEvents(std::size_t events, unsigned maxCycles);

  std::uint64_t cycle() const { return sim_->cycle(); }
  const std::vector<CommitEvent>& commits() const { return commits_; }

  // --- architectural state ------------------------------------------------
  std::uint32_t reg(unsigned i) const;
  std::uint32_t pc();
  bool machineMode();
  std::uint32_t csrMcause();
  std::uint32_t csrMepc();
  std::uint32_t csrMtvec();
  void setCsrMtvec(std::uint32_t v);
  // Installs the canonical protection: entry0 = user RW over
  // [0, boundaryWord), entry1 = locked no-access over [boundaryWord, top).
  void protectFromWord(std::uint32_t boundaryWord, std::uint32_t topWord);
  void setMode(bool machine);
  void setPc(std::uint32_t pc);
  void setReg(unsigned i, std::uint32_t value);

  // --- microarchitectural state --------------------------------------------
  bool cacheLineValid(unsigned line);
  std::uint32_t cacheLineTag(unsigned line);
  std::uint32_t cacheLineData(unsigned line) const;

 private:
  BitVec regOf(rtl::Sig s) const;
  void setRegOf(rtl::Sig s, std::uint64_t v);

  SocConfig config_;
  rtl::Design design_;
  SocInstance inst_;
  std::unique_ptr<sim::Simulator> sim_;
  std::vector<CommitEvent> commits_;
};

}  // namespace upec::soc
