// Campaign engine bench: the two claims the engine exists to deliver.
//
//  1. Parallel scaling — an 8-job scenario × constraint-toggle campaign on
//     the work-stealing pool, 1 thread vs N threads. Jobs are independent
//     (private miter + private solver each), so the speedup tracks the
//     core count; on a single-core host the two runs simply tie.
//  2. Incremental deepening — the k..k+3 window ladder solved in one
//     solver session vs four from-scratch encodings: same verdicts, and
//     the session's total encode-side CNF variables stay below the sum of
//     the four monolithic runs.
//  3. Portfolio solving — the same k=1..4 ladder decided by the single
//     CDCL backend vs a diversified portfolio race (first answer wins):
//     identical verdicts, with per-config win attribution.
//  4. Clause sharing — the same portfolio race with the learnt-clause
//     exchange on: identical verdicts again (imported clauses are logical
//     consequences), with the exported/imported flow made visible.
//  5. Budget-aware rescheduling — the same ladder walked with a deliberately
//     tiny first-pass conflict budget plus the escalation scheduler, against
//     the monolithic large-budget baseline: every window that the starved
//     run alone leaves kUnknown is decided by a rescheduled retry, with the
//     verdicts equal to the baseline's.
//  6. Telemetry overhead — the same k=1..4 ladder with the full telemetry
//     stack off vs on (tracing spans + metrics registry + NDJSON observer):
//     the verdicts AND per-window conflict counts must be bit-identical
//     (telemetry only reads, never feeds back), and the measured wall-clock
//     overhead is reported against the <3% target.
//  7. RTL reduction — the same ladder with the pre-encoding pass pipeline
//     off vs on (COI sweep, constant folding, symmetry-aware hashing):
//     identical per-window verdicts (the self-check every speed feature
//     ships with), while the reduced miter encodes fewer CNF variables.
//  8. Checkpointing — a campaign with the crash-safe journal off vs on
//     (identical verdicts, bounded overhead), then resumed from the
//     finished journal: every window adopted, nothing re-solved.
//  9. Solver profiling — the same ladder with SolverConfig::profile off vs
//     on: bit-identical verdicts AND conflict counts (profiling only reads
//     clocks), with the CDCL phase split (propagate/analyze/reduceDB/
//     restart) reported; then section [4]'s sharing ladder rerun with
//     profiling on, which must show nonzero imported-clause efficacy (the
//     shared clauses actually propagate and appear in conflict analysis).
// 10. Campaign caches — the encoding prefix cache and the persistent
//     clause store, each run as a differential against a cold campaign:
//     cache-off reruns bit-identical (the default path is untouched), the
//     prefix-cached run conflict-identical with most sessions cloning one
//     cold encode (measurable first-window encode-time drop), and the
//     store-seeded / warm-started sweeps verdict-identical with the
//     warm rerun demonstrably importing the donor journal's clauses.
//
// Usage: bench/campaign [reschedule|trace|reduce|checkpoint|profile|cache]
//                       [--json out.json]
//   no argument  — all sections;
//   "reschedule" — section [5] only (self-contained; CI's smoke leg runs it
//                  as the reschedule self-check without paying for 1-4);
//   "trace"      — section [6] only (the telemetry differential self-check);
//   "reduce"     — section [7] only (the reduction verdict-equality check);
//   "checkpoint" — section [8] only (the crash-safety self-check);
//   "profile"    — section [9] only (the profiling differential self-check);
//   "cache"      — section [10] only (the campaign-cache self-check).
//   --json PATH  — also write a machine-readable summary of whatever ran:
//                  per-section wall seconds, conflict totals and every
//                  [ok]/[MISMATCH] self-check as {"name","ok"} (CI uploads
//                  it as a workflow artifact).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/stopwatch.hpp"
#include "bench_util.hpp"
#include "engine/campaign.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"

namespace {

using namespace upec;
using namespace upec::engine;

// ---- machine-readable summary (--json) -----------------------------------

// One bench section's outcome: what it measured and how its self-checks
// went. Sections append their record as they finish; main() serialises the
// collected list once at exit.
struct SectionRecord {
  int id = 0;
  std::string name;
  double wallSec = 0.0;
  std::uint64_t conflicts = 0;
  std::vector<std::pair<std::string, bool>> checks;
};

std::vector<SectionRecord>& sectionRecords() {
  static std::vector<SectionRecord> records;
  return records;
}

// Prints the familiar [ok]/[MISMATCH] line AND records the result, so the
// JSON summary carries exactly the checks the terminal showed.
bool recordCheck(SectionRecord& rec, bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
  rec.checks.emplace_back(what, ok);
  return ok;
}

bool writeBenchJson(const std::string& path, bool allOk) {
  std::string out = "{\"bench\":\"campaign\",\"all_ok\":";
  out += allOk ? "true" : "false";
  out += ",\"sections\":[";
  bool firstSection = true;
  for (const SectionRecord& rec : sectionRecords()) {
    if (!firstSection) out += ',';
    firstSection = false;
    out += "{\"id\":" + std::to_string(rec.id) + ",\"name\":\"";
    obs::appendJsonEscaped(out, rec.name);
    out += "\",\"wall_s\":" + std::to_string(rec.wallSec) +
           ",\"conflicts\":" + std::to_string(rec.conflicts) + ",\"checks\":[";
    bool firstCheck = true;
    for (const auto& [name, ok] : rec.checks) {
      if (!firstCheck) out += ',';
      firstCheck = false;
      out += "{\"name\":\"";
      obs::appendJsonEscaped(out, name);
      out += "\",\"ok\":";
      out += ok ? "true" : "false";
      out += '}';
    }
    out += "]}";
  }
  out += "]}\n";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    const bool wrote = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    return wrote;
  }
  return false;
}

std::vector<JobSpec> eightJobMatrix(DeepeningMode mode, unsigned kMin, unsigned kMax) {
  SweepMatrix matrix;
  matrix.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  matrix.secretWord = 12;
  matrix.scenarios = {SecretScenario::kInCache, SecretScenario::kNotInCache};

  UpecOptions full;
  UpecOptions noC1;
  noC1.constraint1NoOngoing = false;
  UpecOptions noC3;
  noC3.constraint3SecureSw = false;
  UpecOptions unprotected;
  unprotected.assumeSecretProtected = false;
  matrix.variants = {{"full", full},
                     {"no_constraint1", noC1},
                     {"no_constraint3", noC3},
                     {"no_protection", unprotected}};
  matrix.mode = mode;
  matrix.kMin = kMin;
  matrix.kMax = kMax;
  return enumerateJobs(matrix);
}

// ---- 5: budget-aware rescheduling vs the large-budget baseline -----------
// Self-contained (also run standalone as the CI smoke leg's self-check):
// the same k=1..4 ladder decided three ways — unlimited budget, a starved
// 64-conflict budget (windows come back kUnknown), and the starved budget
// plus the escalation scheduler, which must recover exactly the baseline's
// verdicts.
bool rescheduleSection() {
  SectionRecord rec;
  rec.id = 5;
  rec.name = "reschedule";
  Stopwatch sectionTimer;
  std::printf("[5] window ladder k=1..4, tiny budget + rescheduling vs unlimited baseline\n");
  JobSpec ladder;
  ladder.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  ladder.secretWord = 12;
  ladder.options.scenario = SecretScenario::kNotInCache;
  ladder.mode = DeepeningMode::kIncremental;
  ladder.kMin = 1;
  ladder.kMax = 4;

  Stopwatch baseTimer;
  const JobResult baseline = runJob(ladder);
  const double baseSec = baseTimer.elapsedSeconds();

  JobSpec starvedSpec = ladder;
  starvedSpec.options.conflictBudget = 64;
  Stopwatch starvedTimer;
  const JobResult starved = runJob(starvedSpec);
  const double starvedSec = starvedTimer.elapsedSeconds();

  JobSpec reschedSpec = starvedSpec;
  reschedSpec.reschedule.enabled = true;
  reschedSpec.reschedule.budgetGrowth = 8.0;
  reschedSpec.reschedule.maxReschedules = 12;
  Stopwatch reschedTimer;
  const JobResult resched = runJob(reschedSpec);
  const double reschedSec = reschedTimer.elapsedSeconds();

  upec::bench::Table t({"mode", "wall clock", "conflicts", "verdict", "undecided", "retries"});
  auto row = [&t](const char* mode, double sec, const JobResult& r) {
    t.addRow({mode, upec::bench::fmtSeconds(sec), std::to_string(r.totalConflicts),
              verdictName(r.verdict), std::to_string(r.undecidedWindows.size()),
              std::to_string(r.rescheduleAttempts)});
  };
  row("unlimited budget", baseSec, baseline);
  row("budget 64", starvedSec, starved);
  row("budget 64 + reschedule", reschedSec, resched);
  t.print();
  std::printf("escalation decides what the starved pass alone abandons; the retry\n"
              "re-enters the incremental session, so only solver time is re-paid\n\n");

  auto check = [&rec](bool ok, const char* what) { return recordCheck(rec, ok, what); };
  bool all = true;
  all &= check(!starved.undecidedWindows.empty(),
               "the starved run alone leaves windows undecided");
  all &= check(std::equal(baseline.windows.begin(), baseline.windows.end(),
                          resched.windows.begin(), resched.windows.end(),
                          [](const WindowResult& a, const WindowResult& b) {
                            return a.window == b.window && a.verdict == b.verdict;
                          }),
               "rescheduled ladder reproduces the unlimited-budget verdicts");
  all &= check(resched.undecidedWindows.empty() && resched.windowsDecidedByRetry >= 1,
               "every rescheduled window ends decided by an escalated retry");
  rec.wallSec = sectionTimer.elapsedSeconds();
  rec.conflicts = baseline.totalConflicts + starved.totalConflicts + resched.totalConflicts;
  sectionRecords().push_back(std::move(rec));
  return all;
}

// ---- 6: telemetry on vs off on the same ladder ---------------------------
// Self-contained (also run standalone as CI's telemetry self-check): the
// k=1..4 incremental ladder decided twice — telemetry fully off (the
// default), then with the whole stack live (trace recorder, metrics
// registry, NDJSON observer). The single-backend incremental session is
// deterministic, so "telemetry only reads, never feeds back" is checkable
// bit-for-bit: per-window verdicts AND conflict counts must be equal.
bool traceSection() {
  SectionRecord rec;
  rec.id = 6;
  rec.name = "trace";
  Stopwatch sectionTimer;
  std::printf("[6] window ladder k=1..4, telemetry off vs tracing+metrics+events on\n");
  JobSpec ladder;
  ladder.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  ladder.secretWord = 12;
  ladder.options.scenario = SecretScenario::kNotInCache;
  ladder.mode = DeepeningMode::kIncremental;
  ladder.kMin = 1;
  ladder.kMax = 4;

  Stopwatch offTimer;
  const JobResult off = runJob(ladder);
  const double offSec = offTimer.elapsedSeconds();

  // Counting observer: pays the event-construction cost without touching
  // the filesystem, so the overhead number is the instrumentation's own.
  struct CountingObserver final : obs::CampaignObserver {
    std::atomic<std::uint64_t> events{0};
    void onEvent(const obs::StreamEvent&) override {
      events.fetch_add(1, std::memory_order_relaxed);
    }
  } counting;
  obs::TraceRecorder recorder;
  recorder.start();
  obs::metrics().reset();
  obs::setMetricsEnabled(true);
  Stopwatch onTimer;
  const JobResult on = runJob(ladder, nullptr, nullptr, &counting);
  const double onSec = onTimer.elapsedSeconds();
  obs::setMetricsEnabled(false);
  recorder.stop();

  const double overheadPct = offSec > 0.0 ? 100.0 * (onSec / offSec - 1.0) : 0.0;
  upec::bench::Table t({"telemetry", "wall clock", "conflicts", "verdict", "artifacts"});
  t.addRow({"off", upec::bench::fmtSeconds(offSec), std::to_string(off.totalConflicts),
            verdictName(off.verdict), "-"});
  t.addRow({"on", upec::bench::fmtSeconds(onSec), std::to_string(on.totalConflicts),
            verdictName(on.verdict),
            std::to_string(recorder.eventCount()) + " spans, " +
                std::to_string(counting.events.load()) + " events, " +
                std::to_string(recorder.droppedEvents()) + " dropped"});
  t.print();
  std::printf("overhead: %+.1f%% wall clock (target < 3%%; single short run — treat as\n"
              "indicative, the hard guarantee is the bit-identical trajectory below)\n\n",
              overheadPct);

  auto check = [&rec](bool ok, const char* what) { return recordCheck(rec, ok, what); };
  bool all = true;
  all &= check(std::equal(off.windows.begin(), off.windows.end(), on.windows.begin(),
                          on.windows.end(),
                          [](const WindowResult& a, const WindowResult& b) {
                            return a.window == b.window && a.verdict == b.verdict &&
                                   a.stats.conflicts == b.stats.conflicts;
                          }),
               "telemetry-on ladder reproduces the telemetry-off verdicts and conflicts");
  all &= check(recorder.eventCount() > 0, "trace recorder captured spans");
  all &= check(counting.events.load() > 0, "observer received stream events");
  rec.wallSec = sectionTimer.elapsedSeconds();
  rec.conflicts = off.totalConflicts + on.totalConflicts;
  sectionRecords().push_back(std::move(rec));
  return all;
}

// ---- 7: RTL reduction off vs on on the same ladder -----------------------
// Self-contained (also run standalone as CI's reduction self-check): the
// k=1..4 incremental ladder decided with the solver seeing the exact seed
// netlist, then again with the pass pipeline (COI sweep, constant folding,
// symmetry-aware structural hashing) shrinking the miter before encoding.
// Unlimited budget on both sides, so any verdict difference would be the
// reduction's fault and nothing else's. The reduced run must reproduce the
// plain per-window verdicts exactly while encoding fewer CNF variables —
// that pair is this repo's standing contract for every speed feature.
bool reduceSection() {
  SectionRecord rec;
  rec.id = 7;
  rec.name = "reduce";
  Stopwatch sectionTimer;
  std::printf("[7] window ladder k=1..4, reduction pass pipeline off vs on\n");
  JobSpec ladder;
  ladder.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  ladder.secretWord = 12;
  ladder.options.scenario = SecretScenario::kNotInCache;
  ladder.mode = DeepeningMode::kIncremental;
  ladder.kMin = 1;
  ladder.kMax = 4;

  Stopwatch plainTimer;
  const JobResult plain = runJob(ladder);
  const double plainSec = plainTimer.elapsedSeconds();

  JobSpec reducedSpec = ladder;
  reducedSpec.reduction = true;
  Stopwatch reducedTimer;
  const JobResult reduced = runJob(reducedSpec);
  const double reducedSec = reducedTimer.elapsedSeconds();

  upec::bench::Table t({"reduction", "wall clock", "peak vars", "peak clauses", "conflicts",
                        "verdict"});
  auto row = [&t](const char* mode, double sec, const JobResult& r) {
    t.addRow({mode, upec::bench::fmtSeconds(sec), std::to_string(r.peakVars),
              std::to_string(r.peakClauses), std::to_string(r.totalConflicts),
              verdictName(r.verdict)});
  };
  row("off", plainSec, plain);
  row("on", reducedSec, reduced);
  t.print();
  if (reduced.reduction) {
    std::printf("pipeline: %s\n", reduced.reduction->summary().c_str());
  }
  std::printf("the solver race starts from a smaller netlist; the verdicts below prove\n"
              "the shrink changed nothing the property can observe\n\n");

  auto check = [&rec](bool ok, const char* what) { return recordCheck(rec, ok, what); };
  bool all = true;
  all &= check(std::equal(plain.windows.begin(), plain.windows.end(), reduced.windows.begin(),
                          reduced.windows.end(),
                          [](const WindowResult& a, const WindowResult& b) {
                            return a.window == b.window && a.verdict == b.verdict;
                          }),
               "reduced ladder reproduces the unreduced verdicts window for window");
  all &= check(reduced.peakVars < plain.peakVars,
               "reduced miter encodes fewer CNF variables at peak");
  all &= check(reduced.reduction.has_value() &&
                   reduced.reduction->nodesAfter < reduced.reduction->nodesBefore,
               "pass pipeline reports a net node reduction");
  rec.wallSec = sectionTimer.elapsedSeconds();
  rec.conflicts = plain.totalConflicts + reduced.totalConflicts;
  sectionRecords().push_back(std::move(rec));
  return all;
}

// ---- 8: checkpointing off vs on, and a full-journal resume ---------------
// Self-contained (also run standalone as CI's crash-safety self-check): a
// two-job campaign decided three ways — no journal, journal on (the
// verdicts must be identical and the journaling overhead bounded; it is a
// handful of flushed appends per window), and resumed from the finished
// journal, which must adopt every window without re-solving anything.
bool checkpointSection() {
  SectionRecord rec;
  rec.id = 8;
  rec.name = "checkpoint";
  Stopwatch sectionTimer;
  std::printf("[8] 2-job campaign, checkpoint journal off vs on vs resumed\n");
  std::vector<JobSpec> jobs;
  {
    JobSpec ladder;
    ladder.id = 0;
    ladder.label = "secure/not_in_cache";
    ladder.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
    ladder.secretWord = 12;
    ladder.options.scenario = SecretScenario::kNotInCache;
    ladder.mode = DeepeningMode::kIncremental;
    ladder.kMin = 1;
    ladder.kMax = 4;
    jobs.push_back(ladder);
    ladder.id = 1;
    ladder.label = "secure/in_cache";
    ladder.options.scenario = SecretScenario::kInCache;
    ladder.kMax = 2;
    jobs.push_back(ladder);
  }
  const std::string journal = "bench_checkpoint.ndjson";
  std::remove(journal.c_str());

  CampaignOptions off;
  off.threads = 2;
  Stopwatch offTimer;
  const CampaignReport plain = runCampaign(jobs, off);
  const double offSec = offTimer.elapsedSeconds();

  CampaignOptions on = off;
  on.checkpoint.path = journal;
  Stopwatch onTimer;
  const CampaignReport journaled = runCampaign(jobs, on);
  const double onSec = onTimer.elapsedSeconds();

  CampaignOptions resume = on;
  resume.checkpoint.resume = true;
  Stopwatch resumeTimer;
  const CampaignReport resumed = runCampaign(jobs, resume);
  const double resumeSec = resumeTimer.elapsedSeconds();

  upec::bench::Table t({"journal", "wall clock", "conflicts", "replayed", "verdicts (P/L/proven)"});
  auto row = [&t](const char* mode, double sec, const CampaignReport& r) {
    t.addRow({mode, upec::bench::fmtSeconds(sec), std::to_string(r.totalConflicts),
              std::to_string(r.replayedWindows) + " win/" + std::to_string(r.replayedJobs) + " job",
              std::to_string(r.numPAlerts) + "/" + std::to_string(r.numLAlerts) + "/" +
                  std::to_string(r.numProven)});
  };
  row("off", offSec, plain);
  row("on (fresh)", onSec, journaled);
  row("on (resumed)", resumeSec, resumed);
  t.print();
  std::printf("the journal costs a flushed append per decided window; the resumed run\n"
              "adopts every cached verdict and solves nothing\n\n");

  auto check = [&rec](bool ok, const char* what) { return recordCheck(rec, ok, what); };
  auto sameVerdicts = [](const CampaignReport& a, const CampaignReport& b) {
    if (a.jobs.size() != b.jobs.size()) return false;
    for (std::size_t j = 0; j < a.jobs.size(); ++j) {
      if (a.jobs[j].verdict != b.jobs[j].verdict) return false;
      if (!std::equal(a.jobs[j].windows.begin(), a.jobs[j].windows.end(),
                      b.jobs[j].windows.begin(), b.jobs[j].windows.end(),
                      [](const WindowResult& x, const WindowResult& y) {
                        return x.window == y.window && x.verdict == y.verdict;
                      })) {
        return false;
      }
    }
    return true;
  };
  bool all = true;
  all &= check(sameVerdicts(plain, journaled),
               "journaled campaign reproduces the unjournaled verdicts window for window");
  all &= check(!journaled.checkpointWriteFailed && !journaled.resumed,
               "fresh journal written cleanly");
  // Journaling is a few buffered writes per window; anything beyond a 1.5x
  // wall-clock factor (plus scheduling noise headroom) would mean it leaked
  // into the solve path.
  all &= check(onSec <= offSec * 1.5 + 1.0, "journaling overhead stays bounded");
  all &= check(resumed.resumed && resumed.replayedJobs == jobs.size() &&
                   sameVerdicts(plain, resumed),
               "resume adopts every job from the journal with identical verdicts");
  all &= check(resumed.totalConflicts == journaled.totalConflicts,
               "resume re-solves nothing (conflict totals come from the journal)");
  std::remove(journal.c_str());
  rec.wallSec = sectionTimer.elapsedSeconds();
  rec.conflicts = plain.totalConflicts + journaled.totalConflicts + resumed.totalConflicts;
  sectionRecords().push_back(std::move(rec));
  return all;
}

// ---- 9: solver profiling off vs on, efficacy on the sharing ladder -------
// Self-contained (also run standalone as CI's profiling self-check). Two
// claims: SolverConfig::profile moves nothing — per-window verdicts AND
// conflict counts are bit-identical, it only reads clocks and counts
// flags — while populating the CDCL phase split; and on section [4]'s
// sharing portfolio, the imported clauses demonstrably *work* (nonzero
// first-use-in-propagation / first-use-in-conflict counters), turning
// "sharing helps" from folklore into a measured number.
bool profileSection() {
  SectionRecord rec;
  rec.id = 9;
  rec.name = "profile";
  Stopwatch sectionTimer;
  std::printf("[9] window ladder k=1..4, solver profiling off vs on; import efficacy\n");
  JobSpec ladder;
  ladder.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  ladder.secretWord = 12;
  ladder.options.scenario = SecretScenario::kNotInCache;
  ladder.mode = DeepeningMode::kIncremental;
  ladder.kMin = 1;
  ladder.kMax = 4;

  Stopwatch offTimer;
  const JobResult off = runJob(ladder);
  const double offSec = offTimer.elapsedSeconds();

  JobSpec profSpec = ladder;
  profSpec.options.profileSolver = true;
  Stopwatch profTimer;
  const JobResult prof = runJob(profSpec);
  const double profSec = profTimer.elapsedSeconds();

  // Section [4]'s cooperative portfolio, profiled: where import efficacy
  // is observable at all.
  JobSpec shareSpec = profSpec;
  shareSpec.portfolio = 3;
  shareSpec.sharing = true;
  Stopwatch shareTimer;
  const JobResult shared = runJob(shareSpec);
  const double shareSec = shareTimer.elapsedSeconds();

  auto phaseCell = [](const JobResult& r) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%.0f/%.0f/%.0f/%.0f ms",
                  r.totalPropagateTimeNs / 1e6, r.totalAnalyzeTimeNs / 1e6,
                  r.totalReduceTimeNs / 1e6, r.totalRestartTimeNs / 1e6);
    return std::string(buf);
  };
  upec::bench::Table t({"mode", "wall clock", "conflicts",
                        "prop/analyze/reduce/restart", "imports used (prop/confl)"});
  t.addRow({"profile off", upec::bench::fmtSeconds(offSec),
            std::to_string(off.totalConflicts), "-", "-"});
  t.addRow({"profile on", upec::bench::fmtSeconds(profSec),
            std::to_string(prof.totalConflicts), phaseCell(prof), "0/0 (no exchange)"});
  t.addRow({"sharing(3) + profile", upec::bench::fmtSeconds(shareSec),
            std::to_string(shared.totalConflicts), phaseCell(shared),
            std::to_string(shared.totalImportedUsedInPropagation) + "/" +
                std::to_string(shared.totalImportedUsedInConflict)});
  t.print();
  std::printf("the phase split shows where solve time actually goes; the efficacy pair\n"
              "counts imported clauses that propagated a literal / entered a conflict\n\n");

  auto check = [&rec](bool ok, const char* what) { return recordCheck(rec, ok, what); };
  bool all = true;
  all &= check(std::equal(off.windows.begin(), off.windows.end(), prof.windows.begin(),
                          prof.windows.end(),
                          [](const WindowResult& a, const WindowResult& b) {
                            return a.window == b.window && a.verdict == b.verdict &&
                                   a.stats.conflicts == b.stats.conflicts;
                          }),
               "profiled ladder reproduces the unprofiled verdicts and conflicts");
  all &= check(off.totalPropagateTimeNs == 0 && off.totalAnalyzeTimeNs == 0,
               "profile off records no phase time (the default path never reads the clock)");
  all &= check(prof.totalPropagateTimeNs > 0,
               "profile on populates the phase timings");
  all &= check(shared.verdict == off.verdict,
               "profiled sharing portfolio reproduces the ladder verdict");
  all &= check(shared.totalImportedUsedInPropagation + shared.totalImportedUsedInConflict > 0,
               "sharing ladder shows nonzero imported-clause efficacy");
  rec.wallSec = sectionTimer.elapsedSeconds();
  rec.conflicts = off.totalConflicts + prof.totalConflicts + shared.totalConflicts;
  sectionRecords().push_back(std::move(rec));
  return all;
}

// ---- 10: campaign caches — prefix reuse + persistent clause store --------
// Self-contained (also run standalone as CI's cache self-check). Every
// claim is a differential against a cold run: (a) two cache-off campaigns
// are bit-identical — the default path carries no trace of the caches;
// (b) the prefix-cached campaign reproduces the cold trajectory conflict
// for conflict while most sessions clone the first session's encoding,
// with a measurable first-window encode-time drop; (c) the clause-store
// and warm-started sweeps keep the cold verdicts (seeding moves the
// search, never the answer); (d) the warm-started rerun demonstrably
// imports the donor journal's clause set.
bool cacheSection() {
  SectionRecord rec;
  rec.id = 10;
  rec.name = "cache";
  Stopwatch sectionTimer;
  std::printf("[10] campaign caches: encoding prefix reuse + persistent clause store\n");

  // Four single-backend k=1..4 ladders of one encoding class: scenarios
  // and constraint toggles only shape the per-window assumptions, which
  // land after the captured prefix — every job can clone the first cold
  // encode.
  std::vector<JobSpec> jobs;
  {
    JobSpec ladder;
    ladder.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
    ladder.secretWord = 12;
    ladder.mode = DeepeningMode::kIncremental;
    ladder.kMin = 1;
    ladder.kMax = 4;
    const SecretScenario scenarios[2] = {SecretScenario::kNotInCache, SecretScenario::kInCache};
    for (std::uint32_t id = 0; id < 4; ++id) {
      ladder.id = id;
      ladder.options.scenario = scenarios[id % 2];
      ladder.options.constraint1NoOngoing = id < 2;
      ladder.label = std::string(id % 2 == 0 ? "not_in_cache" : "in_cache") +
                     (id < 2 ? "/full" : "/no_constraint1");
      jobs.push_back(ladder);
    }
  }

  CampaignOptions off;
  off.threads = 2;
  Stopwatch coldTimer;
  const CampaignReport cold = runCampaign(jobs, off);
  const double coldSec = coldTimer.elapsedSeconds();
  const CampaignReport coldAgain = runCampaign(jobs, off);

  CampaignOptions prefixOn = off;
  prefixOn.cache.prefix = true;
  Stopwatch cachedTimer;
  const CampaignReport cached = runCampaign(jobs, prefixOn);
  const double cachedSec = cachedTimer.elapsedSeconds();

  // The prefix covers the first window's unroll+encode; deeper windows
  // encode their deltas incrementally either way.
  auto firstWindowEncodeMs = [](const CampaignReport& r) {
    double ms = 0.0;
    for (const JobResult& job : r.jobs) {
      if (!job.windows.empty()) ms += job.windows.front().stats.encodeMs;
    }
    return ms;
  };
  const double coldEncodeMs = firstWindowEncodeMs(cold);
  const double cachedEncodeMs = firstWindowEncodeMs(cached);

  // The persistent clause store, then a warm start from the journal the
  // store-backed sweep wrote: the cross-run half of the cache.
  std::vector<JobSpec> sweep = {jobs[0], jobs[1]};
  for (JobSpec& j : sweep) {
    j.portfolio = 2;
    j.sharing = true;
  }
  const std::string journal = "bench_cache.ndjson";
  std::remove(journal.c_str());

  const CampaignReport sweepCold = runCampaign(sweep, off);
  CampaignOptions storeOn = off;
  storeOn.cache.clauseStore = true;
  storeOn.checkpoint.path = journal;
  const CampaignReport sweepStore = runCampaign(sweep, storeOn);
  CampaignOptions warm = off;
  warm.cache.warmStartPath = journal;
  const CampaignReport sweepWarm = runCampaign(sweep, warm);

  upec::bench::Table t({"mode", "wall clock", "first-window encode", "prefix hit/miss",
                        "store promoted/seeded", "verdicts (P/L/proven)"});
  auto verdictCell = [](const CampaignReport& r) {
    return std::to_string(r.numPAlerts) + "/" + std::to_string(r.numLAlerts) + "/" +
           std::to_string(r.numProven);
  };
  auto ms = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f ms", v);
    return std::string(buf);
  };
  t.addRow({"4 jobs, cache off", upec::bench::fmtSeconds(coldSec), ms(coldEncodeMs), "-", "-",
            verdictCell(cold)});
  t.addRow({"4 jobs, prefix cache", upec::bench::fmtSeconds(cachedSec), ms(cachedEncodeMs),
            std::to_string(cached.prefixHits) + "/" + std::to_string(cached.prefixMisses), "-",
            verdictCell(cached)});
  t.addRow({"sharing sweep, cold", "-", "-", "-", "-", verdictCell(sweepCold)});
  t.addRow({"sharing sweep, store", "-", "-", "-",
            std::to_string(sweepStore.storePromoted) + "/" +
                std::to_string(sweepStore.storeSeededClauses),
            verdictCell(sweepStore)});
  t.addRow({"sharing sweep, warm", "-", "-", "-",
            std::to_string(sweepWarm.storePromoted) + "/" +
                std::to_string(sweepWarm.storeSeededClauses),
            verdictCell(sweepWarm)});
  t.print();
  std::printf("one cold encode serves the whole equivalence class; the store carries one\n"
              "sweep's deductions into its siblings and (via the journal) the next run\n\n");

  auto check = [&rec](bool ok, const char* what) { return recordCheck(rec, ok, what); };
  auto sameTrajectory = [](const CampaignReport& a, const CampaignReport& b) {
    if (a.jobs.size() != b.jobs.size()) return false;
    for (std::size_t j = 0; j < a.jobs.size(); ++j) {
      if (a.jobs[j].verdict != b.jobs[j].verdict) return false;
      if (!std::equal(a.jobs[j].windows.begin(), a.jobs[j].windows.end(),
                      b.jobs[j].windows.begin(), b.jobs[j].windows.end(),
                      [](const WindowResult& x, const WindowResult& y) {
                        return x.window == y.window && x.verdict == y.verdict &&
                               x.stats.conflicts == y.stats.conflicts;
                      })) {
        return false;
      }
    }
    return true;
  };
  auto sameVerdicts = [](const CampaignReport& a, const CampaignReport& b) {
    if (a.jobs.size() != b.jobs.size()) return false;
    for (std::size_t j = 0; j < a.jobs.size(); ++j) {
      if (a.jobs[j].verdict != b.jobs[j].verdict) return false;
      if (!std::equal(a.jobs[j].windows.begin(), a.jobs[j].windows.end(),
                      b.jobs[j].windows.begin(), b.jobs[j].windows.end(),
                      [](const WindowResult& x, const WindowResult& y) {
                        return x.window == y.window && x.verdict == y.verdict;
                      })) {
        return false;
      }
    }
    return true;
  };
  bool all = true;
  all &= check(sameTrajectory(cold, coldAgain),
               "cache-off reruns are bit-identical (the default path is untouched)");
  all &= check(sameTrajectory(cold, cached),
               "prefix-cached campaign reproduces the cold trajectory conflict for conflict");
  all &= check(cached.jobsEncodedFromCache >= 2,
               "at least half the sessions clone a cached prefix");
  all &= check(cachedEncodeMs < coldEncodeMs,
               "cloning cuts the equivalence class's first-window encode time");
  all &= check(sameVerdicts(sweepCold, sweepStore),
               "store-seeded sweep reproduces the cold verdicts");
  all &= check(sameVerdicts(sweepCold, sweepWarm),
               "warm-started sweep reproduces the cold verdicts");
  all &= check(sweepWarm.warmStarted && sweepWarm.storeSeededClauses > 0,
               "warm-started rerun imports a nonzero seeded clause set");
  std::remove(journal.c_str());
  rec.wallSec = sectionTimer.elapsedSeconds();
  rec.conflicts = cold.totalConflicts + cached.totalConflicts + sweepCold.totalConflicts +
                  sweepStore.totalConflicts + sweepWarm.totalConflicts;
  sectionRecords().push_back(std::move(rec));
  return all;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath;
  std::string section;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json needs a file argument\n");
        return 2;
      }
      jsonPath = argv[++i];
      continue;
    }
    section = argv[i];
  }
  auto finish = [&jsonPath](bool ok) {
    if (!jsonPath.empty()) {
      if (writeBenchJson(jsonPath, ok)) {
        std::printf("\nbench summary -> %s\n", jsonPath.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
        return 2;
      }
    }
    return ok ? 0 : 1;
  };
  if (section == "reschedule") return finish(rescheduleSection());
  if (section == "trace") return finish(traceSection());
  if (section == "reduce") return finish(reduceSection());
  if (section == "checkpoint") return finish(checkpointSection());
  if (section == "profile") return finish(profileSection());
  if (section == "cache") return finish(cacheSection());
  if (!section.empty()) {
    std::fprintf(stderr,
                 "usage: campaign [reschedule|trace|reduce|checkpoint|profile|cache] "
                 "[--json out.json]\n");
    return 2;
  }
  std::printf("Verification campaign bench — parallel scaling and incremental deepening\n\n");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n\n", hw);

  // ---- 1: parallel scaling over the 8-job matrix -------------------------
  const std::vector<JobSpec> jobs = eightJobMatrix(DeepeningMode::kIncremental, 1, 2);
  std::printf("[1] %zu-job campaign (scenario x constraint-toggle, k=1..2)\n", jobs.size());

  CampaignOptions oneThread;
  oneThread.threads = 1;
  const CampaignReport serial = runCampaign(jobs, oneThread);

  CampaignOptions fourThreads;
  fourThreads.threads = 4;
  const CampaignReport parallel = runCampaign(jobs, fourThreads);

  upec::bench::Table t1({"threads", "wall clock", "sum of job times", "verdicts (P/L/proven)"});
  auto verdictCell = [](const CampaignReport& r) {
    return std::to_string(r.numPAlerts) + "/" + std::to_string(r.numLAlerts) + "/" +
           std::to_string(r.numProven);
  };
  t1.addRow({"1", upec::bench::fmtSeconds(serial.wallMs / 1e3),
             upec::bench::fmtSeconds(serial.sumJobWallMs / 1e3), verdictCell(serial)});
  t1.addRow({"4", upec::bench::fmtSeconds(parallel.wallMs / 1e3),
             upec::bench::fmtSeconds(parallel.sumJobWallMs / 1e3), verdictCell(parallel)});
  t1.print();
  const double speedup = serial.wallMs / parallel.wallMs;
  std::printf("speedup: %.2fx\n\n", speedup);
  sectionRecords().push_back({1, "parallel_scaling", (serial.wallMs + parallel.wallMs) / 1e3,
                              serial.totalConflicts + parallel.totalConflicts, {}});

  // ---- 2: incremental deepening over the k..k+3 ladder -------------------
  std::printf("[2] window ladder k=1..4, monolithic vs incremental (D not in cache)\n");
  JobSpec ladder;
  ladder.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  ladder.secretWord = 12;
  ladder.options.scenario = SecretScenario::kNotInCache;
  ladder.kMin = 1;
  ladder.kMax = 4;

  ladder.mode = DeepeningMode::kMonolithic;
  Stopwatch monoTimer;
  const JobResult mono = runJob(ladder);
  const double monoSec = monoTimer.elapsedSeconds();

  ladder.mode = DeepeningMode::kIncremental;
  Stopwatch incTimer;
  const JobResult inc = runJob(ladder);
  const double incSec = incTimer.elapsedSeconds();

  upec::bench::Table t2({"mode", "total CNF vars encoded", "peak vars", "conflicts", "time"});
  t2.addRow({"monolithic", std::to_string(mono.sumVars), std::to_string(mono.peakVars),
             std::to_string(mono.totalConflicts), upec::bench::fmtSeconds(monoSec)});
  t2.addRow({"incremental", std::to_string(inc.peakVars), std::to_string(inc.peakVars),
             std::to_string(inc.totalConflicts), upec::bench::fmtSeconds(incSec)});
  t2.print();
  std::printf("encode-side saving: %llu vs %llu variables (%.1f%%)\n\n",
              static_cast<unsigned long long>(inc.peakVars),
              static_cast<unsigned long long>(mono.sumVars),
              100.0 * (1.0 - static_cast<double>(inc.peakVars) /
                                 static_cast<double>(mono.sumVars)));
  sectionRecords().push_back({2, "incremental_deepening", monoSec + incSec,
                              mono.totalConflicts + inc.totalConflicts, {}});

  // ---- 3: portfolio vs single backend on the k=1..4 ladder ---------------
  // The single-backend baseline is section [2]'s incremental run (same
  // JobSpec, portfolio=0) — no need to pay the ladder twice.
  std::printf("[3] window ladder k=1..4, single backend vs diversified portfolio\n");
  const JobResult& single = inc;
  const double singleSec = incSec;

  ladder.mode = DeepeningMode::kIncremental;
  ladder.portfolio = 3;
  Stopwatch raceTimer;
  const JobResult raced = runJob(ladder);
  const double raceSec = raceTimer.elapsedSeconds();

  upec::bench::Table t3({"backend", "wall clock", "summed conflicts", "verdict", "wins"});
  auto winsCell = [](const JobResult& r) {
    std::string cell;
    for (const auto& [name, wins] : r.solverWins) {
      if (!cell.empty()) cell += ", ";
      cell += name + ":" + std::to_string(wins);
    }
    return cell.empty() ? std::string("-") : cell;
  };
  t3.addRow({"single", upec::bench::fmtSeconds(singleSec),
             std::to_string(single.totalConflicts), verdictName(single.verdict),
             winsCell(single)});
  t3.addRow({"portfolio(3)", upec::bench::fmtSeconds(raceSec),
             std::to_string(raced.totalConflicts), verdictName(raced.verdict),
             winsCell(raced)});
  t3.print();
  std::printf("portfolio wall clock: %.2fx of single (race overhead pays off on hard,\n"
              "heuristic-sensitive windows; summed conflicts show the extra work bought)\n\n",
              raceSec / singleSec);
  sectionRecords().push_back({3, "portfolio", raceSec, raced.totalConflicts, {}});

  // ---- 4: sharing-on vs sharing-off portfolio on the same ladder ---------
  // Section [3]'s portfolio run is the sharing-off baseline.
  std::printf("[4] window ladder k=1..4, portfolio(3) isolated vs cooperative (clause sharing)\n");
  const JobResult& isolated = raced;
  const double isolatedSec = raceSec;

  ladder.sharing = true;
  Stopwatch shareTimer;
  const JobResult shared = runJob(ladder);
  const double sharedSec = shareTimer.elapsedSeconds();
  ladder.sharing = false;

  upec::bench::Table t4(
      {"portfolio(3)", "wall clock", "summed conflicts", "exported", "imported", "verdict"});
  t4.addRow({"isolated", upec::bench::fmtSeconds(isolatedSec),
             std::to_string(isolated.totalConflicts),
             std::to_string(isolated.totalClausesExported),
             std::to_string(isolated.totalClausesImported), verdictName(isolated.verdict)});
  t4.addRow({"sharing", upec::bench::fmtSeconds(sharedSec),
             std::to_string(shared.totalConflicts),
             std::to_string(shared.totalClausesExported),
             std::to_string(shared.totalClausesImported), verdictName(shared.verdict)});
  t4.print();
  std::printf("sharing wall clock: %.2fx of isolated (one member's deduction prunes\n"
              "every member's search; the exported/imported columns show the flow)\n\n",
              sharedSec / isolatedSec);
  sectionRecords().push_back({4, "clause_sharing", sharedSec, shared.totalConflicts, {}});

  // ---- 5: budget-aware rescheduling --------------------------------------
  bool all = rescheduleSection();
  std::printf("\n");

  // ---- 6: telemetry overhead ---------------------------------------------
  all &= traceSection();
  std::printf("\n");

  // ---- 7: RTL reduction --------------------------------------------------
  all &= reduceSection();
  std::printf("\n");

  // ---- 8: checkpoint journal ---------------------------------------------
  all &= checkpointSection();
  std::printf("\n");

  // ---- 9: solver profiling -----------------------------------------------
  all &= profileSection();
  std::printf("\n");

  // ---- 10: campaign caches -----------------------------------------------
  all &= cacheSection();
  std::printf("\n");

  // ---- acceptance --------------------------------------------------------
  SectionRecord acceptance;
  acceptance.id = 0;
  acceptance.name = "acceptance";
  auto check = [&acceptance](bool ok, const char* what) {
    return recordCheck(acceptance, ok, what);
  };
  all &= check(serial.overallVerdict == parallel.overallVerdict &&
                   serial.numPAlerts == parallel.numPAlerts &&
                   serial.numLAlerts == parallel.numLAlerts,
               "parallel campaign reproduces the serial verdicts");
  all &= check(std::equal(mono.windows.begin(), mono.windows.end(), inc.windows.begin(),
                          inc.windows.end(),
                          [](const WindowResult& a, const WindowResult& b) {
                            return a.window == b.window && a.verdict == b.verdict;
                          }),
               "incremental ladder reproduces the monolithic verdicts");
  all &= check(inc.peakVars < mono.sumVars,
               "incremental ladder encodes fewer total CNF variables than 4 from-scratch runs");
  all &= check(std::equal(single.windows.begin(), single.windows.end(), raced.windows.begin(),
                          raced.windows.end(),
                          [](const WindowResult& a, const WindowResult& b) {
                            return a.window == b.window && a.verdict == b.verdict;
                          }),
               "portfolio ladder reproduces the single-backend verdicts");
  all &= check(std::equal(isolated.windows.begin(), isolated.windows.end(),
                          shared.windows.begin(), shared.windows.end(),
                          [](const WindowResult& a, const WindowResult& b) {
                            return a.window == b.window && a.verdict == b.verdict;
                          }),
               "sharing portfolio reproduces the isolated-portfolio verdicts");
  if (hw >= 4) {
    all &= check(speedup >= 2.0, "4-thread wall clock at least 2x better than 1-thread");
  } else {
    std::printf("  [--] <4 hardware threads: speedup check skipped (measured %.2fx)\n", speedup);
  }
  sectionRecords().push_back(std::move(acceptance));
  return finish(all);
}
