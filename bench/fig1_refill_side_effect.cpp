// Reproduces paper Fig. 1: the in-order pipeline vulnerability. Two
// instructions — an illegal load of the secret followed by a dependent
// load using the secret as an address — run on the "vulnerable design"
// (cache-to-memory transaction not cancelled on the exception) and on the
// "secure design" (transaction cancelled). Both are architecturally
// identical; only the cache state after the exception differs.
#include <cstdio>

#include "bench_util.hpp"
#include "soc/attack.hpp"
#include "soc/testbench.hpp"

namespace {

using namespace upec;
using namespace upec::soc;

constexpr std::uint32_t kSecretWord = 200;
constexpr std::uint32_t kSecret = 0x1B4;  // maps to cache line 13

struct Outcome {
  bool trapped = false;
  std::uint32_t x4 = 1, x5 = 1;
  bool footprintValid = false;
  std::uint32_t footprintTag = 0;
};

Outcome run(SocVariant variant) {
  SocConfig c;
  c.machine.xlen = 32;
  c.machine.nregs = 16;
  c.machine.imemWords = 64;
  c.machine.dmemWords = 256;
  c.machine.pmpEntries = 2;
  c.cacheLines = 16;
  c.pendingWriteCycles = 8;
  c.refillCycles = 4;
  c.variant = variant;

  AttackLayout layout;
  layout.protectedByteAddr = kSecretWord * 4;
  layout.accessibleByteAddr = 64 * 4;

  SocTestbench tb(c);
  tb.loadProgram(meltdownTransientProgram(layout));
  tb.loadProgram(spinHandler(), 60);
  tb.setDmemWord(kSecretWord, kSecret);
  tb.preloadCacheLine(kSecretWord, kSecret);
  tb.protectFromWord(192, 256);
  tb.setCsrMtvec(60 * 4);
  tb.setMode(false);
  tb.run(100);

  Outcome o;
  for (const CommitEvent& e : tb.commits()) o.trapped |= e.trap;
  o.x4 = tb.reg(4);
  o.x5 = tb.reg(5);
  const unsigned secretLine = (kSecret >> 2) % 16;
  o.footprintValid = tb.cacheLineValid(secretLine);
  o.footprintTag = tb.cacheLineTag(secretLine);
  return o;
}

}  // namespace

int main() {
  std::printf("Fig. 1 — in-order pipeline vulnerability: is the transient cache\n");
  std::printf("transaction of a killed instruction cancelled on the exception?\n\n");
  std::printf("  Instr #1:  lw x4, (x1)   ; x1 -> protected secret, raises exception\n");
  std::printf("  Instr #2:  lw x5, (x4)   ; transient, address = secret value\n\n");

  const Outcome vulnerable = run(SocVariant::kMeltdownStyle);
  const Outcome secure = run(SocVariant::kSecure);

  upec::bench::Table t({"", "vulnerable design", "secure design"});
  auto yesNo = [](bool b) { return std::string(b ? "yes" : "no"); };
  t.addRow({"exception raised", yesNo(vulnerable.trapped), yesNo(secure.trapped)});
  t.addRow({"x4 (secret) after run", std::to_string(vulnerable.x4), std::to_string(secure.x4)});
  t.addRow({"x5 after run", std::to_string(vulnerable.x5), std::to_string(secure.x5)});
  t.addRow({"secret-indexed cache line filled", yesNo(vulnerable.footprintValid),
            yesNo(secure.footprintValid)});
  t.print();

  std::printf("\nShape checks:\n");
  auto check = [](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
    return ok;
  };
  bool all = true;
  all &= check(vulnerable.trapped && secure.trapped, "both designs raise the exception");
  all &= check(vulnerable.x4 == 0 && secure.x4 == 0,
               "the secret never reaches x4 in either design");
  all &= check(vulnerable.x5 == 0 && secure.x5 == 0, "instruction #2 is squashed in both");
  all &= check(vulnerable.footprintValid, "vulnerable: cache line updated (covert channel!)");
  all &= check(!secure.footprintValid, "secure: transaction cancelled, no side effect");
  return all ? 0 : 1;
}
