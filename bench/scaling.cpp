// Scalability study (paper Sec. VIII future work: "explore measures to
// improve the scalability of UPEC to handle larger processors"). Measures
// UPEC check cost against the SoC configuration: data-path width, cache
// size and data memory size — the knobs that grow the state space.
#include <cstdio>

#include "base/stopwatch.hpp"
#include "bench_util.hpp"
#include "upec/upec.hpp"

namespace {

using namespace upec;

struct Point {
  std::string label;
  soc::SocConfig config;
  std::uint32_t secretWord;
};

void measure(const Point& point, upec::bench::Table* table) {
  Miter miter(point.config, point.secretWord);
  UpecOptions options;
  options.scenario = SecretScenario::kInCache;
  UpecEngine engine(miter, options);

  // One SAT-shaped query (find the k=1 P-alert) and one UNSAT-shaped query
  // (prove the property once the P-alert registers are excluded).
  std::set<std::string> excluded;
  upec::Stopwatch satTimer;
  formal::BmcStats stats;
  for (;;) {
    const UpecResult res = engine.check(1, excluded);
    stats = res.stats;
    if (res.verdict != Verdict::kPAlert) break;
    for (const std::string& r : res.differingMicro) excluded.insert(r);
  }
  const double satSec = satTimer.elapsedSeconds();

  upec::Stopwatch unsatTimer;
  const UpecResult proof = engine.check(2, excluded);
  const double unsatSec = unsatTimer.elapsedSeconds();

  const auto designStats = miter.design().stats();
  table->addRow({point.label, std::to_string(designStats.stateBits),
                 std::to_string(proof.stats.vars), std::to_string(proof.stats.clauses),
                 upec::bench::fmtSeconds(satSec), upec::bench::fmtSeconds(unsatSec),
                 verdictName(proof.verdict)});
}

}  // namespace

int main() {
  std::printf("Scaling — UPEC cost vs design size (secure design, secret cached)\n");
  std::printf("columns: k=1 alert enumeration (SAT-shaped), k=2 proof (UNSAT-shaped)\n\n");

  std::vector<Point> points;
  {
    Point p{"xlen=8 lines=4 dmem=16 (default)", soc::SocConfig::formalSmall(soc::SocVariant::kSecure), 12};
    points.push_back(p);
  }
  {
    Point p{"xlen=16 lines=4 dmem=16", soc::SocConfig::formalSmall(soc::SocVariant::kSecure), 12};
    p.config.machine.xlen = 16;
    points.push_back(p);
  }
  {
    Point p{"xlen=8 lines=8 dmem=32", soc::SocConfig::formalSmall(soc::SocVariant::kSecure), 24};
    p.config.cacheLines = 8;
    p.config.machine.dmemWords = 32;
    points.push_back(p);
  }
  {
    Point p{"xlen=16 lines=8 dmem=32", soc::SocConfig::formalSmall(soc::SocVariant::kSecure), 24};
    p.config.machine.xlen = 16;
    p.config.cacheLines = 8;
    p.config.machine.dmemWords = 32;
    points.push_back(p);
  }

  upec::bench::Table t({"configuration", "state bits/instance", "vars", "clauses",
                        "k=1 enumerate", "k=2 prove", "verdict"});
  for (const Point& p : points) measure(p, &t);
  t.print();

  std::printf("\nProof effort grows with the square of the difference cone, not with\n");
  std::printf("total design size — the structural-equality miter keeps identical\n");
  std::printf("logic shared. This is the scalability lever the paper's Sec. VIII\n");
  std::printf("anticipates (compositional/2-cycle UPEC).\n");
  return 0;
}
