// Ablation for paper Sec. V-A: the constraints that make the symbolic
// initial state sound. Dropping them admits counterexamples from
// unreachable states ("spurious counterexamples") even on the SECURE
// design; with all constraints in place the same windows are alert-free.
#include <cstdio>
#include <string>

#include "base/stopwatch.hpp"
#include "bench_util.hpp"
#include "upec/upec.hpp"

namespace {

using namespace upec;

struct AblationOutcome {
  std::string firstAlert = "none";
  unsigned window = 0;
  double seconds = 0;
};

AblationOutcome runWith(UpecOptions options, unsigned maxK) {
  Miter miter(soc::SocConfig::formalSmall(soc::SocVariant::kSecure), /*secretWord=*/12);
  UpecEngine engine(miter, options);
  AblationOutcome out;
  upec::Stopwatch sw;
  for (unsigned k = 1; k <= maxK; ++k) {
    const UpecResult res = engine.check(k);
    if (res.verdict == Verdict::kPAlert || res.verdict == Verdict::kLAlert) {
      out.firstAlert = verdictName(res.verdict);
      out.window = k;
      break;
    }
  }
  out.seconds = sw.elapsedSeconds();
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation (Sec. V-A) — constraints on the symbolic initial state,\n");
  std::printf("evaluated on the SECURE design with the secret NOT in the cache\n");
  std::printf("(every alert below is therefore spurious)\n\n");

  UpecOptions base;
  base.scenario = SecretScenario::kNotInCache;

  upec::bench::Table t({"configuration", "first alert", "window", "runtime"});
  auto row = [&](const char* name, const UpecOptions& o, unsigned maxK) {
    const AblationOutcome r = runWith(o, maxK);
    t.addRow({name, r.firstAlert, r.window ? std::to_string(r.window) : "-",
              upec::bench::fmtSeconds(r.seconds)});
    return r;
  };

  const AblationOutcome all = row("all constraints (paper setup)", base, 3);

  UpecOptions noC1 = base;
  noC1.constraint1NoOngoing = false;
  const AblationOutcome c1 = row("without Constraint 1 (ongoing accesses)", noC1, 3);

  UpecOptions noProt = base;
  noProt.assumeSecretProtected = false;
  const AblationOutcome prot = row("without secret_data_protected()", noProt, 3);

  UpecOptions noC3 = base;
  noC3.constraint3SecureSw = false;
  const AblationOutcome c3 = row("without Constraint 3 (secure system sw)", noC3, 3);

  t.print();

  std::printf("\nShape checks:\n");
  auto check = [](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
    return ok;
  };
  bool allOk = true;
  allOk &= check(all.firstAlert == "none", "full constraint set: no spurious alerts");
  allOk &= check(c1.firstAlert != "none",
                 "dropping Constraint 1 admits spurious alerts (in-flight secret refill)");
  allOk &= check(prot.firstAlert != "none",
                 "dropping the protection assumption admits trivial leaks");
  // Constraint 3 is made redundant in our setup by the locked PMP entry
  // (machine-mode loads of the secret fault as well); this is a designed
  // difference from the paper, where the OS can read secrets.
  check(true, (std::string("Constraint 3 ablation: first alert = ") + c3.firstAlert +
               " (redundant under a locked PMP entry; see DESIGN.md)")
                  .c_str());
  return allOk ? 0 : 1;
}
