// Reproduces paper Fig. 2 / Sec. III: the Orc attack, executed end-to-end
// on the cycle-accurate SoC model. The attacker sweeps #test_value over all
// cache lines; on the vulnerable design exactly the iteration whose guess
// matches the secret's cache line suffers the RAW-hazard stall and runs
// measurably longer, revealing the secret's index bits. On the secure
// design every iteration takes the same number of cycles.
#include <cstdio>

#include "bench_util.hpp"
#include "soc/attack.hpp"
#include "soc/testbench.hpp"

namespace {

using namespace upec;
using namespace upec::soc;

constexpr std::uint32_t kSecretWord = 200;
constexpr unsigned kLines = 16;
constexpr unsigned kProtectedLine = kSecretWord % kLines;

SocConfig cfg(SocVariant v) {
  SocConfig c;
  c.machine.xlen = 32;
  c.machine.nregs = 16;
  c.machine.imemWords = 64;
  c.machine.dmemWords = 256;
  c.machine.pmpEntries = 2;
  c.cacheLines = kLines;
  c.pendingWriteCycles = 8;
  c.refillCycles = 4;
  c.variant = v;
  return c;
}

unsigned iterationCycles(SocVariant variant, std::uint32_t secret, unsigned guess) {
  AttackLayout layout;
  layout.protectedByteAddr = kSecretWord * 4;
  layout.accessibleByteAddr = 64 * 4;
  SocTestbench tb(cfg(variant));
  tb.loadProgram(orcAttackProgram(layout, guess));
  tb.loadProgram(spinHandler(), 60);
  tb.setDmemWord(kSecretWord, secret);
  tb.preloadCacheLine(kSecretWord, secret);
  tb.protectFromWord(192, 256);
  tb.setCsrMtvec(60 * 4);
  tb.setMode(false);
  for (unsigned cycle = 0; cycle < 300; ++cycle) {
    tb.step();
    if (!tb.commits().empty() && tb.commits().back().trap) return cycle;
  }
  return 0;
}

}  // namespace

int main() {
  const std::uint32_t secret = 0x1B4;  // word 109 -> cache line 13
  const unsigned secretLine = (secret >> 2) % kLines;
  std::printf("Fig. 2 — the Orc attack (one probe iteration per cache line)\n");
  std::printf("secret value 0x%X -> cache line %u; protected address itself maps to\n", secret,
              secretLine);
  std::printf("line %u (publicly known, excluded from the sweep)\n\n", kProtectedLine);

  upec::bench::Table t({"#test_value", "cycles (vulnerable)", "cycles (secure)", "verdict"});
  unsigned recovered = 0, recoveredCycles = 0;
  bool secureUniform = true;
  unsigned secureBase = 0;
  for (unsigned guess = 0; guess < kLines; ++guess) {
    if (guess == kProtectedLine) continue;
    const unsigned vuln = iterationCycles(SocVariant::kOrc, secret, guess);
    const unsigned sec = iterationCycles(SocVariant::kSecure, secret, guess);
    if (secureBase == 0) secureBase = sec;
    secureUniform &= (sec == secureBase);
    const bool slow = vuln > recoveredCycles;
    if (slow) {
      recoveredCycles = vuln;
      recovered = guess;
    }
    t.addRow({std::to_string(guess), std::to_string(vuln), std::to_string(sec),
              vuln > secureBase ? "RAW-hazard stall!" : ""});
  }
  t.print();

  std::printf("\nRecovered cache-index bits: %u (actual: %u)\n", recovered, secretLine);
  auto check = [](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
    return ok;
  };
  bool all = true;
  all &= check(recovered == secretLine, "vulnerable design: the attack recovers the secret bits");
  all &= check(secureUniform, "secure design: timing is uniform, the attack learns nothing");
  return all ? 0 : 1;
}
