// Location-independence sweep: UPEC's verdict must not depend on WHERE the
// secret lives. Runs the k=1 propagation check for every protected word of
// the data memory, on the secure and the Orc design. (In the paper the
// protected location is a user-provided parameter of the computational
// model — Fig. 3 — so this sweep validates that parameterisation.)
#include <cstdio>

#include "base/stopwatch.hpp"
#include "bench_util.hpp"
#include "upec/upec.hpp"

namespace {

using namespace upec;

}  // namespace

int main() {
  std::printf("Secret-location sweep — k=1 UPEC check per protected word\n\n");

  const soc::SocConfig secureCfg = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);

  upec::bench::Table t({"secret word", "secure design (cached)", "orc design (cached)"});
  unsigned securePAlerts = 0, orcAlerts = 0;
  upec::Stopwatch sw;
  for (std::uint32_t word = 0; word < secureCfg.machine.dmemWords; word += 3) {
    std::string secureCell, orcCell;
    {
      Miter m(secureCfg, word);
      UpecOptions o;
      o.scenario = SecretScenario::kInCache;
      UpecEngine e(m, o);
      const UpecResult r = e.check(1);
      secureCell = verdictName(r.verdict);
      securePAlerts += (r.verdict == Verdict::kPAlert);
    }
    {
      Miter m(soc::SocConfig::formalSmall(soc::SocVariant::kOrc), word);
      UpecOptions o;
      o.scenario = SecretScenario::kInCache;
      UpecEngine e(m, o);
      const UpecResult r = e.check(1);
      orcCell = verdictName(r.verdict);
      orcAlerts += (r.verdict != Verdict::kProven);
    }
    t.addRow({std::to_string(word), secureCell, orcCell});
  }
  t.print();
  std::printf("\ntotal sweep time: %s\n", upec::bench::fmtSeconds(sw.elapsedSeconds()).c_str());

  auto check = [](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
    return ok;
  };
  bool all = true;
  all &= check(securePAlerts > 0, "secure design: propagation P-alert at every location");
  all &= check(orcAlerts > 0, "orc design: alerts regardless of the secret's location");
  return all ? 0 : 1;
}
