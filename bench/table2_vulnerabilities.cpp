// Reproduces paper Table II: "DETECTING VULNERABILITIES IN MODIFIED
// DESIGNS" — window lengths and proof runtimes for the first P-alert and
// the first L-alert on the two deliberately-weakened designs (Orc and
// Meltdown-style).
//
// Expected shape (paper: P@2/L@4 for Orc, P@4/L@9 for Meltdown-style):
//  * the P-alert appears at a strictly shorter window than the L-alert
//    (it is the precursor the methodology exploits),
//  * the Orc channel is visible at shorter windows than the Meltdown-style
//    channel (a stall manifests immediately; a cache footprint needs the
//    refill to finish and a probe to observe it),
//  * P-alert checks are cheaper than L-alert checks.
#include <cstdio>
#include <set>

#include "base/stopwatch.hpp"
#include "bench_util.hpp"
#include "upec/upec.hpp"

namespace {

using namespace upec;

struct VulnResult {
  unsigned pWindow = 0;
  double pSeconds = 0;
  unsigned lWindow = 0;
  double lSeconds = 0;
  bool found = false;
};

VulnResult analyze(soc::SocVariant variant, unsigned maxWindow) {
  Miter miter(soc::SocConfig::formalSmall(variant), /*secretWord=*/12);
  UpecOptions options;
  options.scenario = SecretScenario::kInCache;
  // Budget the UNSAT-shaped intermediate windows (same policy as
  // MethodologyDriver::hunt): an inconclusive window just advances k.
  options.conflictBudget = 300'000;
  UpecEngine engine(miter, options);

  VulnResult r;
  upec::Stopwatch sinceStart;
  // Phase 1: first P-alert under the complete commitment.
  for (unsigned k = 1; k <= maxWindow && r.pWindow == 0; ++k) {
    const UpecResult res = engine.check(k);
    if (res.verdict == Verdict::kPAlert || res.verdict == Verdict::kLAlert) {
      r.pWindow = k;
      r.pSeconds = sinceStart.elapsedSeconds();
    }
  }
  // Phase 2: hunt the L-alert with an architectural-only commitment
  // (the paper's designer would similarly skip the per-register P-alert
  // enumeration once the compromise is obvious).
  const std::set<std::string> microOnly = engine.allMicroNames();
  for (unsigned k = r.pWindow; k <= maxWindow; ++k) {
    const UpecResult res = engine.check(k, microOnly);
    if (res.verdict == Verdict::kLAlert) {
      r.lWindow = k;
      r.lSeconds = sinceStart.elapsedSeconds();
      r.found = true;
      return r;
    }
  }
  return r;
}

}  // namespace

int main() {
  std::printf("Table II — detecting vulnerabilities in the modified designs\n");
  std::printf("(cumulative methodology runtime until the respective alert)\n\n");

  const VulnResult orc = analyze(soc::SocVariant::kOrc, 6);
  const VulnResult meltdown = analyze(soc::SocVariant::kMeltdownStyle, 10);

  upec::bench::Table t({"Design variant / vulnerability", "Orc", "Meltdown-style"});
  t.addRow({"Window length for P-alert", std::to_string(orc.pWindow),
            std::to_string(meltdown.pWindow)});
  t.addRow({"Runtime until P-alert", upec::bench::fmtSeconds(orc.pSeconds),
            upec::bench::fmtSeconds(meltdown.pSeconds)});
  t.addRow({"Window length for L-alert", std::to_string(orc.lWindow),
            std::to_string(meltdown.lWindow)});
  t.addRow({"Runtime until L-alert", upec::bench::fmtSeconds(orc.lSeconds),
            upec::bench::fmtSeconds(meltdown.lSeconds)});
  t.print();

  std::printf("\nPaper shape checks:\n");
  auto check = [](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
    return ok;
  };
  bool all = true;
  all &= check(orc.found, "Orc variant: L-alert found (design is insecure)");
  all &= check(meltdown.found, "Meltdown-style variant: L-alert found");
  all &= check(orc.pWindow < orc.lWindow, "Orc: P-alert precedes L-alert");
  all &= check(meltdown.pWindow < meltdown.lWindow, "Meltdown-style: P-alert precedes L-alert");
  all &= check(orc.lWindow < meltdown.lWindow,
               "Orc leaks at shorter windows than Meltdown-style");
  all &= check(orc.pSeconds <= orc.lSeconds && meltdown.pSeconds <= meltdown.lSeconds,
               "P-alerts are cheaper to find than L-alerts");
  return all ? 0 : 1;
}
