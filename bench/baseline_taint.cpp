// Baseline comparison (paper Sec. II): information-flow tracking against
// UPEC on the same designs.
//
//  * Dynamic (trace-based) taint tracking finds the Orc channel ONLY when
//    the stimulus happens to exercise it — a benign regression suite passes
//    the vulnerable design.
//  * Structural path taint ("taint property along a path") flags even the
//    secure design, because a structural path from the secret to the
//    register file always exists; the gating that blocks it is semantic.
//  * UPEC classifies all designs correctly, with no stimulus and no
//    path/sink selection.
#include <cstdio>

#include "bench_util.hpp"
#include "ift/path_taint.hpp"
#include "ift/taint_sim.hpp"
#include "riscv/assembler.hpp"
#include "soc/attack.hpp"
#include "upec/upec.hpp"

namespace {

using namespace upec;
using rtl::StateClass;

soc::SocConfig simCfg(soc::SocVariant v) {
  soc::SocConfig c;
  c.machine.xlen = 32;
  c.machine.nregs = 16;
  c.machine.imemWords = 64;
  c.machine.dmemWords = 256;
  c.machine.pmpEntries = 2;
  c.cacheLines = 16;
  c.pendingWriteCycles = 8;
  c.refillCycles = 4;
  c.variant = v;
  return c;
}

bool dynamicTaintFlags(soc::SocVariant v, const std::vector<std::uint32_t>& program) {
  const soc::SocConfig c = simCfg(v);
  rtl::Design d;
  soc::SocInstance inst = soc::SocBuilder::build(d, c, "");
  ift::TaintSim t(d);
  auto& sim = t.values();
  for (std::size_t i = 0; i < program.size(); ++i) {
    sim.writeMemWord(inst.imemMemId, i, program[i]);
  }
  sim.writeMemWord(inst.imemMemId, 60, 0x0000006f);  // spin handler
  constexpr std::uint32_t kSecretWord = 200;
  sim.writeMemWord(inst.dmemMemId, kSecretWord, 0x1B4);
  t.taintMemWord(inst.dmemMemId, kSecretWord);
  const unsigned idx = kSecretWord % c.cacheLines;
  sim.setReg(d.regIndexOf(inst.cacheValid[idx].id()), BitVec(1, 1));
  sim.setReg(d.regIndexOf(inst.cacheTag[idx].id()),
             BitVec(c.tagBits(), kSecretWord >> c.indexBits()));
  sim.writeMemWord(inst.cacheDataMemId, idx, 0x1B4);
  t.taintMemWord(inst.cacheDataMemId, idx);
  using namespace riscv;
  sim.setReg(d.regIndexOf(inst.pmpcfg[0].id()), BitVec(8, kPmpATor | kPmpR | kPmpW));
  sim.setReg(d.regIndexOf(inst.pmpaddr[0].id()), BitVec(c.wordAddrBits() + 1, 192));
  sim.setReg(d.regIndexOf(inst.pmpcfg[1].id()), BitVec(8, kPmpATor | kPmpL));
  sim.setReg(d.regIndexOf(inst.pmpaddr[1].id()), BitVec(c.wordAddrBits() + 1, 256));
  sim.setReg(d.regIndexOf(inst.mtvec.id()), BitVec(c.pcBits(), 60 * 4));
  sim.setReg(d.regIndexOf(inst.mode.id()), BitVec(1, 0));

  bool archTainted = false;
  for (unsigned i = 0; i < 80; ++i) {
    t.step();
    archTainted |= t.anyRegTainted(StateClass::kArch);
  }
  return archTainted;
}

bool structuralTaintFlags(soc::SocVariant v) {
  rtl::Design d;
  soc::SocInstance inst = soc::SocBuilder::build(d, simCfg(v), "");
  ift::PathTaint pt(d);
  pt.addSourceMem(inst.dmemMemId);
  pt.addSourceMem(inst.cacheDataMemId);
  pt.propagate();
  return pt.anyRegReachable(StateClass::kArch);
}

bool upecFlags(soc::SocVariant v) {
  Miter miter(soc::SocConfig::formalSmall(v), /*secretWord=*/12);
  UpecOptions options;
  options.scenario = SecretScenario::kInCache;
  MethodologyDriver driver(miter, options);
  if (v == soc::SocVariant::kSecure) {
    return driver.run(2, miniRvBlockingConditions()).finalVerdict == Verdict::kLAlert;
  }
  return driver.hunt(4).finalVerdict == Verdict::kLAlert;
}

}  // namespace

int main() {
  std::printf("Baseline comparison — IFT variants vs UPEC (flagging = 'reports a leak')\n\n");

  soc::AttackLayout layout;
  layout.protectedByteAddr = 200 * 4;
  layout.accessibleByteAddr = 64 * 4;
  const auto attackProgram = soc::orcAttackProgram(layout, 13);
  riscv::Assembler benign;
  benign.li(1, 0x40);
  benign.lw(2, 1, 0);
  benign.addi(2, 2, 1);
  const riscv::Label park = benign.newLabel();
  benign.bind(park);
  benign.j(park);
  const auto benignProgram = benign.finish();

  upec::bench::Table t(
      {"method", "secure design", "Orc design", "correct?"});
  auto flag = [](bool b) { return std::string(b ? "FLAGS" : "passes"); };

  const bool dynSecAttack = dynamicTaintFlags(soc::SocVariant::kSecure, attackProgram);
  const bool dynOrcAttack = dynamicTaintFlags(soc::SocVariant::kOrc, attackProgram);
  t.addRow({"dynamic taint, attack trace", flag(dynSecAttack), flag(dynOrcAttack),
            (!dynSecAttack && dynOrcAttack) ? "yes (needs the attack!)" : "no"});

  const bool dynSecBenign = dynamicTaintFlags(soc::SocVariant::kSecure, benignProgram);
  const bool dynOrcBenign = dynamicTaintFlags(soc::SocVariant::kOrc, benignProgram);
  t.addRow({"dynamic taint, benign trace", flag(dynSecBenign), flag(dynOrcBenign),
            dynOrcBenign ? "yes" : "NO: misses the covert channel"});

  const bool pathSec = structuralTaintFlags(soc::SocVariant::kSecure);
  const bool pathOrc = structuralTaintFlags(soc::SocVariant::kOrc);
  t.addRow({"structural path taint", flag(pathSec), flag(pathOrc),
            pathSec ? "NO: false positive on secure" : "yes"});

  const bool upecSec = upecFlags(soc::SocVariant::kSecure);
  const bool upecOrc = upecFlags(soc::SocVariant::kOrc);
  t.addRow({"UPEC (exhaustive, no stimulus)", flag(upecSec), flag(upecOrc),
            (!upecSec && upecOrc) ? "yes" : "no"});
  t.print();

  std::printf("\nShape checks:\n");
  auto check = [](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
    return ok;
  };
  bool all = true;
  all &= check(!dynOrcBenign, "trace-based IFT misses the channel on benign stimulus");
  all &= check(pathSec, "structural taint false-positives on the secure design");
  all &= check(!upecSec && upecOrc, "UPEC alone is both exhaustive and precise");
  return all ? 0 : 1;
}
