// Reproduces paper Sec. VII-C: the ISA-incompliance UPEC found in
// RocketChip's physical memory protection — the base address of a locked
// TOR range remained writable. Shown twice: (1) as a directed ISA test on
// the cycle-accurate model, (2) as a UPEC L-alert through the "main
// channel" (the solver synthesises privileged code that moves the locked
// range and then reads the secret from user mode).
#include <cstdio>

#include "base/stopwatch.hpp"
#include "bench_util.hpp"
#include "riscv/assembler.hpp"
#include "soc/attack.hpp"
#include "soc/testbench.hpp"
#include "upec/upec.hpp"

namespace {

using namespace upec;
using namespace upec::soc;

struct DirectedResult {
  std::uint32_t pmpaddr0After = 0;
  std::uint32_t secretRead = 0;  // value observed by the user process
};

DirectedResult directedTest(SocVariant variant) {
  using namespace riscv;
  SocConfig c;
  c.machine.xlen = 32;
  c.machine.nregs = 16;
  c.machine.imemWords = 64;
  c.machine.dmemWords = 256;
  c.machine.pmpEntries = 2;
  c.machine.pmpLockBug = (variant == SocVariant::kPmpLockBug);
  c.cacheLines = 16;
  c.variant = variant;

  Assembler kernel;
  kernel.li(1, 250);                 // new base above the secret word
  kernel.csrrw(0, kCsrPmpaddr0, 1);  // locked by the TOR rule — or is it?
  kernel.li(2, 10 * 4);
  kernel.csrrw(0, kCsrMepc, 2);
  kernel.mret();

  Assembler user;
  user.li(1, 200 * 4);
  user.lw(3, 1, 0);  // read the (formerly?) protected secret
  const riscv::Label park = user.newLabel();
  user.bind(park);
  user.j(park);

  SocTestbench tb(c);
  tb.loadProgram(kernel.finish());
  tb.loadProgram(user.finish(), 10);
  tb.loadProgram(spinHandler(), 60);
  tb.setCsrMtvec(60 * 4);
  tb.setDmemWord(200, 0x5EC8E7);
  tb.protectFromWord(192, 256);
  tb.run(150);

  DirectedResult r;
  r.pmpaddr0After = static_cast<std::uint32_t>(
      tb.simulator()
          .regValue(tb.instance().pc.design()->regIndexOf(tb.instance().pmpaddr[0].id()))
          .uint());
  r.secretRead = tb.reg(3);
  return r;
}

}  // namespace

int main() {
  std::printf("Sec. VII-C — PMP lock bypass (RocketChip ISA-incompliance found by UPEC)\n\n");

  const DirectedResult buggy = directedTest(SocVariant::kPmpLockBug);
  const DirectedResult fixed = directedTest(SocVariant::kSecure);

  upec::bench::Table t({"", "buggy PMP", "correct PMP"});
  t.addRow({"pmpaddr0 after privileged rewrite", std::to_string(buggy.pmpaddr0After),
            std::to_string(fixed.pmpaddr0After)});
  auto hexOrBlocked = [](std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%X", v);
    return std::string(v ? buf : "blocked");
  };
  t.addRow({"secret observed by user process", hexOrBlocked(buggy.secretRead),
            hexOrBlocked(fixed.secretRead)});
  t.print();

  std::printf("\nUPEC analysis (the solver finds the attack on its own):\n");
  upec::Stopwatch sw;
  Miter buggyMiter(SocConfig::formalSmall(SocVariant::kPmpLockBug), /*secretWord=*/12);
  UpecOptions options;  // scenario kAny: the main channel needs no cache copy
  MethodologyDriver driver(buggyMiter, options);
  const MethodologyReport report = driver.hunt(8);
  std::printf("  buggy PMP:   %s", verdictName(report.finalVerdict));
  if (report.firstLAlertWindow) {
    std::printf(" (L-alert at window %u, registers:", *report.firstLAlertWindow);
    for (const std::string& r : report.lAlertRegisters) std::printf(" %s", r.c_str());
    std::printf(")");
  }
  std::printf("  [%s]\n", upec::bench::fmtSeconds(sw.elapsedSeconds()).c_str());

  sw.reset();
  Miter fixedMiter(SocConfig::formalSmall(SocVariant::kSecure), /*secretWord=*/12);
  MethodologyDriver fixedDriver(fixedMiter, options);
  const MethodologyReport fixedReport = fixedDriver.run(2, miniRvBlockingConditions());
  std::printf("  correct PMP: %s  [%s]\n", verdictName(fixedReport.finalVerdict),
              upec::bench::fmtSeconds(sw.elapsedSeconds()).c_str());

  auto check = [](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
    return ok;
  };
  bool all = true;
  all &= check(buggy.pmpaddr0After == 250, "bug: locked TOR base was rewritten");
  all &= check(fixed.pmpaddr0After == 192, "fix: locked TOR base immutable");
  all &= check(buggy.secretRead == 0x5EC8E7, "bug: user process reads the secret");
  all &= check(fixed.secretRead == 0, "fix: user access faults");
  all &= check(report.finalVerdict == Verdict::kLAlert, "UPEC flags the buggy design (L-alert)");
  all &= check(fixedReport.finalVerdict != Verdict::kLAlert, "UPEC passes the correct design");
  return all ? 0 : 1;
}
