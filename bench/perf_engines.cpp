// Microbenchmarks for the verification substrate: SAT solver throughput,
// bit-blasting, simulator speed and miter construction. These quantify the
// engines behind the paper-reproduction tables. Runs on the in-tree
// micro-bench harness (bench_util.hpp) so it builds everywhere — no
// external benchmark library required.
#include <cstdio>
#include <span>
#include <vector>

#include "base/rng.hpp"
#include "bench_util.hpp"
#include "formal/bmc.hpp"
#include "formal/cnf_builder.hpp"
#include "formal/unroller.hpp"
#include "riscv/assembler.hpp"
#include "sat/solver.hpp"
#include "sim/simulator.hpp"
#include "soc/testbench.hpp"
#include "upec/upec.hpp"

namespace {

using namespace upec;

void satRandom3Sat(int numVars) {
  const int numClauses = numVars * 4;  // near the satisfiable side
  Rng rng(42);
  sat::Solver solver;
  for (int i = 0; i < numVars; ++i) solver.newVar();
  for (int c = 0; c < numClauses; ++c) {
    std::vector<sat::Lit> clause;
    for (int i = 0; i < 3; ++i) {
      clause.push_back(sat::Lit(static_cast<sat::Var>(rng.below(numVars)), rng.flip()));
    }
    solver.addClause(std::span<const sat::Lit>(clause));
  }
  bench::doNotOptimize(solver.solve());
}

void satPigeonholeUnsat(int holes) {
  sat::Solver s;
  std::vector<std::vector<sat::Var>> p(holes + 1, std::vector<sat::Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.newVar();
  for (int i = 0; i <= holes; ++i) {
    std::vector<sat::Lit> c;
    for (int j = 0; j < holes; ++j) c.push_back(sat::Lit(p[i][j], false));
    s.addClause(std::span<const sat::Lit>(c));
  }
  for (int j = 0; j < holes; ++j)
    for (int i1 = 0; i1 <= holes; ++i1)
      for (int i2 = i1 + 1; i2 <= holes; ++i2)
        s.addClause({sat::Lit(p[i1][j], true), sat::Lit(p[i2][j], true)});
  bench::doNotOptimize(s.solve());
}

void miterUnrollEncode(Miter& miter, unsigned k) {
  sat::Solver solver;
  formal::CnfBuilder cnf(solver);
  formal::Unroller unroller(miter.design(), cnf);
  unroller.unrollTo(k);
  bench::doNotOptimize(solver.numClauses());
}

}  // namespace

int main() {
  std::printf("Engine microbenchmarks (in-tree harness; mean wall time per op)\n\n");
  bench::Table table({"benchmark", "time/op", "iterations"});
  auto row = [&table](const char* name, const bench::MicroBenchResult& r) {
    table.addRow({name, r.pretty(), std::to_string(r.iterations)});
  };

  row("sat_random_3sat/100", bench::microBench([] { satRandom3Sat(100); }));
  row("sat_random_3sat/300", bench::microBench([] { satRandom3Sat(300); }));
  row("sat_pigeonhole_unsat/5", bench::microBench([] { satPigeonholeUnsat(5); }));
  row("sat_pigeonhole_unsat/6", bench::microBench([] { satPigeonholeUnsat(6); }));

  {
    soc::SocConfig cfg = soc::SocConfig::simLarge(soc::SocVariant::kSecure);
    soc::SocTestbench tb(cfg);
    riscv::Assembler a;
    const riscv::Label loop = a.newLabel();
    a.bind(loop);
    a.addi(1, 1, 1);
    a.li(2, 0x100);
    a.sw(1, 2, 0);
    a.lw(3, 2, 0);
    a.j(loop);
    tb.loadProgram(a.finish());
    row("soc_simulation/100_cycles", bench::microBench([&tb] { tb.run(100); }));
  }

  row("miter_construction", bench::microBench([] {
        Miter miter(soc::SocConfig::formalSmall(soc::SocVariant::kSecure), 12);
        bench::doNotOptimize(miter.logicPairs().size());
      }));

  {
    Miter miter(soc::SocConfig::formalSmall(soc::SocVariant::kSecure), 12);
    row("miter_unroll_encode/k2", bench::microBench([&miter] { miterUnrollEncode(miter, 2); }));
    row("miter_unroll_encode/k4", bench::microBench([&miter] { miterUnrollEncode(miter, 4); }));
  }

  {
    Miter miter(soc::SocConfig::formalSmall(soc::SocVariant::kOrc), 12);
    UpecOptions options;
    options.scenario = SecretScenario::kInCache;
    UpecEngine engine(miter, options);
    row("upec_check_orc_k1",
        bench::microBench([&engine] { bench::doNotOptimize(engine.check(1).verdict); }));
  }

  table.print();
  return 0;
}
