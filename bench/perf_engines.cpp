// google-benchmark microbenchmarks for the verification substrate: SAT
// solver throughput, bit-blasting, simulator speed and miter construction.
// These quantify the engines behind the paper-reproduction tables.
#include <benchmark/benchmark.h>

#include "base/rng.hpp"
#include "riscv/assembler.hpp"
#include "formal/bmc.hpp"
#include "formal/cnf_builder.hpp"
#include "formal/unroller.hpp"
#include "sim/simulator.hpp"
#include "soc/testbench.hpp"
#include "upec/upec.hpp"

namespace {

using namespace upec;

void BM_SatRandom3Sat(benchmark::State& state) {
  const int numVars = static_cast<int>(state.range(0));
  const int numClauses = numVars * 4;  // near the satisfiable side
  for (auto _ : state) {
    Rng rng(42);
    sat::Solver solver;
    for (int i = 0; i < numVars; ++i) solver.newVar();
    for (int c = 0; c < numClauses; ++c) {
      std::vector<sat::Lit> clause;
      for (int i = 0; i < 3; ++i) {
        clause.push_back(sat::Lit(static_cast<sat::Var>(rng.below(numVars)), rng.flip()));
      }
      solver.addClause(std::span<const sat::Lit>(clause));
    }
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(100)->Arg(300);

void BM_SatPigeonholeUnsat(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    std::vector<std::vector<sat::Var>> p(holes + 1, std::vector<sat::Var>(holes));
    for (auto& row : p)
      for (auto& v : row) v = s.newVar();
    for (int i = 0; i <= holes; ++i) {
      std::vector<sat::Lit> c;
      for (int j = 0; j < holes; ++j) c.push_back(sat::Lit(p[i][j], false));
      s.addClause(std::span<const sat::Lit>(c));
    }
    for (int j = 0; j < holes; ++j)
      for (int i1 = 0; i1 <= holes; ++i1)
        for (int i2 = i1 + 1; i2 <= holes; ++i2)
          s.addClause({sat::Lit(p[i1][j], true), sat::Lit(p[i2][j], true)});
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPigeonholeUnsat)->Arg(5)->Arg(6);

void BM_SocSimulation(benchmark::State& state) {
  soc::SocConfig cfg = soc::SocConfig::simLarge(soc::SocVariant::kSecure);
  soc::SocTestbench tb(cfg);
  riscv::Assembler a;
  const riscv::Label loop = a.newLabel();
  a.bind(loop);
  a.addi(1, 1, 1);
  a.li(2, 0x100);
  a.sw(1, 2, 0);
  a.lw(3, 2, 0);
  a.j(loop);
  tb.loadProgram(a.finish());
  for (auto _ : state) {
    tb.run(100);
  }
  state.SetItemsProcessed(state.iterations() * 100);  // cycles
}
BENCHMARK(BM_SocSimulation);

void BM_MiterConstruction(benchmark::State& state) {
  for (auto _ : state) {
    Miter miter(soc::SocConfig::formalSmall(soc::SocVariant::kSecure), 12);
    benchmark::DoNotOptimize(miter.logicPairs().size());
  }
}
BENCHMARK(BM_MiterConstruction);

void BM_MiterUnrollEncode(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  Miter miter(soc::SocConfig::formalSmall(soc::SocVariant::kSecure), 12);
  for (auto _ : state) {
    sat::Solver solver;
    formal::CnfBuilder cnf(solver);
    formal::Unroller unroller(miter.design(), cnf);
    unroller.unrollTo(k);
    benchmark::DoNotOptimize(solver.numClauses());
  }
}
BENCHMARK(BM_MiterUnrollEncode)->Arg(2)->Arg(4);

void BM_UpecCheckOrcK1(benchmark::State& state) {
  Miter miter(soc::SocConfig::formalSmall(soc::SocVariant::kOrc), 12);
  UpecOptions options;
  options.scenario = SecretScenario::kInCache;
  UpecEngine engine(miter, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.check(1).verdict);
  }
}
BENCHMARK(BM_UpecCheckOrcK1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
