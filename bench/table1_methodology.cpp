// Reproduces paper Table I: "UPEC METHODOLOGY EXPERIMENTS" — the full
// methodology (Fig. 5) applied to the ORIGINAL (secure) design for the two
// cases "secret in the cache" and "secret not in the cache".
//
// Expected shape (paper): with the secret NOT cached there are zero
// P-alerts and the design is proven quickly; with the secret cached the
// faulting load propagates the secret into program-invisible buffers
// (P-alerts), no L-alert exists, and an inductive proof closes the
// security argument. Absolute numbers differ from the paper (our substrate
// is a MiniRV model and our own SAT engine, not RocketChip + OneSpin), but
// every qualitative relation must hold.
#include <cstdio>

#include "base/stopwatch.hpp"
#include "bench_util.hpp"
#include "upec/upec.hpp"

namespace {

using namespace upec;

struct CaseResult {
  unsigned dMem = 0;
  unsigned feasibleK = 0;
  std::size_t numPAlerts = 0;
  std::size_t numPAlertRegs = 0;
  double proofSeconds = 0;
  std::uint64_t peakClauses = 0;
  std::uint64_t peakVars = 0;
  bool inductionUsed = false;
  bool inductionHolds = false;
  double inductionSeconds = 0;
  Verdict verdict = Verdict::kUnknown;
};

CaseResult runCase(SecretScenario scenario, unsigned maxWindow) {
  const soc::SocConfig config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  Miter miter(config, /*secretWord=*/12);
  UpecOptions options;
  options.scenario = scenario;
  MethodologyDriver driver(miter, options);
  const MethodologyReport report = driver.run(maxWindow, miniRvBlockingConditions());

  CaseResult r;
  // d_MEM: length of the longest memory transaction (paper Sec. V). A hit
  // answers combinationally and is consumed one cycle later; a miss takes
  // the refill plus the victim write-back and the response hand-off.
  r.dMem = scenario == SecretScenario::kInCache ? 2 : config.refillCycles + 2;
  r.feasibleK = report.maxWindow;
  r.numPAlerts = report.pAlerts.size();
  r.numPAlertRegs = report.pAlertRegisters.size();
  r.proofSeconds = report.totalRuntimeSec;
  r.peakClauses = report.peakClauses;
  r.peakVars = report.peakVars;
  r.inductionUsed = report.inductionUsed;
  r.inductionHolds = report.inductionHolds;
  r.inductionSeconds = report.inductionRuntimeSec;
  r.verdict = report.finalVerdict;
  return r;
}

}  // namespace

int main() {
  std::printf("Table I — UPEC methodology on the original (secure) design\n");
  std::printf("(paper: OneSpin 360 DV-Verify on RocketChip; here: own IPC engine on MiniRV)\n\n");

  const CaseResult cached = runCase(SecretScenario::kInCache, /*maxWindow=*/2);
  const CaseResult notCached = runCase(SecretScenario::kNotInCache, /*maxWindow=*/2);

  upec::bench::Table t({"", "D cached", "D not cached"});
  auto num = [](auto v) { return std::to_string(v); };
  t.addRow({"d_MEM", num(cached.dMem), num(notCached.dMem)});
  t.addRow({"Feasible k", num(cached.feasibleK), num(notCached.feasibleK)});
  t.addRow({"# of P-alerts", num(cached.numPAlerts), num(notCached.numPAlerts)});
  t.addRow({"# of RTL registers causing P-alerts", num(cached.numPAlertRegs),
            num(notCached.numPAlertRegs)});
  t.addRow({"Proof runtime", upec::bench::fmtSeconds(cached.proofSeconds),
            upec::bench::fmtSeconds(notCached.proofSeconds)});
  t.addRow({"Proof size (peak clauses)", num(cached.peakClauses), num(notCached.peakClauses)});
  t.addRow({"Proof size (peak variables)", num(cached.peakVars), num(notCached.peakVars)});
  t.addRow({"Inductive proof runtime",
            cached.inductionUsed ? upec::bench::fmtSeconds(cached.inductionSeconds) : "N/A",
            notCached.inductionUsed ? upec::bench::fmtSeconds(notCached.inductionSeconds)
                                    : "N/A"});
  t.addRow({"Manual effort", "automated", "automated"});
  t.addRow({"Final verdict", verdictName(cached.verdict), verdictName(notCached.verdict)});
  t.print();

  std::printf("\nPaper shape checks:\n");
  auto check = [](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what);
    return ok;
  };
  bool all = true;
  all &= check(notCached.numPAlerts == 0, "D not cached: zero P-alerts (secret cannot propagate)");
  all &= check(notCached.verdict == Verdict::kProven, "D not cached: proven secure");
  all &= check(cached.numPAlerts > 0, "D cached: P-alerts exist (secret enters buffers)");
  all &= check(cached.verdict == Verdict::kProven,
               "D cached: no L-alert; induction closes the proof");
  all &= check(cached.inductionUsed && cached.inductionHolds,
               "D cached: inductive proof succeeds");
  all &= check(notCached.proofSeconds < cached.proofSeconds,
               "D not cached is the cheaper case");
  return all ? 0 : 1;
}
