// Shared helpers for the paper-reproduction bench binaries: fixed-width
// table rendering in the style of the paper's tables, and time formatting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace upec::bench {

inline std::string fmtSeconds(double s) {
  char buf[32];
  if (s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.0f ms", s * 1e3);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof buf, "%.1f s", s);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f min", s / 60.0);
  }
  return buf;
}

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void addRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto printRow = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        std::printf(" %-*s |", static_cast<int>(width[i]), cell.c_str());
      }
      std::printf("\n");
    };
    auto printSep = [&]() {
      std::printf("+");
      for (std::size_t i = 0; i < width.size(); ++i) {
        std::printf("%s+", std::string(width[i] + 2, '-').c_str());
      }
      std::printf("\n");
    };
    printSep();
    printRow(header_);
    printSep();
    for (const auto& r : rows_) printRow(r);
    printSep();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace upec::bench
