// Shared helpers for the paper-reproduction bench binaries: fixed-width
// table rendering in the style of the paper's tables, time formatting, and
// a dependency-free micro-benchmark harness (so perf benches build
// everywhere instead of being gated on an external benchmark library).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "base/stopwatch.hpp"

namespace upec::bench {

// Keeps a value alive in the eyes of the optimiser (the usual empty-asm
// trick; the memory clobber forces preceding stores to happen).
template <typename T>
inline void doNotOptimize(T const& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  volatile T sink = value;
  (void)sink;
#endif
}

struct MicroBenchResult {
  double nsPerOp = 0.0;
  std::uint64_t iterations = 0;

  std::string pretty() const {
    char buf[48];
    if (nsPerOp >= 1e6) {
      std::snprintf(buf, sizeof buf, "%.2f ms", nsPerOp / 1e6);
    } else if (nsPerOp >= 1e3) {
      std::snprintf(buf, sizeof buf, "%.2f us", nsPerOp / 1e3);
    } else {
      std::snprintf(buf, sizeof buf, "%.0f ns", nsPerOp);
    }
    return buf;
  }
};

// Runs fn repeatedly until minTimeSec of wall clock has accumulated (after
// one untimed warm-up call) and reports the mean time per call. Batches
// grow geometrically so cheap operations are not dominated by timer reads.
template <typename F>
MicroBenchResult microBench(F&& fn, double minTimeSec = 0.2) {
  fn();  // warm-up: page in code and data
  MicroBenchResult result;
  double elapsed = 0.0;
  std::uint64_t batch = 1;
  while (elapsed < minTimeSec) {
    Stopwatch timer;
    for (std::uint64_t i = 0; i < batch; ++i) fn();
    elapsed += timer.elapsedSeconds();
    result.iterations += batch;
    if (batch < (1ull << 20)) batch *= 2;
  }
  result.nsPerOp = elapsed * 1e9 / static_cast<double>(result.iterations);
  return result;
}

inline std::string fmtSeconds(double s) {
  char buf[32];
  if (s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.0f ms", s * 1e3);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof buf, "%.1f s", s);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f min", s / 60.0);
  }
  return buf;
}

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void addRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto printRow = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        std::printf(" %-*s |", static_cast<int>(width[i]), cell.c_str());
      }
      std::printf("\n");
    };
    auto printSep = [&]() {
      std::printf("+");
      for (std::size_t i = 0; i < width.size(); ++i) {
        std::printf("%s+", std::string(width[i] + 2, '-').c_str());
      }
      std::printf("\n");
    };
    printSep();
    printRow(header_);
    printSep();
    for (const auto& r : rows_) printRow(r);
    printSep();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace upec::bench
