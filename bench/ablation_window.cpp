// Ablation for paper Sec. V: cost of the bounded model as the window
// length k grows, and the effect of the structural initial-state equality
// encoding (shared frame-0 variables) versus plain equality assumptions.
// The paper reports hours of CPU and gigabytes for k = 9 on RocketChip with
// a commercial checker; the same growth trend must be visible here.
#include <cstdio>

#include "base/stopwatch.hpp"
#include "bench_util.hpp"
#include "upec/upec.hpp"

namespace {

using namespace upec;

}  // namespace

int main() {
  std::printf("Ablation (Sec. V) — proof effort vs window length k\n");
  std::printf("(secure design, secret in cache: every check is a full UNSAT proof\n");
  std::printf("after the resp_buf P-alert registers are excluded)\n\n");

  Miter miter(soc::SocConfig::formalSmall(soc::SocVariant::kSecure), /*secretWord=*/12);
  UpecOptions options;
  options.scenario = SecretScenario::kInCache;

  // Discover the P-alert registers once.
  UpecEngine engine(miter, options);
  std::set<std::string> excluded;
  for (;;) {
    const UpecResult res = engine.check(1, excluded);
    if (res.verdict != Verdict::kPAlert) break;
    for (const std::string& r : res.differingMicro) excluded.insert(r);
  }

  upec::bench::Table t({"k", "variables", "clauses", "conflicts", "runtime", "verdict"});
  for (unsigned k = 1; k <= 3; ++k) {
    upec::Stopwatch sw;
    const UpecResult res = engine.check(k, excluded);
    t.addRow({std::to_string(k), std::to_string(res.stats.vars),
              std::to_string(res.stats.clauses), std::to_string(res.stats.conflicts),
              upec::bench::fmtSeconds(sw.elapsedSeconds()), verdictName(res.verdict)});
  }
  t.print();

  std::printf("\nEncoding ablation at k = 2 (structural equality vs assumptions):\n");
  upec::bench::Table t2({"initial-state equality", "variables", "clauses", "runtime", "verdict"});
  for (const bool structural : {true, false}) {
    UpecOptions o = options;
    o.structuralInitEquality = structural;
    o.conflictBudget = 4'000'000;
    UpecEngine e(miter, o);
    upec::Stopwatch sw;
    const UpecResult res = e.check(2, excluded);
    t2.addRow({structural ? "shared frame-0 variables" : "equality assumptions",
               std::to_string(res.stats.vars), std::to_string(res.stats.clauses),
               upec::bench::fmtSeconds(sw.elapsedSeconds()), verdictName(res.verdict)});
  }
  t2.print();
  std::printf("\nThe shared-variable encoding collapses the two instances outside the\n");
  std::printf("difference cone; plain assumptions leave the solver to re-derive every\n");
  std::printf("equality by resolution (the growth the paper's Tab. I runtimes show).\n");
  return 0;
}
