// Coverage for the solver features the campaign engine's scheduling and
// timeout handling depend on: unsat-core extraction over assumptions, the
// conflict-budget kUndef path (with its per-solve reset), and the per-solve
// stat deltas that feed BmcStats in incremental sessions.
#include <gtest/gtest.h>

#include <vector>

#include "sat/solver.hpp"

namespace upec::sat {
namespace {

Lit pos(Var v) { return Lit(v, false); }
Lit neg(Var v) { return Lit(v, true); }

// Pigeonhole principle PHP(pigeons, holes): unsat when pigeons > holes and
// exponentially hard for resolution — a reliable way to exhaust a small
// conflict budget.
void encodePigeonhole(Solver& s, int pigeons, int holes, std::vector<std::vector<Var>>& at) {
  at.assign(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) at[p][h] = s.newVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> some;
    for (int h = 0; h < holes; ++h) some.push_back(pos(at[p][h]));
    s.addClause(some);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.addClause({neg(at[p1][h]), neg(at[p2][h])});
      }
    }
  }
}

// --- unsat cores over assumptions -----------------------------------------

TEST(SatCore, CoreIsSufficientForUnsat) {
  // (¬a ∨ ¬b) with assumptions {a, b, c, d}: the core must name a and b
  // (in some phase) and must not name c or d.
  Solver s;
  const Var a = s.newVar(), b = s.newVar(), c = s.newVar(), d = s.newVar();
  ASSERT_TRUE(s.addClause({neg(a), neg(b)}));
  const std::vector<Lit> assumptions = {pos(a), pos(b), pos(c), pos(d)};
  ASSERT_EQ(s.solve(assumptions), LBool::kFalse);

  const std::vector<Lit>& core = s.conflictingAssumptions();
  ASSERT_FALSE(core.empty());
  for (const Lit l : core) {
    EXPECT_TRUE(l.var() == a || l.var() == b) << "core var " << l.var();
  }

  // Sufficiency: assert the core's assumptions as units in a fresh solver
  // with the same clause — it must become unsat outright.
  Solver fresh;
  const Var fa = fresh.newVar(), fb = fresh.newVar();
  fresh.newVar();
  fresh.newVar();
  ASSERT_TRUE(fresh.addClause({neg(fa), neg(fb)}));
  bool ok = true;
  for (const Lit l : core) ok = ok && fresh.addUnit(~l);  // core lits are negated assumptions
  EXPECT_TRUE(!ok || fresh.solve() == LBool::kFalse);
}

TEST(SatCore, ChainedCoreTracksDependencies) {
  // a → b → c, plus (¬c): assuming {a, x} must yield a core that involves
  // a, not the irrelevant x.
  Solver s;
  const Var a = s.newVar(), b = s.newVar(), c = s.newVar(), x = s.newVar();
  ASSERT_TRUE(s.addClause({neg(a), pos(b)}));
  ASSERT_TRUE(s.addClause({neg(b), pos(c)}));
  ASSERT_TRUE(s.addClause({neg(c)}));
  const std::vector<Lit> assumptions = {pos(x), pos(a)};
  ASSERT_EQ(s.solve(assumptions), LBool::kFalse);
  bool sawA = false;
  for (const Lit l : s.conflictingAssumptions()) {
    EXPECT_NE(l.var(), x);
    sawA |= l.var() == a;
  }
  EXPECT_TRUE(sawA);
  // The solver must remain usable: without the poisonous assumption the
  // formula is satisfiable.
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_FALSE(s.modelValue(a));
}

TEST(SatCore, AssumptionConflictingAtLevelZero) {
  // A unit clause ¬a makes the assumption a false before any decision; the
  // core path must still report it rather than crash or report unsat
  // without assumptions.
  Solver s;
  const Var a = s.newVar();
  ASSERT_TRUE(s.addUnit(neg(a)));
  const std::vector<Lit> assumptions = {pos(a)};
  ASSERT_EQ(s.solve(assumptions), LBool::kFalse);
  EXPECT_EQ(s.solve(), LBool::kTrue) << "solver must survive the failed assumption";
}

// --- conflict budget (the campaign's timeout mechanism) --------------------

TEST(SatBudget, TinyBudgetYieldsUndef) {
  Solver s;
  std::vector<std::vector<Var>> at;
  encodePigeonhole(s, 7, 6, at);
  s.setConflictBudget(5);
  EXPECT_EQ(s.solve(), LBool::kUndef);
  EXPECT_GE(s.lastSolveStats().conflicts, 5u);
  EXPECT_TRUE(s.lastSolveBudgetExhausted());
}

TEST(SatBudget, StopAndBudgetUndefAreDistinguished) {
  // Both abort paths return kUndef, but only the budget one marks the call
  // budget-exhausted — the reschedule scheduler keys on the difference (a
  // starved window is worth a bigger budget, a cancelled one is not).
  Solver s;
  std::vector<std::vector<Var>> at;
  encodePigeonhole(s, 7, 6, at);
  s.requestStop();
  ASSERT_EQ(s.solve(), LBool::kUndef);
  EXPECT_FALSE(s.lastSolveBudgetExhausted());
  s.clearStop();
  s.setConflictBudget(5);
  ASSERT_EQ(s.solve(), LBool::kUndef);
  EXPECT_TRUE(s.lastSolveBudgetExhausted());
  s.setConflictBudget(0);
  ASSERT_EQ(s.solve(), LBool::kFalse);
  EXPECT_FALSE(s.lastSolveBudgetExhausted()) << "a decided call clears the flag";
}

TEST(SatBudget, BudgetResetsPerSolveCall) {
  // An incremental session gives every solve() a fresh allowance: the
  // second call must again spend (at least) the budget, not abort at zero.
  Solver s;
  std::vector<std::vector<Var>> at;
  encodePigeonhole(s, 7, 6, at);
  s.setConflictBudget(20);
  ASSERT_EQ(s.solve(), LBool::kUndef);
  const std::uint64_t first = s.lastSolveStats().conflicts;
  ASSERT_EQ(s.solve(), LBool::kUndef);
  const std::uint64_t second = s.lastSolveStats().conflicts;
  EXPECT_GE(first, 20u);
  EXPECT_GE(second, 20u) << "budget must not be consumed across calls";
  EXPECT_EQ(s.stats().conflicts, first + second);
}

TEST(SatBudget, UndefThenUnlimitedFinishes) {
  // The kUndef abort must leave the solver consistent: lifting the budget
  // and re-solving the same instance gives the real verdict.
  Solver s;
  std::vector<std::vector<Var>> at;
  encodePigeonhole(s, 6, 5, at);
  s.setConflictBudget(3);
  ASSERT_EQ(s.solve(), LBool::kUndef);
  s.setConflictBudget(0);
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(SatBudget, SatInstanceUnaffectedByGenerousBudget) {
  Solver s;
  const Var a = s.newVar(), b = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a), pos(b)}));
  s.setConflictBudget(1'000'000);
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

// --- per-solve stat deltas -------------------------------------------------

TEST(SatStats, LastSolveStatsAreDeltas) {
  Solver s;
  std::vector<std::vector<Var>> at;
  encodePigeonhole(s, 5, 4, at);
  ASSERT_EQ(s.solve(), LBool::kFalse);
  const SolverStats first = s.lastSolveStats();
  EXPECT_EQ(first.solves, 1u);
  EXPECT_GT(first.propagations, 0u);
  EXPECT_EQ(first.conflicts, s.stats().conflicts);

  // A second (now trivially unsat) call must report only its own effort.
  ASSERT_EQ(s.solve(), LBool::kFalse);
  const SolverStats second = s.lastSolveStats();
  EXPECT_EQ(second.solves, 1u);
  EXPECT_EQ(second.conflicts, 0u);
  EXPECT_EQ(s.stats().solves, 2u);
  EXPECT_LT(second.propagations, first.propagations)
      << "the ok_=false fast path must not re-pay the first call's work";
}

TEST(SatStats, DeltasSumToCumulativeAcrossAssumptionCalls) {
  Solver s;
  const Var a = s.newVar(), b = s.newVar(), c = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a), pos(b), pos(c)}));
  ASSERT_TRUE(s.addClause({neg(a), pos(b)}));

  SolverStats sum;
  for (const Lit assumption : {pos(a), neg(b), pos(c)}) {
    const std::vector<Lit> as = {assumption};
    ASSERT_NE(s.solve(as), LBool::kUndef);
    const SolverStats d = s.lastSolveStats();
    sum.decisions += d.decisions;
    sum.propagations += d.propagations;
    sum.conflicts += d.conflicts;
    sum.solves += d.solves;
  }
  EXPECT_EQ(sum.decisions, s.stats().decisions);
  EXPECT_EQ(sum.propagations, s.stats().propagations);
  EXPECT_EQ(sum.conflicts, s.stats().conflicts);
  EXPECT_EQ(sum.solves, s.stats().solves);
}

}  // namespace
}  // namespace upec::sat
