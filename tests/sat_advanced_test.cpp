// Additional SAT solver coverage: assumption cores, incremental workflows,
// solver behaviour on structured instances (equivalence chains, adders),
// and regression patterns for watched-literal bookkeeping.
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "formal/cnf_builder.hpp"
#include "sat/solver.hpp"

namespace upec::sat {
namespace {

Lit pos(Var v) { return Lit(v, false); }
Lit neg(Var v) { return Lit(v, true); }

TEST(SatAssumptions, CoreIsSubsetOfAssumptions) {
  // x0 -> x1 -> x2; assume x0 and !x2 and an irrelevant x3: the core must
  // not contain x3.
  Solver s;
  const Var x0 = s.newVar(), x1 = s.newVar(), x2 = s.newVar(), x3 = s.newVar();
  s.addClause({neg(x0), pos(x1)});
  s.addClause({neg(x1), pos(x2)});
  std::vector<Lit> assumptions = {pos(x0), neg(x2), pos(x3)};
  ASSERT_EQ(s.solve(assumptions), LBool::kFalse);
  for (Lit l : s.conflictingAssumptions()) {
    EXPECT_NE(l.var(), x3) << "irrelevant assumption must not be in the core";
  }
  EXPECT_GE(s.conflictingAssumptions().size(), 1u);
}

TEST(SatAssumptions, SolverRecoversAfterAssumptionConflict) {
  Solver s;
  const Var a = s.newVar(), b = s.newVar();
  s.addClause({pos(a), pos(b)});
  s.addClause({neg(a), pos(b)});
  std::vector<Lit> bad = {neg(b)};
  EXPECT_EQ(s.solve(bad), LBool::kFalse);
  // Repeated use with and without assumptions.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(s.solve(), LBool::kTrue);
    EXPECT_TRUE(s.modelValue(b));
    EXPECT_EQ(s.solve(bad), LBool::kFalse);
  }
}

TEST(SatAssumptions, FlippingAssumptionsExploresBothBranches) {
  Solver s;
  const Var sel = s.newVar(), out = s.newVar();
  // out == sel.
  s.addClause({neg(sel), pos(out)});
  s.addClause({pos(sel), neg(out)});
  std::vector<Lit> a1 = {pos(sel)};
  ASSERT_EQ(s.solve(a1), LBool::kTrue);
  EXPECT_TRUE(s.modelValue(out));
  std::vector<Lit> a2 = {neg(sel)};
  ASSERT_EQ(s.solve(a2), LBool::kTrue);
  EXPECT_FALSE(s.modelValue(out));
}

TEST(SatStructured, XorEquivalenceChainUnsat) {
  // x0 ^ x1, x1 ^ x2, ..., plus x0 == xN: odd chains are unsat.
  constexpr int kLen = 15;  // odd
  Solver s;
  formal::CnfBuilder cnf(s);
  std::vector<Lit> xs;
  for (int i = 0; i <= kLen; ++i) xs.push_back(cnf.freshLit());
  // Constrain x_{i+1} = ~x_i (xor = 1).
  for (int i = 0; i < kLen; ++i) cnf.assertLit(cnf.xorLit(xs[i], xs[i + 1]));
  // And x0 == xN: for odd N the chain forces x0 != xN.
  cnf.assertLit(cnf.xnorLit(xs[0], xs[kLen]));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(SatStructured, AdderCommutativityUnsat) {
  // a + b != b + a is unsatisfiable.
  Solver s;
  formal::CnfBuilder cnf(s);
  const auto a = cnf.freshVec(12);
  const auto b = cnf.freshVec(12);
  const auto s1 = cnf.addVec(a, b, cnf.falseLit());
  const auto s2 = cnf.addVec(b, a, cnf.falseLit());
  cnf.assertLit(~cnf.eqVec(s1, s2));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(SatStructured, AdderAssociativityUnsat) {
  Solver s;
  formal::CnfBuilder cnf(s);
  const auto a = cnf.freshVec(8);
  const auto b = cnf.freshVec(8);
  const auto c = cnf.freshVec(8);
  const auto left = cnf.addVec(cnf.addVec(a, b, cnf.falseLit()), c, cnf.falseLit());
  const auto right = cnf.addVec(a, cnf.addVec(b, c, cnf.falseLit()), cnf.falseLit());
  cnf.assertLit(~cnf.eqVec(left, right));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(SatStructured, MulDistributesOverAddSmall) {
  // a*(b+c) == a*b + a*c mod 2^6 — unsat when negated.
  Solver s;
  formal::CnfBuilder cnf(s);
  const auto a = cnf.freshVec(6);
  const auto b = cnf.freshVec(6);
  const auto c = cnf.freshVec(6);
  const auto left = cnf.mulVec(a, cnf.addVec(b, c, cnf.falseLit()));
  const auto right =
      cnf.addVec(cnf.mulVec(a, b), cnf.mulVec(a, c), cnf.falseLit());
  cnf.assertLit(~cnf.eqVec(left, right));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(SatStructured, ShifterComposition) {
  // (a << 1) << 2 == a << 3.
  Solver s;
  formal::CnfBuilder cnf(s);
  const auto a = cnf.freshVec(16);
  const auto one = cnf.constVec(16, 1);
  const auto two = cnf.constVec(16, 2);
  const auto three = cnf.constVec(16, 3);
  using SK = formal::CnfBuilder::ShiftKind;
  const auto left = cnf.shiftVec(cnf.shiftVec(a, one, SK::kShl), two, SK::kShl);
  const auto right = cnf.shiftVec(a, three, SK::kShl);
  cnf.assertLit(~cnf.eqVec(left, right));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(SatRegression, ManyUnitClausesPropagate) {
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 200; ++i) vars.push_back(s.newVar());
  for (int i = 0; i < 200; ++i) s.addUnit(Lit(vars[i], i % 2 == 0));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(s.modelValue(vars[i]), i % 2 != 0);
  }
}

TEST(SatRegression, LongClausesWithSharedPrefix) {
  // Exercises watcher relocation across long clauses.
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 30; ++i) vars.push_back(s.newVar());
  Rng rng(11);
  for (int c = 0; c < 60; ++c) {
    std::vector<Lit> clause;
    for (int i = 0; i < 10; ++i) clause.push_back(Lit(vars[rng.below(30)], rng.flip()));
    s.addClause(std::span<const Lit>(clause));
  }
  // Force a cascade: fix the first 20 variables.
  for (int i = 0; i < 20; ++i) s.addUnit(Lit(vars[i], false));
  const LBool res = s.solve();
  EXPECT_NE(res, LBool::kUndef);
}

TEST(SatRegression, RestartAndReduceSurvival) {
  // A moderately hard random instance to push past restarts and clause
  // database reductions; verify the model when satisfiable.
  Rng rng(2024);
  Solver s;
  constexpr int kVars = 120;
  std::vector<Var> vars;
  for (int i = 0; i < kVars; ++i) vars.push_back(s.newVar());
  std::vector<std::vector<Lit>> clauses;
  bool ok = true;
  for (int c = 0; c < kVars * 4 && ok; ++c) {
    std::vector<Lit> clause;
    for (int i = 0; i < 3; ++i) clause.push_back(Lit(vars[rng.below(kVars)], rng.flip()));
    clauses.push_back(clause);
    ok = s.addClause(std::span<const Lit>(clause));
  }
  if (!ok) return;
  if (s.solve() == LBool::kTrue) {
    for (const auto& clause : clauses) {
      bool sat = false;
      for (Lit l : clause) sat |= s.modelValue(l);
      EXPECT_TRUE(sat);
    }
  }
}

}  // namespace
}  // namespace upec::sat
