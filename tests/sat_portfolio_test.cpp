// The SolverBackend seam and the portfolio racer.
//
// Soundness first: every diversified configuration is still a complete
// CDCL solver, so all members must agree with the default engine on random
// phase-transition CNFs, and the portfolio's answer must match the single
// backend's on SAT and UNSAT instances alike. Then the mechanics that make
// the race safe: stats merge round-trips, cooperative cancellation through
// requestStop(), and losers being stopped rather than run to completion.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/rng.hpp"
#include "sat/portfolio.hpp"
#include "sat/solver.hpp"
#include "sat/solver_backend.hpp"
#include "sat_testlib.hpp"

namespace upec::sat {
namespace {

// --- SolverStats delta/merge ------------------------------------------------

TEST(SolverStats, DeltaAndMergeRoundTrip) {
  SolverStats a{10, 200, 30, 4, 50, 6, 7};
  SolverStats b{3, 100, 10, 1, 20, 2, 3};

  // (a - b) + b == a, field for field.
  const SolverStats roundTrip = (a - b) + b;
  EXPECT_EQ(roundTrip.decisions, a.decisions);
  EXPECT_EQ(roundTrip.propagations, a.propagations);
  EXPECT_EQ(roundTrip.conflicts, a.conflicts);
  EXPECT_EQ(roundTrip.restarts, a.restarts);
  EXPECT_EQ(roundTrip.learntLiterals, a.learntLiterals);
  EXPECT_EQ(roundTrip.removedClauses, a.removedClauses);
  EXPECT_EQ(roundTrip.solves, a.solves);

  // Merging is commutative and += agrees with +.
  const SolverStats ab = a + b;
  const SolverStats ba = b + a;
  EXPECT_EQ(ab.conflicts, ba.conflicts);
  EXPECT_EQ(ab.decisions, ba.decisions);
  SolverStats acc = a;
  acc += b;
  EXPECT_EQ(acc.propagations, ab.propagations);
  EXPECT_EQ(acc.solves, ab.solves);
}

TEST(SolverStats, PortfolioStatsAreTheMemberSum) {
  PortfolioSolver portfolio(SolverConfig::diversified(2));
  Rng rng(7);
  const Cnf cnf = randomCnf(rng, 10, 43);
  solveWith(portfolio, 10, cnf);
  const SolverStats merged = portfolio.stats();
  const SolverStats manual = portfolio.member(0).stats() + portfolio.member(1).stats();
  EXPECT_EQ(merged.conflicts, manual.conflicts);
  EXPECT_EQ(merged.decisions, manual.decisions);
  EXPECT_EQ(merged.propagations, manual.propagations);
  EXPECT_EQ(merged.solves, manual.solves);
  EXPECT_GE(merged.solves, 2u) << "every member entered the race";
}

// --- diversified configs stay sound ----------------------------------------

TEST(Diversification, AllConfigsAgreeWithTheDefaultOnRandomCnfs) {
  const std::vector<SolverConfig> configs = SolverConfig::diversified(5);
  ASSERT_EQ(configs.size(), 5u);
  Rng rng(0xc0ffee);
  int satCount = 0, unsatCount = 0;
  for (int round = 0; round < 25; ++round) {
    const int numVars = static_cast<int>(rng.range(5, 14));
    const int numClauses = numVars * 43 / 10;
    const Cnf cnf = randomCnf(rng, numVars, numClauses);

    Solver reference;
    const LBool expected = solveWith(reference, numVars, cnf);
    ASSERT_NE(expected, LBool::kUndef);
    (expected == LBool::kTrue ? satCount : unsatCount) += 1;

    for (const SolverConfig& config : configs) {
      Solver diversified(config);
      EXPECT_EQ(solveWith(diversified, numVars, cnf), expected)
          << "round " << round << ": config '" << config.describe()
          << "' disagrees with the default engine";
    }
  }
  EXPECT_GT(satCount, 2);
  EXPECT_GT(unsatCount, 2);
}

TEST(Diversification, ConfigDescriptionsAreDistinct) {
  const std::vector<SolverConfig> configs = SolverConfig::diversified(5);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    for (std::size_t j = i + 1; j < configs.size(); ++j) {
      EXPECT_NE(configs[i].describe(), configs[j].describe());
    }
  }
}

// --- portfolio verdicts -----------------------------------------------------

TEST(Portfolio, MatchesSingleBackendOnRandomCnfs) {
  Rng rng(0xabcdef);
  int satCount = 0, unsatCount = 0;
  for (int round = 0; round < 20; ++round) {
    const int numVars = static_cast<int>(rng.range(6, 12));
    const int numClauses = numVars * 43 / 10;
    const Cnf cnf = randomCnf(rng, numVars, numClauses);

    Solver single;
    const LBool expected = solveWith(single, numVars, cnf);

    PortfolioSolver portfolio(SolverConfig::diversified(3));
    const LBool raced = solveWith(portfolio, numVars, cnf);
    EXPECT_EQ(raced, expected) << "round " << round;
    EXPECT_GE(portfolio.lastWinner(), 0);
    EXPECT_FALSE(portfolio.lastSolveAttribution().empty());
    (expected == LBool::kTrue ? satCount : unsatCount) += 1;
  }
  EXPECT_GT(satCount, 2);
  EXPECT_GT(unsatCount, 2);
}

TEST(Portfolio, UnsatCoreComesFromTheWinner) {
  // x & ~x under assumptions: the core must name the contradicting pair.
  PortfolioSolver portfolio(SolverConfig::diversified(2));
  const Var x = portfolio.newVar();
  const Var y = portfolio.newVar();
  portfolio.addClause({Lit(x, false), Lit(y, false)});
  const Lit assume[] = {Lit(x, true), Lit(y, true)};
  EXPECT_EQ(portfolio.solve(assume), LBool::kFalse);
  EXPECT_FALSE(portfolio.unsatCore().empty());
  for (const Lit l : portfolio.unsatCore()) {
    EXPECT_TRUE(l.var() == x || l.var() == y);
  }
}

TEST(Portfolio, BudgetExhaustionOnAllMembersReturnsUndef) {
  PortfolioSolver portfolio(SolverConfig::diversified(2));
  encodePigeonhole(portfolio, 7);
  portfolio.setConflictBudget(10);  // far below what pigeonhole(7) needs
  EXPECT_EQ(portfolio.solve(), LBool::kUndef);
  EXPECT_EQ(portfolio.lastWinner(), -1);
  EXPECT_EQ(portfolio.lastSolveAttribution(), "no-answer");
}

TEST(Portfolio, IncrementalSessionSurvivesRaces) {
  // Incremental use across races: add clauses between solves and keep
  // verdicts consistent; members keep their own learnt state.
  PortfolioSolver portfolio(SolverConfig::diversified(3));
  const Var a = portfolio.newVar();
  const Var b = portfolio.newVar();
  portfolio.addClause({Lit(a, false), Lit(b, false)});
  EXPECT_EQ(portfolio.solve(), LBool::kTrue);
  portfolio.addClause({Lit(a, true)});
  EXPECT_EQ(portfolio.solve(), LBool::kTrue);
  EXPECT_TRUE(portfolio.modelValue(Lit(b, false)));
  portfolio.addClause({Lit(b, true)});
  EXPECT_EQ(portfolio.solve(), LBool::kFalse);
  EXPECT_FALSE(portfolio.okay());
}

// --- cooperative cancellation ----------------------------------------------

TEST(Cancellation, RequestStopAbortsARunningSolve) {
  // Pigeonhole(9) takes far longer than this test is willing to wait; a
  // stop request from another thread must abort it with kUndef.
  Solver s;
  encodePigeonhole(s, 9);
  std::thread stopper([&s] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    s.requestStop();
  });
  EXPECT_EQ(s.solve(), LBool::kUndef);
  stopper.join();
  // The flag is sticky: a new solve without clearStop() aborts immediately.
  EXPECT_EQ(s.solve(), LBool::kUndef);
  s.clearStop();
}

TEST(Cancellation, StickyStopAbortsTheNextSolveUntilCleared) {
  Solver s;
  const Var v = s.newVar();
  s.addClause({Lit(v, false)});
  s.requestStop();
  EXPECT_EQ(s.solve(), LBool::kUndef);
  s.clearStop();
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

// A hostile member that blocks inside solveLimited() until it is stopped.
// If the portfolio failed to cancel losers, racing it would hang the test.
class BlockingBackend : public SolverBackend {
 public:
  Var newVar() override { return numVars_++; }
  int numVars() const override { return numVars_; }
  std::uint64_t numClauses() const override { return 0; }
  bool addClause(std::span<const Lit>) override { return true; }

  LBool solveLimited(std::span<const Lit>) override {
    entered.store(true);
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return stopped_; });
    return LBool::kUndef;
  }

  bool modelValue(Var) const override { return false; }
  const std::vector<Lit>& unsatCore() const override { return empty_; }
  bool okay() const override { return true; }
  SolverStats stats() const override { return {}; }
  SolverStats lastSolveStats() const override { return {}; }
  void setConflictBudget(std::uint64_t) override {}
  void requestStop() override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopped_ = true;
    }
    cv_.notify_all();
  }
  void clearStop() override {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = false;
  }
  std::string describe() const override { return "blocking-mock"; }

  std::atomic<bool> entered{false};

 private:
  int numVars_ = 0;
  std::vector<Lit> empty_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopped_ = false;
};

TEST(Cancellation, PortfolioStopsLosersOnceAWinnerAnswers) {
  std::vector<std::unique_ptr<SolverBackend>> members;
  auto blockerPtr = std::make_unique<BlockingBackend>();
  BlockingBackend* blocker = blockerPtr.get();
  members.push_back(std::move(blockerPtr));
  members.push_back(std::make_unique<Solver>());
  PortfolioSolver portfolio(std::move(members));

  const Var v = portfolio.newVar();
  portfolio.addClause({Lit(v, false)});

  // The real solver answers instantly; the blocking member returns only
  // when cancelled. solve() joining at all proves the loser was stopped.
  EXPECT_EQ(portfolio.solve(), LBool::kTrue);
  EXPECT_EQ(portfolio.lastWinner(), 1);
  EXPECT_EQ(portfolio.lastVerdict(0), LBool::kUndef);
  EXPECT_EQ(portfolio.lastVerdict(1), LBool::kTrue);
  EXPECT_TRUE(blocker->entered.load());
  EXPECT_EQ(portfolio.lastSolveAttribution(), Solver().describe());
}

TEST(Factory, MakeSolverBackendSelectsTheImplementation) {
  EXPECT_NE(dynamic_cast<Solver*>(makeSolverBackend(std::vector<SolverConfig>{}).get()),
            nullptr);
  const std::vector<SolverConfig> one = SolverConfig::diversified(1);
  EXPECT_NE(dynamic_cast<Solver*>(makeSolverBackend(one).get()), nullptr);
  const std::vector<SolverConfig> four = SolverConfig::diversified(4);
  auto backend = makeSolverBackend(four);
  auto* portfolio = dynamic_cast<PortfolioSolver*>(backend.get());
  ASSERT_NE(portfolio, nullptr);
  EXPECT_EQ(portfolio->numMembers(), 4u);
}

}  // namespace
}  // namespace upec::sat
