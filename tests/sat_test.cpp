// Unit and property tests for the CDCL SAT solver, including a
// cross-check against a naive DPLL oracle on random small formulas.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "base/rng.hpp"
#include "sat/solver.hpp"

namespace upec::sat {
namespace {

Lit pos(Var v) { return Lit(v, false); }
Lit neg(Var v) { return Lit(v, true); }

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SatSolver, SingleUnit) {
  Solver s;
  const Var a = s.newVar();
  ASSERT_TRUE(s.addUnit(pos(a)));
  ASSERT_EQ(s.solve(), LBool::kTrue);
  EXPECT_TRUE(s.modelValue(a));
}

TEST(SatSolver, ContradictoryUnits) {
  Solver s;
  const Var a = s.newVar();
  ASSERT_TRUE(s.addUnit(pos(a)));
  EXPECT_FALSE(s.addUnit(neg(a)));
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(SatSolver, SimpleConflictChain) {
  // (a) (-a v b) (-b v c) (-c) is unsat.
  Solver s;
  const Var a = s.newVar(), b = s.newVar(), c = s.newVar();
  s.addClause({pos(a)});
  s.addClause({neg(a), pos(b)});
  s.addClause({neg(b), pos(c)});
  const bool ok = s.addClause({neg(c)});
  EXPECT_TRUE(!ok || s.solve() == LBool::kFalse);
}

TEST(SatSolver, TautologyClauseIgnored) {
  Solver s;
  const Var a = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a), neg(a)}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SatSolver, DuplicateLiteralsCollapse) {
  Solver s;
  const Var a = s.newVar(), b = s.newVar();
  ASSERT_TRUE(s.addClause({pos(a), pos(a), pos(b)}));
  EXPECT_EQ(s.solve(), LBool::kTrue);
}

TEST(SatSolver, PigeonHole3Into2IsUnsat) {
  // p(i,j): pigeon i in hole j; 3 pigeons, 2 holes.
  Solver s;
  Var p[3][2];
  for (auto& row : p)
    for (auto& v : row) v = s.newVar();
  for (int i = 0; i < 3; ++i) s.addClause({pos(p[i][0]), pos(p[i][1])});
  for (int j = 0; j < 2; ++j) {
    for (int i1 = 0; i1 < 3; ++i1)
      for (int i2 = i1 + 1; i2 < 3; ++i2) s.addClause({neg(p[i1][j]), neg(p[i2][j])});
  }
  EXPECT_EQ(s.solve(), LBool::kFalse);
}

TEST(SatSolver, AssumptionsSatAndUnsat) {
  Solver s;
  const Var a = s.newVar(), b = s.newVar();
  s.addClause({neg(a), pos(b)});  // a -> b
  std::vector<Lit> assume1 = {pos(a)};
  ASSERT_EQ(s.solve(assume1), LBool::kTrue);
  EXPECT_TRUE(s.modelValue(b));

  s.addClause({neg(b)});  // now b must be false, so a must be false
  std::vector<Lit> assume2 = {pos(a)};
  ASSERT_EQ(s.solve(assume2), LBool::kFalse);
  // The conflicting-assumption set must mention a.
  bool mentionsA = false;
  for (Lit l : s.conflictingAssumptions()) mentionsA |= (l.var() == a);
  EXPECT_TRUE(mentionsA);

  // Solver stays usable without the assumption.
  EXPECT_EQ(s.solve(), LBool::kTrue);
  EXPECT_FALSE(s.modelValue(a));
}

TEST(SatSolver, IncrementalReuse) {
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 20; ++i) vars.push_back(s.newVar());
  for (int i = 0; i + 1 < 20; ++i) s.addClause({neg(vars[i]), pos(vars[i + 1])});
  std::vector<Lit> assume = {pos(vars[0])};
  ASSERT_EQ(s.solve(assume), LBool::kTrue);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(s.modelValue(vars[i]));
  std::vector<Lit> assume2 = {pos(vars[0]), neg(vars[19])};
  EXPECT_EQ(s.solve(assume2), LBool::kFalse);
}

// ------------------------------------------------------------------------
// Random CNF cross-check against a transparent DPLL oracle.

class DpllOracle {
 public:
  explicit DpllOracle(int numVars) : numVars_(numVars) {}
  void addClause(std::vector<Lit> c) { clauses_.push_back(std::move(c)); }

  bool sat() {
    std::vector<int> assign(numVars_, -1);
    return search(assign, 0);
  }

 private:
  bool clauseSatisfiable(const std::vector<Lit>& c, const std::vector<int>& assign) const {
    for (Lit l : c) {
      const int a = assign[l.var()];
      if (a == -1 || a == (l.sign() ? 0 : 1)) return true;
    }
    return false;
  }

  bool search(std::vector<int>& assign, int v) {
    for (const auto& c : clauses_) {
      if (!clauseSatisfiable(c, assign)) return false;
    }
    if (v == numVars_) return true;
    for (int val : {0, 1}) {
      assign[v] = val;
      if (search(assign, v + 1)) return true;
    }
    assign[v] = -1;
    return false;
  }

  int numVars_;
  std::vector<std::vector<Lit>> clauses_;
};

class RandomCnfTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnfTest, AgreesWithDpllOracle) {
  Rng rng(GetParam() * 7919 + 13);
  const int numVars = static_cast<int>(rng.range(3, 12));
  const int numClauses = static_cast<int>(rng.range(2, 45));

  Solver solver;
  DpllOracle oracle(numVars);
  for (int i = 0; i < numVars; ++i) solver.newVar();

  bool trivialUnsat = false;
  for (int c = 0; c < numClauses; ++c) {
    const int len = static_cast<int>(rng.range(1, 4));
    std::vector<Lit> clause;
    for (int i = 0; i < len; ++i) {
      clause.push_back(Lit(static_cast<Var>(rng.below(numVars)), rng.flip()));
    }
    oracle.addClause(clause);
    if (!solver.addClause(std::span<const Lit>(clause))) trivialUnsat = true;
  }

  const bool oracleSat = oracle.sat();
  if (trivialUnsat) {
    EXPECT_FALSE(oracleSat);
    return;
  }
  const LBool got = solver.solve();
  ASSERT_NE(got, LBool::kUndef);
  EXPECT_EQ(got == LBool::kTrue, oracleSat) << "solver and oracle disagree";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfTest, ::testing::Range(0, 60));

// Model soundness: on satisfiable random instances, the returned model
// satisfies all clauses (checked explicitly here).
class RandomModelTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomModelTest, ModelSatisfiesAllClauses) {
  Rng rng(GetParam() * 104729 + 5);
  const int numVars = static_cast<int>(rng.range(5, 25));
  const int numClauses = static_cast<int>(rng.range(5, 60));

  Solver solver;
  for (int i = 0; i < numVars; ++i) solver.newVar();
  std::vector<std::vector<Lit>> clauses;
  bool ok = true;
  for (int c = 0; c < numClauses && ok; ++c) {
    const int len = static_cast<int>(rng.range(2, 5));
    std::vector<Lit> clause;
    for (int i = 0; i < len; ++i) {
      clause.push_back(Lit(static_cast<Var>(rng.below(numVars)), rng.flip()));
    }
    clauses.push_back(clause);
    ok = solver.addClause(std::span<const Lit>(clause));
  }
  if (!ok) return;  // trivially unsat during construction
  if (solver.solve() != LBool::kTrue) return;
  for (const auto& clause : clauses) {
    bool sat = false;
    for (Lit l : clause) sat |= solver.modelValue(l);
    EXPECT_TRUE(sat);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelTest, ::testing::Range(0, 40));

TEST(SatSolver, ConflictBudgetReturnsUndef) {
  // A hard pigeonhole instance with a tiny budget must return kUndef.
  Solver s;
  constexpr int kPigeons = 9, kHoles = 8;
  std::vector<std::vector<Var>> p(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : p)
    for (auto& v : row) v = s.newVar();
  for (int i = 0; i < kPigeons; ++i) {
    std::vector<Lit> c;
    for (int j = 0; j < kHoles; ++j) c.push_back(pos(p[i][j]));
    s.addClause(std::span<const Lit>(c));
  }
  for (int j = 0; j < kHoles; ++j)
    for (int i1 = 0; i1 < kPigeons; ++i1)
      for (int i2 = i1 + 1; i2 < kPigeons; ++i2) s.addClause({neg(p[i1][j]), neg(p[i2][j])});
  s.setConflictBudget(10);
  EXPECT_EQ(s.solve(), LBool::kUndef);
}

TEST(SatSolver, StatsArePopulated) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 30; ++i) v.push_back(s.newVar());
  Rng rng(42);
  for (int c = 0; c < 120; ++c) {
    std::vector<Lit> clause;
    for (int i = 0; i < 3; ++i) clause.push_back(Lit(v[rng.below(30)], rng.flip()));
    s.addClause(std::span<const Lit>(clause));
  }
  s.solve();
  EXPECT_GT(s.stats().propagations, 0u);
}

}  // namespace
}  // namespace upec::sat
