// Focused microarchitecture tests for MiniRV corner cases: privilege
// round-trips, CSR packing, cache write-around vs write-back paths, the
// cache monitor, interlocks and alignment masking.
#include <gtest/gtest.h>

#include "riscv/assembler.hpp"
#include "soc/attack.hpp"
#include "soc/testbench.hpp"

namespace upec::soc {
namespace {

using riscv::Assembler;

SocConfig cfg(SocVariant v = SocVariant::kSecure) {
  SocConfig c;
  c.machine.xlen = 32;
  c.machine.nregs = 16;
  c.machine.imemWords = 64;
  c.machine.dmemWords = 64;
  c.machine.pmpEntries = 2;
  c.machine.pmpLockBug = (v == SocVariant::kPmpLockBug);
  c.cacheLines = 4;
  c.pendingWriteCycles = 3;
  c.refillCycles = 2;
  c.variant = v;
  return c;
}

TEST(SocPrivilege, MretDropsToUserAndEcallComesBack) {
  Assembler a;
  // Machine: set mtvec/mepc, drop to user at 0x20.
  a.li(1, 0x30);
  a.csrrw(0, riscv::kCsrMtvec, 1);
  a.li(2, 0x20);
  a.csrrw(0, riscv::kCsrMepc, 2);
  a.mret();
  SocTestbench tb(cfg());
  tb.loadProgram(a.finish());
  // User code at 0x20: ecall.
  Assembler u;
  u.ecall();
  tb.loadProgram(u.finish(), 0x20 / 4);
  tb.loadProgram(spinHandler(), 0x30 / 4);
  tb.run(60);
  EXPECT_TRUE(tb.machineMode());
  EXPECT_EQ(tb.csrMcause(), riscv::kCauseEcallU);
  EXPECT_EQ(tb.csrMepc(), 0x20u);
}

TEST(SocPrivilege, UserCannotTouchMachineCsrs) {
  Assembler u;
  u.csrrw(1, riscv::kCsrMtvec, 2);  // illegal from user mode
  SocTestbench tb(cfg());
  tb.loadProgram(u.finish());
  tb.loadProgram(spinHandler(), 0x30 / 4);
  tb.setCsrMtvec(0x30);
  tb.setMode(false);
  tb.run(40);
  EXPECT_TRUE(tb.machineMode());
  EXPECT_EQ(tb.csrMcause(), riscv::kCauseIllegalInstr);
}

TEST(SocPrivilege, UserMretIsIllegal) {
  Assembler u;
  u.mret();
  SocTestbench tb(cfg());
  tb.loadProgram(u.finish());
  tb.loadProgram(spinHandler(), 0x30 / 4);
  tb.setCsrMtvec(0x30);
  tb.setMode(false);
  tb.run(40);
  EXPECT_EQ(tb.csrMcause(), riscv::kCauseIllegalInstr);
}

TEST(SocCsr, PmpcfgPackedReadMatchesEntries) {
  Assembler a;
  a.csrrs(3, riscv::kCsrPmpcfg0, 0);
  SocTestbench tb(cfg());
  tb.loadProgram(a.finish());
  tb.protectFromWord(32, 64);
  tb.run(30);
  using namespace riscv;
  const std::uint32_t expect =
      (kPmpATor | kPmpR | kPmpW) | (static_cast<std::uint32_t>(kPmpATor | kPmpL) << 8);
  EXPECT_EQ(tb.reg(3), expect);
}

TEST(SocCsr, CycleCsrIsUserReadableAndAdvances) {
  Assembler u;
  u.rdcycle(1);
  u.nop();
  u.nop();
  u.rdcycle(2);
  const riscv::Label park = u.newLabel();
  u.bind(park);
  u.j(park);
  SocTestbench tb(cfg());
  tb.loadProgram(u.finish());
  tb.setMode(false);
  tb.run(60);
  EXPECT_GT(tb.reg(2), tb.reg(1)) << "cycle counter must advance between reads";
}

TEST(SocCsr, CsrWriteToCycleIsIllegal) {
  Assembler a;
  a.li(1, 5);
  a.csrrw(0, riscv::kCsrCycle, 1);
  SocTestbench tb(cfg());
  tb.loadProgram(a.finish());
  tb.loadProgram(spinHandler(), 0x30 / 4);
  tb.setCsrMtvec(0x30);
  tb.run(40);
  EXPECT_EQ(tb.csrMcause(), riscv::kCauseIllegalInstr);
}

TEST(SocCache, WriteAroundPreservesDirtyConflictingVictim) {
  // Make line 2 dirty with word 10 (store), then store to word 14 (same
  // line, different tag): the second store must go around the cache, the
  // dirty victim must stay.
  Assembler a;
  a.li(1, 10 * 4);
  a.li(2, 111);
  a.sw(2, 1, 0);     // allocates line 2 dirty (tag of word 10)
  a.li(3, 14 * 4);
  a.li(4, 222);
  a.sw(4, 3, 0);     // conflicting dirty victim -> write-around to dmem
  a.lw(5, 3, 0);     // reading it back must still see the stored value
  const riscv::Label park = a.newLabel();
  a.bind(park);
  a.j(park);
  SocTestbench tb(cfg());
  tb.loadProgram(a.finish());
  tb.run(120);
  EXPECT_EQ(tb.dmemWord(14), 222u) << "second store written around";
  EXPECT_EQ(tb.reg(5), 222u) << "coherent read-back of the written-around word";
  EXPECT_EQ(tb.dmemWord(10), 111u) << "dirty victim eventually written back by the lw refill";
}

TEST(SocCache, BackToBackStoresStallOnPendingSlot) {
  // Two stores in a row to DISTINCT lines: the second must wait for the
  // pending slot, but both must allocate.
  Assembler a;
  a.li(1, 9 * 4);   // line 1
  a.li(2, 5);
  a.li(3, 14 * 4);  // line 2
  a.li(4, 7);
  a.sw(2, 1, 0);
  a.sw(4, 3, 0);
  const riscv::Label park = a.newLabel();
  a.bind(park);
  a.j(park);
  SocTestbench tb(cfg());
  tb.loadProgram(a.finish());
  tb.run(80);
  EXPECT_EQ(tb.cacheLineData(1), 5u);
  EXPECT_EQ(tb.cacheLineData(2), 7u);
}

TEST(SocCache, MonitorFlagsCorruptedRefillState) {
  SocTestbench tb(cfg());
  auto& sim = tb.simulator();
  const SocInstance& inst = tb.instance();
  sim.evalComb();
  EXPECT_TRUE(sim.peek(inst.cacheMonitorOk).toBool());
  // Backdoor-corrupt the FSM into the illegal state encoding 3.
  sim.setReg(inst.pc.design()->regIndexOf(inst.refillState.id()), BitVec(2, 3));
  sim.evalComb();
  EXPECT_FALSE(sim.peek(inst.cacheMonitorOk).toBool())
      << "Constraint 2 monitor must reject the illegal FSM state";
}

TEST(SocCache, MonitorFlagsOverflowedPendingCounter) {
  SocConfig c = cfg();
  SocTestbench tb(c);
  auto& sim = tb.simulator();
  const SocInstance& inst = tb.instance();
  sim.setReg(inst.pc.design()->regIndexOf(inst.pendingValid.id()), BitVec(1, 1));
  sim.setReg(inst.pc.design()->regIndexOf(inst.pendingCtr.id()),
             BitVec(inst.pendingCtr.width(), 3));  // == pendingWriteCycles: legal
  sim.evalComb();
  EXPECT_TRUE(sim.peek(inst.cacheMonitorOk).toBool());
}

TEST(SocPipeline, LoadUseInterlockInsertsExactlyOneBubble) {
  // Measure: dependent-on-load sequences take one cycle longer than
  // independent ones on the secure design.
  auto cyclesFor = [&](bool dependent) {
    Assembler a;
    a.li(1, 8 * 4);
    a.lw(2, 1, 0);
    if (dependent) {
      a.addi(3, 2, 1);  // consumes the load
    } else {
      a.addi(3, 1, 1);  // independent
    }
    const riscv::Label park = a.newLabel();
    a.bind(park);
    a.j(park);
    SocTestbench tb(cfg());
    tb.preloadCacheLine(8, 42);  // hit, to isolate the interlock
    tb.loadProgram(a.finish());
    return tb.runUntilEvents(3, 100);
  };
  EXPECT_EQ(cyclesFor(true), cyclesFor(false) + 1);
}

TEST(SocPipeline, FastForwardVariantRemovesTheBubble) {
  auto cyclesFor = [&](SocVariant v) {
    Assembler a;
    a.li(1, 8 * 4);
    a.lw(2, 1, 0);
    a.addi(3, 2, 1);
    const riscv::Label park = a.newLabel();
    a.bind(park);
    a.j(park);
    SocTestbench tb(cfg(v));
    tb.preloadCacheLine(8, 42);
    tb.loadProgram(a.finish());
    return tb.runUntilEvents(3, 100);
  };
  EXPECT_EQ(cyclesFor(SocVariant::kOrc), cyclesFor(SocVariant::kSecure) - 1)
      << "the bypassed buffer removes the load-use stall (the paper's "
         "performance 'optimisation')";
}

TEST(SocPipeline, JalrMasksTargetAlignment) {
  Assembler a;
  a.li(1, 0x22);   // unaligned target
  a.jalr(2, 1, 1); // 0x23 & ~3 = 0x20
  SocTestbench tb(cfg());
  tb.loadProgram(a.finish());
  Assembler at20;
  at20.li(5, 99);
  tb.loadProgram(at20.finish(), 0x20 / 4);
  tb.run(40);
  EXPECT_EQ(tb.reg(5), 99u);
}

TEST(SocPipeline, TrapSquashesWholeYoungerPipeline) {
  // Several instructions behind a faulting load must all be squashed.
  Assembler a;
  a.li(1, 40 * 4);
  a.lw(2, 1, 0);   // faults (protected)
  a.li(3, 1);
  a.li(4, 2);
  a.li(5, 3);
  SocTestbench tb(cfg());
  tb.loadProgram(a.finish());
  tb.loadProgram(spinHandler(), 0x30 / 4);
  tb.setCsrMtvec(0x30);
  tb.protectFromWord(32, 64);
  tb.setMode(false);
  tb.run(60);
  EXPECT_EQ(tb.reg(3), 0u);
  EXPECT_EQ(tb.reg(4), 0u);
  EXPECT_EQ(tb.reg(5), 0u);
}

TEST(SocMemory, SecretNeverEntersCacheOnFaultingMiss) {
  // "D not cached" invariant: a faulting load must not trigger a refill.
  Assembler a;
  a.li(1, 40 * 4);
  a.lw(2, 1, 0);  // protected, NOT in cache -> fault, no refill
  SocTestbench tb(cfg());
  tb.loadProgram(a.finish());
  tb.loadProgram(spinHandler(), 0x30 / 4);
  tb.setCsrMtvec(0x30);
  tb.setDmemWord(40, 0x5EC);
  tb.protectFromWord(32, 64);
  tb.setMode(false);
  tb.run(60);
  const unsigned idx = 40 % 4;
  const bool secretCached =
      tb.cacheLineValid(idx) && tb.cacheLineTag(idx) == (40u >> 2);
  EXPECT_FALSE(secretCached) << "paper Tab. I: the secret cannot be pulled into the cache";
}

}  // namespace
}  // namespace upec::soc
