// Tests for the RV32I encoder/decoder, the assembler, and the ISA-level
// reference simulator (including privilege modes and PMP semantics).
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "riscv/assembler.hpp"
#include "riscv/encoding.hpp"
#include "riscv/isa_sim.hpp"

namespace upec::riscv {
namespace {

TEST(Encoding, ITypeRoundTrip) {
  for (std::int32_t imm : {-2048, -1, 0, 1, 7, 2047}) {
    const std::uint32_t raw = encodeI(imm, 3, 0b000, 5, kOpImm);
    const Decoded d = decode(raw);
    EXPECT_EQ(d.opcode, kOpImm);
    EXPECT_EQ(d.rd, 5u);
    EXPECT_EQ(d.rs1, 3u);
    EXPECT_EQ(d.immI, imm);
  }
}

TEST(Encoding, STypeRoundTrip) {
  for (std::int32_t imm : {-2048, -4, 0, 4, 2047}) {
    const Decoded d = decode(encodeS(imm, 7, 2, 0b010, kOpStore));
    EXPECT_EQ(d.immS, imm);
    EXPECT_EQ(d.rs1, 2u);
    EXPECT_EQ(d.rs2, 7u);
  }
}

TEST(Encoding, BTypeRoundTrip) {
  for (std::int32_t imm : {-4096, -4, 0, 4, 16, 4094}) {
    const std::int32_t aligned = imm & ~1;
    const Decoded d = decode(encodeB(aligned, 1, 2, 0b001, kOpBranch));
    EXPECT_EQ(d.immB, aligned);
  }
}

TEST(Encoding, JTypeRoundTrip) {
  for (std::int32_t imm : {-1048576, -8, 0, 4, 1048574}) {
    const std::int32_t aligned = imm & ~1;
    const Decoded d = decode(encodeJ(aligned, 1, kOpJal));
    EXPECT_EQ(d.immJ, aligned);
  }
}

TEST(Encoding, UTypeRoundTrip) {
  const Decoded d = decode(encodeU(0xABCDE, 4, kOpLui));
  EXPECT_EQ(d.immU, 0xABCDE000u);
  EXPECT_EQ(d.rd, 4u);
}

TEST(Encoding, DisassembleKnownInstructions) {
  EXPECT_EQ(disassemble(encodeI(42, 1, 0b000, 2, kOpImm)), "addi x2, x1, 42");
  EXPECT_EQ(disassemble(0x00000073), "ecall");
  EXPECT_EQ(disassemble(0x30200073), "mret");
}

TEST(Assembler, ForwardAndBackwardLabels) {
  Assembler a;
  const Label top = a.newLabel();
  const Label end = a.newLabel();
  a.bind(top);
  a.addi(1, 1, 1);
  a.beq(1, 2, end);   // forward
  a.j(top);           // backward
  a.bind(end);
  a.nop();
  const auto words = a.finish();
  ASSERT_EQ(words.size(), 4u);
  const Decoded beq = decode(words[1]);
  EXPECT_EQ(beq.immB, 8);  // two instructions ahead
  const Decoded jal = decode(words[2]);
  EXPECT_EQ(jal.immJ, -8);
}

TEST(Assembler, LiSplitsLargeConstants) {
  Assembler a;
  a.li(1, 0x12345678);
  a.li(2, 100);
  a.li(3, -5);
  a.li(4, 0x7FFFF800);  // lo part becomes negative, hi must round up
  const auto words = a.finish();
  MachineConfig cfg;
  IsaSim sim(cfg);
  sim.loadProgram(words);
  sim.run(static_cast<unsigned>(words.size()));
  EXPECT_EQ(sim.reg(1), 0x12345678u);
  EXPECT_EQ(sim.reg(2), 100u);
  EXPECT_EQ(sim.reg(3), 0xFFFFFFFBu);
  EXPECT_EQ(sim.reg(4), 0x7FFFF800u);
}

MachineConfig smallCfg() {
  MachineConfig cfg;
  cfg.xlen = 32;
  cfg.nregs = 32;
  cfg.imemWords = 64;
  cfg.dmemWords = 64;
  cfg.pmpEntries = 2;
  return cfg;
}

TEST(IsaSim, ArithmeticAndLogic) {
  Assembler a;
  a.li(1, 100);
  a.li(2, 7);
  a.add(3, 1, 2);
  a.sub(4, 1, 2);
  a.and_(5, 1, 2);
  a.or_(6, 1, 2);
  a.xor_(7, 1, 2);
  a.sll(8, 2, 2);
  a.srl(9, 1, 2);
  a.slt(10, 2, 1);
  a.sltu(11, 1, 2);
  IsaSim sim(smallCfg());
  const auto words = a.finish();
  sim.loadProgram(words);
  sim.run(static_cast<unsigned>(words.size()));
  EXPECT_EQ(sim.reg(3), 107u);
  EXPECT_EQ(sim.reg(4), 93u);
  EXPECT_EQ(sim.reg(5), 100u & 7u);
  EXPECT_EQ(sim.reg(6), 100u | 7u);
  EXPECT_EQ(sim.reg(7), 100u ^ 7u);
  EXPECT_EQ(sim.reg(8), 7u << 7);
  EXPECT_EQ(sim.reg(9), 100u >> 7);
  EXPECT_EQ(sim.reg(10), 1u);
  EXPECT_EQ(sim.reg(11), 0u);
}

TEST(IsaSim, X0IsHardwiredZero) {
  Assembler a;
  a.li(0, 55);
  a.add(1, 0, 0);
  IsaSim sim(smallCfg());
  sim.loadProgram(a.finish());
  sim.run(3);
  EXPECT_EQ(sim.reg(0), 0u);
  EXPECT_EQ(sim.reg(1), 0u);
}

TEST(IsaSim, LoadStoreRoundTrip) {
  Assembler a;
  a.li(1, 0x20);      // byte address of dmem word 8
  a.li(2, 0xBEEF);
  a.sw(2, 1, 0);
  a.lw(3, 1, 0);
  IsaSim sim(smallCfg());
  sim.loadProgram(a.finish());
  sim.run(6);
  EXPECT_EQ(sim.dmemWord(8), 0xBEEFu);
  EXPECT_EQ(sim.reg(3), 0xBEEFu);
}

TEST(IsaSim, BranchesAndJumps) {
  Assembler a;
  const Label skip = a.newLabel();
  const Label end = a.newLabel();
  a.li(1, 5);
  a.li(2, 5);
  a.beq(1, 2, skip);
  a.li(3, 111);  // skipped
  a.bind(skip);
  a.li(4, 222);
  a.jal(5, end);
  a.li(6, 333);  // skipped
  a.bind(end);
  a.nop();
  IsaSim sim(smallCfg());
  sim.loadProgram(a.finish());
  sim.run(8);
  EXPECT_EQ(sim.reg(3), 0u);
  EXPECT_EQ(sim.reg(4), 222u);
  EXPECT_EQ(sim.reg(6), 0u);
  EXPECT_NE(sim.reg(5), 0u);  // link register written
}

TEST(IsaSim, EcallTrapsToMtvecAndMretReturns) {
  Assembler a;
  // Machine code at 0: set mtvec to handler, drop to user code at 0x20.
  a.li(1, 0x40);
  a.csrrw(0, kCsrMtvec, 1);
  a.li(2, 0x20);
  a.csrrw(0, kCsrMepc, 2);
  a.mret();
  IsaSim sim(smallCfg());
  auto words = a.finish();
  sim.loadProgram(words);
  // User code at word 8 (byte 0x20): ecall.
  sim.loadProgram({encodeI(0, 0, 0, 0, kOpSystem)}, 8);
  sim.run(5);
  EXPECT_EQ(sim.mode(), Mode::kUser);
  EXPECT_EQ(sim.pc(), 0x20u);
  const StepInfo info = sim.step();
  EXPECT_TRUE(info.trapped);
  EXPECT_EQ(info.trapCause, kCauseEcallU);
  EXPECT_EQ(sim.mode(), Mode::kMachine);
  EXPECT_EQ(sim.pc(), 0x40u);
  EXPECT_EQ(sim.csr(kCsrMepc), 0x20u);
  EXPECT_EQ(sim.csr(kCsrMcause), kCauseEcallU);
}

TEST(IsaSim, PmpBlocksUserAccessToProtectedRegion) {
  IsaSim sim(smallCfg());
  // Entry 0: user RW over [0, 32); entry 1: locked no-access over [32, 64).
  sim.setCsr(kCsrPmpcfg0, (kPmpATor | kPmpR | kPmpW) | ((kPmpATor | kPmpL) << 8));
  sim.setCsr(kCsrPmpaddr0, 32);
  sim.setCsr(kCsrPmpaddr0 + 1, 64);
  EXPECT_TRUE(sim.pmpAllows(0x10, false, Mode::kUser));
  EXPECT_TRUE(sim.pmpAllows(0x10, true, Mode::kUser));
  EXPECT_FALSE(sim.pmpAllows(32 * 4, false, Mode::kUser));
  EXPECT_FALSE(sim.pmpAllows(32 * 4, true, Mode::kUser));
  // The locked entry applies to machine mode as well.
  EXPECT_FALSE(sim.pmpAllows(32 * 4, false, Mode::kMachine));
  // Machine mode passes the unlocked entry and unmatched regions.
  EXPECT_TRUE(sim.pmpAllows(0x10, true, Mode::kMachine));
}

TEST(IsaSim, UserLoadFromProtectedAddressTraps) {
  IsaSim sim(smallCfg());
  sim.setCsr(kCsrPmpcfg0, (kPmpATor | kPmpR | kPmpW) | ((kPmpATor | kPmpL) << 8));
  sim.setCsr(kCsrPmpaddr0, 32);
  sim.setCsr(kCsrPmpaddr0 + 1, 64);
  sim.setCsr(kCsrMtvec, 0x30);
  sim.setDmemWord(40, 0x5EC8E7);  // the secret
  Assembler a;
  a.li(1, 40 * 4);
  a.lw(2, 1, 0);
  sim.loadProgram(a.finish());
  sim.setMode(Mode::kUser);
  sim.run(1);
  const StepInfo info = sim.step();
  EXPECT_TRUE(info.trapped);
  EXPECT_EQ(info.trapCause, kCauseLoadAccessFault);
  EXPECT_EQ(sim.reg(2), 0u) << "secret must not reach the register file";
  EXPECT_EQ(sim.mode(), Mode::kMachine);
}

TEST(IsaSim, PmpLockPropagatesToTorBaseAddress) {
  IsaSim sim(smallCfg());
  sim.setCsr(kCsrPmpcfg0, (kPmpATor | kPmpR | kPmpW) | ((kPmpATor | kPmpL) << 8));
  sim.setCsr(kCsrPmpaddr0, 32);
  sim.setCsr(kCsrPmpaddr0 + 1, 64);
  EXPECT_TRUE(sim.pmpAddrWriteLocked(0)) << "base of a locked TOR range must be locked";
  EXPECT_TRUE(sim.pmpAddrWriteLocked(1));
  // An instruction-level write must be ignored.
  Assembler a;
  a.li(1, 50);
  a.csrrw(0, kCsrPmpaddr0, 1);
  sim.loadProgram(a.finish());
  sim.run(3);
  EXPECT_EQ(sim.csr(kCsrPmpaddr0), 32u);
}

TEST(IsaSim, PmpLockBugAllowsRewritingTorBase) {
  MachineConfig cfg = smallCfg();
  cfg.pmpLockBug = true;
  IsaSim sim(cfg);
  sim.setCsr(kCsrPmpcfg0, (kPmpATor | kPmpR | kPmpW) | ((kPmpATor | kPmpL) << 8));
  sim.setCsr(kCsrPmpaddr0, 32);
  sim.setCsr(kCsrPmpaddr0 + 1, 64);
  EXPECT_FALSE(sim.pmpAddrWriteLocked(0)) << "the bug: base is writable";
  Assembler a;
  a.li(1, 50);
  a.csrrw(0, kCsrPmpaddr0, 1);
  sim.loadProgram(a.finish());
  sim.run(3);
  EXPECT_EQ(sim.csr(kCsrPmpaddr0), 50u);
  // Consequence: words 32..49 are now user-accessible through entry 0.
  EXPECT_TRUE(sim.pmpAllows(40 * 4, false, Mode::kUser));
}

TEST(IsaSim, CsrCyclePrivileges) {
  IsaSim sim(smallCfg());
  Assembler a;
  a.rdcycle(1);  // legal in user mode
  sim.loadProgram(a.finish());
  sim.setMode(Mode::kUser);
  const StepInfo info = sim.step();
  EXPECT_TRUE(info.retired);

  // Machine CSR access from user mode must trap.
  IsaSim sim2(smallCfg());
  Assembler b;
  b.csrrs(1, kCsrMepc, 0);
  sim2.loadProgram(b.finish());
  sim2.setMode(Mode::kUser);
  const StepInfo info2 = sim2.step();
  EXPECT_TRUE(info2.trapped);
  EXPECT_EQ(info2.trapCause, kCauseIllegalInstr);
}

TEST(IsaSim, UnknownCsrIsIllegal) {
  IsaSim sim(smallCfg());
  Assembler a;
  a.csrrs(1, 0x123, 0);
  sim.loadProgram(a.finish());
  const StepInfo info = sim.step();
  EXPECT_TRUE(info.trapped);
  EXPECT_EQ(info.trapCause, kCauseIllegalInstr);
}

TEST(IsaSim, NarrowXlenMasksValues) {
  MachineConfig cfg;
  cfg.xlen = 16;
  cfg.nregs = 8;
  cfg.imemWords = 16;
  cfg.dmemWords = 16;
  IsaSim sim(cfg);
  Assembler a;
  a.li(1, 0x7FF);
  a.slli(2, 1, 8);  // 0x7FF00 truncated to 16 bits = 0xFF00
  sim.loadProgram(a.finish());
  sim.run(2);
  EXPECT_EQ(sim.reg(2), 0xFF00u);
}

TEST(IsaSim, McycleCountsAllSteps) {
  // The ISA simulator has no microarchitectural timing: its mcycle ticks
  // once per instruction step (the RTL core's mcycle counts real cycles).
  IsaSim sim(smallCfg());
  Assembler a;
  a.nop();
  a.nop();
  a.rdcycle(1);
  sim.loadProgram(a.finish());
  sim.run(3);
  EXPECT_EQ(sim.reg(1), 3u);  // incremented at the start of the reading step
}

}  // namespace
}  // namespace upec::riscv
