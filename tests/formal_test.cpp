// Tests for the bit-blaster, unroller and BMC/IPC engine.
//
// The central property test: for random circuits and random stimuli, the
// CNF encoding of the unrolled design must agree with the cycle-accurate
// simulator (the two implementations are independent, so agreement is
// strong evidence of correctness).
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "sat/solver.hpp"
#include "formal/bmc.hpp"
#include "formal/cnf_builder.hpp"
#include "formal/unroller.hpp"
#include "rtl/ir.hpp"
#include "sim/simulator.hpp"

namespace upec::formal {
namespace {

using rtl::Design;
using rtl::Op;
using rtl::Sig;
using rtl::StateClass;

// Forces literals of `lits` to equal `value` via unit clauses.
void constrainEqual(CnfBuilder& cnf, const LitVec& lits, std::uint64_t value) {
  for (std::size_t i = 0; i < lits.size(); ++i) {
    cnf.assertLit(((value >> i) & 1) ? lits[i] : ~lits[i]);
  }
}

std::uint64_t modelOf(sat::Solver& s, const LitVec& lits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (s.modelValue(lits[i])) v |= 1ull << i;
  }
  return v;
}

TEST(CnfBuilder, ConstantsFold) {
  sat::Solver s;
  CnfBuilder cnf(s);
  EXPECT_TRUE(cnf.isTrue(cnf.trueLit()));
  EXPECT_TRUE(cnf.isFalse(cnf.falseLit()));
  EXPECT_TRUE(cnf.isFalse(cnf.andLit(cnf.falseLit(), cnf.freshLit())));
  const sat::Lit a = cnf.freshLit();
  EXPECT_EQ(cnf.andLit(cnf.trueLit(), a), a);
  EXPECT_EQ(cnf.xorLit(cnf.falseLit(), a), a);
  EXPECT_EQ(cnf.xorLit(cnf.trueLit(), a), ~a);
  EXPECT_TRUE(cnf.isFalse(cnf.xorLit(a, a)));
  EXPECT_TRUE(cnf.isTrue(cnf.xorLit(a, ~a)));
}

// Exhaustive check of word ops on small widths against BitVec semantics.
class CnfOpsExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CnfOpsExhaustiveTest, AllOpsWidth3) {
  const unsigned w = 3;
  const int op = GetParam();
  for (std::uint64_t av = 0; av < (1u << w); ++av) {
    for (std::uint64_t bv = 0; bv < (1u << w); ++bv) {
      sat::Solver s;
      CnfBuilder cnf(s);
      const LitVec a = cnf.freshVec(w);
      const LitVec b = cnf.freshVec(w);
      constrainEqual(cnf, a, av);
      constrainEqual(cnf, b, bv);
      const BitVec ab(w, av), bb(w, bv);

      LitVec res;
      BitVec expect;
      switch (op) {
        case 0: res = cnf.addVec(a, b, cnf.falseLit()); expect = ab.add(bb); break;
        case 1: res = cnf.subVec(a, b); expect = ab.sub(bb); break;
        case 2: res = cnf.mulVec(a, b); expect = ab.mul(bb); break;
        case 3: res = cnf.andVec(a, b); expect = ab.band(bb); break;
        case 4: res = cnf.orVec(a, b); expect = ab.bor(bb); break;
        case 5: res = cnf.xorVec(a, b); expect = ab.bxor(bb); break;
        case 6: res = {cnf.eqVec(a, b)}; expect = ab.eq(bb); break;
        case 7: res = {cnf.ultVec(a, b)}; expect = ab.ult(bb); break;
        case 8: res = {cnf.sltVec(a, b)}; expect = ab.slt(bb); break;
        case 9: res = {cnf.uleVec(a, b)}; expect = ab.ule(bb); break;
        case 10: res = {cnf.sleVec(a, b)}; expect = ab.sle(bb); break;
        case 11: res = cnf.shiftVec(a, b, CnfBuilder::ShiftKind::kShl); expect = ab.shl(bb); break;
        case 12: res = cnf.shiftVec(a, b, CnfBuilder::ShiftKind::kLshr); expect = ab.lshr(bb); break;
        case 13: res = cnf.shiftVec(a, b, CnfBuilder::ShiftKind::kAshr); expect = ab.ashr(bb); break;
        case 14: res = cnf.negVec(a); expect = ab.neg(); break;
        case 15: res = {cnf.redXor(a)}; expect = ab.redXor(); break;
        default: FAIL();
      }
      ASSERT_EQ(s.solve(), sat::LBool::kTrue);
      EXPECT_EQ(modelOf(s, res), expect.uint())
          << "op=" << op << " a=" << av << " b=" << bv;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, CnfOpsExhaustiveTest, ::testing::Range(0, 16));

// A small random sequential circuit generator used for the differential
// test between the unroller and the simulator.
struct RandomCircuit {
  std::vector<Sig> inputs;
  std::vector<Sig> regs;
  std::vector<Sig> probes;  // interesting internal signals
};

RandomCircuit buildRandomCircuit(Design& d, Rng& rng) {
  RandomCircuit c;
  const int numInputs = static_cast<int>(rng.range(1, 3));
  const int numRegs = static_cast<int>(rng.range(1, 4));
  const unsigned width = static_cast<unsigned>(rng.range(2, 9));

  for (int i = 0; i < numInputs; ++i) {
    c.inputs.push_back(d.input(width, "in" + std::to_string(i)));
  }
  for (int i = 0; i < numRegs; ++i) {
    c.regs.push_back(d.reg(width, "r" + std::to_string(i)));
  }
  std::vector<Sig> pool = c.inputs;
  pool.insert(pool.end(), c.regs.begin(), c.regs.end());
  pool.push_back(d.constant(width, rng.next()));

  auto pick = [&]() { return pool[rng.below(pool.size())]; };
  const int numOps = static_cast<int>(rng.range(4, 18));
  for (int i = 0; i < numOps; ++i) {
    const Sig a = pick(), b = pick();
    Sig r;
    switch (rng.below(12)) {
      case 0: r = a + b; break;
      case 1: r = a - b; break;
      case 2: r = a & b; break;
      case 3: r = a | b; break;
      case 4: r = a ^ b; break;
      case 5: r = ~a; break;
      case 6: r = mux(a.eq(b), a, b); break;
      case 7: r = a.ult(b).zext(a.width()); break;
      case 8: r = a << b; break;
      case 9: r = a >> b; break;
      case 10: r = d.binary(Op::kAshr, a, b); break;
      default: r = a.slt(b).sext(a.width()); break;
    }
    pool.push_back(r);
    c.probes.push_back(r);
  }
  for (Sig reg : c.regs) d.connect(reg, pool[rng.below(pool.size())]);
  return c;
}

class UnrollerDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(UnrollerDifferentialTest, CnfAgreesWithSimulator) {
  Rng rng(GetParam() * 31337 + 17);
  Design d;
  RandomCircuit circuit = buildRandomCircuit(d, rng);

  constexpr unsigned kCycles = 4;
  sat::Solver solver;
  CnfBuilder cnf(solver);
  Unroller unroller(d, cnf);
  unroller.unrollTo(kCycles);

  // Choose random initial state + stimuli, constrain the CNF to them.
  sim::Simulator simulator(d);
  for (std::uint32_t r = 0; r < d.regs().size(); ++r) {
    const unsigned w = d.node(d.regs()[r].q).width;
    const BitVec init(w, rng.next());
    simulator.setReg(r, init);
    constrainEqual(cnf, unroller.regLits(r, 0), init.uint());
  }
  std::vector<std::vector<BitVec>> stimuli(kCycles + 1);
  for (unsigned t = 0; t <= kCycles; ++t) {
    for (Sig in : circuit.inputs) {
      const BitVec v(in.width(), rng.next());
      stimuli[t].push_back(v);
      constrainEqual(cnf, unroller.lits(in.id(), t), v.uint());
    }
  }

  ASSERT_EQ(solver.solve(), sat::LBool::kTrue);

  for (unsigned t = 0; t <= kCycles; ++t) {
    for (std::size_t i = 0; i < circuit.inputs.size(); ++i) {
      simulator.poke(circuit.inputs[i], stimuli[t][i]);
    }
    simulator.evalComb();
    for (Sig probe : circuit.probes) {
      EXPECT_EQ(modelOf(solver, unroller.lits(probe.id(), t)), simulator.peek(probe).uint())
          << "probe mismatch at cycle " << t;
    }
    for (std::uint32_t r = 0; r < d.regs().size(); ++r) {
      EXPECT_EQ(modelOf(solver, unroller.regLits(r, t)), simulator.regValue(r).uint())
          << "register state mismatch at cycle " << t;
    }
    simulator.step();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnrollerDifferentialTest, ::testing::Range(0, 30));

// --- BMC engine on known-safe / known-unsafe toy FSMs ---------------------

TEST(Bmc, ProvesInvariantOfConstrainedCounter) {
  // Counter that saturates at 10; prove: if ctr <= 10 now, ctr <= 10 in
  // 3 cycles (holds from ANY state satisfying the assumption).
  Design d;
  const Sig ctr = d.reg(8, "ctr", StateClass::kArch);
  const Sig ten = d.constant(8, 10);
  d.connect(ctr, mux(ctr.ult(ten), ctr + d.one(8), ctr));

  IntervalProperty p;
  p.name = "saturating_counter";
  p.assumeAt(0, ctr.ule(ten), "ctr <= 10");
  for (unsigned t = 1; t <= 3; ++t) p.proveAt(t, ctr.ule(ten), "ctr <= 10");

  BmcEngine engine(d);
  const CheckResult res = engine.check(p);
  EXPECT_EQ(res.status, CheckStatus::kProven);
  EXPECT_GT(res.stats.clauses, 0u);
}

TEST(Bmc, FindsCounterexampleWhenInvariantTooStrong) {
  // Same counter, but claim ctr <= 9 stays invariant: fails from ctr == 9.
  Design d;
  const Sig ctr = d.reg(8, "ctr", StateClass::kArch);
  const Sig ten = d.constant(8, 10);
  const Sig nine = d.constant(8, 9);
  d.connect(ctr, mux(ctr.ult(ten), ctr + d.one(8), ctr));

  IntervalProperty p;
  p.name = "too_strong";
  p.assumeAt(0, ctr.ule(nine));
  p.proveAt(1, ctr.ule(nine));

  BmcEngine engine(d);
  const CheckResult res = engine.check(p);
  ASSERT_EQ(res.status, CheckStatus::kCounterexample);
  ASSERT_TRUE(res.trace.has_value());
  // The counterexample must start at exactly ctr == 9.
  EXPECT_EQ(res.trace->initialRegs[0].uint(), 9u);
}

TEST(Bmc, SymbolicInitialStateCatchesDeepStates) {
  // A 4-bit LFSR-ish register; property "reg != 0xF" is violated from the
  // symbolic initial state immediately, no matter how deep 0xF is from
  // reset: this is the IPC any-state advantage.
  Design d;
  const Sig r = d.reg(4, "r");
  d.connect(r, r + d.one(4));

  IntervalProperty p;
  p.name = "never_f";
  p.proveAt(0, r.ne(d.constant(4, 0xF)));

  BmcEngine engine(d);
  const CheckResult res = engine.check(p);
  ASSERT_EQ(res.status, CheckStatus::kCounterexample);
  EXPECT_EQ(res.trace->initialRegs[0].uint(), 0xFu);
}

TEST(Bmc, InvariantAssumptionsRestrictInputs) {
  // Adder pipeline: output register equals input delayed; assume input is
  // always < 8, prove output < 8 two cycles later.
  Design d;
  const Sig in = d.input(8, "in");
  const Sig s1 = d.reg(8, "s1");
  const Sig s2 = d.reg(8, "s2");
  d.connect(s1, in);
  d.connect(s2, s1);

  IntervalProperty p;
  p.name = "bounded_pipeline";
  const Sig bound = d.constant(8, 8);
  p.assumeAlways(in.ult(bound), "in < 8");
  p.assumeAt(0, s1.ult(bound));
  p.assumeAt(0, s2.ult(bound));
  for (unsigned t = 0; t <= 2; ++t) p.proveAt(t, s2.ult(bound));

  BmcEngine engine(d);
  EXPECT_EQ(engine.check(p).status, CheckStatus::kProven);
}

TEST(Bmc, TraceReplaysDeterministically) {
  Design d;
  const Sig in = d.input(4, "in");
  const Sig acc = d.reg(4, "acc");
  d.connect(acc, acc + in);

  IntervalProperty p;
  p.name = "acc_reaches_5";
  p.assumeAt(0, acc.eq(d.zero(4)));
  p.proveAt(2, acc.ne(d.constant(4, 5)));  // falsifiable: 2+3 = 5

  BmcEngine engine(d);
  const CheckResult res = engine.check(p);
  ASSERT_EQ(res.status, CheckStatus::kCounterexample);
  const TraceEval eval(d, *res.trace);
  EXPECT_EQ(eval.value(acc, 0).uint(), 0u);
  EXPECT_EQ(eval.value(acc, 2).uint(), 5u);
}

TEST(Bmc, MemoryDesignsWorkAfterLowering) {
  // Write a value, read it back two cycles later through the lowered mux
  // tree, prove the read value matches what was written.
  Design d;
  const Sig waddr = d.input(2, "waddr");
  const Sig wdata = d.input(8, "wdata");
  const Sig raddr = d.input(2, "raddr");
  const auto mem = d.addMem(4, 8, "m");
  const Sig rdata = d.memRead(mem, raddr);
  d.memWrite(mem, d.one(1), waddr, wdata);
  // Shadow registers capture the cycle-0 write for the cycle-1 check.
  const Sig seenW = d.reg(8, "seenW");
  d.connect(seenW, wdata);
  const Sig lastWaddr = d.reg(2, "lastWaddr");
  d.connect(lastWaddr, waddr);
  d.lowerMemories();

  IntervalProperty p;
  p.name = "mem_rw";
  // Read at cycle 1 from the address written at cycle 0, with no
  // overwrite of that address at cycle 1 (the single write port writes
  // every cycle, so require a different target address).
  p.assumeAt(1, raddr.eq(lastWaddr), "read what was just written");
  p.assumeAt(1, waddr.ne(lastWaddr), "no overwrite this cycle");
  p.proveAt(1, rdata.eq(seenW), "read returns written data");

  BmcEngine engine(d);
  EXPECT_EQ(engine.check(p).status, CheckStatus::kProven);
}

TEST(IntervalProperty, PrettyRendersFig4Shape) {
  Design d;
  const Sig a = d.input(1, "a");
  IntervalProperty p;
  p.name = "upec";
  p.assumeAt(0, a, "secret_data_protected()");
  p.assumeAlways(a, "cache_monitor_valid_IO()");
  p.proveAt(5, a, "soc_state_1 = soc_state_2");
  const std::string text = p.pretty();
  EXPECT_NE(text.find("at t+0: secret_data_protected()"), std::string::npos);
  EXPECT_NE(text.find("during t..t+5: cache_monitor_valid_IO()"), std::string::npos);
  EXPECT_NE(text.find("at t+5: soc_state_1 = soc_state_2"), std::string::npos);
}

}  // namespace
}  // namespace upec::formal
