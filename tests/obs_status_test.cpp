// Live campaign introspection: the StatusServer's three endpoints (the
// Prometheus exposition is parsed back, not pattern-matched), graceful
// degradation when the port is taken, the ProgressTracker's aggregation
// and ETA (monotone under constant solve times, closed totals for
// early-exit jobs), a concurrent scrape hammering /status and /metrics
// while a 2-worker sweep runs (the TSan leg polices this one), and the
// profiling contract: SolverConfig::profile populates phase timings
// without moving the solver trajectory by a single conflict.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/log.hpp"
#include "engine/campaign.hpp"
#include "engine/progress.hpp"
#include "engine/scheduler.hpp"
#include "json_testlib.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/status_server.hpp"

namespace upec {
namespace {

using engine::CampaignOptions;
using engine::CampaignReport;
using engine::JobSpec;
using engine::ProgressTracker;
using testjson::Value;

JobSpec secureLadder(std::uint32_t id, SecretScenario scenario, unsigned kMax) {
  JobSpec spec;
  spec.id = id;
  spec.label = std::string("secure/") + scenarioName(scenario);
  spec.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  spec.secretWord = 12;
  spec.options.scenario = scenario;
  spec.mode = engine::DeepeningMode::kIncremental;
  spec.kMin = 1;
  spec.kMax = kMax;
  return spec;
}

std::vector<JobSpec> smallCampaign() {
  return {secureLadder(0, SecretScenario::kNotInCache, 2),
          secureLadder(1, SecretScenario::kInCache, 2)};
}

// One parsed sample of a Prometheus text exposition: "name{labels} value"
// or "name value". # lines are kept separately as declared types.
struct Exposition {
  std::map<std::string, std::string> types;           // name -> counter|gauge|histogram
  std::vector<std::pair<std::string, double>> samples;  // full series name (incl. labels)

  double sample(const std::string& name) const {
    for (const auto& [n, v] : samples) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing sample: " << name;
    return -1.0;
  }
  bool has(const std::string& name) const {
    for (const auto& [n, v] : samples) {
      if (n == name) return true;
    }
    return false;
  }
};

void parseExposition(const std::string& body, Exposition& e) {
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <type>"
      std::istringstream ls(line);
      std::string hash, kw, name, type;
      ls >> hash >> kw >> name >> type;
      ASSERT_EQ(kw, "TYPE") << line;
      ASSERT_TRUE(type == "counter" || type == "gauge" || type == "histogram") << line;
      e.types[name] = type;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string series = line.substr(0, space);
    e.samples.emplace_back(series, std::atof(line.c_str() + space + 1));
    // Every sample must belong to a declared family (series name stripped
    // of labels and the _bucket/_sum/_count suffixes).
    std::string family = series.substr(0, series.find('{'));
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::size_t len = std::strlen(suffix);
      if (family.size() > len && family.compare(family.size() - len, len, suffix) == 0 &&
          e.types.count(family.substr(0, family.size() - len)) != 0) {
        family = family.substr(0, family.size() - len);
        break;
      }
    }
    ASSERT_NE(e.types.count(family), 0u) << "undeclared family for: " << line;
  }
  ASSERT_FALSE(e.samples.empty());
}

// ---------------------------------------------------------- status server ---

TEST(StatusServer, MetricsEndpointServesParseableExposition) {
  obs::metrics().reset();
  obs::setMetricsEnabled(true);
  obs::metrics().counter("status_test.scrapes").add(42);
  obs::metrics().gauge("status_test.depth").set(7);
  obs::Histogram& h = obs::metrics().histogram("status_test.latency-us");
  for (const std::uint64_t v : {1ull, 2ull, 3ull, 100ull, 1000ull}) h.observe(v);

  obs::StatusServer server;
  ASSERT_TRUE(server.start({}));  // ephemeral port, no providers
  ASSERT_NE(server.port(), 0);

  std::string body;
  int code = 0;
  ASSERT_TRUE(obs::httpGet(server.port(), "/metrics", body, &code));
  EXPECT_EQ(code, 200);

  Exposition e;
  ASSERT_NO_FATAL_FAILURE(parseExposition(body, e));
  EXPECT_EQ(e.types["upec_status_test_scrapes"], "counter");
  EXPECT_EQ(e.sample("upec_status_test_scrapes"), 42.0);
  EXPECT_EQ(e.types["upec_status_test_depth"], "gauge");
  EXPECT_EQ(e.sample("upec_status_test_depth"), 7.0);
  // The dash sanitises to '_'; the histogram carries cumulative buckets
  // that end exactly at +Inf == _count, and the sum is exact.
  EXPECT_EQ(e.types["upec_status_test_latency_us"], "histogram");
  EXPECT_EQ(e.sample("upec_status_test_latency_us_sum"), 1106.0);
  EXPECT_EQ(e.sample("upec_status_test_latency_us_count"), 5.0);
  EXPECT_EQ(e.sample("upec_status_test_latency_us_bucket{le=\"+Inf\"}"), 5.0);
  double prev = 0.0;
  for (const auto& [name, value] : e.samples) {
    if (name.rfind("upec_status_test_latency_us_bucket", 0) != 0) continue;
    EXPECT_GE(value, prev) << "buckets must be cumulative: " << name;
    prev = value;
  }

  server.stop();
  obs::setMetricsEnabled(false);
  obs::metrics().reset();
}

TEST(StatusServer, UnknownPathIs404AndProvidersServeBodies) {
  obs::StatusServerOptions options;
  options.status = [] { return std::string("{\"ok\":true}"); };
  options.events = [] { return std::string("{\"type\":\"x\"}\n"); };
  obs::StatusServer server;
  ASSERT_TRUE(server.start(std::move(options)));

  std::string body;
  int code = 0;
  ASSERT_TRUE(obs::httpGet(server.port(), "/status", body, &code));
  EXPECT_EQ(code, 200);
  EXPECT_EQ(body, "{\"ok\":true}");
  ASSERT_TRUE(obs::httpGet(server.port(), "/events", body, &code));
  EXPECT_EQ(code, 200);
  EXPECT_EQ(body, "{\"type\":\"x\"}\n");
  ASSERT_TRUE(obs::httpGet(server.port(), "/nope", body, &code));
  EXPECT_EQ(code, 404);
  EXPECT_GE(server.requestsServed(), 3u);

  const std::uint16_t port = server.port();
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(obs::httpGet(port, "/status", body));
}

TEST(StatusServer, NullProvidersYield404) {
  obs::StatusServer server;
  ASSERT_TRUE(server.start({}));
  std::string body;
  int code = 0;
  ASSERT_TRUE(obs::httpGet(server.port(), "/status", body, &code));
  EXPECT_EQ(code, 404);
  ASSERT_TRUE(obs::httpGet(server.port(), "/events", body, &code));
  EXPECT_EQ(code, 404);
}

TEST(StatusServer, TakenPortDegradesGracefully) {
  obs::StatusServer first;
  ASSERT_TRUE(first.start({}));

  // A second server on the same port must fail cleanly...
  obs::StatusServerOptions clash;
  clash.port = first.port();
  obs::StatusServer second;
  EXPECT_FALSE(second.start(std::move(clash)));
  EXPECT_FALSE(second.running());

  // ...and a campaign pointed at the taken port must still complete.
  CampaignOptions options;
  options.threads = 1;
  options.statusPort = first.port();
  const CampaignReport report = engine::runCampaign({secureLadder(0, SecretScenario::kNotInCache, 1)}, options);
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_NE(report.jobs[0].verdict, Verdict::kError);
}

TEST(StatusServer, OutOfRangePortSkipsIntrospection) {
  // A port that doesn't fit in uint16 must not wrap onto some other port;
  // the campaign runs without introspection instead.
  const LogLevel savedLevel = logLevel();
  setLogLevel(LogLevel::kInfo);
  std::mutex logMutex;
  bool rejected = false;
  bool bound = false;
  setLogSink([&logMutex, &rejected, &bound](LogLevel, const std::string& msg) {
    std::lock_guard<std::mutex> lock(logMutex);
    if (msg.find("invalid status port") != std::string::npos) rejected = true;
    if (msg.find("status endpoint on") != std::string::npos) bound = true;
  });

  CampaignOptions options;
  options.threads = 1;
  options.statusPort = 65536;
  const CampaignReport report = engine::runCampaign({secureLadder(0, SecretScenario::kNotInCache, 1)}, options);

  setLogSink(nullptr);
  setLogLevel(savedLevel);
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_NE(report.jobs[0].verdict, Verdict::kError);
  EXPECT_TRUE(rejected);
  EXPECT_FALSE(bound);  // 65536 must not wrap to an ephemeral bind on port 0
}

// -------------------------------------------------------- progress tracker ---

// Feeds the tracker a synthetic campaign: constant solve times make the
// expected ETA exact, so monotonicity is asserted, not hoped for.
TEST(ProgressTracker, EtaIsMonotoneUnderConstantSolveTimes) {
  ProgressTracker tracker;
  std::vector<JobSpec> jobs = {secureLadder(0, SecretScenario::kNotInCache, 8)};
  tracker.prime(jobs);

  obs::StreamEvent start("campaign_start");
  start.num("jobs", 1).num("threads", 1);
  tracker.onEvent(start);
  EXPECT_EQ(tracker.snapshot().windowsTotal, 8u);

  double prevEta = -1.0;
  for (unsigned k = 1; k <= 8; ++k) {
    obs::StreamEvent w("window");
    w.num("job", 0).str("label", "x").num("k", k).str("verdict", "proven");
    w.num("conflicts", 10).real("solve_ms", 100.0);
    tracker.onEvent(w);
    const ProgressTracker::Snapshot snap = tracker.snapshot();
    EXPECT_EQ(snap.windowsDecided, k);
    // With every sample at 100 ms, ETA = remaining * 100 ms: strictly
    // decreasing as windows close.
    EXPECT_DOUBLE_EQ(snap.etaMs, (8.0 - k) * 100.0);
    if (prevEta >= 0.0) {
      EXPECT_LT(snap.etaMs, prevEta);
    }
    prevEta = snap.etaMs;
  }

  obs::StreamEvent jobDone("job");
  jobDone.num("job", 0).str("label", "x").str("verdict", "proven").real("wall_ms", 800.0);
  tracker.onEvent(jobDone);
  obs::StreamEvent end("campaign_end");
  end.str("verdict", "proven").real("wall_ms", 812.0);
  tracker.onEvent(end);
  const ProgressTracker::Snapshot final = tracker.snapshot();
  EXPECT_EQ(final.jobsDone, 1u);
  EXPECT_TRUE(final.done);
  EXPECT_DOUBLE_EQ(final.etaMs, 0.0);
}

TEST(ProgressTracker, EarlyExitJobClosesItsWindowTotal) {
  ProgressTracker tracker;
  tracker.prime({secureLadder(0, SecretScenario::kNotInCache, 8)});
  obs::StreamEvent w("window");
  w.num("job", 0).num("k", 1).str("verdict", "l_alert").real("solve_ms", 5.0);
  tracker.onEvent(w);
  // An L-alert ends the ladder after one of eight windows: the job event
  // must clamp the total so no phantom "remaining" windows linger.
  obs::StreamEvent jobDone("job");
  jobDone.num("job", 0).str("verdict", "l_alert").real("wall_ms", 6.0);
  tracker.onEvent(jobDone);
  const ProgressTracker::Snapshot snap = tracker.snapshot();
  EXPECT_EQ(snap.windowsTotal, 1u);
  EXPECT_EQ(snap.windowsDecided, 1u);
  EXPECT_DOUBLE_EQ(snap.etaMs, 0.0);
}

TEST(ProgressTracker, StatusJsonParsesWithFullSchema) {
  ProgressTracker tracker;
  tracker.prime(smallCampaign());
  engine::ConflictLedger ledger(1000);
  ledger.charge(250);
  tracker.attachLedger(&ledger);

  obs::StreamEvent start("campaign_start");
  start.num("jobs", 2).num("threads", 2);
  tracker.onEvent(start);
  obs::StreamEvent w("window");
  w.num("job", 1).num("k", 1).str("verdict", "proven").real("solve_ms", 12.0);
  tracker.onEvent(w);
  obs::StreamEvent resched("reschedule");
  resched.num("job", 0).num("k", 2).num("attempt", 1).num("budget", 4000);
  tracker.onEvent(resched);

  const Value v = testjson::parse(tracker.statusJson());
  EXPECT_TRUE(v.at("running").boolean);
  EXPECT_EQ(v.at("threads").number, 2.0);
  EXPECT_EQ(v.at("jobs").at("total").number, 2.0);
  EXPECT_EQ(v.at("jobs").at("done").number, 0.0);
  EXPECT_EQ(v.at("windows").at("decided").number, 1.0);
  EXPECT_EQ(v.at("windows").at("total").number, 4.0);
  EXPECT_EQ(v.at("windows").at("remaining").number, 3.0);
  EXPECT_EQ(v.at("reschedules").number, 1.0);
  EXPECT_EQ(v.at("ledger").at("spent").number, 250.0);
  EXPECT_EQ(v.at("ledger").at("ceiling").number, 1000.0);
  EXPECT_EQ(v.at("ledger").at("utilization_pct").number, 25.0);
  EXPECT_GT(v.at("eta_ms").number, 0.0);
  ASSERT_EQ(v.at("jobs_detail").array.size(), 2u);
  const Value& job1 = v.at("jobs_detail").array[1];
  EXPECT_EQ(job1.at("decided").number, 1.0);
  EXPECT_EQ(job1.at("rung").number, 1.0);
  EXPECT_FALSE(job1.at("done").boolean);

  // The events tail holds each fed event as one parseable NDJSON line.
  std::istringstream tail(tracker.eventsTail());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(tail, line)) {
    testjson::parse(line);  // throws = test failure
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
}

TEST(ProgressTracker, ForwardsEveryEventToTheWrappedObserver) {
  class Counting : public obs::CampaignObserver {
   public:
    void onEvent(const obs::StreamEvent&) override { ++events; }
    int events = 0;
  };
  Counting sink;
  ProgressTracker tracker(&sink);
  tracker.prime(smallCampaign());
  obs::StreamEvent start("campaign_start");
  tracker.onEvent(start);
  obs::StreamEvent w("window");
  w.num("job", 0).num("k", 1);
  tracker.onEvent(w);
  EXPECT_EQ(sink.events, 2);
}

// ------------------------------------------------- live campaign scraping ---

// A 2-worker sweep with the endpoint open, scraped from another thread the
// whole time. The TSan leg runs this test: the scraper reads tracker
// aggregates and the metrics registry while pool workers write them.
TEST(StatusServer, ConcurrentScrapeDuringSweep) {
  obs::metrics().reset();
  obs::setMetricsEnabled(true);

  // runCampaign logs the bound ephemeral port; capture it from the sink
  // (info level must be on for the line to be emitted at all).
  const LogLevel savedLevel = logLevel();
  setLogLevel(LogLevel::kInfo);
  std::mutex portMutex;
  std::uint16_t port = 0;
  setLogSink([&portMutex, &port](LogLevel, const std::string& msg) {
    const std::string needle = "http://127.0.0.1:";
    const std::size_t pos = msg.find(needle);
    if (pos == std::string::npos) return;
    std::lock_guard<std::mutex> lock(portMutex);
    port = static_cast<std::uint16_t>(std::atoi(msg.c_str() + pos + needle.size()));
  });

  CampaignOptions options;
  options.threads = 2;
  options.statusPort = 0;
  CampaignReport report;
  std::atomic<bool> campaignDone{false};
  std::thread campaign([&report, &options, &campaignDone] {
    report = engine::runCampaign(smallCampaign(), options);
    campaignDone.store(true, std::memory_order_release);
  });

  std::uint64_t scrapes = 0;
  double lastDecided = -1.0;
  double lastTotal = -1.0;
  bool sawRunningFalseOrClosed = false;
  while (!sawRunningFalseOrClosed) {
    std::uint16_t p;
    {
      std::lock_guard<std::mutex> lock(portMutex);
      p = port;
    }
    if (p == 0) {
      // Campaign not started yet — or already over without us ever seeing
      // the port (should not happen, but never hang the suite on it).
      if (campaignDone.load(std::memory_order_acquire)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    std::string statusBody, metricsBody;
    if (!obs::httpGet(p, "/status", statusBody) ||
        !obs::httpGet(p, "/metrics", metricsBody)) {
      // Endpoint gone: the campaign finished between scrapes.
      sawRunningFalseOrClosed = scrapes > 0;
      break;
    }
    ++scrapes;
    const Value v = testjson::parse(statusBody);
    lastDecided = v.at("windows").at("decided").number;
    lastTotal = v.at("windows").at("total").number;
    EXPECT_LE(lastDecided, lastTotal);
    if (!v.at("running").boolean) sawRunningFalseOrClosed = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  campaign.join();
  setLogSink(nullptr);
  setLogLevel(savedLevel);
  obs::setMetricsEnabled(false);
  obs::metrics().reset();

  EXPECT_GT(scrapes, 0u) << "never reached the endpoint while the sweep ran";
  EXPECT_TRUE(sawRunningFalseOrClosed);
  EXPECT_GE(lastTotal, 0.0);
  // Cross-check the scrape against the final report: the campaign solved
  // exactly the windows the tracker advertised.
  std::size_t reportWindows = 0;
  for (const engine::JobResult& job : report.jobs) reportWindows += job.windows.size();
  EXPECT_EQ(reportWindows, 4u);
  EXPECT_LE(lastDecided, static_cast<double>(reportWindows));
}

// ---------------------------------------------------------- profiling -------

// The load-bearing invariant: profiling only reads clocks and flags — with
// it on, every per-window conflict/propagation/decision count is identical
// to the unprofiled run, and the phase timings actually populate.
TEST(Profile, TrajectoryBitIdenticalAndTimingsPopulate) {
  CampaignOptions options;
  options.threads = 1;
  const CampaignReport off = engine::runCampaign(smallCampaign(), options);

  std::vector<JobSpec> profiled = smallCampaign();
  for (JobSpec& spec : profiled) spec.options.profileSolver = true;
  const CampaignReport on = engine::runCampaign(profiled, options);

  ASSERT_EQ(off.jobs.size(), on.jobs.size());
  for (std::size_t j = 0; j < off.jobs.size(); ++j) {
    EXPECT_EQ(off.jobs[j].verdict, on.jobs[j].verdict);
    ASSERT_EQ(off.jobs[j].windows.size(), on.jobs[j].windows.size());
    for (std::size_t w = 0; w < off.jobs[j].windows.size(); ++w) {
      const auto& a = off.jobs[j].windows[w].stats;
      const auto& b = on.jobs[j].windows[w].stats;
      EXPECT_EQ(a.conflicts, b.conflicts) << "job " << j << " window " << w;
      EXPECT_EQ(a.propagations, b.propagations) << "job " << j << " window " << w;
      EXPECT_EQ(a.decisions, b.decisions) << "job " << j << " window " << w;
    }
  }

  EXPECT_FALSE(off.profileEnabled);
  EXPECT_EQ(off.totalPropagateTimeNs, 0u);
  EXPECT_TRUE(on.profileEnabled);
  EXPECT_GT(on.totalPropagateTimeNs, 0u);

  // The report JSON carries the fold: a top-level "profile" block with the
  // four phases in microseconds.
  const Value v = testjson::parse(on.toJson());
  ASSERT_TRUE(v.has("profile"));
  EXPECT_GT(v.at("profile").at("propagate_us").number, 0.0);
  EXPECT_TRUE(v.at("profile").has("analyze_us"));
  EXPECT_TRUE(v.at("profile").has("reduce_db_us"));
  EXPECT_TRUE(v.at("profile").has("restart_us"));
  const Value voff = testjson::parse(off.toJson());
  EXPECT_FALSE(voff.has("profile"));
}

}  // namespace
}  // namespace upec
