// Portfolio solving across the verification stack: BmcEngine, the UPEC
// ladder and campaign jobs must produce identical verdicts whether a check
// is decided by the single CDCL backend or by a diversified portfolio race,
// in both monolithic and incremental deepening modes.
#include <gtest/gtest.h>

#include "engine/job.hpp"
#include "formal/bmc.hpp"
#include "formal/kinduction.hpp"
#include "rtl/ir.hpp"
#include "upec/miter.hpp"
#include "upec/upec.hpp"

namespace upec {
namespace {

using formal::BmcEngine;
using formal::CheckResult;
using formal::CheckStatus;
using formal::IntervalProperty;

// Same saturating counter as formal_incremental_test: proven and falsified
// obligations at known depths.
struct CounterDesign {
  rtl::Design design{"sat_counter"};
  rtl::Sig enable, count, limit;
  rtl::Sig bounded;  // count <= 42
  rtl::Sig isZero;   // count == 0
  rtl::Sig lt3;      // count < 3

  CounterDesign() {
    enable = design.input(1, "enable");
    count = design.reg(8, "count", rtl::StateClass::kArch);
    limit = design.constant(8, 42);
    design.connect(count, mux(enable & count.ult(limit), count + design.one(8), count));
    bounded = count.ule(limit);
    isZero = count.eq(design.constant(8, 0));
    lt3 = count.ult(design.constant(8, 3));
  }
};

TEST(PortfolioBmc, SingleShotVerdictsMatchTheSingleBackend) {
  CounterDesign d;
  for (unsigned k = 1; k <= 4; ++k) {
    IntervalProperty p;
    p.assumeAt(0, d.isZero, "count == 0");
    p.proveAt(k, d.lt3, "count < 3");

    BmcEngine single(d.design);
    const CheckResult expected = single.check(p);

    BmcEngine raced(d.design);
    raced.setSolverConfigs(sat::SolverConfig::diversified(3));
    const CheckResult got = raced.check(p);

    EXPECT_EQ(got.status, expected.status) << "k=" << k;
    EXPECT_FALSE(got.stats.solvedBy.empty());
    if (got.status == CheckStatus::kCounterexample) {
      // The racing backends may find different witnesses; both must replay.
      const formal::TraceEval eval(d.design, *got.trace);
      EXPECT_GE(eval.value(d.count, k).uint(), 3u);
    }
  }
}

TEST(PortfolioBmc, IncrementalPortfolioLadderMatchesIncrementalSingle) {
  CounterDesign d;
  BmcEngine single(d.design);
  BmcEngine raced(d.design);
  raced.setSolverConfigs(sat::SolverConfig::diversified(2));

  for (unsigned k = 1; k <= 4; ++k) {
    IntervalProperty p;
    p.name = "bounded_k" + std::to_string(k);
    p.assumeAt(0, d.bounded, "count <= 42");
    for (unsigned t = 1; t <= k; ++t) p.proveAt(t, d.bounded, "count <= 42");

    const CheckResult expected = single.checkIncremental(p);
    const CheckResult got = raced.checkIncremental(p);
    EXPECT_EQ(got.status, expected.status) << "k=" << k;
    EXPECT_EQ(got.status, CheckStatus::kProven) << "k=" << k;
    EXPECT_EQ(raced.incrementalFrames(), k + 1);
  }
}

TEST(PortfolioKInduction, ProvesTheSameInvariant) {
  CounterDesign d;
  formal::KInduction single(d.design);
  const formal::KInductionResult expected = single.prove(d.bounded, d.isZero, 3);

  formal::KInduction raced(d.design);
  raced.setSolverConfigs(sat::SolverConfig::diversified(2));
  const formal::KInductionResult got = raced.prove(d.bounded, d.isZero, 3);

  EXPECT_EQ(got.proven, expected.proven);
  EXPECT_EQ(got.provenAtK, expected.provenAtK);
}

// --- learnt-clause sharing across the formal engines ------------------------

TEST(SharingBmc, SingleShotAndIncrementalVerdictsMatchTheSingleBackend) {
  // Same obligations as the non-sharing differentials above, decided by a
  // sharing portfolio: imported clauses are consequences of the shared
  // formula, so every verdict must be preserved.
  CounterDesign d;
  sat::PortfolioOptions sharing;
  sharing.sharing = true;

  for (unsigned k = 1; k <= 4; ++k) {
    IntervalProperty p;
    p.assumeAt(0, d.isZero, "count == 0");
    p.proveAt(k, d.lt3, "count < 3");

    BmcEngine single(d.design);
    const CheckResult expected = single.check(p);

    BmcEngine shared(d.design);
    shared.setSolverConfigs(sat::SolverConfig::diversified(3));
    shared.setPortfolioOptions(sharing);
    const CheckResult got = shared.check(p);
    EXPECT_EQ(got.status, expected.status) << "k=" << k;
  }

  BmcEngine single(d.design);
  BmcEngine shared(d.design);
  shared.setSolverConfigs(sat::SolverConfig::diversified(2));
  shared.setPortfolioOptions(sharing);
  for (unsigned k = 1; k <= 4; ++k) {
    IntervalProperty p;
    p.name = "bounded_k" + std::to_string(k);
    p.assumeAt(0, d.bounded, "count <= 42");
    for (unsigned t = 1; t <= k; ++t) p.proveAt(t, d.bounded, "count <= 42");
    const CheckResult expected = single.checkIncremental(p);
    const CheckResult got = shared.checkIncremental(p);
    EXPECT_EQ(got.status, expected.status) << "incremental k=" << k;
  }
}

TEST(SharingKInduction, ProvesTheSameInvariant) {
  CounterDesign d;
  formal::KInduction single(d.design);
  const formal::KInductionResult expected = single.prove(d.bounded, d.isZero, 3);

  formal::KInduction shared(d.design);
  shared.setSolverConfigs(sat::SolverConfig::diversified(3));
  sat::PortfolioOptions sharing;
  sharing.sharing = true;
  shared.setPortfolioOptions(sharing);
  const formal::KInductionResult got = shared.prove(d.bounded, d.isZero, 3);

  EXPECT_EQ(got.proven, expected.proven);
  EXPECT_EQ(got.provenAtK, expected.provenAtK);
}

// --- the UPEC ladder --------------------------------------------------------

TEST(PortfolioUpec, LadderVerdictsMatchAcrossBackendAndDeepeningModes) {
  // Paper Tab. I "D not cached" (proven at every window) on the secure SoC:
  // 2-config portfolio vs single backend, incremental vs monolithic — four
  // ways to decide the same property, one truth.
  const soc::SocConfig config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);

  auto ladder = [&config](unsigned portfolio, bool incremental) {
    Miter miter(config, 12);
    UpecOptions options;
    options.scenario = SecretScenario::kNotInCache;
    options.incrementalDeepening = incremental;
    options.portfolio = portfolio;
    UpecEngine engine(miter, options);
    std::vector<Verdict> verdicts;
    for (unsigned k = 1; k <= 2; ++k) verdicts.push_back(engine.check(k).verdict);
    return verdicts;
  };

  const std::vector<Verdict> baseline = ladder(0, false);
  EXPECT_EQ(ladder(2, false), baseline) << "portfolio monolithic diverged";
  EXPECT_EQ(ladder(0, true), baseline) << "incremental single diverged";
  EXPECT_EQ(ladder(2, true), baseline) << "portfolio incremental diverged";
  for (const Verdict v : baseline) EXPECT_EQ(v, Verdict::kProven);
}

TEST(SharingUpec, LadderVerdictsMatchWithClauseSharingOn) {
  // The UPEC soundness differential for the exchange: the k=1..2 ladder on
  // the secure SoC under a sharing portfolio (monolithic and incremental)
  // must reproduce the single-backend verdicts.
  const soc::SocConfig config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);

  auto ladder = [&config](unsigned portfolio, bool sharing, bool incremental) {
    Miter miter(config, 12);
    UpecOptions options;
    options.scenario = SecretScenario::kNotInCache;
    options.incrementalDeepening = incremental;
    options.portfolio = portfolio;
    options.portfolioSharing = sharing;
    UpecEngine engine(miter, options);
    std::vector<Verdict> verdicts;
    for (unsigned k = 1; k <= 2; ++k) verdicts.push_back(engine.check(k).verdict);
    return verdicts;
  };

  const std::vector<Verdict> baseline = ladder(0, false, false);
  EXPECT_EQ(ladder(3, true, false), baseline) << "sharing monolithic diverged";
  EXPECT_EQ(ladder(3, true, true), baseline) << "sharing incremental diverged";
  for (const Verdict v : baseline) EXPECT_EQ(v, Verdict::kProven);
}

TEST(PortfolioUpec, PortfolioFindsTheSamePAlert) {
  // Tab. I "D in cache": the k=1 P-alert must appear under a portfolio too,
  // naming the same registers (classification is trace-based, so only the
  // register *set* is compared, not the witness).
  const soc::SocConfig config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);

  auto checkK1 = [&config](unsigned portfolio) {
    Miter miter(config, 12);
    UpecOptions options;
    options.scenario = SecretScenario::kInCache;
    options.portfolio = portfolio;
    UpecEngine engine(miter, options);
    return engine.check(1);
  };

  const UpecResult single = checkK1(0);
  const UpecResult raced = checkK1(2);
  EXPECT_EQ(single.verdict, Verdict::kPAlert);
  EXPECT_EQ(raced.verdict, Verdict::kPAlert);
}

// --- campaign jobs ----------------------------------------------------------

TEST(PortfolioJobs, PortfolioLadderJobMatchesSingleAndAttributesWins) {
  engine::JobSpec spec;
  spec.label = "secure/portfolio";
  spec.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  spec.secretWord = 12;
  spec.options.scenario = SecretScenario::kNotInCache;
  spec.mode = engine::DeepeningMode::kIncremental;
  spec.kMin = 1;
  spec.kMax = 2;

  const engine::JobResult single = engine::runJob(spec);

  spec.portfolio = 2;
  const engine::JobResult raced = engine::runJob(spec);

  ASSERT_EQ(single.windows.size(), raced.windows.size());
  for (std::size_t i = 0; i < single.windows.size(); ++i) {
    EXPECT_EQ(single.windows[i].verdict, raced.windows[i].verdict) << "window " << i + 1;
  }
  EXPECT_EQ(raced.verdict, single.verdict);

  // Attribution: every window was answered by some configuration, and the
  // per-config win counts add up to the number of windows.
  unsigned wins = 0;
  for (const auto& [name, count] : raced.solverWins) {
    EXPECT_FALSE(name.empty());
    wins += count;
  }
  EXPECT_EQ(wins, raced.windows.size());

  // And with clause sharing on top: same verdicts again, and the exchange
  // counters surface through the job result.
  spec.sharing = true;
  const engine::JobResult sharing = engine::runJob(spec);
  ASSERT_EQ(sharing.windows.size(), single.windows.size());
  for (std::size_t i = 0; i < single.windows.size(); ++i) {
    EXPECT_EQ(sharing.windows[i].verdict, single.windows[i].verdict)
        << "sharing window " << i + 1;
  }
  EXPECT_EQ(sharing.verdict, single.verdict);
}

}  // namespace
}  // namespace upec
