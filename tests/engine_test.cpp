// Campaign engine: work-stealing pool semantics, job execution, matrix
// enumeration, report aggregation and JSON export, agreement between
// monolithic and incremental deepening at the UPEC level, and the thread
// governor that keeps pool workers x portfolio members under a global cap.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/governor.hpp"
#include "engine/thread_pool.hpp"

namespace upec::engine {
namespace {

// --- pool ------------------------------------------------------------------

TEST(WorkStealingPool, RunsEveryTaskExactlyOnce) {
  WorkStealingPool pool(4);
  std::atomic<int> runs{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(runs.load(), 1000);
}

TEST(WorkStealingPool, SubtasksSubmittedFromWorkersComplete) {
  // Each task fans out children from inside the pool: the children land on
  // the submitting worker's own deque and must be drained (locally or by
  // stealing) before wait() returns.
  WorkStealingPool pool(3);
  std::atomic<int> leaves{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &leaves] {
      for (int c = 0; c < 5; ++c) {
        pool.submit([&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait();
  EXPECT_EQ(leaves.load(), 40);
}

TEST(WorkStealingPool, CurrentWorkerIsScopedToPoolThreads) {
  EXPECT_EQ(WorkStealingPool::currentWorker(), WorkStealingPool::kNotAWorker);
  WorkStealingPool pool(2);
  std::atomic<bool> sawValidIndex{true};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &sawValidIndex] {
      const unsigned w = WorkStealingPool::currentWorker();
      if (w >= pool.numThreads()) sawValidIndex = false;
    });
  }
  pool.wait();
  EXPECT_TRUE(sawValidIndex.load());
}

TEST(WorkStealingPool, PriorityTasksRunExactlyOnceAlongsideNormalOnes) {
  // submitPriority lands tasks at the steal end of the deque (the campaign
  // uses it for budget-escalated retry windows). Interleaved with normal
  // submissions, from outside and inside the pool, every task must still
  // run exactly once and wait() must cover them all.
  WorkStealingPool pool(3);
  std::atomic<int> runs{0};
  int normal = 0;
  for (int i = 0; i < 200; ++i) {
    if (i % 3 == 0) {
      pool.submitPriority([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
    } else {
      ++normal;  // each normal task spawns one priority subtask from inside
      pool.submit([&pool, &runs] {
        runs.fetch_add(1, std::memory_order_relaxed);
        pool.submitPriority([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
      });
    }
  }
  pool.wait();
  EXPECT_EQ(runs.load(), 200 + normal);
}

TEST(WorkStealingPool, ThrowingTasksDoNotWedgeThePool) {
  // A task that leaks an exception must not kill its worker or hang
  // wait(): the pool counts the escape and keeps draining. (The campaign
  // never relies on this — every job is contained at submission — so the
  // counter marks an engine bug, but the pool still has to survive one.)
  WorkStealingPool pool(2);
  std::atomic<int> runs{0};
  for (int i = 0; i < 50; ++i) {
    if (i == 10) {
      pool.submit([] { throw std::runtime_error("escaped"); });
    } else {
      pool.submit([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  pool.wait();
  EXPECT_EQ(runs.load(), 49) << "every non-throwing task still runs";
  EXPECT_EQ(pool.uncaughtExceptions(), 1u);
  // The pool stays usable after the escape.
  pool.submit([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
  pool.wait();
  EXPECT_EQ(runs.load(), 50);
}

TEST(WorkStealingPool, WaitIsReusable) {
  WorkStealingPool pool(2);
  std::atomic<int> runs{0};
  pool.submit([&runs] { ++runs; });
  pool.wait();
  EXPECT_EQ(runs.load(), 1);
  pool.submit([&runs] { ++runs; });
  pool.submit([&runs] { ++runs; });
  pool.wait();
  EXPECT_EQ(runs.load(), 3);
}

TEST(WorkStealingPool, DefaultsToHardwareConcurrency) {
  WorkStealingPool pool;
  EXPECT_GE(pool.numThreads(), 1u);
}

// --- thread governor --------------------------------------------------------

TEST(ThreadGovernor, GrantsWithinCapAndTracksPeak) {
  ThreadGovernor governor(4);
  EXPECT_EQ(governor.acquire(3), 3u);
  EXPECT_EQ(governor.acquire(3), 1u) << "only one slot left under the cap";
  EXPECT_EQ(governor.inUse(), 4u);
  EXPECT_EQ(governor.peakInUse(), 4u);
  EXPECT_EQ(governor.degradations(), 1u);

  governor.release(3);
  EXPECT_EQ(governor.inUse(), 1u);
  EXPECT_EQ(governor.acquire(2), 2u);
  governor.release(2);
  governor.release(1);
  EXPECT_EQ(governor.inUse(), 0u);
  EXPECT_EQ(governor.peakInUse(), 4u) << "peak is sticky";
  EXPECT_EQ(governor.acquisitions(), 3u);
}

TEST(ThreadGovernor, CapZeroIsUngoverned) {
  ThreadGovernor governor(0);
  EXPECT_EQ(governor.acquire(7), 7u);
  EXPECT_EQ(governor.inUse(), 0u) << "ungoverned grants are not tracked";
  governor.release(7);  // no-op, must not underflow
  EXPECT_EQ(governor.acquire(3), 3u);
}

TEST(ThreadGovernor, BlocksWhileExhaustedAndNeverExceedsTheCap) {
  // N threads hammer acquire/release; the counting hook must never see
  // more than `cap` outstanding slots. No timing assertions — on one core
  // this still exercises the blocked-waiter path via preemption.
  ThreadGovernor governor(2);
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&governor, &violated] {
      for (int i = 0; i < 50; ++i) {
        const unsigned held = governor.acquire(2);
        if (held == 0 || held > 2 || governor.peakInUse() > 2) violated = true;
        governor.release(held);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(governor.inUse(), 0u);
  EXPECT_LE(governor.peakInUse(), 2u);
}

// --- verdict merging and matrix enumeration --------------------------------

TEST(CampaignEngine, MergeVerdictsBySeverity) {
  EXPECT_EQ(mergeVerdicts(Verdict::kProven, Verdict::kPAlert), Verdict::kPAlert);
  EXPECT_EQ(mergeVerdicts(Verdict::kPAlert, Verdict::kUnknown), Verdict::kUnknown);
  EXPECT_EQ(mergeVerdicts(Verdict::kUnknown, Verdict::kLAlert), Verdict::kLAlert);
  EXPECT_EQ(mergeVerdicts(Verdict::kLAlert, Verdict::kProven), Verdict::kLAlert);
  EXPECT_EQ(mergeVerdicts(Verdict::kProven, Verdict::kProven), Verdict::kProven);
}

TEST(CampaignEngine, EnumerateJobsBuildsTheCrossProduct) {
  SweepMatrix matrix;
  matrix.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  matrix.secretWord = 12;
  matrix.scenarios = {SecretScenario::kInCache, SecretScenario::kNotInCache};
  UpecOptions noC1;
  noC1.constraint1NoOngoing = false;
  matrix.variants = {{"full", UpecOptions{}}, {"no_c1", noC1}};
  matrix.kMin = 1;
  matrix.kMax = 3;

  const std::vector<JobSpec> jobs = enumerateJobs(matrix);
  ASSERT_EQ(jobs.size(), 4u);
  std::set<std::string> labels;
  for (const JobSpec& j : jobs) {
    labels.insert(j.label);
    EXPECT_EQ(j.kMin, 1u);
    EXPECT_EQ(j.kMax, 3u);
  }
  EXPECT_EQ(labels.size(), 4u) << "labels must be unique across the matrix";
  EXPECT_TRUE(labels.count("D in cache/full"));
  EXPECT_TRUE(labels.count("D not in cache/no_c1"));
  // Scenario comes from the matrix axis, not the variant's options.
  EXPECT_EQ(jobs[0].options.scenario, SecretScenario::kInCache);
  EXPECT_EQ(jobs[3].options.scenario, SecretScenario::kNotInCache);
}

// --- jobs on the real miter -------------------------------------------------

JobSpec secureLadderJob(SecretScenario scenario, DeepeningMode mode, unsigned kMax) {
  JobSpec spec;
  spec.label = std::string("secure/") + scenarioName(scenario) + "/" + deepeningModeName(mode);
  spec.config = soc::SocConfig::formalSmall(soc::SocVariant::kSecure);
  spec.secretWord = 12;
  spec.options.scenario = scenario;
  spec.mode = mode;
  spec.kMin = 1;
  spec.kMax = kMax;
  return spec;
}

TEST(CampaignEngine, IncrementalAndMonolithicLaddersAgree) {
  // Paper Tab. I "D not cached": proven at every window, under both
  // deepening modes; the incremental session must not pay the encoding
  // more than once.
  const JobResult mono =
      runJob(secureLadderJob(SecretScenario::kNotInCache, DeepeningMode::kMonolithic, 2));
  const JobResult inc =
      runJob(secureLadderJob(SecretScenario::kNotInCache, DeepeningMode::kIncremental, 2));

  ASSERT_EQ(mono.windows.size(), 2u);
  ASSERT_EQ(inc.windows.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(mono.windows[i].verdict, inc.windows[i].verdict) << "window " << i + 1;
    EXPECT_EQ(mono.windows[i].verdict, Verdict::kProven);
  }
  EXPECT_EQ(mono.verdict, Verdict::kProven);
  EXPECT_EQ(inc.verdict, Verdict::kProven);
  EXPECT_LT(inc.peakVars, mono.sumVars)
      << "one shared encoding must beat re-encoding every window";
}

TEST(CampaignEngine, PAlertLadderReportsTheRegisters) {
  // Tab. I "D in cache": the first window already propagates the secret
  // into the response buffer.
  JobSpec spec = secureLadderJob(SecretScenario::kInCache, DeepeningMode::kIncremental, 1);
  const JobResult res = runJob(spec);
  EXPECT_EQ(res.verdict, Verdict::kPAlert);
  EXPECT_FALSE(res.pAlertRegisters.empty());
}

TEST(CampaignEngine, CampaignRunsJobsInParallelAndAggregates) {
  std::vector<JobSpec> jobs;
  jobs.push_back(secureLadderJob(SecretScenario::kNotInCache, DeepeningMode::kIncremental, 2));
  jobs.push_back(secureLadderJob(SecretScenario::kNotInCache, DeepeningMode::kMonolithic, 2));
  jobs.push_back(secureLadderJob(SecretScenario::kInCache, DeepeningMode::kIncremental, 1));
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].id = static_cast<std::uint32_t>(i);

  CampaignOptions options;
  options.threads = 2;
  const CampaignReport report = runCampaign(jobs, options);

  ASSERT_EQ(report.jobs.size(), 3u);
  EXPECT_EQ(report.threads, 2u);
  // Results stay in submission order regardless of completion order.
  EXPECT_EQ(report.jobs[0].id, 0u);
  EXPECT_EQ(report.jobs[2].id, 2u);
  EXPECT_EQ(report.jobs[0].verdict, Verdict::kProven);
  EXPECT_EQ(report.jobs[1].verdict, Verdict::kProven);
  EXPECT_EQ(report.jobs[2].verdict, Verdict::kPAlert);
  EXPECT_EQ(report.numProven, 2u);
  EXPECT_EQ(report.numPAlerts, 1u);
  EXPECT_EQ(report.numLAlerts, 0u);
  EXPECT_EQ(report.overallVerdict, Verdict::kPAlert);
  EXPECT_GT(report.totalConflicts + report.totalPropagations, 0u);
  EXPECT_GT(report.wallMs, 0.0);
  EXPECT_GE(report.sumJobWallMs, report.wallMs * 0.5)
      << "sum of job times cannot be wildly below the wall clock";
}

TEST(CampaignEngine, HuntJobFindsTheOrcLeak) {
  // Paper Tab. II via the campaign path: a hunt job on the Orc variant
  // must find the L-alert, with the methodology driver running on top of
  // the incremental deepening sessions.
  JobSpec spec;
  spec.label = "orc/hunt";
  spec.config = soc::SocConfig::formalSmall(soc::SocVariant::kOrc);
  spec.secretWord = 12;
  spec.options.scenario = SecretScenario::kInCache;
  spec.kind = JobKind::kHunt;
  spec.mode = DeepeningMode::kIncremental;
  spec.kMax = 4;

  const JobResult res = runJob(spec);
  EXPECT_EQ(res.verdict, Verdict::kLAlert);
  EXPECT_FALSE(res.lAlertRegisters.empty());
  ASSERT_TRUE(res.methodology.has_value());
  EXPECT_TRUE(res.methodology->firstLAlertWindow.has_value());
}

TEST(CampaignEngine, ArchitecturalOnlyLadderSkipsPAlerts) {
  // The Def. 6 obligation: with every micro register excluded, the Orc
  // ladder reports no P-alerts on the way to its L-alert. A conflict
  // budget keeps hard UNSAT-shaped intermediate windows from stalling the
  // job — a kUndef window is recorded and the walk continues.
  JobSpec spec;
  spec.label = "orc/arch_only";
  spec.config = soc::SocConfig::formalSmall(soc::SocVariant::kOrc);
  spec.secretWord = 12;
  spec.options.scenario = SecretScenario::kInCache;
  spec.options.conflictBudget = 400'000;
  spec.kind = JobKind::kIntervalLadder;
  spec.mode = DeepeningMode::kIncremental;
  spec.architecturalOnly = true;
  spec.kMin = 1;
  spec.kMax = 4;

  const JobResult res = runJob(spec);
  EXPECT_EQ(res.verdict, Verdict::kLAlert);
  EXPECT_TRUE(res.pAlertRegisters.empty());
  EXPECT_FALSE(res.lAlertRegisters.empty());
}

TEST(CampaignEngine, GovernedSharingCampaignKeepsVerdictsAndHonoursTheCap) {
  // 2 workers x 3-member sharing portfolios would run 6 solver threads
  // ungoverned; with solverThreadCap = 3 the counting hook must show the
  // campaign never held more than 3 member slots — and the verdicts must
  // be exactly the ones the single-backend jobs produce (kProven twice,
  // kPAlert once; pinned by CampaignRunsJobsInParallelAndAggregates).
  std::vector<JobSpec> jobs;
  jobs.push_back(secureLadderJob(SecretScenario::kNotInCache, DeepeningMode::kIncremental, 2));
  jobs.push_back(secureLadderJob(SecretScenario::kNotInCache, DeepeningMode::kMonolithic, 2));
  jobs.push_back(secureLadderJob(SecretScenario::kInCache, DeepeningMode::kIncremental, 1));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<std::uint32_t>(i);
    jobs[i].portfolio = 3;
    jobs[i].sharing = true;
  }

  CampaignOptions options;
  options.threads = 2;
  options.solverThreadCap = 3;
  const CampaignReport report = runCampaign(jobs, options);

  EXPECT_EQ(report.jobs[0].verdict, Verdict::kProven);
  EXPECT_EQ(report.jobs[1].verdict, Verdict::kProven);
  EXPECT_EQ(report.jobs[2].verdict, Verdict::kPAlert);
  EXPECT_EQ(report.solverThreadCap, 3u);
  EXPECT_GE(report.peakSolverThreads, 1u) << "some race must have acquired slots";
  EXPECT_LE(report.peakSolverThreads, 3u) << "the cap is a hard ceiling";
  // Sharing portfolios derive conflicts; whether any clause crosses members
  // within these small windows is timing-dependent, but the counters must
  // at least surface in the JSON for observability.
  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"solver_thread_cap\":3"), std::string::npos);
  EXPECT_NE(json.find("\"peak_solver_threads\":"), std::string::npos);
  EXPECT_NE(json.find("\"clauses_exported\":"), std::string::npos);
}

TEST(CampaignEngine, ReportSerialisesToJson) {
  std::vector<JobSpec> jobs;
  jobs.push_back(secureLadderJob(SecretScenario::kNotInCache, DeepeningMode::kIncremental, 1));
  jobs[0].label = "quote\"and\\slash";  // exercise escaping
  CampaignOptions options;
  options.threads = 1;
  const CampaignReport report = runCampaign(jobs, options);

  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"overall_verdict\":\"proven\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"threads\":1"), std::string::npos);
  EXPECT_NE(json.find("\"quote\\\"and\\\\slash\""), std::string::npos);
  EXPECT_NE(json.find("\"windows\":[{\"k\":1"), std::string::npos);
  EXPECT_NE(json.find("\"num_proven\":1"), std::string::npos);
  // Crude balance check — the writer emits no trailing garbage.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace upec::engine
