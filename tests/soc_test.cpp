// Tests for the MiniRV SoC RTL model:
//  * targeted pipeline behaviour (forwarding, hazards, branches, traps)
//  * cache behaviour (hit/miss, write-back, RAW pending-store hazard)
//  * differential testing against the ISA-level reference simulator on
//    randomised programs (commit-event sequences + final state)
//  * the microarchitectural timing/footprint differences between the
//    secure and the vulnerable design variants
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "riscv/assembler.hpp"
#include "riscv/isa_sim.hpp"
#include "soc/testbench.hpp"

namespace upec::soc {
namespace {

using riscv::Assembler;
using riscv::MachineConfig;

SocConfig testCfg(SocVariant v = SocVariant::kSecure) {
  SocConfig c;
  c.machine.xlen = 32;
  c.machine.nregs = 16;
  c.machine.imemWords = 64;
  c.machine.dmemWords = 64;
  c.machine.pmpEntries = 2;
  c.machine.pmpLockBug = (v == SocVariant::kPmpLockBug);
  c.cacheLines = 4;
  c.pendingWriteCycles = 3;
  c.refillCycles = 2;
  c.variant = v;
  return c;
}

TEST(SocPipeline, StraightLineArithmetic) {
  Assembler a;
  a.li(1, 10);
  a.li(2, 32);
  a.add(3, 1, 2);
  a.sub(4, 2, 1);
  a.xor_(5, 1, 2);
  SocTestbench tb(testCfg());
  tb.loadProgram(a.finish());
  tb.run(20);
  EXPECT_EQ(tb.reg(3), 42u);
  EXPECT_EQ(tb.reg(4), 22u);
  EXPECT_EQ(tb.reg(5), 10u ^ 32u);
}

TEST(SocPipeline, BackToBackForwarding) {
  Assembler a;
  a.li(1, 1);
  a.add(2, 1, 1);  // needs x1 from EX/MEM
  a.add(3, 2, 1);  // needs x2 from EX/MEM, x1 from MEM/WB
  a.add(4, 3, 2);
  SocTestbench tb(testCfg());
  tb.loadProgram(a.finish());
  tb.run(20);
  EXPECT_EQ(tb.reg(2), 2u);
  EXPECT_EQ(tb.reg(3), 3u);
  EXPECT_EQ(tb.reg(4), 5u);
}

TEST(SocPipeline, BranchTakenSquashesWrongPath) {
  Assembler a;
  const riscv::Label target = a.newLabel();
  a.li(1, 5);
  a.li(2, 5);
  a.beq(1, 2, target);
  a.li(3, 111);  // wrong path
  a.li(4, 222);  // wrong path
  a.bind(target);
  a.li(5, 7);
  SocTestbench tb(testCfg());
  tb.loadProgram(a.finish());
  tb.run(25);
  EXPECT_EQ(tb.reg(3), 0u);
  EXPECT_EQ(tb.reg(4), 0u);
  EXPECT_EQ(tb.reg(5), 7u);
}

TEST(SocPipeline, JalLinksAndJalrReturns) {
  Assembler a;
  const riscv::Label func = a.newLabel();
  const riscv::Label park = a.newLabel();
  a.li(1, 1);
  a.jal(5, func);       // call
  a.li(2, 20);          // executed after return
  a.bind(park);
  a.j(park);            // park
  a.bind(func);
  a.li(3, 30);
  a.jalr(0, 5, 0);      // return
  const auto words = a.finish();
  SocTestbench tb(testCfg());
  tb.loadProgram(words);
  tb.run(30);
  EXPECT_EQ(tb.reg(3), 30u);
  EXPECT_EQ(tb.reg(2), 20u);
}

TEST(SocCache, LoadMissRefillsAndHitsAfterwards) {
  Assembler a;
  a.li(1, 0x28);  // dmem word 10
  a.lw(2, 1, 0);  // miss -> refill
  a.lw(3, 1, 0);  // hit
  SocTestbench tb(testCfg());
  tb.setDmemWord(10, 1234);
  tb.loadProgram(a.finish());
  tb.run(40);
  EXPECT_EQ(tb.reg(2), 1234u);
  EXPECT_EQ(tb.reg(3), 1234u);
  const unsigned idx = 10 % 4;
  EXPECT_TRUE(tb.cacheLineValid(idx));
  EXPECT_EQ(tb.cacheLineTag(idx), 10u >> 2);
  EXPECT_EQ(tb.cacheLineData(idx), 1234u);
}

TEST(SocCache, StoreAllocatesAndWritesBackOnEviction) {
  Assembler a;
  a.li(1, 0x28);   // word 10 -> line 2
  a.li(2, 77);
  a.sw(2, 1, 0);   // pending write, allocates line 2 dirty
  a.li(3, 0x38);   // word 14 -> also line 2 (10 % 4 == 14 % 4)
  a.lw(4, 3, 0);   // miss on line 2: dirty victim written back, refill
  SocTestbench tb(testCfg());
  tb.setDmemWord(14, 5555);
  tb.loadProgram(a.finish());
  tb.run(60);
  EXPECT_EQ(tb.reg(4), 5555u);
  EXPECT_EQ(tb.dmemWord(10), 77u) << "dirty line must be written back";
  EXPECT_EQ(tb.cacheLineData(2), 5555u);
}

TEST(SocCache, RawHazardStallsButReturnsFreshData) {
  // A load immediately following a store to the same address must return
  // the stored value (the pending-write RAW hazard is stalled, not
  // bypassed).
  Assembler a;
  a.li(1, 0x28);
  a.li(2, 909);
  a.sw(2, 1, 0);
  a.lw(3, 1, 0);
  SocTestbench tb(testCfg());
  tb.loadProgram(a.finish());
  tb.run(60);
  EXPECT_EQ(tb.reg(3), 909u);
}

TEST(SocTrap, UserLoadFromProtectedRegionTraps) {
  Assembler a;
  a.li(1, 40 * 4);
  a.lw(2, 1, 0);
  a.li(3, 1);  // squashed by the trap
  SocTestbench tb(testCfg());
  tb.loadProgram(a.finish());
  // Trap handler at 0x3C: spin in place so mcause/mepc stay observable.
  tb.loadProgram({riscv::encodeJ(0, 0, riscv::kOpJal)}, 0x3C / 4);
  tb.setDmemWord(40, 0xDEAD);
  tb.protectFromWord(32, 64);
  tb.setCsrMtvec(0x3C);
  tb.setMode(false);  // user
  tb.run(40);
  EXPECT_EQ(tb.reg(2), 0u) << "secret must not reach the register file";
  EXPECT_EQ(tb.reg(3), 0u) << "instruction after the fault must be squashed";
  EXPECT_TRUE(tb.machineMode());
  EXPECT_EQ(tb.csrMcause(), riscv::kCauseLoadAccessFault);
  EXPECT_EQ(tb.csrMepc(), 4u);  // pc of the lw (li of a small constant is one addi)
}

TEST(SocTrap, EcallFromUserEntersMachineMode) {
  Assembler a;
  a.ecall();
  SocTestbench tb(testCfg());
  tb.loadProgram(a.finish());
  tb.loadProgram({riscv::encodeJ(0, 0, riscv::kOpJal)}, 0x30 / 4);  // handler: spin
  tb.setCsrMtvec(0x30);
  tb.setMode(false);
  tb.run(15);
  EXPECT_TRUE(tb.machineMode());
  EXPECT_EQ(tb.csrMcause(), riscv::kCauseEcallU);
  EXPECT_EQ(tb.csrMepc(), 0u);
}

TEST(SocCsr, CsrReadWriteAndSerialization) {
  Assembler a;
  a.li(1, 0x30);
  a.csrrw(0, riscv::kCsrMtvec, 1);
  a.csrrs(2, riscv::kCsrMtvec, 0);
  a.li(3, 5);
  SocTestbench tb(testCfg());
  tb.loadProgram(a.finish());
  tb.run(40);
  EXPECT_EQ(tb.csrMtvec(), 0x30u);
  EXPECT_EQ(tb.reg(2), 0x30u);
  EXPECT_EQ(tb.reg(3), 5u);
}

TEST(SocCsr, PmpAddrLockRespectedUnlessBugged) {
  for (const bool bugged : {false, true}) {
    Assembler a;
    a.li(1, 50);
    a.csrrw(0, riscv::kCsrPmpaddr0, 1);
    SocTestbench tb(testCfg(bugged ? SocVariant::kPmpLockBug : SocVariant::kSecure));
    tb.loadProgram(a.finish());
    tb.protectFromWord(32, 64);
    tb.run(30);
    const std::uint32_t got = static_cast<std::uint32_t>(
        tb.simulator().regValue(
            tb.instance().pc.design()->regIndexOf(tb.instance().pmpaddr[0].id())).uint());
    if (bugged) {
      EXPECT_EQ(got, 50u) << "bug variant: locked TOR base was rewritten";
    } else {
      EXPECT_EQ(got, 32u) << "secure variant: locked TOR base must be immutable";
    }
  }
}

TEST(SocTiming, McycleAdvancesEveryCycle) {
  Assembler a;
  a.nop();
  SocTestbench tb(testCfg());
  tb.loadProgram(a.finish());
  const auto& inst = tb.instance();
  auto mcycleOf = [&]() {
    return tb.simulator().regValue(inst.pc.design()->regIndexOf(inst.mcycle.id())).uint();
  };
  const auto before = mcycleOf();
  tb.run(7);
  EXPECT_EQ(mcycleOf(), before + 7);
}

// ---------------------------------------------------------------------------
// Differential test: RTL pipeline vs ISA reference on random programs.

std::vector<std::uint32_t> randomProgram(Rng& rng, unsigned len, unsigned nregs,
                                         unsigned dmemWords) {
  using namespace riscv;
  Assembler a;
  auto reg = [&]() { return 1 + static_cast<unsigned>(rng.below(nregs - 1)); };
  for (unsigned i = 0; i < len; ++i) {
    switch (rng.below(10)) {
      case 0:
        a.li(reg(), static_cast<std::int32_t>(rng.next() & 0xFFFF) - 0x8000);
        break;
      case 1:
        a.add(reg(), reg(), reg());
        break;
      case 2:
        a.sub(reg(), reg(), reg());
        break;
      case 3:
        a.and_(reg(), reg(), reg());
        break;
      case 4:
        a.xor_(reg(), reg(), reg());
        break;
      case 5:
        a.slli(reg(), reg(), static_cast<unsigned>(rng.below(31)));
        break;
      case 6:
        a.sltu(reg(), reg(), reg());
        break;
      case 7: {  // aligned store into dmem
        const unsigned base = reg();
        a.li(base, static_cast<std::int32_t>(rng.below(dmemWords)) * 4);
        a.sw(reg(), base, 0);
        break;
      }
      case 8: {  // aligned load from dmem
        const unsigned base = reg();
        a.li(base, static_cast<std::int32_t>(rng.below(dmemWords)) * 4);
        a.lw(reg(), base, 0);
        break;
      }
      case 9: {  // short forward branch
        const Label skip = a.newLabel();
        switch (rng.below(3)) {
          case 0: a.beq(reg(), reg(), skip); break;
          case 1: a.bne(reg(), reg(), skip); break;
          default: a.bltu(reg(), reg(), skip); break;
        }
        a.add(reg(), reg(), reg());
        a.bind(skip);
        break;
      }
    }
  }
  // Park in a tight loop so the program never runs off into zero words.
  const Label park = a.newLabel();
  a.bind(park);
  a.j(park);
  return a.finish();
}

class SocDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SocDifferentialTest, CommitStreamMatchesIsaSim) {
  Rng rng(GetParam() * 40961 + 3);
  SocConfig cfg = testCfg();
  const auto program = randomProgram(rng, 24, 8, cfg.machine.dmemWords);
  ASSERT_LE(program.size(), cfg.machine.imemWords);

  SocTestbench tb(cfg);
  tb.loadProgram(program);
  riscv::IsaSim isa(cfg.machine);
  isa.loadProgram(program);
  for (unsigned w = 0; w < cfg.machine.dmemWords; ++w) {
    const std::uint32_t v = static_cast<std::uint32_t>(rng.next());
    tb.setDmemWord(w, v);
    isa.setDmemWord(w, v);
  }

  tb.run(600);
  const auto& commits = tb.commits();
  ASSERT_GT(commits.size(), 10u) << "pipeline made no progress";

  for (std::size_t i = 0; i < commits.size(); ++i) {
    const riscv::StepInfo info = isa.step();
    EXPECT_EQ(commits[i].pc, info.pc) << "commit " << i << " pc mismatch";
    EXPECT_EQ(commits[i].trap, info.trapped) << "commit " << i << " trap mismatch";
  }
  for (unsigned r = 1; r < cfg.machine.nregs; ++r) {
    EXPECT_EQ(tb.reg(r), isa.reg(r)) << "x" << r << " differs";
  }
  // Data memory: flush the cache view by checking through the ISA values
  // for addresses not currently dirty in the cache. Simpler: compare the
  // ISA memory against the RTL's *coherent* view (cache overrides memory).
  for (unsigned w = 0; w < cfg.machine.dmemWords; ++w) {
    const unsigned idx = w % cfg.cacheLines;
    std::uint32_t rtlView = tb.dmemWord(w);
    if (tb.cacheLineValid(idx) && tb.cacheLineTag(idx) == (w >> cfg.indexBits())) {
      rtlView = tb.cacheLineData(idx);
    }
    EXPECT_EQ(rtlView, isa.dmemWord(w)) << "dmem word " << w << " differs";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SocDifferentialTest, ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Variant behaviour: the architectural results must be identical across all
// variants (the vulnerabilities do not break functional correctness).

TEST(SocVariants, AllVariantsAreArchitecturallyEquivalent) {
  Rng rng(777);
  const auto program = randomProgram(rng, 20, 8, 64);
  std::vector<std::vector<CommitEvent>> allCommits;
  std::vector<std::vector<std::uint32_t>> allRegs;
  constexpr std::size_t kEvents = 150;
  for (SocVariant v : {SocVariant::kSecure, SocVariant::kOrc, SocVariant::kMeltdownStyle}) {
    SocTestbench tb(testCfg(v));
    tb.loadProgram(program);
    tb.runUntilEvents(kEvents, 2000);
    ASSERT_EQ(tb.commits().size(), kEvents) << variantName(v) << " made no progress";
    allCommits.push_back(tb.commits());
    std::vector<std::uint32_t> regs;
    for (unsigned r = 0; r < 16; ++r) regs.push_back(tb.reg(r));
    allRegs.push_back(regs);
  }
  for (std::size_t v = 1; v < allCommits.size(); ++v) {
    ASSERT_EQ(allCommits[v].size(), allCommits[0].size());
    for (std::size_t i = 0; i < allCommits[0].size(); ++i) {
      EXPECT_EQ(allCommits[v][i].pc, allCommits[0][i].pc);
      EXPECT_EQ(allCommits[v][i].trap, allCommits[0][i].trap);
    }
    EXPECT_EQ(allRegs[v], allRegs[0]);
  }
}

}  // namespace
}  // namespace upec::soc
