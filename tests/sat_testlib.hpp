// Shared helpers for the SAT-layer test suites: the random 3-CNF generator
// the differential tests agree on, a solve-and-check driver, and the
// pigeonhole encoder used wherever a test needs a guaranteed-hard UNSAT
// instance. One definition keeps the generators of the differential suites
// (sat_dpll_diff, sat_portfolio, sat_exchange) from silently diverging.
#pragma once

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "base/rng.hpp"
#include "sat/solver_backend.hpp"
#include "sat/types.hpp"

namespace upec::sat {

using Cnf = std::vector<std::vector<Lit>>;

// 3-SAT around the phase transition (callers pick numClauses ≈ 4.3x vars)
// so both verdicts occur across seeds.
inline Cnf randomCnf(Rng& rng, int numVars, int numClauses) {
  Cnf cnf;
  cnf.reserve(numClauses);
  for (int c = 0; c < numClauses; ++c) {
    std::vector<Lit> clause;
    for (int i = 0; i < 3; ++i) {
      clause.push_back(Lit(static_cast<Var>(rng.below(numVars)), rng.below(2) == 0));
    }
    cnf.push_back(std::move(clause));
  }
  return cnf;
}

// Loads the CNF, solves, and on kTrue checks the model actually satisfies
// every clause.
inline LBool solveWith(SolverBackend& s, int numVars, const Cnf& cnf) {
  for (int v = 0; v < numVars; ++v) s.newVar();
  bool ok = true;
  for (const auto& clause : cnf) ok = s.addClause(std::span<const Lit>(clause)) && ok;
  if (!ok) return LBool::kFalse;
  const LBool verdict = s.solve();
  if (verdict == LBool::kTrue) {
    for (const auto& clause : cnf) {
      bool satisfied = false;
      for (const Lit l : clause) satisfied |= s.modelValue(l);
      EXPECT_TRUE(satisfied) << "model violates a clause";
    }
  }
  return verdict;
}

// holes+1 pigeons into `holes` holes: UNSAT, with solve effort that grows
// steeply in `holes` — the standard knob for "hard enough to conflict /
// restart / need cancellation".
inline void encodePigeonhole(SolverBackend& s, int holes) {
  std::vector<std::vector<Var>> p(holes + 1, std::vector<Var>(holes));
  for (auto& row : p)
    for (auto& v : row) v = s.newVar();
  for (int i = 0; i <= holes; ++i) {
    std::vector<Lit> c;
    for (int j = 0; j < holes; ++j) c.push_back(Lit(p[i][j], false));
    s.addClause(std::span<const Lit>(c));
  }
  for (int j = 0; j < holes; ++j)
    for (int i1 = 0; i1 <= holes; ++i1)
      for (int i2 = i1 + 1; i2 <= holes; ++i2)
        s.addClause({Lit(p[i1][j], true), Lit(p[i2][j], true)});
}

}  // namespace upec::sat
