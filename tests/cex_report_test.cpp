// Tests for counterexample explanation: the attacker program synthesised
// by the solver must be extractable, disassemble cleanly, and the timeline
// must show the divergence the alert reported.
#include <gtest/gtest.h>

#include "upec/cex_report.hpp"
#include "upec/upec.hpp"

namespace upec {
namespace {

TEST(CexReport, OrcLAlertYieldsProgramAndDivergence) {
  Miter miter(soc::SocConfig::formalSmall(soc::SocVariant::kOrc), /*secretWord=*/12);
  UpecOptions options;
  options.scenario = SecretScenario::kInCache;
  UpecEngine engine(miter, options);

  // Hunt the L-alert with an architectural-only commitment.
  UpecResult res;
  for (unsigned k = 1; k <= 4; ++k) {
    res = engine.check(k, engine.allMicroNames());
    if (res.verdict == Verdict::kLAlert) break;
  }
  ASSERT_EQ(res.verdict, Verdict::kLAlert);
  ASSERT_TRUE(res.trace.has_value());

  const CexReport report = explainCounterexample(miter, *res.trace);

  // The synthesised program covers the whole instruction memory.
  EXPECT_EQ(report.program.size(), miter.config().machine.imemWords);
  for (const CexInstruction& instr : report.program) {
    EXPECT_FALSE(instr.disassembly.empty());
  }
  // The two instances saw different secrets (otherwise nothing could leak).
  EXPECT_NE(report.secret1, report.secret2);
  // The scenario assumption put the secret in the cache.
  EXPECT_TRUE(report.secretInCache);
  // The timeline ends in divergence: some cycle records newly-differing
  // architectural or microarchitectural state.
  bool anyDivergence = false;
  for (const CexCycle& c : report.timeline) anyDivergence |= !c.newlyDiffering.empty();
  EXPECT_TRUE(anyDivergence);
  // The pretty form mentions the program and the secrets.
  const std::string text = report.pretty();
  EXPECT_NE(text.find("Synthesised attacker program"), std::string::npos);
  EXPECT_NE(text.find("Secrets:"), std::string::npos);
  EXPECT_NE(text.find("Timeline:"), std::string::npos);
}

TEST(CexReport, PAlertShowsRespBufDivergenceCycle) {
  Miter miter(soc::SocConfig::formalSmall(soc::SocVariant::kSecure), /*secretWord=*/12);
  UpecOptions options;
  options.scenario = SecretScenario::kInCache;
  UpecEngine engine(miter, options);
  const UpecResult res = engine.check(1);
  ASSERT_EQ(res.verdict, Verdict::kPAlert);
  ASSERT_TRUE(res.trace.has_value());

  const CexReport report = explainCounterexample(miter, *res.trace);
  bool respBufDiverges = false;
  for (const CexCycle& c : report.timeline) {
    for (const std::string& name : c.newlyDiffering) {
      respBufDiverges |= (name == "resp_buf");
    }
  }
  EXPECT_TRUE(respBufDiverges);
}

TEST(CexReport, SecretsAreAtTheConfiguredLocation) {
  // The extracted secrets must equal the trace's initial dmem values at
  // the secret word in each instance.
  Miter miter(soc::SocConfig::formalSmall(soc::SocVariant::kOrc), /*secretWord=*/12);
  UpecOptions options;
  options.scenario = SecretScenario::kInCache;
  UpecEngine engine(miter, options);
  const UpecResult res = engine.check(1);
  ASSERT_TRUE(res.trace.has_value());
  const CexReport report = explainCounterexample(miter, *res.trace);
  const RegPair& pair = miter.dmemPairs()[12];
  EXPECT_EQ(report.secret1, res.trace->initialRegs[pair.reg1].uint());
  EXPECT_EQ(report.secret2, res.trace->initialRegs[pair.reg2].uint());
}

}  // namespace
}  // namespace upec
